(* ftr: command-line front end for the fault-tolerant routing library.

   Subcommands:
     info      structural properties of a graph
     route     build a routing (auto or named strategy) and show stats
     tolerate  fault-injection check of a construction's claims
     simulate  message-level simulation with crashes
     attack    adversarial fault search + witness corpus
     soak      corpus replay against the churn-hardened protocol
     serve     long-lived routing daemon (and its --slo soak gate)
     query     client for a running serve daemon (with transport retries)
     chaos     gray-failure / heavy-traffic scenario against the serve stack
     compact   label-computed route tables at 10^5-10^6 nodes, sampled certify
     dot       DOT export                                           *)

open Cmdliner
open Ftr_graph
open Ftr_core

let graph_arg =
  let graph_conv = Arg.conv' Ftr_analysis.Graph_spec.conv in
  Arg.(
    required
    & pos 0 (some graph_conv) None
    & info [] ~docv:"GRAPH"
        ~doc:
          "Graph spec, e.g. torus:5x5, hypercube:4, ccc:3, cycle:12, petersen, \
           gnp:64:0.1:7, regular:24:4:7.")

let seed_arg = Arg.(value & opt int 0xBEEF & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed.")

let dist_cell = Format.asprintf "%a" Metrics.pp_distance

(* ---------------- observability ---------------- *)

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write engine/attack/sim metrics (counters, gauges, span timings) as \
           JSON to $(docv) on exit. Counter values are a function of the \
           requested work alone: identical for every $(b,--jobs) value.")

let trace_arg =
  Arg.(
    value & flag
    & info [ "trace" ]
        ~doc:"Print a timing line to stderr as each instrumented span completes.")

(* Transport-level retries performed by `ftr query` (connect refused,
   connection lost, read timeout) — one tick per re-attempt. *)
let c_query_retries = Ftr_obs.Obs.counter "query.retries"

(* Instrumentation is off unless asked for; the metrics file is
   written even when the run fails, so a crashing invocation still
   leaves its partial counters behind for diagnosis. *)
let with_obs metrics trace f =
  let module Obs = Ftr_obs.Obs in
  if metrics <> None || trace then begin
    Obs.set_enabled true;
    Obs.set_trace trace
  end;
  let finish () =
    match metrics with
    | None -> ()
    | Some path -> (
        try Obs.write_file path
        with Sys_error e -> Printf.eprintf "cannot write metrics: %s\n" e)
  in
  match f () with
  | code ->
      finish ();
      code
  | exception e ->
      finish ();
      raise e

(* ---------------- info ---------------- *)

let info_cmd =
  let run g =
    let kappa = Connectivity.vertex_connectivity g in
    Printf.printf "vertices            %d\n" (Graph.n g);
    Printf.printf "edges               %d\n" (Graph.m g);
    Printf.printf "degree (min/avg/max) %d / %.2f / %d\n" (Graph.min_degree g)
      (Metrics.average_degree g) (Graph.max_degree g);
    Printf.printf "vertex connectivity %d (t = %d)\n" kappa (kappa - 1);
    Printf.printf "edge connectivity   %d\n" (Connectivity.edge_connectivity g);
    (match Connectivity.articulation_points g with
    | [] -> ()
    | pts ->
        Printf.printf "articulation points %s\n"
          (String.concat "," (List.map string_of_int pts)));
    Printf.printf "diameter            %s\n" (dist_cell (Metrics.diameter g));
    Printf.printf "girth               %s\n"
      (match Metrics.girth g with Some gth -> string_of_int gth | None -> "acyclic");
    let m = Independent.greedy g in
    Printf.printf "neighborhood set    K=%d (Lemma 15 bound %d)\n" (List.length m)
      (Independent.greedy_bound g);
    (match Two_trees.find g with
    | Some (r1, r2) -> Printf.printf "two-trees roots     %d, %d\n" r1 r2
    | None -> Printf.printf "two-trees roots     none\n");
    if kappa >= 1 && Graph.n g >= 3 then begin
      let t = kappa - 1 in
      let strategies = Builder.applicable g ~t in
      Printf.printf "applicable routings %s\n"
        (String.concat ", " (List.map Builder.strategy_name strategies))
    end;
    0
  in
  Cmd.v
    (Cmd.info "info" ~doc:"structural properties relevant to the constructions")
    Term.(const run $ graph_arg)

(* ---------------- route ---------------- *)

let strategies =
  [
    ("auto", `Auto); ("kernel", `Kernel); ("circular", `Circular);
    ("tri-circular", `Tri_full); ("tri-circular-small", `Tri_small);
    ("bipolar-uni", `Bipolar_uni); ("bipolar-bi", `Bipolar_bi);
  ]

let strategy_name strategy = fst (List.find (fun (_, v) -> v = strategy) strategies)

let strategy_arg =
  Arg.(
    value
    & opt (enum strategies) `Auto
    & info [ "strategy"; "s" ] ~docv:"STRATEGY"
        ~doc:"One of auto, kernel, circular, tri-circular, tri-circular-small, \
              bipolar-uni, bipolar-bi.")

let build_construction g strategy seed =
  let rng = Random.State.make [| seed |] in
  let t = Connectivity.vertex_connectivity g - 1 in
  let m () = Independent.best_of ~rng ~tries:30 g in
  match strategy with
  | `Auto -> (Builder.auto ~rng g).Builder.construction
  | `Kernel -> Kernel.make g ~t
  | `Circular -> Circular.make ~m:(m ()) g ~t
  | `Tri_full -> Tri_circular.make ~m:(m ()) g ~t ~variant:Tri_circular.Full
  | `Tri_small -> Tri_circular.make ~m:(m ()) g ~t ~variant:Tri_circular.Small
  | `Bipolar_uni -> Bipolar.make_unidirectional g ~t
  | `Bipolar_bi -> Bipolar.make_bidirectional g ~t

let route_cmd =
  let save_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "save" ] ~docv:"FILE" ~doc:"Write the route table (ftr-routing format).")
  in
  let run g strategy seed save =
    match build_construction g strategy seed with
    | exception Invalid_argument msg ->
        Printf.eprintf "cannot build: %s\n" msg;
        1
    | c ->
        Format.printf "%a@." Construction.pp c;
        Printf.printf "max route length    %d\n" (Routing.max_route_length c.routing);
        Printf.printf "total route edges   %d\n" (Routing.total_route_edges c.routing);
        Printf.printf "max stretch         %.2f\n" (Routing.stretch c.routing);
        (match save with
        | None -> ()
        | Some path ->
            let oc = open_out path in
            output_string oc (Routing_io.to_string c.routing);
            close_out oc;
            Printf.printf "saved               %s\n" path);
        (match Routing.validate c.routing with
        | Ok () ->
            Printf.printf "validation          ok\n";
            0
        | Error e ->
            Printf.printf "validation          FAILED: %s\n" e;
            1)
  in
  Cmd.v
    (Cmd.info "route" ~doc:"build a routing and report its statistics")
    Term.(const run $ graph_arg $ strategy_arg $ seed_arg $ save_arg)

(* ---------------- tolerate ---------------- *)

let faults_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "faults"; "f" ] ~docv:"F" ~doc:"Fault budget (default: each claim's f).")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains for the evaluation engine (default: the number of \
           recommended domains). Verdicts are identical for every value; only \
           the wall-clock changes.")

let engine_arg =
  let engine_conv =
    Arg.enum [ ("sliced", Tolerance.Sliced); ("scalar", Tolerance.Scalar) ]
  in
  Arg.(
    value
    & opt (some engine_conv) None
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Evaluation engine for exact-diameter sweeps: $(b,sliced) (default; \
           packs up to 63 fault sets as bit lanes of one word-parallel BFS, \
           falling back to scalar when the graph exceeds one word per \
           adjacency row) or $(b,scalar) (one BFS per fault set — the \
           reference path the property tests compare against). Verdicts are \
           identical either way. Bounded certification ($(b,--bound)) always \
           uses the scalar early-exit path.")

let tolerate_cmd =
  let run g strategy seed faults jobs engine metrics trace =
    with_obs metrics trace @@ fun () ->
    match build_construction g strategy seed with
    | exception Invalid_argument msg ->
        Printf.eprintf "cannot build: %s\n" msg;
        1
    | c ->
        let rng = Random.State.make [| seed; 1 |] in
        let failures = ref 0 in
        List.iter
          (fun (claim : Construction.claim) ->
            let f = Option.value faults ~default:claim.max_faults in
            let v = Tolerance.evaluate ~rng ?jobs ?engine c ~f in
            let ok = Tolerance.respects v ~bound:claim.diameter_bound in
            if not ok then incr failures;
            Printf.printf "%-28s f=%d bound=%d worst=%s sets=%d%s -> %s\n" claim.source f
              claim.diameter_bound (dist_cell v.Tolerance.worst) v.Tolerance.sets_checked
              (if v.Tolerance.definitive then " (exhaustive)" else "")
              (if ok then "ok" else "VIOLATION");
            if not ok then
              Printf.printf "  witness fault set: {%s}\n"
                (String.concat "," (List.map string_of_int v.Tolerance.witness)))
          c.claims;
        if !failures = 0 then 0 else 1
  in
  Cmd.v
    (Cmd.info "tolerate" ~doc:"fault-injection check of a construction's claims")
    Term.(
      const run $ graph_arg $ strategy_arg $ seed_arg $ faults_arg $ jobs_arg
      $ engine_arg $ metrics_arg $ trace_arg)

(* ---------------- props ---------------- *)

let props_cmd =
  let faults_list =
    Arg.(
      value
      & opt (list int) []
      & info [ "kill" ] ~docv:"V1,V2,..." ~doc:"Fault set to apply before checking.")
  in
  let run g strategy seed faults =
    match build_construction g strategy seed with
    | exception Invalid_argument msg ->
        Printf.eprintf "cannot build: %s\n" msg;
        1
    | c ->
        let fault_set = Bitset.of_list (Graph.n g) faults in
        let reports = Properties.check c ~faults:fault_set in
        if reports = [] then begin
          Printf.printf "no lemma-level properties for %s\n" c.Construction.name;
          0
        end
        else begin
          List.iter (fun r -> Format.printf "%a@." Properties.pp_report r) reports;
          if Properties.all_hold reports then 0 else 1
        end
  in
  Cmd.v
    (Cmd.info "props"
       ~doc:"check the construction's lemma-level properties under a fault set")
    Term.(const run $ graph_arg $ strategy_arg $ seed_arg $ faults_list)

(* ---------------- simulate ---------------- *)

let simulate_cmd =
  let crashes = Arg.(value & opt int 1 & info [ "crashes" ] ~docv:"K" ~doc:"Nodes to crash.") in
  let messages =
    Arg.(value & opt int 200 & info [ "messages" ] ~docv:"M" ~doc:"Messages to send.")
  in
  let run g strategy seed crashes messages =
    match build_construction g strategy seed with
    | exception Invalid_argument msg ->
        Printf.eprintf "cannot build: %s\n" msg;
        1
    | c ->
        let rng = Random.State.make [| seed; 2 |] in
        let net = Ftr_sim.Network.create c.routing in
        let sim = Ftr_sim.Sim.create () in
        let n = Graph.n g in
        Ftr_sim.Faults.schedule_on sim net
          (Ftr_sim.Faults.random_crashes ~rng ~n ~count:crashes ~window:(50.0, 50.0));
        let entries =
          Ftr_sim.Workload.uniform ~rng ~n ~count:messages ~horizon:200.0
        in
        let msgs =
          Ftr_sim.Protocol.deliver_all sim net Ftr_sim.Protocol.default_config entries
        in
        let delivered =
          List.filter (fun m -> m.Ftr_sim.Message.status = Ftr_sim.Message.Delivered) msgs
        in
        Printf.printf "delivered           %d/%d\n" (List.length delivered)
          (List.length msgs);
        (match
           Ftr_sim.Stats.of_ints
             (List.map (fun m -> m.Ftr_sim.Message.routes_traversed) delivered)
         with
        | Some s -> Format.printf "routes traversed    %a@." Ftr_sim.Stats.pp_summary s
        | None -> ());
        (match
           Ftr_sim.Stats.summarize (List.filter_map Ftr_sim.Message.latency delivered)
         with
        | Some s -> Format.printf "latency             %a@." Ftr_sim.Stats.pp_summary s
        | None -> ());
        Printf.printf "surviving diameter  %s\n"
          (dist_cell (Ftr_sim.Network.surviving_diameter net));
        Printf.printf "events executed     %d\n" (Ftr_sim.Sim.events_executed sim);
        0
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"message-level simulation with node crashes")
    Term.(const run $ graph_arg $ strategy_arg $ seed_arg $ crashes $ messages)

(* ---------------- check ---------------- *)

let check_cmd =
  let file_arg =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"FILE" ~doc:"Route table file (ftr-routing format).")
  in
  let bound_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "bound" ] ~docv:"D"
          ~doc:
            "Certify \"(D, F)-tolerant\" instead of computing the exact worst \
             diameter: each BFS stops as soon as $(docv) is provably exceeded, \
             and enumeration stops early inside a violating block.")
  in
  let run g file faults bound jobs engine metrics trace =
    with_obs metrics trace @@ fun () ->
    match In_channel.with_open_text file In_channel.input_all with
    | exception Sys_error e ->
        Printf.eprintf "cannot read %s\n" e;
        1
    | text -> (
    match Routing_io.load g text with
    | Error e ->
        Printf.eprintf "cannot load %s: %s\n" file e;
        1
    | Ok routing -> (
    match Routing.validate routing with
    | Error e ->
        Printf.eprintf "invalid route table %s: %s\n" file e;
        1
    | Ok () -> (
        Printf.printf "loaded %d routes (max length %d, stretch %.2f)\n"
          (Routing.route_count routing)
          (Routing.max_route_length routing)
          (Routing.stretch routing);
        let f = Option.value faults ~default:1 in
        (* [Surviving.compile] rejects a table whose routes step off
           the graph's edge set; report it as a diagnostic, not a
           backtrace. *)
        try
          match bound with
          | Some b ->
              let cert = Tolerance.certify ?jobs routing ~f ~bound:b in
              Printf.printf "certificate over %d fault sets (<=%d faults): "
                cert.Tolerance.cert_sets_checked f;
              if cert.Tolerance.holds then begin
                Printf.printf "(%d, %d)-tolerant\n" b f;
                0
              end
              else begin
                (match cert.Tolerance.counterexample with
                | Some w ->
                    Printf.printf "VIOLATED by {%s}\n"
                      (String.concat "," (List.map string_of_int w))
                | None -> Printf.printf "VIOLATED\n");
                1
              end
          | None -> (
              match Tolerance.exhaustive ?jobs ?engine routing ~f with
              | v ->
                  Printf.printf
                    "worst surviving diameter over %d fault sets (<=%d faults): %s\n"
                    v.Tolerance.sets_checked f
                    (dist_cell v.Tolerance.worst);
                  0)
        with Invalid_argument msg ->
          Printf.eprintf "cannot check %s: %s\n" file msg;
          1)))
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"load a saved route table and fault-check it against its graph")
    Term.(
      const run $ graph_arg $ file_arg $ faults_arg $ bound_arg $ jobs_arg
      $ engine_arg $ metrics_arg $ trace_arg)

(* ---------------- attack ---------------- *)

let sanitize s =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c | _ -> '-')
    s

(* One construction (and one compiled table) per distinct provenance
   triple, shared across its witnesses. *)
let construction_cache () =
  let cache = Hashtbl.create 8 in
  fun key ->
    match Hashtbl.find_opt cache key with
    | Some r -> r
    | None ->
        let spec, strat, seed = key in
        let r =
          match Ftr_analysis.Graph_spec.parse spec with
          | Error e -> Error ("bad graph spec: " ^ e)
          | Ok g -> (
              match List.assoc_opt strat strategies with
              | None -> Error ("unknown strategy " ^ strat)
              | Some s -> (
                  match build_construction g s seed with
                  | exception Invalid_argument msg -> Error msg
                  | c -> Ok (c, Surviving.compile c.Construction.routing)))
        in
        Hashtbl.add cache key r;
        r

let replay_corpus dir =
  let files = Attack.Corpus.load_dir dir in
  if files = [] then begin
    Printf.printf "no corpus files under %s\n" dir;
    0
  end
  else begin
    let construction_for = construction_cache () in
    let checked = ref 0 and failures = ref 0 in
    List.iter
      (fun (path, parsed) ->
        match parsed with
        | Error e ->
            incr failures;
            Printf.printf "%s: PARSE ERROR: %s\n" path e
        | Ok entries ->
            List.iter
              (fun (e : Attack.Corpus.entry) ->
                incr checked;
                let label =
                  Printf.sprintf "%s %s seed=%d {%s}%s" e.graph e.strategy e.seed
                    (String.concat "," (List.map string_of_int e.faults))
                    (match e.edges with
                    | [] -> ""
                    | es ->
                        Printf.sprintf " links{%s}"
                          (String.concat ","
                             (List.map (fun (u, v) -> Printf.sprintf "%d-%d" u v) es)))
                in
                match construction_for (e.graph, e.strategy, e.seed) with
                | Error msg ->
                    incr failures;
                    Printf.printf "%-44s ERROR: %s\n" label msg
                | Ok (c, compiled) ->
                    let n = Graph.n (Routing.graph c.Construction.routing) in
                    if n <> e.n then begin
                      incr failures;
                      Printf.printf "%-44s STALE: n=%d, entry says %d\n" label n e.n
                    end
                    else
                      let stale_edges =
                        List.filter
                          (fun (u, v) -> Surviving.edge_id compiled u v = None)
                          e.edges
                      in
                      if stale_edges <> [] then begin
                        incr failures;
                        Printf.printf "%-44s STALE: %d witness link(s) not in graph\n"
                          label (List.length stale_edges)
                      end
                      else
                      let d =
                        if e.edges = [] then
                          Surviving.diameter_compiled compiled
                            ~faults:(Bitset.of_list n e.faults)
                        else begin
                          let ev = Surviving.evaluator compiled in
                          Surviving.set_mixed_faults ev ~nodes:e.faults
                            ~edges:
                              (List.filter_map
                                 (fun (u, v) -> Surviving.edge_id compiled u v)
                                 e.edges);
                          Surviving.evaluator_diameter ev
                        end
                      in
                      if not (Metrics.distance_le d e.diameter) then begin
                        incr failures;
                        Printf.printf "%-44s REGRESSION: now %s, stored %s\n" label
                          (dist_cell d) (dist_cell e.diameter)
                      end
                      else if d <> e.diameter then
                        Printf.printf "%-44s improved: now %s, stored %s\n" label
                          (dist_cell d) (dist_cell e.diameter)
                      else Printf.printf "%-44s ok (%s)\n" label (dist_cell d))
              entries)
      files;
    Printf.printf "replayed %d witness(es), %d failure(s)\n" !checked !failures;
    if !failures = 0 then 0 else 1
  end

let attack_cmd =
  let spec_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"GRAPH"
          ~doc:"Graph spec (as for the other subcommands); omit with $(b,--replay).")
  in
  let budget_arg =
    Arg.(
      value
      & opt int Attack.default_config.Attack.budget
      & info [ "budget" ] ~docv:"N" ~doc:"Max diameter evaluations for the search.")
  in
  let restarts_arg =
    Arg.(
      value
      & opt int Attack.default_config.Attack.restarts
      & info [ "restarts" ] ~docv:"N" ~doc:"Max restarts (pool-seeded first, then random).")
  in
  let corpus_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:"Append the shrunk witness to $(docv) (one JSON file per attacked \
                construction; duplicates are skipped).")
  in
  let replay_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"DIR"
          ~doc:"Replay every stored witness under $(docv) instead of searching; \
                exits non-zero if any witness now yields a larger surviving \
                diameter than recorded.")
  in
  let churn_arg =
    Arg.(
      value & flag
      & info [ "churn" ]
          ~doc:"After the search, run a message-level simulation where the \
                discovered witnesses crash in waves and recover.")
  in
  let universe_arg =
    Arg.(
      value
      & opt (enum [ ("nodes", `Nodes); ("links", `Links); ("mixed", `Mixed) ]) `Nodes
      & info [ "universe" ] ~docv:"U"
          ~doc:
            "Fault universe to search: $(b,nodes) (default), $(b,links) \
             (link faults only), or $(b,mixed) (node and link faults drawn \
             from one budget).")
  in
  let run spec strategy seed faults budget restarts corpus_dir replay churn universe
      jobs metrics trace =
    with_obs metrics trace @@ fun () ->
    match replay with
    | Some dir -> replay_corpus dir
    | None -> (
        match spec with
        | None ->
            Printf.eprintf "a GRAPH spec is required unless --replay is given\n";
            1
        | Some spec -> (
            match Ftr_analysis.Graph_spec.parse spec with
            | Error e ->
                Printf.eprintf "bad graph spec: %s\n" e;
                1
            | Ok g -> (
                match build_construction g strategy seed with
                | exception Invalid_argument msg ->
                    Printf.eprintf "cannot build: %s\n" msg;
                    1
                | c ->
                    let rng = Random.State.make [| seed; 3 |] in
                    let n = Graph.n g in
                    let default_f =
                      List.fold_left
                        (fun acc (cl : Construction.claim) -> max acc cl.max_faults)
                        1 c.claims
                    in
                    let f = Option.value faults ~default:default_f in
                    let config =
                      { Attack.default_config with Attack.budget; restarts }
                    in
                    let worst, w_nodes, w_edges, raw_nodes, raw_size, evals,
                        restarts_used =
                      match universe with
                      | `Nodes ->
                          let o =
                            Attack.search ~config ?jobs ~rng
                              ~pools:c.Construction.pools c.Construction.routing ~f
                          in
                          ( o.Attack.worst, o.Attack.witness, [],
                            o.Attack.raw_witness,
                            List.length o.Attack.raw_witness, o.Attack.evals,
                            o.Attack.restarts_used )
                      | (`Links | `Mixed) as u ->
                          let universe =
                            match u with `Links -> `Edges | `Mixed -> `Mixed
                          in
                          let o =
                            Attack.search_mixed ~config ?jobs ~rng
                              ~pools:c.Construction.pools ~universe
                              c.Construction.routing ~f
                          in
                          ( o.Attack.m_worst, o.Attack.m_nodes, o.Attack.m_edges,
                            o.Attack.m_raw_nodes,
                            List.length o.Attack.m_raw_nodes
                            + List.length o.Attack.m_raw_edges,
                            o.Attack.m_evals, o.Attack.m_restarts_used )
                    in
                    let witness_cell =
                      Printf.sprintf "{%s}%s"
                        (String.concat "," (List.map string_of_int w_nodes))
                        (match w_edges with
                        | [] -> ""
                        | es ->
                            Printf.sprintf " links{%s}"
                              (String.concat ","
                                 (List.map
                                    (fun (u, v) -> Printf.sprintf "%d-%d" u v)
                                    es)))
                    in
                    let sname = strategy_name strategy in
                    Printf.printf "attack              %s %s seed=%d f=%d\n" spec sname
                      seed f;
                    Printf.printf "worst found         %s\n" (dist_cell worst);
                    Printf.printf "witness             %s\n" witness_cell;
                    Printf.printf "shrunk              %d -> %d fault(s)\n" raw_size
                      (List.length w_nodes + List.length w_edges);
                    Printf.printf "evals used          %d (budget %d)\n" evals budget;
                    Printf.printf "restarts            %d\n" restarts_used;
                    let bound = Construction.bound_for c ~f in
                    (match bound with
                    | Some b ->
                        Printf.printf "claim bound         %d -> %s\n" b
                          (if Metrics.distance_le worst (Metrics.Finite b) then
                             "respected"
                           else "VIOLATED")
                    | None -> ());
                    let corpus_error = ref false in
                    (match corpus_dir with
                    | None -> ()
                    | Some dir when w_nodes = [] && w_edges = [] ->
                        Printf.printf "corpus              nothing to save in %s\n" dir
                    | Some dir -> (
                        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
                        let fname =
                          Filename.concat dir
                            (sanitize (spec ^ "__" ^ sname) ^ ".json")
                        in
                        let existing =
                          if Sys.file_exists fname then Attack.Corpus.load_file fname
                          else Ok []
                        in
                        match existing with
                        | Error msg ->
                            corpus_error := true;
                            Printf.eprintf "corpus              NOT saved (%s: %s)\n"
                              fname msg
                        | Ok entries ->
                            let entry =
                              {
                                Attack.Corpus.graph = spec;
                                strategy = sname;
                                seed;
                                n;
                                f;
                                faults = w_nodes;
                                edges = w_edges;
                                diameter = worst;
                                bound;
                                found_by = Printf.sprintf "attack(seed=%d)" seed;
                              }
                            in
                            let entries, added = Attack.Corpus.add entries entry in
                            if added then begin
                              Attack.Corpus.save_file fname entries;
                              Printf.printf "corpus              + %s\n" fname
                            end
                            else
                              Printf.printf "corpus              duplicate in %s\n"
                                fname));
                    if churn then begin
                      let waves =
                        List.sort_uniq compare [ w_nodes; raw_nodes ]
                        |> List.filter (fun w -> w <> [])
                      in
                      let net = Ftr_sim.Network.create c.Construction.routing in
                      let sim = Ftr_sim.Sim.create () in
                      Ftr_sim.Faults.schedule_on sim net
                        (Ftr_sim.Faults.witness_waves ~start:40.0 ~dwell:60.0
                           ~gap:20.0 waves);
                      if w_edges <> [] then
                        Ftr_sim.Faults.schedule_on sim net
                          (Ftr_sim.Faults.link_waves ~start:40.0 ~dwell:60.0
                             ~gap:20.0 [ w_edges ]);
                      let entries =
                        Ftr_sim.Workload.uniform ~rng ~n ~count:300 ~horizon:240.0
                      in
                      let msgs =
                        Ftr_sim.Protocol.deliver_all sim net
                          Ftr_sim.Protocol.default_config entries
                      in
                      let delivered =
                        List.filter
                          (fun m ->
                            m.Ftr_sim.Message.status = Ftr_sim.Message.Delivered)
                          msgs
                      in
                      Printf.printf "churn delivered     %d/%d over %d wave(s)\n"
                        (List.length delivered) (List.length msgs)
                        (max (List.length waves) (if w_edges <> [] then 1 else 0))
                    end;
                    if !corpus_error then 1 else 0)))
  in
  Cmd.v
    (Cmd.info "attack"
       ~doc:
         "search for diameter-maximizing fault sets, shrink the witness, and \
          maintain a regression corpus")
    Term.(
      const run $ spec_arg $ strategy_arg $ seed_arg $ faults_arg $ budget_arg
      $ restarts_arg $ corpus_arg $ replay_arg $ churn_arg $ universe_arg
      $ jobs_arg $ metrics_arg $ trace_arg)

(* ---------------- soak ---------------- *)

(* The soak-style gates (ftr soak, ftr serve --slo) share a documented
   exit-code contract so CI can tell a broken promise from a broken
   invocation from a broken environment. *)
let soak_exits =
  [
    Cmd.Exit.info 0 ~doc:"every check passed";
    Cmd.Exit.info 1
      ~doc:
        "a promise was breached: dead letters or dropped/degraded queries \
         within a proven (d, f) budget, a latency SLO miss, or a journal \
         replay divergence";
    Cmd.Exit.info 2 ~doc:"invalid flag values (usage error)";
    Cmd.Exit.info 3
      ~doc:
        "environment or input failure: unreadable or unparseable corpus, a \
         construction that no longer builds, socket setup failure";
  ]

let soak_cmd =
  let corpus_arg =
    Arg.(
      value & opt string "corpus"
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:"Witness corpus to replay as link-flap waves.")
  in
  let messages_arg =
    Arg.(
      value & opt int 300
      & info [ "messages" ] ~docv:"M" ~doc:"Messages per construction.")
  in
  let dwell_arg =
    Arg.(
      value & opt float 60.0
      & info [ "dwell" ] ~docv:"T" ~doc:"How long each wave of links stays down.")
  in
  let gap_arg =
    Arg.(
      value & opt float 20.0
      & info [ "gap" ] ~docv:"T" ~doc:"Healthy time between waves.")
  in
  (* Witness waves replay as link flaps via Faults.witness_links: a
     witness node becomes one incident link, so a within-budget
     witness stays within budget under the paper's endpoint
     reduction, and a within-budget wave must produce zero dead
     letters. *)
  let wave_of_entry g (e : Attack.Corpus.entry) =
    Ftr_sim.Faults.witness_links g ~nodes:e.faults ~links:e.edges
  in
  let run corpus_dir seed messages dwell gap metrics trace =
    with_obs metrics trace @@ fun () ->
    if messages <= 0 then begin
      Printf.eprintf "soak: --messages must be positive (got %d)\n" messages;
      2
    end
    else if dwell < 0.0 || gap < 0.0 then begin
      Printf.eprintf "soak: --dwell and --gap must be non-negative\n";
      2
    end
    else
    let files = Attack.Corpus.load_dir corpus_dir in
    if files = [] then begin
      Printf.printf "no corpus files under %s\n" corpus_dir;
      0
    end
    else begin
      let parse_errors =
        List.filter_map
          (fun (path, r) ->
            match r with Error e -> Some (path, e) | Ok _ -> None)
          files
      in
      if parse_errors <> [] then begin
        List.iter
          (fun (path, e) -> Printf.eprintf "%s: PARSE ERROR: %s\n" path e)
          parse_errors;
        3
      end
      else begin
        let entries =
          List.concat_map (fun (_, r) -> Result.get_ok r) files
        in
        (* One simulation per construction; each of its witnesses is
           one wave of link flaps. *)
        let groups = Hashtbl.create 8 in
        let order = ref [] in
        List.iter
          (fun (e : Attack.Corpus.entry) ->
            let key = (e.graph, e.strategy, e.seed) in
            if not (Hashtbl.mem groups key) then order := key :: !order;
            Hashtbl.replace groups key
              (e :: (Option.value (Hashtbl.find_opt groups key) ~default:[])))
          entries;
        let construction_for = construction_cache () in
        let breaches = ref 0 and infra = ref 0 in
        let all_msgs = ref [] in
        List.iter
          (fun ((spec, strat, cseed) as key) ->
            let group =
              List.rev (Option.value (Hashtbl.find_opt groups key) ~default:[])
            in
            match construction_for key with
            | Error msg ->
                incr infra;
                Printf.printf "%s %s seed=%d: ERROR: %s\n" spec strat cseed msg
            | Ok (c, _) ->
                let g = Routing.graph c.Construction.routing in
                let n = Graph.n g in
                let waves_all = List.map (wave_of_entry g) group in
                let waves = List.filter (fun w -> w <> []) waves_all in
                let nwaves = List.length waves in
                let start = 40.0 in
                let horizon =
                  start +. (float_of_int nwaves *. (dwell +. gap))
                in
                let net = Ftr_sim.Network.create c.Construction.routing in
                let sim = Ftr_sim.Sim.create () in
                Ftr_sim.Faults.schedule_on sim net
                  (Ftr_sim.Faults.link_waves ~start ~dwell ~gap waves);
                let rng = Random.State.make [| seed; 5 |] in
                let workload =
                  Ftr_sim.Workload.uniform ~rng ~n ~count:messages ~horizon
                in
                let msgs =
                  Ftr_sim.Protocol.deliver_all sim net
                    Ftr_sim.Protocol.hardened_config workload
                in
                all_msgs := msgs :: !all_msgs;
                let d = Ftr_sim.Stats.delivery_report msgs in
                let within_budget =
                  List.for_all2
                    (fun (e : Attack.Corpus.entry) w ->
                      List.length w <= e.f
                      && Construction.bound_for c ~f:(List.length w) <> None)
                    group waves_all
                in
                if within_budget && d.Ftr_sim.Stats.dead_letters > 0 then begin
                  incr breaches;
                  Printf.printf
                    "%s %s seed=%d: %d dead letter(s) within the claim budget\n"
                    spec strat cseed d.Ftr_sim.Stats.dead_letters
                end;
                Format.printf "%-32s %d wave(s)  %a@."
                  (Printf.sprintf "%s/%s seed=%d" spec strat cseed)
                  nwaves Ftr_sim.Stats.pp_delivery d)
          (List.rev !order);
        let total = Ftr_sim.Stats.delivery_report (List.concat !all_msgs) in
        Format.printf "%-32s          %a@." "TOTAL" Ftr_sim.Stats.pp_delivery total;
        (match total.Ftr_sim.Stats.replans_per_message with
        | Some s -> Format.printf "replans/message: %a@." Ftr_sim.Stats.pp_summary s
        | None -> ());
        if !infra > 0 then 3 else if !breaches > 0 then 1 else 0
      end
    end
  in
  Cmd.v
    (Cmd.info "soak" ~exits:soak_exits
       ~doc:
         "replay attack witnesses as link-flap waves against the \
          churn-hardened protocol and report delivery, latency, re-plans and \
          dead letters")
    Term.(
      const run $ corpus_arg $ seed_arg $ messages_arg $ dwell_arg $ gap_arg
      $ metrics_arg $ trace_arg)

(* ---------------- serve ---------------- *)

module Serve = Ftr_serve

(* The corpus carries CLI provenance (graph spec, strategy name,
   seed); this maps it back through the same strategy table as
   `ftr route`. *)
let build_for_corpus ~graph ~strategy ~seed =
  match Ftr_analysis.Graph_spec.parse graph with
  | Error e -> Error ("bad graph spec: " ^ e)
  | Ok g -> (
      match List.assoc_opt strategy strategies with
      | None -> Error (Printf.sprintf "unknown strategy %S" strategy)
      | Some s -> (
          match build_construction g s seed with
          | exception Invalid_argument msg -> Error msg
          | c -> Ok c))

let serve_cmd =
  let spec_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"GRAPH"
          ~doc:"Graph spec to serve (required unless $(b,--slo)).")
  in
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Unix domain socket to listen on (required unless $(b,--slo)). \
             Requests are newline-delimited JSON; see `ftr query` for a \
             client.")
  in
  let journal_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:
            "Write-ahead fault journal: every accepted fault delta is fsynced \
             to $(docv) before it is applied, and an existing journal is \
             replayed at startup so a restarted daemon resumes in the exact \
             fault state it died in.")
  in
  let max_queue_arg =
    Arg.(
      value & opt int 64
      & info [ "max-queue" ] ~docv:"N"
          ~doc:
            "Admission budget: requests arriving while $(docv) are already \
             queued are shed with an explicit response rather than queued \
             without bound.")
  in
  let deadline_arg =
    Arg.(
      value & opt float 0.0
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "Per-request wait deadline: a request that waits longer than \
             $(docv) in the admission queue is expired (answered with a shed \
             response), not served late. 0 disables.")
  in
  let bound_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "bound" ] ~docv:"D"
          ~doc:
            "Proven diameter bound in force: surviving routes longer than \
             $(docv) are answered but flagged degraded. Default: the \
             tightest claim covering the construction's full fault budget.")
  in
  let slo_arg =
    Arg.(
      value & flag
      & info [ "slo" ]
          ~doc:
            "SLO soak mode: instead of listening on a socket, replay the \
             witness corpus as live churn through the same serve stack \
             (admission, journal, degraded mode) and exit non-zero on any \
             dropped in-budget query, over-bound route, journal divergence \
             or p99 latency breach.")
  in
  let corpus_arg =
    Arg.(
      value & opt string "corpus"
      & info [ "corpus" ] ~docv:"DIR" ~doc:"Witness corpus for $(b,--slo).")
  in
  let queries_arg =
    Arg.(
      value & opt int 40
      & info [ "queries" ] ~docv:"Q"
          ~doc:"Route queries per soak phase (baseline, per-wave, recovery).")
  in
  let slo_p99_arg =
    Arg.(
      value & opt float 25.0
      & info [ "slo-p99-ms" ] ~docv:"MS"
          ~doc:"p99 service-latency threshold for $(b,--slo).")
  in
  let certify_arg =
    Arg.(
      value & flag
      & info [ "certify" ]
          ~doc:
            "Before soaking each construction, exhaustively re-certify the \
             in-budget (d, f) claim its witnesses run under \
             ($(b,--jobs) parallelises this).")
  in
  let slo_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "slo-out" ] ~docv:"FILE"
          ~doc:"Write the slo.json artifact (per-construction reports, \
                percentiles, verdict).")
  in
  let gray_factor_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "gray-factor" ] ~docv:"F"
          ~doc:
            "With $(b,--slo): insert a gray-failure wave after each \
             construction's baseline — two links degrade to $(docv) times \
             healthy latency (never dropped), the full in-budget contract \
             must hold unchanged, and restoring must return the fault digest \
             byte-identical. $(docv) must be at least 1.")
  in
  let journal_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal-dir" ] ~docv:"DIR"
          ~doc:
            "Directory for the soak's per-construction fault journals \
             (default: the system temp directory).")
  in
  let run spec strategy seed socket journal max_queue deadline_ms bound slo
      corpus queries slo_p99 certify slo_out journal_dir gray_factor jobs
      metrics trace =
    with_obs metrics trace @@ fun () ->
    if slo then begin
      let run_slo () =
        let files = Attack.Corpus.load_dir corpus in
        if files = [] then begin
          Printf.printf "no corpus files under %s\n" corpus;
          0
        end
        else begin
          let parse_errors =
            List.filter_map
              (fun (path, r) ->
                match r with Error e -> Some (path, e) | Ok _ -> None)
              files
          in
          if parse_errors <> [] then begin
            List.iter
              (fun (path, e) -> Printf.eprintf "%s: PARSE ERROR: %s\n" path e)
              parse_errors;
            3
          end
          else begin
            let entries =
              List.concat_map (fun (_, r) -> Result.get_ok r) files
            in
            let jdir =
              match journal_dir with
              | Some d -> d
              | None -> Filename.get_temp_dir_name ()
            in
            let cfg =
              {
                Serve.Soak.queries;
                slo_p99_ms = slo_p99;
                seed;
                jobs;
                certify;
                journal_dir = jdir;
                gray_factor;
              }
            in
            let outcome = Serve.Soak.run ~build:build_for_corpus ~entries cfg in
            List.iter
              (fun (r : Serve.Soak.report) ->
                match r.Serve.Soak.infra with
                | Some msg -> Printf.printf "%-32s INFRA: %s\n" r.label msg
                | None ->
                    Printf.printf
                      "%-32s %d wave(s) (%d in-budget)  %d queries  %d \
                       degraded  %d shed  p99=%s%s%s\n"
                      r.label r.waves r.in_budget_waves r.queries r.degraded
                      r.shed
                      (match r.p99_ms with
                      | Some p -> Printf.sprintf "%.3fms" p
                      | None -> "-")
                      (match r.certified with
                      | Some (b, k) -> Printf.sprintf "  certified(%d,%d)" b k
                      | None -> "")
                      (if r.journal_digest_ok then ""
                       else "  JOURNAL-DIVERGED");
                    List.iter
                      (fun v -> Printf.printf "    violation: %s\n" v)
                      r.violations)
              outcome.Serve.Soak.reports;
            Printf.printf "total: %d queries, dropped-in-budget=%d, p99=%s -> %s\n"
              outcome.Serve.Soak.total_queries
              outcome.Serve.Soak.dropped_in_budget
              (match outcome.Serve.Soak.p99_ms with
              | Some p -> Printf.sprintf "%.3fms" p
              | None -> "-")
              (Serve.Exit_code.describe outcome.Serve.Soak.exit);
            (match slo_out with
            | None -> ()
            | Some path -> (
                try
                  let oc = open_out path in
                  output_string oc
                    (Serve.Sjson.to_string (Serve.Soak.to_json cfg outcome));
                  output_char oc '\n';
                  close_out oc
                with Sys_error e ->
                  Printf.eprintf "cannot write %s: %s\n" path e));
            Serve.Exit_code.to_int outcome.Serve.Soak.exit
          end
        end
      in
      if queries <= 0 then begin
        Printf.eprintf "serve --slo: --queries must be positive (got %d)\n"
          queries;
        2
      end
      else if slo_p99 <= 0.0 then begin
        Printf.eprintf "serve --slo: --slo-p99-ms must be positive (got %g)\n"
          slo_p99;
        2
      end
      else begin
        match gray_factor with
        | Some f when (not (Float.is_finite f)) || f < 1.0 ->
            Printf.eprintf
              "serve --slo: --gray-factor must be finite and >= 1 (got %g)\n" f;
            2
        | _ -> run_slo ()
      end
    end
    else begin
      match (spec, socket) with
      | None, _ ->
          Printf.eprintf "a GRAPH spec is required unless --slo is given\n";
          2
      | _, None ->
          Printf.eprintf "--socket PATH is required unless --slo is given\n";
          2
      | Some spec, Some socket ->
          if max_queue <= 0 then begin
            Printf.eprintf "serve: --max-queue must be positive (got %d)\n"
              max_queue;
            2
          end
          else if deadline_ms < 0.0 then begin
            Printf.eprintf "serve: --deadline-ms must be non-negative\n";
            2
          end
          else begin
            match Ftr_analysis.Graph_spec.parse spec with
            | Error e ->
                Printf.eprintf "bad graph spec: %s\n" e;
                3
            | Ok g -> (
                match build_construction g strategy seed with
                | exception Invalid_argument msg ->
                    Printf.eprintf "cannot build: %s\n" msg;
                    3
                | c -> (
                    let engine = Serve.Engine.create c.Construction.routing in
                    let fmax =
                      List.fold_left
                        (fun acc (cl : Construction.claim) ->
                          max acc cl.max_faults)
                        0 c.Construction.claims
                    in
                    let bound =
                      match bound with
                      | Some _ as b -> b
                      | None -> Construction.bound_for c ~f:fmax
                    in
                    let journal_setup =
                      match journal with
                      | None -> Ok None
                      | Some path -> (
                          match Serve.Journal.load path with
                          | Error msg -> Error msg
                          | Ok events -> (
                              match Serve.Engine.replay engine events with
                              | Error msg -> Error ("journal replay: " ^ msg)
                              | Ok _ -> (
                                  if events <> [] then
                                    Printf.printf
                                      "journal             replayed %d \
                                       event(s) -> %s\n"
                                      (List.length events)
                                      (Serve.Engine.digest engine);
                                  match Serve.Journal.create path with
                                  | Error msg -> Error msg
                                  | Ok j -> Ok (Some j))))
                    in
                    match journal_setup with
                    | Error msg ->
                        Printf.eprintf "serve: %s\n" msg;
                        3
                    | Ok journal -> (
                        let srv =
                          match journal with
                          | Some j ->
                              Serve.Server.create ~journal:j
                                {
                                  Serve.Server.max_queue;
                                  deadline = deadline_ms /. 1000.0;
                                  bound;
                                }
                                engine
                          | None ->
                              Serve.Server.create
                                {
                                  Serve.Server.max_queue;
                                  deadline = deadline_ms /. 1000.0;
                                  bound;
                                }
                                engine
                        in
                        Printf.printf "serving %s/%s seed=%d on %s (bound=%s)\n"
                          spec (strategy_name strategy) seed socket
                          (match bound with
                          | Some b -> string_of_int b
                          | None -> "none");
                        flush stdout;
                        match Serve.Server.run srv ~socket with
                        | Ok () -> 0
                        | Error msg ->
                            Printf.eprintf "serve: %s\n" msg;
                            3)))
          end
    end
  in
  Cmd.v
    (Cmd.info "serve" ~exits:soak_exits
       ~doc:
         "long-lived routing daemon: compile once, answer surviving-route \
          and diameter queries over a Unix socket while faults arrive as \
          incremental deltas; with $(b,--slo), soak the same stack against \
          the witness corpus and gate on latency and degradation SLOs")
    Term.(
      const run $ spec_arg $ strategy_arg $ seed_arg $ socket_arg $ journal_arg
      $ max_queue_arg $ deadline_arg $ bound_arg $ slo_arg $ corpus_arg
      $ queries_arg $ slo_p99_arg $ certify_arg $ slo_out_arg $ journal_dir_arg
      $ gray_factor_arg $ jobs_arg $ metrics_arg $ trace_arg)

(* ---------------- query ---------------- *)

let query_cmd =
  let socket_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc:"The daemon's socket.")
  in
  let timeout_arg =
    Arg.(
      value & opt float 10.0
      & info [ "timeout" ] ~docv:"SEC"
          ~doc:"Give up on a response after $(docv) seconds.")
  in
  let retries_arg =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Retry the whole request batch up to $(docv) times when the \
             daemon cannot be reached or the connection dies mid-stream \
             (capped exponential backoff between attempts). Application \
             errors — a response with ok=false — are never retried.")
  in
  let retry_deadline_arg =
    Arg.(
      value & opt float 30.0
      & info [ "retry-deadline" ] ~docv:"SEC"
          ~doc:
            "Total wall-clock budget across all attempts; once spent, no \
             further retry is scheduled even if $(b,--retries) remain.")
  in
  let reqs_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"REQUEST"
          ~doc:
            "Requests, sent in order: raw JSON (anything starting with '{') \
             or shorthand $(b,health), $(b,ready), $(b,stats), $(b,drain), \
             $(b,diameter), $(b,route:SRC:DST), $(b,fail:V), \
             $(b,recover:V), $(b,fail-link:U:V), $(b,recover-link:U:V), \
             $(b,degrade-link:U:V:FACTOR), $(b,restore-link:U:V).")
  in
  let parse_request s =
    if String.length s > 0 && s.[0] = '{' then Ok s
    else
      let line r = Ok (Serve.Wire.request_to_line r) in
      let node mk v =
        match int_of_string_opt v with
        | Some v -> line (Serve.Wire.Fault (mk v))
        | None -> Error (Printf.sprintf "bad node in %S" s)
      in
      let link mk u v =
        match (int_of_string_opt u, int_of_string_opt v) with
        | Some u, Some v -> line (Serve.Wire.Fault (mk u v))
        | _ -> Error (Printf.sprintf "bad link in %S" s)
      in
      match String.split_on_char ':' s with
      | [ "health" ] -> line Serve.Wire.Health
      | [ "ready" ] -> line Serve.Wire.Ready
      | [ "stats" ] -> line Serve.Wire.Stats
      | [ "drain" ] -> line Serve.Wire.Drain
      | [ "diameter" ] -> line Serve.Wire.Diameter
      | [ "route"; a; b ] -> (
          match (int_of_string_opt a, int_of_string_opt b) with
          | Some src, Some dst -> line (Serve.Wire.Route { src; dst })
          | _ -> Error (Printf.sprintf "bad route endpoints in %S" s))
      | [ "fail"; v ] -> node (fun v -> Serve.Wire.Fail_node v) v
      | [ "recover"; v ] -> node (fun v -> Serve.Wire.Recover_node v) v
      | [ "fail-link"; u; v ] ->
          link (fun u v -> Serve.Wire.Fail_link (u, v)) u v
      | [ "recover-link"; u; v ] ->
          link (fun u v -> Serve.Wire.Recover_link (u, v)) u v
      | [ "degrade-link"; u; v; f ] -> (
          match float_of_string_opt f with
          | Some f when Float.is_finite f && f >= 1.0 ->
              link (fun u v -> Serve.Wire.Degrade_link (u, v, f)) u v
          | _ -> Error (Printf.sprintf "bad degrade factor in %S" s))
      | [ "restore-link"; u; v ] ->
          link (fun u v -> Serve.Wire.Restore_link (u, v)) u v
      | _ -> Error (Printf.sprintf "cannot parse request %S" s)
  in
  (* One full attempt: connect, send every request, read every
     response. [Error msg] means the daemon was unreachable or the
     connection died mid-stream — the transport failures a retry can
     fix. An ok=false response is an application answer, never
     retried. *)
  let attempt socket timeout lines =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX socket) with
    | exception Unix.Unix_error (e, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Error
          (Printf.sprintf "cannot connect to %s: %s" socket
             (Unix.error_message e))
    | () ->
        (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout
         with Unix.Unix_error _ -> ());
        let ic = Unix.in_channel_of_descr fd in
        let oc = Unix.out_channel_of_descr fd in
        let all_ok = ref true in
        let result =
          try
            List.iter
              (fun l ->
                output_string oc (l ^ "\n");
                flush oc;
                let resp = input_line ic in
                print_endline resp;
                match Serve.Sjson.parse resp with
                | Ok json
                  when Option.value ~default:false
                         (Option.bind
                            (Serve.Sjson.member "ok" json)
                            Serve.Sjson.to_bool) ->
                    ()
                | _ -> all_ok := false)
              lines;
            Ok (if !all_ok then 0 else 1)
          with
          | End_of_file | Sys_error _ -> Error "connection lost"
          | Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
        in
        (try Unix.close fd with Unix.Unix_error _ -> ());
        result
  in
  let run socket timeout retries retry_deadline reqs metrics trace =
    with_obs metrics trace @@ fun () ->
    if reqs = [] then begin
      Printf.eprintf "query: no requests given\n";
      2
    end
    else if retries < 0 then begin
      Printf.eprintf "query: --retries must be non-negative (got %d)\n" retries;
      2
    end
    else if not (Float.is_finite retry_deadline && retry_deadline > 0.0) then begin
      Printf.eprintf "query: --retry-deadline must be positive\n";
      2
    end
    else begin
      let parsed = List.map parse_request reqs in
      let errors =
        List.filter_map (function Error e -> Some e | Ok _ -> None) parsed
      in
      if errors <> [] then begin
        List.iter (fun e -> Printf.eprintf "query: %s\n" e) errors;
        2
      end
      else begin
        let lines =
          List.filter_map (function Ok l -> Some l | Error _ -> None) parsed
        in
        (* Capped exponential backoff: 0.1s, 0.2s, 0.4s, ... topping
           out at 2s, all under one total wall-clock budget. *)
        let start = Unix.gettimeofday () in
        let backoff k = Float.min 2.0 (0.1 *. (2.0 ** float_of_int k)) in
        let rec go k =
          match attempt socket timeout lines with
          | Ok rc -> rc
          | Error msg ->
              let elapsed = Unix.gettimeofday () -. start in
              if k >= retries then begin
                Printf.eprintf "query: %s\n" msg;
                3
              end
              else if elapsed +. backoff k > retry_deadline then begin
                Printf.eprintf
                  "query: %s (retry deadline %.1fs spent after %d attempt(s))\n"
                  msg retry_deadline (k + 1);
                3
              end
              else begin
                Printf.eprintf "query: %s, retrying in %.1fs (%d/%d)\n" msg
                  (backoff k) (k + 1) retries;
                Unix.sleepf (backoff k);
                Ftr_obs.Obs.incr c_query_retries;
                go (k + 1)
              end
        in
        go 0
      end
    end
  in
  Cmd.v
    (Cmd.info "query" ~exits:soak_exits
       ~doc:
         "send requests to a running `ftr serve` daemon and print each \
          response; exits non-zero if any response is not ok; transport \
          failures retry under a capped exponential backoff when \
          $(b,--retries) is given")
    Term.(
      const run $ socket_arg $ timeout_arg $ retries_arg $ retry_deadline_arg
      $ reqs_arg $ metrics_arg $ trace_arg)

(* ---------------- chaos ---------------- *)

let chaos_cmd =
  let queries_arg =
    Arg.(
      value & opt int 60
      & info [ "queries" ] ~docv:"Q"
          ~doc:"Route queries per query phase (baseline, gray, regional).")
  in
  let burst_arg =
    Arg.(
      value & opt int 96
      & info [ "burst" ] ~docv:"N"
          ~doc:
            "Flash-crowd size: $(docv) hub-bound queries submitted faster \
             than the pump drains. Exceed $(b,--max-queue) to force \
             admission shedding.")
  in
  let max_queue_arg =
    Arg.(
      value & opt int 32
      & info [ "max-queue" ] ~docv:"N" ~doc:"Admission queue budget.")
  in
  let deadline_ticks_arg =
    Arg.(
      value & opt float 64.0
      & info [ "deadline-ticks" ] ~docv:"T"
          ~doc:
            "Admission deadline in virtual clock ticks (one tick per \
             submission); requests queued longer are shed. 0 disables.")
  in
  let gray_factor_arg =
    Arg.(
      value & opt float 8.0
      & info [ "gray-factor" ] ~docv:"F"
          ~doc:
            "Latency factor for the gray wave: every link of the chosen \
             BFS ball slows to $(docv) times healthy latency without \
             dropping. Must be finite and at least 1.")
  in
  let radius_arg =
    Arg.(
      value & opt int 1
      & info [ "radius" ] ~docv:"R"
          ~doc:"BFS-ball radius for the gray and regional waves.")
  in
  let zipf_arg =
    Arg.(
      value & opt float 1.1
      & info [ "zipf-s" ] ~docv:"S"
          ~doc:
            "Zipf exponent for pair popularity in the query phases; 0 \
             makes the workload uniform.")
  in
  let slo_p99_arg =
    Arg.(
      value & opt float 50.0
      & info [ "slo-p99-ms" ] ~docv:"MS"
          ~doc:
            "Wall-clock p99 service-latency gate. The verdict (a boolean) \
             is in the artifact; the raw percentiles are stdout-only.")
  in
  let min_delivery_arg =
    Arg.(
      value & opt float 0.5
      & info [ "min-delivery" ] ~docv:"RATE"
          ~doc:
            "Delivery-rate floor for the correlated regional-outage phase, \
             in [0, 1].")
  in
  let certify_arg =
    Arg.(
      value & flag
      & info [ "certify" ]
          ~doc:
            "Exhaustively re-certify the construction's (bound, 1) claim \
             before the scenario runs ($(b,--jobs) parallelises this; the \
             artifact is byte-identical either way).")
  in
  let journal_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal-dir" ] ~docv:"DIR"
          ~doc:
            "Directory for the scenario's fault journal (default: the \
             system temp directory).")
  in
  let chaos_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "chaos-out" ] ~docv:"FILE"
          ~doc:
            "Write the ftr-chaos/1 artifact: config echo, per-phase \
             counts, digests and the exit verdict. Deterministic — \
             byte-identical across $(b,--jobs) values.")
  in
  let run g strategy seed queries burst max_queue deadline_ticks gray_factor
      radius zipf_s slo_p99 min_delivery certify journal_dir chaos_out jobs
      metrics trace =
    with_obs metrics trace @@ fun () ->
    if queries <= 0 then begin
      Printf.eprintf "chaos: --queries must be positive (got %d)\n" queries;
      2
    end
    else if burst <= 0 then begin
      Printf.eprintf "chaos: --burst must be positive (got %d)\n" burst;
      2
    end
    else if max_queue <= 0 then begin
      Printf.eprintf "chaos: --max-queue must be positive (got %d)\n" max_queue;
      2
    end
    else if not (Float.is_finite gray_factor && gray_factor >= 1.0) then begin
      Printf.eprintf "chaos: --gray-factor must be finite and >= 1 (got %g)\n"
        gray_factor;
      2
    end
    else if radius < 1 then begin
      Printf.eprintf "chaos: --radius must be at least 1 (got %d)\n" radius;
      2
    end
    else if not (Float.is_finite zipf_s && zipf_s >= 0.0) then begin
      Printf.eprintf "chaos: --zipf-s must be finite and >= 0 (got %g)\n" zipf_s;
      2
    end
    else if slo_p99 <= 0.0 then begin
      Printf.eprintf "chaos: --slo-p99-ms must be positive (got %g)\n" slo_p99;
      2
    end
    else if not (min_delivery >= 0.0 && min_delivery <= 1.0) then begin
      Printf.eprintf "chaos: --min-delivery must be in [0, 1] (got %g)\n"
        min_delivery;
      2
    end
    else begin
      match build_construction g strategy seed with
      | exception Invalid_argument msg ->
          Printf.eprintf "chaos: cannot build: %s\n" msg;
          3
      | c ->
          let jdir =
            match journal_dir with
            | Some d -> d
            | None -> Filename.get_temp_dir_name ()
          in
          let cfg =
            {
              Serve.Chaos.queries;
              burst;
              max_queue;
              deadline_ticks;
              gray_factor;
              radius;
              zipf_s;
              slo_p99_ms = slo_p99;
              min_delivery;
              seed;
              jobs;
              certify;
              journal_dir = jdir;
            }
          in
          let outcome = Serve.Chaos.run c cfg in
          (match outcome.Serve.Chaos.infra with
          | Some msg -> Printf.printf "INFRA: %s\n" msg
          | None ->
              List.iter
                (fun (p : Serve.Chaos.phase) ->
                  Printf.printf
                    "%-12s %4d requests  %4d delivered  %3d degraded  %3d \
                     unreachable  %3d shed\n"
                    p.name p.requests p.delivered p.degraded p.unreachable
                    p.shed)
                outcome.Serve.Chaos.phases;
              Printf.printf
                "total: %d requests, %d delivered (%.1f%%), %d shed, %d \
                 virtual tick(s)\n"
                outcome.Serve.Chaos.total_requests
                outcome.Serve.Chaos.delivered
                (100.0 *. outcome.Serve.Chaos.delivery_rate)
                outcome.Serve.Chaos.shed outcome.Serve.Chaos.virtual_ticks;
              (match outcome.Serve.Chaos.certified with
              | Some (b, k) -> Printf.printf "certified: (%d,%d)\n" b k
              | None -> ());
              Printf.printf "journal digest: %s, convergence: %s\n"
                (if outcome.Serve.Chaos.journal_digest_ok then "ok"
                 else "DIVERGED")
                (if outcome.Serve.Chaos.digest_converged then "ok"
                 else "DIVERGED");
              Printf.printf "latency: p50=%s p99=%s (gate %.3fms) -> %s\n"
                (match outcome.Serve.Chaos.p50_ms with
                | Some p -> Printf.sprintf "%.3fms" p
                | None -> "-")
                (match outcome.Serve.Chaos.p99_ms with
                | Some p -> Printf.sprintf "%.3fms" p
                | None -> "-")
                slo_p99
                (if outcome.Serve.Chaos.slo_breached then "BREACH" else "ok");
              List.iter
                (fun v -> Printf.printf "violation: %s\n" v)
                outcome.Serve.Chaos.violations);
          Printf.printf "%s\n"
            (Serve.Exit_code.describe outcome.Serve.Chaos.exit);
          (match chaos_out with
          | None -> ()
          | Some path -> (
              try
                let oc = open_out path in
                output_string oc
                  (Serve.Sjson.to_string (Serve.Chaos.to_json cfg outcome));
                output_char oc '\n';
                close_out oc
              with Sys_error e ->
                Printf.eprintf "cannot write %s: %s\n" path e));
          Serve.Exit_code.to_int outcome.Serve.Chaos.exit
    end
  in
  Cmd.v
    (Cmd.info "chaos" ~exits:soak_exits
       ~doc:
         "gray-failure and heavy-traffic chaos scenario against the live \
          serve stack: Zipf baseline, latency-only gray wave, correlated \
          regional outage with a journal crash/rebuild, flash-crowd \
          admission shedding, convergence — exits non-zero on any broken \
          gate and emits a deterministic ftr-chaos/1 artifact")
    Term.(
      const run $ graph_arg $ strategy_arg $ seed_arg $ queries_arg $ burst_arg
      $ max_queue_arg $ deadline_ticks_arg $ gray_factor_arg $ radius_arg
      $ zipf_arg $ slo_p99_arg $ min_delivery_arg $ certify_arg
      $ journal_dir_arg $ chaos_out_arg $ jobs_arg $ metrics_arg $ trace_arg)

(* ---------------- compact ---------------- *)

let compact_exits =
  [
    Cmd.Exit.info 0 ~doc:"built, spot-validated and certified within budget";
    Cmd.Exit.info 1
      ~doc:
        "a breach: a sampled pair pushed past the bound, a spot-validation \
         failure, or the live heap exceeded $(b,--budget-mb)";
    Cmd.Exit.info 2 ~doc:"invalid family spec or flag values (usage error)";
  ]

let compact_cmd =
  let family_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FAMILY"
          ~doc:
            "Compact family spec: hypercube:D, hypercube:D:bi, debruijn:D or \
             ccc:D (label-computed route tables; no O(n^2) materialisation).")
  in
  let bound_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "bound"; "d" ] ~docv:"D"
          ~doc:
            "Surviving-route-graph diameter bound to certify (default: the \
             family's claim for $(b,--f)).")
  in
  let sets_arg =
    Arg.(
      value & opt int 32
      & info [ "sets" ] ~docv:"N" ~doc:"Random fault sets to sample.")
  in
  let pairs_arg =
    Arg.(
      value & opt int 64
      & info [ "pairs" ] ~docv:"N" ~doc:"Sampled vertex pairs probed per fault set.")
  in
  let attack_steps_arg =
    Arg.(
      value & opt int 40
      & info [ "attack-steps" ] ~docv:"N"
          ~doc:
            "Hill-climbing swap attempts per restart of the sampled adversarial \
             search (0 disables the search).")
  in
  let probe_budget_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "probe-budget" ] ~docv:"N"
          ~doc:
            "Route lookups per distance probe (default 2n+1, which makes \
             probes exact for bounds up to 2).")
  in
  let budget_mb_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "budget-mb" ] ~docv:"MB"
          ~doc:
            "Fail (exit 1) if the live heap — measured by the GC after a full \
             major collection — exceeds $(docv) at any stage boundary.")
  in
  let save_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "save" ] ~docv:"FILE"
          ~doc:"Write the routing (one-line ftr-routing 2 compact header).")
  in
  let run spec faults bound sets pairs attack_steps probe_budget budget_mb save
      seed jobs metrics trace =
    with_obs metrics trace @@ fun () ->
    if sets < 0 || pairs <= 0 || attack_steps < 0 then begin
      Printf.eprintf
        "compact: --sets/--attack-steps must be non-negative, --pairs positive\n";
      2
    end
    else
      match Compact_family.of_spec spec with
      | Error e ->
          Printf.eprintf "compact: %s\n" e;
          2
      | Ok _ as first -> (
          (* Rebuild inside the try so the build itself is under the
             memory guard; the first parse only validated the spec. *)
          ignore first;
          try
            let t0 = Unix.gettimeofday () in
            let c =
              match Compact_family.of_spec spec with
              | Ok c -> c
              | Error e -> failwith e
            in
            let build_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
            Budget.check ?limit_mb:budget_mb ~stage:"build" ();
            let routing = c.Construction.routing in
            let g = Routing.graph routing in
            let n = Graph.n g in
            let f =
              match faults with
              | Some f -> f
              | None -> (Construction.strongest_claim c).Construction.max_faults
            in
            let bound =
              match bound with
              | Some b -> b
              | None -> (
                  match Construction.bound_for c ~f with
                  | Some b -> b
                  | None ->
                      (Construction.strongest_claim c).Construction.diameter_bound)
            in
            let table_bytes =
              match Routing.compact routing with
              | Some cc -> Compact.bytes cc
              | None -> 0
            in
            Printf.printf "construction        %s\n" c.Construction.name;
            Printf.printf "vertices / edges    %d / %d\n" n (Graph.m g);
            Printf.printf "backend             %s\n" (Routing.backend_name routing);
            Printf.printf "build time          %.1f ms\n" build_ms;
            Printf.printf "table bytes         %d (%.4f bytes/route)\n" table_bytes
              (float_of_int table_bytes
              /. float_of_int (max 1 (Routing.route_count routing)));
            (* Spot validation: full Routing.validate walks all n(n-1)
               routes; sample instead, seeded and deterministic. *)
            let rng = Random.State.make [| seed; 0xC0 |] in
            let spot = min 2000 (n * (n - 1)) in
            let bad = ref None in
            for _ = 1 to spot do
              if !bad = None && n >= 2 then begin
                let src = Random.State.int rng n in
                let d = Random.State.int rng (n - 1) in
                let dst = if d >= src then d + 1 else d in
                match Routing.find routing src dst with
                | None -> bad := Some (src, dst, "no route")
                | Some p ->
                    if
                      Path.source p <> src || Path.target p <> dst
                      || not (Path.is_valid_in g p)
                    then bad := Some (src, dst, "invalid route")
              end
            done;
            (match !bad with
            | Some (src, dst, why) ->
                failwith (Printf.sprintf "route (%d, %d): %s" src dst why)
            | None -> Printf.printf "spot validation     ok (%d routes)\n" spot);
            let rng = Random.State.make [| seed; 0xC1 |] in
            let v =
              Tolerance.sampled ?jobs ?probe_budget ~pools:c.Construction.pools
                routing ~f ~bound ~rng ~sets ~pairs
            in
            Printf.printf "sampled certify     f=%d bound=%d worst=%s sets=%d pairs=%d -> %s\n"
              f bound (dist_cell v.Tolerance.sv_worst) v.Tolerance.sv_sets_checked
              v.Tolerance.sv_pairs_checked
              (if v.Tolerance.sv_holds then "ok" else "VIOLATION");
            if not v.Tolerance.sv_holds then begin
              Printf.printf "  witness fault set: {%s}\n"
                (String.concat ","
                   (List.map string_of_int v.Tolerance.sv_witness_faults));
              match v.Tolerance.sv_witness_pair with
              | Some (s, d) -> Printf.printf "  witness pair:      (%d, %d)\n" s d
              | None -> ()
            end;
            let attack_flagged =
              if attack_steps = 0 then 0
              else begin
                let rng = Random.State.make [| seed; 0xC2 |] in
                let o =
                  Attack.search_sampled ~steps:attack_steps ?jobs ?probe_budget
                    ~rng ~pools:c.Construction.pools routing ~f ~bound ~pairs
                in
                Printf.printf
                  "sampled attack      worst=%s flagged=%d probes=%d -> %s\n"
                  (dist_cell o.Attack.s_worst) o.Attack.s_flagged o.Attack.s_probes
                  (if o.Attack.s_flagged = 0 then "ok" else "VIOLATION");
                if o.Attack.s_flagged > 0 then
                  Printf.printf "  witness fault set: {%s}\n"
                    (String.concat "," (List.map string_of_int o.Attack.s_witness));
                o.Attack.s_flagged
              end
            in
            (match save with
            | None -> ()
            | Some path ->
                let oc = open_out path in
                output_string oc (Routing_io.to_string routing);
                close_out oc;
                Printf.printf "saved               %s\n" path);
            Budget.check ?limit_mb:budget_mb ~stage:"certify" ();
            Printf.printf "live heap           %.1f MB%s\n" (Budget.live_mb ())
              (match budget_mb with
              | Some mb -> Printf.sprintf " (budget %d MB)" mb
              | None -> "");
            (* Keep the construction reachable across the measurement:
               without this the GC is entitled to collect the graph and
               table first, and the guard would measure an empty heap. *)
            ignore (Sys.opaque_identity c);
            if v.Tolerance.sv_holds && attack_flagged = 0 then 0 else 1
          with
          | Budget.Exceeded _ as e ->
              Printf.eprintf "compact: %s\n" (Printexc.to_string e);
              1
          | Failure msg | Invalid_argument msg ->
              Printf.eprintf "compact: %s\n" msg;
              1)
  in
  Cmd.v
    (Cmd.info "compact" ~exits:compact_exits
       ~doc:
         "build a compact (label-computed) routing for a structured family at \
          10^5-10^6 nodes, spot-validate it, and certify its empirical (d, f) \
          claim with sampled + adversarial probing under a memory budget")
    Term.(
      const run $ family_arg $ faults_arg $ bound_arg $ sets_arg $ pairs_arg
      $ attack_steps_arg $ probe_budget_arg $ budget_mb_arg $ save_arg $ seed_arg
      $ jobs_arg $ metrics_arg $ trace_arg)

(* ---------------- dot ---------------- *)

let dot_cmd =
  let out = Arg.(value & opt (some string) None & info [ "o" ] ~docv:"FILE" ~doc:"Output file.") in
  let run g out =
    let dot = Dot.of_graph g in
    (match out with
    | Some path ->
        let oc = open_out path in
        output_string oc dot;
        close_out oc
    | None -> print_string dot);
    0
  in
  Cmd.v (Cmd.info "dot" ~doc:"Graphviz export") Term.(const run $ graph_arg $ out)

(* ---------------- lint-artifacts ---------------- *)

module Certify = Ftr_analysis.Certify

let lint_artifacts_cmd =
  let paths_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"PATH"
          ~doc:"Witness-corpus JSON files or directories of them (e.g. corpus/).")
  in
  let routing_file_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "routing" ] ~docv:"FILE"
          ~doc:
            "Also certify an ftr-routing table. With $(b,--graph) every route \
             is validated against the graph; without it only the header line \
             is certified (version, vertex count, kind tag, and — for the \
             version-2 compact format — the spec parse and its \
             n-consistency).")
  in
  let routing_graph_arg =
    let graph_conv = Arg.conv' Ftr_analysis.Graph_spec.conv in
    Arg.(
      value
      & opt (some graph_conv) None
      & info [ "graph" ] ~docv:"GRAPH"
          ~doc:"The graph the $(b,--routing) table routes over.")
  in
  (* The corpus carries CLI provenance (graph spec, strategy name,
     seed), so rebuilding uses the same strategy table as `ftr route`. *)
  let build ~graph ~strategy ~seed =
    match List.assoc_opt strategy strategies with
    | None -> Error (Printf.sprintf "unknown strategy %S" strategy)
    | Some s -> (
        match build_construction graph s seed with
        | exception Invalid_argument msg -> Error msg
        | c -> Ok c)
  in
  let run paths routing_file routing_graph =
    match (routing_file, routing_graph) with
    | _ when paths = [] && routing_file = None ->
        Printf.eprintf
          "nothing to certify: give corpus PATHs and/or --routing FILE \
           [--graph GRAPH]\n";
        2
    | _ ->
        let problems = ref 0 in
        let report ps =
          problems := !problems + List.length ps;
          List.iter (fun p -> Format.printf "%a@." Certify.pp_problem p) ps
        in
        if paths <> [] then begin
          let o = Certify.certify_corpus_paths ~build paths in
          report o.Certify.problems;
          Printf.printf "certified %d corpus file(s): %d entr%s, %d construction(s)\n"
            o.Certify.files o.Certify.entries
            (if o.Certify.entries = 1 then "y" else "ies")
            o.Certify.constructions
        end;
        (match (routing_file, routing_graph) with
        | Some file, Some g ->
            let routes, ps = Certify.certify_routing_file ~graph:g file in
            report ps;
            Printf.printf "certified %s: %d route(s)\n" file routes
        | Some file, None -> (
            (* No graph to route over: certify what the header alone
               promises (all of it, for v2 compact tables). *)
            match Certify.certify_routing_header file with
            | Ok desc -> Printf.printf "certified %s: header ok (%s)\n" file desc
            | Error ps -> report ps)
        | None, _ -> ());
        if !problems = 0 then 0
        else begin
          Printf.printf "%d problem(s)\n" !problems;
          1
        end
  in
  Cmd.v
    (Cmd.info "lint-artifacts"
       ~doc:
         "statically certify routing artifacts: witness-corpus JSON \
          (well-formed entries, faults on real nodes and edges, rebuildable \
          constructions with valid tables and fault-free properties) and \
          ftr-routing tables (simple paths over existing edges)")
    Term.(const run $ paths_arg $ routing_file_arg $ routing_graph_arg)

let () =
  let doc = "fault-tolerant routings in general networks (Peleg & Simons 1986)" in
  exit
    (Cmd.eval'
       (Cmd.group (Cmd.info "ftr" ~doc)
          [
            info_cmd; route_cmd; tolerate_cmd; props_cmd; check_cmd; simulate_cmd;
            attack_cmd; soak_cmd; serve_cmd; query_cmd; chaos_cmd; compact_cmd;
            dot_cmd; lint_artifacts_cmd;
          ]))
