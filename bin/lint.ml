(* ftr-lint: the repo's static-analysis gate (DESIGN.md section 15).

   Usage: lint [--json FILE] [--rules L1,...,L8] [--cache FILE]
               [--cmt-root DIR] PATH...

   Lints every .ml file under the given paths on its typedtree with
   the eight ftr rules, prints one editor-clickable line per
   diagnostic, optionally writes the ftr-lint/2 JSON report, and exits
   1 if any unsuppressed diagnostic remains. --cache replays results
   for unchanged files (cold and warm runs emit identical reports);
   --cmt-root overrides where .cmt files are searched (default:
   _build/default). Argument parsing is by hand: the lint must not
   grow dependencies the analyses it polices do not have. *)

module Diagnostic = Ftr_lint.Diagnostic
module Rules = Ftr_lint.Rules
module Driver = Ftr_lint.Driver

let usage () =
  prerr_endline
    "usage: lint [--json FILE] [--rules L1,...,L8] [--cache FILE] [--cmt-root \
     DIR] PATH...";
  exit 2

let () =
  let json_out = ref None in
  let cache_file = ref None in
  let cmt_root = ref None in
  let rules = ref Rules.all_rules in
  let paths = ref [] in
  let rec parse = function
    | [] -> ()
    | "--json" :: file :: rest ->
        json_out := Some file;
        parse rest
    | "--cache" :: file :: rest ->
        cache_file := Some file;
        parse rest
    | "--cmt-root" :: dir :: rest ->
        cmt_root := Some dir;
        parse rest
    | "--rules" :: spec :: rest ->
        let requested = String.split_on_char ',' spec in
        let unknown =
          List.filter (fun r -> not (List.mem r Rules.all_rules)) requested
        in
        if unknown <> [] then begin
          Printf.eprintf "lint: unknown rule(s) %s (have: %s)\n"
            (String.concat "," unknown)
            (String.concat "," Rules.all_rules);
          exit 2
        end;
        rules := requested;
        parse rest
    | ("--json" | "--rules" | "--cache" | "--cmt-root") :: [] -> usage ()
    | ("--help" | "-h") :: _ -> usage ()
    | path :: rest ->
        paths := path :: !paths;
        parse rest
  in
  (match Array.to_list Sys.argv with [] -> () | _ :: args -> parse args);
  if !paths = [] then usage ();
  let missing = List.filter (fun p -> not (Sys.file_exists p)) !paths in
  if missing <> [] then begin
    Printf.eprintf "lint: no such path: %s\n" (String.concat ", " missing);
    exit 2
  end;
  let config = { Rules.default_config with Rules.rules = !rules } in
  let report =
    Driver.lint_paths ~config ?cache_file:!cache_file ?cmt_root:!cmt_root
      (List.rev !paths)
  in
  List.iter
    (fun d -> Format.printf "%a@." Diagnostic.pp_human d)
    report.Diagnostic.diagnostics;
  (match !json_out with
  | None -> ()
  | Some file ->
      let oc = open_out file in
      output_string oc (Diagnostic.to_json report);
      close_out oc);
  let n = List.length report.Diagnostic.diagnostics in
  let s = List.length report.Diagnostic.suppressions in
  Printf.printf
    "ftr-lint: %d file(s), %d cached, %d diagnostic(s), %d suppressed\n"
    report.Diagnostic.files_scanned report.Diagnostic.files_cached n s;
  exit (if n > 0 then 1 else 0)
