(* Benchmark harness. One Bechamel Test.make per experiment id of
   DESIGN.md section 4 (the paper has no numbered tables; its theorems
   and figures play that role), plus micro-benchmarks of the hot
   primitives underneath them. After the timing runs, the harness
   re-prints the experiment tables themselves in quick mode, so a
   single `dune exec bench/main.exe` regenerates every row the paper
   reports.

   Pass --timings-only or --tables-only to run half of it. *)

open Bechamel
open Ftr_graph
open Ftr_core
module A = Ftr_analysis

(* ------------------------------------------------------------------ *)
(* Shared fixtures (built once, outside the timed region).            *)
(* ------------------------------------------------------------------ *)

let torus55 = Families.torus 5 5
let torus77 = Families.torus 7 7
let cycle45 = Families.cycle 45
let cycle27 = Families.cycle 27
let cycle16 = Families.cycle 16
let ccc4 = Families.ccc 4
let petersen = Families.petersen ()
let kernel_t55 = Kernel.make torus55 ~t:3
let circular_c45 = Circular.make cycle45 ~t:1
let rng () = Random.State.make [| 17 |]
let three_faults = Bitset.of_list 25 [ 6; 13; 19 ]
let stage = Staged.stage

(* One Test.make per experiment id: time the operation that experiment
   is built around. *)
let experiment_tests =
  [
    Test.make ~name:"e1_kernel_2t:build+check"
      (stage (fun () ->
           let c = Kernel.make torus55 ~t:3 in
           Surviving.diameter c.Construction.routing ~faults:three_faults));
    Test.make ~name:"e2_kernel_half:check_f1"
      (stage (fun () -> Tolerance.exhaustive kernel_t55.Construction.routing ~f:1));
    Test.make ~name:"e3_circular:build" (stage (fun () -> Circular.make torus77 ~t:3));
    Test.make ~name:"e4_tricircular:build"
      (stage (fun () -> Tri_circular.make cycle45 ~t:1 ~variant:Tri_circular.Full));
    Test.make ~name:"e5_tricircular_small:build"
      (stage (fun () -> Tri_circular.make cycle27 ~t:1 ~variant:Tri_circular.Small));
    Test.make ~name:"e6_bipolar_uni:build"
      (stage (fun () -> Bipolar.make_unidirectional cycle16 ~t:1));
    Test.make ~name:"e7_bipolar_bi:build"
      (stage (fun () -> Bipolar.make_bidirectional cycle16 ~t:1));
    Test.make ~name:"e8_neighborhood:greedy" (stage (fun () -> Independent.greedy ccc4));
    Test.make ~name:"e9_two_trees:find"
      (stage
         (let g = Random_graphs.gnp ~rng:(rng ()) 128 0.02 in
          fun () -> Two_trees.find g));
    Test.make ~name:"e10_multi_full:build"
      (stage (fun () -> Multirouting.full petersen ~t:2));
    Test.make ~name:"e11_multi_kernel:build"
      (stage (fun () -> Multirouting.kernel_plus torus55 ~t:3));
    Test.make ~name:"e12_augment:build"
      (stage (fun () -> Augment.clique_concentrator torus55 ~t:3));
    Test.make ~name:"f1_fig_circular:dot"
      (stage (fun () ->
           Dot.with_colored_groups
             ~groups:[ ("M", circular_c45.Construction.concentrator) ]
             cycle45));
    Test.make ~name:"f2_fig_tricircular:dot" (stage (fun () -> Dot.of_graph cycle27));
    Test.make ~name:"f3_fig_bipolar:dot" (stage (fun () -> Dot.of_graph cycle16));
    Test.make ~name:"e13_components:diameters"
      (stage (fun () ->
           Surviving.component_diameters kernel_t55.Construction.routing
             ~faults:(Bitset.of_list 25 [ 6; 13; 19; 2 ])));
    Test.make ~name:"e14_baseline:build"
      (stage (fun () -> Minimal_routing.make torus55));
    Test.make ~name:"e15_ecube:build" (stage (fun () -> Hypercube_routing.ecube 4));
    Test.make ~name:"e16_kernel_growth:q5"
      (stage
         (let q5 = Families.hypercube 5 in
          fun () -> Kernel.make q5 ~t:4));
    Test.make ~name:"s1_simulator:200msgs"
      (stage (fun () ->
           let net = Ftr_sim.Network.create kernel_t55.Construction.routing in
           let sim = Ftr_sim.Sim.create () in
           let entries =
             Ftr_sim.Workload.uniform ~rng:(rng ()) ~n:25 ~count:200 ~horizon:100.0
           in
           Ftr_sim.Protocol.deliver_all sim net Ftr_sim.Protocol.default_config entries));
  ]

(* Micro-benchmarks of the primitives the constructions lean on. *)
let primitive_tests =
  [
    Test.make ~name:"prim:maxflow_dinic_torus77"
      (stage (fun () -> Disjoint_paths.st_connectivity torus77 ~src:0 ~dst:24 ()));
    Test.make ~name:"prim:tree_routing_torus77"
      (stage
         (let m = Array.to_list (Graph.neighbors torus77 24) in
          fun () -> Tree_routing.make torus77 ~src:0 ~targets:m ~k:4));
    Test.make ~name:"prim:vertex_connectivity_ccc4"
      (stage (fun () -> Connectivity.vertex_connectivity ccc4));
    Test.make ~name:"prim:surviving_diameter_torus55"
      (stage (fun () ->
           Surviving.diameter kernel_t55.Construction.routing ~faults:three_faults));
    Test.make ~name:"prim:bfs_torus77" (stage (fun () -> Traversal.bfs torus77 0));
    Test.make ~name:"prim:graph_diameter_torus77"
      (stage (fun () -> Metrics.diameter torus77));
    Test.make ~name:"prim:properties_check_torus55"
      (stage (fun () -> Properties.check kernel_t55 ~faults:three_faults));
    Test.make ~name:"prim:routing_io_roundtrip"
      (stage
         (let text = Routing_io.to_string kernel_t55.Construction.routing in
          fun () -> Routing_io.load torus55 text));
  ]

(* The attack engine's inner loop: 64 surviving-diameter evaluations
   through the compiled batch table vs the per-set graph construction
   it replaces — the speedup is what makes budgeted search viable. *)
let attack_tests =
  let compiled = Surviving.compile kernel_t55.Construction.routing in
  let fault_sets =
    let rng = Random.State.make [| 23 |] in
    Array.init 64 (fun _ ->
        Bitset.of_list 25
          (List.sort_uniq compare (List.init 3 (fun _ -> Random.State.int rng 25))))
  in
  [
    Test.make ~name:"attack:eval64_compiled"
      (stage (fun () ->
           Array.iter
             (fun faults -> ignore (Surviving.diameter_compiled compiled ~faults))
             fault_sets));
    Test.make ~name:"attack:eval64_uncompiled"
      (stage (fun () ->
           Array.iter
             (fun faults ->
               ignore (Surviving.diameter kernel_t55.Construction.routing ~faults))
             fault_sets));
    Test.make ~name:"attack:search_torus55_b300"
      (stage (fun () ->
           Attack.search
             ~config:{ Attack.default_config with Attack.budget = 300; restarts = 3 }
             ~rng:(rng ()) ~pools:kernel_t55.Construction.pools
             kernel_t55.Construction.routing ~f:3));
  ]

(* ------------------------------------------------------------------ *)
(* Runner                                                             *)
(* ------------------------------------------------------------------ *)

let run_timings () =
  let tests =
    Test.make_grouped ~name:"ftr" (experiment_tests @ primitive_tests @ attack_tests)
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:1500 ~quota:(Time.second 0.25) ~kde:None ~stabilize:false ()
  in
  let raw = Benchmark.all cfg [ instance ] tests in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols instance raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  Printf.printf "%-48s %16s\n" "benchmark" "time/run";
  Printf.printf "%s\n" (String.make 66 '-');
  List.iter
    (fun (name, ols) ->
      let cell =
        match Analyze.OLS.estimates ols with
        | Some (est :: _) ->
            if est >= 1e9 then Printf.sprintf "%10.2f s " (est /. 1e9)
            else if est >= 1e6 then Printf.sprintf "%10.2f ms" (est /. 1e6)
            else if est >= 1e3 then Printf.sprintf "%10.2f us" (est /. 1e3)
            else Printf.sprintf "%10.2f ns" est
        | Some [] | None -> "n/a"
      in
      Printf.printf "%-48s %16s\n" name cell)
    rows

let run_tables () =
  let ctx = A.Experiments.default_context ~seed:0xBEEF ~quick:true () in
  let results = A.Experiments.all ctx in
  print_string (A.Report.console results);
  match A.Report.violations results with
  | [] -> print_endline "roll-up: every checked claim held."
  | bad ->
      Printf.printf "roll-up: VIOLATIONS in %s\n" (String.concat ", " (List.map fst bad))

let () =
  let args = Array.to_list Sys.argv in
  let timings = not (List.mem "--tables-only" args) in
  let tables = not (List.mem "--timings-only" args) in
  if timings then begin
    print_endline "== timing: one benchmark per experiment id (see DESIGN.md) ==";
    run_timings ()
  end;
  if tables then begin
    print_endline "\n== experiment tables (quick mode) ==";
    run_tables ()
  end
