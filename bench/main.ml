(* Benchmark harness. One Bechamel Test.make per experiment id of
   DESIGN.md section 4 (the paper has no numbered tables; its theorems
   and figures play that role), plus micro-benchmarks of the hot
   primitives underneath them and of the incremental evaluation
   engine (jobs=1 vs jobs=N, and against the one-shot evaluation loop
   the engine replaced). After the timing runs, the harness re-prints
   the experiment tables themselves in quick mode, so a single
   `dune exec bench/main.exe` regenerates every row the paper reports.

   Timings are also written machine-readably to BENCH_eval.json
   (override with --json PATH). Pass --timings-only or --tables-only
   to run half of the harness, and --quick for a low-quota run (CI). *)

open Bechamel
open Ftr_graph
open Ftr_core
module A = Ftr_analysis

(* ------------------------------------------------------------------ *)
(* Shared fixtures (built once, outside the timed region).            *)
(* ------------------------------------------------------------------ *)

let torus55 = Families.torus 5 5
let torus77 = Families.torus 7 7
let cycle45 = Families.cycle 45
let cycle27 = Families.cycle 27
let cycle16 = Families.cycle 16
let ccc4 = Families.ccc 4
let petersen = Families.petersen ()
let kernel_t55 = Kernel.make torus55 ~t:3
let circular_c45 = Circular.make cycle45 ~t:1
let rng () = Random.State.make [| 17 |]
let three_faults = Bitset.of_list 25 [ 6; 13; 19 ]
let stage = Staged.stage

(* One Test.make per experiment id: time the operation that experiment
   is built around. *)
let experiment_tests =
  [
    Test.make ~name:"e1_kernel_2t:build+check"
      (stage (fun () ->
           let c = Kernel.make torus55 ~t:3 in
           Surviving.diameter c.Construction.routing ~faults:three_faults));
    Test.make ~name:"e2_kernel_half:check_f1"
      (stage (fun () -> Tolerance.exhaustive kernel_t55.Construction.routing ~f:1));
    Test.make ~name:"e3_circular:build" (stage (fun () -> Circular.make torus77 ~t:3));
    Test.make ~name:"e4_tricircular:build"
      (stage (fun () -> Tri_circular.make cycle45 ~t:1 ~variant:Tri_circular.Full));
    Test.make ~name:"e5_tricircular_small:build"
      (stage (fun () -> Tri_circular.make cycle27 ~t:1 ~variant:Tri_circular.Small));
    Test.make ~name:"e6_bipolar_uni:build"
      (stage (fun () -> Bipolar.make_unidirectional cycle16 ~t:1));
    Test.make ~name:"e7_bipolar_bi:build"
      (stage (fun () -> Bipolar.make_bidirectional cycle16 ~t:1));
    Test.make ~name:"e8_neighborhood:greedy" (stage (fun () -> Independent.greedy ccc4));
    Test.make ~name:"e9_two_trees:find"
      (stage
         (let g = Random_graphs.gnp ~rng:(rng ()) 128 0.02 in
          fun () -> Two_trees.find g));
    Test.make ~name:"e10_multi_full:build"
      (stage (fun () -> Multirouting.full petersen ~t:2));
    Test.make ~name:"e11_multi_kernel:build"
      (stage (fun () -> Multirouting.kernel_plus torus55 ~t:3));
    Test.make ~name:"e12_augment:build"
      (stage (fun () -> Augment.clique_concentrator torus55 ~t:3));
    Test.make ~name:"f1_fig_circular:dot"
      (stage (fun () ->
           Dot.with_colored_groups
             ~groups:[ ("M", circular_c45.Construction.concentrator) ]
             cycle45));
    Test.make ~name:"f2_fig_tricircular:dot" (stage (fun () -> Dot.of_graph cycle27));
    Test.make ~name:"f3_fig_bipolar:dot" (stage (fun () -> Dot.of_graph cycle16));
    Test.make ~name:"e13_components:diameters"
      (stage (fun () ->
           Surviving.component_diameters kernel_t55.Construction.routing
             ~faults:(Bitset.of_list 25 [ 6; 13; 19; 2 ])));
    Test.make ~name:"e14_baseline:build"
      (stage (fun () -> Minimal_routing.make torus55));
    Test.make ~name:"e15_ecube:build" (stage (fun () -> Hypercube_routing.ecube 4));
    Test.make ~name:"e16_kernel_growth:q5"
      (stage
         (let q5 = Families.hypercube 5 in
          fun () -> Kernel.make q5 ~t:4));
    Test.make ~name:"s1_simulator:200msgs"
      (stage (fun () ->
           let net = Ftr_sim.Network.create kernel_t55.Construction.routing in
           let sim = Ftr_sim.Sim.create () in
           let entries =
             Ftr_sim.Workload.uniform ~rng:(rng ()) ~n:25 ~count:200 ~horizon:100.0
           in
           Ftr_sim.Protocol.deliver_all sim net Ftr_sim.Protocol.default_config entries));
  ]

(* Micro-benchmarks of the primitives the constructions lean on. *)
let primitive_tests =
  [
    Test.make ~name:"prim:maxflow_dinic_torus77"
      (stage (fun () -> Disjoint_paths.st_connectivity torus77 ~src:0 ~dst:24 ()));
    Test.make ~name:"prim:tree_routing_torus77"
      (stage
         (let m = Array.to_list (Graph.neighbors torus77 24) in
          fun () -> Tree_routing.make torus77 ~src:0 ~targets:m ~k:4));
    Test.make ~name:"prim:vertex_connectivity_ccc4"
      (stage (fun () -> Connectivity.vertex_connectivity ccc4));
    Test.make ~name:"prim:surviving_diameter_torus55"
      (stage (fun () ->
           Surviving.diameter kernel_t55.Construction.routing ~faults:three_faults));
    Test.make ~name:"prim:bfs_torus77" (stage (fun () -> Traversal.bfs torus77 0));
    Test.make ~name:"prim:graph_diameter_torus77"
      (stage (fun () -> Metrics.diameter torus77));
    Test.make ~name:"prim:properties_check_torus55"
      (stage (fun () -> Properties.check kernel_t55 ~faults:three_faults));
    Test.make ~name:"prim:routing_io_roundtrip"
      (stage
         (let text = Routing_io.to_string kernel_t55.Construction.routing in
          fun () -> Routing_io.load torus55 text));
  ]

(* The attack engine's inner loop: 64 surviving-diameter evaluations
   through the compiled batch table vs the per-set graph construction
   it replaces — the speedup is what makes budgeted search viable. *)
let attack_tests =
  let compiled = Surviving.compile kernel_t55.Construction.routing in
  let fault_sets =
    let rng = Random.State.make [| 23 |] in
    Array.init 64 (fun _ ->
        Bitset.of_list 25
          (List.sort_uniq compare (List.init 3 (fun _ -> Random.State.int rng 25))))
  in
  [
    Test.make ~name:"attack:eval64_compiled"
      (stage (fun () ->
           Array.iter
             (fun faults -> ignore (Surviving.diameter_compiled compiled ~faults))
             fault_sets));
    Test.make ~name:"attack:eval64_uncompiled"
      (stage (fun () ->
           Array.iter
             (fun faults ->
               ignore (Surviving.diameter kernel_t55.Construction.routing ~faults))
             fault_sets));
    Test.make ~name:"attack:search_torus55_b300"
      (stage (fun () ->
           Attack.search
             ~config:{ Attack.default_config with Attack.budget = 300; restarts = 3 }
             ~rng:(rng ()) ~pools:kernel_t55.Construction.pools
             kernel_t55.Construction.routing ~f:3));
  ]

(* The evaluation engine under explicit worker-domain counts, plus the
   pre-engine one-shot loop (materialize each fault set, run one batch
   diameter per set, no incrementality) as the speedup baseline. *)
let jobs_n = 8

(* ns/run measured at the pre-engine commit (3b75048) on the reference
   host, full quota — the fixed points the speedup tracking in
   BENCH_eval.json compares against. Re-measure when the reference
   host changes. *)
let seed_baseline_ns =
  [
    ("e2_kernel_half:check_f1", 627_450.0);
    ("attack:search_torus55_b300", 7_190_000.0);
    ("attack:eval64_compiled", 1_390_000.0);
  ]
let attack_cfg8 = { Attack.default_config with Attack.budget = 300; restarts = jobs_n }

(* Worker-domain counts for the scaling curve. jobs_n stays the
   headline ratio (jobs8 vs jobs1 must not regress); the other points
   show where the curve flattens on the current host and feed the
   derived recommended_jobs in the JSON. *)
let scaling_jobs = [ 1; 2; 4; jobs_n; 16 ]

let engine_tests =
  let routing = kernel_t55.Construction.routing in
  let n = Graph.n (Routing.graph routing) in
  let vertices = List.init n Fun.id in
  List.map
    (fun jobs ->
      Test.make
        ~name:(Printf.sprintf "engine:check_f1_jobs%d" jobs)
        (stage (fun () -> Tolerance.exhaustive ~jobs routing ~f:1)))
    scaling_jobs
  @ [
    (* Sliced vs scalar, same binary, jobs=1: the engine-level win of
       packing fault sets into word lanes. f=1 on n=25 only fills 26
       of the 63 lanes, so f=2 (326 sets, mostly full slices) is the
       representative amortisation point. *)
    Test.make ~name:"engine:check_f1_scalar"
      (stage (fun () ->
           Tolerance.exhaustive ~jobs:1 ~engine:Tolerance.Scalar routing ~f:1));
    Test.make ~name:"engine:check_f2_sliced"
      (stage (fun () -> Tolerance.exhaustive ~jobs:1 routing ~f:2));
    Test.make ~name:"engine:check_f2_scalar"
      (stage (fun () ->
           Tolerance.exhaustive ~jobs:1 ~engine:Tolerance.Scalar routing ~f:2));
    Test.make ~name:"engine:check_f1_oneshot"
      (stage (fun () ->
           let compiled = Surviving.compile routing in
           let worst = ref (Metrics.Finite (-1)) in
           Seq.iter
             (fun vs ->
               let d =
                 Surviving.diameter_compiled compiled ~faults:(Bitset.of_list n vs)
               in
               if Attack.score ~n d > Attack.score ~n !worst then worst := d)
             (Tolerance.subsets_up_to vertices 1);
           !worst));
    Test.make ~name:"engine:attack_b300_jobs1"
      (stage (fun () ->
           Attack.search ~config:attack_cfg8 ~jobs:1 ~rng:(rng ())
             ~pools:kernel_t55.Construction.pools kernel_t55.Construction.routing ~f:3));
    Test.make
      ~name:(Printf.sprintf "engine:attack_b300_jobs%d" jobs_n)
      (stage (fun () ->
           Attack.search ~config:attack_cfg8 ~jobs:jobs_n ~rng:(rng ())
             ~pools:kernel_t55.Construction.pools kernel_t55.Construction.routing ~f:3));
  ]

(* The serve stack under synthetic load: the admission/pump core with
   a virtual clock (no sockets, no journal) and the full five-beat
   chaos scenario (journal fsyncs included). *)
module Serve = Ftr_serve

let chaos_cfg =
  {
    Serve.Chaos.queries = 40;
    burst = 64;
    max_queue = 24;
    deadline_ticks = 48.0;
    gray_factor = 8.0;
    radius = 1;
    zipf_s = 1.1;
    (* The wall-clock gate is irrelevant to throughput accounting and
       would make the bench row flaky on loaded boxes; park it. *)
    slo_p99_ms = 1e9;
    min_delivery = 0.3;
    seed = 0xBEEF;
    jobs = None;
    certify = false;
    journal_dir = Filename.get_temp_dir_name ();
  }

let serve_tests =
  [
    Test.make ~name:"serve:pump_route100"
      (stage (fun () ->
           let engine = Serve.Engine.create kernel_t55.Construction.routing in
           let vclock = ref 0.0 in
           let srv =
             Serve.Server.create
               ~clock:(fun () -> !vclock)
               { Serve.Server.max_queue = 128; deadline = 0.0; bound = None }
               engine
           in
           let n = Graph.n (Routing.graph kernel_t55.Construction.routing) in
           for i = 0 to 99 do
             vclock := !vclock +. 1.0;
             Serve.Server.submit srv
               (Serve.Wire.Route { src = i mod n; dst = (i * 7 + 1) mod n })
               (fun _ -> ());
             Serve.Server.pump srv
           done));
    Test.make ~name:"serve:chaos_scenario_t55"
      (stage (fun () -> Serve.Chaos.run ~label:"bench-chaos" kernel_t55 chaos_cfg));
  ]

(* ------------------------------------------------------------------ *)
(* Runner                                                             *)
(* ------------------------------------------------------------------ *)

let pp_ns est =
  if est >= 1e9 then Printf.sprintf "%10.2f s " (est /. 1e9)
  else if est >= 1e6 then Printf.sprintf "%10.2f ms" (est /. 1e6)
  else if est >= 1e3 then Printf.sprintf "%10.2f us" (est /. 1e3)
  else Printf.sprintf "%10.2f ns" est

let run_timings ~quick () =
  let tests =
    Test.make_grouped ~name:"ftr"
      (experiment_tests @ primitive_tests @ attack_tests @ engine_tests
      @ serve_tests)
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let limit = if quick then 300 else 1500 in
  let quota = Time.second (if quick then 0.05 else 0.25) in
  let cfg = Benchmark.cfg ~limit ~quota ~kde:None ~stabilize:false () in
  let raw = Benchmark.all cfg [ instance ] tests in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        match Analyze.OLS.estimates ols with
        | Some (est :: _) -> (name, est) :: acc
        | Some [] | None -> acc)
      results []
  in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  Printf.printf "%-48s %16s\n" "benchmark" "time/run";
  Printf.printf "%s\n" (String.make 66 '-');
  List.iter (fun (name, est) -> Printf.printf "%-48s %16s\n" name (pp_ns est)) rows;
  rows

(* A benchmark's full name carries the Bechamel group prefix; look rows
   up by their own suffix. *)
let find_ns rows name =
  List.find_map
    (fun (full, ns) ->
      let ln = String.length name and lf = String.length full in
      if lf >= ln && String.sub full (lf - ln) ln = name then Some ns else None)
    rows

(* Deterministic engine counters over a fixed workload (one exhaustive
   f=1 check plus one budget-300 attack, both at jobs=1), so the bench
   JSON tracks work-done alongside time-taken: a perf change that
   comes from doing different work, not doing the same work faster,
   shows up here. *)
let obs_counters () =
  let module Obs = Ftr_obs.Obs in
  Obs.reset ();
  Obs.set_enabled true;
  ignore (Tolerance.exhaustive ~jobs:1 kernel_t55.Construction.routing ~f:1);
  ignore
    (Attack.search ~config:attack_cfg8 ~jobs:1 ~rng:(rng ())
       ~pools:kernel_t55.Construction.pools kernel_t55.Construction.routing ~f:3);
  Obs.set_enabled false;
  let counters = Obs.counters () in
  Obs.reset ();
  counters

let json_of_rows rows ~quick =
  let buf = Buffer.create 4096 in
  let strip full =
    match String.rindex_opt full '/' with
    | Some i -> String.sub full (i + 1) (String.length full - i - 1)
    | None -> full
  in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"generated_by\": \"bench/main.exe\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"quick\": %b,\n  \"jobs_n\": %d,\n" quick jobs_n);
  (* recommended_jobs is derived from the measured scaling curve — the
     smallest jobs value achieving the best check_f1 time — rather
     than trusting Domain.recommended_domain_count, which reports
     hardware threads the pool may not profit from (the 1-core CI box
     reported 8 and the old hardcoded value sent every caller into a
     0.76x regression). *)
  let curve =
    List.filter_map
      (fun jobs ->
        Option.map
          (fun ns -> (jobs, ns))
          (find_ns rows (Printf.sprintf "engine:check_f1_jobs%d" jobs)))
      scaling_jobs
  in
  let recommended =
    match curve with
    | [] -> Par.recommended_jobs ()
    | (j0, ns0) :: rest ->
        fst
          (List.fold_left
             (fun (bj, bns) (j, ns) -> if ns < bns then (j, ns) else (bj, bns))
             (j0, ns0) rest)
  in
  Buffer.add_string buf (Printf.sprintf "  \"recommended_jobs\": %d,\n" recommended);
  (match curve with
  | [] -> ()
  | (_, ns1) :: _ ->
      Buffer.add_string buf "  \"scaling_curve\": [\n";
      List.iteri
        (fun i (jobs, ns) ->
          Buffer.add_string buf
            (Printf.sprintf
               "    { \"jobs\": %d, \"ns_per_run\": %.1f, \"speedup_vs_jobs1\": \
                %.2f }%s\n"
               jobs ns
               (if ns > 0.0 then ns1 /. ns else 0.0)
               (if i = List.length curve - 1 then "" else ",")))
        curve;
      Buffer.add_string buf "  ],\n");
  Buffer.add_string buf "  \"benchmarks\": [\n";
  List.iteri
    (fun i (full, ns) ->
      Buffer.add_string buf
        (Printf.sprintf "    { \"name\": %S, \"ns_per_run\": %.1f }%s\n" (strip full)
           ns
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ],\n";
  (* Derived speedups of the incremental engine. The attack baseline
     is an equivalent-work estimate: the evaluations the search spends
     at the one-shot (batch, non-incremental) per-evaluation cost. *)
  let evals_spent =
    (Attack.search ~config:attack_cfg8 ~jobs:1 ~rng:(rng ())
       ~pools:kernel_t55.Construction.pools kernel_t55.Construction.routing ~f:3)
      .Attack.evals
  in
  let speedup a b =
    match (find_ns rows a, find_ns rows b) with
    | Some num, Some den when den > 0.0 -> Some (num /. den)
    | _ -> None
  in
  let entries = ref [] in
  let add name v = match v with None -> () | Some v -> entries := (name, v) :: !entries in
  add "check_f1_jobs1_vs_oneshot" (speedup "engine:check_f1_oneshot" "engine:check_f1_jobs1");
  add
    (Printf.sprintf "check_f1_jobs%d_vs_oneshot" jobs_n)
    (speedup "engine:check_f1_oneshot" (Printf.sprintf "engine:check_f1_jobs%d" jobs_n));
  add
    (Printf.sprintf "check_f1_jobs%d_vs_jobs1" jobs_n)
    (speedup "engine:check_f1_jobs1" (Printf.sprintf "engine:check_f1_jobs%d" jobs_n));
  (* Same-binary engine comparison: the default (sliced) jobs=1 rows
     against the forced-scalar rows. *)
  add "check_f1_sliced_vs_scalar" (speedup "engine:check_f1_scalar" "engine:check_f1_jobs1");
  add "check_f2_sliced_vs_scalar" (speedup "engine:check_f2_scalar" "engine:check_f2_sliced");
  (match find_ns rows "attack:eval64_compiled" with
  | Some eval64 ->
      let oneshot_equiv = float_of_int evals_spent *. (eval64 /. 64.0) in
      entries := ("attack_b300_oneshot_equiv_ns", oneshot_equiv) :: !entries;
      List.iter
        (fun jobs ->
          match find_ns rows (Printf.sprintf "engine:attack_b300_jobs%d" jobs) with
          | Some ns when ns > 0.0 ->
              entries :=
                ( Printf.sprintf "attack_b300_jobs%d_vs_oneshot_equiv" jobs,
                  oneshot_equiv /. ns )
                :: !entries
          | _ -> ())
        [ 1; jobs_n ]
  | None -> ());
  add
    (Printf.sprintf "attack_b300_jobs%d_vs_jobs1" jobs_n)
    (speedup "engine:attack_b300_jobs1"
       (Printf.sprintf "engine:attack_b300_jobs%d" jobs_n));
  let entries = List.rev !entries in
  Buffer.add_string buf "  \"speedups\": {\n";
  List.iteri
    (fun i (name, v) ->
      Buffer.add_string buf
        (Printf.sprintf "    %S: %.2f%s\n" name v
           (if i = List.length entries - 1 then "" else ",")))
    entries;
  Buffer.add_string buf "  },\n";
  Buffer.add_string buf "  \"obs_counters\": {\n";
  Buffer.add_string buf
    "    \"note\": \"engine counters over a fixed workload (exhaustive f=1 + \
     attack b300, jobs=1); schedule-independent by construction\",\n";
  let counters = obs_counters () in
  List.iteri
    (fun i (name, v) ->
      Buffer.add_string buf
        (Printf.sprintf "    %S: %d%s\n" name v
           (if i = List.length counters - 1 then "" else ",")))
    counters;
  Buffer.add_string buf "  },\n";
  (* Throughput accounting for the serve stack under the fixed chaos
     scenario: request/delivery/shed counts and virtual-clock ticks,
     all schedule-independent (wall-clock latencies deliberately
     excluded — the ns/run rows above carry time-taken). *)
  (let o = Serve.Chaos.run ~label:"bench-chaos" kernel_t55 chaos_cfg in
   Buffer.add_string buf "  \"chaos_throughput\": {\n";
   Buffer.add_string buf
     "    \"note\": \"fixed five-beat chaos scenario on torus:5x5/kernel; \
      counts are a pure function of (construction, config, seed)\",\n";
   Buffer.add_string buf
     (Printf.sprintf
        "    \"requests\": %d,\n    \"delivered\": %d,\n    \"shed\": %d,\n\
        \    \"virtual_ticks\": %d,\n    \"delivery_rate\": %.4f,\n\
        \    \"digest_converged\": %b,\n    \"exit\": %S\n"
        o.Serve.Chaos.total_requests o.Serve.Chaos.delivered
        o.Serve.Chaos.shed o.Serve.Chaos.virtual_ticks
        o.Serve.Chaos.delivery_rate o.Serve.Chaos.digest_converged
        (Serve.Exit_code.describe o.Serve.Chaos.exit)));
  Buffer.add_string buf "  },\n";
  (* Compact route tables at scale: build time, resident table bytes
     and per-find latency for the label-computed schemes at n up to
     2^20, plus a small-n hashtable-vs-compact baseline (the hashtable
     backend materialises n(n-1) routes, so it cannot even appear in
     the large rows). All measured directly — one build and a fixed
     find sweep per row — not through Bechamel. *)
  (let measure_row ~label build =
     let t0 = Unix.gettimeofday () in
     let routing = build () in
     let build_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
     let g = Routing.graph routing in
     let n = Graph.n g in
     let routes = Routing.route_count routing in
     let table_bytes =
       match Routing.compact routing with
       | Some c -> Compact.bytes c
       | None -> Obj.reachable_words (Obj.repr routing) * (Sys.word_size / 8)
     in
     let finds = 100_000 in
     let t1 = Unix.gettimeofday () in
     let state = ref 0x2545F491 in
     for _ = 1 to finds do
       (* xorshift: cheap enough not to drown the find itself. *)
       state := !state lxor (!state lsl 13);
       state := !state lxor (!state lsr 7);
       state := !state lxor (!state lsl 17);
       let src = !state land max_int mod n in
       let dst = (!state lsr 21) land max_int mod n in
       if src <> dst then ignore (Routing.find routing src dst)
     done;
     let find_ns = (Unix.gettimeofday () -. t1) *. 1e9 /. float_of_int finds in
     Printf.sprintf
       "    { \"label\": %S, \"backend\": %S, \"n\": %d, \"routes\": %d, \
        \"build_ms\": %.1f, \"table_bytes\": %d, \"bytes_per_route\": %.6f, \
        \"find_ns\": %.1f }"
       label
       (Routing.backend_name routing)
       n routes build_ms table_bytes
       (float_of_int table_bytes /. float_of_int (max 1 routes))
       find_ns
   in
   let rows =
     [
       measure_row ~label:"ecube_q7_hashtable" (fun () ->
           (Hypercube_routing.ecube 7).Construction.routing);
       measure_row ~label:"ecube_q7_compact" (fun () ->
           Routing.of_compact (Families.hypercube 7) Routing.Unidirectional
             (Compact.hypercube 7));
       measure_row ~label:"hypercube_14_compact" (fun () ->
           (Compact_family.hypercube 14).Construction.routing);
       measure_row ~label:"debruijn_17_compact" (fun () ->
           (Compact_family.de_bruijn 17).Construction.routing);
       measure_row ~label:"debruijn_20_compact" (fun () ->
           (Compact_family.de_bruijn 20).Construction.routing);
     ]
   in
   Buffer.add_string buf "  \"compact_tables\": [\n";
   Buffer.add_string buf (String.concat ",\n" rows);
   Buffer.add_string buf "\n  ],\n");
  (* Lint pass: the same ftr-lint v2 run CI gates on, measured cold
     (empty cache) and warm (every unchanged file replayed from the
     digest-keyed cache), plus findings per rule so a rule suddenly
     going quiet — or noisy — shows up as a bench diff. Temp cache:
     the bench must never touch a working tree's real cache. *)
  (let cache_file = Filename.temp_file "ftr-lint-bench" ".cache" in
   Sys.remove cache_file;
   let timed_lint () =
     let t0 = Unix.gettimeofday () in
     let report = Ftr_lint.Driver.lint_paths ~cache_file [ "lib"; "bin" ] in
     ((Unix.gettimeofday () -. t0) *. 1000.0, report)
   in
   let cold_ms, cold = timed_lint () in
   let warm_ms, warm = timed_lint () in
   (try Sys.remove cache_file with Sys_error _ -> ());
   let per_rule =
     let tbl = Hashtbl.create 8 in
     let bump rule =
       Hashtbl.replace tbl rule
         (1 + Option.value ~default:0 (Hashtbl.find_opt tbl rule))
     in
     List.iter (fun (d : Ftr_lint.Diagnostic.t) -> bump d.rule) cold.diagnostics;
     List.iter
       (fun (s : Ftr_lint.Diagnostic.suppressed) -> bump s.diag.rule)
       cold.suppressions;
     List.sort
       (fun (a, _) (b, _) -> String.compare a b)
       (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
   in
   Buffer.add_string buf "  \"lint_pass\": {\n";
   Buffer.add_string buf
     (Printf.sprintf
        "    \"files\": %d, \"cold_ms\": %.1f, \"cached_ms\": %.1f, \
         \"files_cached_warm\": %d,\n"
        cold.files_scanned cold_ms warm_ms warm.files_cached);
   Buffer.add_string buf
     (Printf.sprintf "    \"findings_per_rule\": { %s }\n"
        (String.concat ", "
           (List.map (fun (r, c) -> Printf.sprintf "%S: %d" r c) per_rule)));
   Buffer.add_string buf "  },\n");
  Buffer.add_string buf "  \"seed_baseline\": {\n";
  Buffer.add_string buf "    \"commit\": \"3b75048\",\n";
  Buffer.add_string buf
    "    \"note\": \"ns/run at the pre-engine commit, reference host, full quota\",\n";
  let seed_rows =
    List.filter_map
      (fun (name, seed_ns) ->
        Option.map (fun now -> (name, seed_ns, now)) (find_ns rows name))
      seed_baseline_ns
  in
  List.iteri
    (fun i (name, seed_ns, now) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    %S: { \"seed_ns_per_run\": %.1f, \"ns_per_run\": %.1f, \
            \"speedup_vs_seed\": %.2f }%s\n"
           name seed_ns now (seed_ns /. now)
           (if i = List.length seed_rows - 1 then "" else ",")))
    seed_rows;
  Buffer.add_string buf "  }\n}\n";
  Buffer.contents buf

let run_tables () =
  let ctx = A.Experiments.default_context ~seed:0xBEEF ~quick:true () in
  let results = A.Experiments.all ctx in
  print_string (A.Report.console results);
  match A.Report.violations results with
  | [] -> print_endline "roll-up: every checked claim held."
  | bad ->
      Printf.printf "roll-up: VIOLATIONS in %s\n" (String.concat ", " (List.map fst bad))

(* --guard-scaling: fail the run when adding workers makes the
   exhaustive checker slower than sequential (the regression this
   harness exists to catch: jobs8/jobs1 sat at 0.76x before the
   chunked scheduler). Small tolerance absorbs timer noise on the
   ~1.0x boxes where the pool can only break even. *)
let guard_scaling rows =
  let ratio =
    match
      ( find_ns rows "engine:check_f1_jobs1",
        find_ns rows (Printf.sprintf "engine:check_f1_jobs%d" jobs_n) )
    with
    | Some ns1, Some nsn when nsn > 0.0 -> Some (ns1 /. nsn)
    | _ -> None
  in
  match ratio with
  | None ->
      prerr_endline "guard-scaling: check_f1 jobs rows missing from the run";
      exit 1
  | Some r when r < 0.95 ->
      Printf.eprintf
        "guard-scaling: FAIL check_f1_jobs%d_vs_jobs1 = %.3fx (>= 1.0 expected, \
         0.95 noise floor): parallel sweep regressed below sequential\n"
        jobs_n r;
      exit 1
  | Some r ->
      Printf.printf "guard-scaling: ok, check_f1_jobs%d_vs_jobs1 = %.3fx\n" jobs_n r

let () =
  let args = Array.to_list Sys.argv in
  let timings = not (List.mem "--tables-only" args) in
  let tables = not (List.mem "--timings-only" args) in
  let quick = List.mem "--quick" args in
  let guard = List.mem "--guard-scaling" args in
  let json_path =
    let rec find = function
      | "--json" :: path :: _ -> path
      | _ :: rest -> find rest
      | [] -> "BENCH_eval.json"
    in
    find args
  in
  if timings then begin
    print_endline "== timing: one benchmark per experiment id (see DESIGN.md) ==";
    let rows = run_timings ~quick () in
    let oc = open_out json_path in
    output_string oc (json_of_rows rows ~quick);
    close_out oc;
    Printf.printf "\nwrote %s\n" json_path;
    if guard then guard_scaling rows
  end
  else if guard then begin
    prerr_endline "guard-scaling: requires the timing run (drop --tables-only)";
    exit 1
  end;
  if tables then begin
    print_endline "\n== experiment tables (quick mode) ==";
    run_tables ()
  end
