(** Fault injection schedules for simulations.

    Events act on both halves of the mixed fault model: node crashes
    and recoveries, and link flaps ([`LinkDown]/[`LinkUp]). Schedule
    constructors return time-sorted lists; {!schedule_on} installs
    them into a simulator against a network. *)

open Ftr_graph

type action =
  [ `Crash of int  (** node goes down *)
  | `Recover of int  (** node comes back *)
  | `LinkDown of int * int  (** link goes down (either endpoint order) *)
  | `LinkUp of int * int  (** link comes back *) ]

type event = { at : float; action : action }

val crash_set_at : at:float -> int list -> event list

val link_set_at : at:float -> (int * int) list -> event list

val random_crashes :
  rng:Random.State.t -> n:int -> count:int -> window:float * float -> event list
(** [count] distinct nodes crash at uniform times within the
    window. *)

val churn :
  rng:Random.State.t ->
  n:int ->
  count:int ->
  window:float * float ->
  dwell:float ->
  event list
(** Like {!random_crashes}, but every crash is paired with a recovery
    [dwell] later, so nodes cycle out and back in. Events are sorted
    by time; recoveries may land after the window's end. *)

val random_link_flaps :
  rng:Random.State.t ->
  g:Graph.t ->
  count:int ->
  window:float * float ->
  dwell:float ->
  event list
(** [count] distinct links each go down at a uniform time within the
    window and come back [dwell] later. Events are sorted by time;
    recoveries may land after the window's end. *)

val mixed_churn :
  rng:Random.State.t ->
  g:Graph.t ->
  nodes:int ->
  links:int ->
  window:float * float ->
  dwell:float ->
  event list
(** Node churn and link flaps interleaved on one timeline: [nodes]
    crash/recover pairs and [links] down/up pairs, all with the same
    dwell, merged in time order. *)

val witness_waves :
  start:float -> dwell:float -> gap:float -> int list list -> event list
(** Deterministic churn driven by discovered fault sets: each witness
    crashes wholesale (one wave), stays down for [dwell], recovers,
    and the next wave starts [gap] later. This replays the attack
    engine's worst cases dynamically — the simulator exercises exactly
    the fault patterns the search proved nastiest. *)

val link_waves :
  start:float -> dwell:float -> gap:float -> (int * int) list list -> event list
(** {!witness_waves} for links: each wave of edges goes down wholesale,
    dwells, comes back up, and the next wave starts [gap] later (the
    soak harness replays attack witnesses this way). *)

val witness_links : Graph.t -> nodes:int list -> links:(int * int) list -> (int * int) list
(** Project a mixed node/link witness onto the link universe: listed
    links are kept (normalised), and each listed node becomes one
    incident link — the one to its smallest neighbour; isolated nodes
    contribute nothing. Sorted and deduplicated. The result has at
    most [|nodes| + |links|] links, so the paper's endpoint reduction
    keeps a within-budget witness within budget; the soak harnesses
    replay corpus witnesses as link waves through this. *)

val schedule_on : Sim.t -> Network.t -> event list -> unit
(** Install the schedule into the simulator. *)
