(** Fault injection schedules for simulations. *)

type event = { at : float; node : int; kind : [ `Crash | `Recover ] }

val crash_set_at : at:float -> int list -> event list

val random_crashes :
  rng:Random.State.t -> n:int -> count:int -> window:float * float -> event list
(** [count] distinct nodes crash at uniform times within the
    window. *)

val schedule_on : Sim.t -> Network.t -> event list -> unit
(** Install the schedule into the simulator. *)
