(** Fault injection schedules for simulations. *)

type event = { at : float; node : int; kind : [ `Crash | `Recover ] }

val crash_set_at : at:float -> int list -> event list

val random_crashes :
  rng:Random.State.t -> n:int -> count:int -> window:float * float -> event list
(** [count] distinct nodes crash at uniform times within the
    window. *)

val churn :
  rng:Random.State.t ->
  n:int ->
  count:int ->
  window:float * float ->
  dwell:float ->
  event list
(** Like {!random_crashes}, but every crash is paired with a recovery
    [dwell] later, so nodes cycle out and back in. Events are sorted
    by time; recoveries may land after the window's end. *)

val witness_waves :
  start:float -> dwell:float -> gap:float -> int list list -> event list
(** Deterministic churn driven by discovered fault sets: each witness
    crashes wholesale (one wave), stays down for [dwell], recovers,
    and the next wave starts [gap] later. This replays the attack
    engine's worst cases dynamically — the simulator exercises exactly
    the fault patterns the search proved nastiest. *)

val schedule_on : Sim.t -> Network.t -> event list -> unit
(** Install the schedule into the simulator. *)
