(** Fault injection schedules for simulations.

    Events act on both halves of the mixed fault model: node crashes
    and recoveries, and link flaps ([`LinkDown]/[`LinkUp]). Schedule
    constructors return time-sorted lists; {!schedule_on} installs
    them into a simulator against a network. *)

open Ftr_graph

type action =
  [ `Crash of int  (** node goes down *)
  | `Recover of int  (** node comes back *)
  | `LinkDown of int * int  (** link goes down (either endpoint order) *)
  | `LinkUp of int * int  (** link comes back *)
  | `LinkDegrade of int * int * float
    (** gray failure: link stays up but traversals cost [factor]
        times the healthy hop latency *)
  | `LinkRestore of int * int  (** gray failure clears *) ]

type event = { at : float; action : action }

val crash_set_at : at:float -> int list -> event list

val link_set_at : at:float -> (int * int) list -> event list

val random_crashes :
  rng:Random.State.t -> n:int -> count:int -> window:float * float -> event list
(** [count] distinct nodes crash at uniform times within the
    window. *)

val churn :
  rng:Random.State.t ->
  n:int ->
  count:int ->
  window:float * float ->
  dwell:float ->
  event list
(** Like {!random_crashes}, but every crash is paired with a recovery
    [dwell] later, so nodes cycle out and back in. Events are sorted
    by time; recoveries may land after the window's end. *)

val random_link_flaps :
  rng:Random.State.t ->
  g:Graph.t ->
  count:int ->
  window:float * float ->
  dwell:float ->
  event list
(** [count] distinct links each go down at a uniform time within the
    window and come back [dwell] later. Events are sorted by time;
    recoveries may land after the window's end. *)

val gray_flaps :
  rng:Random.State.t ->
  g:Graph.t ->
  count:int ->
  window:float * float ->
  dwell:float ->
  factor:float ->
  event list
(** Gray-failure churn: [count] distinct links each degrade to
    [factor] times healthy latency at a uniform time within the
    window and restore [dwell] later. Routes are never cut — only
    slowed — so surviving-diameter verdicts are untouched while the
    latency distribution and the protocol's deadline machinery feel
    the slowdown. Factor must be finite and at least 1. *)

val region : Graph.t -> center:int -> radius:int -> int list
(** The BFS ball of the given radius around [center]: every node
    within [radius] hops, sorted. Radius 0 is just the center. *)

val region_links : Graph.t -> center:int -> radius:int -> (int * int) list
(** The links with both endpoints inside {!region} — the correlated
    blast area of a regional outage, as normalised sorted pairs. *)

val regional_waves :
  rng:Random.State.t ->
  g:Graph.t ->
  waves:int ->
  radius:int ->
  start:float ->
  dwell:float ->
  gap:float ->
  event list
(** Correlated regional failures: [waves] random epicenters, each
    taking down every link of its BFS ball wholesale ({!link_waves}
    timing — down at the wave start, up [dwell] later, next wave
    [gap] after that). This replaces i.i.d. link picks with
    neighborhood-correlated fault sets. *)

val mixed_churn :
  rng:Random.State.t ->
  g:Graph.t ->
  nodes:int ->
  links:int ->
  window:float * float ->
  dwell:float ->
  event list
(** Node churn and link flaps interleaved on one timeline: [nodes]
    crash/recover pairs and [links] down/up pairs, all with the same
    dwell, merged in time order. *)

val witness_waves :
  start:float -> dwell:float -> gap:float -> int list list -> event list
(** Deterministic churn driven by discovered fault sets: each witness
    crashes wholesale (one wave), stays down for [dwell], recovers,
    and the next wave starts [gap] later. This replays the attack
    engine's worst cases dynamically — the simulator exercises exactly
    the fault patterns the search proved nastiest. *)

val link_waves :
  start:float -> dwell:float -> gap:float -> (int * int) list list -> event list
(** {!witness_waves} for links: each wave of edges goes down wholesale,
    dwells, comes back up, and the next wave starts [gap] later (the
    soak harness replays attack witnesses this way). *)

val witness_links : Graph.t -> nodes:int list -> links:(int * int) list -> (int * int) list
(** Project a mixed node/link witness onto the link universe: listed
    links are kept (normalised), and each listed node becomes one
    incident link — the one to its smallest neighbour; isolated nodes
    contribute nothing. Sorted and deduplicated. The result has at
    most [|nodes| + |links|] links, so the paper's endpoint reduction
    keeps a within-budget witness within budget; the soak harnesses
    replay corpus witnesses as link waves through this. *)

val schedule_on : Sim.t -> Network.t -> event list -> unit
(** Install the schedule into the simulator. *)
