open Ftr_graph
open Ftr_core

type t = {
  routing : Routing.t;
  faults : Bitset.t;
  mutable cache : Digraph.t option;
}

let create routing =
  {
    routing;
    faults = Bitset.create (Graph.n (Routing.graph routing));
    cache = None;
  }

let graph t = Routing.graph t.routing
let routing t = t.routing
let faults t = t.faults

let crash t v =
  Bitset.add t.faults v;
  t.cache <- None

let recover t v =
  Bitset.remove t.faults v;
  t.cache <- None

let is_faulty t v = Bitset.mem t.faults v
let fault_count t = Bitset.cardinal t.faults

let surviving t =
  match t.cache with
  | Some dg -> dg
  | None ->
      let dg = Surviving.graph t.routing ~faults:t.faults in
      t.cache <- Some dg;
      dg

let surviving_diameter t =
  Surviving.diameter_of_digraph (surviving t) ~faults:t.faults

let route_plan t ~src ~dst =
  if is_faulty t src || is_faulty t dst then None
  else if src = dst then Some [ src ]
  else begin
    let dg = surviving t in
    let n = Digraph.n dg in
    let alive v = not (Bitset.mem t.faults v) in
    (* BFS with parents over the surviving digraph. *)
    let parent = Array.make n (-1) in
    let dist = Array.make n (-1) in
    let q = Queue.create () in
    dist.(src) <- 0;
    Queue.push src q;
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      Array.iter
        (fun v ->
          if dist.(v) < 0 && alive v then begin
            dist.(v) <- dist.(u) + 1;
            parent.(v) <- u;
            Queue.push v q
          end)
        (Digraph.succ dg u)
    done;
    if dist.(dst) < 0 then None
    else begin
      let rec walk v acc = if v = src then v :: acc else walk parent.(v) (v :: acc) in
      Some (walk dst [])
    end
  end

let route_survives t ~src ~dst =
  match Routing.find t.routing src dst with
  | None -> false
  | Some p -> not (Path.hits p t.faults)
