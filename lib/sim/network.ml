open Ftr_graph
open Ftr_core
module Obs = Ftr_obs.Obs

let c_cache_invalidations = Obs.counter "sim.cache.invalidations"
let c_cache_rebuilds = Obs.counter "sim.cache.rebuilds"

type t = {
  routing : Routing.t;
  fm : Fault_model.t;
  mutable cache : Digraph.t option;
}

let create routing =
  { routing; fm = Fault_model.create (Routing.graph routing); cache = None }

let graph t = Routing.graph t.routing
let routing t = t.routing
let fault_model t = t.fm
let faults t = Fault_model.node_faults t.fm

let invalidate t =
  if t.cache <> None then Obs.incr c_cache_invalidations;
  t.cache <- None

let crash t v =
  Fault_model.fail_node t.fm v;
  invalidate t

let recover t v =
  Fault_model.recover_node t.fm v;
  invalidate t

let fail_link t u v =
  Fault_model.fail_edge t.fm u v;
  invalidate t

let restore_link t u v =
  Fault_model.recover_edge t.fm u v;
  invalidate t

(* Degradation slows traversals without cutting routes, so the
   surviving-graph cache stays valid — no invalidation here. *)
let degrade_link t u v ~factor = Fault_model.degrade_edge t.fm u v ~factor
let restore_link_delay t u v = Fault_model.restore_edge t.fm u v
let link_delay_factor t u v = Fault_model.edge_degradation t.fm u v
let degraded_links t = Fault_model.degraded_edges t.fm
let degraded_link_count t = Fault_model.degraded_edge_count t.fm
let path_delay_factor t p = Fault_model.path_delay_factor t.fm p

let is_faulty t v = Bitset.mem (faults t) v
let is_link_faulty t u v = Fault_model.edge_failed t.fm u v
let fault_count t = Fault_model.node_fault_count t.fm
let link_fault_count t = Fault_model.edge_fault_count t.fm
let link_faults t = Fault_model.edge_faults t.fm

let surviving t =
  match t.cache with
  | Some dg -> dg
  | None ->
      Obs.incr c_cache_rebuilds;
      let dg = Fault_model.surviving t.routing t.fm in
      t.cache <- Some dg;
      dg

let surviving_diameter t = Surviving.diameter_of_digraph (surviving t) ~faults:(faults t)

let route_plan t ~src ~dst =
  if is_faulty t src || is_faulty t dst then None
  else if src = dst then Some [ src ]
  else begin
    let dg = surviving t in
    let n = Digraph.n dg in
    let alive v = not (Bitset.mem (faults t) v) in
    (* BFS with parents over the surviving digraph. *)
    let parent = Array.make n (-1) in
    let dist = Array.make n (-1) in
    let q = Queue.create () in
    dist.(src) <- 0;
    Queue.push src q;
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      Array.iter
        (fun v ->
          if dist.(v) < 0 && alive v then begin
            dist.(v) <- dist.(u) + 1;
            parent.(v) <- u;
            Queue.push v q
          end)
        (Digraph.succ dg u)
    done;
    if dist.(dst) < 0 then None
    else begin
      let rec walk v acc = if v = src then v :: acc else walk parent.(v) (v :: acc) in
      Some (walk dst [])
    end
  end

let route_survives t ~src ~dst =
  match Routing.find t.routing src dst with
  | None -> false
  | Some p -> not (Fault_model.affects t.fm p)
