type t = {
  service : float;
  busy_until : float array;
  served : int array;
  mutable total_wait : float;
}

let create ~n ~service_time =
  if service_time < 0.0 then invalid_arg "Queueing.create: negative service time";
  {
    service = service_time;
    busy_until = Array.make n 0.0;
    served = Array.make n 0;
    total_wait = 0.0;
  }

let service_time t = t.service

let enqueue t sim ~node k =
  let now = Sim.now sim in
  let start = Float.max now t.busy_until.(node) in
  t.total_wait <- t.total_wait +. (start -. now);
  t.busy_until.(node) <- start +. t.service;
  t.served.(node) <- t.served.(node) + 1;
  Sim.at sim ~time:(start +. t.service) k

let served t = Array.fold_left ( + ) 0 t.served
let served_at t node = t.served.(node)
let total_wait t = t.total_wait

let busiest t =
  (* An empty network has no busiest server; indexing served.(0) here
     used to raise [Invalid_argument] when n = 0. *)
  if Array.length t.served = 0 then None
  else begin
    let best = ref 0 in
    Array.iteri (fun i c -> if c > t.served.(!best) then best := i) t.served;
    Some (!best, t.served.(!best))
  end
