type status = Pending | Delivered | Undeliverable | DeadLetter

type t = {
  id : int;
  src : int;
  dst : int;
  sent_at : float;
  mutable status : status;
  mutable delivered_at : float;
  mutable routes_traversed : int;
  mutable hops : int;
  mutable retries : int;
}

let make ~id ~src ~dst ~sent_at =
  {
    id;
    src;
    dst;
    sent_at;
    status = Pending;
    delivered_at = nan;
    routes_traversed = 0;
    hops = 0;
    retries = 0;
  }

(* [delivered_at] is born NaN and only set on delivery; guard on
   finiteness so a status flipped without a timestamp (a protocol bug,
   or a hand-built record) yields [None] instead of a NaN latency that
   would poison downstream percentiles. *)
let latency t =
  match t.status with
  | Delivered when Float.is_finite t.delivered_at -> Some (t.delivered_at -. t.sent_at)
  | _ -> None

let status_string = function
  | Pending -> "pending"
  | Delivered -> "delivered"
  | Undeliverable -> "undeliverable"
  | DeadLetter -> "dead-letter"

let pp ppf t =
  Fmt.pf ppf "msg#%d %d->%d [%s] routes=%d hops=%d retries=%d" t.id t.src t.dst
    (status_string t.status) t.routes_traversed t.hops t.retries
