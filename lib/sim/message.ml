type status = Pending | Delivered | Undeliverable | DeadLetter

type t = {
  id : int;
  src : int;
  dst : int;
  sent_at : float;
  mutable status : status;
  mutable delivered_at : float;
  mutable routes_traversed : int;
  mutable hops : int;
  mutable retries : int;
}

let make ~id ~src ~dst ~sent_at =
  {
    id;
    src;
    dst;
    sent_at;
    status = Pending;
    delivered_at = nan;
    routes_traversed = 0;
    hops = 0;
    retries = 0;
  }

let latency t =
  match t.status with Delivered -> Some (t.delivered_at -. t.sent_at) | _ -> None

let status_string = function
  | Pending -> "pending"
  | Delivered -> "delivered"
  | Undeliverable -> "undeliverable"
  | DeadLetter -> "dead-letter"

let pp ppf t =
  Fmt.pf ppf "msg#%d %d->%d [%s] routes=%d hops=%d retries=%d" t.id t.src t.dst
    (status_string t.status) t.routes_traversed t.hops t.retries
