type t = {
  queue : (unit -> unit) Heap.t;
  mutable clock : float;
  mutable executed : int;
}

let create () = { queue = Heap.create (); clock = 0.0; executed = 0 }
let now t = t.clock

let schedule t ~delay f =
  if delay < 0.0 then invalid_arg "Sim.schedule: negative delay";
  Heap.push t.queue (t.clock +. delay) f

let at t ~time f =
  if time < t.clock then invalid_arg "Sim.at: time in the past";
  Heap.push t.queue time f

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some (time, f) ->
      t.clock <- time;
      t.executed <- t.executed + 1;
      f ();
      true

let run ?until t =
  let continue () =
    match until with
    | None -> not (Heap.is_empty t.queue)
    | Some limit -> (
        match Heap.peek t.queue with
        | None -> false
        | Some (time, _) -> time <= limit)
  in
  while continue () do
    ignore (step t)
  done

let events_executed t = t.executed
