type event = { at : float; node : int; kind : [ `Crash | `Recover ] }

let crash_set_at ~at nodes = List.map (fun node -> { at; node; kind = `Crash }) nodes

let random_crashes ~rng ~n ~count ~window:(lo, hi) =
  if count > n then invalid_arg "Faults.random_crashes: count > n";
  let nodes = Array.init n Fun.id in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = nodes.(i) in
    nodes.(i) <- nodes.(j);
    nodes.(j) <- t
  done;
  List.init count (fun i ->
      { at = lo +. Random.State.float rng (hi -. lo); node = nodes.(i); kind = `Crash })

let churn ~rng ~n ~count ~window:(lo, hi) ~dwell =
  if count > n then invalid_arg "Faults.churn: count > n";
  if dwell < 0.0 then invalid_arg "Faults.churn: negative dwell";
  let nodes = Array.init n Fun.id in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = nodes.(i) in
    nodes.(i) <- nodes.(j);
    nodes.(j) <- t
  done;
  let events =
    List.concat
      (List.init count (fun i ->
           let at = lo +. Random.State.float rng (hi -. lo) in
           [
             { at; node = nodes.(i); kind = `Crash };
             { at = at +. dwell; node = nodes.(i); kind = `Recover };
           ]))
  in
  List.stable_sort (fun a b -> compare a.at b.at) events

let witness_waves ~start ~dwell ~gap witnesses =
  if dwell < 0.0 then invalid_arg "Faults.witness_waves: negative dwell";
  if gap < 0.0 then invalid_arg "Faults.witness_waves: negative gap";
  let _, events =
    List.fold_left
      (fun (at, acc) witness ->
        let witness = List.sort_uniq compare witness in
        let crashes = List.map (fun node -> { at; node; kind = `Crash }) witness in
        let recoveries =
          List.map (fun node -> { at = at +. dwell; node; kind = `Recover }) witness
        in
        (at +. dwell +. gap, acc @ crashes @ recoveries))
      (start, []) witnesses
  in
  events

let schedule_on sim net events =
  List.iter
    (fun { at; node; kind } ->
      Sim.at sim ~time:at (fun () ->
          match kind with
          | `Crash -> Network.crash net node
          | `Recover -> Network.recover net node))
    events
