open Ftr_graph

type action =
  [ `Crash of int | `Recover of int | `LinkDown of int * int | `LinkUp of int * int ]

type event = { at : float; action : action }

let by_time = List.stable_sort (fun a b -> compare a.at b.at)
let crash_set_at ~at nodes = List.map (fun v -> { at; action = `Crash v }) nodes

let link_set_at ~at links =
  List.map (fun (u, v) -> { at; action = `LinkDown (u, v) }) links

let shuffle rng a =
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done

let random_crashes ~rng ~n ~count ~window:(lo, hi) =
  if count > n then invalid_arg "Faults.random_crashes: count > n";
  let nodes = Array.init n Fun.id in
  shuffle rng nodes;
  List.init count (fun i ->
      { at = lo +. Random.State.float rng (hi -. lo); action = `Crash nodes.(i) })

let churn ~rng ~n ~count ~window:(lo, hi) ~dwell =
  if count > n then invalid_arg "Faults.churn: count > n";
  if dwell < 0.0 then invalid_arg "Faults.churn: negative dwell";
  let nodes = Array.init n Fun.id in
  shuffle rng nodes;
  let events =
    List.concat
      (List.init count (fun i ->
           let at = lo +. Random.State.float rng (hi -. lo) in
           [
             { at; action = `Crash nodes.(i) };
             { at = at +. dwell; action = `Recover nodes.(i) };
           ]))
  in
  by_time events

let random_link_flaps ~rng ~g ~count ~window:(lo, hi) ~dwell =
  let edges = Array.of_list (Graph.edges g) in
  if count > Array.length edges then
    invalid_arg "Faults.random_link_flaps: count > edge count";
  if dwell < 0.0 then invalid_arg "Faults.random_link_flaps: negative dwell";
  shuffle rng edges;
  let events =
    List.concat
      (List.init count (fun i ->
           let at = lo +. Random.State.float rng (hi -. lo) in
           let u, v = edges.(i) in
           [
             { at; action = `LinkDown (u, v) };
             { at = at +. dwell; action = `LinkUp (u, v) };
           ]))
  in
  by_time events

let mixed_churn ~rng ~g ~nodes ~links ~window ~dwell =
  let node_events = churn ~rng ~n:(Graph.n g) ~count:nodes ~window ~dwell in
  let link_events = random_link_flaps ~rng ~g ~count:links ~window ~dwell in
  by_time (node_events @ link_events)

let witness_waves ~start ~dwell ~gap witnesses =
  if dwell < 0.0 then invalid_arg "Faults.witness_waves: negative dwell";
  if gap < 0.0 then invalid_arg "Faults.witness_waves: negative gap";
  let _, events =
    List.fold_left
      (fun (at, acc) witness ->
        let witness = List.sort_uniq compare witness in
        let crashes = List.map (fun v -> { at; action = `Crash v }) witness in
        let recoveries =
          List.map (fun v -> { at = at +. dwell; action = `Recover v }) witness
        in
        (at +. dwell +. gap, acc @ crashes @ recoveries))
      (start, []) witnesses
  in
  events

let link_waves ~start ~dwell ~gap waves =
  if dwell < 0.0 then invalid_arg "Faults.link_waves: negative dwell";
  if gap < 0.0 then invalid_arg "Faults.link_waves: negative gap";
  let _, events =
    List.fold_left
      (fun (at, acc) wave ->
        let wave =
          List.sort_uniq compare (List.map (fun (u, v) -> (min u v, max u v)) wave)
        in
        let downs = List.map (fun (u, v) -> { at; action = `LinkDown (u, v) }) wave in
        let ups =
          List.map (fun (u, v) -> { at = at +. dwell; action = `LinkUp (u, v) }) wave
        in
        (at +. dwell +. gap, acc @ downs @ ups))
      (start, []) waves
  in
  events

(* A witness node becomes one incident link (to its smallest
   neighbour): at most |nodes| + |links| link faults, which the
   paper's reduction projects back to at most that many node faults,
   so a within-budget witness stays within budget as a link wave. *)
let witness_links g ~nodes ~links =
  let of_node v =
    let nb = Graph.neighbors g v in
    if Array.length nb = 0 then None else Some (min v nb.(0), max v nb.(0))
  in
  List.sort_uniq compare
    (List.map (fun (u, v) -> (min u v, max u v)) links
    @ List.filter_map of_node nodes)

let schedule_on sim net events =
  List.iter
    (fun { at; action } ->
      Sim.at sim ~time:at (fun () ->
          match action with
          | `Crash v -> Network.crash net v
          | `Recover v -> Network.recover net v
          | `LinkDown (u, v) -> Network.fail_link net u v
          | `LinkUp (u, v) -> Network.restore_link net u v))
    events
