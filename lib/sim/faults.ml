open Ftr_graph

type action =
  [ `Crash of int
  | `Recover of int
  | `LinkDown of int * int
  | `LinkUp of int * int
  | `LinkDegrade of int * int * float
  | `LinkRestore of int * int ]

type event = { at : float; action : action }

let by_time = List.stable_sort (fun a b -> Float.compare a.at b.at)
let crash_set_at ~at nodes = List.map (fun v -> { at; action = `Crash v }) nodes

let link_set_at ~at links =
  List.map (fun (u, v) -> { at; action = `LinkDown (u, v) }) links

let shuffle rng a =
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done

let random_crashes ~rng ~n ~count ~window:(lo, hi) =
  if count > n then invalid_arg "Faults.random_crashes: count > n";
  let nodes = Array.init n Fun.id in
  shuffle rng nodes;
  List.init count (fun i ->
      { at = lo +. Random.State.float rng (hi -. lo); action = `Crash nodes.(i) })

let churn ~rng ~n ~count ~window:(lo, hi) ~dwell =
  if count > n then invalid_arg "Faults.churn: count > n";
  if dwell < 0.0 then invalid_arg "Faults.churn: negative dwell";
  let nodes = Array.init n Fun.id in
  shuffle rng nodes;
  let events =
    List.concat
      (List.init count (fun i ->
           let at = lo +. Random.State.float rng (hi -. lo) in
           [
             { at; action = `Crash nodes.(i) };
             { at = at +. dwell; action = `Recover nodes.(i) };
           ]))
  in
  by_time events

let random_link_flaps ~rng ~g ~count ~window:(lo, hi) ~dwell =
  let edges = Array.of_list (Graph.edges g) in
  if count > Array.length edges then
    invalid_arg "Faults.random_link_flaps: count > edge count";
  if dwell < 0.0 then invalid_arg "Faults.random_link_flaps: negative dwell";
  shuffle rng edges;
  let events =
    List.concat
      (List.init count (fun i ->
           let at = lo +. Random.State.float rng (hi -. lo) in
           let u, v = edges.(i) in
           [
             { at; action = `LinkDown (u, v) };
             { at = at +. dwell; action = `LinkUp (u, v) };
           ]))
  in
  by_time events

let gray_flaps ~rng ~g ~count ~window:(lo, hi) ~dwell ~factor =
  let edges = Array.of_list (Graph.edges g) in
  if count > Array.length edges then
    invalid_arg "Faults.gray_flaps: count > edge count";
  if dwell < 0.0 then invalid_arg "Faults.gray_flaps: negative dwell";
  if not (Float.is_finite factor) || factor < 1.0 then
    invalid_arg "Faults.gray_flaps: factor must be finite and >= 1";
  shuffle rng edges;
  let events =
    List.concat
      (List.init count (fun i ->
           let at = lo +. Random.State.float rng (hi -. lo) in
           let u, v = edges.(i) in
           [
             { at; action = `LinkDegrade (u, v, factor) };
             { at = at +. dwell; action = `LinkRestore (u, v) };
           ]))
  in
  by_time events

let region g ~center ~radius =
  if center < 0 || center >= Graph.n g then invalid_arg "Faults.region: bad center";
  if radius < 0 then invalid_arg "Faults.region: negative radius";
  let dist = Array.make (Graph.n g) (-1) in
  dist.(center) <- 0;
  let q = Queue.create () in
  Queue.add center q;
  while not (Queue.is_empty q) do
    let u = Queue.take q in
    if dist.(u) < radius then
      Array.iter
        (fun v ->
          if dist.(v) < 0 then begin
            dist.(v) <- dist.(u) + 1;
            Queue.add v q
          end)
        (Graph.neighbors g u)
  done;
  List.filter (fun v -> dist.(v) >= 0) (List.init (Graph.n g) Fun.id)

let region_links g ~center ~radius =
  let ball = region g ~center ~radius in
  let in_ball = Array.make (Graph.n g) false in
  List.iter (fun v -> in_ball.(v) <- true) ball;
  List.sort
    (fun (u1, v1) (u2, v2) ->
      let c = Int.compare u1 u2 in
      if c <> 0 then c else Int.compare v1 v2)
    (List.filter (fun (u, v) -> in_ball.(u) && in_ball.(v)) (Graph.edges g))

let mixed_churn ~rng ~g ~nodes ~links ~window ~dwell =
  let node_events = churn ~rng ~n:(Graph.n g) ~count:nodes ~window ~dwell in
  let link_events = random_link_flaps ~rng ~g ~count:links ~window ~dwell in
  by_time (node_events @ link_events)

let witness_waves ~start ~dwell ~gap witnesses =
  if dwell < 0.0 then invalid_arg "Faults.witness_waves: negative dwell";
  if gap < 0.0 then invalid_arg "Faults.witness_waves: negative gap";
  let _, events =
    List.fold_left
      (fun (at, acc) witness ->
        let witness = List.sort_uniq compare witness in
        let crashes = List.map (fun v -> { at; action = `Crash v }) witness in
        let recoveries =
          List.map (fun v -> { at = at +. dwell; action = `Recover v }) witness
        in
        (at +. dwell +. gap, acc @ crashes @ recoveries))
      (start, []) witnesses
  in
  events

let link_waves ~start ~dwell ~gap waves =
  if dwell < 0.0 then invalid_arg "Faults.link_waves: negative dwell";
  if gap < 0.0 then invalid_arg "Faults.link_waves: negative gap";
  let _, events =
    List.fold_left
      (fun (at, acc) wave ->
        let wave =
          List.sort_uniq compare (List.map (fun (u, v) -> (min u v, max u v)) wave)
        in
        let downs = List.map (fun (u, v) -> { at; action = `LinkDown (u, v) }) wave in
        let ups =
          List.map (fun (u, v) -> { at = at +. dwell; action = `LinkUp (u, v) }) wave
        in
        (at +. dwell +. gap, acc @ downs @ ups))
      (start, []) waves
  in
  events

let regional_waves ~rng ~g ~waves ~radius ~start ~dwell ~gap =
  if waves < 0 then invalid_arg "Faults.regional_waves: negative wave count";
  let centers = List.init waves (fun _ -> Random.State.int rng (Graph.n g)) in
  link_waves ~start ~dwell ~gap
    (List.map (fun c -> region_links g ~center:c ~radius) centers)

(* A witness node becomes one incident link (to its smallest
   neighbour): at most |nodes| + |links| link faults, which the
   paper's reduction projects back to at most that many node faults,
   so a within-budget witness stays within budget as a link wave. *)
let witness_links g ~nodes ~links =
  let of_node v =
    let nb = Graph.neighbors g v in
    if Array.length nb = 0 then None else Some (min v nb.(0), max v nb.(0))
  in
  List.sort_uniq compare
    (List.map (fun (u, v) -> (min u v, max u v)) links
    @ List.filter_map of_node nodes)

let schedule_on sim net events =
  List.iter
    (fun { at; action } ->
      Sim.at sim ~time:at (fun () ->
          match action with
          | `Crash v -> Network.crash net v
          | `Recover v -> Network.recover net v
          | `LinkDown (u, v) -> Network.fail_link net u v
          | `LinkUp (u, v) -> Network.restore_link net u v
          | `LinkDegrade (u, v, f) -> Network.degrade_link net u v ~factor:f
          | `LinkRestore (u, v) -> Network.restore_link_delay net u v))
    events
