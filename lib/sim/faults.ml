type event = { at : float; node : int; kind : [ `Crash | `Recover ] }

let crash_set_at ~at nodes = List.map (fun node -> { at; node; kind = `Crash }) nodes

let random_crashes ~rng ~n ~count ~window:(lo, hi) =
  if count > n then invalid_arg "Faults.random_crashes: count > n";
  let nodes = Array.init n Fun.id in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = nodes.(i) in
    nodes.(i) <- nodes.(j);
    nodes.(j) <- t
  done;
  List.init count (fun i ->
      { at = lo +. Random.State.float rng (hi -. lo); node = nodes.(i); kind = `Crash })

let schedule_on sim net events =
  List.iter
    (fun { at; node; kind } ->
      Sim.at sim ~time:at (fun () ->
          match kind with
          | `Crash -> Network.crash net node
          | `Recover -> Network.recover net node))
    events
