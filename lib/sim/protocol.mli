(** Message forwarding over fixed routes, with rerouting through
    surviving routes (Section 1 of the paper).

    A message travels along a {e sequence of routes}: each route is
    traversed link by link ([hop_latency] per link) and incurs a fixed
    [endpoint_overhead] at its endpoint (the encryption / error
    correction processing the paper describes as dominating). When the
    fixed route between source and destination is dead, the sender
    pays [nack_latency] to discover it (one [retry]) and re-plans via
    a shortest sequence of surviving routes. *)

type config = {
  hop_latency : float;
  endpoint_overhead : float;
  nack_latency : float;
  deadline : float option;
      (** per-message delivery deadline, measured from [sent_at] and
          checked at every nack; a message past it becomes a
          {!Message.DeadLetter}. [None] disables the check. *)
  max_replans : int;
      (** re-plans allowed before the message becomes a dead letter *)
  backoff : float;
      (** exponential nack backoff: the k-th re-plan of a message waits
          [nack_latency * backoff^(k-1)]; [1.0] is a constant delay *)
}

val default_config : config
(** hop 1.0, endpoint 10.0, nack 5.0 — endpoint processing dominates,
    matching the paper's cost model. No deadline, unbounded re-plans,
    no backoff: under a static fault set the legacy behaviour. *)

val hardened_config : config
(** {!default_config} plus the churn hardening the soak harness runs
    with: deadline 500.0, at most 8 re-plans, backoff factor 2.0. *)

val send :
  Sim.t ->
  Network.t ->
  config ->
  ?on_done:(Message.t -> unit) ->
  id:int ->
  src:int ->
  dst:int ->
  unit ->
  Message.t
(** Schedule the delivery of one message starting now. The returned
    record is filled in as the simulation runs; [on_done] fires at
    delivery or at the undeliverable verdict. Faults are read at each
    route boundary, so crashes occurring mid-flight are observed. *)

val send_queued :
  Sim.t ->
  Network.t ->
  Queueing.t ->
  config ->
  ?on_done:(Message.t -> unit) ->
  id:int ->
  src:int ->
  dst:int ->
  unit ->
  Message.t
(** Like {!send} but endpoint processing goes through the shared
    per-node FIFO servers instead of costing a fixed
    [endpoint_overhead]: concurrent routes through a hot endpoint
    queue up behind each other. *)

val deliver_all_queued :
  Sim.t ->
  Network.t ->
  Queueing.t ->
  config ->
  (float * int * int) list ->
  Message.t list

type broadcast_result = {
  reached : int;  (** non-faulty nodes that received the message *)
  rounds : int;
      (** largest route counter used; bounded by the surviving
          diameter (Section 1's table-rebuild argument) *)
}

val broadcast : Network.t -> origin:int -> counter_bound:int -> broadcast_result
(** Route-counter flooding: every node that first receives the
    message with counter [c] forwards it along all of its surviving
    routes with counter [c + 1]; copies whose counter would exceed
    [counter_bound] are discarded. Synchronous-round abstraction. *)

type async_broadcast_result = {
  a_reached : int;
  a_copies : int;  (** total message copies transmitted *)
  a_finished_at : float;  (** virtual time of the last delivery *)
}

val broadcast_async :
  Sim.t -> Network.t -> config -> origin:int -> counter_bound:int ->
  async_broadcast_result
(** The same protocol run as actual timed messages on the simulator:
    each forwarded copy pays its route's transit and endpoint costs,
    so arrival order depends on route lengths rather than rounds.
    Counters still bound the flooding exactly as in Section 1. *)

val deliver_all :
  Sim.t ->
  Network.t ->
  config ->
  (float * int * int) list ->
  Message.t list
(** Schedule one send per [(time, src, dst)] triple, run the
    simulation to completion, and return the messages (in input
    order). *)
