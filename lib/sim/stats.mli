(** Summary statistics for simulation measurements. *)

type summary = {
  count : int;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

val summarize : float list -> summary option
(** [None] on the empty list. Percentiles by the nearest-rank
    method. *)

val of_ints : int list -> summary option

val histogram : buckets:int -> float list -> (float * float * int) list
(** Equal-width buckets [(lo, hi, count)] spanning [min, max]; empty
    input gives []. *)

val pp_summary : Format.formatter -> summary -> unit

(** {1 Delivery reports}

    The soak harness's one-stop accounting over a batch of messages,
    including the churn-hardened protocol's dead-letter outcome. *)

type delivery = {
  sent : int;
  delivered : int;
  undeliverable : int;
  dead_letters : int;  (** re-plan budget or deadline exhausted *)
  pending : int;  (** still in flight when the simulation ended *)
  replans : int;  (** total re-plans across all messages *)
  latency : summary option;  (** over delivered messages *)
  replans_per_message : summary option;  (** over all messages *)
}

val delivery_report : Message.t list -> delivery

val delivery_rate : delivery -> float
(** [delivered / sent]; [1.0] for an empty batch. *)

val pp_delivery : Format.formatter -> delivery -> unit
