(** Summary statistics for simulation measurements. *)

type summary = {
  count : int;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

val percentile : float array -> float -> float
(** [percentile sorted p] is the nearest-rank [p]-th percentile of a
    sorted, non-empty array: element [ceil (p/100 * n)] (1-based),
    clamped into range. Exposed for oracle testing. *)

val summarize : float list -> summary option
(** [None] when no finite sample remains. Percentiles by the
    nearest-rank method. Non-finite samples (NaN, infinities) are
    dropped before sorting — they would otherwise poison every field —
    and tallied on the ["stats.non_finite_dropped"] counter. *)

val of_ints : int list -> summary option

val percentile_of : float list -> p:float -> float option
(** Nearest-rank [p]-th percentile of the finite samples; [None] when
    none remain. Non-finite samples are dropped (and tallied) exactly
    as in {!summarize}. The serve layer's latency SLOs read p50, p99
    and p999 through this — [summary] stops at p99, and tail SLOs
    need the deeper quantile without widening that record. *)

val histogram : buckets:int -> float list -> (float * float * int) list
(** Equal-width buckets [(lo, hi, count)] spanning [min, max]; empty
    input gives []. Non-finite samples are ignored. *)

val pp_summary : Format.formatter -> summary -> unit

(** {1 Delivery reports}

    The soak harness's one-stop accounting over a batch of messages,
    including the churn-hardened protocol's dead-letter outcome. *)

type delivery = {
  sent : int;
  delivered : int;
  undeliverable : int;
  dead_letters : int;  (** re-plan budget or deadline exhausted *)
  pending : int;  (** still in flight when the simulation ended *)
  replans : int;  (** total re-plans across all messages *)
  latency : summary option;  (** over delivered messages *)
  replans_per_message : summary option;  (** over all messages *)
}

val delivery_report : Message.t list -> delivery

val delivery_rate : delivery -> float
(** [delivered / sent]; [1.0] for an empty batch. *)

val pp_delivery : Format.formatter -> delivery -> unit
