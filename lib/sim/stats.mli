(** Summary statistics for simulation measurements. *)

type summary = {
  count : int;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

val summarize : float list -> summary option
(** [None] on the empty list. Percentiles by the nearest-rank
    method. *)

val of_ints : int list -> summary option

val histogram : buckets:int -> float list -> (float * float * int) list
(** Equal-width buckets [(lo, hi, count)] spanning [min, max]; empty
    input gives []. *)

val pp_summary : Format.formatter -> summary -> unit
