type 'a entry = { key : float; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { data = [||]; size = 0; next_seq = 0 }
let size t = t.size
let is_empty t = t.size = 0

let before a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let swap t i j =
  let x = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- x

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.data.(i) t.data.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && before t.data.(l) t.data.(!smallest) then smallest := l;
  if r < t.size && before t.data.(r) t.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t key value =
  if t.size = Array.length t.data then begin
    let grown =
      Array.make (max 16 (2 * t.size)) { key; seq = 0; value }
    in
    Array.blit t.data 0 grown 0 t.size;
    t.data <- grown
  end;
  t.data.(t.size) <- { key; seq = t.next_seq; value };
  t.next_seq <- t.next_seq + 1;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t 0
    end;
    Some (top.key, top.value)
  end

let peek t = if t.size = 0 then None else Some (t.data.(0).key, t.data.(0).value)
