(** Traffic generators: lists of [(time, src, dst)] send requests. *)

type entry = float * int * int

val all_pairs : n:int -> spacing:float -> entry list
(** Every ordered pair once, staggered [spacing] apart. *)

val uniform : rng:Random.State.t -> n:int -> count:int -> horizon:float -> entry list
(** [count] random distinct-endpoint pairs at uniform times in
    [0, horizon). *)

val hotspot :
  rng:Random.State.t ->
  n:int ->
  hub:int ->
  fraction:float ->
  count:int ->
  horizon:float ->
  entry list
(** Like {!uniform} but each message targets [hub] with probability
    [fraction] (a server node). *)

val zipf :
  rng:Random.State.t ->
  n:int ->
  s:float ->
  count:int ->
  horizon:float ->
  entry list
(** Heavy-tailed pair popularity: destinations follow a Zipf law with
    exponent [s] over node ids (node [r] has weight [1/(r+1)^s], so
    node 0 is the most popular), sources are uniform and distinct
    from the destination, times uniform in [0, horizon). [s = 0.0]
    degenerates to {!uniform}. The exponent must be finite and
    non-negative. *)

val flash_crowd :
  rng:Random.State.t ->
  n:int ->
  hub:int ->
  base:int ->
  burst:int ->
  at:float ->
  width:float ->
  horizon:float ->
  entry list
(** A bursty arrival ramp: [base] background messages at uniform
    times in [0, horizon) between uniform random pairs, plus a flash
    crowd of [burst] messages all targeting [hub], their send times
    packed uniformly into [[at, at + width)]. With [width] small
    relative to the horizon this drives arrival rate far above the
    background level — the admission-shedding scenario. *)

val zipf_pairs :
  rng:Random.State.t -> alive:int list -> s:float -> count:int -> (int * int) list
(** {!query_pairs} with Zipf destination popularity: destinations
    follow a Zipf law with exponent [s] over the positions of the
    [alive] pool (earlier entries more popular), sources uniform and
    distinct. [[]] when fewer than two vertices are alive. *)

val query_pairs :
  rng:Random.State.t -> alive:int list -> count:int -> (int * int) list
(** [count] distinct-endpoint [(src, dst)] pairs drawn uniformly from
    the [alive] vertex list — the serve layer's query workload, which
    (unlike the timed senders above) must never name a node it knows
    to be down. [[]] when fewer than two vertices are alive. *)

val permutation : rng:Random.State.t -> n:int -> at:float -> entry list
(** A random permutation workload: every node sends one message, the
    destination pattern is a uniformly random derangement-ish
    permutation (fixed points skipped). *)
