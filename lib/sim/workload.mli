(** Traffic generators: lists of [(time, src, dst)] send requests. *)

type entry = float * int * int

val all_pairs : n:int -> spacing:float -> entry list
(** Every ordered pair once, staggered [spacing] apart. *)

val uniform : rng:Random.State.t -> n:int -> count:int -> horizon:float -> entry list
(** [count] random distinct-endpoint pairs at uniform times in
    [0, horizon). *)

val hotspot :
  rng:Random.State.t ->
  n:int ->
  hub:int ->
  fraction:float ->
  count:int ->
  horizon:float ->
  entry list
(** Like {!uniform} but each message targets [hub] with probability
    [fraction] (a server node). *)

val query_pairs :
  rng:Random.State.t -> alive:int list -> count:int -> (int * int) list
(** [count] distinct-endpoint [(src, dst)] pairs drawn uniformly from
    the [alive] vertex list — the serve layer's query workload, which
    (unlike the timed senders above) must never name a node it knows
    to be down. [[]] when fewer than two vertices are alive. *)

val permutation : rng:Random.State.t -> n:int -> at:float -> entry list
(** A random permutation workload: every node sends one message, the
    destination pattern is a uniformly random derangement-ish
    permutation (fixed points skipped). *)
