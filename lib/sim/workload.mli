(** Traffic generators: lists of [(time, src, dst)] send requests. *)

type entry = float * int * int

val all_pairs : n:int -> spacing:float -> entry list
(** Every ordered pair once, staggered [spacing] apart. *)

val uniform : rng:Random.State.t -> n:int -> count:int -> horizon:float -> entry list
(** [count] random distinct-endpoint pairs at uniform times in
    [0, horizon). *)

val hotspot :
  rng:Random.State.t ->
  n:int ->
  hub:int ->
  fraction:float ->
  count:int ->
  horizon:float ->
  entry list
(** Like {!uniform} but each message targets [hub] with probability
    [fraction] (a server node). *)

val permutation : rng:Random.State.t -> n:int -> at:float -> entry list
(** A random permutation workload: every node sends one message, the
    destination pattern is a uniformly random derangement-ish
    permutation (fixed points skipped). *)
