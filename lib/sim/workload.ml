type entry = float * int * int

let all_pairs ~n ~spacing =
  let acc = ref [] in
  let k = ref 0 in
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      if src <> dst then begin
        acc := (spacing *. float_of_int !k, src, dst) :: !acc;
        incr k
      end
    done
  done;
  List.rev !acc

let random_pair rng n =
  let src = Random.State.int rng n in
  let rec pick () =
    let dst = Random.State.int rng n in
    if dst = src then pick () else dst
  in
  (src, pick ())

let uniform ~rng ~n ~count ~horizon =
  if n < 2 then invalid_arg "Workload.uniform: need n >= 2";
  let entries =
    List.init count (fun _ ->
        let src, dst = random_pair rng n in
        (Random.State.float rng horizon, src, dst))
  in
  List.sort compare entries

let hotspot ~rng ~n ~hub ~fraction ~count ~horizon =
  if n < 2 then invalid_arg "Workload.hotspot: need n >= 2";
  let entries =
    List.init count (fun _ ->
        let time = Random.State.float rng horizon in
        if Random.State.float rng 1.0 < fraction then begin
          let rec pick () =
            let src = Random.State.int rng n in
            if src = hub then pick () else src
          in
          (time, pick (), hub)
        end
        else
          let src, dst = random_pair rng n in
          (time, src, dst))
  in
  List.sort compare entries

let query_pairs ~rng ~alive ~count =
  let pool = Array.of_list alive in
  let n = Array.length pool in
  if n < 2 then []
  else
    List.init count (fun _ ->
        let i = Random.State.int rng n in
        let rec pick () =
          let j = Random.State.int rng n in
          if j = i then pick () else j
        in
        (pool.(i), pool.(pick ())))

let permutation ~rng ~n ~at =
  let perm = Array.init n Fun.id in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = perm.(i) in
    perm.(i) <- perm.(j);
    perm.(j) <- t
  done;
  Array.to_list perm
  |> List.mapi (fun src dst -> (at, src, dst))
  |> List.filter (fun (_, src, dst) -> src <> dst)
