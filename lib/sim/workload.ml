type entry = float * int * int

(* Injection order: by time, ties broken on (src, dst). Explicit
   Float.compare, not polymorphic compare: the polymorphic primitive
   on floats treats NaN unlike any total order (compare nan nan = 0
   but nan <> nan, and sorting mixed NaN keys is order-dependent), and
   it boxes every comparison. *)
let entry_compare (t1, s1, d1) (t2, s2, d2) =
  let c = Float.compare t1 t2 in
  if c <> 0 then c
  else
    let c = Int.compare s1 s2 in
    if c <> 0 then c else Int.compare d1 d2

let all_pairs ~n ~spacing =
  let acc = ref [] in
  let k = ref 0 in
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      if src <> dst then begin
        acc := (spacing *. float_of_int !k, src, dst) :: !acc;
        incr k
      end
    done
  done;
  List.rev !acc

let random_pair rng n =
  let src = Random.State.int rng n in
  let rec pick () =
    let dst = Random.State.int rng n in
    if dst = src then pick () else dst
  in
  (src, pick ())

let uniform ~rng ~n ~count ~horizon =
  if n < 2 then invalid_arg "Workload.uniform: need n >= 2";
  let entries =
    List.init count (fun _ ->
        let src, dst = random_pair rng n in
        (Random.State.float rng horizon, src, dst))
  in
  List.sort entry_compare entries

let hotspot ~rng ~n ~hub ~fraction ~count ~horizon =
  if n < 2 then invalid_arg "Workload.hotspot: need n >= 2";
  let entries =
    List.init count (fun _ ->
        let time = Random.State.float rng horizon in
        if Random.State.float rng 1.0 < fraction then begin
          let rec pick () =
            let src = Random.State.int rng n in
            if src = hub then pick () else src
          in
          (time, pick (), hub)
        end
        else
          let src, dst = random_pair rng n in
          (time, src, dst))
  in
  List.sort entry_compare entries

(* Zipf(s) over ranks 1..k: rank r carries weight 1/r^s. Sampling is
   a binary search over the cumulative weights, so a draw is O(log k)
   and the table is built once per generator call. *)
let zipf_cumulative ~s k =
  let cum = Array.make k 0.0 in
  let total = ref 0.0 in
  for i = 0 to k - 1 do
    total := !total +. (1.0 /. (float_of_int (i + 1) ** s));
    cum.(i) <- !total
  done;
  cum

let zipf_draw rng cum =
  let k = Array.length cum in
  let x = Random.State.float rng cum.(k - 1) in
  let lo = ref 0 and hi = ref (k - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cum.(mid) <= x then lo := mid + 1 else hi := mid
  done;
  !lo

let zipf ~rng ~n ~s ~count ~horizon =
  if n < 2 then invalid_arg "Workload.zipf: need n >= 2";
  if not (Float.is_finite s) || s < 0.0 then
    invalid_arg "Workload.zipf: exponent must be finite and >= 0";
  let cum = zipf_cumulative ~s n in
  let entries =
    List.init count (fun _ ->
        let time = Random.State.float rng horizon in
        let dst = zipf_draw rng cum in
        let rec pick () =
          let src = Random.State.int rng n in
          if src = dst then pick () else src
        in
        (time, pick (), dst))
  in
  List.sort entry_compare entries

let flash_crowd ~rng ~n ~hub ~base ~burst ~at ~width ~horizon =
  if n < 2 then invalid_arg "Workload.flash_crowd: need n >= 2";
  if hub < 0 || hub >= n then invalid_arg "Workload.flash_crowd: bad hub";
  if width < 0.0 then invalid_arg "Workload.flash_crowd: negative width";
  let baseline =
    List.init base (fun _ ->
        let src, dst = random_pair rng n in
        (Random.State.float rng horizon, src, dst))
  in
  let crowd =
    List.init burst (fun _ ->
        let time = at +. Random.State.float rng (Float.max width epsilon_float) in
        let rec pick () =
          let src = Random.State.int rng n in
          if src = hub then pick () else src
        in
        (time, pick (), hub))
  in
  List.sort entry_compare (baseline @ crowd)

let query_pairs ~rng ~alive ~count =
  let pool = Array.of_list alive in
  let n = Array.length pool in
  if n < 2 then []
  else
    List.init count (fun _ ->
        let i = Random.State.int rng n in
        let rec pick () =
          let j = Random.State.int rng n in
          if j = i then pick () else j
        in
        (pool.(i), pool.(pick ())))

let zipf_pairs ~rng ~alive ~s ~count =
  if not (Float.is_finite s) || s < 0.0 then
    invalid_arg "Workload.zipf_pairs: exponent must be finite and >= 0";
  let pool = Array.of_list alive in
  let n = Array.length pool in
  if n < 2 then []
  else begin
    let cum = zipf_cumulative ~s n in
    List.init count (fun _ ->
        let j = zipf_draw rng cum in
        let rec pick () =
          let i = Random.State.int rng n in
          if i = j then pick () else i
        in
        (pool.(pick ()), pool.(j)))
  end

let permutation ~rng ~n ~at =
  let perm = Array.init n Fun.id in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = perm.(i) in
    perm.(i) <- perm.(j);
    perm.(j) <- t
  done;
  Array.to_list perm
  |> List.mapi (fun src dst -> (at, src, dst))
  |> List.filter (fun (_, src, dst) -> src <> dst)
