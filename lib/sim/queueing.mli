(** Per-node endpoint servers with FIFO queueing.

    The paper's cost model has per-route endpoint processing
    (encryption, error-correction) dominating transmission time. Under
    load that processing is a shared resource: each node serves one
    message at a time, so concurrent routes through the same endpoint
    queue up. This module models that as a busy-until server per
    node. *)

type t

val create : n:int -> service_time:float -> t

val service_time : t -> float

val enqueue : t -> Sim.t -> node:int -> (unit -> unit) -> unit
(** Schedule the continuation for when the node's server has finished
    all earlier work plus one service time for this job. *)

val served : t -> int
(** Jobs completed or scheduled so far. *)

val served_at : t -> int -> int
(** Jobs at one node. *)

val total_wait : t -> float
(** Cumulative time jobs spent waiting behind earlier jobs (excluding
    their own service). *)

val busiest : t -> (int * int) option
(** [(node, jobs)] with the most jobs served; [None] for an empty
    network ([n = 0]), which has no servers at all. *)
