(** Binary min-heap keyed by floats, with FIFO tie-breaking.

    The event queue of the discrete-event simulator: events scheduled
    for the same instant fire in insertion order. *)

type 'a t

val create : unit -> 'a t

val size : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> float -> 'a -> unit

val pop : 'a t -> (float * 'a) option
(** Smallest key (earliest insertion among ties), removed. *)

val peek : 'a t -> (float * 'a) option
