(** Discrete-event simulation core: a virtual clock and an event
    queue of closures. *)

type t

val create : unit -> t

val now : t -> float

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** Enqueue an event [delay >= 0] time units from now. *)

val at : t -> time:float -> (unit -> unit) -> unit
(** Enqueue an event at an absolute time [>= now]. *)

val run : ?until:float -> t -> unit
(** Drain the queue (or stop once the clock would pass [until]);
    events may schedule further events. *)

val step : t -> bool
(** Execute one event; false when the queue is empty. *)

val events_executed : t -> int
