(** A network instance: a graph, a fixed routing, and the current
    fault state.

    Models the system of the paper's introduction — route tables are
    computed once; nodes crash and links go down; the surviving route
    graph determines which fixed routes still work. The fault state is
    a full {!Fault_model.t}, so link faults are first-class: a downed
    link kills exactly the routes traversing it while both endpoints
    stay alive (the paper's endpoint projection is available through
    {!Fault_model.endpoint_projection} for comparison). *)

open Ftr_graph
open Ftr_core

type t

val create : Routing.t -> t

val graph : t -> Graph.t

val routing : t -> Routing.t

val fault_model : t -> Fault_model.t
(** The underlying mixed fault state (shared; mutate it only through
    the functions below or the surviving-graph cache goes stale). *)

val faults : t -> Bitset.t
(** The current node crash set (shared, do not mutate directly). *)

val crash : t -> int -> unit

val recover : t -> int -> unit

val fail_link : t -> int -> int -> unit
(** Take a link down, in either endpoint order. Raises
    [Invalid_argument] if the graph has no such edge. Idempotent. *)

val restore_link : t -> int -> int -> unit
(** Bring a link back up; a no-op if it is not currently down. *)

val degrade_link : t -> int -> int -> factor:float -> unit
(** Gray failure: the link stays up but traversals cost [factor]
    times the healthy hop latency. Routes are not cut, so the
    surviving-graph cache is deliberately {e not} invalidated —
    degradation is latency-only by construction. Raises
    [Invalid_argument] on a non-edge or a factor that is not finite
    and at least 1. *)

val restore_link_delay : t -> int -> int -> unit
(** Clear any gray failure on the link; a no-op when healthy. *)

val link_delay_factor : t -> int -> int -> float
(** Current delay factor for the link (1.0 when healthy). *)

val degraded_links : t -> (int * int * float) list
(** Degraded links as normalised [(min, max, factor)] triples, sorted. *)

val degraded_link_count : t -> int

val path_delay_factor : t -> Path.t -> float
(** Mean per-hop delay factor over the path — multiply the healthy
    transit time by this (see {!Fault_model.path_delay_factor}). *)

val is_faulty : t -> int -> bool

val is_link_faulty : t -> int -> int -> bool

val fault_count : t -> int
(** Crashed nodes (links are counted by {!link_fault_count}). *)

val link_fault_count : t -> int

val link_faults : t -> (int * int) list
(** Downed links as normalised [(min, max)] pairs, sorted. *)

val surviving : t -> Digraph.t
(** Surviving route graph under the current faults (node and link);
    cached and invalidated by {!crash}/{!recover}/{!fail_link}/
    {!restore_link}. *)

val surviving_diameter : t -> Metrics.distance

val route_plan : t -> src:int -> dst:int -> int list option
(** Shortest sequence of surviving routes from [src] to [dst] (the
    intermediate endpoints, [src] first, [dst] last); [None] if the
    surviving graph disconnects them. The number of routes traversed is
    [length - 1]. *)

val route_survives : t -> src:int -> dst:int -> bool
(** Is [rho(src, dst)] defined and unaffected by the current faults
    (no crashed node on it, no downed link traversed by it)? *)
