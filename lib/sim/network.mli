(** A network instance: a graph, a fixed routing, and the current
    fault state.

    Models the system of the paper's introduction — route tables are
    computed once; nodes crash; the surviving route graph determines
    which fixed routes still work. *)

open Ftr_graph
open Ftr_core

type t

val create : Routing.t -> t

val graph : t -> Graph.t

val routing : t -> Routing.t

val faults : t -> Bitset.t
(** The current crash set (shared, do not mutate directly). *)

val crash : t -> int -> unit

val recover : t -> int -> unit

val is_faulty : t -> int -> bool

val fault_count : t -> int

val surviving : t -> Digraph.t
(** Surviving route graph under the current faults; cached and
    invalidated by {!crash}/{!recover}. *)

val surviving_diameter : t -> Metrics.distance

val route_plan : t -> src:int -> dst:int -> int list option
(** Shortest sequence of surviving routes from [src] to [dst] (the
    intermediate endpoints, [src] first, [dst] last); [None] if the
    surviving graph disconnects them. The number of routes traversed is
    [length - 1]. *)

val route_survives : t -> src:int -> dst:int -> bool
(** Is [rho(src, dst)] defined and unaffected by the current
    faults? *)
