module Obs = Ftr_obs.Obs

let c_non_finite = Obs.counter "stats.non_finite_dropped"

type summary = {
  count : int;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

let percentile sorted p =
  let n = Array.length sorted in
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
  sorted.(max 0 (min (n - 1) (rank - 1)))

(* NaN is both unsortable under polymorphic [compare] (it lands
   anywhere, poisoning every percentile) and absorbing under [+.]
   (mean becomes NaN). A summary must never report one, so non-finite
   samples are dropped up front and tallied on a counter instead. *)
let summarize values =
  let finite, rest = List.partition Float.is_finite values in
  (match rest with [] -> () | dropped -> Obs.add c_non_finite (List.length dropped));
  match finite with
  | [] -> None
  | _ ->
      let sorted = Array.of_list finite in
      Array.sort Float.compare sorted;
      let n = Array.length sorted in
      let total = Array.fold_left ( +. ) 0.0 sorted in
      Some
        {
          count = n;
          mean = total /. float_of_int n;
          min = sorted.(0);
          max = sorted.(n - 1);
          p50 = percentile sorted 50.0;
          p95 = percentile sorted 95.0;
          p99 = percentile sorted 99.0;
        }

let of_ints values = summarize (List.map float_of_int values)

let percentile_of values ~p =
  let finite, rest = List.partition Float.is_finite values in
  (match rest with [] -> () | dropped -> Obs.add c_non_finite (List.length dropped));
  match finite with
  | [] -> None
  | _ ->
      let sorted = Array.of_list finite in
      Array.sort Float.compare sorted;
      Some (percentile sorted p)

let histogram ~buckets values =
  let values = List.filter Float.is_finite values in
  match (values, buckets) with
  | [], _ | _, 0 -> []
  | _ ->
      let lo = List.fold_left min infinity values in
      let hi = List.fold_left max neg_infinity values in
      let width = if hi > lo then (hi -. lo) /. float_of_int buckets else 1.0 in
      let counts = Array.make buckets 0 in
      List.iter
        (fun v ->
          let i = min (buckets - 1) (int_of_float ((v -. lo) /. width)) in
          counts.(i) <- counts.(i) + 1)
        values;
      List.init buckets (fun i ->
          ( lo +. (width *. float_of_int i),
            lo +. (width *. float_of_int (i + 1)),
            counts.(i) ))

let pp_summary ppf s =
  Fmt.pf ppf "n=%d mean=%.2f min=%.0f p50=%.0f p95=%.0f p99=%.0f max=%.0f" s.count
    s.mean s.min s.p50 s.p95 s.p99 s.max

type delivery = {
  sent : int;
  delivered : int;
  undeliverable : int;
  dead_letters : int;
  pending : int;
  replans : int;
  latency : summary option;
  replans_per_message : summary option;
}

let delivery_report msgs =
  let count pred = List.length (List.filter pred msgs) in
  {
    sent = List.length msgs;
    delivered = count (fun m -> m.Message.status = Message.Delivered);
    undeliverable = count (fun m -> m.Message.status = Message.Undeliverable);
    dead_letters = count (fun m -> m.Message.status = Message.DeadLetter);
    pending = count (fun m -> m.Message.status = Message.Pending);
    replans = List.fold_left (fun acc m -> acc + m.Message.retries) 0 msgs;
    latency = summarize (List.filter_map Message.latency msgs);
    replans_per_message = of_ints (List.map (fun m -> m.Message.retries) msgs);
  }

let delivery_rate d =
  if d.sent = 0 then 1.0 else float_of_int d.delivered /. float_of_int d.sent

let pp_delivery ppf d =
  Fmt.pf ppf
    "sent=%d delivered=%d (%.1f%%) undeliverable=%d dead-letters=%d pending=%d \
     replans=%d"
    d.sent d.delivered
    (100.0 *. delivery_rate d)
    d.undeliverable d.dead_letters d.pending d.replans;
  match d.latency with
  | Some s -> Fmt.pf ppf "@ latency %a" pp_summary s
  | None -> ()
