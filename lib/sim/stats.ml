type summary = {
  count : int;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

let percentile sorted p =
  let n = Array.length sorted in
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
  sorted.(max 0 (min (n - 1) (rank - 1)))

let summarize values =
  match values with
  | [] -> None
  | _ ->
      let sorted = Array.of_list values in
      Array.sort compare sorted;
      let n = Array.length sorted in
      let total = Array.fold_left ( +. ) 0.0 sorted in
      Some
        {
          count = n;
          mean = total /. float_of_int n;
          min = sorted.(0);
          max = sorted.(n - 1);
          p50 = percentile sorted 50.0;
          p95 = percentile sorted 95.0;
          p99 = percentile sorted 99.0;
        }

let of_ints values = summarize (List.map float_of_int values)

let histogram ~buckets values =
  match (values, buckets) with
  | [], _ | _, 0 -> []
  | _ ->
      let lo = List.fold_left min infinity values in
      let hi = List.fold_left max neg_infinity values in
      let width = if hi > lo then (hi -. lo) /. float_of_int buckets else 1.0 in
      let counts = Array.make buckets 0 in
      List.iter
        (fun v ->
          let i = min (buckets - 1) (int_of_float ((v -. lo) /. width)) in
          counts.(i) <- counts.(i) + 1)
        values;
      List.init buckets (fun i ->
          ( lo +. (width *. float_of_int i),
            lo +. (width *. float_of_int (i + 1)),
            counts.(i) ))

let pp_summary ppf s =
  Fmt.pf ppf "n=%d mean=%.2f min=%.0f p50=%.0f p95=%.0f p99=%.0f max=%.0f" s.count
    s.mean s.min s.p50 s.p95 s.p99 s.max
