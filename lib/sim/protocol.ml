open Ftr_graph
open Ftr_core
module Obs = Ftr_obs.Obs

(* The simulation is single-threaded and event-ordered by the sim
   clock, so these counts are a function of the scenario alone. *)
let c_messages = Obs.counter "sim.messages"
let c_delivered = Obs.counter "sim.delivered"
let c_undeliverable = Obs.counter "sim.undeliverable"
let c_dead_letters = Obs.counter "sim.dead_letters"
(* Counts route-plan computations (initial fallback plans included),
   not nack retries — those are [sim.backoff_waits]. *)
let c_replans = Obs.counter "sim.route_plans"
let c_backoff_waits = Obs.counter "sim.backoff_waits"

type config = {
  hop_latency : float;
  endpoint_overhead : float;
  nack_latency : float;
  deadline : float option;
  max_replans : int;
  backoff : float;
}

let default_config =
  {
    hop_latency = 1.0;
    endpoint_overhead = 10.0;
    nack_latency = 5.0;
    deadline = None;
    max_replans = max_int;
    backoff = 1.0;
  }

let hardened_config =
  { default_config with deadline = Some 500.0; max_replans = 8; backoff = 2.0 }

let finish sim msg status on_done =
  msg.Message.status <- status;
  (match status with
  | Message.Delivered -> Obs.incr c_delivered
  | Message.Undeliverable -> Obs.incr c_undeliverable
  | Message.DeadLetter -> Obs.incr c_dead_letters
  | Message.Pending -> ());
  if status = Message.Delivered then msg.Message.delivered_at <- Sim.now sim;
  match on_done with Some f -> f msg | None -> ()

(* Endpoint processing model: a fixed per-route overhead, or a shared
   FIFO server per node (the queued variant). *)
type endpoint = Fixed | Queued of Queueing.t

let process endpoint sim config ~node k =
  match endpoint with
  | Fixed -> Sim.schedule sim ~delay:config.endpoint_overhead k
  | Queued servers -> Queueing.enqueue servers sim ~node k

(* Traverse the remaining waypoint list; each step re-reads the fault
   state, so crashes that happen mid-flight force a re-plan. A message
   sitting at a node that crashed is lost; the sender's end-to-end
   timeout retransmits from the source.

   Every nack goes through [nack]: the churn hardening lives there.
   The retry counter bounds re-plans ([max_replans]; the default
   [max_int] never triggers), the nack delay backs off exponentially
   ([nack_latency * backoff^(retries - 1)]; the default factor 1.0 is
   the legacy constant delay), and a [deadline] (measured from
   [sent_at], checked at each nack — a message already at its
   destination is delivered) turns a message that would otherwise
   thrash through churn into a dead letter. *)
let rec traverse sim net endpoint config msg waypoints on_done =
  match waypoints with
  | [] -> finish sim msg Message.Delivered on_done
  | a :: _ when Network.is_faulty net a ->
      nack sim net endpoint config msg ~from:msg.Message.src on_done
  | [ _ ] -> finish sim msg Message.Delivered on_done
  | a :: (b :: _ as rest) ->
      if Network.route_survives net ~src:a ~dst:b then begin
        match Routing.find (Network.routing net) a b with
        | None ->
            (* The plan references a pair the table does not route: the
               planner and the table disagree. Dead-letter the message
               (it counts against delivery, so soak/tests see it)
               rather than crash the whole simulation. *)
            finish sim msg Message.DeadLetter on_done
        | Some p ->
            msg.Message.routes_traversed <- msg.Message.routes_traversed + 1;
            msg.Message.hops <- msg.Message.hops + Path.length p;
            (* Gray failures slow the transit without cutting the
               route: the healthy transit time scales by the mean
               per-hop delay factor (1.0 on a clean path). *)
            let transit =
              config.hop_latency *. float_of_int (Path.length p)
              *. Network.path_delay_factor net p
            in
            Sim.schedule sim ~delay:transit (fun () ->
                process endpoint sim config ~node:b (fun () ->
                    traverse sim net endpoint config msg rest on_done))
      end
      else
        (* Route died under us: pay the detection cost and re-plan
           from the current node. *)
        nack sim net endpoint config msg ~from:a on_done

and nack sim net endpoint config msg ~from on_done =
  let deadline_passed =
    match config.deadline with
    | None -> false
    | Some d -> Sim.now sim -. msg.Message.sent_at >= d
  in
  if deadline_passed || msg.Message.retries >= config.max_replans then
    finish sim msg Message.DeadLetter on_done
  else begin
    msg.Message.retries <- msg.Message.retries + 1;
    Obs.incr c_backoff_waits;
    let delay =
      config.nack_latency
      *. (config.backoff ** float_of_int (msg.Message.retries - 1))
    in
    Sim.schedule sim ~delay (fun () ->
        replan sim net endpoint config msg ~from on_done)
  end

and replan sim net endpoint config msg ~from on_done =
  Obs.incr c_replans;
  if Network.is_faulty net from || Network.is_faulty net msg.Message.dst then
    finish sim msg Message.Undeliverable on_done
  else
    match Network.route_plan net ~src:from ~dst:msg.Message.dst with
    | None -> finish sim msg Message.Undeliverable on_done
    | Some waypoints -> traverse sim net endpoint config msg waypoints on_done

let send_with sim net endpoint config ?on_done ~id ~src ~dst () =
  Obs.incr c_messages;
  let msg = Message.make ~id ~src ~dst ~sent_at:(Sim.now sim) in
  if Network.is_faulty net src then begin
    finish sim msg Message.Undeliverable on_done;
    msg
  end
  else if src = dst then begin
    finish sim msg Message.Delivered on_done;
    msg
  end
  else begin
    (* Optimistically try the fixed direct route first; otherwise we
       pay one failed attempt before re-planning, as a sender with a
       stale table would. *)
    if Network.route_survives net ~src ~dst then
      traverse sim net endpoint config msg [ src; dst ] on_done
    else if Routing.mem (Network.routing net) src dst then
      nack sim net endpoint config msg ~from:src on_done
    else replan sim net endpoint config msg ~from:src on_done;
    msg
  end

let send sim net config ?on_done ~id ~src ~dst () =
  send_with sim net Fixed config ?on_done ~id ~src ~dst ()

let send_queued sim net servers config ?on_done ~id ~src ~dst () =
  send_with sim net (Queued servers) config ?on_done ~id ~src ~dst ()

type broadcast_result = { reached : int; rounds : int }

let broadcast net ~origin ~counter_bound =
  if Network.is_faulty net origin then invalid_arg "Protocol.broadcast: faulty origin";
  let dg = Network.surviving net in
  let n = Digraph.n dg in
  let counter = Array.make n (-1) in
  counter.(origin) <- 0;
  let frontier = ref [ origin ] in
  let rounds = ref 0 in
  (* Synchronous flooding rounds: every holder forwards along all of
     its surviving routes; the route counter is the round number. *)
  while !frontier <> [] && !rounds < counter_bound do
    incr rounds;
    let next = ref [] in
    List.iter
      (fun u ->
        Array.iter
          (fun v ->
            if counter.(v) < 0 && not (Network.is_faulty net v) then begin
              counter.(v) <- !rounds;
              next := v :: !next
            end)
          (Digraph.succ dg u))
      !frontier;
    if !next = [] then decr rounds (* last round reached nobody new *);
    frontier := !next
  done;
  let reached = Array.fold_left (fun acc c -> if c >= 0 then acc + 1 else acc) 0 counter in
  { reached; rounds = !rounds }

type async_broadcast_result = {
  a_reached : int;
  a_copies : int;
  a_finished_at : float;
}

let broadcast_async sim net config ~origin ~counter_bound =
  if Network.is_faulty net origin then
    invalid_arg "Protocol.broadcast_async: faulty origin";
  let n = Graph.n (Network.graph net) in
  let received = Array.make n false in
  let copies = ref 0 in
  let finished_at = ref (Sim.now sim) in
  let rec arrive node counter =
    if (not (Network.is_faulty net node)) && not received.(node) then begin
      received.(node) <- true;
      finished_at := Sim.now sim;
      if counter < counter_bound then
        (* Forward along every surviving fixed route out of this node;
           each copy pays the route's transit plus endpoint cost. *)
        Routing.iter
          (fun src dst p ->
            if src = node && not (Fault_model.affects (Network.fault_model net) p) then begin
              incr copies;
              let cost =
                config.endpoint_overhead
                +. (config.hop_latency *. float_of_int (Path.length p)
                   *. Network.path_delay_factor net p)
              in
              Sim.schedule sim ~delay:cost (fun () -> arrive dst (counter + 1))
            end)
          (Network.routing net)
    end
  in
  arrive origin 0;
  Sim.run sim;
  {
    a_reached = Array.fold_left (fun acc r -> if r then acc + 1 else acc) 0 received;
    a_copies = !copies;
    a_finished_at = !finished_at;
  }

let deliver_all_with sender sim entries =
  let acc = ref [] in
  List.iteri
    (fun id (time, src, dst) ->
      Sim.at sim ~time (fun () ->
          let msg = sender ~id ~src ~dst () in
          acc := msg :: !acc))
    entries;
  Sim.run sim;
  List.sort (fun a b -> compare a.Message.id b.Message.id) !acc

let deliver_all sim net config entries =
  deliver_all_with (fun ~id ~src ~dst () -> send sim net config ~id ~src ~dst ()) sim entries

let deliver_all_queued sim net servers config entries =
  deliver_all_with
    (fun ~id ~src ~dst () -> send_queued sim net servers config ~id ~src ~dst ())
    sim entries
