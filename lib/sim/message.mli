(** Messages and their delivery records. *)

type status =
  | Pending
  | Delivered
  | Undeliverable  (** no surviving plan exists right now *)
  | DeadLetter
      (** dropped by the churn-hardened protocol: the message exhausted
          its re-plan budget or overran its delivery deadline *)

type t = {
  id : int;
  src : int;
  dst : int;
  sent_at : float;
  mutable status : status;
  mutable delivered_at : float;
  mutable routes_traversed : int;
      (** the paper's cost measure: endpoint processing dominates, so
          transmission time is proportional to this *)
  mutable hops : int;  (** total link traversals *)
  mutable retries : int;  (** failed route attempts (re-plans) *)
}

val make : id:int -> src:int -> dst:int -> sent_at:float -> t

val latency : t -> float option
(** Delivery time minus send time, when delivered. [None] for any
    other status, and also for a [Delivered] record whose
    [delivered_at] is not finite (it is initialised to NaN), so a
    latency is always a finite number. *)

val status_string : status -> string

val pp : Format.formatter -> t -> unit
