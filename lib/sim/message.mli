(** Messages and their delivery records. *)

type status = Pending | Delivered | Undeliverable

type t = {
  id : int;
  src : int;
  dst : int;
  sent_at : float;
  mutable status : status;
  mutable delivered_at : float;
  mutable routes_traversed : int;
      (** the paper's cost measure: endpoint processing dominates, so
          transmission time is proportional to this *)
  mutable hops : int;  (** total link traversals *)
  mutable retries : int;  (** failed route attempts before success *)
}

val make : id:int -> src:int -> dst:int -> sent_at:float -> t

val latency : t -> float option
(** Delivery time minus send time, when delivered. *)

val pp : Format.formatter -> t -> unit
