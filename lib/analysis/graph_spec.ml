open Ftr_graph

let fail fmt = Printf.ksprintf (fun s -> Error s) fmt

(* A single total traversal: the parse succeeds iff every 'x'-separated
   part is an integer. *)
let dims s =
  let parts = String.split_on_char 'x' s in
  let ints = List.filter_map int_of_string_opt parts in
  if List.length ints = List.length parts then Some ints else None

let rng_of = function
  | Some seed -> (
      match int_of_string_opt seed with
      | Some s -> Random.State.make [| s |]
      | None ->
          (* Caught by [parse]'s Invalid_argument handler and turned
             into an Error, where the old Failure escaped to the CLI. *)
          invalid_arg (Printf.sprintf "seed: expected an integer, got %S" seed))
  | None -> Random.State.make [| 0xC0FFEE |]

let parse spec =
  let int_arg name s k =
    match int_of_string_opt s with
    | Some v -> k v
    | None -> fail "%s: expected an integer, got %S" name s
  in
  try
    match String.split_on_char ':' spec with
    | [ "petersen" ] -> Ok (Families.petersen ())
    | [ "cycle"; n ] -> int_arg "cycle" n (fun n -> Ok (Families.cycle n))
    | [ "path"; n ] -> int_arg "path" n (fun n -> Ok (Families.path_graph n))
    | [ "complete"; n ] -> int_arg "complete" n (fun n -> Ok (Families.complete n))
    | [ "star"; n ] -> int_arg "star" n (fun n -> Ok (Families.star n))
    | [ "wheel"; n ] -> int_arg "wheel" n (fun n -> Ok (Families.wheel n))
    | [ "hypercube"; d ] -> int_arg "hypercube" d (fun d -> Ok (Families.hypercube d))
    | [ "ccc"; d ] -> int_arg "ccc" d (fun d -> Ok (Families.ccc d))
    | [ "butterfly"; d ] -> int_arg "butterfly" d (fun d -> Ok (Families.butterfly d))
    | [ "debruijn"; d ] -> int_arg "debruijn" d (fun d -> Ok (Families.de_bruijn d))
    | [ "shuffle"; d ] -> int_arg "shuffle" d (fun d -> Ok (Families.shuffle_exchange d))
    | [ "grid"; d ] -> (
        match dims d with
        | Some [ r; c ] -> Ok (Families.grid r c)
        | _ -> fail "grid: expected RxC")
    | [ "torus"; d ] -> (
        match dims d with
        | Some [ r; c ] -> Ok (Families.torus r c)
        | _ -> fail "torus: expected RxC")
    | [ "torus3"; d ] -> (
        match dims d with
        | Some [ a; b; c ] -> Ok (Families.torus3 a b c)
        | _ -> fail "torus3: expected AxBxC")
    | [ "bipartite"; a; b ] ->
        int_arg "bipartite" a (fun a ->
            int_arg "bipartite" b (fun b -> Ok (Families.complete_bipartite a b)))
    | [ "circulant"; n; offsets ] ->
        int_arg "circulant" n (fun n ->
            let offs = List.filter_map int_of_string_opt (String.split_on_char ',' offsets) in
            Ok (Families.circulant n offs))
    | "gnp" :: n :: p :: seed ->
        int_arg "gnp" n (fun n ->
            match float_of_string_opt p with
            | Some p ->
                Ok (Random_graphs.gnp ~rng:(rng_of (List.nth_opt seed 0)) n p)
            | None -> fail "gnp: bad probability %S" p)
    | "gnm" :: n :: m :: seed ->
        int_arg "gnm" n (fun n ->
            int_arg "gnm" m (fun m ->
                Ok (Random_graphs.gnm ~rng:(rng_of (List.nth_opt seed 0)) n m)))
    | "regular" :: n :: d :: seed ->
        int_arg "regular" n (fun n ->
            int_arg "regular" d (fun d ->
                Ok (Random_graphs.regular ~rng:(rng_of (List.nth_opt seed 0)) n d)))
    | _ -> fail "unknown graph spec %S" spec
  with Invalid_argument msg -> fail "%s" msg

let conv =
  let parser s = parse s in
  let printer ppf g = Fmt.pf ppf "<graph n=%d m=%d>" (Graph.n g) (Graph.m g) in
  (parser, printer)
