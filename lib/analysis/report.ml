let console results =
  String.concat "\n" (List.map (fun (_, t) -> Table.render t) results)

(* [List.nth_opt row (-1)] raises [Invalid_argument] rather than
   returning [None], so the empty row needs its own case. *)
let last_cell row =
  match row with [] -> None | _ -> List.nth_opt row (List.length row - 1)

let violations results =
  List.filter_map
    (fun (id, table) ->
      let bad =
        List.filter (fun row -> last_cell row = Some "VIOLATION") table.Table.rows
      in
      if bad = [] then None else Some (id, List.map (String.concat " | ") bad))
    results

let markdown ~header results =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf header;
  Buffer.add_string buf "\n";
  List.iter
    (fun (_, table) ->
      Buffer.add_string buf (Table.to_markdown table);
      Buffer.add_string buf "\n\n")
    results;
  (match violations results with
  | [] -> Buffer.add_string buf "**Roll-up: every checked claim held.**\n"
  | bad ->
      Buffer.add_string buf "**Roll-up: VIOLATIONS FOUND:**\n\n";
      List.iter
        (fun (id, rows) ->
          List.iter (fun r -> Buffer.add_string buf (Printf.sprintf "- %s: %s\n" id r)) rows)
        bad);
  Buffer.contents buf
