(* Static certification of routing artifacts (DESIGN.md section 10).

   The lint (lib/lint) polices the code; this module polices the
   *data* the code ships and replays: witness-corpus JSON files and
   ftr-routing tables. Everything here is a static check — no
   diameter is ever evaluated — so certification is cheap enough to
   gate CI on every push:

   - corpus entries: the version and fields parse (delegated to
     {!Attack.Corpus}), the graph spec builds, the recorded vertex
     count matches, node faults are in-range / strictly sorted /
     within the searched budget, link faults are normalised real
     edges of the graph;
   - constructions referenced by entries are rebuilt once per
     distinct (graph, strategy, seed) triple and certified: the
     routing table validates (endpoints match keys, every route is a
     simple path over existing edges, bidirectional tables are
     symmetric), separator constructions keep the vertex-disjoint
     tree routings Lemma 1 needs, and every lemma-level property
     holds fault-free;
   - routing files: the ftr-routing format parses against the given
     graph (a non-edge step is rejected with its line number) and
     the loaded table validates. *)

open Ftr_graph
open Ftr_core

type problem = { artifact : string; where : string option; message : string }

type outcome = {
  files : int;
  entries : int;
  constructions : int;
  problems : problem list;
}

type build =
  graph:Graph.t -> strategy:string -> seed:int -> (Construction.t, string) result

let problem ?where artifact fmt =
  Printf.ksprintf (fun message -> { artifact; where; message }) fmt

let pp_problem ppf p =
  match p.where with
  | None -> Fmt.pf ppf "%s: %s" p.artifact p.message
  | Some w -> Fmt.pf ppf "%s: %s: %s" p.artifact w p.message

(* ------------------------------------------------------------------ *)
(* Constructions                                                      *)
(* ------------------------------------------------------------------ *)

let max_claimed_faults (c : Construction.t) =
  List.fold_left
    (fun acc (cl : Construction.claim) -> max acc cl.Construction.max_faults)
    0 c.Construction.claims

(* Lemma 1's shape, checked statically: each node outside the
   separator must reach at least [k] members by routes whose interiors
   avoid the separator and are pairwise vertex-disjoint, so no [k-1]
   faults can sever it from [M]. Unlike {!Tree_routing.verify} this
   accepts the direct-edge routes the kernel also installs: their
   interiors are empty, so they cannot break disjointness. *)
let separator_problems ~artifact g m routing ~k =
  let n = Graph.n g in
  let in_m = Bitset.of_list n m in
  let probs = ref [] in
  let add p = probs := p :: !probs in
  Graph.iter_vertices
    (fun x ->
      if not (Bitset.mem in_m x) then begin
        let targets = ref 0 in
        let interiors = Bitset.create n in
        List.iter
          (fun tgt ->
            match Routing.find routing x tgt with
            | None -> ()
            | Some p ->
                incr targets;
                List.iter
                  (fun v ->
                    if Bitset.mem in_m v then
                      add
                        (problem artifact
                           "route %d->%d passes through separator member %d" x
                           tgt v)
                    else if Bitset.mem interiors v then
                      add
                        (problem artifact
                           "tree routings from %d are not vertex-disjoint: \
                            interior node %d is shared"
                           x v)
                    else Bitset.add interiors v)
                  (Path.interior p))
          m;
        if !targets < k then
          add
            (problem artifact
               "node %d routes to only %d of the %d separator members Lemma 1 \
                needs"
               x !targets k)
      end)
    g;
  List.rev !probs

let certify_construction ~artifact (c : Construction.t) =
  let routing = c.Construction.routing in
  let g = Routing.graph routing in
  let n = Graph.n g in
  let probs = ref [] in
  let add p = probs := p :: !probs in
  (match Routing.validate routing with
  | Ok () -> ()
  | Error msg -> add (problem artifact "routing table invalid: %s" msg));
  List.iter
    (fun v ->
      if v < 0 || v >= n then
        add (problem artifact "concentrator member %d out of range [0,%d)" v n))
    c.Construction.concentrator;
  if c.Construction.claims <> [] then begin
    (match c.Construction.structure with
    | Construction.Separator m ->
        let k = max_claimed_faults c + 1 in
        List.iter add (separator_problems ~artifact g m routing ~k)
    | Construction.Neighborhood _ | Construction.Tri_rings _
    | Construction.Two_poles _ | Construction.Unstructured ->
        ());
    (* The paper's lemma-level properties must hold before any fault
       is injected; a construction bug that survives this is one the
       dynamic checks (tolerate/attack) are for. *)
    List.iter
      (fun (r : Properties.report) ->
        if not r.Properties.holds then
          add
            (problem artifact "property %s fails fault-free%s"
               r.Properties.property
               (match r.Properties.counterexample with
               | None -> ""
               | Some ce -> ": " ^ ce)))
      (Properties.check c ~faults:(Bitset.create n))
  end;
  List.rev !probs

(* ------------------------------------------------------------------ *)
(* Corpus entries                                                     *)
(* ------------------------------------------------------------------ *)

let rec strictly_sorted = function
  | [] | [ _ ] -> true
  | a :: (b :: _ as rest) -> a < b && strictly_sorted rest

let entry_problems ~artifact ~where g (e : Attack.Corpus.entry) =
  let n = Graph.n g in
  let probs = ref [] in
  let add fmt = Printf.ksprintf (fun message -> probs := { artifact; where = Some where; message } :: !probs) fmt in
  if e.Attack.Corpus.n <> n then
    add "records n=%d but %s has %d vertices" e.Attack.Corpus.n
      e.Attack.Corpus.graph n;
  if e.Attack.Corpus.f < 0 then add "negative fault budget f=%d" e.Attack.Corpus.f;
  List.iter
    (fun v ->
      if v < 0 || v >= n then add "node fault %d out of range [0,%d)" v n)
    e.Attack.Corpus.faults;
  if not (strictly_sorted e.Attack.Corpus.faults) then
    add "node faults are not sorted and distinct";
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        add "link fault (%d,%d) out of range [0,%d)" u v n
      else if u >= v then add "link fault (%d,%d) is not normalised (min,max)" u v
      else if not (Graph.mem_edge g u v) then
        add "link fault (%d,%d) is not an edge of %s" u v e.Attack.Corpus.graph)
    e.Attack.Corpus.edges;
  let size =
    List.length e.Attack.Corpus.faults + List.length e.Attack.Corpus.edges
  in
  if size > e.Attack.Corpus.f then
    add "witness has %d faults, more than the searched budget f=%d" size
      e.Attack.Corpus.f;
  (match e.Attack.Corpus.diameter with
  | Metrics.Finite d when d < 0 -> add "negative diameter %d" d
  | Metrics.Finite _ | Metrics.Infinite -> ());
  List.rev !probs

let certify_corpus_files ~build files =
  let cache : (string * string * int, (Graph.t, string) result) Hashtbl.t =
    Hashtbl.create 8
  in
  let constructions = ref 0 in
  let entries = ref 0 in
  let problems = ref [] in
  let add ps = problems := List.rev_append ps !problems in
  (* Rebuild and certify each distinct construction once, no matter
     how many witnesses reference it. *)
  let graph_for ~artifact ~where (e : Attack.Corpus.entry) =
    let key = (e.Attack.Corpus.graph, e.Attack.Corpus.strategy, e.Attack.Corpus.seed) in
    match Hashtbl.find_opt cache key with
    | Some r -> r
    | None ->
        let label =
          Printf.sprintf "construction %s/%s seed=%d" e.Attack.Corpus.graph
            e.Attack.Corpus.strategy e.Attack.Corpus.seed
        in
        let r =
          match Graph_spec.parse e.Attack.Corpus.graph with
          | Error msg ->
              Error (Printf.sprintf "bad graph spec %S: %s" e.Attack.Corpus.graph msg)
          | Ok g -> (
              match
                build ~graph:g ~strategy:e.Attack.Corpus.strategy
                  ~seed:e.Attack.Corpus.seed
              with
              | Error msg -> Error (Printf.sprintf "%s: %s" label msg)
              | Ok c ->
                  incr constructions;
                  add (certify_construction ~artifact:label c);
                  Ok g)
        in
        Hashtbl.add cache key r;
        (match r with
        | Error msg -> add [ { artifact; where = Some where; message = msg } ]
        | Ok _ -> ());
        r
  in
  List.iter
    (fun (path, parsed) ->
      match parsed with
      | Error msg -> add [ { artifact = path; where = None; message = msg } ]
      | Ok es ->
          List.iteri
            (fun i e ->
              incr entries;
              let where = Printf.sprintf "entry %d" (i + 1) in
              match graph_for ~artifact:path ~where e with
              | Error _ -> ()
              | Ok g -> add (entry_problems ~artifact:path ~where g e))
            es)
    files;
  {
    files = List.length files;
    entries = !entries;
    constructions = !constructions;
    problems = List.rev !problems;
  }

let certify_corpus_paths ~build paths =
  let loaded =
    List.concat_map
      (fun path ->
        if Sys.file_exists path && Sys.is_directory path then
          match Attack.Corpus.load_dir path with
          | [] -> [ (path, Error "no corpus files (*.json) found") ]
          | files -> files
        else [ (path, Attack.Corpus.load_file path) ])
      paths
  in
  certify_corpus_files ~build loaded

(* ------------------------------------------------------------------ *)
(* Routing files                                                      *)
(* ------------------------------------------------------------------ *)

(* Header-only certification: everything line 1 promises that can be
   checked without the graph. For version-2 compact tables that is
   almost everything — the spec must parse, its embedded vertex count
   must agree with the header's [n], and nothing may follow the
   header. Per-edge validation still needs the graph and stays in
   [certify_routing_file]. *)
let certify_routing_header path =
  let fail ?where fmt =
    Printf.ksprintf (fun message -> Error [ { artifact = path; where; message } ]) fmt
  in
  let where = Some "line 1" in
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> fail "%s" msg
  | text -> (
      match String.split_on_char '\n' (String.trim text) with
      | [] | [ "" ] -> fail "empty routing file"
      | header :: rest -> (
          let vertex_count n_str k =
            match int_of_string_opt n_str with
            | None -> fail ?where "vertex count %S is not an integer" n_str
            | Some n when n < 0 -> fail ?where "negative vertex count %d" n
            | Some n -> k n
          in
          let kind kind_str k =
            match Routing_io.kind_of_tag kind_str with
            | None -> fail ?where "unknown kind %S (expected uni or bi)" kind_str
            | Some _ -> k ()
          in
          match String.split_on_char ' ' header with
          | [ "ftr-routing"; "2"; n_str; kind_str; "compact"; spec ] ->
              vertex_count n_str (fun n ->
                  kind kind_str (fun () ->
                      if List.exists (fun l -> String.trim l <> "") rest then
                        fail ?where
                          "compact routing file must be a single header line"
                      else
                        match Compact.of_spec ~n spec with
                        | Error e -> fail ?where "bad compact spec: %s" e
                        | Ok _ ->
                            Ok (Printf.sprintf "v2 compact, n=%d, %s" n kind_str)))
          | [ "ftr-routing"; "1"; n_str; kind_str ] ->
              vertex_count n_str (fun n ->
                  kind kind_str (fun () ->
                      Ok (Printf.sprintf "v1 rows, n=%d, %s" n kind_str)))
          | "ftr-routing" :: version :: _ ->
              fail ?where "unknown ftr-routing version %S" version
          | _ -> fail ?where "not an ftr-routing header"))

let certify_routing_file ~graph path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> (0, [ { artifact = path; where = None; message = msg } ])
  | text -> (
      match Routing_io.load graph text with
      | Error msg -> (0, [ { artifact = path; where = None; message = msg } ])
      | Ok routing ->
          let probs =
            match Routing.validate routing with
            | Ok () -> []
            | Error msg ->
                [ { artifact = path; where = None; message = "routing table invalid: " ^ msg } ]
          in
          (Routing.route_count routing, probs))
