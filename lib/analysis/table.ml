type t = {
  title : string;
  headers : string list;
  rows : string list list;
  notes : string list;
}

let make ~title ~headers ?(notes = []) rows =
  List.iter
    (fun row ->
      if List.length row <> List.length headers then
        invalid_arg
          (Printf.sprintf "Table.make(%s): row width %d vs %d headers" title
             (List.length row) (List.length headers)))
    rows;
  { title; headers; rows; notes }

let widths t =
  let cols = List.length t.headers in
  let w = Array.make cols 0 in
  let feed row = List.iteri (fun i cell -> w.(i) <- max w.(i) (String.length cell)) row in
  feed t.headers;
  List.iter feed t.rows;
  w

let pad s width = s ^ String.make (width - String.length s) ' '

let render t =
  let w = widths t in
  let buf = Buffer.create 1024 in
  let line ch =
    Buffer.add_char buf '+';
    Array.iter
      (fun width ->
        Buffer.add_string buf (String.make (width + 2) ch);
        Buffer.add_char buf '+')
      w;
    Buffer.add_char buf '\n'
  in
  let row cells =
    Buffer.add_char buf '|';
    List.iteri
      (fun i cell ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf (pad cell w.(i));
        Buffer.add_string buf " |")
      cells;
    Buffer.add_char buf '\n'
  in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  line '-';
  row t.headers;
  line '=';
  List.iter row t.rows;
  line '-';
  List.iter (fun n -> Buffer.add_string buf ("note: " ^ n ^ "\n")) t.notes;
  Buffer.contents buf

let escape_csv cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let to_csv t =
  let line cells = String.concat "," (List.map escape_csv cells) in
  String.concat "\n" (line t.headers :: List.map line t.rows) ^ "\n"

let to_markdown t =
  let line cells = "| " ^ String.concat " | " cells ^ " |" in
  let sep = "|" ^ String.concat "|" (List.map (fun _ -> "---") t.headers) ^ "|" in
  let body = line t.headers :: sep :: List.map line t.rows in
  let notes = List.map (fun n -> "\n*" ^ n ^ "*") t.notes in
  "### " ^ t.title ^ "\n\n" ^ String.concat "\n" body ^ "\n"
  ^ String.concat "" notes
