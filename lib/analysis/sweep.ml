let cartesian xs ys = List.concat_map (fun x -> List.map (fun y -> (x, y)) ys) xs

let frequency ~trials pred =
  let hits = ref 0 in
  for i = 0 to trials - 1 do
    if pred i then incr hits
  done;
  float_of_int !hits /. float_of_int trials

let float_cell v = Printf.sprintf "%.2f" v
let ratio_cell k n = Printf.sprintf "%d/%d" k n
