(** The per-experiment index of DESIGN.md, executable.

    Each experiment id (E1-E20, F1-F3, S1-S2) regenerates one of the
    paper's quantitative claims (there are no tables in the paper; the
    theorems play that role) or one of its three figures. Running an
    experiment returns a {!Table.t}; figure experiments additionally
    write DOT files when the context carries an output directory. *)

type context = {
  seed : int;  (** every experiment derives its own PRNG from this *)
  quick : bool;  (** smaller testbeds and sampling budgets *)
  out_dir : string option;  (** where figure DOT files are written *)
  jobs : int;  (** worker domains for the evaluation engine *)
}

val default_context :
  ?seed:int -> ?quick:bool -> ?out_dir:string -> ?jobs:int -> unit -> context
(** [jobs] defaults to [Domain.recommended_domain_count ()]; every
    verdict is identical for any value of it (the engine merges
    deterministically), only the wall-clock changes. *)

val ids : string list
(** In presentation order. *)

val describe : string -> string
(** One-line description of an experiment id; raises a diagnostic
    [Invalid_argument] (naming the known ids) on unknown ids. *)

val run : ?jobs:int -> context -> string -> Table.t
(** Raises a diagnostic [Invalid_argument] on unknown ids. [jobs]
    overrides the context's worker-domain count. *)

val all : ?jobs:int -> context -> (string * Table.t) list
