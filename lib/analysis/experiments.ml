open Ftr_graph
open Ftr_core

type context = { seed : int; quick : bool; out_dir : string option; jobs : int }

let default_context ?(seed = 0xBEEF) ?(quick = false) ?out_dir ?jobs () =
  let jobs = match jobs with Some j -> j | None -> Par.recommended_jobs () in
  { seed; quick; out_dir; jobs }

let rng_for ctx id = Random.State.make [| ctx.seed; Hashtbl.hash id |]

let dist_cell = Format.asprintf "%a" Metrics.pp_distance

(* ------------------------------------------------------------------ *)
(* Testbeds                                                           *)
(* ------------------------------------------------------------------ *)

type testbed = { name : string; graph : Graph.t; t : int }

let bed name graph t =
  assert (Connectivity.is_k_connected graph (t + 1));
  { name; graph; t }

let random_regular_bed ~rng ~n ~d =
  let graph = Random_graphs.regular ~rng n d in
  let t = Connectivity.vertex_connectivity graph - 1 in
  { name = Printf.sprintf "random-%d-regular(n=%d)" d n; graph; t }

(* ------------------------------------------------------------------ *)
(* Claim evaluation                                                   *)
(* ------------------------------------------------------------------ *)

(* (exhaustive set budget, random samples, attack evaluation budget) *)
let budgets ctx = if ctx.quick then (2_000, 60, 150) else (20_000, 300, 500)

(* Total claim lookups. Every construction ships with at least one
   claim, but if one ever does not, a diagnostic [Invalid_argument]
   naming the experiment beats [Failure "hd"] escaping to the user. *)
let leading_claim ~where (c : Construction.t) =
  match c.Construction.claims with
  | claim :: _ -> claim
  | [] ->
      invalid_arg
        (Printf.sprintf "%s: construction %s carries no claims" where
           c.Construction.name)

let nth_claim ~where (c : Construction.t) i =
  match List.nth_opt c.Construction.claims i with
  | Some claim -> claim
  | None ->
      invalid_arg
        (Printf.sprintf "%s: construction %s has no claim #%d (it has %d)"
           where c.Construction.name i
           (List.length c.Construction.claims))

let claim_headers =
  [ "graph"; "n"; "t"; "construction"; "claim"; "f"; "bound"; "worst"; "sets";
    "mode"; "atk worst"; "atk evals"; "atk wsize"; "props"; "verdict" ]

let claim_row ctx ~rng tb (c : Construction.t) (claim : Construction.claim) =
  let exhaustive_budget, samples, attack_budget = budgets ctx in
  (* The attack engine runs separately from [Tolerance.evaluate] so a
     definitive exhaustive verdict stays definitive and the search's
     own columns stay visible. *)
  let v =
    Tolerance.evaluate ~exhaustive_budget ~samples ~attack_budget:0 ~jobs:ctx.jobs ~rng
      c ~f:claim.max_faults
  in
  let atk =
    Attack.search
      ~config:{ Attack.default_config with Attack.budget = attack_budget }
      ~jobs:ctx.jobs ~rng ~pools:c.Construction.pools c.Construction.routing
      ~f:claim.max_faults
  in
  let n = Graph.n tb.graph in
  let worst_witness =
    if Attack.score ~n atk.Attack.worst > Attack.score ~n v.Tolerance.worst then
      atk.Attack.witness
    else v.Tolerance.witness
  in
  let ok =
    Tolerance.respects v ~bound:claim.diameter_bound
    && Metrics.distance_le atk.Attack.worst (Metrics.Finite claim.diameter_bound)
  in
  (* Check the lemma-level properties on the worst fault set found
     (only meaningful within the claim's fault budget). *)
  let props =
    if List.length worst_witness > claim.Construction.max_faults then "-"
    else
      let faults = Bitset.of_list n worst_witness in
      if Properties.all_hold (Properties.check c ~faults) then "hold" else "FAIL"
  in
  [
    tb.name;
    string_of_int (Graph.n tb.graph);
    string_of_int tb.t;
    c.Construction.name;
    claim.source;
    string_of_int claim.max_faults;
    string_of_int claim.diameter_bound;
    dist_cell v.Tolerance.worst;
    string_of_int v.Tolerance.sets_checked;
    (if v.Tolerance.definitive then "exhaustive" else "sampled");
    dist_cell atk.Attack.worst;
    string_of_int atk.Attack.evals;
    string_of_int (List.length atk.Attack.witness);
    props;
    (if ok && props <> "FAIL" then "ok" else "VIOLATION");
  ]

let skipped_row tb name reason =
  [ tb.name; string_of_int (Graph.n tb.graph); string_of_int tb.t; name; reason;
    "-"; "-"; "-"; "-"; "-"; "-"; "-"; "-"; "-"; "skipped" ]

(* ------------------------------------------------------------------ *)
(* E1 / E2: the kernel construction                                   *)
(* ------------------------------------------------------------------ *)

let kernel_beds ctx ~rng =
  let base =
    [
      bed "hypercube(3)" (Families.hypercube 3) 2;
      bed "torus(5x5)" (Families.torus 5 5) 3;
      bed "petersen" (Families.petersen ()) 2;
      bed "ccc(3)" (Families.ccc 3) 2;
    ]
  in
  if ctx.quick then base
  else
    base
    @ [
        bed "hypercube(4)" (Families.hypercube 4) 3;
        bed "butterfly(3)" (Families.butterfly 3) 3;
        random_regular_bed ~rng ~n:24 ~d:4;
      ]

let kernel_experiment ctx ~which_claim ~id =
  let rng = rng_for ctx id in
  let rows =
    List.map
      (fun tb ->
        let c = Kernel.make tb.graph ~t:tb.t in
        let claim = nth_claim ~where:id c which_claim in
        claim_row ctx ~rng tb c claim)
      (kernel_beds ctx ~rng)
  in
  rows

let e1 ctx =
  Table.make ~title:"E1 (Theorem 3): kernel routing is (max(2t,4), t)-tolerant"
    ~headers:claim_headers
    (kernel_experiment ctx ~which_claim:0 ~id:"E1")

let e2 ctx =
  Table.make ~title:"E2 (Theorem 4): kernel routing is (4, floor(t/2))-tolerant"
    ~headers:claim_headers
    (kernel_experiment ctx ~which_claim:1 ~id:"E2")

(* ------------------------------------------------------------------ *)
(* E3: circular                                                       *)
(* ------------------------------------------------------------------ *)

let circular_beds ctx ~rng =
  let base =
    [ bed "cycle(12)" (Families.cycle 12) 1; bed "ccc(4)" (Families.ccc 4) 2 ]
  in
  if ctx.quick then base
  else
    base
    @ [
        bed "grid(6x6)" (Families.grid 6 6) 1;
        bed "torus(7x7)" (Families.torus 7 7) 3;
        bed "torus(9x9)" (Families.torus 9 9) 3;
        random_regular_bed ~rng ~n:60 ~d:4;
      ]

let take k l = List.filteri (fun i _ -> i < k) l

let e3 ctx =
  let rng = rng_for ctx "E3" in
  let rows =
    List.concat_map
      (fun tb ->
        let m = Independent.best_of ~rng ~tries:30 tb.graph in
        let need = Circular.required_k ~t:tb.t in
        if List.length m < need then
          [ skipped_row tb "circular" (Printf.sprintf "K=%d < %d" (List.length m) need) ]
        else begin
          (* Two regimes: the minimal K of Lemma 9 and the full set. *)
          let ks =
            List.sort_uniq compare
              [ need; min (List.length m) ((2 * tb.t) + 1); List.length m ]
          in
          List.map
            (fun k ->
              let c = Circular.make ~m:(take k m) tb.graph ~t:tb.t in
              claim_row ctx ~rng tb c (leading_claim ~where:"E3" c))
            ks
        end)
      (circular_beds ctx ~rng)
  in
  Table.make ~title:"E3 (Theorem 10): circular routing is (6, t)-tolerant"
    ~headers:claim_headers rows
    ~notes:
      [
        "each testbed is run at the minimal K of Lemma 9, at K=2t+1 (Lemma 7) and \
         at the full neighborhood set found";
      ]

(* ------------------------------------------------------------------ *)
(* E4 / E5: tri-circular                                              *)
(* ------------------------------------------------------------------ *)

let tri_experiment ctx ~variant ~id ~title ~beds =
  let rng = rng_for ctx id in
  let rows =
    List.map
      (fun tb ->
        let m = Independent.best_of ~rng ~tries:30 tb.graph in
        let need = Tri_circular.required_k ~t:tb.t ~variant in
        if List.length m < need then
          skipped_row tb "tri-circular" (Printf.sprintf "K=%d < %d" (List.length m) need)
        else
          let c = Tri_circular.make ~m tb.graph ~t:tb.t ~variant in
          claim_row ctx ~rng tb c (leading_claim ~where:id c))
      beds
  in
  Table.make ~title ~headers:claim_headers rows

let e4 ctx =
  let rng = rng_for ctx "E4-beds" in
  let beds =
    if ctx.quick then [ bed "cycle(45)" (Families.cycle 45) 1 ]
    else
      [
        bed "cycle(45)" (Families.cycle 45) 1;
        bed "ccc(5)" (Families.ccc 5) 2;
        bed "torus(15x15)" (Families.torus 15 15) 3;
        random_regular_bed ~rng ~n:160 ~d:3;
      ]
  in
  tri_experiment ctx ~variant:Tri_circular.Full ~id:"E4"
    ~title:"E4 (Theorem 13): tri-circular routing is (4, t)-tolerant (K >= 6t+9)"
    ~beds

let e5 ctx =
  let beds =
    if ctx.quick then [ bed "cycle(27)" (Families.cycle 27) 1 ]
    else
      [
        bed "cycle(27)" (Families.cycle 27) 1;
        bed "ccc(4)" (Families.ccc 4) 2;
        bed "torus(10x10)" (Families.torus 10 10) 3;
      ]
  in
  tri_experiment ctx ~variant:Tri_circular.Small ~id:"E5"
    ~title:"E5 (Remark 14): small tri-circular routing is (5, t)-tolerant (K >= 3(t+1)/3(t+2))"
    ~beds

(* ------------------------------------------------------------------ *)
(* E6 / E7: bipolar                                                   *)
(* ------------------------------------------------------------------ *)

let bipolar_beds ctx ~rng =
  let base = [ bed "cycle(12)" (Families.cycle 12) 1; bed "cycle(16)" (Families.cycle 16) 1 ] in
  if ctx.quick then base
  else base @ [ bed "ccc(5)" (Families.ccc 5) 2; random_regular_bed ~rng ~n:60 ~d:3 ]

let bipolar_experiment ctx ~make ~id ~title =
  let rng = rng_for ctx id in
  let rows =
    List.map
      (fun tb ->
        match Two_trees.find tb.graph with
        | None -> skipped_row tb "bipolar" "no two-trees roots"
        | Some roots ->
            let c = make ~roots tb.graph ~t:tb.t in
            claim_row ctx ~rng tb c (leading_claim ~where:id c))
      (bipolar_beds ctx ~rng)
  in
  Table.make ~title ~headers:claim_headers rows

let e6 ctx =
  bipolar_experiment ctx ~id:"E6"
    ~make:(fun ~roots g ~t -> Bipolar.make_unidirectional ~roots g ~t)
    ~title:"E6 (Theorem 20): unidirectional bipolar routing is (4, t)-tolerant"

let e7 ctx =
  bipolar_experiment ctx ~id:"E7"
    ~make:(fun ~roots g ~t -> Bipolar.make_bidirectional ~roots g ~t)
    ~title:"E7 (Theorem 23): bidirectional bipolar routing is (5, t)-tolerant"

(* ------------------------------------------------------------------ *)
(* E8: Lemma 15 / Corollary 17                                        *)
(* ------------------------------------------------------------------ *)

let e8 ctx =
  let graphs =
    [
      ("cycle(30)", Families.cycle 30);
      ("grid(8x8)", Families.grid 8 8);
      ("torus(8x8)", Families.torus 8 8);
      ("hypercube(4)", Families.hypercube 4);
      ("hypercube(6)", Families.hypercube 6);
      ("ccc(4)", Families.ccc 4);
      ("ccc(5)", Families.ccc 5);
      ("butterfly(4)", Families.butterfly 4);
      ("de_bruijn(6)", Families.de_bruijn 6);
      ("shuffle_exchange(6)", Families.shuffle_exchange 6);
      ("petersen", Families.petersen ());
    ]
    @ (if ctx.quick then [] else [ ("torus3(5x5x5)", Families.torus3 5 5 5) ])
  in
  let rows =
    List.map
      (fun (name, g) ->
        let n = Graph.n g and d = Graph.max_degree g in
        let k = List.length (Independent.greedy g) in
        let bound = Independent.greedy_bound g in
        let cbrt = float_of_int n ** (1.0 /. 3.0) in
        let circ = float_of_int d < Independent.circular_threshold *. cbrt in
        let tri = float_of_int d < Independent.tri_circular_threshold *. cbrt in
        [
          name;
          string_of_int n;
          string_of_int d;
          string_of_int k;
          string_of_int bound;
          (if k >= bound then "ok" else "VIOLATION");
          (if circ then "yes" else "no");
          (if tri then "yes" else "no");
        ])
      graphs
  in
  Table.make
    ~title:"E8 (Lemma 15 / Corollary 17): greedy neighborhood sets vs ceil(n/(d^2+1))"
    ~headers:[ "graph"; "n"; "maxdeg"; "greedy K"; "bound"; "K>=bound";
               "d<0.79 n^1/3"; "d<0.46 n^1/3" ]
    rows

(* ------------------------------------------------------------------ *)
(* E9: Lemma 24 / Theorem 25                                          *)
(* ------------------------------------------------------------------ *)

let e9 ctx =
  let rng = rng_for ctx "E9" in
  let sizes = if ctx.quick then [ 64; 128 ] else [ 64; 128; 256; 512 ] in
  let epsilons = [ 0.05; 0.15; 0.25 ] in
  let trials = if ctx.quick then 10 else 40 in
  let rows =
    List.map
      (fun (n, eps) ->
        let p = (float_of_int n ** eps) /. float_of_int n in
        let weak = ref 0 and formal = ref 0 in
        for _ = 1 to trials do
          let g = Random_graphs.gnp ~rng n p in
          (match Two_trees.find_weak g with Some _ -> incr weak | None -> ());
          match Two_trees.find g with Some _ -> incr formal | None -> ()
        done;
        [
          string_of_int n;
          Sweep.float_cell eps;
          Printf.sprintf "%.4f" p;
          Sweep.ratio_cell !weak trials;
          Sweep.ratio_cell !formal trials;
        ])
      (Sweep.cartesian sizes epsilons)
  in
  Table.make
    ~title:
      "E9 (Lemma 24 / Theorem 25): frequency of the two-trees property in G(n,p), \
       p = n^eps / n"
    ~headers:[ "n"; "eps"; "p"; "prose (dist>=4)"; "formal (disjoint)" ]
    ~notes:
      [
        "Lemma 24 predicts probability -> 1 as n grows for eps < 1/4; the formal \
         definition is slightly stronger (see DESIGN.md)";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* E10 / E11: multiroutings                                           *)
(* ------------------------------------------------------------------ *)

let multi_worst mt ~f =
  let n = Graph.n (Multirouting.graph mt) in
  let worst = ref (Metrics.Finite 0) in
  let count = ref 0 in
  Seq.iter
    (fun faults_list ->
      incr count;
      let faults = Bitset.of_list n faults_list in
      worst := Metrics.max_distance !worst (Multirouting.diameter mt ~faults))
    (Tolerance.subsets_up_to (List.init n Fun.id) f);
  (!worst, !count)

let multi_headers = [ "graph"; "n"; "t"; "scheme"; "bound"; "worst"; "sets"; "width"; "verdict" ]

let multi_row tb scheme ~bound mt ~f =
  let worst, count = multi_worst mt ~f in
  let ok = Metrics.distance_le worst (Metrics.Finite bound) in
  [
    tb.name;
    string_of_int (Graph.n tb.graph);
    string_of_int tb.t;
    scheme;
    string_of_int bound;
    dist_cell worst;
    string_of_int count;
    string_of_int (Multirouting.max_width mt);
    (if ok then "ok" else "VIOLATION");
  ]

let small_beds ctx =
  let base = [ bed "cycle(8)" (Families.cycle 8) 1; bed "petersen" (Families.petersen ()) 2 ] in
  if ctx.quick then base
  else
    base
    @ [ bed "hypercube(3)" (Families.hypercube 3) 2; bed "complete(5)" (Families.complete 5) 3 ]

let e10 ctx =
  let rows =
    List.map
      (fun tb -> multi_row tb "full multirouting" ~bound:1 (Multirouting.full tb.graph ~t:tb.t) ~f:tb.t)
      (small_beds ctx)
  in
  Table.make
    ~title:"E10 (Section 6, obs. 1): t+1 parallel routes give surviving diameter 1"
    ~headers:multi_headers rows

let e11 ctx =
  let beds = List.filter (fun tb -> tb.name <> "complete(5)") (small_beds ctx) in
  let rows =
    List.concat_map
      (fun tb ->
        let kp, _ = Multirouting.kernel_plus tb.graph ~t:tb.t in
        let mu, _ = Multirouting.mult tb.graph ~t:tb.t in
        [
          multi_row tb "kernel + multi-M" ~bound:3 kp ~f:tb.t;
          (* Observation (3) states no explicit bound; we record the
             measured worst against the bipolar-like 4. *)
          multi_row tb "MULT 1-3 (width 2)" ~bound:4 mu ~f:tb.t;
        ])
      beds
  in
  Table.make
    ~title:"E11 (Section 6, obs. 2-3): kernel+concentrator multiroutes (<=3) and MULT"
    ~headers:multi_headers rows

(* ------------------------------------------------------------------ *)
(* E12: augmentation                                                  *)
(* ------------------------------------------------------------------ *)

let e12 ctx =
  let rng = rng_for ctx "E12" in
  let beds =
    [ bed "cycle(12)" (Families.cycle 12) 1; bed "ccc(3)" (Families.ccc 3) 2 ]
    @
    if ctx.quick then []
    else [ bed "torus(5x5)" (Families.torus 5 5) 3; bed "hypercube(3)" (Families.hypercube 3) 2 ]
  in
  let exhaustive_budget, samples, _ = budgets ctx in
  let rows =
    List.map
      (fun tb ->
        let r = Augment.clique_concentrator tb.graph ~t:tb.t in
        let claim = leading_claim ~where:"E12" r.Augment.construction in
        let v =
          Tolerance.evaluate ~exhaustive_budget ~samples ~attack_budget:0 ~jobs:ctx.jobs
            ~rng r.Augment.construction ~f:claim.Construction.max_faults
        in
        let cap = tb.t * (tb.t + 1) / 2 in
        let ok =
          Tolerance.respects v ~bound:claim.Construction.diameter_bound
          && List.length r.Augment.added <= cap
        in
        [
          tb.name;
          string_of_int (Graph.n tb.graph);
          string_of_int tb.t;
          string_of_int (List.length r.Augment.added);
          string_of_int cap;
          dist_cell v.Tolerance.worst;
          string_of_int v.Tolerance.sets_checked;
          (if v.Tolerance.definitive then "exhaustive" else "sampled");
          (if ok then "ok" else "VIOLATION");
        ])
      beds
  in
  Table.make
    ~title:"E12 (Section 6): concentrator clique gives a (3, t)-tolerant routing"
    ~headers:[ "graph"; "n"; "t"; "edges added"; "cap t(t+1)/2"; "worst"; "sets"; "mode"; "verdict" ]
    rows

(* ------------------------------------------------------------------ *)
(* F1-F3: figures                                                     *)
(* ------------------------------------------------------------------ *)

let write_figure ctx ~file contents =
  match ctx.out_dir with
  | None -> "not written (no --out-dir)"
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let path = Filename.concat dir file in
      let oc = open_out path in
      output_string oc contents;
      close_out oc;
      path

let figure_headers = [ "figure"; "graph"; "groups"; "file" ]

let f1 ctx =
  let g = Families.cycle 15 in
  let c = Circular.make g ~t:1 in
  let m = c.Construction.concentrator in
  let groups =
    ("M", m)
    :: List.mapi
         (fun i mi -> (Printf.sprintf "Gamma_%d" i, Array.to_list (Graph.neighbors g mi)))
         m
  in
  let dot = Dot.with_colored_groups ~name:"circular" ~groups g in
  let file = write_figure ctx ~file:"fig1_circular.dot" dot in
  Table.make ~title:"F1 (Figure 1): the circular routing's concentrator structure"
    ~headers:figure_headers
    [ [ "Figure 1"; "cycle(15)"; string_of_int (List.length groups); file ] ]

let f2 ctx =
  let g = Families.cycle 27 in
  let c = Tri_circular.make g ~t:1 ~variant:Tri_circular.Small in
  let m = Array.of_list c.Construction.concentrator in
  let ring = Array.length m / 3 in
  let groups =
    List.init 3 (fun j ->
        ( Printf.sprintf "M^%d" j,
          List.concat
            (List.init ring (fun i ->
                 let mi = m.((j * ring) + i) in
                 mi :: Array.to_list (Graph.neighbors g mi))) ))
  in
  let dot = Dot.with_colored_groups ~name:"tri_circular" ~groups g in
  let file = write_figure ctx ~file:"fig2_tri_circular.dot" dot in
  Table.make ~title:"F2 (Figure 2): the tri-circular routing's three rings"
    ~headers:figure_headers
    [ [ "Figure 2"; "cycle(27)"; "3 rings"; file ] ]

let f3 ctx =
  let g = Families.cycle 16 in
  match Two_trees.find g with
  | None -> Table.make ~title:"F3 (Figure 3)" ~headers:figure_headers []
  | Some (r1, r2) ->
      let m1 = Array.to_list (Graph.neighbors g r1) in
      let m2 = Array.to_list (Graph.neighbors g r2) in
      let fringe ms root =
        List.concat_map
          (fun m -> List.filter (fun v -> v <> root) (Array.to_list (Graph.neighbors g m)))
          ms
      in
      let groups =
        [
          ("r1", [ r1 ]); ("r2", [ r2 ]); ("M1", m1); ("M2", m2);
          ("Gamma_1", fringe m1 r1); ("Gamma_2", fringe m2 r2);
        ]
      in
      let dot = Dot.with_colored_groups ~name:"bipolar" ~groups g in
      let file = write_figure ctx ~file:"fig3_bipolar.dot" dot in
      Table.make ~title:"F3 (Figure 3): the bipolar routing's two trees"
        ~headers:figure_headers
        [ [ "Figure 3"; "cycle(16)"; "r1/r2/M1/M2/fringes"; file ] ]

(* ------------------------------------------------------------------ *)
(* S1: the simulator scenario                                         *)
(* ------------------------------------------------------------------ *)

let s1 ctx =
  let rng = rng_for ctx "S1" in
  let scenarios =
    let torus = Families.torus 7 7 in
    let base = [ ("kernel/torus(7x7)", Kernel.make torus ~t:3, 3) ] in
    if ctx.quick then base
    else
      base
      @ [
          ("circular/torus(9x9)", Circular.make (Families.torus 9 9) ~t:3, 3);
          ("bipolar-bi/cycle(16)", Bipolar.make_bidirectional (Families.cycle 16) ~t:1, 1);
        ]
  in
  let rows =
    List.map
      (fun (name, c, f) ->
        let net = Ftr_sim.Network.create c.Construction.routing in
        let n = Graph.n (Routing.graph c.Construction.routing) in
        let sim = Ftr_sim.Sim.create () in
        let config = Ftr_sim.Protocol.default_config in
        (* Crash f random nodes at time 50, send traffic throughout. *)
        Ftr_sim.Faults.schedule_on sim net
          (Ftr_sim.Faults.random_crashes ~rng ~n ~count:f ~window:(50.0, 50.0));
        let entries =
          Ftr_sim.Workload.uniform ~rng ~n ~count:(if ctx.quick then 100 else 400)
            ~horizon:200.0
        in
        let messages = Ftr_sim.Protocol.deliver_all sim net config entries in
        let delivered =
          List.filter (fun m -> m.Ftr_sim.Message.status = Ftr_sim.Message.Delivered) messages
        in
        let routes = List.map (fun m -> m.Ftr_sim.Message.routes_traversed) delivered in
        let summary =
          match Ftr_sim.Stats.of_ints routes with
          | Some s -> s
          | None -> { Ftr_sim.Stats.count = 0; mean = 0.; min = 0.; max = 0.; p50 = 0.; p95 = 0.; p99 = 0. }
        in
        let diam = Ftr_sim.Network.surviving_diameter net in
        let bcast =
          let origin =
            let rec first v = if Ftr_sim.Network.is_faulty net v then first (v + 1) else v in
            first 0
          in
          Ftr_sim.Protocol.broadcast net ~origin
            ~counter_bound:
              (match diam with Metrics.Finite d -> d | Metrics.Infinite -> n)
        in
        [
          name;
          string_of_int n;
          string_of_int f;
          Printf.sprintf "%d/%d" (List.length delivered) (List.length messages);
          Printf.sprintf "%.2f" summary.Ftr_sim.Stats.mean;
          Printf.sprintf "%.0f" summary.Ftr_sim.Stats.max;
          dist_cell diam;
          string_of_int bcast.Ftr_sim.Protocol.rounds;
          string_of_int bcast.Ftr_sim.Protocol.reached;
        ])
      scenarios
  in
  Table.make
    ~title:
      "S1 (Section 1): transmission cost ~ routes traversed; broadcast rebuild within \
       the surviving diameter"
    ~headers:
      [ "scenario"; "n"; "crashes"; "delivered"; "mean routes"; "max routes";
        "surv diam"; "bcast rounds"; "bcast reached" ]
    rows

(* ------------------------------------------------------------------ *)
(* E13: open problem 3 — behaviour beyond the connectivity bound      *)
(* ------------------------------------------------------------------ *)

let e13 ctx =
  let rng = rng_for ctx "E13" in
  let beds =
    [ bed "cycle(12)" (Families.cycle 12) 1; bed "torus(5x5)" (Families.torus 5 5) 3 ]
    @ (if ctx.quick then [] else [ bed "ccc(4)" (Families.ccc 4) 2 ])
  in
  let samples = if ctx.quick then 100 else 400 in
  let rows =
    List.concat_map
      (fun tb ->
        let c = Kernel.make tb.graph ~t:tb.t in
        let n = Graph.n tb.graph in
        List.map
          (fun extra ->
            let f = tb.t + extra in
            let worst = ref (Metrics.Finite 0) in
            let disconnected = ref 0 in
            for _ = 1 to samples do
              let faults =
                Bitset.of_list n
                  (List.sort_uniq compare
                     (List.init f (fun _ -> Random.State.int rng n)))
              in
              let comps = Surviving.component_diameters c.Construction.routing ~faults in
              if List.length comps > 1 then incr disconnected;
              List.iter
                (fun (members, d) ->
                  if List.length members > 1 then
                    worst := Metrics.max_distance !worst d)
                comps
            done;
            [
              tb.name;
              string_of_int n;
              string_of_int tb.t;
              string_of_int f;
              string_of_int samples;
              string_of_int !disconnected;
              dist_cell !worst;
            ])
          [ 1; 2; 3 ])
      beds
  in
  Table.make
    ~title:
      "E13 (Section 7, open problem 3): kernel routing beyond t faults - diameters \
       inside surviving components"
    ~headers:[ "graph"; "n"; "t"; "f"; "samples"; "disconnected"; "worst comp diam" ]
    ~notes:
      [
        "the paper leaves open whether routings stay well behaved per component once \
         faults exceed the connectivity; 'worst comp diam' is the largest internal \
         diameter observed over any multi-node surviving component (Infinite means a \
         component whose members could not all reach each other through surviving \
         routes)";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* E14: the minimal-path baseline (cf. Feldman 1985)                  *)
(* ------------------------------------------------------------------ *)

let worst_of ctx ~rng routing ~pools ~f =
  let exhaustive_budget, samples, _ = budgets ctx in
  let n = Graph.n (Routing.graph routing) in
  if Tolerance.count_subsets_up_to ~n ~k:f <= exhaustive_budget then
    Tolerance.exhaustive ~jobs:ctx.jobs routing ~f
  else
    let adv = Tolerance.adversarial ~jobs:ctx.jobs routing ~f ~pools in
    let rnd = Tolerance.random ~jobs:ctx.jobs routing ~f ~rng ~samples in
    {
      rnd with
      Tolerance.worst = Metrics.max_distance adv.Tolerance.worst rnd.Tolerance.worst;
      sets_checked = adv.Tolerance.sets_checked + rnd.Tolerance.sets_checked;
      definitive = false;
    }

let e14 ctx =
  let rng = rng_for ctx "E14" in
  let beds =
    [ bed "cycle(16)" (Families.cycle 16) 1; bed "torus(5x5)" (Families.torus 5 5) 3 ]
    @
    if ctx.quick then []
    else [ bed "ccc(4)" (Families.ccc 4) 2; bed "torus(7x7)" (Families.torus 7 7) 3 ]
  in
  let rows =
    List.concat_map
      (fun tb ->
        let paper = Builder.auto ~rng:(rng_for ctx "E14-build") tb.graph in
        let pc = paper.Builder.construction in
        let claim = Construction.strongest_claim pc in
        let baseline = Minimal_routing.make tb.graph in
        let scheme name (routing : Routing.t) pools bound_cell =
          let v = worst_of ctx ~rng routing ~pools ~f:tb.t in
          [
            tb.name;
            string_of_int (Graph.n tb.graph);
            string_of_int tb.t;
            name;
            bound_cell;
            dist_cell v.Tolerance.worst;
            string_of_int v.Tolerance.sets_checked;
            Printf.sprintf "%.2f" (Routing.stretch routing);
          ]
        in
        [
          scheme pc.Construction.name pc.Construction.routing pc.Construction.pools
            (string_of_int claim.Construction.diameter_bound);
          scheme baseline.Construction.name baseline.Construction.routing
            [ pc.Construction.concentrator ]
            "none";
        ])
      beds
  in
  Table.make
    ~title:
      "E14 (baseline, cf. Feldman 1985): minimal-path routing vs the paper's \
       construction, worst surviving diameter with up to t faults"
    ~headers:[ "graph"; "n"; "t"; "scheme"; "claimed"; "worst"; "sets"; "stretch" ]
    ~notes:
      [
        "the baseline promises nothing: with fixed shortest paths the surviving \
         diameter is whatever the fault pattern leaves (Feldman's analysis is \
         worst-case over graphs); the constructions trade longer routes (stretch) \
         for a constant bound";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* E15: the hypercube reference point of the introduction             *)
(* ------------------------------------------------------------------ *)

let e15 ctx =
  let dims = if ctx.quick then [ 3 ] else [ 3; 4 ] in
  let rows =
    List.concat_map
      (fun d ->
        let t = d - 1 in
        let row (c : Construction.t) =
          let v = Tolerance.exhaustive c.Construction.routing ~f:t in
          [
            Printf.sprintf "hypercube(%d)" d;
            string_of_int (1 lsl d);
            string_of_int t;
            c.Construction.name;
            dist_cell v.Tolerance.worst;
            string_of_int v.Tolerance.sets_checked;
          ]
        in
        [ row (Hypercube_routing.ecube d); row (Hypercube_routing.ecube_bidirectional d) ])
      dims
  in
  Table.make
    ~title:
      "E15 (introduction): dimension-ordered hypercube routings under d-1 faults \
       (Dolev et al. 1984 constructed routings achieving 2 / 3)"
    ~headers:[ "graph"; "n"; "t"; "scheme"; "worst"; "sets" ]
    ~notes:
      [
        "e-cube is the natural concrete routing; the 2/3 bounds of Dolev et al. \
         need their tailored construction, so e-cube's measured worst is the \
         gap this paper's general constructions compete against";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* E16: kernel growth with t vs the constant-bound constructions      *)
(* ------------------------------------------------------------------ *)

let e16 ctx =
  let rng = rng_for ctx "E16" in
  (* Families with growing connectivity where only the kernel applies
     (neighborhood sets are too small, 4-cycles kill the two-trees
     property): exactly the dense regime of open problem 1. *)
  let beds =
    [
      bed "hypercube(3)" (Families.hypercube 3) 2;
      bed "hypercube(4)" (Families.hypercube 4) 3;
      bed "hypercube(5)" (Families.hypercube 5) 4;
    ]
    @
    if ctx.quick then []
    else [ bed "hypercube(6)" (Families.hypercube 6) 5; bed "torus3(4x4x4)" (Families.torus3 4 4 4) 5 ]
  in
  let rows =
    List.map
      (fun tb ->
        let c = Kernel.make tb.graph ~t:tb.t in
        let v = worst_of ctx ~rng c.Construction.routing ~pools:c.Construction.pools ~f:tb.t in
        let half = tb.t / 2 in
        let vh =
          worst_of ctx ~rng c.Construction.routing ~pools:c.Construction.pools ~f:half
        in
        [
          tb.name;
          string_of_int (Graph.n tb.graph);
          string_of_int tb.t;
          string_of_int (max (2 * tb.t) 4);
          dist_cell v.Tolerance.worst;
          string_of_int half;
          dist_cell vh.Tolerance.worst;
          string_of_int (v.Tolerance.sets_checked + vh.Tolerance.sets_checked);
        ])
      beds
  in
  Table.make
    ~title:
      "E16 (open problem 1 motivation): kernel surviving diameter as t grows, \
       where no constant-bound construction applies"
    ~headers:
      [ "graph"; "n"; "t"; "2t bound"; "worst@f=t"; "t/2"; "worst@f=t/2"; "sets" ]
    ~notes:
      [
        "on dense families (degree >= n^(1/3)) only the kernel applies; the paper's \
         open problem 1 asks whether constant-diameter routings exist there at all. \
         Theorem 4's constant 4 at half the fault budget is visible in the last \
         columns";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* E17: ablation of the fault-search methodology                      *)
(* ------------------------------------------------------------------ *)

let e17 ctx =
  let rng = rng_for ctx "E17" in
  let beds =
    [
      ("kernel", bed "torus(5x5)" (Families.torus 5 5) 3, fun tb -> Kernel.make tb.graph ~t:tb.t);
      ( "circular",
        bed "ccc(4)" (Families.ccc 4) 2,
        fun tb -> Circular.make tb.graph ~t:tb.t );
    ]
    @
    if ctx.quick then []
    else
      [
        ( "bipolar/uni",
          bed "ccc(5)" (Families.ccc 5) 2,
          fun tb -> Bipolar.make_unidirectional tb.graph ~t:tb.t );
      ]
  in
  let rows =
    List.concat_map
      (fun (label, tb, build) ->
        let c = build tb in
        let routing = c.Construction.routing in
        let n = Graph.n tb.graph in
        let truth =
          if Tolerance.count_subsets_up_to ~n ~k:tb.t <= 30_000 then
            Some (Tolerance.exhaustive routing ~f:tb.t)
          else None
        in
        let adv = Tolerance.adversarial routing ~f:tb.t ~pools:c.Construction.pools in
        let rnd = Tolerance.random routing ~f:tb.t ~rng ~samples:adv.Tolerance.sets_checked in
        let cell name (v : Tolerance.verdict) =
          [
            tb.name; label; name; dist_cell v.Tolerance.worst;
            string_of_int v.Tolerance.sets_checked;
          ]
        in
        (match truth with Some v -> [ cell "exhaustive (truth)" v ] | None -> [])
        @ [ cell "adversarial pools" adv; cell "uniform random" rnd ])
      beds
  in
  Table.make
    ~title:
      "E17 (methodology ablation): do the proof-guided adversarial pools find the \
       worst fault sets?"
    ~headers:[ "graph"; "construction"; "search"; "worst found"; "sets" ]
    ~notes:
      [
        "uniform random search gets the same budget as the adversarial pools; the \
         pools target the structures the proofs identify (concentrator members, \
         single neighborhoods, minimum cuts)";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* S2: endpoint queueing under hotspot load                           *)
(* ------------------------------------------------------------------ *)

let s2 ctx =
  let rng = rng_for ctx "S2" in
  let g = Families.torus 7 7 in
  let c = Kernel.make g ~t:3 in
  let n = Graph.n g in
  let count = if ctx.quick then 200 else 600 in
  let fractions = [ 0.0; 0.3; 0.6; 0.9 ] in
  let rows =
    List.map
      (fun fraction ->
        let net = Ftr_sim.Network.create c.Construction.routing in
        let sim = Ftr_sim.Sim.create () in
        let servers =
          Ftr_sim.Queueing.create ~n
            ~service_time:Ftr_sim.Protocol.default_config.endpoint_overhead
        in
        let entries =
          Ftr_sim.Workload.hotspot ~rng ~n ~hub:0 ~fraction ~count ~horizon:400.0
        in
        let messages =
          Ftr_sim.Protocol.deliver_all_queued sim net servers
            Ftr_sim.Protocol.default_config entries
        in
        let latencies = List.filter_map Ftr_sim.Message.latency messages in
        let summary =
          match Ftr_sim.Stats.summarize latencies with
          | Some s -> s
          | None ->
              { Ftr_sim.Stats.count = 0; mean = 0.; min = 0.; max = 0.; p50 = 0.;
                p95 = 0.; p99 = 0. }
        in
        let hub_jobs = Ftr_sim.Queueing.served_at servers 0 in
        [
          Printf.sprintf "%.0f%%" (100.0 *. fraction);
          string_of_int (List.length messages);
          Printf.sprintf "%.1f" summary.Ftr_sim.Stats.mean;
          Printf.sprintf "%.0f" summary.Ftr_sim.Stats.p95;
          Printf.sprintf "%.0f" summary.Ftr_sim.Stats.max;
          string_of_int hub_jobs;
          Printf.sprintf "%.1f" (Ftr_sim.Queueing.total_wait servers);
        ])
      fractions
  in
  Table.make
    ~title:
      "S2 (Section 1 cost model under load): endpoint queueing as traffic \
       concentrates on one node (torus 7x7, kernel routing)"
    ~headers:
      [ "to-hub fraction"; "messages"; "mean latency"; "p95"; "max"; "hub jobs";
        "total queue wait" ]
    ~notes:
      [
        "endpoint processing is a shared per-node resource here; as the hotspot \
         fraction grows, latency is dominated by queueing at the hub rather than \
         by route counts - the regime where the paper's constant-route guarantees \
         stop being the bottleneck";
        "note the hub is busy even at fraction 0: concentrator members are \
         waypoints of most multi-route plans, so this routing style concentrates \
         load by design - the flip side of routing through a small set M";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* E18: design ablation — the circular window                         *)
(* ------------------------------------------------------------------ *)

let e18 ctx =
  let rng = rng_for ctx "E18" in
  let beds =
    [ bed "ccc(4)" (Families.ccc 4) 2 ]
    @ if ctx.quick then [] else [ bed "torus(7x7)" (Families.torus 7 7) 3 ]
  in
  let rows =
    List.concat_map
      (fun tb ->
        let m = Independent.best_of ~rng:(rng_for ctx "E18-m") ~tries:30 tb.graph in
        let k = List.length m in
        let max_window = ((k + 1) / 2) - 1 in
        List.map
          (fun w ->
            let c = Circular.make ~m ~window:w tb.graph ~t:tb.t in
            let v = worst_of ctx ~rng c.Construction.routing ~pools:c.Construction.pools ~f:tb.t in
            let within = Tolerance.respects v ~bound:6 in
            [
              tb.name;
              string_of_int tb.t;
              string_of_int k;
              string_of_int w;
              string_of_int (Routing.route_count c.Construction.routing);
              dist_cell v.Tolerance.worst;
              string_of_int v.Tolerance.sets_checked;
              (if within then "<= 6" else "EXCEEDS 6");
            ])
          (List.init max_window (fun i -> i + 1)))
      beds
  in
  Table.make
    ~title:
      "E18 (design ablation): shrinking the circular routing's CIRC 2 window - \
       route-table size vs fault tolerance"
    ~headers:[ "graph"; "t"; "K"; "window"; "routes"; "worst"; "sets"; "vs bound" ]
    ~notes:
      [
        "the paper's window is ceil(K/2)-1; a fringe node with window w can only \
         reach w+1 concentrator members directly, so once w+1 <= t a fault set \
         can isolate it from all of them and the Theorem 10 argument collapses - \
         the ablation shows where that actually starts costing diameter";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* E19: open problem 2 — O(t) added edges instead of the clique       *)
(* ------------------------------------------------------------------ *)

let e19 ctx =
  let rng = rng_for ctx "E19" in
  let beds =
    [ bed "cycle(12)" (Families.cycle 12) 1; bed "ccc(3)" (Families.ccc 3) 2 ]
    @
    if ctx.quick then []
    else [ bed "torus(5x5)" (Families.torus 5 5) 3; bed "hypercube(4)" (Families.hypercube 4) 3 ]
  in
  let rows =
    List.concat_map
      (fun tb ->
        let scheme (r : Augment.result) =
          let c = r.Augment.construction in
          let v =
            worst_of ctx ~rng c.Construction.routing ~pools:c.Construction.pools ~f:tb.t
          in
          [
            tb.name;
            string_of_int tb.t;
            c.Construction.name;
            string_of_int (List.length r.Augment.added);
            dist_cell v.Tolerance.worst;
            string_of_int v.Tolerance.sets_checked;
          ]
        in
        [
          scheme (Augment.clique_concentrator tb.graph ~t:tb.t);
          scheme (Augment.ring_concentrator tb.graph ~t:tb.t);
        ])
      beds
  in
  Table.make
    ~title:
      "E19 (Section 7, open problem 2): a ring on the concentrator (O(t) added \
       edges) vs the clique (O(t^2))"
    ~headers:[ "graph"; "t"; "scheme"; "edges added"; "worst"; "sets" ]
    ~notes:
      [
        "the paper asks whether a (c, t)-tolerant routing can be had for O(t) \
         added links; the ring is the natural candidate - its measured worst is \
         an empirical data point, not a theorem";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* E20: the attack engine vs exhaustive truth and uniform random      *)
(* ------------------------------------------------------------------ *)

let e20 ctx =
  let _, samples, _ = budgets ctx in
  let runs = if ctx.quick then 5 else 10 in
  (* Small instances where exhaustive enumeration gives the ground
     truth: does the search (default config) reach it from every seed? *)
  let instances =
    [
      ("hypercube(3)/kernel", Kernel.make (Families.hypercube 3) ~t:2, 2);
      ("ccc(3)/kernel", Kernel.make (Families.ccc 3) ~t:2, 2);
      ( "cycle(12)/bipolar-uni",
        Bipolar.make_unidirectional (Families.cycle 12) ~t:1,
        1 );
    ]
  in
  let small_rows =
    List.map
      (fun (name, c, f) ->
        let routing = c.Construction.routing in
        let n = Graph.n (Routing.graph routing) in
        let truth = Tolerance.exhaustive routing ~f in
        let hits = ref 0 and evals = ref 0 and best = ref (Metrics.Finite 0) in
        for i = 1 to runs do
          let rng = Random.State.make [| ctx.seed; Hashtbl.hash "E20"; i |] in
          let o = Attack.search ~jobs:ctx.jobs ~rng ~pools:c.Construction.pools routing ~f in
          if Attack.score ~n o.Attack.worst >= Attack.score ~n truth.Tolerance.worst
          then incr hits;
          evals := !evals + o.Attack.evals;
          best := Metrics.max_distance !best o.Attack.worst
        done;
        [
          name;
          string_of_int n;
          string_of_int f;
          dist_cell truth.Tolerance.worst;
          Printf.sprintf "%d/%d" !hits runs;
          dist_cell !best;
          "-";
          string_of_int (!evals / runs);
        ])
      instances
  in
  (* One instance beyond the exhaustive budget (grid(15x15) at f=2 has
     ~25.4k fault sets): guided search vs uniform sampling. *)
  let large_row =
    let g = Families.grid 15 15 in
    let c = Kernel.make g ~t:1 in
    let routing = c.Construction.routing in
    let f = 2 in
    let rng = rng_for ctx "E20-large" in
    let o = Attack.search ~jobs:ctx.jobs ~rng ~pools:c.Construction.pools routing ~f in
    let rnd = Tolerance.random ~jobs:ctx.jobs routing ~f ~rng ~samples in
    [
      "grid(15x15)/kernel";
      string_of_int (Graph.n g);
      string_of_int f;
      "infeasible";
      "-";
      dist_cell o.Attack.worst;
      dist_cell rnd.Tolerance.worst;
      string_of_int o.Attack.evals;
    ]
  in
  Table.make
    ~title:
      "E20 (attack engine): pool-seeded hill-climbing with annealing escapes vs \
       exhaustive truth and uniform random search"
    ~headers:
      [ "instance"; "n"; "f"; "exhaustive worst"; "hits"; "attack worst";
        "random worst"; "evals/run" ]
    ~notes:
      [
        "'hits' counts seeded default-config runs whose worst matches the \
         exhaustive worst-case diameter; on grid(15x15) the search is seeded by \
         the minimum-cut pool and finds a disconnecting fault pair that uniform \
         sampling misses";
      ]
    (small_rows @ [ large_row ])

(* ------------------------------------------------------------------ *)
(* E21: the paper's edge-fault reduction under true link faults       *)
(* ------------------------------------------------------------------ *)

(* The paper covers faulty edges by declaring one endpoint faulty and
   notes this "can only weaken our results". E21 checks the claim
   empirically on the witness-corpus constructions: for every edge
   fault set, the surviving diameter under the true link faults must
   not exceed the diameter under the endpoint projection — both
   exhaustively for small sets and on adversarially chosen large
   ones. *)
let e21 ctx =
  let exhaustive_budget, _, attack_budget = budgets ctx in
  let instances =
    [
      ("hypercube(3)/kernel", Kernel.make (Families.hypercube 3) ~t:2);
      ("ccc(3)/kernel", Kernel.make (Families.ccc 3) ~t:2);
      ( "cycle(12)/bipolar-uni",
        Bipolar.make_unidirectional (Families.cycle 12) ~t:1 );
      ("torus(5x5)/kernel", Kernel.make (Families.torus 5 5) ~t:3);
      ("grid(15x15)/kernel", Kernel.make (Families.grid 15 15) ~t:1);
    ]
  in
  let rows =
    List.map
      (fun (name, c) ->
        let routing = c.Construction.routing in
        let g = Routing.graph routing in
        let n = Graph.n g and m = Graph.m g in
        (* Largest f <= 2 whose <= f edge sets fit the exhaustive
           budget (each set costs two diameter evaluations). *)
        let f =
          if 2 * Tolerance.count_subsets_up_to ~n:m ~k:2 <= exhaustive_budget
          then 2
          else 1
        in
        let red = Tolerance.reduction ~jobs:ctx.jobs routing ~f in
        (* Adversarial large sets: a link-only attack at the claim's
           full fault budget, its witness checked against its own
           endpoint projection. *)
        let fa =
          List.fold_left
            (fun acc (cl : Construction.claim) -> max acc cl.max_faults)
            1 c.Construction.claims
        in
        let rng =
          Random.State.make [| ctx.seed; Hashtbl.hash "E21"; Hashtbl.hash name |]
        in
        let o =
          Attack.search_mixed
            ~config:{ Attack.default_config with Attack.budget = attack_budget }
            ~jobs:ctx.jobs ~rng ~pools:c.Construction.pools ~universe:`Edges
            routing ~f:fa
        in
        let compiled = Surviving.compile routing in
        let ev = Surviving.evaluator compiled in
        Surviving.set_mixed_faults ev ~nodes:[]
          ~edges:
            (List.filter_map
               (fun (u, v) -> Surviving.edge_id compiled u v)
               o.Attack.m_edges);
        let proj = List.sort_uniq compare (List.map fst o.Attack.m_edges) in
        let survivors = Bitset.create n in
        for v = 0 to n - 1 do Bitset.add survivors v done;
        List.iter (Bitset.remove survivors) proj;
        let d_restr = Surviving.evaluator_diameter_over ev ~targets:survivors in
        let d_proj =
          Surviving.diameter_compiled compiled ~faults:(Bitset.of_list n proj)
        in
        let atk_ok = Metrics.distance_le d_restr d_proj in
        let ok = red.Tolerance.red_violations = 0 && atk_ok in
        [
          name;
          string_of_int n;
          string_of_int m;
          string_of_int f;
          string_of_int red.Tolerance.red_sets;
          string_of_int red.Tolerance.red_violations;
          dist_cell red.Tolerance.red_worst_edge;
          dist_cell red.Tolerance.red_worst_proj;
          string_of_int fa;
          string_of_int (List.length o.Attack.m_edges);
          dist_cell o.Attack.m_worst;
          dist_cell d_restr;
          dist_cell d_proj;
          (if ok then "ok" else "VIOLATION");
        ])
      instances
  in
  Table.make
    ~title:
      "E21 (edge-fault reduction): surviving diameter under true link faults \
       vs the endpoint projection, exhaustive small sets plus adversarial \
       link attacks"
    ~headers:
      [ "instance"; "n"; "m"; "f"; "sets"; "viol"; "worst links";
        "worst proj"; "atk f"; "atk #links"; "atk full"; "atk restr";
        "atk proj"; "verdict" ]
    ~notes:
      [
        "for every enumerated edge set the link-fault surviving diameter over \
         the projection's surviving nodes ('worst links'; projected endpoints \
         stay alive and may relay) is compared against the endpoint \
         projection's diameter ('worst proj'; each link mapped to its smaller \
         endpoint, as in Fault_model.endpoint_projection); 'viol' counts sets \
         where the restricted link diameter exceeded the projected one - the \
         paper's reduction predicts zero everywhere; the attack columns run \
         Attack.search_mixed over links only at the construction's full fault \
         budget ('atk full' is the unrestricted surviving diameter of its \
         witness, which MAY exceed the projection: the projected endpoints \
         themselves are reachable but remote) and re-check the shrunk witness \
         restricted the same way ('atk restr' vs 'atk proj')";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* Registry                                                           *)
(* ------------------------------------------------------------------ *)

let registry : (string * string * (context -> Table.t)) list =
  [
    ("E1", "Theorem 3: kernel is (max(2t,4), t)-tolerant", e1);
    ("E2", "Theorem 4: kernel is (4, floor(t/2))-tolerant", e2);
    ("E3", "Theorem 10: circular is (6, t)-tolerant", e3);
    ("E4", "Theorem 13: tri-circular is (4, t)-tolerant", e4);
    ("E5", "Remark 14: small tri-circular is (5, t)-tolerant", e5);
    ("E6", "Theorem 20: unidirectional bipolar is (4, t)-tolerant", e6);
    ("E7", "Theorem 23: bidirectional bipolar is (5, t)-tolerant", e7);
    ("E8", "Lemma 15 / Corollary 17: neighborhood-set sizes", e8);
    ("E9", "Lemma 24 / Theorem 25: two-trees property in G(n,p)", e9);
    ("E10", "Section 6 (1): full multirouting diameter 1", e10);
    ("E11", "Section 6 (2,3): kernel+multi-M and MULT constructions", e11);
    ("E12", "Section 6: concentrator clique augmentation", e12);
    ("E13", "Section 7 open problem 3: beyond-connectivity fault sets", e13);
    ("E14", "Baseline: minimal-path routing vs the constructions", e14);
    ("E15", "Introduction: hypercube e-cube routings under d-1 faults", e15);
    ("E16", "Open problem 1: kernel diameter growth with t", e16);
    ("E17", "Methodology ablation: adversarial pools vs uniform sampling", e17);
    ("E18", "Design ablation: circular routing window size", e18);
    ("E19", "Open problem 2: ring vs clique concentrator augmentation", e19);
    ("E20", "Attack engine: guided search vs exhaustive truth and random", e20);
    ("E21", "Edge-fault reduction: true link faults vs endpoint projection", e21);
    ("F1", "Figure 1: circular routing diagram", f1);
    ("F2", "Figure 2: tri-circular routing diagram", f2);
    ("F3", "Figure 3: bipolar routing diagram", f3);
    ("S1", "Section 1: simulator cost model and broadcast rebuild", s1);
    ("S2", "Section 1 under load: endpoint queueing at a hotspot", s2);
  ]

let ids = List.map (fun (id, _, _) -> id) registry

let unknown_id id =
  invalid_arg
    (Printf.sprintf "unknown experiment id %S (available: %s)" id
       (String.concat ", " (List.map (fun (i, _, _) -> i) registry)))

let describe id =
  match List.find_opt (fun (i, _, _) -> i = id) registry with
  | Some (_, d, _) -> d
  | None -> unknown_id id

let with_jobs ?jobs ctx =
  match jobs with Some j -> { ctx with jobs = j } | None -> ctx

let run ?jobs ctx id =
  let ctx = with_jobs ?jobs ctx in
  match List.find_opt (fun (i, _, _) -> i = id) registry with
  | Some (_, _, f) -> f ctx
  | None -> unknown_id id

let all ?jobs ctx =
  let ctx = with_jobs ?jobs ctx in
  List.map (fun (id, _, f) -> (id, f ctx)) registry
