(** Rendering experiment results for EXPERIMENTS.md and the console. *)

val console : (string * Table.t) list -> string
(** All tables, ASCII-rendered, separated by blank lines. *)

val markdown : header:string -> (string * Table.t) list -> string
(** A self-contained markdown document: [header] (verbatim), then one
    section per experiment with its table and a pass/fail roll-up. *)

val violations : (string * Table.t) list -> (string * string list) list
(** Rows whose last cell reads "VIOLATION", grouped by experiment id
    (an empty result means every checked claim held). *)

val last_cell : string list -> string option
(** The last cell of a row; [None] on the empty row (it must not
    raise: roll-ups scan arbitrary tables). Exposed for testing. *)
