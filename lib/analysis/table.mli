(** Plain-text result tables (the experiment harness's output
    format). *)

type t = {
  title : string;
  headers : string list;
  rows : string list list;
  notes : string list;
}

val make :
  title:string -> headers:string list -> ?notes:string list -> string list list -> t

val render : t -> string
(** ASCII box rendering with per-column widths. *)

val to_csv : t -> string

val to_markdown : t -> string
