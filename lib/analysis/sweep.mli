(** Parameter-sweep helpers for the experiment harness. *)

val cartesian : 'a list -> 'b list -> ('a * 'b) list

val frequency : trials:int -> (int -> bool) -> float
(** Fraction of trial indices [0 .. trials-1] on which the predicate
    holds. *)

val float_cell : float -> string
(** Two-decimal rendering. *)

val ratio_cell : int -> int -> string
(** "k/n" rendering. *)
