(** Static certification of routing artifacts (DESIGN.md section 10).

    [ftr lint-artifacts] and the tests use this module to certify the
    data the repo ships — witness-corpus JSON files and ftr-routing
    tables — without evaluating a single surviving diameter:

    - corpus entries are well-formed (version and fields via
      {!Ftr_core.Attack.Corpus}, graph spec builds, recorded [n]
      matches, node faults in-range / strictly sorted / within the
      searched budget, link faults normalised real edges);
    - every construction referenced by an entry is rebuilt once per
      distinct (graph, strategy, seed) triple and certified: the
      routing validates, separator constructions keep Lemma 1's
      vertex-disjoint tree routings, and all lemma-level properties
      hold fault-free;
    - routing files parse against their graph (a non-edge step is
      rejected with its line number) and validate. *)

open Ftr_graph
open Ftr_core

type problem = { artifact : string; where : string option; message : string }
(** One certification failure: the artifact (a file path or a
    construction label), an optional position ("entry 3"), and what is
    wrong. *)

type outcome = {
  files : int;  (** corpus files examined *)
  entries : int;  (** corpus entries checked *)
  constructions : int;  (** distinct constructions rebuilt and certified *)
  problems : problem list;
}

type build =
  graph:Graph.t -> strategy:string -> seed:int -> (Construction.t, string) result
(** How to rebuild a construction from an entry's provenance; injected
    so this module stays independent of the CLI's strategy table. *)

val pp_problem : Format.formatter -> problem -> unit
(** ["artifact: where: message"] — one line per problem. *)

val certify_construction : artifact:string -> Construction.t -> problem list
(** Certify a built construction: {!Ftr_core.Routing.validate}, the
    concentrator in range, vertex-disjoint [M]-avoiding tree routings
    for [Separator] structures (at least [max claimed faults + 1] per
    outside node), and every {!Ftr_core.Properties} report holding
    under the empty fault set. *)

val certify_corpus_files :
  build:build ->
  (string * (Attack.Corpus.entry list, string) result) list ->
  outcome
(** Certify already-loaded corpus files, [(path, parse result)] as
    {!Ftr_core.Attack.Corpus.load_dir} returns them. *)

val certify_corpus_paths : build:build -> string list -> outcome
(** Load and certify corpus files and/or directories of them. *)

val certify_routing_header : string -> (string, problem list) result
(** Graph-free certification of an ftr-routing file's header line.
    Versions 1 and 2 are recognised; for the version-2 compact header
    ([ftr-routing 2 <n> <kind> compact <spec>]) the spec must parse,
    its embedded vertex count must equal the header's [n], the kind
    tag must be known, and no non-blank rows may follow. Problems
    carry [where = Some "line 1"] so {!pp_problem} prints file:line.
    On success returns a short description of the header (e.g.
    ["v2 compact, n=16, bi"]). *)

val certify_routing_file : graph:Graph.t -> string -> int * problem list
(** Certify one ftr-routing file against its graph. Returns the number
    of routes certified and any problems; parse failures carry the
    offending line number in the message. *)
