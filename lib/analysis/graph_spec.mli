(** Parsing of textual graph descriptions (used by the CLI and handy
    in scripts).

    Grammar (':'-separated):
    {v
    cycle:N  path:N  complete:N  star:N  wheel:N
    grid:RxC  torus:RxC  torus3:AxBxC
    hypercube:D  ccc:D  butterfly:D  debruijn:D  shuffle:D
    petersen
    bipartite:A:B  circulant:N:o1,o2,...
    gnp:N:P[:SEED]  gnm:N:M[:SEED]  regular:N:D[:SEED]
    v} *)

open Ftr_graph

val parse : string -> (Graph.t, string) result

val conv :
  (string -> (Graph.t, string) result) * (Format.formatter -> Graph.t -> unit)
(** A cmdliner [Arg.conv'] compatible pair. *)
