(** Hypercube-specific routings (the reference point of the paper's
    introduction).

    Dolev, Halpern, Simons and Strong (1984) showed the [d]-cube has a
    bidirectional routing whose surviving diameter is at most 3 and a
    unidirectional one achieving 2 — the result whose conjectured
    generalisation this paper partially confirms. The natural
    dimension-ordered ("e-cube") routing is the standard concrete
    scheme; we build it here and let the experiments measure what it
    actually achieves under [d - 1] faults. *)

open Ftr_graph

val ecube : int -> Construction.t
(** [ecube d]: unidirectional dimension-ordered routing on the
    [d]-cube: the route from [x] to [y] flips the differing bits in
    increasing bit order. Claims are empty; the experiments report the
    measured surviving diameter. *)

val ecube_bidirectional : int -> Construction.t
(** Bidirectional variant: the path between [x] and [y] is the e-cube
    path from [min x y], used in both directions. *)

val graph_of : Construction.t -> Graph.t
