(** Mixed node/edge fault sets.

    The paper handles faulty edges "by assuming that one of the
    endpoints of the faulty edge is a faulty node, an assumption that
    can only weaken our results". This module makes edge faults
    first-class so that claim can be exercised: a route is affected by
    an edge fault only if it traverses that exact edge, so for the
    surviving nodes the edge-fault surviving graph is a supergraph of
    the endpoint-fault one. *)

open Ftr_graph

type t

val create : Graph.t -> t

val fail_node : t -> int -> unit

val fail_edge : t -> int -> int -> unit
(** Undirected: both traversal directions die. *)

val recover_node : t -> int -> unit
(** Bring a node back; a no-op if it is not currently faulty. *)

val recover_edge : t -> int -> int -> unit
(** Bring a link back up, in either endpoint order; a no-op if it is
    not currently failed. *)

val node_faults : t -> Bitset.t

val node_fault_count : t -> int

val edge_fault_count : t -> int

val edge_faults : t -> (int * int) list
(** Failed edges as normalised [(min, max)] pairs, sorted. *)

val edge_failed : t -> int -> int -> bool
(** Is the edge currently failed, in either endpoint order? *)

val degrade_edge : t -> int -> int -> factor:float -> unit
(** Gray failure: the link stays up but every traversal costs
    [factor] times the healthy hop latency. [factor] must be finite
    and at least 1; setting it back to exactly 1 clears the entry, so
    the degradation map stays canonical. Raises [Invalid_argument] on
    a non-edge or a bad factor. Degradation is orthogonal to
    {!fail_edge}: it never changes {!affects}, {!surviving} or
    {!diameter} — only latency accounting. *)

val restore_edge : t -> int -> int -> unit
(** Clear any latency degradation on the link, in either endpoint
    order; a no-op if it is not degraded. *)

val edge_degradation : t -> int -> int -> float
(** Current delay factor for the link (1.0 when healthy). *)

val degraded_edges : t -> (int * int * float) list
(** Degraded links as normalised [(min, max, factor)] triples,
    sorted. *)

val degraded_edge_count : t -> int

val path_delay_factor : t -> Path.t -> float
(** Mean per-hop delay factor over the route's edges — the multiplier
    to apply to the healthy transit time of the whole path. 1.0 for a
    path with no degraded edges (including the trivial path). *)

val fault_count : t -> int
(** Node faults plus edge faults. *)

val digest : t -> string
(** A canonical one-line encoding of the current fault state — sorted
    node faults, sorted normalised links, then sorted degraded links
    with their factors, e.g.
    ["nodes{3,14} links{0-1,2-7} slow{4-5*2.5}"]. Factors print with
    17 significant digits so every finite double round-trips exactly.
    Two models over the same graph carry identical fault states iff
    their digests are byte-equal; the serve layer's crash-restart
    check compares these. *)

val affects : t -> Path.t -> bool
(** True when the route crosses a failed node or traverses a failed
    edge. *)

val endpoint_projection : t -> Bitset.t
(** The paper's reduction: node faults plus, for every failed edge,
    its smaller endpoint. *)

val surviving : Routing.t -> t -> Digraph.t

val diameter : Routing.t -> t -> Metrics.distance
(** Diameter of the surviving graph over non-faulty nodes (endpoints
    of failed edges remain alive). *)
