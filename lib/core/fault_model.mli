(** Mixed node/edge fault sets.

    The paper handles faulty edges "by assuming that one of the
    endpoints of the faulty edge is a faulty node, an assumption that
    can only weaken our results". This module makes edge faults
    first-class so that claim can be exercised: a route is affected by
    an edge fault only if it traverses that exact edge, so for the
    surviving nodes the edge-fault surviving graph is a supergraph of
    the endpoint-fault one. *)

open Ftr_graph

type t

val create : Graph.t -> t

val fail_node : t -> int -> unit

val fail_edge : t -> int -> int -> unit
(** Undirected: both traversal directions die. *)

val recover_node : t -> int -> unit
(** Bring a node back; a no-op if it is not currently faulty. *)

val recover_edge : t -> int -> int -> unit
(** Bring a link back up, in either endpoint order; a no-op if it is
    not currently failed. *)

val node_faults : t -> Bitset.t

val node_fault_count : t -> int

val edge_fault_count : t -> int

val edge_faults : t -> (int * int) list
(** Failed edges as normalised [(min, max)] pairs, sorted. *)

val edge_failed : t -> int -> int -> bool
(** Is the edge currently failed, in either endpoint order? *)

val fault_count : t -> int
(** Node faults plus edge faults. *)

val digest : t -> string
(** A canonical one-line encoding of the current fault state — sorted
    node faults, then sorted normalised links, e.g.
    ["nodes{3,14} links{0-1,2-7}"]. Two models over the same graph
    carry identical fault states iff their digests are byte-equal;
    the serve layer's crash-restart check compares these. *)

val affects : t -> Path.t -> bool
(** True when the route crosses a failed node or traverses a failed
    edge. *)

val endpoint_projection : t -> Bitset.t
(** The paper's reduction: node faults plus, for every failed edge,
    its smaller endpoint. *)

val surviving : Routing.t -> t -> Digraph.t

val diameter : Routing.t -> t -> Metrics.distance
(** Diameter of the surviving graph over non-faulty nodes (endpoints
    of failed edges remain alive). *)
