open Ftr_graph

type t = { g : Graph.t; table : (int * int, Path.t list) Hashtbl.t }

let create g = { g; table = Hashtbl.create 256 }
let graph t = t.g

let routes t src dst =
  Option.value ~default:[] (Hashtbl.find_opt t.table (src, dst))

let install t p =
  let key = (Path.source p, Path.target p) in
  let existing = routes t (fst key) (snd key) in
  if not (List.exists (Path.equal p) existing) then
    Hashtbl.replace t.table key (existing @ [ p ])

let add t p =
  if Path.length p < 1 then invalid_arg "Multirouting.add: trivial path";
  if not (Path.is_valid_in t.g p) then invalid_arg "Multirouting.add: path not in graph";
  install t p;
  install t (Path.rev p)

let route_count t = Hashtbl.fold (fun _ ps acc -> acc + List.length ps) t.table 0
[@@lint.ordered "integer addition is commutative and associative"]

let max_width t = Hashtbl.fold (fun _ ps acc -> max acc (List.length ps)) t.table 0
[@@lint.ordered "max over ints is commutative and associative"]

let surviving t ~faults =
  let b = Digraph.Builder.create (Graph.n t.g) in
  Hashtbl.iter
    (fun (src, dst) ps ->
      if List.exists (fun p -> not (Path.hits p faults)) ps then
        Digraph.Builder.add_arc b src dst)
    t.table;
  Digraph.Builder.to_digraph b
[@@lint.ordered
  "Digraph.of_edges sort_uniqs every adjacency list, so the digraph is \
   independent of arc insertion order"]

let diameter t ~faults = Surviving.diameter_of_digraph (surviving t ~faults) ~faults

let disjoint_bundle t ~k u v =
  List.iter (add t) (Disjoint_paths.st_paths t.g ~src:u ~dst:v ~k ())

let full g ~t:tol =
  let mt = create g in
  let n = Graph.n g in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      disjoint_bundle mt ~k:(tol + 1) u v
    done
  done;
  mt

let default_separator g =
  match Separator.minimum g with
  | Some m when m <> [] -> m
  | _ -> invalid_arg "Multirouting: no separating set available"

let kernel_plus ?m g ~t:tol =
  let m = match m with Some m -> m | None -> default_separator g in
  let mt = create g in
  let in_m = Bitset.of_list (Graph.n g) m in
  Graph.iter_vertices
    (fun x ->
      if not (Bitset.mem in_m x) then
        List.iter (add mt) (Tree_routing.make g ~src:x ~targets:m ~k:(tol + 1)))
    g;
  (* t+1 parallel routes inside the concentrator. *)
  let members = Array.of_list m in
  Array.iteri
    (fun i u ->
      Array.iteri (fun j v -> if i < j then disjoint_bundle mt ~k:(tol + 1) u v) members)
    members;
  Graph.iter_edges (fun u v -> add mt (Path.edge u v)) g;
  (mt, m)

let mult ?m g ~t:tol =
  let m = match m with Some m -> m | None -> default_separator g in
  let mt = create g in
  let in_m = Bitset.of_list (Graph.n g) m in
  (* The observation allows at most two parallel routes. Unlike the
     circular constructions, a plain separating set can have
     overlapping member neighborhoods, so the MULT 2 trees may offer a
     third route for some pairs; those are dropped (an identical route
     never counts twice). *)
  let add_capped p =
    let existing = routes mt (Path.source p) (Path.target p) in
    if List.exists (Path.equal p) existing || List.length existing < 2 then add mt p
  in
  (* Component MULT 1: tree routing from each outside node to M. *)
  Graph.iter_vertices
    (fun x ->
      if not (Bitset.mem in_m x) then
        List.iter add_capped (Tree_routing.make g ~src:x ~targets:m ~k:(tol + 1)))
    g;
  (* Component MULT 2: tree routings from each member to every
     member's neighborhood. M is a plain separating set, so a source
     may be adjacent to the target's center; route the direct edge
     separately and fan to the remaining neighbors. *)
  List.iter
    (fun src ->
      List.iter
        (fun m' ->
          let nbrs = Array.to_list (Graph.neighbors g m') in
          if List.mem src nbrs then begin
            add_capped (Path.edge src m');
            let others = List.filter (fun v -> v <> src) nbrs in
            let k = min tol (List.length others) in
            if k > 0 then
              List.iter add_capped (Tree_routing.make g ~src ~targets:others ~k)
          end
          else
            List.iter add_capped
              (Tree_routing.make g ~src ~targets:nbrs ~k:(tol + 1)))
        m)
    m;
  (* Component MULT 3: direct edge routes. *)
  Graph.iter_edges (fun u v -> add_capped (Path.edge u v)) g;
  (mt, m)
