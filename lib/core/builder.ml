open Ftr_graph

type strategy =
  | Tri_circular_full
  | Bipolar_uni
  | Tri_circular_small
  | Bipolar_bi
  | Circular
  | Kernel

let strategy_name = function
  | Tri_circular_full -> "tri-circular/full"
  | Bipolar_uni -> "bipolar/uni"
  | Tri_circular_small -> "tri-circular/small"
  | Bipolar_bi -> "bipolar/bi"
  | Circular -> "circular"
  | Kernel -> "kernel"

type choice = { strategy : strategy; construction : Construction.t; t : int }

let neighborhood_set ?rng g =
  match rng with
  | Some rng -> Independent.best_of ~rng ~tries:20 g
  | None -> Independent.greedy g

let applicable_with ?rng g ~t =
  let m = neighborhood_set ?rng g in
  let k = List.length m in
  let roots = Two_trees.find g in
  let strategies =
    List.concat
      [
        (if k >= Tri_circular.required_k ~t ~variant:Tri_circular.Full then
           [ Tri_circular_full ]
         else []);
        (if roots <> None then [ Bipolar_uni; Bipolar_bi ] else []);
        (if k >= Tri_circular.required_k ~t ~variant:Tri_circular.Small then
           [ Tri_circular_small ]
         else []);
        (if k >= Circular.required_k ~t then [ Circular ] else []);
        (if Connectivity.min_vertex_cut g <> None then [ Kernel ] else []);
      ]
  in
  let order = function
    | Tri_circular_full -> 0
    | Bipolar_uni -> 1
    | Tri_circular_small -> 2
    | Bipolar_bi -> 3
    | Circular -> 4
    | Kernel -> 5
  in
  (List.sort (fun a b -> compare (order a) (order b)) strategies, m, roots)

let applicable g ~t =
  let strategies, _, _ = applicable_with g ~t in
  strategies

let auto ?rng ?(prefer_bidirectional = false) g =
  let kappa = Connectivity.vertex_connectivity g in
  if kappa < 1 then invalid_arg "Builder.auto: graph is disconnected";
  let t = kappa - 1 in
  let strategies, m, roots = applicable_with ?rng g ~t in
  let strategies =
    if prefer_bidirectional then
      List.filter (fun s -> s <> Bipolar_uni) strategies
    else strategies
  in
  let build = function
    | Tri_circular_full -> Tri_circular.make ~m g ~t ~variant:Tri_circular.Full
    | Tri_circular_small -> Tri_circular.make ~m g ~t ~variant:Tri_circular.Small
    | Bipolar_uni -> Bipolar.make_unidirectional ?roots g ~t
    | Bipolar_bi -> Bipolar.make_bidirectional ?roots g ~t
    | Circular -> Circular.make ~m g ~t
    | Kernel -> Kernel.make g ~t
  in
  match strategies with
  | [] -> invalid_arg "Builder.auto: no construction applies (complete graph?)"
  | strategy :: _ -> { strategy; construction = build strategy; t }
