(** Adversarial fault-set search (the attack engine).

    Every theorem of the paper quantifies over {e all} fault sets of
    size at most [f]; exhaustive enumeration dies combinatorially and
    uniform sampling is a weak adversary for routing resilience —
    worst cases hide in tiny, structured corners of the fault space.
    This module searches for diameter-maximising fault sets with
    greedy hill-climbing over single-node swaps scored incrementally
    by a {!Surviving.evaluator} (a swap only touches the routes
    through its two endpoints), restarts seeded from the
    construction's adversarial pools (concentrator, neighborhoods,
    minimum cuts) and from random sets, and simulated-annealing
    escapes from plateaus — all under a fixed evaluation budget with a
    deterministic RNG.

    Every reported witness is {e delta-minimised}: no single fault can
    be dropped without losing the achieved diameter, so witnesses stay
    small enough to read and to replay cheaply forever (see
    {!module:Corpus}). *)

open Ftr_graph

type config = {
  budget : int;  (** max surviving-diameter evaluations for the search *)
  restarts : int;  (** max restarts (pool-seeded first, then random) *)
  sa_steps : int;  (** annealing steps per plateau escape *)
  init_temp : float;  (** initial annealing acceptance temperature *)
  cooling : float;  (** multiplicative cooling per annealing step *)
}

val default_config : config
(** [{ budget = 1500; restarts = 6; sa_steps = 60; init_temp = 2.0;
      cooling = 0.95 }] — the "default budget" every acceptance
    statement about the engine refers to. *)

type outcome = {
  worst : Metrics.distance;  (** largest surviving diameter found *)
  witness : int list;
      (** delta-minimal fault set achieving exactly [worst]; sorted *)
  raw_witness : int list;  (** the set as discovered, before shrinking *)
  evals : int;  (** diameter evaluations spent, shrinking included *)
  restarts_used : int;
}

val score : n:int -> Metrics.distance -> int
(** The search objective, totally ordered: a finite diameter is
    itself; [Infinite] scores [n], above every finite surviving
    diameter (which is at most [n - 1]). *)

val search :
  ?config:config ->
  ?jobs:int ->
  rng:Random.State.t ->
  ?pools:int list list ->
  Routing.t ->
  f:int ->
  outcome
(** Maximise the surviving diameter over fault sets of size exactly
    [min f n] (the empty set is also evaluated, so the result is never
    below the fault-free diameter). Each restart owns an equal slice
    of [budget] and a seed drawn from [rng] up front, runs greedy
    climbing with SA escapes on its own incremental evaluator, and
    re-seeds from fresh random sets while its slice lasts; restarts
    execute on up to [jobs] domains (default
    [Domain.recommended_domain_count ()]) and merge in restart order,
    so the outcome is identical for every [jobs] value and
    deterministic for a given RNG state. Shrinking the final witness
    costs at most [O(|witness|^2)] evaluations on top of the budget. *)

type mixed_outcome = {
  m_worst : Metrics.distance;  (** largest surviving diameter found *)
  m_nodes : int list;  (** node part of the delta-minimal witness; sorted *)
  m_edges : (int * int) list;
      (** link part of the witness, normalised [(min, max)] pairs *)
  m_raw_nodes : int list;  (** node part as discovered, before shrinking *)
  m_raw_edges : (int * int) list;  (** link part as discovered *)
  m_evals : int;
  m_restarts_used : int;
}

val search_mixed :
  ?config:config ->
  ?jobs:int ->
  rng:Random.State.t ->
  ?pools:int list list ->
  ?universe:[ `Mixed | `Edges ] ->
  Routing.t ->
  f:int ->
  mixed_outcome
(** {!search} over a fault universe that includes links: [`Mixed]
    (default) draws each fault from the n vertices plus the m edges,
    [`Edges] restricts the search to link faults only. The adversarial
    [pools] are node pools, used verbatim in the node part of the
    universe and mapped to their incident edges in the link part.
    Shares the restart/budget/merge machinery with {!search}, so the
    outcome is identical for every [jobs] value; the witness is
    delta-minimised over nodes and links together. *)

val shrink :
  Surviving.compiled -> witness:int list -> int list * Metrics.distance * int
(** [shrink c ~witness] greedily drops faults while the surviving
    diameter stays at least the witness's own. Returns the smaller
    witness (sorted), the diameter it achieves (never below the
    original's) and the evaluations used. The result is locally
    minimal: dropping any single remaining fault strictly lowers the
    diameter below the returned one. *)

(** {1 Sampled search at scale}

    {!search} compiles the route table, which materialises every
    route; a 10{^5}–10{^6}-node compact routing cannot afford that.
    The sampled variant scores a candidate fault set by probing a
    fixed set of sampled pairs with {!Surviving.probe_distance} (O(1)
    state per probe) and hill-climbs over single-node swaps. *)

type sampled_outcome = {
  s_worst : Metrics.distance;
      (** worst probed distance under the witness; [Infinite] means
          "> bound or probe budget exhausted" *)
  s_flagged : int;  (** sampled pairs pushed past [bound] by the witness *)
  s_witness : int list;  (** fault set found, sorted; greedily shrunk *)
  s_pair : (int * int) option;  (** a pair exhibiting [s_worst] *)
  s_probes : int;  (** pair probes scheduled ([pairs] per set scored) *)
  s_restarts_used : int;
}

val search_sampled :
  ?restarts:int ->
  ?steps:int ->
  ?jobs:int ->
  ?probe_budget:int ->
  rng:Random.State.t ->
  ?pools:int list list ->
  Routing.t ->
  f:int ->
  bound:int ->
  pairs:int ->
  sampled_outcome
(** Maximise (pairs flagged past [bound], capped probed-distance sum)
    over fault sets of size [min f (n - 2)]. [pairs] sampled ordered
    pairs are drawn from [rng] up front and fixed for the whole
    search; each of the [restarts] (default 4) restarts seeds from a
    pool prefix (its [f] lowest in-range members) or a uniform
    [f]-subset, then makes [steps] (default 60) single-node swap
    attempts, accepting improvements always and plateau moves half the
    time. Restart seeds are drawn before any evaluation and results
    merge in restart order, so the outcome is identical for every
    [jobs] value. Pairs with a faulty endpoint never count as flagged
    (tolerance quantifies over surviving pairs). [probe_budget]
    defaults to [2n + 1] as in {!Surviving.probe_distance}. *)

(** {1 Witness corpus}

    A discovered witness is a regression test waiting to happen: it
    costs one diameter evaluation to replay forever. Entries carry
    enough to rebuild their construction from the CLI vocabulary
    (graph spec, strategy name, build seed), so `ftr attack --replay`
    re-checks a whole corpus from scratch, and
    {!Tolerance.evaluate} replays matching fault sets before any
    fresh search. Files are JSON arrays, one file per attacked
    construction, under a corpus directory (conventionally
    [corpus/]). *)

module Corpus : sig
  type entry = {
    graph : string;  (** CLI graph spec, e.g. ["torus:5x5"] *)
    strategy : string;  (** CLI strategy name, e.g. ["kernel"] *)
    seed : int;  (** build seed the construction was made with *)
    n : int;  (** vertex count, as a staleness check *)
    f : int;  (** fault budget the search ran under *)
    faults : int list;  (** the witness's node faults, sorted *)
    edges : (int * int) list;
        (** the witness's link faults, normalised [(min, max)] pairs,
            sorted; [[]] for node-only witnesses and every legacy
            (version-less) entry *)
    diameter : Metrics.distance;  (** measured at discovery time *)
    bound : int option;
        (** the claim bound in force when [f] was within a claim's
            fault budget; [None] for beyond-budget exploration *)
    found_by : string;  (** provenance, e.g. ["attack(seed=48879)"] *)
  }

  val current_version : int
  (** The format version stamped on every written entry (currently
      2). Readers accept versions 1 (including legacy entries with no
      ["version"] field at all, which predate the stamp) through
      {!current_version}, and report anything else — like any other
      malformed entry — as a parse error, never an exception. *)

  val to_json : entry list -> string
  (** A JSON array, one entry object per line, each stamped with
      {!current_version}. *)

  val of_json : string -> (entry list, string) result

  val load_file : string -> (entry list, string) result

  val save_file : string -> entry list -> unit

  val load_dir : string -> (string * (entry list, string) result) list
  (** [(path, parse result)] for every [*.json] directly in the
      directory, sorted by path; [[]] when the directory is missing. *)

  val add : entry list -> entry -> entry list * bool
  (** Append unless an entry with the same graph, strategy and fault
      set is already present; returns whether it was added. *)

  val replayable : entry list -> n:int -> f:int -> int list list
  (** The stored node-only fault sets valid on an [n]-vertex instance
      under fault budget [f] (every vertex in range, size at most [f];
      entries with link faults are skipped — replay those with
      {!Tolerance.check_edge_sets} or the soak harness). *)
end
