(** Routings: partial functions from ordered vertex pairs to fixed
    simple paths (Section 2 of the paper).

    The model is "miserly": at most one route per ordered pair. A
    bidirectional routing uses the same path in both directions; adding
    a route to a bidirectional table inserts both orientations and any
    disagreement raises {!Conflict}. *)

open Ftr_graph

type kind = Unidirectional | Bidirectional

type t

exception Conflict of { src : int; dst : int; existing : Path.t; proposed : Path.t }

val create : Graph.t -> kind -> t
(** A fresh mutable hashtable-backed routing. *)

val of_compact : Graph.t -> kind -> Compact.t -> t
(** Wrap a compact scheme as a routing. The scheme must be sized for
    the graph ([Invalid_argument] otherwise); path validity against
    the graph is the scheme's contract and can be audited with
    {!validate} (small n) or sampled checking ([Tolerance.sampled]).
    Compact routings are immutable: {!add}, {!add_edge_routes} and
    {!complete_reverses} raise [Invalid_argument]. Pass the [kind]
    matching the scheme's symmetry (e.g. [Bidirectional] for
    [Compact.tree_of_parents] and [Compact.hypercube
    ~bidirectional:true]). *)

val compact_copy : t -> t
(** A compact re-encoding of the same route set (packed flat arrays;
    [find]/[iter]/[route_count] agree with the original bit for bit).
    Identity on already-compact routings. *)

val compact : t -> Compact.t option
(** The underlying compact scheme, if this routing has one. *)

val backend_name : t -> string
(** ["table"] or ["compact:<scheme>"] — for logs and artifacts. *)

val graph : t -> Graph.t

val kind : t -> kind

val add : t -> Path.t -> unit
(** Install a route for (source, target). Requirements checked here:
    the path is a simple path of the underlying graph with at least one
    edge. Re-adding the identical path is a no-op; a different path for
    an already-routed ordered pair raises {!Conflict}. For a
    bidirectional routing the reversed path is installed for the
    reverse pair under the same rules. *)

val add_edge_routes : t -> unit
(** The "direct edge route between any two neighboring nodes"
    component present in every construction of the paper. Compatible
    with tree-routing normalisation: raises {!Conflict} if some
    adjacent pair was previously routed over a longer path. *)

val complete_reverses : t -> unit
(** Component B-POL 5: for every ordered pair routed in one direction
    only, install the reversed path for the other direction. Only
    meaningful (and only allowed) on unidirectional routings. *)

val find : t -> int -> int -> Path.t option

val mem : t -> int -> int -> bool

val iter : (int -> int -> Path.t -> unit) -> t -> unit

val route_count : t -> int
(** Number of ordered pairs routed. *)

val max_route_length : t -> int
(** Longest route, in edges; [0] if the table is empty. *)

val total_route_edges : t -> int
(** Sum of route lengths (a size measure of the route table). *)

val stretch : t -> float
(** Maximum over routed pairs of [route length / graph distance] — how
    far the fixed routes deviate from shortest paths. [1.0] when every
    route is shortest; [0.0] for an empty table. Raises
    [Invalid_argument] if some routed destination is unreachable from
    its source (BFS sentinel [-1]) or equal to it: both mean the table
    is inconsistent with the graph, and are surfaced rather than
    silently dropped from the statistic. *)

val validate : t -> (unit, string) result
(** Re-checks every invariant of the table: simple paths of [g],
    endpoint consistency, bidirectional symmetry. Meant for tests. *)
