(** Routings: partial functions from ordered vertex pairs to fixed
    simple paths (Section 2 of the paper).

    The model is "miserly": at most one route per ordered pair. A
    bidirectional routing uses the same path in both directions; adding
    a route to a bidirectional table inserts both orientations and any
    disagreement raises {!Conflict}. *)

open Ftr_graph

type kind = Unidirectional | Bidirectional

type t

exception Conflict of { src : int; dst : int; existing : Path.t; proposed : Path.t }

val create : Graph.t -> kind -> t

val graph : t -> Graph.t

val kind : t -> kind

val add : t -> Path.t -> unit
(** Install a route for (source, target). Requirements checked here:
    the path is a simple path of the underlying graph with at least one
    edge. Re-adding the identical path is a no-op; a different path for
    an already-routed ordered pair raises {!Conflict}. For a
    bidirectional routing the reversed path is installed for the
    reverse pair under the same rules. *)

val add_edge_routes : t -> unit
(** The "direct edge route between any two neighboring nodes"
    component present in every construction of the paper. Compatible
    with tree-routing normalisation: raises {!Conflict} if some
    adjacent pair was previously routed over a longer path. *)

val complete_reverses : t -> unit
(** Component B-POL 5: for every ordered pair routed in one direction
    only, install the reversed path for the other direction. Only
    meaningful (and only allowed) on unidirectional routings. *)

val find : t -> int -> int -> Path.t option

val mem : t -> int -> int -> bool

val iter : (int -> int -> Path.t -> unit) -> t -> unit

val route_count : t -> int
(** Number of ordered pairs routed. *)

val max_route_length : t -> int
(** Longest route, in edges; [0] if the table is empty. *)

val total_route_edges : t -> int
(** Sum of route lengths (a size measure of the route table). *)

val stretch : t -> float
(** Maximum over routed pairs of [route length / graph distance] — how
    far the fixed routes deviate from shortest paths. [1.0] when every
    route is shortest; [0.0] for an empty table. *)

val validate : t -> (unit, string) result
(** Re-checks every invariant of the table: simple paths of [g],
    endpoint consistency, bidirectional symmetry. Meant for tests. *)
