type claim = { diameter_bound : int; max_faults : int; source : string }

type structure =
  | Separator of int list
  | Neighborhood of { members : int list; window : int }
  | Tri_rings of { members : int list; ring : int; within_window : int }
  | Two_poles of { r1 : int; r2 : int }
  | Unstructured

type t = {
  name : string;
  routing : Routing.t;
  concentrator : int list;
  structure : structure;
  pools : int list list;
  claims : claim list;
}

let claim ~bound ~faults source =
  { diameter_bound = bound; max_faults = faults; source }

let strongest_claim t =
  match t.claims with
  | [] -> invalid_arg "Construction.strongest_claim: no claims"
  | c :: rest ->
      List.fold_left
        (fun best c ->
          if
            c.diameter_bound < best.diameter_bound
            || (c.diameter_bound = best.diameter_bound && c.max_faults > best.max_faults)
          then c
          else best)
        c rest

let bound_for t ~f =
  List.fold_left
    (fun acc c ->
      if c.max_faults >= f then
        Some
          (match acc with
          | None -> c.diameter_bound
          | Some b -> min b c.diameter_bound)
      else acc)
    None t.claims

let pp ppf t =
  Fmt.pf ppf "@[<v>%s: %d routes, concentrator size %d, claims:@,%a@]" t.name
    (Routing.route_count t.routing)
    (List.length t.concentrator)
    Fmt.(
      list ~sep:cut (fun ppf c ->
          pf ppf "  (%d,%d)-tolerant [%s]" c.diameter_bound c.max_faults c.source))
    t.claims
