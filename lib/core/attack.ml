open Ftr_graph
module Obs = Ftr_obs.Obs

(* Every counter here is a function of the requested search (config,
   seeds, pools), never of the schedule: restarts own private RNGs and
   budget slices, so their per-restart tallies — and these sums — are
   identical for every [jobs] value. *)
let c_searches = Obs.counter "attack.searches"
let c_evals = Obs.counter "attack.evals"
let c_restarts = Obs.counter "attack.restarts"
let c_sa_escapes = Obs.counter "attack.sa_escapes"
let c_shrink_evals = Obs.counter "attack.shrink.evals"
let c_shrink_dropped = Obs.counter "attack.shrink.dropped"

type config = {
  budget : int;
  restarts : int;
  sa_steps : int;
  init_temp : float;
  cooling : float;
}

let default_config =
  { budget = 1500; restarts = 6; sa_steps = 60; init_temp = 2.0; cooling = 0.95 }

type outcome = {
  worst : Metrics.distance;
  witness : int list;
  raw_witness : int list;
  evals : int;
  restarts_used : int;
}

type mixed_outcome = {
  m_worst : Metrics.distance;
  m_nodes : int list;
  m_edges : (int * int) list;
  m_raw_nodes : int list;
  m_raw_edges : (int * int) list;
  m_evals : int;
  m_restarts_used : int;
}

let score ~n = function Metrics.Finite d -> d | Metrics.Infinite -> n

(* The search, shrinking and restart machinery is generic over the
   fault universe: an element is an abstract id, and [ops] says how to
   toggle it on an evaluator. Node search uses vertex ids; edge search
   uses edge ids; mixed search uses [0, n) for vertices and
   [n, n + m) for edges. All three share one code path, so the
   determinism and jobs-independence arguments hold verbatim. *)
type ops = {
  total : int; (* universe size *)
  apply : Surviving.evaluator -> int -> unit;
  revert : Surviving.evaluator -> int -> unit;
  is_set : Surviving.evaluator -> int -> bool;
  count : Surviving.evaluator -> int;
  current : Surviving.evaluator -> int list; (* sorted ids *)
  set_ids : Surviving.evaluator -> int list -> unit;
}

let node_ops ~n =
  {
    total = n;
    apply = Surviving.apply_fault;
    revert = Surviving.revert_fault;
    is_set = Surviving.is_faulty;
    count = Surviving.fault_count;
    current = Surviving.faults;
    set_ids = Surviving.set_faults;
  }

let edge_ops ~m =
  {
    total = m;
    apply = Surviving.apply_edge_fault;
    revert = Surviving.revert_edge_fault;
    is_set = Surviving.is_edge_faulty;
    count = Surviving.edge_fault_count;
    current = Surviving.edge_faults;
    set_ids = (fun ev ids -> Surviving.set_mixed_faults ev ~nodes:[] ~edges:ids);
  }

let mixed_ops ~n ~m =
  let split ids = List.partition (fun id -> id < n) ids in
  {
    total = n + m;
    apply = (fun ev id -> if id < n then Surviving.apply_fault ev id
                          else Surviving.apply_edge_fault ev (id - n));
    revert = (fun ev id -> if id < n then Surviving.revert_fault ev id
                           else Surviving.revert_edge_fault ev (id - n));
    is_set = (fun ev id -> if id < n then Surviving.is_faulty ev id
                           else Surviving.is_edge_faulty ev (id - n));
    count = (fun ev -> Surviving.fault_count ev + Surviving.edge_fault_count ev);
    current =
      (fun ev ->
        Surviving.faults ev @ List.map (fun e -> e + n) (Surviving.edge_faults ev));
    set_ids =
      (fun ev ids ->
        let nodes, eids = split ids in
        Surviving.set_mixed_faults ev ~nodes ~edges:(List.map (fun id -> id - n) eids));
  }

let shuffle rng a =
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done

(* Greedy delta-minimisation: drop faults (in increasing vertex order,
   restarting after every successful drop) while the surviving
   diameter stays at least the target. Dropping a fault can also
   *raise* the diameter — a revived vertex may sit far from everyone —
   so the target ratchets upward and the returned witness achieves the
   returned diameter exactly. *)
let shrink_ids compiled ~ops ~witness =
  let ev = Surviving.evaluator compiled in
  let evals = ref 0 in
  let eval faults_list =
    incr evals;
    ops.set_ids ev faults_list;
    Surviving.evaluator_diameter ev
  in
  let current = ref (List.sort_uniq compare witness) in
  let target = ref (eval !current) in
  let changed = ref true in
  while !changed do
    changed := false;
    let rec try_drop kept = function
      | [] -> ()
      | u :: rest ->
          let candidate = List.rev_append kept rest in
          let d = eval candidate in
          if Metrics.distance_le !target d then begin
            target := d;
            current := List.sort Int.compare candidate;
            changed := true
          end
          else try_drop (u :: kept) rest
    in
    try_drop [] !current
  done;
  (!current, !target, !evals)

let shrink compiled ~witness =
  let n = Surviving.compiled_n compiled in
  shrink_ids compiled ~ops:(node_ops ~n) ~witness

(* One independent restart: pool- or random-seeded hill climbing with
   SA plateau escapes under a private budget and RNG, re-seeding from
   fresh random sets when the escape finds no new ground. Restarts
   share nothing mutable, so the caller may run them on any domain;
   merging their results in restart order keeps the outcome identical
   for every [jobs] value. *)
type restart_result = {
  r_d : Metrics.distance;
  r_w : int list; (* raw witness achieving r_d; [] when nothing beat Finite(-1) *)
  r_evals : int;
  r_sa : int; (* annealing escapes taken *)
}

let run_restart ev ~ops ~config ~n ~f ~seed ~budget ~pool =
  Surviving.reset ev;
  let rng = Random.State.make [| seed; 0x5eed |] in
  let sc d = score ~n d in
  let evals = ref 0 in
  let budget_left () = !evals < budget in
  let eval () =
    incr evals;
    Surviving.evaluator_diameter ev
  in
  let members = Array.make f 0 in
  let cur_d = ref (Metrics.Finite (-1)) in
  let best_d = ref (Metrics.Finite (-1)) in
  let best_w = ref [] in
  let record_if_best d =
    if sc d > sc !best_d then begin
      best_d := d;
      best_w := List.sort Int.compare (Array.to_list members)
    end
  in
  let init_set pool =
    Surviving.reset ev;
    (match pool with
    | Some p ->
        (* A random f-subset of the pool; short pools are topped up
           with random elements below. *)
        let p = Array.of_list p in
        shuffle rng p;
        Array.iter
          (fun v -> if ops.count ev < f && not (ops.is_set ev v) then ops.apply ev v)
          p
    | None -> ());
    while ops.count ev < f do
      let v = Random.State.int rng ops.total in
      if not (ops.is_set ev v) then ops.apply ev v
    done;
    List.iteri (fun k v -> members.(k) <- v) (ops.current ev);
    cur_d := eval ();
    record_if_best !cur_d
  in
  (* Swap members.(oi) for v; [accept] sees the new diameter and
     decides; a rejected swap is reverted. The evaluator makes the
     swap incremental: only routes through the two elements move. *)
  let try_swap oi v ~accept =
    if ops.is_set ev v then false
    else begin
      let u = members.(oi) in
      ops.revert ev u;
      ops.apply ev v;
      members.(oi) <- v;
      let d = eval () in
      if accept d then begin
        cur_d := d;
        record_if_best d;
        true
      end
      else begin
        ops.revert ev v;
        ops.apply ev u;
        members.(oi) <- u;
        false
      end
    end
  in
  let exception Step in
  (* One greedy step: randomised first-improvement over the full
     single-element-swap neighborhood. *)
  let greedy_step () =
    let improved = ref false in
    let outs = Array.init f Fun.id and vs = Array.init ops.total Fun.id in
    shuffle rng outs;
    shuffle rng vs;
    (try
       Array.iter
         (fun oi ->
           Array.iter
             (fun v ->
               if not (budget_left ()) then raise Step;
               if try_swap oi v ~accept:(fun d -> sc d > sc !cur_d) then begin
                 improved := true;
                 raise Step
               end)
             vs)
         outs
     with Step -> ());
    !improved
  in
  (* Plateau escape: a short annealing walk accepting uphill moves
     always and downhill moves with cooling probability. *)
  let sa_escape () =
    let temp = ref config.init_temp in
    let steps = ref 0 in
    while budget_left () && !steps < config.sa_steps do
      incr steps;
      let oi = Random.State.int rng f in
      let v = Random.State.int rng ops.total in
      ignore
        (try_swap oi v ~accept:(fun d ->
             let delta = float_of_int (sc d - sc !cur_d) in
             delta >= 0.0 || Random.State.float rng 1.0 < exp (delta /. !temp)));
      temp := !temp *. config.cooling
    done
  in
  init_set pool;
  let live = ref true in
  let sa_taken = ref 0 in
  while budget_left () && !live do
    if not (greedy_step ()) then begin
      let before = sc !best_d in
      incr sa_taken;
      sa_escape ();
      (* The escape found no new ground: burn the remaining private
         budget on a fresh random start instead of giving up. *)
      if sc !best_d <= before then begin
        if budget_left () then init_set None else live := false
      end
    end
  done;
  { r_d = !best_d; r_w = !best_w; r_evals = !evals; r_sa = !sa_taken }

let search_core ~config ~jobs ~rng ~pools ~ops ~n compiled ~f =
  Obs.with_span "attack.search" @@ fun () ->
  Obs.incr c_searches;
  let f = max 0 (min f ops.total) in
  (* Fault-free baseline: the result is never below the fault-free
     diameter. *)
  let best_d = ref (Surviving.diameter_compiled compiled ~faults:(Bitset.create n)) in
  let best_w = ref [] in
  let evals = ref 1 in
  let restarts_used = ref 0 in
  if f > 0 && ops.total > 0 && config.budget > 0 && config.restarts > 0 then begin
    let sc d = score ~n d in
    let pool_seeds =
      Array.of_list
        (List.filter (fun p -> p <> []) (List.map (List.sort_uniq compare) pools))
    in
    (* Restart seeds are drawn from the caller's RNG up front and each
       restart owns an equal slice of the budget, so restarts are
       independent tasks: the outcome does not depend on [jobs]. *)
    let restarts = config.restarts in
    let seeds = Array.init restarts (fun _ -> Random.State.bits rng) in
    let budgets =
      let base = config.budget / restarts and extra = config.budget mod restarts in
      Array.init restarts (fun i -> base + if i < extra then 1 else 0)
    in
    let active =
      Array.of_list
        (List.filter (fun i -> budgets.(i) > 0) (List.init restarts Fun.id))
    in
    let results =
      Par.run ~jobs ~ntasks:(Array.length active)
        ~init:(fun () -> Surviving.evaluator compiled)
        ~task:(fun ev ti ->
          let i = active.(ti) in
          let pool =
            if i < Array.length pool_seeds then Some pool_seeds.(i) else None
          in
          run_restart ev ~ops ~config ~n ~f ~seed:seeds.(i) ~budget:budgets.(i) ~pool)
    in
    restarts_used := Array.length active;
    Array.iter
      (fun r ->
        evals := !evals + r.r_evals;
        Obs.add c_sa_escapes r.r_sa;
        if sc r.r_d > sc !best_d then begin
          best_d := r.r_d;
          best_w := r.r_w
        end)
      results
  end;
  let raw = !best_w in
  let witness, worst, shrink_evals =
    if raw = [] then ([], !best_d, 0) else shrink_ids compiled ~ops ~witness:raw
  in
  evals := !evals + shrink_evals;
  Obs.add c_evals !evals;
  Obs.add c_restarts !restarts_used;
  Obs.add c_shrink_evals shrink_evals;
  Obs.add c_shrink_dropped (max 0 (List.length raw - List.length witness));
  (worst, witness, raw, !evals, !restarts_used)

let search ?(config = default_config) ?(jobs = Par.recommended_jobs ()) ~rng
    ?(pools = []) routing ~f =
  let n = Graph.n (Routing.graph routing) in
  let compiled = Surviving.compile_cached routing in
  let worst, witness, raw_witness, evals, restarts_used =
    search_core ~config ~jobs ~rng ~pools ~ops:(node_ops ~n) ~n compiled ~f
  in
  { worst; witness; raw_witness; evals; restarts_used }

let search_mixed ?(config = default_config) ?(jobs = Par.recommended_jobs ()) ~rng
    ?(pools = []) ?(universe = `Mixed) routing ~f =
  let g = Routing.graph routing in
  let n = Graph.n g in
  let compiled = Surviving.compile_cached routing in
  let m = Surviving.edge_count compiled in
  (* A node pool's image in the edge universe: every edge incident to
     a pool member, so pool-seeded restarts also attack the links the
     proofs lean on. *)
  let incident_ids pool =
    List.sort_uniq compare
      (List.concat_map
         (fun v ->
           if v < 0 || v >= n then []
           else
             Array.to_list (Graph.neighbors g v)
             |> List.filter_map (fun u -> Surviving.edge_id compiled u v))
         pool)
  in
  let ops, pools =
    match universe with
    | `Edges -> (edge_ops ~m, List.map incident_ids pools)
    | `Mixed ->
        ( mixed_ops ~n ~m,
          pools @ List.map (fun p -> List.map (fun e -> e + n) (incident_ids p)) pools )
  in
  let worst, ids, raw_ids, evals, restarts_used =
    search_core ~config ~jobs ~rng ~pools ~ops ~n compiled ~f
  in
  let decode ids =
    match universe with
    | `Edges -> ([], List.map (Surviving.edge_pair compiled) ids)
    | `Mixed ->
        let nodes, eids = List.partition (fun id -> id < n) ids in
        (nodes, List.map (fun id -> Surviving.edge_pair compiled (id - n)) eids)
  in
  let m_nodes, m_edges = decode ids in
  let m_raw_nodes, m_raw_edges = decode raw_ids in
  {
    m_worst = worst;
    m_nodes;
    m_edges;
    m_raw_nodes;
    m_raw_edges;
    m_evals = evals;
    m_restarts_used = restarts_used;
  }

(* ------------------------------------------------------------------ *)
(* Sampled search at scale                                            *)
(* ------------------------------------------------------------------ *)

(* The compiled-evaluator search above materialises every route; a
   10^5-node compact routing cannot. This variant scores a fault set
   by probing a fixed sampled pair set with
   [Surviving.probe_distance] — O(1) state per probe — and
   hill-climbs over single-node swaps. *)

let c_sampled_probes = Obs.counter "attack.sampled.probes"

type sampled_outcome = {
  s_worst : Metrics.distance;
  s_flagged : int;
  s_witness : int list;
  s_pair : (int * int) option;
  s_probes : int;
  s_restarts_used : int;
}

let search_sampled ?(restarts = 4) ?(steps = 60)
    ?(jobs = Par.recommended_jobs ()) ?probe_budget ~rng ?(pools = []) routing
    ~f ~bound ~pairs =
  Obs.with_span "attack.search_sampled" @@ fun () ->
  let g = Routing.graph routing in
  let n = Graph.n g in
  let budget = match probe_budget with Some b -> b | None -> (2 * n) + 1 in
  let f = max 0 (min f (max 0 (n - 2))) in
  let npairs = max 0 pairs in
  (* Pairs are drawn from the caller's RNG before any restart seed, so
     the objective — and hence the outcome — is [jobs]-independent. *)
  let pair_arr =
    Array.init npairs (fun _ ->
        let src = Random.State.int rng n in
        let d = Random.State.int rng (n - 1) in
        (src, if d >= src then d + 1 else d))
  in
  (* Lexicographic objective packed into one int: pairs pushed past the
     bound dominate, the capped distance sum breaks ties. *)
  let cap = bound + 1 in
  let weight = (npairs * cap) + 1 in
  let eval_set faults =
    let flagged = ref 0 and sum = ref 0 in
    let worst = ref (Metrics.Finite 0) and wp = ref None in
    Array.iter
      (fun (src, dst) ->
        (* Tolerance quantifies over non-faulty pairs only: faulting a
           sampled endpoint must not count as disconnecting it. *)
        if not (Bitset.mem faults src || Bitset.mem faults dst) then begin
          let d =
            Surviving.probe_distance routing ~faults ~src ~dst ~bound ~budget
          in
          (match d with
          | Metrics.Infinite ->
              incr flagged;
              sum := !sum + cap
          | Metrics.Finite k -> sum := !sum + k);
          if not (Metrics.distance_le d !worst) then begin
            worst := d;
            wp := Some (src, dst)
          end
        end)
      pair_arr;
    ((!flagged * weight) + !sum, !flagged, !worst, !wp)
  in
  let floyd_subset rst k =
    let chosen = Hashtbl.create (2 * max 1 k) in
    for j = n - k to n - 1 do
      let r = Random.State.int rst (j + 1) in
      let pick = if Hashtbl.mem chosen r then j else r in
      Hashtbl.replace chosen pick ()
    done;
    Hashtbl.fold (fun v () acc -> v :: acc) chosen []
  in
  let pool_seeds =
    Array.of_list
      (List.filter_map
         (fun p ->
           match
             List.filteri
               (fun i _ -> i < f)
               (List.sort_uniq Int.compare
                  (List.filter (fun v -> v >= 0 && v < n) p))
           with
           | [] -> None
           | prefix -> Some prefix)
         pools)
  in
  if f = 0 || npairs = 0 || restarts <= 0 then begin
    let _, flagged, worst, wp = eval_set (Bitset.create n) in
    Obs.add c_sampled_probes npairs;
    {
      s_worst = worst;
      s_flagged = flagged;
      s_witness = [];
      s_pair = wp;
      s_probes = npairs;
      s_restarts_used = 0;
    }
  end
  else begin
    (* Restart seeds drawn up front; each restart owns its RNG, fault
       set and scratch, so restarts are independent [Par] tasks. *)
    let seeds = Array.init restarts (fun _ -> Random.State.bits rng) in
    let run ti =
      let rst = Random.State.make [| seeds.(ti); ti |] in
      let faults = Bitset.create n in
      let members = Array.make f 0 in
      let init =
        if ti < Array.length pool_seeds then pool_seeds.(ti)
        else List.sort Int.compare (floyd_subset rst f)
      in
      let k = ref 0 in
      List.iter
        (fun v ->
          if not (Bitset.mem faults v) then begin
            Bitset.add faults v;
            members.(!k) <- v;
            incr k
          end)
        init;
      (* Pad a short pool prefix up to exactly f faults. *)
      while !k < f do
        let v = Random.State.int rst n in
        if not (Bitset.mem faults v) then begin
          Bitset.add faults v;
          members.(!k) <- v;
          incr k
        end
      done;
      let probes = ref npairs in
      let cur_sc, flagged0, worst0, wp0 = eval_set faults in
      let cur_sc = ref cur_sc in
      let best_sc = ref !cur_sc in
      let best = ref (List.sort Int.compare (Array.to_list members)) in
      let best_fl = ref flagged0 and best_w = ref worst0 and best_p = ref wp0 in
      for _ = 1 to steps do
        let oi = Random.State.int rst f in
        let v = Random.State.int rst n in
        if not (Bitset.mem faults v) then begin
          let out = members.(oi) in
          Bitset.remove faults out;
          Bitset.add faults v;
          members.(oi) <- v;
          probes := !probes + npairs;
          let sc, fl, w, p = eval_set faults in
          (* Accept strict improvements always, plateau moves half the
             time — enough drift to leave flat regions. *)
          if sc > !cur_sc || (sc = !cur_sc && Random.State.bool rst) then begin
            cur_sc := sc;
            if sc > !best_sc then begin
              best_sc := sc;
              best := List.sort Int.compare (Array.to_list members);
              best_fl := fl;
              best_w := w;
              best_p := p
            end
          end
          else begin
            Bitset.remove faults v;
            Bitset.add faults out;
            members.(oi) <- out
          end
        end
      done;
      (!best_sc, !best, !best_fl, !best_w, !best_p, !probes)
    in
    let results =
      Par.run ~jobs ~ntasks:restarts ~init:(fun () -> ()) ~task:(fun () ti -> run ti)
    in
    (* Merge in restart order: ties keep the earlier restart. *)
    let best_sc = ref min_int in
    let best = ref [] and best_fl = ref 0 in
    let best_w = ref (Metrics.Finite 0) and best_p = ref None in
    let probes = ref 0 in
    Array.iter
      (fun (sc, w, fl, d, p, pr) ->
        probes := !probes + pr;
        if sc > !best_sc then begin
          best_sc := sc;
          best := w;
          best_fl := fl;
          best_w := d;
          best_p := p
        end)
      results;
    (* Greedy shrink: drop members (ascending) whose removal keeps the
       score; deterministic, so the witness stays [jobs]-independent. *)
    let faults = Bitset.of_list n !best in
    let kept =
      List.filter
        (fun v ->
          Bitset.remove faults v;
          probes := !probes + npairs;
          let sc, fl, w, p = eval_set faults in
          if sc >= !best_sc then begin
            best_fl := fl;
            best_w := w;
            best_p := p;
            false
          end
          else begin
            Bitset.add faults v;
            true
          end)
        !best
    in
    Obs.add c_sampled_probes !probes;
    {
      s_worst = !best_w;
      s_flagged = !best_fl;
      s_witness = kept;
      s_pair = !best_p;
      s_probes = !probes;
      s_restarts_used = restarts;
    }
  end

(* ------------------------------------------------------------------ *)
(* Witness corpus                                                     *)
(* ------------------------------------------------------------------ *)

module Corpus = struct
  type entry = {
    graph : string;
    strategy : string;
    seed : int;
    n : int;
    f : int;
    faults : int list;
    edges : (int * int) list;
    diameter : Metrics.distance;
    bound : int option;
    found_by : string;
  }

  (* Normalised (min, max) link endpoints, ordered lexicographically. *)
  let edge_compare (u1, v1) (u2, v2) =
    let c = Int.compare u1 u2 in
    if c <> 0 then c else Int.compare v1 v2

  (* Version 1 entries are node-only and carry no "version" field (the
     format predates it); version 2 adds "version" and "edge_faults".
     Writers always stamp the current version; readers accept both and
     reject anything else loudly. *)
  let current_version = 2

  (* The corpus speaks a small JSON subset: null, integers, strings,
     arrays, objects. Hand-rolled like Routing_io so persistence stays
     dependency-free. *)
  type json =
    | Null
    | Int of int
    | Str of string
    | Arr of json list
    | Obj of (string * json) list

  let write_string b s =
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\t' -> Buffer.add_string b "\\t"
        | '\r' -> Buffer.add_string b "\\r"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.add_char b '"'

  let rec write b = function
    | Null -> Buffer.add_string b "null"
    | Int i -> Buffer.add_string b (string_of_int i)
    | Str s -> write_string b s
    | Arr l ->
        Buffer.add_char b '[';
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_string b ", ";
            write b v)
          l;
        Buffer.add_char b ']'
    | Obj l ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_string b ", ";
            write_string b k;
            Buffer.add_string b ": ";
            write b v)
          l;
        Buffer.add_char b '}'

  exception Parse of string

  let parse_json text =
    let len = String.length text in
    let pos = ref 0 in
    let fail msg = raise (Parse (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < len then Some text.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          advance ();
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected '%c'" c)
    in
    let parse_literal word value =
      if !pos + String.length word <= len && String.sub text !pos (String.length word) = word
      then begin
        pos := !pos + String.length word;
        value
      end
      else fail (Printf.sprintf "expected %s" word)
    in
    let parse_int () =
      let start = !pos in
      if peek () = Some '-' then advance ();
      let rec digits () =
        match peek () with
        | Some ('0' .. '9') ->
            advance ();
            digits ()
        | _ -> ()
      in
      digits ();
      if !pos = start then fail "expected integer";
      match int_of_string_opt (String.sub text start (!pos - start)) with
      | Some i -> Int i
      | None -> fail "bad integer"
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' -> (
            advance ();
            match peek () with
            | Some '"' ->
                Buffer.add_char b '"';
                advance ();
                go ()
            | Some '\\' ->
                Buffer.add_char b '\\';
                advance ();
                go ()
            | Some '/' ->
                Buffer.add_char b '/';
                advance ();
                go ()
            | Some 'n' ->
                Buffer.add_char b '\n';
                advance ();
                go ()
            | Some 't' ->
                Buffer.add_char b '\t';
                advance ();
                go ()
            | Some 'r' ->
                Buffer.add_char b '\r';
                advance ();
                go ()
            | _ -> fail "unsupported escape")
        | Some c ->
            Buffer.add_char b c;
            advance ();
            go ()
      in
      go ();
      Buffer.contents b
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then begin
            advance ();
            Obj []
          end
          else begin
            let rec fields acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  fields ((k, v) :: acc)
              | Some '}' ->
                  advance ();
                  List.rev ((k, v) :: acc)
              | _ -> fail "expected ',' or '}'"
            in
            Obj (fields [])
          end
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then begin
            advance ();
            Arr []
          end
          else begin
            let rec items acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  items (v :: acc)
              | Some ']' ->
                  advance ();
                  List.rev (v :: acc)
              | _ -> fail "expected ',' or ']'"
            in
            Arr (items [])
          end
      | Some '"' -> Str (parse_string ())
      | Some 'n' -> parse_literal "null" Null
      | Some _ -> parse_int ()
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> len then fail "trailing input";
    v

  let entry_to_json e =
    Obj
      [
        ("version", Int current_version);
        ("graph", Str e.graph);
        ("strategy", Str e.strategy);
        ("seed", Int e.seed);
        ("n", Int e.n);
        ("f", Int e.f);
        ("faults", Arr (List.map (fun v -> Int v) e.faults));
        ("edge_faults", Arr (List.map (fun (u, v) -> Arr [ Int u; Int v ]) e.edges));
        ( "diameter",
          match e.diameter with Metrics.Finite d -> Int d | Metrics.Infinite -> Str "inf" );
        ("bound", match e.bound with Some b -> Int b | None -> Null);
        ("found_by", Str e.found_by);
      ]

  let to_json entries =
    let b = Buffer.create 256 in
    Buffer.add_string b "[";
    List.iteri
      (fun i e ->
        Buffer.add_string b (if i > 0 then ",\n  " else "\n  ");
        write b (entry_to_json e))
      entries;
    Buffer.add_string b "\n]\n";
    Buffer.contents b

  let field obj name =
    match List.assoc_opt name obj with
    | Some v -> v
    | None -> raise (Parse (Printf.sprintf "missing field %S" name))

  let as_int = function
    | Int i -> i
    | _ -> raise (Parse "expected an integer")

  let as_str = function
    | Str s -> s
    | _ -> raise (Parse "expected a string")

  let entry_of_json = function
    | Obj obj ->
        let version =
          match List.assoc_opt "version" obj with
          | None -> 1 (* legacy unstamped entry: node faults only *)
          | Some (Int v) -> v
          | Some _ -> raise (Parse "version must be an integer")
        in
        if version < 1 || version > current_version then
          raise
            (Parse
               (Printf.sprintf
                  "unsupported corpus version %d (this build reads versions 1-%d)"
                  version current_version));
        {
          graph = as_str (field obj "graph");
          strategy = as_str (field obj "strategy");
          seed = as_int (field obj "seed");
          n = as_int (field obj "n");
          f = as_int (field obj "f");
          faults =
            (match field obj "faults" with
            | Arr l -> List.sort Int.compare (List.map as_int l)
            | _ -> raise (Parse "faults must be an array"));
          edges =
            (if version < 2 then []
             else
               match List.assoc_opt "edge_faults" obj with
               | None -> []
               | Some (Arr l) ->
                   List.sort edge_compare
                     (List.map
                        (function
                          | Arr [ Int u; Int v ] -> (min u v, max u v)
                          | _ -> raise (Parse "edge_faults entries must be [u, v] pairs"))
                        l)
               | Some _ -> raise (Parse "edge_faults must be an array"));
          diameter =
            (match field obj "diameter" with
            | Int d -> Metrics.Finite d
            | Str "inf" -> Metrics.Infinite
            | _ -> raise (Parse "diameter must be an integer or \"inf\""));
          bound =
            (match field obj "bound" with
            | Null -> None
            | Int b -> Some b
            | _ -> raise (Parse "bound must be an integer or null"));
          found_by = as_str (field obj "found_by");
        }
    | _ -> raise (Parse "entry must be an object")

  let of_json text =
    try
      match parse_json text with
      | Arr l -> Ok (List.map entry_of_json l)
      | _ -> Error "corpus file must be a JSON array"
    with Parse msg -> Error msg

  let load_file path =
    match In_channel.with_open_text path In_channel.input_all with
    | text -> of_json text
    | exception Sys_error msg -> Error msg

  let save_file path entries =
    let oc = open_out path in
    output_string oc (to_json entries);
    close_out oc

  let load_dir dir =
    if not (Sys.file_exists dir && Sys.is_directory dir) then []
    else
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".json")
      |> List.sort String.compare
      |> List.map (fun f ->
             let path = Filename.concat dir f in
             (path, load_file path))

  let same_witness a b =
    a.graph = b.graph && a.strategy = b.strategy && a.faults = b.faults
    && a.edges = b.edges

  let add entries e =
    let e =
      {
        e with
        faults = List.sort Int.compare e.faults;
        edges = List.sort edge_compare (List.map (fun (u, v) -> (min u v, max u v)) e.edges);
      }
    in
    if List.exists (same_witness e) entries then (entries, false)
    else (entries @ [ e ], true)

  let replayable entries ~n ~f =
    List.filter_map
      (fun e ->
        if
          e.n = n && e.edges = []
          && List.length e.faults <= f
          && List.for_all (fun v -> v >= 0 && v < n) e.faults
        then Some e.faults
        else None)
      entries
end
