(** A built routing together with the paper's quantitative claims about
    it and the metadata fault-injection needs to attack it. *)

type claim = {
  diameter_bound : int;  (** claimed bound [d] *)
  max_faults : int;  (** tolerated fault count [f] *)
  source : string;  (** e.g. "Theorem 13" *)
}
(** The routing is claimed to be [(d, f)]-tolerant. *)

(** Which concentrator shape the construction is built around; this is
    what {!module:Properties} needs to check the lemma-level
    properties. *)
type structure =
  | Separator of int list  (** kernel: a minimal separating set *)
  | Neighborhood of { members : int list; window : int }
      (** circular: a neighborhood set and the CIRC 2 window size *)
  | Tri_rings of { members : int list; ring : int; within_window : int }
      (** tri-circular: three rings of [ring] members each *)
  | Two_poles of { r1 : int; r2 : int }
      (** bipolar: the two-trees roots ([M1/M2] are their neighbor
          sets) *)
  | Unstructured  (** baselines with no concentrator *)

type t = {
  name : string;
  routing : Routing.t;
  concentrator : int list;  (** the set [M] of the construction *)
  structure : structure;
  pools : int list list;
      (** vertex pools the proofs identify as critical; adversarial
          fault generation draws subsets from each *)
  claims : claim list;
}

val claim : bound:int -> faults:int -> string -> claim

val bound_for : t -> f:int -> int option
(** The tightest diameter bound any claim promises while tolerating at
    least [f] faults; [None] when [f] exceeds every claim's fault
    budget (beyond-budget exploration). This is the "proven (d, f)
    budget" the attack CLI, the soak harness and the serve layer all
    gate on. *)

val strongest_claim : t -> claim
(** The claim with the smallest diameter bound (ties broken by larger
    fault count). Raises [Invalid_argument] on an empty claim list. *)

val pp : Format.formatter -> t -> unit
