(** Lemma-level property checking.

    Each construction's tolerance theorem rests on structural
    properties of the surviving graph (Properties CIRC 1-2, CIRC,
    T-CIRC, B-POL 1-4, 2B-POL 1-3 in the paper). Checking those
    directly — rather than only the diameter they imply — pins the
    implementation to the proofs: a construction bug can keep the
    diameter small by luck while violating the property the proof
    needs. *)

open Ftr_graph

type report = {
  property : string;  (** the paper's name for it, e.g. "CIRC 1" *)
  holds : bool;
  counterexample : string option;
}

val check : Construction.t -> faults:Bitset.t -> report list
(** Dispatches on the construction's {!Construction.structure}:

    - [Separator m] — Lemma 1's consequence: every non-faulty node
      outside [M] keeps a surviving-graph edge to and from some
      non-faulty member of [M].
    - [Neighborhood _] — Properties CIRC 1 and CIRC 2 when the set has
      at least [2t+1] members (Lemma 7); Property CIRC (a common
      member within distance 3 of both endpoints) otherwise (Lemma 9).
      [t] is inferred from the strongest claim's fault budget.
    - [Tri_rings _] — Property T-CIRC (common member within distance 2)
      for the full variant; the (2,3)-radius variant backing Remark 14
      otherwise.
    - [Two_poles _] — B-POL 1-4 for a unidirectional routing,
      2B-POL 1-3 for a bidirectional one.
    - [Unstructured] — no properties; the empty list.

    All properties are checked under the given fault set; they are
    only guaranteed by the paper for [|faults| <= t]. *)

val all_hold : report list -> bool

val pp_report : Format.formatter -> report -> unit
