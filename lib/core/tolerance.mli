(** Empirical (d, f)-tolerance checking by fault injection.

    A claim "the routing is (d, f)-tolerant" quantifies over all fault
    sets of size at most f. For small instances we enumerate them all
    (a definitive verdict); otherwise we combine adversarial fault
    families — subsets of the vertex pools the proofs identify as
    critical (the concentrator, single neighborhoods, minimum cuts) —
    with seeded uniform sampling.

    Every checker here runs on the incremental
    {!Surviving.evaluator}: exhaustive enumeration sweeps each block
    of fault sets in revolving-door (Gray) order, paying one fault
    swap per set, and blocks are distributed over a {!Par} worker
    pool. Merging follows the enumeration order with
    earlier-witness-wins ties, so for every [?jobs] value (default
    [Domain.recommended_domain_count ()]) the verdict — worst,
    witness, [sets_checked] — is bit-identical to the sequential
    run. *)

open Ftr_graph

type verdict = {
  worst : Metrics.distance;  (** largest surviving diameter seen *)
  witness : int list;  (** a fault set achieving [worst] *)
  sets_checked : int;
  definitive : bool;  (** true when enumeration was exhaustive *)
}

type engine = Scalar | Sliced
(** How candidate sets are swept. [Sliced] (the default) batches up to
    {!Surviving.lane_capacity} sets into the lanes of one word-packed
    BFS ({!Surviving.sliced}); it degrades to [Scalar] automatically
    when the instance is too large for single-word rows or the
    enumeration is too large to materialise. [Scalar] forces the
    per-set incremental evaluator. Verdicts are bit-identical either
    way; [Scalar] remains as the property tests' cross-check. *)

val subsets_up_to : int list -> int -> int list Seq.t
(** All subsets of the list with size [<= k] (including the empty
    set), lazily. *)

val count_subsets_up_to : n:int -> k:int -> int
(** [sum_{i<=k} C(n, i)], saturating at [max_int]. *)

val iter_combinations_gray :
  n:int ->
  k:int ->
  first:(int array -> unit) ->
  swap:(removed:int -> added:int -> unit) ->
  unit
(** Revolving-door enumeration (Knuth, TAOCP 7.2.1.3, Algorithm R) of
    the k-subsets of [0, n): [first] receives the initial subset, then
    every transition to the next subset swaps exactly one element out
    and one in. Exposed for the engine's tests. *)

val check_sets : ?jobs:int -> ?engine:engine -> Routing.t -> int list Seq.t -> verdict
(** Evaluate the surviving diameter on each fault set of the sequence
    (marked non-definitive). The witness is the first set, in sequence
    order, achieving the worst diameter, regardless of [jobs]. *)

val exhaustive : ?jobs:int -> ?engine:engine -> Routing.t -> f:int -> verdict
(** All fault sets of size [<= f]; definitive. Enumerates by size,
    then by maximum element; the sliced engine sweeps the enumeration
    [lane_capacity] sets at a time, the scalar engine sweeps each
    block in Gray order on an incremental evaluator. *)

type certificate = {
  holds : bool;  (** no checked set exceeded the bound *)
  counterexample : int list option;
      (** the first violating set in enumeration order, if any *)
  cert_sets_checked : int;
}

val certify : ?jobs:int -> Routing.t -> f:int -> bound:int -> certificate
(** Exhaustively certify "(bound, f)-tolerant" without computing exact
    diameters: each BFS stops as soon as the bound is provably
    exceeded ({!Surviving.diameter_exceeds}), and a violating block
    stops at its first counterexample. *)

val random :
  ?jobs:int ->
  ?engine:engine ->
  Routing.t ->
  f:int ->
  rng:Random.State.t ->
  samples:int ->
  verdict
(** Uniform fault sets of size exactly [f] (plus the empty set). All
    samples are drawn from [rng] before evaluation, so the verdict is
    [jobs]-independent. *)

val adversarial :
  ?per_pool_cap:int ->
  ?jobs:int ->
  ?engine:engine ->
  Routing.t ->
  f:int ->
  pools:int list list ->
  verdict
(** Subsets of size [<= f] of each pool, at most [per_pool_cap]
    (default 2000) sets per pool, deduplicated across pools (the cap
    applies before deduplication, so a set is only skipped when an
    earlier pool already produced it). *)

(** {1 Sampled probing at scale}

    The checkers above compile the route table — every route,
    materialised. A 10{^5}–10{^6}-node compact routing cannot afford
    that, so [sampled] works straight off [Routing.find]:
    {!Surviving.probe_distance} answers bounded route-graph distance
    queries with O(1) state, and the checker sweeps a sampled pair set
    against random and adversarial fault sets. The verdict is
    one-sided: [sv_holds = false] is a genuine (probed) violation
    witness, while [sv_holds = true] only says no sampled pair under
    any candidate set was seen to exceed the bound. *)

type sampled_verdict = {
  sv_holds : bool;
      (** every probed pair stayed within [bound] under every set *)
  sv_worst : Metrics.distance;
      (** worst probed distance ([Infinite] = "> bound or probe budget
          exhausted" — conservative, see
          {!Surviving.probe_distance}) *)
  sv_witness_faults : int list;  (** a fault set achieving [sv_worst] *)
  sv_witness_pair : (int * int) option;  (** the pair that exhibited it *)
  sv_sets_checked : int;
  sv_pairs_checked : int;  (** probes actually performed (faulty-endpoint
                               pairs are skipped for that set) *)
}

val sampled :
  ?jobs:int ->
  ?pools:int list list ->
  ?probe_budget:int ->
  Routing.t ->
  f:int ->
  bound:int ->
  rng:Random.State.t ->
  sets:int ->
  pairs:int ->
  sampled_verdict
(** Probe [pairs] uniform ordered pairs against: the fault-free set,
    one adversarial set per sampled endpoint (its [f] lowest-index
    neighbors — the cut adversary), the [f] lowest members of each
    caller pool, and [sets] uniform [f]-subsets. All randomness is
    drawn from [rng] before evaluation and chunks merge in canonical
    order, so the verdict is identical for every [jobs] value.
    [probe_budget] (default [2n + 1], which makes each probe exact for
    [bound <= 2]) caps route lookups per probe. *)

(** {1 Edge-fault checking}

    The same machinery over the graph's edge universe: first-class
    link faults kill exactly the routes traversing the downed edge,
    while both endpoints stay alive. Enumeration order, Gray sweeps,
    and the ordered merge are shared with the node checkers, so these
    verdicts are also bit-identical for every [?jobs] value. Edge sets
    surface as normalised [(min, max)] endpoint pairs. *)

type edge_verdict = {
  e_worst : Metrics.distance;
  e_witness : (int * int) list;
  e_sets_checked : int;
  e_definitive : bool;
}

val check_edge_sets :
  ?jobs:int -> ?engine:engine -> Routing.t -> (int * int) list Seq.t -> edge_verdict
(** Evaluate the surviving diameter on each edge-fault set of the
    sequence. Raises [Invalid_argument] if a listed pair is not an
    edge of the routing's graph. *)

val exhaustive_edges : ?jobs:int -> ?engine:engine -> Routing.t -> f:int -> edge_verdict
(** All edge-fault sets of size [<= f]; definitive. *)

type edge_certificate = {
  e_holds : bool;
  e_counterexample : (int * int) list option;
  e_cert_sets_checked : int;
}

val certify_edges : ?jobs:int -> Routing.t -> f:int -> bound:int -> edge_certificate
(** Exhaustively certify "(bound, f)-tolerant against link faults"
    with the same early-exit BFS as {!certify}. *)

val random_edges :
  ?jobs:int ->
  ?engine:engine ->
  Routing.t ->
  f:int ->
  rng:Random.State.t ->
  samples:int ->
  edge_verdict
(** Uniform edge-fault sets of size exactly [f] (plus the empty set);
    draws happen before evaluation, so the verdict is
    [jobs]-independent. *)

type reduction_report = {
  red_sets : int;  (** edge-fault sets compared *)
  red_violations : int;
      (** sets where the true edge-fault diameter exceeded the
          projection's *)
  red_first_violation : (int * int) list option;
      (** first violating set in enumeration order *)
  red_worst_edge : Metrics.distance;
      (** worst surviving diameter under true edge faults *)
  red_worst_proj : Metrics.distance;
      (** worst surviving diameter under the endpoint projection *)
}

val reduction : ?jobs:int -> Routing.t -> f:int -> reduction_report
(** Exercise the paper's edge-fault reduction ("assume one endpoint of
    the faulty edge is a faulty node"): for every edge-fault set of
    size [<= f], compare the surviving diameter under the true edge
    faults against the diameter under the endpoint projection (each
    downed link replaced by its smaller endpoint, as a node fault).
    The paper's argument predicts zero violations — the projection can
    only remove more routes. Jobs-independent. *)

val evaluate :
  ?exhaustive_budget:int ->
  ?samples:int ->
  ?attack_budget:int ->
  ?corpus:Attack.Corpus.entry list ->
  ?jobs:int ->
  ?engine:engine ->
  rng:Random.State.t ->
  Construction.t ->
  f:int ->
  verdict
(** Exhaustive when [count_subsets_up_to n f] fits the budget (default
    20000). Otherwise four non-definitive sources merge, in order:
    stored [corpus] witnesses valid on this instance replay first
    (default none), then adversarial pools, [samples] (default 300)
    random sets, and an {!Attack.search} run under [attack_budget]
    evaluations (default {!Attack.default_config}'s budget; [0]
    disables the search). [jobs] is passed through to every source. *)

val respects : verdict -> bound:int -> bool
(** Did every checked fault set keep the diameter within the bound? *)
