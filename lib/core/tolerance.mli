(** Empirical (d, f)-tolerance checking by fault injection.

    A claim "the routing is (d, f)-tolerant" quantifies over all fault
    sets of size at most f. For small instances we enumerate them all
    (a definitive verdict); otherwise we combine adversarial fault
    families — subsets of the vertex pools the proofs identify as
    critical (the concentrator, single neighborhoods, minimum cuts) —
    with seeded uniform sampling. *)

open Ftr_graph

type verdict = {
  worst : Metrics.distance;  (** largest surviving diameter seen *)
  witness : int list;  (** a fault set achieving [worst] *)
  sets_checked : int;
  definitive : bool;  (** true when enumeration was exhaustive *)
}

val subsets_up_to : int list -> int -> int list Seq.t
(** All subsets of the list with size [<= k] (including the empty
    set), lazily. *)

val count_subsets_up_to : n:int -> k:int -> int
(** [sum_{i<=k} C(n, i)], saturating at [max_int]. *)

val check_sets : Routing.t -> int list Seq.t -> verdict
(** Evaluate the surviving diameter on each fault set of the sequence
    (marked non-definitive). *)

val exhaustive : Routing.t -> f:int -> verdict
(** All fault sets of size [<= f]; definitive. *)

val random : Routing.t -> f:int -> rng:Random.State.t -> samples:int -> verdict
(** Uniform fault sets of size exactly [f] (plus the empty set). *)

val adversarial : ?per_pool_cap:int -> Routing.t -> f:int -> pools:int list list -> verdict
(** Subsets of size [<= f] of each pool, at most [per_pool_cap]
    (default 2000) sets per pool, deduplicated across pools (the cap
    applies before deduplication, so a set is only skipped when an
    earlier pool already produced it). *)

val evaluate :
  ?exhaustive_budget:int ->
  ?samples:int ->
  ?attack_budget:int ->
  ?corpus:Attack.Corpus.entry list ->
  rng:Random.State.t ->
  Construction.t ->
  f:int ->
  verdict
(** Exhaustive when [count_subsets_up_to n f] fits the budget (default
    20000). Otherwise four non-definitive sources merge, in order:
    stored [corpus] witnesses valid on this instance replay first
    (default none), then adversarial pools, [samples] (default 300)
    random sets, and an {!Attack.search} run under [attack_budget]
    evaluations (default {!Attack.default_config}'s budget; [0]
    disables the search). *)

val respects : verdict -> bound:int -> bool
(** Did every checked fault set keep the diameter within the bound? *)
