(** Empirical (d, f)-tolerance checking by fault injection.

    A claim "the routing is (d, f)-tolerant" quantifies over all fault
    sets of size at most f. For small instances we enumerate them all
    (a definitive verdict); otherwise we combine adversarial fault
    families — subsets of the vertex pools the proofs identify as
    critical (the concentrator, single neighborhoods, minimum cuts) —
    with seeded uniform sampling.

    Every checker here runs on the incremental
    {!Surviving.evaluator}: exhaustive enumeration sweeps each block
    of fault sets in revolving-door (Gray) order, paying one fault
    swap per set, and blocks are distributed over a {!Par} worker
    pool. Merging follows the enumeration order with
    earlier-witness-wins ties, so for every [?jobs] value (default
    [Domain.recommended_domain_count ()]) the verdict — worst,
    witness, [sets_checked] — is bit-identical to the sequential
    run. *)

open Ftr_graph

type verdict = {
  worst : Metrics.distance;  (** largest surviving diameter seen *)
  witness : int list;  (** a fault set achieving [worst] *)
  sets_checked : int;
  definitive : bool;  (** true when enumeration was exhaustive *)
}

val subsets_up_to : int list -> int -> int list Seq.t
(** All subsets of the list with size [<= k] (including the empty
    set), lazily. *)

val count_subsets_up_to : n:int -> k:int -> int
(** [sum_{i<=k} C(n, i)], saturating at [max_int]. *)

val iter_combinations_gray :
  n:int ->
  k:int ->
  first:(int array -> unit) ->
  swap:(removed:int -> added:int -> unit) ->
  unit
(** Revolving-door enumeration (Knuth, TAOCP 7.2.1.3, Algorithm R) of
    the k-subsets of [0, n): [first] receives the initial subset, then
    every transition to the next subset swaps exactly one element out
    and one in. Exposed for the engine's tests. *)

val check_sets : ?jobs:int -> Routing.t -> int list Seq.t -> verdict
(** Evaluate the surviving diameter on each fault set of the sequence
    (marked non-definitive). The witness is the first set, in sequence
    order, achieving the worst diameter, regardless of [jobs]. *)

val exhaustive : ?jobs:int -> Routing.t -> f:int -> verdict
(** All fault sets of size [<= f]; definitive. Enumerates by size,
    then by maximum element, sweeping each block in Gray order on an
    incremental evaluator. *)

type certificate = {
  holds : bool;  (** no checked set exceeded the bound *)
  counterexample : int list option;
      (** the first violating set in enumeration order, if any *)
  cert_sets_checked : int;
}

val certify : ?jobs:int -> Routing.t -> f:int -> bound:int -> certificate
(** Exhaustively certify "(bound, f)-tolerant" without computing exact
    diameters: each BFS stops as soon as the bound is provably
    exceeded ({!Surviving.diameter_exceeds}), and a violating block
    stops at its first counterexample. *)

val random :
  ?jobs:int -> Routing.t -> f:int -> rng:Random.State.t -> samples:int -> verdict
(** Uniform fault sets of size exactly [f] (plus the empty set). All
    samples are drawn from [rng] before evaluation, so the verdict is
    [jobs]-independent. *)

val adversarial :
  ?per_pool_cap:int -> ?jobs:int -> Routing.t -> f:int -> pools:int list list -> verdict
(** Subsets of size [<= f] of each pool, at most [per_pool_cap]
    (default 2000) sets per pool, deduplicated across pools (the cap
    applies before deduplication, so a set is only skipped when an
    earlier pool already produced it). *)

val evaluate :
  ?exhaustive_budget:int ->
  ?samples:int ->
  ?attack_budget:int ->
  ?corpus:Attack.Corpus.entry list ->
  ?jobs:int ->
  rng:Random.State.t ->
  Construction.t ->
  f:int ->
  verdict
(** Exhaustive when [count_subsets_up_to n f] fits the budget (default
    20000). Otherwise four non-definitive sources merge, in order:
    stored [corpus] witnesses valid on this instance replay first
    (default none), then adversarial pools, [samples] (default 300)
    random sets, and an {!Attack.search} run under [attack_budget]
    evaluations (default {!Attack.default_config}'s budget; [0]
    disables the search). [jobs] is passed through to every source. *)

val respects : verdict -> bound:int -> bool
(** Did every checked fault set keep the diameter within the bound? *)
