(** The circular construction (Section 4, Theorem 10).

    Given a neighborhood set [M = {m_0 .. m_(K-1)}], every node
    outside [Gamma = union of the neighborhoods Gamma_i] gets tree
    routings to every [Gamma_i]; every node in [Gamma_i] gets tree
    routings to the next [ceil(K/2) - 1] neighborhoods around the
    circle; adjacent pairs get direct edges. The result is
    [(6, t)]-tolerant for [K >= t+2] ([t+1] suffices for even [t],
    Lemma 9); [K >= 2t+1] realises the stronger Properties CIRC 1-2 of
    Lemma 7. *)

open Ftr_graph

val required_k : t:int -> int
(** [t+1] for even [t], [t+2] for odd [t]. *)

val make : ?m:int list -> ?window:int -> Graph.t -> t:int -> Construction.t
(** [m] defaults to the greedy neighborhood set of Lemma 15. [window]
    is the number of onward ring sets each fringe node routes to
    (Component CIRC 2); it defaults to the paper's [ceil(K/2) - 1] and
    must stay in [[1, ceil(K/2) - 1]] — larger values would let two
    fringe nodes route to each other from both sides and conflict.
    Shrinking the window shrinks the route table but weakens the
    surviving-graph properties; the E18 ablation measures that
    trade-off. Raises [Invalid_argument] when [m] is not a
    neighborhood set, is smaller than {!required_k}, or [window] is
    out of range. *)
