open Ftr_graph

type result = {
  augmented : Graph.t;
  construction : Construction.t;
  added : (int * int) list;
}

let default_separator who g =
  match Separator.minimum g with
  | Some (_ :: _ as m) -> m
  | _ -> invalid_arg (who ^ ": no separating set")

let build_augmented ~who ~name ~claims ?m g ~t ~extra_edges =
  let m = match m with Some m -> m | None -> default_separator who g in
  let added =
    List.filter (fun (u, v) -> not (Graph.mem_edge g u v)) (extra_edges m)
  in
  let augmented = Graph.add_edges g added in
  let c = Kernel.make ~m augmented ~t in
  let construction = { c with Construction.name = name; claims = claims ~t } in
  { augmented; construction; added }

let clique_concentrator ?m g ~t =
  let extra_edges m =
    let members = Array.of_list m in
    let acc = ref [] in
    Array.iteri
      (fun i u ->
        Array.iteri (fun j v -> if i < j then acc := (u, v) :: !acc) members)
      members;
    !acc
  in
  build_augmented ~who:"Augment.clique_concentrator" ~name:"kernel+clique"
    ~claims:(fun ~t -> [ Construction.claim ~bound:3 ~faults:t "Section 6 (augmentation)" ])
    ?m g ~t ~extra_edges

let ring_concentrator ?m g ~t =
  let extra_edges m =
    let members = Array.of_list m in
    let k = Array.length members in
    if k < 2 then []
    else if k = 2 then [ (members.(0), members.(1)) ]
    else List.init k (fun i -> (members.(i), members.((i + 1) mod k)))
  in
  build_augmented ~who:"Augment.ring_concentrator" ~name:"kernel+ring"
    ~claims:(fun ~t ->
      ignore t;
      [])
    ?m g ~t ~extra_edges
