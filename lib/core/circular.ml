open Ftr_graph

let required_k ~t = if t mod 2 = 0 then t + 1 else t + 2

let shared_pools ~m ~gammas =
  let fringe = List.sort_uniq compare (List.concat gammas) in
  (m :: gammas) @ [ m @ fringe ]

let make ?m ?window g ~t =
  let m = match m with Some m -> m | None -> Independent.greedy g in
  let k_sets = List.length m in
  if k_sets < required_k ~t then
    invalid_arg
      (Printf.sprintf "Circular.make: need a neighborhood set of size >= %d, got %d"
         (required_k ~t) k_sets);
  if not (Independent.is_neighborhood_set g m) then
    invalid_arg "Circular.make: M is not a neighborhood set";
  let max_window = ((k_sets + 1) / 2) - 1 in
  (match window with
  | Some w when w < 1 || w > max_window ->
      invalid_arg
        (Printf.sprintf "Circular.make: window must be in [1,%d], got %d" max_window w)
  | Some _ | None -> ());
  let members = Array.of_list m in
  let gammas = Array.map (fun mi -> Array.to_list (Graph.neighbors g mi)) members in
  let n = Graph.n g in
  (* owner.(x) = ring index i when x is in Gamma_i, -1 otherwise. *)
  let owner = Array.make n (-1) in
  Array.iteri (fun i gamma -> List.iter (fun x -> owner.(x) <- i) gamma) gammas;
  let routing = Routing.create g Routing.Bidirectional in
  let tree x targets = Tree_routing.add_to routing (Tree_routing.make g ~src:x ~targets ~k:(t + 1)) in
  let window = Option.value window ~default:max_window in
  Graph.iter_vertices
    (fun x ->
      if owner.(x) < 0 then
        (* Component CIRC 1: x outside Gamma routes to every ring set. *)
        Array.iter (fun gamma -> tree x gamma) gammas
      else begin
        (* Component CIRC 2: x in Gamma_i routes to the next
           ceil(K/2)-1 sets around the circle. *)
        let i = owner.(x) in
        for j = 1 to window do
          tree x gammas.((i + j) mod k_sets)
        done
      end)
    g;
  (* Component CIRC 3: direct edge routes. *)
  Routing.add_edge_routes routing;
  {
    Construction.name = Printf.sprintf "circular(K=%d,w=%d)" k_sets window;
    routing;
    concentrator = m;
    structure = Construction.Neighborhood { members = m; window };
    pools = shared_pools ~m ~gammas:(Array.to_list gammas);
    claims = [ Construction.claim ~bound:6 ~faults:t "Theorem 10" ];
  }
