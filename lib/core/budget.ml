exception Exceeded of { stage : string; live_mb : float; limit_mb : int }

let () =
  Printexc.register_printer (function
    | Exceeded { stage; live_mb; limit_mb } ->
        Some
          (Printf.sprintf
             "Budget.Exceeded: %.1f MB live after %s exceeds --budget-mb %d"
             live_mb stage limit_mb)
    | _ -> None)

let live_bytes () =
  Gc.full_major ();
  (Gc.stat ()).Gc.live_words * (Sys.word_size / 8)

let live_mb () = float_of_int (live_bytes ()) /. (1024.0 *. 1024.0)

let check ?limit_mb ~stage () =
  match limit_mb with
  | None -> ()
  | Some limit ->
      let mb = live_mb () in
      if mb > float_of_int limit then
        raise (Exceeded { stage; live_mb = mb; limit_mb = limit })
