open Ftr_graph

type verdict = {
  worst : Metrics.distance;
  witness : int list;
  sets_checked : int;
  definitive : bool;
}

(* Lazy enumeration of subsets of [items] of size exactly [k]. *)
let rec subsets_exact items k : int list Seq.t =
  if k = 0 then Seq.return []
  else
    match items with
    | [] -> Seq.empty
    | x :: rest ->
        Seq.append
          (Seq.map (fun s -> x :: s) (fun () -> subsets_exact rest (k - 1) ()))
          (fun () -> subsets_exact rest k ())

let subsets_up_to items k =
  let sizes = List.init (k + 1) Fun.id in
  List.fold_left
    (fun acc size -> Seq.append acc (subsets_exact items size))
    Seq.empty sizes

(* Saturating Pascal-triangle computation of sum_{i<=k} C(n, i). *)
let count_subsets_up_to ~n ~k =
  let c = Array.make (k + 1) 0 in
  c.(0) <- 1;
  for row = 1 to n do
    for j = min k row downto 1 do
      let sum = c.(j) + c.(j - 1) in
      c.(j) <- (if sum < 0 then max_int else sum)
    done
  done;
  Array.fold_left
    (fun acc x -> if acc + x < 0 then max_int else acc + x)
    0 c

let check_sets routing sets =
  let n = Graph.n (Routing.graph routing) in
  let compiled = Surviving.compile routing in
  let worst = ref (Metrics.Finite (-1)) in
  let witness = ref [] in
  let checked = ref 0 in
  let faults = Bitset.create n in
  Seq.iter
    (fun faults_list ->
      incr checked;
      Bitset.clear faults;
      List.iter (Bitset.add faults) faults_list;
      let d = Surviving.diameter_compiled compiled ~faults in
      if not (Metrics.distance_le d !worst) then begin
        worst := d;
        witness := faults_list
      end)
    sets;
  let worst = if !checked = 0 then Metrics.Finite 0 else !worst in
  { worst; witness = !witness; sets_checked = !checked; definitive = false }

let exhaustive routing ~f =
  let n = Graph.n (Routing.graph routing) in
  let vertices = List.init n Fun.id in
  let v = check_sets routing (subsets_up_to vertices f) in
  { v with definitive = true }

let random_subset rng n f =
  (* Floyd's algorithm for a uniform f-subset of [0, n). *)
  let chosen = Hashtbl.create (2 * f) in
  for j = n - f to n - 1 do
    let r = Random.State.int rng (j + 1) in
    let pick = if Hashtbl.mem chosen r then j else r in
    Hashtbl.replace chosen pick ()
  done;
  Hashtbl.fold (fun v () acc -> v :: acc) chosen []

let random routing ~f ~rng ~samples =
  let n = Graph.n (Routing.graph routing) in
  let f = min f n in
  let sets =
    Seq.append (Seq.return [])
      (Seq.init samples (fun _ -> random_subset rng n f))
  in
  check_sets routing sets

let adversarial ?(per_pool_cap = 2000) routing ~f ~pools =
  (* Pools overlap (the concentrator reappears in its members'
     neighborhoods), so identical subsets would be re-evaluated and
     inflate [sets_checked]; dedupe across pools, after the per-pool
     cap so single-pool counts are unchanged. *)
  let sets =
    List.fold_left
      (fun acc pool ->
        let pool = List.sort_uniq compare pool in
        Seq.append acc (Seq.take per_pool_cap (subsets_up_to pool f)))
      Seq.empty pools
  in
  let seen = Hashtbl.create 256 in
  let deduped =
    Seq.filter
      (fun s ->
        let key = List.sort compare s in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.add seen key ();
          true
        end)
      sets
  in
  check_sets routing deduped

let merge a b =
  {
    worst = Metrics.max_distance a.worst b.worst;
    witness =
      (if Metrics.distance_le b.worst a.worst then a.witness else b.witness);
    sets_checked = a.sets_checked + b.sets_checked;
    definitive = a.definitive && b.definitive;
  }

let evaluate ?(exhaustive_budget = 20_000) ?(samples = 300)
    ?(attack_budget = Attack.default_config.Attack.budget) ?(corpus = []) ~rng
    (c : Construction.t) ~f =
  let routing = c.Construction.routing in
  let n = Graph.n (Routing.graph routing) in
  if count_subsets_up_to ~n ~k:f <= exhaustive_budget then exhaustive routing ~f
  else begin
    (* Stored witnesses replay first: a regression against the corpus
       should surface even if every fresh search misses it. *)
    let replay =
      match Attack.Corpus.replayable corpus ~n ~f with
      | [] -> None
      | sets -> Some (check_sets routing (List.to_seq sets))
    in
    let adv = adversarial routing ~f ~pools:c.Construction.pools in
    let rnd = random routing ~f ~rng ~samples in
    let atk =
      if attack_budget <= 0 then None
      else
        let config = { Attack.default_config with Attack.budget = attack_budget } in
        let o = Attack.search ~config ~rng ~pools:c.Construction.pools routing ~f in
        Some
          {
            worst = o.Attack.worst;
            witness = o.Attack.witness;
            sets_checked = o.Attack.evals;
            definitive = false;
          }
    in
    let acc = merge { adv with definitive = false } rnd in
    let acc = match replay with None -> acc | Some v -> merge v acc in
    match atk with None -> acc | Some v -> merge acc v
  end

let respects v ~bound = Metrics.distance_le v.worst (Metrics.Finite bound)
