open Ftr_graph
module Obs = Ftr_obs.Obs

(* [sets_checked] totals are jobs-independent by the same argument as
   the verdicts (every chunk/block is swept identically no matter
   which domain runs it), so they are safe as Obs counters. *)
let c_sets_checked = Obs.counter "tolerance.sets_checked"
let c_certify_runs = Obs.counter "tolerance.certify.runs"
let c_certify_sets = Obs.counter "tolerance.certify.sets_checked"
let c_certify_early = Obs.counter "tolerance.certify.early_exit_blocks"
let c_corpus_replayed = Obs.counter "tolerance.corpus.replayed"

type verdict = {
  worst : Metrics.distance;
  witness : int list;
  sets_checked : int;
  definitive : bool;
}

(* Which evaluation engine sweeps the candidate sets. [Sliced] packs
   up to [Surviving.lane_capacity] sets into the lanes of one
   word-packed BFS and is the default wherever it applies (single-word
   rows, i.e. n <= Sys.int_size); it silently degrades to [Scalar]
   elsewhere. Verdicts and the deterministic Obs counters are
   identical either way — [Scalar] survives as the cross-check the
   property tests exercise. *)
type engine = Scalar | Sliced

(* Enumerations larger than this are not materialised for the sliced
   engine (the set array would dominate memory); they fall back to the
   scalar incremental sweep, which needs no random access. *)
let sliced_materialize_cap = 200_000

(* A slice tail shorter than this is swept scalar: a one-lane sweep
   pays the slice bookkeeping for no amortisation. The threshold
   depends only on the canonical set index, never on scheduling. *)
let sliced_min_batch = 2

(* Lazy enumeration of subsets of [items] of size exactly [k]. *)
let rec subsets_exact items k : int list Seq.t =
  if k = 0 then Seq.return []
  else
    match items with
    | [] -> Seq.empty
    | x :: rest ->
        Seq.append
          (Seq.map (fun s -> x :: s) (fun () -> subsets_exact rest (k - 1) ()))
          (fun () -> subsets_exact rest k ())

let subsets_up_to items k =
  let sizes = List.init (k + 1) Fun.id in
  List.fold_left
    (fun acc size -> Seq.append acc (subsets_exact items size))
    Seq.empty sizes

(* Saturating Pascal-triangle computation of sum_{i<=k} C(n, i). *)
let count_subsets_up_to ~n ~k =
  let c = Array.make (k + 1) 0 in
  c.(0) <- 1;
  for row = 1 to n do
    for j = min k row downto 1 do
      let sum = c.(j) + c.(j - 1) in
      c.(j) <- (if sum < 0 then max_int else sum)
    done
  done;
  Array.fold_left
    (fun acc x -> if acc + x < 0 then max_int else acc + x)
    0 c

(* ------------------------------------------------------------------ *)
(* Revolving-door subset enumeration.                                 *)
(* ------------------------------------------------------------------ *)

(* Knuth, TAOCP 7.2.1.3, Algorithm R: visit the k-subsets of [0, n)
   in a Gray order where consecutive subsets differ by exactly one
   element swapped. Against an incremental evaluator this makes a
   whole C(n, k) sweep cost one apply + one revert per subset. *)
let iter_combinations_gray ~n ~k ~first ~swap =
  if k < 0 then invalid_arg "Tolerance.iter_combinations_gray: negative size";
  if k > n then invalid_arg "Tolerance.iter_combinations_gray: size exceeds universe";
  if k = 0 then first [||]
  else begin
    (* 1-based c.(1..k) is the current subset in increasing order;
       c.(k+1) = n is the sentinel R5 compares against. *)
    let c = Array.make (k + 2) 0 in
    for j = 1 to k do
      c.(j) <- j - 1
    done;
    c.(k + 1) <- n;
    first (Array.init k (fun i -> c.(i + 1)));
    let running = ref true in
    let rec r4 j =
      if j > k then running := false
      else if c.(j) >= j then begin
        let removed = c.(j) in
        c.(j) <- c.(j - 1);
        c.(j - 1) <- j - 2;
        swap ~removed ~added:(j - 2)
      end
      else r5 (j + 1)
    and r5 j =
      if j > k then running := false
      else if c.(j) + 1 < c.(j + 1) then begin
        let removed = c.(j - 1) in
        c.(j - 1) <- c.(j);
        c.(j) <- c.(j) + 1;
        swap ~removed ~added:c.(j)
      end
      else r4 (j + 1)
    in
    while !running do
      if k land 1 = 1 then begin
        if c.(1) + 1 < c.(2) then begin
          let removed = c.(1) in
          c.(1) <- removed + 1;
          swap ~removed ~added:(removed + 1)
        end
        else r4 2
      end
      else if c.(1) > 0 then begin
        let removed = c.(1) in
        c.(1) <- removed - 1;
        swap ~removed ~added:(removed - 1)
      end
      else r5 2
    done
  end

(* ------------------------------------------------------------------ *)
(* Verdict assembly.                                                  *)
(* ------------------------------------------------------------------ *)

(* Witness policy everywhere: the FIRST set (in the canonical
   enumeration order) achieving a strictly larger diameter becomes the
   witness. Chunks are merged in enumeration order with "earlier
   witness wins ties", which reproduces the sequential policy no
   matter how chunks were scheduled — verdicts are [jobs]-independent. *)
let merge a b =
  {
    worst = Metrics.max_distance a.worst b.worst;
    witness =
      (if Metrics.distance_le b.worst a.worst then a.witness else b.witness);
    sets_checked = a.sets_checked + b.sets_checked;
    definitive = a.definitive && b.definitive;
  }

let merge_ordered = function
  | [] -> { worst = Metrics.Finite 0; witness = []; sets_checked = 0; definitive = false }
  | v :: rest -> List.fold_left merge v rest

let default_jobs () = Par.recommended_jobs ()

(* ------------------------------------------------------------------ *)
(* The shared sweep kernels.                                          *)
(* ------------------------------------------------------------------ *)

(* Scalar sweep over sets addressed by canonical index. [Par.chunk]
   hands each domain a contiguous index range; the ordered merge makes
   the verdict independent of the chunk boundaries. *)
let sweep_sets_scalar ~jobs ~compiled ~count ~nodes_of ~edges_of ~report =
  let verdicts =
    Par.chunk ~jobs ~count
      ~init:(fun () -> Surviving.evaluator compiled)
      ~task:(fun ev ~lo ~hi ->
        let worst = ref (Metrics.Finite (-1)) in
        let witness = ref [] in
        for i = lo to hi - 1 do
          Surviving.set_mixed_faults ev ~nodes:(nodes_of i) ~edges:(edges_of i);
          let d = Surviving.evaluator_diameter ev in
          if not (Metrics.distance_le d !worst) then begin
            worst := d;
            witness := report i
          end
        done;
        { worst = !worst; witness = !witness; sets_checked = hi - lo; definitive = false })
  in
  merge_ordered (Array.to_list verdicts)

(* Bit-sliced sweep over the same index space. Slices are cut at fixed
   canonical indexes (multiples of [lane_capacity]) and [Par.chunk]
   distributes whole slices, so slice boundaries — and every engine
   counter they feed — are independent of [jobs]. A short final tail
   falls back to the per-domain scalar evaluator. *)
let sweep_sets_sliced ~jobs ~compiled ~count ~nodes_of ~edges_of ~report =
  let lanes = Surviving.lane_capacity in
  let nslices = (count + lanes - 1) / lanes in
  let verdicts =
    Par.chunk ~jobs ~count:nslices
      ~init:(fun () -> (Surviving.sliced compiled, Surviving.evaluator compiled))
      ~task:(fun (sl, ev) ~lo ~hi ->
        let worst = ref (Metrics.Finite (-1)) in
        let witness = ref [] in
        let checked = ref 0 in
        let consider i d =
          incr checked;
          if not (Metrics.distance_le d !worst) then begin
            worst := d;
            witness := report i
          end
        in
        for si = lo to hi - 1 do
          let base = si * lanes in
          let stop = min count (base + lanes) in
          if stop - base >= sliced_min_batch then begin
            Surviving.slice_reset sl;
            for i = base to stop - 1 do
              ignore (Surviving.slice_add sl ~nodes:(nodes_of i) ~edges:(edges_of i))
            done;
            let ds = Surviving.slice_diameters sl in
            for i = base to stop - 1 do
              consider i ds.(i - base)
            done
          end
          else
            for i = base to stop - 1 do
              Surviving.set_mixed_faults ev ~nodes:(nodes_of i) ~edges:(edges_of i);
              consider i (Surviving.evaluator_diameter ev)
            done
        done;
        { worst = !worst; witness = !witness; sets_checked = !checked; definitive = false })
  in
  merge_ordered (Array.to_list verdicts)

let sweep_sets ~engine ~jobs ~compiled ~count ~nodes_of ~edges_of ~report =
  let sweep =
    match engine with
    | Sliced when Surviving.sliced_capable compiled -> sweep_sets_sliced
    | _ -> sweep_sets_scalar
  in
  sweep ~jobs ~compiled ~count ~nodes_of ~edges_of ~report

(* ------------------------------------------------------------------ *)
(* Explicit set lists (random sampling, pools, corpus replay).        *)
(* ------------------------------------------------------------------ *)

let check_sets ?jobs ?(engine = Sliced) routing sets =
  Obs.with_span "tolerance.check_sets" @@ fun () ->
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  let sets = Array.of_seq sets in
  let count = Array.length sets in
  if count = 0 then
    { worst = Metrics.Finite 0; witness = []; sets_checked = 0; definitive = false }
  else begin
    let compiled = Surviving.compile_cached routing in
    let deduped = Array.map (List.sort_uniq compare) sets in
    let v =
      sweep_sets ~engine ~jobs ~compiled ~count
        ~nodes_of:(fun i -> deduped.(i))
        ~edges_of:(fun _ -> [])
        ~report:(fun i -> sets.(i))
    in
    Obs.add c_sets_checked v.sets_checked;
    v
  end

(* ------------------------------------------------------------------ *)
(* Exhaustive enumeration.                                            *)
(* ------------------------------------------------------------------ *)

(* The canonical order enumerates by size, then by maximum element:
   block (k, top) holds the C(top, k-1) sets {top} ∪ S with S a
   (k-1)-subset of [0, top), swept in revolving-door order. The block
   list depends only on (n, f), so it is the unit of parallelism AND
   the definition of enumeration order. [top = -1] encodes the empty
   set. *)
type block = { b_size : int; b_top : int }

let blocks_up_to ~n ~f =
  let acc = ref [ { b_size = 0; b_top = -1 } ] in
  for k = min f n downto 1 do
    for top = n - 1 downto k - 1 do
      acc := { b_size = k; b_top = top } :: !acc
    done
  done;
  Array.of_list (List.rev !acc)

(* Sweep one block with an incremental evaluator, reporting each
   subset to [consider] (which reads the evaluator's current state). *)
let sweep_block ev block ~consider =
  if block.b_top < 0 then begin
    Surviving.reset ev;
    consider ()
  end
  else begin
    Surviving.set_faults ev [ block.b_top ];
    if block.b_size = 1 then consider ()
    else
      iter_combinations_gray ~n:block.b_top ~k:(block.b_size - 1)
        ~first:(fun c ->
          Array.iter (Surviving.apply_fault ev) c;
          consider ())
        ~swap:(fun ~removed ~added ->
          Surviving.revert_fault ev removed;
          Surviving.apply_fault ev added;
          consider ())
  end

(* The canonical enumeration as an array, for the sliced engine's
   random access by index: element [i] is the [i]-th set of the block
   order above, as a sorted list. Element order inside each block is
   the revolving-door order, so the array IS the canonical order and
   witnesses keep their [jobs]- and engine-independent identity. *)
let materialize_sets ~n ~f =
  let total = count_subsets_up_to ~n ~k:f in
  let out = Array.make total [] in
  let idx = ref 0 in
  let push s =
    out.(!idx) <- s;
    incr idx
  in
  Array.iter
    (fun block ->
      if block.b_top < 0 then push []
      else if block.b_size = 1 then push [ block.b_top ]
      else begin
        let k = block.b_size - 1 in
        let cur = Array.make k 0 in
        let emit () = push (Array.to_list cur @ [ block.b_top ]) in
        iter_combinations_gray ~n:block.b_top ~k
          ~first:(fun c ->
            Array.blit c 0 cur 0 k;
            emit ())
          ~swap:(fun ~removed ~added ->
            let j = ref 0 in
            while cur.(!j) <> removed do
              incr j
            done;
            cur.(!j) <- added;
            Array.sort Int.compare cur;
            emit ())
      end)
    (blocks_up_to ~n ~f);
  out

(* Scalar exhaustive sweep: [Par.chunk] hands each domain a contiguous
   run of whole blocks (the old one-task-per-block split drowned
   sub-millisecond blocks in pool wake/sync cost). *)
let exhaustive_scalar ~jobs ~compiled ~blocks ~sweep ~faults_of =
  let verdicts =
    Par.chunk ~jobs ~count:(Array.length blocks)
      ~init:(fun () -> Surviving.evaluator compiled)
      ~task:(fun ev ~lo ~hi ->
        let worst = ref (Metrics.Finite (-1)) in
        let witness = ref [] in
        let checked = ref 0 in
        for i = lo to hi - 1 do
          sweep ev blocks.(i) ~consider:(fun () ->
              incr checked;
              let d = Surviving.evaluator_diameter ev in
              if not (Metrics.distance_le d !worst) then begin
                worst := d;
                witness := faults_of ev
              end)
        done;
        { worst = !worst; witness = !witness; sets_checked = !checked; definitive = false })
  in
  merge_ordered (Array.to_list verdicts)

let exhaustive ?jobs ?(engine = Sliced) routing ~f =
  Obs.with_span "tolerance.exhaustive" @@ fun () ->
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  let n = Graph.n (Routing.graph routing) in
  let compiled = Surviving.compile_cached routing in
  let total = count_subsets_up_to ~n ~k:f in
  let use_sliced =
    engine = Sliced
    && Surviving.sliced_capable compiled
    && total <= sliced_materialize_cap
  in
  let v =
    if use_sliced then begin
      let sets = materialize_sets ~n ~f in
      sweep_sets_sliced ~jobs ~compiled ~count:total
        ~nodes_of:(fun i -> sets.(i))
        ~edges_of:(fun _ -> [])
        ~report:(fun i -> sets.(i))
    end
    else
      exhaustive_scalar ~jobs ~compiled ~blocks:(blocks_up_to ~n ~f)
        ~sweep:sweep_block ~faults_of:Surviving.faults
  in
  let v = { v with definitive = true } in
  Obs.add c_sets_checked v.sets_checked;
  v

(* ------------------------------------------------------------------ *)
(* Bound certification (early-exit).                                  *)
(* ------------------------------------------------------------------ *)

type certificate = {
  holds : bool;
  counterexample : int list option;
  cert_sets_checked : int;
}

(* Certification keeps the scalar evaluator: the early exit inside a
   violating block stops at the FIRST bad set, which a whole-slice
   sweep would overshoot (and the early-exit counters must stay
   byte-identical across [jobs]). Blocks are still grouped into
   [Par.chunk] ranges; each block keeps its own [Stop] and no block is
   skipped, so [checked] and the per-block early-exit count depend on
   the block list alone. *)
let certify_blocks ~jobs ~compiled ~blocks ~sweep ~faults_of ~bound =
  let exception Stop in
  let results =
    Par.chunk ~jobs ~count:(Array.length blocks)
      ~init:(fun () -> Surviving.evaluator compiled)
      ~task:(fun ev ~lo ~hi ->
        let checked = ref 0 in
        let early = ref 0 in
        let cex = ref None in
        for i = lo to hi - 1 do
          let bcex = ref None in
          (try
             sweep ev blocks.(i) ~consider:(fun () ->
                 incr checked;
                 if Surviving.diameter_exceeds ev ~bound then begin
                   bcex := Some (faults_of ev);
                   raise Stop
                 end)
           with Stop -> ());
          match !bcex with
          | Some _ ->
              incr early;
              if !cex = None then cex := !bcex
          | None -> ()
        done;
        (!cex, !checked, !early))
  in
  let checked = Array.fold_left (fun acc (_, c, _) -> acc + c) 0 results in
  let early = Array.fold_left (fun acc (_, _, e) -> acc + e) 0 results in
  let counterexample =
    Array.fold_left
      (fun acc (cex, _, _) -> match acc with Some _ -> acc | None -> cex)
      None results
  in
  Obs.add c_certify_sets checked;
  Obs.add c_certify_early early;
  (counterexample, checked)

let certify ?jobs routing ~f ~bound =
  Obs.with_span "tolerance.certify" @@ fun () ->
  Obs.incr c_certify_runs;
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  let n = Graph.n (Routing.graph routing) in
  let compiled = Surviving.compile_cached routing in
  let counterexample, checked =
    certify_blocks ~jobs ~compiled ~blocks:(blocks_up_to ~n ~f) ~sweep:sweep_block
      ~faults_of:Surviving.faults ~bound
  in
  { holds = counterexample = None; counterexample; cert_sets_checked = checked }

(* ------------------------------------------------------------------ *)
(* Sampling and pools.                                                *)
(* ------------------------------------------------------------------ *)

let random_subset rng n f =
  (* Floyd's algorithm for a uniform f-subset of [0, n). *)
  let chosen = Hashtbl.create (2 * f) in
  for j = n - f to n - 1 do
    let r = Random.State.int rng (j + 1) in
    let pick = if Hashtbl.mem chosen r then j else r in
    Hashtbl.replace chosen pick ()
  done;
  Hashtbl.fold (fun v () acc -> v :: acc) chosen [] |> List.sort Int.compare

let random ?jobs ?engine routing ~f ~rng ~samples =
  let n = Graph.n (Routing.graph routing) in
  let f = min f n in
  (* Draw every sample from the caller's RNG before evaluating, so the
     draws — and hence the verdict — cannot depend on [jobs]. *)
  let acc = ref [] in
  for _ = 1 to samples do
    acc := random_subset rng n f :: !acc
  done;
  let sets = [] :: List.rev !acc in
  check_sets ?jobs ?engine routing (List.to_seq sets)

let adversarial ?(per_pool_cap = 2000) ?jobs ?engine routing ~f ~pools =
  (* Pools overlap (the concentrator reappears in its members'
     neighborhoods), so identical subsets would be re-evaluated and
     inflate [sets_checked]; dedupe across pools, after the per-pool
     cap so single-pool counts are unchanged. *)
  let sets =
    List.fold_left
      (fun acc pool ->
        let pool = List.sort_uniq compare pool in
        Seq.append acc (Seq.take per_pool_cap (subsets_up_to pool f)))
      Seq.empty pools
  in
  let seen = Hashtbl.create 256 in
  let deduped =
    Seq.filter
      (fun s ->
        let key = List.sort Int.compare s in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.add seen key ();
          true
        end)
      sets
  in
  check_sets ?jobs ?engine routing deduped

(* ------------------------------------------------------------------ *)
(* Sampled probing at scale.                                          *)
(* ------------------------------------------------------------------ *)

type sampled_verdict = {
  sv_holds : bool;
  sv_worst : Metrics.distance;
  sv_witness_faults : int list;
  sv_witness_pair : (int * int) option;
  sv_sets_checked : int;
  sv_pairs_checked : int;
}

let c_sampled_probes = Obs.counter "tolerance.sampled.pairs_probed"
let c_sampled_sets = Obs.counter "tolerance.sampled.sets_checked"

let sampled ?jobs ?(pools = []) ?probe_budget routing ~f ~bound ~rng ~sets ~pairs
    =
  Obs.with_span "tolerance.sampled" @@ fun () ->
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  let g = Routing.graph routing in
  let n = Graph.n g in
  let budget = match probe_budget with Some b -> b | None -> (2 * n) + 1 in
  let trivial =
    {
      sv_holds = true;
      sv_worst = Metrics.Finite 0;
      sv_witness_faults = [];
      sv_witness_pair = None;
      sv_sets_checked = 0;
      sv_pairs_checked = 0;
    }
  in
  if n < 2 then trivial
  else begin
    let f = min f (n - 2) in
    (* Every draw happens before any evaluation, so the candidate list
       — and hence the verdict — cannot depend on [jobs]. *)
    let pair_arr =
      Array.init (max 0 pairs) (fun _ ->
          let src = Random.State.int rng n in
          let d = Random.State.int rng (n - 1) in
          (src, if d >= src then d + 1 else d))
    in
    let prefix_of l = List.filteri (fun i _ -> i < f) l in
    (* Adversarial sets: the [f] lowest neighbors of every sampled
       endpoint (isolating it outright when its degree is within the
       fault budget — the paper's cut adversary), then the [f] lowest
       members of each caller pool. *)
    let endpoint_sets =
      Array.to_list pair_arr
      |> List.concat_map (fun (s, d) -> [ s; d ])
      |> List.sort_uniq Int.compare
      |> List.map (fun v -> prefix_of (Array.to_list (Graph.neighbors g v)))
    in
    let pool_sets =
      List.map (fun p -> prefix_of (List.sort_uniq Int.compare p)) pools
    in
    let random_sets = ref [] in
    for _ = 1 to max 0 sets do
      random_sets := List.sort Int.compare (random_subset rng n f) :: !random_sets
    done;
    (* Canonical order: fault-free first, then adversarial, then the
       random draws; duplicates keep their first position. *)
    let seen = Hashtbl.create 64 in
    let set_arr =
      ([] :: endpoint_sets) @ pool_sets @ List.rev !random_sets
      |> List.map (List.sort_uniq Int.compare)
      |> List.filter (fun s ->
             (not (Hashtbl.mem seen s))
             && begin
                  Hashtbl.add seen s ();
                  true
                end)
      |> Array.of_list
    in
    let nsets = Array.length set_arr in
    let npairs = Array.length pair_arr in
    let count = nsets * npairs in
    if count = 0 then trivial
    else begin
      let chunks =
        Par.chunk ~jobs ~count
          ~init:(fun () -> Bitset.create n)
          ~task:(fun faults ~lo ~hi ->
            let worst = ref (Metrics.Finite (-1)) in
            let wfaults = ref [] in
            let wpair = ref None in
            let probed = ref 0 in
            let cur = ref (-1) in
            for idx = lo to hi - 1 do
              let si = idx / npairs and pi = idx mod npairs in
              if si <> !cur then begin
                if !cur >= 0 then List.iter (Bitset.remove faults) set_arr.(!cur);
                List.iter (Bitset.add faults) set_arr.(si);
                cur := si
              end;
              let src, dst = pair_arr.(pi) in
              (* Tolerance quantifies over non-faulty pairs only. *)
              if not (Bitset.mem faults src || Bitset.mem faults dst) then begin
                incr probed;
                let d =
                  Surviving.probe_distance routing ~faults ~src ~dst ~bound
                    ~budget
                in
                if not (Metrics.distance_le d !worst) then begin
                  worst := d;
                  wfaults := set_arr.(si);
                  wpair := Some (src, dst)
                end
              end
            done;
            (!worst, !wfaults, !wpair, !probed))
      in
      (* Ordered merge, earlier witness wins ties: [jobs]-independent. *)
      let worst = ref (Metrics.Finite (-1)) in
      let wfaults = ref [] in
      let wpair = ref None in
      let probed = ref 0 in
      Array.iter
        (fun (w, wf, wp, p) ->
          probed := !probed + p;
          if not (Metrics.distance_le w !worst) then begin
            worst := w;
            wfaults := wf;
            wpair := wp
          end)
        chunks;
      Obs.add c_sampled_probes !probed;
      Obs.add c_sampled_sets nsets;
      {
        sv_holds = Metrics.distance_le !worst (Metrics.Finite bound);
        sv_worst = (if !worst = Metrics.Finite (-1) then Metrics.Finite 0 else !worst);
        sv_witness_faults = !wfaults;
        sv_witness_pair = !wpair;
        sv_sets_checked = nsets;
        sv_pairs_checked = !probed;
      }
    end
  end

(* ------------------------------------------------------------------ *)
(* Edge-fault variants.                                               *)
(*                                                                    *)
(* Same canonical enumeration order (by size, then by maximum         *)
(* element, Gray-swept blocks) and the same ordered merge, but over   *)
(* the compiled table's edge universe. Witnesses surface as           *)
(* normalised (min, max) endpoint pairs.                              *)
(* ------------------------------------------------------------------ *)

type edge_verdict = {
  e_worst : Metrics.distance;
  e_witness : (int * int) list;
  e_sets_checked : int;
  e_definitive : bool;
}

let edge_ids_exn compiled pairs =
  List.map
    (fun (u, v) ->
      match Surviving.edge_id compiled u v with
      | Some e -> e
      | None ->
          invalid_arg (Printf.sprintf "Tolerance: (%d, %d) is not a graph edge" u v))
    pairs

let sweep_block_edges ev block ~consider =
  if block.b_top < 0 then begin
    Surviving.reset ev;
    consider ()
  end
  else begin
    Surviving.set_mixed_faults ev ~nodes:[] ~edges:[ block.b_top ];
    if block.b_size = 1 then consider ()
    else
      iter_combinations_gray ~n:block.b_top ~k:(block.b_size - 1)
        ~first:(fun c ->
          Array.iter (Surviving.apply_edge_fault ev) c;
          consider ())
        ~swap:(fun ~removed ~added ->
          Surviving.revert_edge_fault ev removed;
          Surviving.apply_edge_fault ev added;
          consider ())
  end

let check_edge_sets ?jobs ?(engine = Sliced) routing sets =
  Obs.with_span "tolerance.check_edge_sets" @@ fun () ->
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  let compiled = Surviving.compile_cached routing in
  (* Resolve endpoint pairs to edge ids up front so a non-edge fails
     loudly (and identically for every [jobs] value). *)
  let sets =
    Array.of_seq (Seq.map (fun s -> List.sort_uniq compare (edge_ids_exn compiled s)) sets)
  in
  let count = Array.length sets in
  if count = 0 then
    { e_worst = Metrics.Finite 0; e_witness = []; e_sets_checked = 0; e_definitive = false }
  else begin
    let v =
      sweep_sets ~engine ~jobs ~compiled ~count
        ~nodes_of:(fun _ -> [])
        ~edges_of:(fun i -> sets.(i))
        ~report:(fun i -> sets.(i))
    in
    Obs.add c_sets_checked v.sets_checked;
    {
      e_worst = v.worst;
      e_witness = List.map (Surviving.edge_pair compiled) v.witness;
      e_sets_checked = v.sets_checked;
      e_definitive = false;
    }
  end

let exhaustive_edges ?jobs ?(engine = Sliced) routing ~f =
  Obs.with_span "tolerance.exhaustive_edges" @@ fun () ->
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  let compiled = Surviving.compile_cached routing in
  let m = Surviving.edge_count compiled in
  let total = count_subsets_up_to ~n:m ~k:f in
  let use_sliced =
    engine = Sliced
    && Surviving.sliced_capable compiled
    && total <= sliced_materialize_cap
  in
  let v =
    if use_sliced then begin
      let sets = materialize_sets ~n:m ~f in
      sweep_sets_sliced ~jobs ~compiled ~count:total
        ~nodes_of:(fun _ -> [])
        ~edges_of:(fun i -> sets.(i))
        ~report:(fun i -> sets.(i))
    end
    else
      exhaustive_scalar ~jobs ~compiled ~blocks:(blocks_up_to ~n:m ~f)
        ~sweep:sweep_block_edges ~faults_of:Surviving.edge_faults
  in
  let v = { v with definitive = true } in
  Obs.add c_sets_checked v.sets_checked;
  {
    e_worst = v.worst;
    e_witness = List.map (Surviving.edge_pair compiled) v.witness;
    e_sets_checked = v.sets_checked;
    e_definitive = v.definitive;
  }

type edge_certificate = {
  e_holds : bool;
  e_counterexample : (int * int) list option;
  e_cert_sets_checked : int;
}

let certify_edges ?jobs routing ~f ~bound =
  Obs.with_span "tolerance.certify_edges" @@ fun () ->
  Obs.incr c_certify_runs;
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  let compiled = Surviving.compile_cached routing in
  let m = Surviving.edge_count compiled in
  let counterexample, checked =
    certify_blocks ~jobs ~compiled ~blocks:(blocks_up_to ~n:m ~f)
      ~sweep:sweep_block_edges ~faults_of:Surviving.edge_faults ~bound
  in
  {
    e_holds = counterexample = None;
    e_counterexample =
      Option.map (List.map (Surviving.edge_pair compiled)) counterexample;
    e_cert_sets_checked = checked;
  }

let random_edges ?jobs ?engine routing ~f ~rng ~samples =
  let compiled = Surviving.compile_cached routing in
  let m = Surviving.edge_count compiled in
  let f = min f m in
  (* Same discipline as [random]: every draw happens before any
     evaluation, so the verdict cannot depend on [jobs]. *)
  let acc = ref [] in
  for _ = 1 to samples do
    acc := List.map (Surviving.edge_pair compiled) (random_subset rng m f) :: !acc
  done;
  let sets = [] :: List.rev !acc in
  check_edge_sets ?jobs ?engine routing (List.to_seq sets)

(* ------------------------------------------------------------------ *)
(* The paper's edge-fault reduction, checked set by set.              *)
(* ------------------------------------------------------------------ *)

type reduction_report = {
  red_sets : int;
  red_violations : int;
  red_first_violation : (int * int) list option;
  red_worst_edge : Metrics.distance;
  red_worst_proj : Metrics.distance;
}

let reduction ?jobs routing ~f =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  let compiled = Surviving.compile_cached routing in
  let m = Surviving.edge_count compiled in
  let blocks = blocks_up_to ~n:m ~f in
  let results =
    Par.run ~jobs ~ntasks:(Array.length blocks)
      ~init:(fun () -> (Surviving.evaluator compiled, Surviving.evaluator compiled))
      ~task:(fun (eev, pev) i ->
        let sets = ref 0 in
        let violations = ref 0 in
        let first = ref None in
        let worst_edge = ref (Metrics.Finite 0) in
        let worst_proj = ref (Metrics.Finite 0) in
        let n = Surviving.compiled_n compiled in
        sweep_block_edges eev blocks.(i) ~consider:(fun () ->
            incr sets;
            (* The paper's reduction: replace each downed link by its
               smaller endpoint, as a node fault. The claim is about
               distances between the projection's surviving nodes, so
               the link-fault diameter is restricted to them (the
               projected endpoints stay alive and may relay). *)
            let proj =
              List.sort_uniq compare
                (List.map
                   (fun e -> fst (Surviving.edge_pair compiled e))
                   (Surviving.edge_faults eev))
            in
            let survivors = Bitset.create n in
            for v = 0 to n - 1 do Bitset.add survivors v done;
            List.iter (Bitset.remove survivors) proj;
            let d_edge = Surviving.evaluator_diameter_over eev ~targets:survivors in
            Surviving.set_faults pev proj;
            let d_proj = Surviving.evaluator_diameter pev in
            worst_edge := Metrics.max_distance !worst_edge d_edge;
            worst_proj := Metrics.max_distance !worst_proj d_proj;
            if not (Metrics.distance_le d_edge d_proj) then begin
              incr violations;
              if !first = None then
                first :=
                  Some
                    (List.map (Surviving.edge_pair compiled) (Surviving.edge_faults eev))
            end);
        {
          red_sets = !sets;
          red_violations = !violations;
          red_first_violation = !first;
          red_worst_edge = !worst_edge;
          red_worst_proj = !worst_proj;
        })
  in
  Array.fold_left
    (fun acc r ->
      {
        red_sets = acc.red_sets + r.red_sets;
        red_violations = acc.red_violations + r.red_violations;
        red_first_violation =
          (match acc.red_first_violation with
          | Some _ -> acc.red_first_violation
          | None -> r.red_first_violation);
        red_worst_edge = Metrics.max_distance acc.red_worst_edge r.red_worst_edge;
        red_worst_proj = Metrics.max_distance acc.red_worst_proj r.red_worst_proj;
      })
    {
      red_sets = 0;
      red_violations = 0;
      red_first_violation = None;
      red_worst_edge = Metrics.Finite 0;
      red_worst_proj = Metrics.Finite 0;
    }
    results

let evaluate ?(exhaustive_budget = 20_000) ?(samples = 300)
    ?(attack_budget = Attack.default_config.Attack.budget) ?(corpus = []) ?jobs ?engine
    ~rng (c : Construction.t) ~f =
  let routing = c.Construction.routing in
  let n = Graph.n (Routing.graph routing) in
  if count_subsets_up_to ~n ~k:f <= exhaustive_budget then
    exhaustive ?jobs ?engine routing ~f
  else begin
    (* Stored witnesses replay first: a regression against the corpus
       should surface even if every fresh search misses it. *)
    let replay =
      match Attack.Corpus.replayable corpus ~n ~f with
      | [] -> None
      | sets ->
          Obs.with_span "tolerance.evaluate.replay" @@ fun () ->
          Obs.add c_corpus_replayed (List.length sets);
          Some (check_sets ?jobs ?engine routing (List.to_seq sets))
    in
    let adv =
      Obs.with_span "tolerance.evaluate.adversarial" @@ fun () ->
      adversarial ?jobs ?engine routing ~f ~pools:c.Construction.pools
    in
    let rnd =
      Obs.with_span "tolerance.evaluate.random" @@ fun () ->
      random ?jobs ?engine routing ~f ~rng ~samples
    in
    let atk =
      if attack_budget <= 0 then None
      else
        Obs.with_span "tolerance.evaluate.attack" @@ fun () ->
        let config = { Attack.default_config with Attack.budget = attack_budget } in
        let o = Attack.search ~config ?jobs ~rng ~pools:c.Construction.pools routing ~f in
        Some
          {
            worst = o.Attack.worst;
            witness = o.Attack.witness;
            sets_checked = o.Attack.evals;
            definitive = false;
          }
    in
    let acc = merge { adv with definitive = false } rnd in
    let acc = match replay with None -> acc | Some v -> merge v acc in
    match atk with None -> acc | Some v -> merge acc v
  end

let respects v ~bound = Metrics.distance_le v.worst (Metrics.Finite bound)
