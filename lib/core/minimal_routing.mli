(** The shortest-path routing baseline.

    The paper contrasts its constructions with {e minimal path
    routings}, whose fault tolerance Feldman (STOC 1985) analysed: fix
    a shortest path for every pair and hope. This module builds that
    baseline with deterministic tie-breaking so experiments can compare
    surviving diameters against the paper's constructions on equal
    terms. *)

open Ftr_graph

val make : Graph.t -> Construction.t
(** A bidirectional shortest-path routing: the route for [(x, y)] is
    the lexicographically-first BFS shortest path from [min x y],
    reversed for the other direction. Every pair of distinct vertices
    in the same component is routed; claims are empty (the baseline
    promises nothing). *)

val make_unidirectional : Graph.t -> Construction.t
(** Independent BFS-tree shortest paths per source; routes for [(x,y)]
    and [(y,x)] may differ. *)
