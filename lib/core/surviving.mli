(** The surviving route graph [R(G, rho)/F] (Section 2).

    Vertices are the non-faulty nodes of [G]; there is an arc from [x]
    to [y] exactly when [rho(x, y)] is defined and no vertex of the
    route (endpoints included) is faulty. For a bidirectional routing
    the result is symmetric. *)

open Ftr_graph

val graph : Routing.t -> faults:Bitset.t -> Digraph.t
(** The surviving route graph, on the original vertex numbering
    (faulty vertices remain as isolated vertices and are ignored by
    the distance functions below). *)

val distance : Routing.t -> faults:Bitset.t -> int -> int -> Metrics.distance
(** Directed distance between two non-faulty vertices in the surviving
    graph. *)

val diameter : Routing.t -> faults:Bitset.t -> Metrics.distance
(** Max distance over ordered pairs of distinct non-faulty vertices;
    [Infinite] when some pair is unreachable, [Finite 0] when fewer
    than two vertices survive. *)

val diameter_of_digraph : Digraph.t -> faults:Bitset.t -> Metrics.distance
(** Same computation given an already-built surviving graph (used by
    the multirouting variant). *)

(** {1 Batch evaluation}

    Fault injection evaluates thousands of fault sets against one
    routing; compiling the table once into flat arrays avoids the
    per-set hashtable walk and graph construction. *)

type compiled

val compile : Routing.t -> compiled

val diameter_compiled : compiled -> faults:Bitset.t -> Metrics.distance
(** Same result as {!diameter}, much faster in a loop. *)

val compiled_n : compiled -> int
(** Vertex count of the routing the table was compiled from (callers
    that only hold the compiled form need it to size fault sets). *)

val component_diameters : Routing.t -> faults:Bitset.t -> (int list * Metrics.distance) list
(** Open problem (3) of the paper: when more than [t] faults
    disconnect the network, is the routing still "well behaved" inside
    each surviving component? This reports, for every weakly-connected
    component of the surviving graph, its member list and its internal
    (directed) diameter. Components are ordered by smallest member. *)
