(** The surviving route graph [R(G, rho)/F] (Section 2).

    Vertices are the non-faulty nodes of [G]; there is an arc from [x]
    to [y] exactly when [rho(x, y)] is defined and no vertex of the
    route (endpoints included) is faulty. For a bidirectional routing
    the result is symmetric. *)

open Ftr_graph

val graph : Routing.t -> faults:Bitset.t -> Digraph.t
(** The surviving route graph, on the original vertex numbering
    (faulty vertices remain as isolated vertices and are ignored by
    the distance functions below). *)

val distance : Routing.t -> faults:Bitset.t -> int -> int -> Metrics.distance
(** Directed distance between two non-faulty vertices in the surviving
    graph. *)

val diameter : Routing.t -> faults:Bitset.t -> Metrics.distance
(** Max distance over ordered pairs of distinct non-faulty vertices;
    [Infinite] when some pair is unreachable, [Finite 0] when fewer
    than two vertices survive. *)

val diameter_of_digraph : Digraph.t -> faults:Bitset.t -> Metrics.distance
(** Same computation given an already-built surviving graph (used by
    the multirouting variant). *)

(** {1 Batch evaluation}

    Fault injection evaluates thousands of fault sets against one
    routing; compiling the table once into flat arrays avoids the
    per-set hashtable walk and graph construction. The miserly model
    keeps at most one route per ordered pair, so the surviving graph
    is one liveness bit per route: the compiled form stores the
    adjacency as a bit matrix and runs BFS a machine word at a time. *)

type compiled

val compile : Routing.t -> compiled
(** Raises [Invalid_argument] (with the route and the offending step)
    if some route traverses a pair that is not an edge of the
    routing's graph — a stale table checked against a regenerated
    graph, or inconsistent adjacency lists. *)

val compile_cached : Routing.t -> compiled
(** {!compile} through a one-slot cache keyed on the routing's
    physical identity and route count (routes can only be added, so
    the count is a sound freshness stamp). The checker entry points
    use this so one evaluation run compiles the table once instead of
    once per checker. The returned value may be shared with other
    callers: fine for {!evaluator}/{!sliced} (which own their mutable
    state), but concurrent {!diameter_compiled} callers on several
    domains must compile privately. *)

val diameter_compiled : compiled -> faults:Bitset.t -> Metrics.distance
(** Same result as {!diameter}, much faster in a loop. The fault set's
    capacity must cover the vertex range. Uses scratch space inside
    [compiled]: not safe to call concurrently from several domains on
    the same value (use one {!evaluator} per domain instead). *)

val compiled_n : compiled -> int
(** Vertex count of the routing the table was compiled from (callers
    that only hold the compiled form need it to size fault sets). *)

(** {1 The edge universe}

    The compiled table also carries the underlying graph's edge list —
    [(min, max)] pairs in lexicographic order — and a second inverted
    index (edge -> routes traversing it), so edge faults are as
    incremental as node faults. Edge faults are identified by their
    index into this list. *)

val edge_count : compiled -> int
(** Number of edges of the underlying graph. *)

val edge_pair : compiled -> int -> int * int
(** The [(min, max)] endpoints of an edge id. Raises
    [Invalid_argument] if out of range. *)

val edge_id : compiled -> int -> int -> int option
(** The id of the edge joining two vertices, in either order; [None]
    if the graph has no such edge. *)

(** {1 Incremental evaluation}

    An {!evaluator} carries the current fault set as per-route hit
    counters over an inverted index (vertex -> routes through it), so
    adding or removing one fault costs only the routes through that
    vertex — single-node swaps in the attack engine and Gray-code
    subset enumeration never rescan the route table. Evaluators share
    the immutable tables of their [compiled] source but own all
    mutable state: one evaluator per domain is safe. *)

type evaluator

val evaluator : compiled -> evaluator
(** A fresh evaluator with no faults applied. *)

val evaluator_n : evaluator -> int

val apply_fault : evaluator -> int -> unit
(** Mark a vertex faulty. Raises [Invalid_argument] if out of range or
    already faulty (a double apply would corrupt the hit counters). *)

val revert_fault : evaluator -> int -> unit
(** Undo {!apply_fault}. Raises [Invalid_argument] if out of range or
    not currently faulty. *)

val apply_edge_fault : evaluator -> int -> unit
(** Take a link down, by edge id (see {!edge_id}). The endpoints stay
    alive; only routes traversing the edge die. Raises
    [Invalid_argument] if out of range or already down. *)

val revert_edge_fault : evaluator -> int -> unit
(** Undo {!apply_edge_fault}. Raises [Invalid_argument] if out of
    range or not currently down. *)

val reset : evaluator -> unit
(** Revert every current node and edge fault (cost proportional to the
    routes they touch, not to the table). *)

val set_faults : evaluator -> int list -> unit
(** [reset] then apply each listed vertex. *)

val set_mixed_faults : evaluator -> nodes:int list -> edges:int list -> unit
(** [reset] then apply the listed vertices and edge ids. *)

val is_faulty : evaluator -> int -> bool

val faults : evaluator -> int list
(** Current node fault set in increasing order. *)

val fault_count : evaluator -> int

val is_edge_faulty : evaluator -> int -> bool

val edge_faults : evaluator -> int list
(** Current edge fault set (edge ids) in increasing order. *)

val edge_fault_count : evaluator -> int

val evaluator_diameter : evaluator -> Metrics.distance
(** Surviving diameter under the evaluator's current fault set; agrees
    with {!diameter} / {!diameter_compiled}. *)

val evaluator_diameter_over : evaluator -> targets:Bitset.t -> Metrics.distance
(** Diameter restricted to [targets]: the worst surviving distance
    between two target vertices, where any alive vertex may relay.
    [targets] must be alive under the current fault set. This is the
    comparison the paper's edge-fault reduction makes — a downed
    link's endpoints stay alive but are outside the projected
    surviving set. [Finite 0] when [targets] has at most one
    vertex. *)

val evaluator_route : evaluator -> src:int -> dst:int -> int list option
(** A shortest surviving {e route sequence} from [src] to [dst] under
    the evaluator's current fault set: the list of route endpoints
    ([src] first, [dst] last; [length - 1] fixed routes are
    traversed), or [None] when the surviving route graph disconnects
    the pair. [Some [src]] when [src = dst]. Agrees with {!distance}:
    the returned sequence traverses exactly [distance] routes. Raises
    [Invalid_argument] if an endpoint is out of range or currently
    faulty. This is the query a long-lived route server answers per
    request, so it costs one plain BFS over the live bit matrix and
    touches no scratch shared with the diameter sweeps. *)

val diameter_exceeds : evaluator -> bound:int -> bool
(** [diameter_exceeds e ~bound] is [evaluator_diameter e > Finite bound],
    but each source's BFS stops as soon as the bound is provably
    violated (tolerance checks only compare against a claimed [d], so
    they never need the exact diameter of a violating set). *)

(** {1 Bit-sliced fault-set evaluation}

    The incremental evaluator packs vertices into word bits and
    answers one fault set per sweep. Exhaustive enumeration wants the
    transpose: a {!sliced} evaluator packs up to {!lane_capacity}
    candidate fault sets into the bits ("lanes") of one word and
    answers all of them with a single word-packed BFS per source, so
    the per-level bookkeeping and the route-table walk are amortised
    across the whole batch. Verdicts are identical, lane for lane, to
    running {!evaluator_diameter} (or {!diameter_exceeds}) per set.

    A [sliced] value owns all its mutable state and shares only the
    immutable compiled tables: one per domain is safe. Typical use is
    [slice_reset]; up to [lane_capacity] times [slice_add]; then one
    [slice_diameters] or [slice_exceeds]. *)

type sliced

val lane_capacity : int
(** Fault sets per slice: one per bit of the native int
    ([Sys.int_size], 63 on 64-bit). *)

val sliced_capable : compiled -> bool
(** Whether the sliced evaluator applies: the adjacency rows must fit
    one machine word (vertex count at most [Sys.int_size]). Callers
    fall back to the scalar evaluator otherwise. *)

val sliced : compiled -> sliced
(** A fresh sliced evaluator with zero lanes loaded. Raises
    [Invalid_argument] when not {!sliced_capable}. *)

val slice_reset : sliced -> unit
(** Drop all lanes; the next {!slice_add} loads lane 0. *)

val slice_add : sliced -> nodes:int list -> edges:int list -> int
(** Load one candidate fault set (node ids and edge ids, duplicates
    allowed) into the next free lane and return its lane index. Raises
    [Invalid_argument] when the slice already holds {!lane_capacity}
    sets, or on an out-of-range vertex or edge id (same contract as
    {!set_mixed_faults}). *)

val slice_count : sliced -> int
(** Lanes currently loaded. *)

val slice_diameters : sliced -> Metrics.distance array
(** Surviving diameter of every loaded lane, indexed by lane; element
    [k] equals {!evaluator_diameter} under lane [k]'s fault set. *)

val slice_exceeds : sliced -> bound:int -> int
(** Bit mask over lanes: bit [k] is set iff lane [k]'s surviving
    diameter strictly exceeds [Finite bound] — lane-for-lane
    {!diameter_exceeds}. Like the scalar bounded sweep, lanes stop as
    soon as the verdict is provable. *)

(** {1 Sampled probes at scale}

    Million-node compact tables cannot be compiled (the engine
    materialises every route); the probe below answers bounded
    route-graph distance queries straight off [Routing.find] with O(1)
    state. *)

val probe_distance :
  Routing.t ->
  faults:Bitset.t ->
  src:int ->
  dst:int ->
  bound:int ->
  budget:int ->
  Metrics.distance
(** Distance from [src] to [dst] in the surviving route graph, probed
    only as far as [bound]: [Finite k] ([k <= bound]) when a surviving
    route sequence of [k] routes is found, [Infinite] when the
    distance provably exceeds [bound] {e or} the probe budget ran out
    before deciding — conservative in the flagging direction, never
    optimistic. A probe is one route lookup + fault test; [budget]
    caps them. Exact for [bound <= 2] whenever [budget >= 2n + 1].
    Scan order is a pure function of the pair, so verdicts are
    independent of domain scheduling. [Infinite] for faulty endpoints;
    [Finite 0] for [src = dst]. Agrees with {!distance} wherever both
    decide. *)

val component_diameters : Routing.t -> faults:Bitset.t -> (int list * Metrics.distance) list
(** Open problem (3) of the paper: when more than [t] faults
    disconnect the network, is the routing still "well behaved" inside
    each surviving component? This reports, for every weakly-connected
    component of the surviving graph, its member list and its internal
    (directed) diameter. Components are ordered by smallest member. *)
