(** Multiroutings (Section 6): more than one route per ordered pair.

    The surviving graph has an arc [x -> y] when {e any} of the routes
    attached to [(x, y)] avoids the faults. The paper's observations:
    (1) [t+1] disjoint parallel routes everywhere give surviving
    diameter 1; (2) the kernel routing plus [t+1] parallel routes
    inside the concentrator gives 3; (3) with at most two parallel
    routes, a single separating set supports a bipolar-like routing
    (Components MULT 1-3). *)

open Ftr_graph

type t

val create : Graph.t -> t
(** An empty bidirectional multirouting table. *)

val add : t -> Path.t -> unit
(** Appends the path (and its reverse for the reverse pair) unless an
    identical route is already attached to the pair. *)

val graph : t -> Graph.t

val routes : t -> int -> int -> Path.t list

val route_count : t -> int
(** Number of (pair, route) entries. *)

val max_width : t -> int
(** Largest number of parallel routes attached to one ordered pair. *)

val surviving : t -> faults:Bitset.t -> Digraph.t

val diameter : t -> faults:Bitset.t -> Metrics.distance

(** {1 Section 6 constructions} *)

val full : Graph.t -> t:int -> t
(** Observation (1): [t+1] internally-disjoint routes between every
    pair. Quadratically many flow computations; for small graphs. *)

val kernel_plus : ?m:int list -> Graph.t -> t:int -> t * int list
(** Observation (2): kernel routing augmented with [t+1] parallel
    routes between concentrator members. Returns the multirouting and
    the concentrator. *)

val mult : ?m:int list -> Graph.t -> t:int -> t * int list
(** Observation (3): Components MULT 1-3 around a single separating
    set, with the observation's budget of at most two parallel routes
    per pair enforced. (A plain separating set may have overlapping
    member neighborhoods, which would otherwise occasionally offer a
    third route; extra routes are dropped first-come.) *)
