(** Constructions whose routings are label-computed compact tables.

    The paper's constructions materialise O(n{^2}) routes; the
    structured families here (hypercube e-cube, de Bruijn shift
    routing, cube-connected cycles) compute every route from vertex
    labels in O(1) state, so a 10{^5}–10{^6}-node instance builds in
    the time it takes to build its graph. Claims are {e empirical}
    ("empirical (sampled)"): they gate the sampled checkers
    ({!Tolerance.sampled}, {!Attack.search_sampled}), not a theorem of
    the paper. Pools are the endpoints' neighborhoods (the minimum
    cuts of these families), seeding the adversarial side of the
    sampled sweep. *)

open Ftr_graph

val hypercube : ?bidirectional:bool -> int -> Construction.t
(** E-cube routing on the [d]-cube ([2^d] vertices, [d] in [1, 20]),
    as {!Compact.hypercube}. *)

val de_bruijn : int -> Construction.t
(** Shift routing on the binary de Bruijn graph ([2^d] vertices, [d]
    in [2, 24]), as {!Compact.de_bruijn}. *)

val ccc : int -> Construction.t
(** Cycle-walk routing on the cube-connected cycles ([d * 2^d]
    vertices, [d] in [3, 20)), as {!Compact.ccc}. *)

val tree : ?name:string -> Graph.t -> root:int -> Construction.t
(** BFS-tree interval routing on an arbitrary graph, as
    {!Compact.bfs_tree}: O(n) words for all [n(n-1)] in-component
    routes. No claims — a tree routing tolerates no internal fault. *)

val of_spec : string -> (Construction.t, string) result
(** Parse ["hypercube:D"], ["hypercube:D:bi"], ["debruijn:D"] or
    ["ccc:D"] — the CLI vocabulary of [ftr compact]. *)
