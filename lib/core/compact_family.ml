open Ftr_graph

let neighborhood_pools g =
  let n = Graph.n g in
  if n = 0 then []
  else
    let pool v = Array.to_list (Graph.neighbors g v) in
    if n = 1 then [ pool 0 ] else [ pool 0; pool (n - 1) ]

let make ~name ~claims g kind compact =
  {
    Construction.name;
    routing = Routing.of_compact g kind compact;
    concentrator = [];
    structure = Construction.Unstructured;
    pools = neighborhood_pools g;
    claims;
  }

let hypercube ?(bidirectional = false) d =
  let g = Families.hypercube d in
  let kind = if bidirectional then Routing.Bidirectional else Routing.Unidirectional in
  let name =
    Printf.sprintf "compact-ecube%s(Q%d)" (if bidirectional then "-bi" else "") d
  in
  make ~name
    ~claims:
      [
        Construction.claim ~bound:2 ~faults:1 "empirical (sampled)";
        Construction.claim ~bound:4 ~faults:(max 1 (d - 1)) "empirical (sampled)";
      ]
    g kind
    (Compact.hypercube ~bidirectional d)

let de_bruijn d =
  let g = Families.de_bruijn d in
  make
    ~name:(Printf.sprintf "compact-debruijn(DB%d)" d)
    ~claims:[ Construction.claim ~bound:4 ~faults:1 "empirical (sampled)" ]
    g Routing.Unidirectional (Compact.de_bruijn d)

let ccc d =
  let g = Families.ccc d in
  make
    ~name:(Printf.sprintf "compact-ccc(CCC%d)" d)
    ~claims:[ Construction.claim ~bound:4 ~faults:2 "empirical (sampled)" ]
    g Routing.Unidirectional (Compact.ccc d)

let tree ?(name = "compact-tree") g ~root =
  let n = Graph.n g in
  if root < 0 || root >= n then invalid_arg "Compact_family.tree: root out of range";
  {
    Construction.name;
    routing = Routing.of_compact g Routing.Unidirectional (Compact.bfs_tree g ~root);
    concentrator = [ root ];
    structure = Construction.Unstructured;
    pools = (if n = 0 then [] else [ Array.to_list (Graph.neighbors g root) ]);
    (* A tree routing tolerates no internal fault; no claims. *)
    claims = [];
  }

let of_spec s =
  match String.split_on_char ':' (String.trim s) with
  | [ "hypercube"; d ] | [ "hypercube"; d; "uni" ] -> (
      match int_of_string_opt d with
      | Some d when d >= 1 && d <= 20 -> Ok (hypercube d)
      | _ -> Error "hypercube dimension must be in [1, 20]")
  | [ "hypercube"; d; "bi" ] -> (
      match int_of_string_opt d with
      | Some d when d >= 1 && d <= 20 -> Ok (hypercube ~bidirectional:true d)
      | _ -> Error "hypercube dimension must be in [1, 20]")
  | [ "debruijn"; d ] -> (
      match int_of_string_opt d with
      | Some d when d >= 2 && d <= 24 -> Ok (de_bruijn d)
      | _ -> Error "de Bruijn dimension must be in [2, 24]")
  | [ "ccc"; d ] -> (
      match int_of_string_opt d with
      | Some d when d >= 3 && d < 20 -> Ok (ccc d)
      | _ -> Error "CCC dimension must be in [3, 20)")
  | _ ->
      Error
        (Printf.sprintf
           "unknown compact family %S (expected hypercube:D[:bi], debruijn:D or \
            ccc:D)"
           s)
