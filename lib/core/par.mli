(** A persistent Domain-based worker pool for the evaluation engine.

    Workers are spawned on first use and parked between jobs, so the
    many short parallel sections issued by {!Tolerance} and {!Attack}
    pay no per-call spawn cost. Scheduling is work-stealing from a
    shared counter; results are delivered in task order, so callers
    that merge them in order get [jobs]-independent answers. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the default for every
    [?jobs] parameter in the library. *)

val run :
  jobs:int -> ntasks:int -> init:(unit -> 'w) -> task:('w -> int -> 'r) -> 'r array
(** [run ~jobs ~ntasks ~init ~task] evaluates [task state i] for every
    [i] in [0, ntasks) and returns the results indexed by task. At most
    [jobs] domains participate (the calling domain is one of them);
    each participating domain gets its own [state] from [init] on its
    first task, so mutable scratch (e.g. a {!Surviving.evaluator}) is
    never shared. With [jobs <= 1], or when called from inside another
    parallel section, everything runs sequentially on the caller with a
    single [init] state. A task's exception is re-raised in the caller
    once the job has drained. *)

val map : jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~jobs f items] is {!run} over [items] with stateless tasks. *)

val chunk :
  jobs:int ->
  count:int ->
  init:(unit -> 'w) ->
  task:('w -> lo:int -> hi:int -> 'r) ->
  'r array
(** [chunk ~jobs ~count ~init ~task] covers [0, count) with contiguous
    blocks [lo, hi) — at most 32 of them, sized by [count] alone so
    the [par.tasks] counter stays [jobs]-independent — and runs [task]
    on each through {!run}. Block results come back in range order, so
    callers whose merge is insensitive to block boundaries (ordered
    merges over contiguous chunks) get [jobs]-independent answers. The
    mean block size is reported on the [par.chunk_mean_task_size]
    gauge. Use this instead of per-item {!run} tasks when items are
    sub-millisecond: the pool's per-task wake/sync cost otherwise
    dominates. *)

val shutdown : unit -> unit
(** Join all pool workers (also installed as an [at_exit] hook; only
    needed explicitly by tests that count live domains). *)
