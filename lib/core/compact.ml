open Ftr_graph

(* Flat re-encoding of an explicit table: routes grouped by source,
   sorted by destination within a source, vertex sequences concatenated
   into one int array. Four flat arrays instead of O(routes) boxed
   paths and hashtable buckets. *)
type packed = {
  p_src_off : int array;  (* length n + 1: entry slice per source *)
  p_dst : int array;      (* destination per entry, sorted per slice *)
  p_path_off : int array; (* length entries + 1: slice into p_vert *)
  p_vert : int array;     (* concatenated route vertex sequences *)
}

(* Rooted-forest routing answered from Euler intervals: next hop toward
   [v] from inside the tree is the parent unless [v] lies in the
   subtree of some child, found by binary search over children ordered
   by preorder interval (the partition-map idiom: children of a vertex
   partition its tin-range, and a dst index selects its cell). *)
type tree = {
  t_parent : int array; (* -1 at roots *)
  t_tin : int array;    (* preorder index *)
  t_tout : int array;   (* max preorder index in subtree *)
  t_child_off : int array;
  t_child : int array;  (* children in preorder (= tin) order *)
}

type scheme =
  | Packed of packed
  | Hypercube of { d : int; bi : bool }
  | De_bruijn of { d : int }
  | Ccc of { d : int }
  | Tree of tree

type t = { n : int; count : int; scheme : scheme }

let n t = t.n
let route_count t = t.count

(* ------------------------------------------------------------------ *)
(* Label-computed routes for the structured families. Each is a pure
   function of the two vertex labels — nothing per-pair is stored. *)

(* Twin of Hypercube_routing.ecube_path: fix differing bits from bit 0
   upward. *)
let ecube_verts ~d ~src ~dst =
  let len = ref 1 in
  let diff = src lxor dst in
  for bit = 0 to d - 1 do
    if diff land (1 lsl bit) <> 0 then incr len
  done;
  let out = Array.make !len src in
  let j = ref 1 in
  let cur = ref src in
  for bit = 0 to d - 1 do
    let mask = 1 lsl bit in
    if !cur land mask <> dst land mask then begin
      cur := !cur lxor mask;
      out.(!j) <- !cur;
      incr j
    end
  done;
  out

(* Cut cycles out of a generated walk, keeping the first occurrence of
   each vertex. Adjacency of consecutive survivors is preserved: when
   positions i+1..j are dropped because seq.(j) = seq.(i), the next
   kept vertex was generated from an occurrence of the same label. *)
let loop_erase seq =
  let pos = Hashtbl.create 16 in
  let out = Array.make (Array.length seq) 0 in
  let len = ref 0 in
  Array.iter
    (fun v ->
      match Hashtbl.find_opt pos v with
      | Some i ->
          for j = i + 1 to !len - 1 do
            Hashtbl.remove pos out.(j)
          done;
          len := i + 1
      | None ->
          Hashtbl.replace pos v !len;
          out.(!len) <- v;
          incr len)
    seq;
  Array.sub out 0 !len

(* Shift-in route on the binary de Bruijn graph: overlap the longest
   suffix of src with a prefix of dst, then shift in the remaining
   bits of dst high-to-low; loop-erase to restore simplicity (the raw
   walk may revisit labels, e.g. around the 0 and 2^d - 1 self-loop
   words). *)
let de_bruijn_verts ~d ~src ~dst =
  let n = 1 lsl d in
  let o = ref (d - 1) in
  while !o > 0 && src land ((1 lsl !o) - 1) <> dst lsr (d - !o) do
    decr o
  done;
  let steps = d - !o in
  let seq = Array.make (steps + 1) src in
  let cur = ref src in
  for j = 1 to steps do
    let b = (dst lsr (steps - j)) land 1 in
    cur := ((!cur lsl 1) land (n - 1)) lor b;
    seq.(j) <- !cur
  done;
  loop_erase seq

(* Cube-connected cycles, vertex (i, x) = x * d + i. Phase 1 walks the
   small cycle forward from the source position, taking the dimension
   edge at every position where the row words differ, stopping at the
   last needed crossing; phase 2 walks the shorter way around the
   cycle to the destination position. Distinct row words keep the two
   phases vertex-disjoint. *)
let ccc_verts ~d ~src ~dst =
  let id i x = (x * d) + i in
  let si = src mod d and sx = src / d in
  let di = dst mod d and dx = dst / d in
  let diff = sx lxor dx in
  let acc = ref [ id si sx ] in
  let pos = ref si and cur_x = ref sx in
  if diff <> 0 then begin
    let last_off = ref 0 in
    for t = 0 to d - 1 do
      if diff land (1 lsl ((si + t) mod d)) <> 0 then last_off := t
    done;
    for t = 0 to !last_off do
      let k = (si + t) mod d in
      if t > 0 then acc := id k !cur_x :: !acc;
      pos := k;
      if diff land (1 lsl k) <> 0 then begin
        cur_x := !cur_x lxor (1 lsl k);
        acc := id k !cur_x :: !acc
      end
    done
  end;
  let fwd = (di - !pos + d) mod d and bwd = (!pos - di + d) mod d in
  let step = if fwd <= bwd then 1 else d - 1 in
  while !pos <> di do
    pos := (!pos + step) mod d;
    acc := id !pos !cur_x :: !acc
  done;
  Array.of_list (List.rev !acc)

(* ------------------------------------------------------------------ *)
(* Tree interval scheme. *)

let tree_in_subtree tr anc v =
  tr.t_tin.(anc) <= tr.t_tin.(v) && tr.t_tout.(v) <= tr.t_tout.(anc)

(* The child of [u] whose preorder interval contains tin v, or -1.
   Children are in increasing-tin order, so their intervals partition
   [tin u + 1, tout u] and binary search lands in the right cell. *)
let tree_child_toward tr u v =
  let tv = tr.t_tin.(v) in
  let lo = ref tr.t_child_off.(u) and hi = ref (tr.t_child_off.(u + 1) - 1) in
  let found = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let c = tr.t_child.(mid) in
    if tv < tr.t_tin.(c) then hi := mid - 1
    else if tv > tr.t_tout.(c) then lo := mid + 1
    else begin
      found := c;
      lo := !hi + 1
    end
  done;
  !found

let tree_same_component tr u v =
  (* ascend u to its root, then interval-test v *)
  let r = ref u in
  while tr.t_parent.(!r) >= 0 do
    r := tr.t_parent.(!r)
  done;
  tree_in_subtree tr !r v

let tree_verts tr u v =
  if not (tree_same_component tr u v) then None
  else begin
    (* up from u while v is outside the current subtree, then descend
       by interval search: each step picks the child cell whose
       preorder interval contains tin v *)
    let up = ref [] and cur = ref u in
    while not (tree_in_subtree tr !cur v) do
      up := !cur :: !up;
      cur := tr.t_parent.(!cur)
    done;
    let down = ref [] in
    let w = ref !cur in
    while !w <> v do
      let c = tree_child_toward tr !w v in
      if c < 0 then invalid_arg "Compact: corrupt tree intervals";
      down := c :: !down;
      w := c
    done;
    Some (Array.of_list (List.rev_append !up (!cur :: List.rev !down)))
  end

(* ------------------------------------------------------------------ *)

let find t src dst =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n || src = dst then None
  else
    match t.scheme with
    | Packed p ->
        let lo = ref p.p_src_off.(src) and hi = ref (p.p_src_off.(src + 1) - 1) in
        let entry = ref (-1) in
        while !lo <= !hi do
          let mid = (!lo + !hi) / 2 in
          let d = p.p_dst.(mid) in
          if d = dst then begin
            entry := mid;
            lo := !hi + 1
          end
          else if d < dst then lo := mid + 1
          else hi := mid - 1
        done;
        if !entry < 0 then None
        else
          let e = !entry in
          Some
            (Path.of_array
               (Array.sub p.p_vert p.p_path_off.(e)
                  (p.p_path_off.(e + 1) - p.p_path_off.(e))))
    | Hypercube { d; bi } ->
        if bi && src > dst then
          Some (Path.rev (Path.of_array (ecube_verts ~d ~src:dst ~dst:src)))
        else Some (Path.of_array (ecube_verts ~d ~src ~dst))
    | De_bruijn { d } -> Some (Path.of_array (de_bruijn_verts ~d ~src ~dst))
    | Ccc { d } -> Some (Path.of_array (ccc_verts ~d ~src ~dst))
    | Tree tr -> Option.map Path.of_array (tree_verts tr src dst)

let mem t src dst =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n || src = dst then false
  else
    match t.scheme with
    | Packed _ | Tree _ -> Option.is_some (find t src dst)
    | Hypercube _ | De_bruijn _ | Ccc _ -> true

let iter f t =
  match t.scheme with
  | Packed p ->
      for src = 0 to t.n - 1 do
        for e = p.p_src_off.(src) to p.p_src_off.(src + 1) - 1 do
          f src p.p_dst.(e)
            (Path.of_array
               (Array.sub p.p_vert p.p_path_off.(e)
                  (p.p_path_off.(e + 1) - p.p_path_off.(e))))
        done
      done
  | Hypercube _ | De_bruijn _ | Ccc _ | Tree _ ->
      for src = 0 to t.n - 1 do
        for dst = 0 to t.n - 1 do
          if src <> dst then
            match find t src dst with Some p -> f src dst p | None -> ()
        done
      done

let words_of_arrays arrays =
  List.fold_left (fun acc a -> acc + Array.length a + 1) 0 arrays

let bytes t =
  let words =
    match t.scheme with
    | Packed p -> words_of_arrays [ p.p_src_off; p.p_dst; p.p_path_off; p.p_vert ]
    | Hypercube _ | De_bruijn _ | Ccc _ -> 2
    | Tree tr ->
        words_of_arrays
          [ tr.t_parent; tr.t_tin; tr.t_tout; tr.t_child_off; tr.t_child ]
  in
  (words + 4) * (Sys.word_size / 8)

let scheme_name t =
  match t.scheme with
  | Packed _ -> "packed"
  | Hypercube { bi; _ } -> if bi then "hypercube-bi" else "hypercube"
  | De_bruijn _ -> "debruijn"
  | Ccc _ -> "ccc"
  | Tree _ -> "tree"

(* ------------------------------------------------------------------ *)
(* Constructors. *)

let pack ~n iter_routes =
  let entries = ref [] in
  let count = ref 0 in
  iter_routes (fun src dst p ->
      if src < 0 || src >= n || dst < 0 || dst >= n then
        invalid_arg "Compact.pack: route endpoint out of range";
      entries := (src, dst, Path.to_array p) :: !entries;
      incr count);
  let arr = Array.of_list !entries in
  Array.sort
    (fun (s1, d1, _) (s2, d2, _) ->
      if s1 <> s2 then Int.compare s1 s2 else Int.compare d1 d2)
    arr;
  let entries_n = Array.length arr in
  let p_src_off = Array.make (n + 1) 0 in
  Array.iter (fun (s, _, _) -> p_src_off.(s + 1) <- p_src_off.(s + 1) + 1) arr;
  for i = 0 to n - 1 do
    p_src_off.(i + 1) <- p_src_off.(i + 1) + p_src_off.(i)
  done;
  let p_dst = Array.make (max 1 entries_n) 0 in
  let p_path_off = Array.make (entries_n + 1) 0 in
  Array.iteri
    (fun e (s, d, verts) ->
      if e > 0 then begin
        let s', d', _ = arr.(e - 1) in
        if s = s' && d = d' then
          invalid_arg
            (Printf.sprintf "Compact.pack: duplicate route for (%d,%d)" s d)
      end;
      p_dst.(e) <- d;
      p_path_off.(e + 1) <- p_path_off.(e) + Array.length verts)
    arr;
  let p_vert = Array.make (max 1 p_path_off.(entries_n)) 0 in
  Array.iteri
    (fun e (_, _, verts) ->
      Array.blit verts 0 p_vert p_path_off.(e) (Array.length verts))
    arr;
  {
    n;
    count = entries_n;
    scheme = Packed { p_src_off; p_dst; p_path_off; p_vert };
  }

let all_pairs_count n = n * (n - 1)

let hypercube ?(bidirectional = false) d =
  if d < 1 || d > 20 then invalid_arg "Compact.hypercube: d out of [1,20]";
  let n = 1 lsl d in
  { n; count = all_pairs_count n; scheme = Hypercube { d; bi = bidirectional } }

let de_bruijn d =
  if d < 2 || d > 24 then invalid_arg "Compact.de_bruijn: d out of [2,24]";
  let n = 1 lsl d in
  { n; count = all_pairs_count n; scheme = De_bruijn { d } }

let ccc d =
  if d < 3 || d >= 20 then invalid_arg "Compact.ccc: d out of [3,20)";
  let n = d * (1 lsl d) in
  { n; count = all_pairs_count n; scheme = Ccc { d } }

let tree_of_parents ~parent =
  let n = Array.length parent in
  let t_child_off = Array.make (n + 1) 0 in
  Array.iteri
    (fun v p ->
      if p >= n || (p < 0 && p <> -1) then
        invalid_arg "Compact.tree_of_parents: parent out of range";
      if p = v then invalid_arg "Compact.tree_of_parents: self-parent";
      if p >= 0 then t_child_off.(p + 1) <- t_child_off.(p + 1) + 1)
    parent;
  for v = 0 to n - 1 do
    t_child_off.(v + 1) <- t_child_off.(v + 1) + t_child_off.(v)
  done;
  let t_child = Array.make (max 1 t_child_off.(n)) 0 in
  let cursor = Array.copy t_child_off in
  (* scanning v ascending keeps each child row sorted by child id;
     preorder below visits rows left to right, so t_child is also in
     tin order *)
  Array.iteri
    (fun v p ->
      if p >= 0 then begin
        t_child.(cursor.(p)) <- v;
        cursor.(p) <- cursor.(p) + 1
      end)
    parent;
  let t_tin = Array.make n (-1) in
  let t_tout = Array.make n (-1) in
  let clock = ref 0 in
  let stack = Array.make (max 1 n) 0 in
  let routable = ref 0 in
  for r = 0 to n - 1 do
    if parent.(r) = -1 then begin
      (* iterative preorder; tout filled on the way back via a second
         sweep over the subtree interval *)
      let top = ref 0 in
      stack.(0) <- r;
      top := 1;
      let first = !clock in
      while !top > 0 do
        decr top;
        let v = stack.(!top) in
        t_tin.(v) <- !clock;
        incr clock;
        (* push children in reverse so preorder visits them in id order *)
        for i = t_child_off.(v + 1) - 1 downto t_child_off.(v) do
          stack.(!top) <- t_child.(i);
          incr top
        done
      done;
      let size = !clock - first in
      routable := !routable + (size * (size - 1))
    end
  done;
  if !clock <> n then
    invalid_arg "Compact.tree_of_parents: parent array contains a cycle";
  (* tout.(v) = max tin in subtree(v): process vertices in reverse tin
     order, propagating to parents *)
  let by_tin = Array.make n 0 in
  Array.iteri (fun v tin -> by_tin.(tin) <- v) t_tin;
  for i = n - 1 downto 0 do
    let v = by_tin.(i) in
    if t_tout.(v) < t_tin.(v) then t_tout.(v) <- t_tin.(v);
    let p = parent.(v) in
    if p >= 0 && t_tout.(p) < t_tout.(v) then t_tout.(p) <- t_tout.(v)
  done;
  {
    n;
    count = !routable;
    scheme = Tree { t_parent = Array.copy parent; t_tin; t_tout; t_child_off; t_child };
  }

let bfs_tree g ~root =
  let csr = Graph.csr g in
  let off = Graph.Csr.offsets csr and tgt = Graph.Csr.targets csr in
  let n = Graph.Csr.n csr in
  let parent = Array.make n (-1) in
  let seen = Array.make (max 1 n) false in
  let queue = Array.make (max 1 n) 0 in
  let grow src =
    seen.(src) <- true;
    queue.(0) <- src;
    let head = ref 0 and tail = ref 1 in
    while !head < !tail do
      let u = queue.(!head) in
      incr head;
      for i = off.(u) to off.(u + 1) - 1 do
        let v = tgt.(i) in
        if not seen.(v) then begin
          seen.(v) <- true;
          parent.(v) <- u;
          queue.(!tail) <- v;
          incr tail
        end
      done
    done
  in
  if n > 0 then begin
    if root < 0 || root >= n then invalid_arg "Compact.bfs_tree: root out of range";
    grow root;
    for v = 0 to n - 1 do
      if not seen.(v) then grow v
    done
  end;
  tree_of_parents ~parent

(* ------------------------------------------------------------------ *)
(* Specs: the one-token serial form used by Routing_io headers. *)

let spec t =
  match t.scheme with
  | Packed _ -> None
  | Hypercube { d; bi } ->
      Some (Printf.sprintf "hypercube:%d%s" d (if bi then ":bi" else ""))
  | De_bruijn { d } -> Some (Printf.sprintf "debruijn:%d" d)
  | Ccc { d } -> Some (Printf.sprintf "ccc:%d" d)
  | Tree tr ->
      Some
        (Printf.sprintf "tree:%s"
           (String.concat ","
              (Array.to_list (Array.map string_of_int tr.t_parent))))

let of_spec ~n s =
  let check c =
    if c.n <> n then
      Error (Printf.sprintf "compact spec is for n=%d, graph has n=%d" c.n n)
    else Ok c
  in
  let with_int name rest k =
    match int_of_string_opt rest with
    | Some d -> ( try check (k d) with Invalid_argument m -> Error m)
    | None -> Error (Printf.sprintf "bad %s dimension %S" name rest)
  in
  match String.split_on_char ':' s with
  | [ "hypercube"; d ] -> with_int "hypercube" d (fun d -> hypercube d)
  | [ "hypercube"; d; "bi" ] ->
      with_int "hypercube" d (fun d -> hypercube ~bidirectional:true d)
  | [ "debruijn"; d ] -> with_int "debruijn" d de_bruijn
  | [ "ccc"; d ] -> with_int "ccc" d ccc
  | [ "tree"; parents ] -> (
      let fields = String.split_on_char ',' parents in
      let ok = ref true in
      let parent =
        Array.of_list
          (List.map
             (fun f ->
               match int_of_string_opt f with
               | Some v -> v
               | None ->
                   ok := false;
                   0)
             fields)
      in
      if not !ok then Error "bad tree parent list"
      else
        try check (tree_of_parents ~parent)
        with Invalid_argument m -> Error m)
  | _ -> Error (Printf.sprintf "unknown compact scheme %S" s)
