(** Property-driven construction selection.

    Given a graph, detect which of the paper's structural properties
    hold and build the routing with the best guaranteed bound:
    tri-circular (4) or unidirectional bipolar (4), then small
    tri-circular (5) or bidirectional bipolar (5), then circular (6),
    then the kernel fallback (max(2t, 4)). *)

open Ftr_graph

type strategy =
  | Tri_circular_full
  | Bipolar_uni
  | Tri_circular_small
  | Bipolar_bi
  | Circular
  | Kernel

val strategy_name : strategy -> string

type choice = {
  strategy : strategy;
  construction : Construction.t;
  t : int;  (** connectivity minus one *)
}

val auto :
  ?rng:Random.State.t ->
  ?prefer_bidirectional:bool ->
  Graph.t ->
  choice
(** Computes the vertex connectivity, searches for a neighborhood set
    (randomized-restart greedy when [rng] is given) and two-trees
    roots, and applies the best applicable construction. With
    [prefer_bidirectional] (default false) the unidirectional bipolar
    routing is skipped. Raises [Invalid_argument] on graphs with
    connectivity below 1 or on complete graphs (where no separating
    set exists for the kernel fallback). *)

val applicable : Graph.t -> t:int -> strategy list
(** Which strategies the graph's structure admits (always ends with
    [Kernel] for non-complete graphs). *)
