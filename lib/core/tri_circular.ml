open Ftr_graph

type variant = Full | Small

let required_k ~t ~variant =
  match variant with
  | Full -> (6 * t) + 9
  | Small -> 3 * Circular.required_k ~t

let variant_name = function Full -> "full" | Small -> "small"

let make ?m g ~t ~variant =
  let m = match m with Some m -> m | None -> Independent.greedy g in
  let usable = 3 * (List.length m / 3) in
  if usable < required_k ~t ~variant then
    invalid_arg
      (Printf.sprintf
         "Tri_circular.make: need a neighborhood set of size >= %d, got %d usable"
         (required_k ~t ~variant)
         usable);
  let m = List.filteri (fun i _ -> i < usable) m in
  if not (Independent.is_neighborhood_set g m) then
    invalid_arg "Tri_circular.make: M is not a neighborhood set";
  let ring_size = usable / 3 in
  let members = Array.of_list m in
  (* Ring j holds members [j*ring_size, (j+1)*ring_size). *)
  let gamma j i =
    Array.to_list (Graph.neighbors g members.((j * ring_size) + i))
  in
  let n = Graph.n g in
  (* owner.(x) = (ring, index) when x lies in some Gamma^j_i. *)
  let owner = Array.make n None in
  for j = 0 to 2 do
    for i = 0 to ring_size - 1 do
      List.iter (fun x -> owner.(x) <- Some (j, i)) (gamma j i)
    done
  done;
  let routing = Routing.create g Routing.Bidirectional in
  let tree x targets =
    Tree_routing.add_to routing (Tree_routing.make g ~src:x ~targets ~k:(t + 1))
  in
  let within_window =
    match variant with
    | Full -> t + 1
    | Small -> ((ring_size + 1) / 2) - 1
  in
  Graph.iter_vertices
    (fun x ->
      match owner.(x) with
      | None ->
          (* Component T-CIRC 1: outside Gamma, route to every set of
             every ring. *)
          for j = 0 to 2 do
            for i = 0 to ring_size - 1 do
              tree x (gamma j i)
            done
          done
      | Some (j, i) ->
          (* Component T-CIRC 2: within the own ring. *)
          for k = 1 to within_window do
            tree x (gamma j ((i + k) mod ring_size))
          done;
          (* Component T-CIRC 3: to every set of the next ring. *)
          for k = 0 to ring_size - 1 do
            tree x (gamma ((j + 1) mod 3) k)
          done)
    g;
  (* Component T-CIRC 4: direct edge routes. *)
  Routing.add_edge_routes routing;
  let gammas =
    List.concat_map (fun j -> List.init ring_size (fun i -> gamma j i)) [ 0; 1; 2 ]
  in
  let claims =
    match variant with
    | Full -> [ Construction.claim ~bound:4 ~faults:t "Theorem 13" ]
    | Small -> [ Construction.claim ~bound:5 ~faults:t "Remark 14" ]
  in
  {
    Construction.name =
      Printf.sprintf "tri-circular/%s(K=%d)" (variant_name variant) usable;
    routing;
    concentrator = m;
    structure =
      Construction.Tri_rings { members = m; ring = ring_size; within_window };
    pools = (m :: gammas) @ [ m @ List.sort_uniq compare (List.concat gammas) ];
    claims;
  }
