open Ftr_graph

let graph routing ~faults =
  let g = Routing.graph routing in
  let b = Digraph.Builder.create (Graph.n g) in
  Routing.iter
    (fun src dst p -> if not (Path.hits p faults) then Digraph.Builder.add_arc b src dst)
    routing;
  Digraph.Builder.to_digraph b

let alive faults v = not (Bitset.mem faults v)

let distance routing ~faults x y =
  if Bitset.mem faults x || Bitset.mem faults y then
    invalid_arg "Surviving.distance: faulty endpoint";
  let dg = graph routing ~faults in
  let dist = Digraph.bfs dg ~allowed:(alive faults) x in
  if dist.(y) < 0 then Metrics.Infinite else Metrics.Finite dist.(y)

let diameter_of_digraph dg ~faults =
  let n = Digraph.n dg in
  let worst = ref (Metrics.Finite 0) in
  for x = 0 to n - 1 do
    if alive faults x then begin
      let dist = Digraph.bfs dg ~allowed:(alive faults) x in
      for y = 0 to n - 1 do
        if y <> x && alive faults y then
          let d = if dist.(y) < 0 then Metrics.Infinite else Metrics.Finite dist.(y) in
          worst := Metrics.max_distance !worst d
      done
    end
  done;
  !worst

let diameter routing ~faults = diameter_of_digraph (graph routing ~faults) ~faults

(* Routes grouped by source in CSR layout, so the per-fault-set work
   is two allocation-free passes over flat arrays. *)
type compiled = {
  n : int;
  row_start : int array; (* length n+1; routes of src v are row_start.(v) .. *)
  dsts : int array; (* destination per route, CSR order *)
  paths : int array array; (* vertex sequence per route, CSR order *)
  (* scratch, reused across calls *)
  live : int array; (* 0/1 per route *)
  out_deg : int array;
  succ_start : int array;
  succ : int array;
  dist : int array;
  queue : int array;
}

let compile routing =
  let n = Graph.n (Routing.graph routing) in
  let acc = ref [] in
  let count = Array.make (n + 1) 0 in
  Routing.iter
    (fun src dst p ->
      acc := (src, dst, Path.to_array p) :: !acc;
      count.(src) <- count.(src) + 1)
    routing;
  let row_start = Array.make (n + 1) 0 in
  for v = 1 to n do
    row_start.(v) <- row_start.(v - 1) + count.(v - 1)
  done;
  let total = row_start.(n) in
  let fill = Array.copy row_start in
  let dsts = Array.make total 0 in
  let paths = Array.make total [||] in
  List.iter
    (fun (src, dst, p) ->
      let i = fill.(src) in
      fill.(src) <- i + 1;
      dsts.(i) <- dst;
      paths.(i) <- p)
    !acc;
  {
    n;
    row_start;
    dsts;
    paths;
    live = Array.make total 0;
    out_deg = Array.make n 0;
    succ_start = Array.make (n + 1) 0;
    succ = Array.make total 0;
    dist = Array.make n (-1);
    queue = Array.make n 0;
  }

let compiled_n c = c.n

let diameter_compiled c ~faults =
  let total = Array.length c.dsts in
  (* Pass 1: which routes survive. *)
  for i = 0 to total - 1 do
    let p = c.paths.(i) in
    let len = Array.length p in
    let rec clean j = j >= len || ((not (Bitset.mem faults p.(j))) && clean (j + 1)) in
    c.live.(i) <- (if clean 0 then 1 else 0)
  done;
  (* Pass 2: CSR adjacency of the surviving graph. *)
  Array.fill c.out_deg 0 c.n 0;
  for v = 0 to c.n - 1 do
    for i = c.row_start.(v) to c.row_start.(v + 1) - 1 do
      c.out_deg.(v) <- c.out_deg.(v) + c.live.(i)
    done
  done;
  c.succ_start.(0) <- 0;
  for v = 1 to c.n do
    c.succ_start.(v) <- c.succ_start.(v - 1) + c.out_deg.(v - 1)
  done;
  for v = 0 to c.n - 1 do
    let k = ref c.succ_start.(v) in
    for i = c.row_start.(v) to c.row_start.(v + 1) - 1 do
      if c.live.(i) = 1 then begin
        c.succ.(!k) <- c.dsts.(i);
        incr k
      end
    done
  done;
  let alive_count = ref 0 in
  for v = 0 to c.n - 1 do
    if not (Bitset.mem faults v) then incr alive_count
  done;
  if !alive_count <= 1 then Metrics.Finite 0
  else begin
    let dist = c.dist and queue = c.queue in
    let worst = ref 0 in
    let disconnected = ref false in
    let v = ref 0 in
    while (not !disconnected) && !v < c.n do
      if not (Bitset.mem faults !v) then begin
        Array.fill dist 0 c.n (-1);
        dist.(!v) <- 0;
        queue.(0) <- !v;
        let head = ref 0 and tail = ref 1 in
        while !head < !tail do
          let u = queue.(!head) in
          incr head;
          for k = c.succ_start.(u) to c.succ_start.(u + 1) - 1 do
            let w = c.succ.(k) in
            if dist.(w) < 0 then begin
              dist.(w) <- dist.(u) + 1;
              queue.(!tail) <- w;
              incr tail
            end
          done
        done;
        if !tail < !alive_count then disconnected := true
        else worst := max !worst dist.(queue.(!tail - 1))
      end;
      incr v
    done;
    if !disconnected then Metrics.Infinite else Metrics.Finite !worst
  end

let component_diameters routing ~faults =
  let dg = graph routing ~faults in
  let n = Digraph.n dg in
  (* Weak components: union arcs in both directions. *)
  let undirected =
    Graph.of_edges ~n
      (List.concat
         (List.init n (fun u ->
              Array.to_list (Array.map (fun v -> (u, v)) (Digraph.succ dg u)))))
  in
  let seen = Bitset.create n in
  let components = ref [] in
  for v = 0 to n - 1 do
    if alive faults v && not (Bitset.mem seen v) then begin
      let comp =
        Traversal.component_of undirected ~allowed:(alive faults) v
      in
      Bitset.union_into seen comp;
      let members = Bitset.elements comp in
      (* Directed diameter inside the component. *)
      let inside u = Bitset.mem comp u in
      let worst = ref (Metrics.Finite 0) in
      List.iter
        (fun x ->
          let dist = Digraph.bfs dg ~allowed:inside x in
          List.iter
            (fun y ->
              if y <> x then
                let d =
                  if dist.(y) < 0 then Metrics.Infinite else Metrics.Finite dist.(y)
                in
                worst := Metrics.max_distance !worst d)
            members)
        members;
      components := (members, !worst) :: !components
    end
  done;
  List.rev !components
