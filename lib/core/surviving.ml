open Ftr_graph
module Obs = Ftr_obs.Obs

(* Counters obey the Obs determinism rule: each one counts work that
   is a function of the requested fault sets only, never of how Par
   scheduled them (in particular, [revert]s and evaluator creations
   are NOT counted — both depend on per-domain leftover state). *)
let c_compile_calls = Obs.counter "engine.compile.calls"
let c_compile_routes = Obs.counter "engine.compile.routes"
let c_compile_edges = Obs.counter "engine.compile.edges"
let c_apply_node = Obs.counter "engine.apply_node.calls"
let c_apply_node_routes = Obs.counter "engine.apply_node.routes_touched"
let c_apply_edge = Obs.counter "engine.apply_edge.calls"
let c_apply_edge_routes = Obs.counter "engine.apply_edge.routes_touched"
let c_diameter_evals = Obs.counter "engine.diameter.evals"
let c_bfs_word_ops = Obs.counter "engine.bfs.word_ops"
let c_exceeds_calls = Obs.counter "engine.exceeds.calls"
let c_exceeds_early = Obs.counter "engine.exceeds.early_exits"

(* Bit-sliced engine counters. Slices are cut from the canonical
   enumeration order by the callers (Tolerance), never from the Par
   chunking, and lane retirement is a function of the slice contents
   and the fixed source order alone — all three are schedule-
   independent, so they are counters, not gauges. *)
let c_slices = Obs.counter "engine.sliced.slices"
let c_slice_lanes = Obs.counter "engine.sliced.lanes"
let c_lanes_retired = Obs.counter "engine.sliced.lanes_retired"

let graph routing ~faults =
  let g = Routing.graph routing in
  let b = Digraph.Builder.create (Graph.n g) in
  Routing.iter
    (fun src dst p -> if not (Path.hits p faults) then Digraph.Builder.add_arc b src dst)
    routing;
  Digraph.Builder.to_digraph b

let alive faults v = not (Bitset.mem faults v)

let distance routing ~faults x y =
  if Bitset.mem faults x || Bitset.mem faults y then
    invalid_arg "Surviving.distance: faulty endpoint";
  let dg = graph routing ~faults in
  let dist = Digraph.bfs dg ~allowed:(alive faults) x in
  if dist.(y) < 0 then Metrics.Infinite else Metrics.Finite dist.(y)

let diameter_of_digraph dg ~faults =
  let n = Digraph.n dg in
  let worst = ref (Metrics.Finite 0) in
  for x = 0 to n - 1 do
    if alive faults x then begin
      let dist = Digraph.bfs dg ~allowed:(alive faults) x in
      for y = 0 to n - 1 do
        if y <> x && alive faults y then
          let d = if dist.(y) < 0 then Metrics.Infinite else Metrics.Finite dist.(y) in
          worst := Metrics.max_distance !worst d
      done
    end
  done;
  !worst

let diameter routing ~faults = diameter_of_digraph (graph routing ~faults) ~faults

(* ------------------------------------------------------------------ *)
(* Batch evaluation engine.                                           *)
(*                                                                    *)
(* The miserly model stores at most one route per ordered pair, so    *)
(* the surviving graph is fully described by one liveness bit per     *)
(* route. We keep the adjacency as an n x w bit matrix (w words per   *)
(* row) and run BFS a word at a time: expanding a frontier is an OR   *)
(* of the rows of its members, and the next frontier is a single      *)
(* AND-NOT against the visited mask. On the paper-scale testbeds      *)
(* (n <= 63, w = 1) a whole BFS layer is a handful of word ops.       *)
(*                                                                    *)
(* On top of the matrix sits an incremental evaluator: an inverted    *)
(* index (vertex -> routes through it) plus a per-route fault counter *)
(* make apply/revert of a single fault cost only the routes through   *)
(* that vertex, so Gray-code subset enumeration and the attack        *)
(* engine's one-node swaps never rescan the route table.              *)
(* ------------------------------------------------------------------ *)

let matrix_bits = Sys.int_size

(* The hot bit-matrices live off-heap in a Bigarray of unboxed native
   ints (c_layout): the GC never scans or moves them, so the BFS inner
   loops stop paying read barriers and the matrices stop inflating
   minor-collection scan time when many evaluators are alive at once.
   Kind [int] rather than [Int64] is deliberate — without flambda every
   Int64 element access boxes, while [int] elements are unboxed loads;
   the cost is one lane/bit of width (Sys.int_size = 63 on 64-bit). *)
type words = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

let words_make len : words =
  let a = Bigarray.Array1.create Bigarray.int Bigarray.c_layout (max 1 len) in
  Bigarray.Array1.fill a 0;
  a

(* bounds: wrappers over the only two Bigarray unsafe accessors in the
   codebase; every caller below indexes within [0, dim a) and carries
   its own bounds comment. Fully applied externals at a monomorphic
   type compile to direct unboxed loads/stores. *)
let[@inline] wget (a : words) i = Bigarray.Array1.unsafe_get a i

(* bounds: see wget. *)
let[@inline] wset (a : words) i v = Bigarray.Array1.unsafe_set a i v

let words_fill (a : words) v = Bigarray.Array1.fill a v

type compiled = {
  n : int;
  nroutes : int;
  w : int; (* words per adjacency row *)
  paths : int array array; (* vertex sequence per route *)
  via_start : int array; (* length n+1: CSR index vertex -> routes through it *)
  via : int array;
  edges : (int * int) array; (* graph edges, (min, max), lex order *)
  edge_ids : (int * int, int) Hashtbl.t; (* (min, max) -> index into [edges] *)
  eia_start : int array; (* length m+1: CSR index edge -> routes traversing it *)
  eia : int array;
  arc_word : int array; (* route -> flat word index of its adjacency bit *)
  arc_bit : int array; (* route -> mask of its adjacency bit *)
  vx_word : int array; (* vertex -> word index in an alive/visited mask *)
  vx_bit : int array; (* vertex -> mask in an alive/visited mask *)
  (* Routes regrouped by source for the bit-sliced sweeps: position
     [i] in [bs_start.(u), bs_start.(u+1)) is a route out of [u] with
     destination [bs_dst.(i)]; [route_pos] maps a route id to its
     position, so the per-position lane-liveness words can be cleared
     through the via/eia indexes. *)
  bs_start : int array; (* length n+1 *)
  bs_dst : int array; (* length nroutes, by position *)
  route_pos : int array; (* route id -> position *)
  (* scratch for the one-shot [diameter_compiled]; the evaluator keeps
     its own copies so evaluators on other domains may share the
     immutable tables above. *)
  s_rows : words; (* n * w *)
  s_alive : int array; (* w *)
  s_visited : int array;
  s_front : int array;
  s_next : int array;
}

let compile routing =
  Obs.with_span "surviving.compile" @@ fun () ->
  let g = Routing.graph routing in
  let n = Graph.n g in
  let acc = ref [] in
  let nroutes = ref 0 in
  Routing.iter
    (fun src dst p ->
      acc := (src, dst, Path.to_array p) :: !acc;
      incr nroutes)
    routing;
  let nroutes = !nroutes in
  let routes = Array.make nroutes (0, 0, [||]) in
  List.iteri (fun i r -> routes.(nroutes - 1 - i) <- r) !acc;
  let paths = Array.map (fun (_, _, p) -> p) routes in
  (* Inverted index: vertex -> routes whose path contains it
     (endpoints included, matching [Path.hits]). *)
  let count = Array.make (n + 1) 0 in
  Array.iter (Array.iter (fun v -> count.(v) <- count.(v) + 1)) paths;
  let via_start = Array.make (n + 1) 0 in
  for v = 1 to n do
    via_start.(v) <- via_start.(v - 1) + count.(v - 1)
  done;
  let via = Array.make (max 1 via_start.(n)) 0 in
  let fill = Array.copy via_start in
  Array.iteri
    (fun r p ->
      Array.iter
        (fun v ->
          via.(fill.(v)) <- r;
          fill.(v) <- fill.(v) + 1)
        p)
    paths;
  (* Edge index: the graph's edges in (min, max) lexicographic order,
     plus a CSR inverted index edge -> routes traversing it. Routes are
     simple paths, so each traverses an edge at most once and the
     per-route hit counter stays exact when node and edge faults mix. *)
  let edges =
    (* (min, max) lexicographic, read straight off the CSR rows — no
       intermediate edge list. *)
    let csr = Graph.csr g in
    let off = Graph.Csr.offsets csr and tgt = Graph.Csr.targets csr in
    (* sized by arcs, not arcs/2: deliberately asymmetric adjacency
       (tests build it via of_adj_lists) can put more than half the
       arcs in u < v orientation *)
    let arr = Array.make (max 1 (Graph.Csr.arcs csr)) (0, 0) in
    let k = ref 0 in
    for u = 0 to n - 1 do
      for i = off.(u) to off.(u + 1) - 1 do
        let v = tgt.(i) in
        if u < v then begin
          arr.(!k) <- (u, v);
          incr k
        end
      done
    done;
    if !k = Array.length arr then arr else Array.sub arr 0 !k
  in
  let m = Array.length edges in
  let edge_ids = Hashtbl.create (max 16 (2 * m)) in
  Array.iteri (fun i e -> Hashtbl.replace edge_ids e i) edges;
  let edge_of u v = if u < v then (u, v) else (v, u) in
  (* Per-step edge-id lookups dominate compilation when done through
     the tuple-keyed hashtable (a key allocation and a polymorphic
     hash per step); a dense n*n id matrix answers them in one load.
     The matrix is only worth its n^2 ints on small graphs — past the
     cutoff the hashtable path remains. *)
  let eid_lookup =
    if n <= 1024 then begin
      let flat = Array.make (max 1 (n * n)) (-1) in
      Array.iteri
        (fun i (u, v) ->
          flat.((u * n) + v) <- i;
          flat.((v * n) + u) <- i)
        edges;
      fun u v -> flat.((u * n) + v)
    end
    else fun u v ->
      match Hashtbl.find_opt edge_ids (edge_of u v) with Some e -> e | None -> -1
  in
  (* A route step that is not a graph edge means the table is stale
     (or the graph's adjacency is inconsistent): fail with a message
     naming the route and the offending step instead of leaking a
     negative id into the CSR build. *)
  let edge_id_exn r j =
    let u = paths.(r).(j) and v = paths.(r).(j + 1) in
    let e = eid_lookup u v in
    if e >= 0 then e
    else
      let src, dst, _ = routes.(r) in
      invalid_arg
        (Printf.sprintf
           "Surviving.compile: route %d->%d steps across (%d, %d), which is \
            not an edge of the graph (stale route table?)"
           src dst u v)
  in
  (* One resolution pass: [redge] records every step's edge id in route
     order, so the count and fill passes below never re-resolve. *)
  let steps =
    Array.fold_left (fun acc p -> acc + max 0 (Array.length p - 1)) 0 paths
  in
  let redge = Array.make (max 1 steps) 0 in
  let kstep = ref 0 in
  Array.iteri
    (fun r p ->
      for j = 0 to Array.length p - 2 do
        redge.(!kstep) <- edge_id_exn r j;
        incr kstep
      done)
    paths;
  let ecount = Array.make (m + 1) 0 in
  for k = 0 to steps - 1 do
    let e = redge.(k) in
    ecount.(e) <- ecount.(e) + 1
  done;
  let eia_start = Array.make (m + 1) 0 in
  for e = 1 to m do
    eia_start.(e) <- eia_start.(e - 1) + ecount.(e - 1)
  done;
  let eia = Array.make (max 1 eia_start.(m)) 0 in
  let efill = Array.copy eia_start in
  let kstep = ref 0 in
  Array.iteri
    (fun r p ->
      for _ = 0 to Array.length p - 2 do
        let e = redge.(!kstep) in
        incr kstep;
        eia.(efill.(e)) <- r;
        efill.(e) <- efill.(e) + 1
      done)
    paths;
  let w = max 1 ((n + matrix_bits - 1) / matrix_bits) in
  let arc_word = Array.make (max 1 nroutes) 0 in
  let arc_bit = Array.make (max 1 nroutes) 0 in
  Array.iteri
    (fun r (src, dst, _) ->
      arc_word.(r) <- (src * w) + (dst / matrix_bits);
      arc_bit.(r) <- 1 lsl (dst mod matrix_bits))
    routes;
  let vx_word = Array.init n (fun v -> v / matrix_bits) in
  let vx_bit = Array.init n (fun v -> 1 lsl (v mod matrix_bits)) in
  (* Routes regrouped by source vertex: the bit-sliced sweeps walk
     "routes out of u" as a contiguous run instead of peeling row
     bits, because each route carries a per-lane liveness word. *)
  let scount = Array.make (n + 1) 0 in
  Array.iter (fun (src, _, _) -> scount.(src) <- scount.(src) + 1) routes;
  let bs_start = Array.make (n + 1) 0 in
  for v = 1 to n do
    bs_start.(v) <- bs_start.(v - 1) + scount.(v - 1)
  done;
  let bs_dst = Array.make (max 1 nroutes) 0 in
  let route_pos = Array.make (max 1 nroutes) 0 in
  let sfill = Array.copy bs_start in
  Array.iteri
    (fun r (src, dst, _) ->
      bs_dst.(sfill.(src)) <- dst;
      route_pos.(r) <- sfill.(src);
      sfill.(src) <- sfill.(src) + 1)
    routes;
  Obs.incr c_compile_calls;
  Obs.add c_compile_routes nroutes;
  Obs.add c_compile_edges m;
  {
    n;
    nroutes;
    w;
    paths;
    via_start;
    via;
    edges;
    edge_ids;
    eia_start;
    eia;
    arc_word;
    arc_bit;
    vx_word;
    vx_bit;
    bs_start;
    bs_dst;
    route_pos;
    s_rows = words_make (n * w);
    s_alive = Array.make w 0;
    s_visited = Array.make w 0;
    s_front = Array.make w 0;
    s_next = Array.make w 0;
  }

(* One-slot compile cache. The checker entry points ([Tolerance],
   [Attack], the CLI's evaluate pipeline) each recompile the routing
   they are handed, so a single evaluation run pays for the same table
   several times over. The table depends only on the route set, and a
   routing's routes can only ever be added — re-adding an identical
   path is a no-op and a conflicting add raises — so physical identity
   of the routing plus its route count is a sound freshness key. One
   slot covers the repeat-caller patterns; it deliberately holds a
   strong reference (bounded: one table). Guarded by a mutex so
   concurrent callers on different domains stay safe; note the cached
   value shares [compiled]'s batch scratch, so concurrent
   [diameter_compiled] callers must still compile privately or use
   per-domain evaluators (see the .mli). *)
let cache_lock = Mutex.create ()
let cache_slot : (Routing.t * int * compiled) option ref = ref None
let g_compile_hits = Obs.gauge "engine.compile.cache_hits"

let compile_cached routing =
  let stamp = Routing.route_count routing in
  Mutex.lock cache_lock;
  let hit =
    match !cache_slot with
    | Some (r, s, c) when r == routing && s = stamp -> Some c
    | _ -> None
  in
  Mutex.unlock cache_lock;
  match hit with
  | Some c ->
      (* Counters report requested work, so a hit bumps the compile
         counters exactly as a build would — whether the cache was
         warm is a scheduling accident (it depends on what ran
         before), so the hit tally itself is a gauge, keeping the
         counter JSON identical across jobs values and cache
         states. *)
      Obs.incr c_compile_calls;
      Obs.add c_compile_routes c.nroutes;
      Obs.add c_compile_edges (Array.length c.edges);
      Obs.add_gauge g_compile_hits 1.0;
      c
  | None ->
      let c = compile routing in
      Mutex.lock cache_lock;
      cache_slot := Some (routing, stamp, c);
      Mutex.unlock cache_lock;
      c

let compiled_n c = c.n
let edge_count c = Array.length c.edges

let edge_pair c e =
  if e < 0 || e >= Array.length c.edges then
    invalid_arg "Surviving.edge_pair: edge id out of range";
  c.edges.(e)

let edge_id c u v =
  Hashtbl.find_opt c.edge_ids (if u < v then (u, v) else (v, u))

(* All-pairs worst eccentricity of the live bit matrix; [-1] encodes a
   disconnected pair. [bound >= 0] stops a source's BFS as soon as its
   eccentricity provably exceeds it (callers that only compare against
   a claimed bound never pay for the exact value); pass [max_int] for
   the exact diameter. *)

(* bounds: single-word matrix (w = 1); every index into [rows] is a
   bit index of a word already masked by the alive set, so it lies in
   [0, matrix_bits) = [0, dim rows). *)
let apsp_w1 (rows : words) alive ~bound =
  let track = Obs.enabled () in
  let wops = ref 0 in
  let worst = ref 0 in
  let exceeded = ref false in
  let av = ref alive in
  while (not !exceeded) && !av <> 0 do
    let s = Bitset.lowest_bit_index !av in
    av := !av land (!av - 1);
    let visited = ref (1 lsl s) in
    let front = ref !visited in
    let ecc = ref 0 in
    let growing = ref true in
    while !growing do
      if track then wops := !wops + Bitset.popcount !front;
      let nx = ref 0 in
      let fw = ref !front in
      while !fw <> 0 do
        nx := !nx lor wget rows (Bitset.lowest_bit_index !fw);
        fw := !fw land (!fw - 1)
      done;
      let fresh = !nx land lnot !visited in
      if fresh = 0 then growing := false
      else begin
        visited := !visited lor fresh;
        front := fresh;
        incr ecc;
        if !ecc > bound then begin
          growing := false;
          exceeded := true
        end
      end
    done;
    if !visited <> alive then exceeded := true (* disconnected *)
    else worst := max !worst !ecc
  done;
  if track then Obs.add c_bfs_word_ops !wops;
  if !exceeded then -1 else !worst

(* bounds: u < n and j < w throughout, so row + j = u * w + j
   < n * w = dim rows, and j < w = Array.length next. *)
let apsp_gen ~n ~w (rows : words) alive visited front next ~bound =
  let track = Obs.enabled () in
  let wops = ref 0 in
  let worst = ref 0 in
  let exceeded = ref false in
  let s = ref 0 in
  while (not !exceeded) && !s < n do
    if alive.(!s / matrix_bits) land (1 lsl (!s mod matrix_bits)) <> 0 then begin
      Array.fill visited 0 w 0;
      Array.fill front 0 w 0;
      visited.(!s / matrix_bits) <- 1 lsl (!s mod matrix_bits);
      front.(!s / matrix_bits) <- visited.(!s / matrix_bits);
      let ecc = ref 0 in
      let growing = ref true in
      while !growing do
        Array.fill next 0 w 0;
        for wi = 0 to w - 1 do
          let fw = ref front.(wi) in
          let base = wi * matrix_bits in
          if track then wops := !wops + (w * Bitset.popcount !fw);
          while !fw <> 0 do
            let u = base + Bitset.lowest_bit_index !fw in
            fw := !fw land (!fw - 1);
            let row = u * w in
            for j = 0 to w - 1 do
              Array.unsafe_set next j (Array.unsafe_get next j lor wget rows (row + j))
            done
          done
        done;
        let any = ref 0 in
        for j = 0 to w - 1 do
          let fresh = next.(j) land lnot visited.(j) in
          front.(j) <- fresh;
          visited.(j) <- visited.(j) lor fresh;
          any := !any lor fresh
        done;
        if !any = 0 then growing := false
        else begin
          incr ecc;
          if !ecc > bound then begin
            growing := false;
            exceeded := true
          end
        end
      done;
      if not (Array.for_all2 ( = ) visited alive) then exceeded := true
      else if not !exceeded then worst := max !worst !ecc
    end;
    incr s
  done;
  if track then Obs.add c_bfs_word_ops !wops;
  if !exceeded then -1 else !worst

let apsp c rows alive visited front next ~alive_count ~bound =
  if alive_count <= 1 then 0
  else if c.w = 1 then apsp_w1 rows alive.(0) ~bound
  else apsp_gen ~n:c.n ~w:c.w rows alive visited front next ~bound

(* bounds: the capacity check below guarantees v < c.n <= capacity
   faults for every unsafe_mem; p.(j) holds vertex ids < c.n by
   construction in [compile]. *)
let diameter_compiled c ~faults =
  if Bitset.capacity faults < c.n then
    invalid_arg "Surviving.diameter_compiled: fault set capacity too small";
  words_fill c.s_rows 0;
  Array.fill c.s_alive 0 c.w 0;
  let alive_count = ref 0 in
  for v = 0 to c.n - 1 do
    if not (Bitset.unsafe_mem faults v) then begin
      incr alive_count;
      c.s_alive.(c.vx_word.(v)) <- c.s_alive.(c.vx_word.(v)) lor c.vx_bit.(v)
    end
  done;
  for r = 0 to c.nroutes - 1 do
    let p = c.paths.(r) in
    let len = Array.length p in
    let rec clean j = j >= len || ((not (Bitset.unsafe_mem faults p.(j))) && clean (j + 1)) in
    if clean 0 then
      c.s_rows.{c.arc_word.(r)} <- c.s_rows.{c.arc_word.(r)} lor c.arc_bit.(r)
  done;
  Obs.incr c_diameter_evals;
  let d =
    apsp c c.s_rows c.s_alive c.s_visited c.s_front c.s_next ~alive_count:!alive_count
      ~bound:max_int
  in
  if d < 0 then Metrics.Infinite else Metrics.Finite d

(* ------------------------------------------------------------------ *)
(* Incremental evaluator.                                             *)
(* ------------------------------------------------------------------ *)

type evaluator = {
  c : compiled;
  hits : int array; (* per route: how many of its vertices are faulty *)
  rows : words; (* live adjacency matrix, kept in sync with hits *)
  alive : int array;
  visited : int array;
  front : int array;
  next : int array;
  faulty : Bitset.t;
  edge_faulty : Bitset.t; (* by edge id over [c.edges] *)
  mutable nalive : int;
  mutable nedges_down : int;
}

let evaluator c =
  let rows = words_make (c.n * c.w) in
  for r = 0 to c.nroutes - 1 do
    rows.{c.arc_word.(r)} <- rows.{c.arc_word.(r)} lor c.arc_bit.(r)
  done;
  let alive = Array.make c.w 0 in
  for v = 0 to c.n - 1 do
    alive.(c.vx_word.(v)) <- alive.(c.vx_word.(v)) lor c.vx_bit.(v)
  done;
  {
    c;
    hits = Array.make (max 1 c.nroutes) 0;
    rows;
    alive;
    visited = Array.make c.w 0;
    front = Array.make c.w 0;
    next = Array.make c.w 0;
    faulty = Bitset.create c.n;
    edge_faulty = Bitset.create (max 1 (Array.length c.edges));
    nalive = c.n;
    nedges_down = 0;
  }

let evaluator_n e = e.c.n
let is_faulty e v = Bitset.mem e.faulty v
let faults e = Bitset.elements e.faulty
let fault_count e = e.c.n - e.nalive
let is_edge_faulty e eid = Bitset.mem e.edge_faulty eid
let edge_faults e = Bitset.elements e.edge_faulty
let edge_fault_count e = e.nedges_down

(* bounds: the explicit range check admits only 0 <= v < c.n
   (= capacity of [faulty]); via/arc_word/arc_bit are indexed by route
   ids r < nroutes recorded by [compile]. *)
let apply_fault e v =
  if v < 0 || v >= e.c.n then invalid_arg "Surviving.apply_fault: vertex out of range";
  if Bitset.unsafe_mem e.faulty v then
    invalid_arg "Surviving.apply_fault: vertex already faulty";
  Bitset.unsafe_add e.faulty v;
  e.nalive <- e.nalive - 1;
  let c = e.c in
  e.alive.(c.vx_word.(v)) <- e.alive.(c.vx_word.(v)) land lnot c.vx_bit.(v);
  let hits = e.hits and rows = e.rows in
  let stop = c.via_start.(v + 1) - 1 in
  if Obs.enabled () then begin
    Obs.incr c_apply_node;
    Obs.add c_apply_node_routes (stop - c.via_start.(v) + 1)
  end;
  for i = c.via_start.(v) to stop do
    let r = Array.unsafe_get c.via i in
    let h = Array.unsafe_get hits r in
    if h = 0 then begin
      let wi = Array.unsafe_get c.arc_word r in
      wset rows wi (wget rows wi land lnot (Array.unsafe_get c.arc_bit r))
    end;
    Array.unsafe_set hits r (h + 1)
  done

(* bounds: mirror image of apply_fault — same range check, same
   compile-recorded route ids. *)
let revert_fault e v =
  if v < 0 || v >= e.c.n then invalid_arg "Surviving.revert_fault: vertex out of range";
  if not (Bitset.unsafe_mem e.faulty v) then
    invalid_arg "Surviving.revert_fault: vertex not faulty";
  Bitset.unsafe_remove e.faulty v;
  e.nalive <- e.nalive + 1;
  let c = e.c in
  e.alive.(c.vx_word.(v)) <- e.alive.(c.vx_word.(v)) lor c.vx_bit.(v);
  let hits = e.hits and rows = e.rows in
  let stop = c.via_start.(v + 1) - 1 in
  for i = c.via_start.(v) to stop do
    let r = Array.unsafe_get c.via i in
    let h = Array.unsafe_get hits r - 1 in
    Array.unsafe_set hits r h;
    if h = 0 then begin
      let wi = Array.unsafe_get c.arc_word r in
      wset rows wi (wget rows wi lor Array.unsafe_get c.arc_bit r)
    end
  done

(* Edge faults reuse the same per-route hit counters as node faults: a
   route is live iff no vertex on it is faulty and no edge of it is
   down, i.e. iff its counter is zero. The alive mask is untouched —
   the endpoints of a downed link stay alive. *)

(* bounds: the explicit range check admits only
   0 <= eid < Array.length c.edges (= capacity of [edge_faulty]); eia
   holds route ids r < nroutes recorded by [compile]. *)
let apply_edge_fault e eid =
  let c = e.c in
  if eid < 0 || eid >= Array.length c.edges then
    invalid_arg "Surviving.apply_edge_fault: edge id out of range";
  if Bitset.unsafe_mem e.edge_faulty eid then
    invalid_arg "Surviving.apply_edge_fault: edge already faulty";
  Bitset.unsafe_add e.edge_faulty eid;
  e.nedges_down <- e.nedges_down + 1;
  let hits = e.hits and rows = e.rows in
  let stop = c.eia_start.(eid + 1) - 1 in
  if Obs.enabled () then begin
    Obs.incr c_apply_edge;
    Obs.add c_apply_edge_routes (stop - c.eia_start.(eid) + 1)
  end;
  for i = c.eia_start.(eid) to stop do
    let r = Array.unsafe_get c.eia i in
    let h = Array.unsafe_get hits r in
    if h = 0 then begin
      let wi = Array.unsafe_get c.arc_word r in
      wset rows wi (wget rows wi land lnot (Array.unsafe_get c.arc_bit r))
    end;
    Array.unsafe_set hits r (h + 1)
  done

(* bounds: mirror image of apply_edge_fault — same range check, same
   compile-recorded route ids. *)
let revert_edge_fault e eid =
  let c = e.c in
  if eid < 0 || eid >= Array.length c.edges then
    invalid_arg "Surviving.revert_edge_fault: edge id out of range";
  if not (Bitset.unsafe_mem e.edge_faulty eid) then
    invalid_arg "Surviving.revert_edge_fault: edge not faulty";
  Bitset.unsafe_remove e.edge_faulty eid;
  e.nedges_down <- e.nedges_down - 1;
  let hits = e.hits and rows = e.rows in
  let stop = c.eia_start.(eid + 1) - 1 in
  for i = c.eia_start.(eid) to stop do
    let r = Array.unsafe_get c.eia i in
    let h = Array.unsafe_get hits r - 1 in
    Array.unsafe_set hits r h;
    if h = 0 then begin
      let wi = Array.unsafe_get c.arc_word r in
      wset rows wi (wget rows wi lor Array.unsafe_get c.arc_bit r)
    end
  done

let reset e =
  List.iter (revert_fault e) (Bitset.elements e.faulty);
  List.iter (revert_edge_fault e) (Bitset.elements e.edge_faulty)

let set_faults e vs =
  reset e;
  List.iter (apply_fault e) vs

let set_mixed_faults e ~nodes ~edges =
  reset e;
  List.iter (apply_fault e) nodes;
  List.iter (apply_edge_fault e) edges

let evaluator_diameter e =
  Obs.incr c_diameter_evals;
  let d =
    apsp e.c e.rows e.alive e.visited e.front e.next ~alive_count:e.nalive ~bound:max_int
  in
  if d < 0 then Metrics.Infinite else Metrics.Finite d

(* Diameter over a subset of the alive vertices: BFS sources and the
   recorded eccentricities range over [targets] only, while any alive
   vertex may still relay. This is the comparison the paper's
   edge->endpoint reduction actually makes: a downed link's endpoints
   stay alive (and may forward), but the projected surviving set
   excludes them. *)

(* bounds: as apsp_w1 — bit indices of alive-masked words stay below
   matrix_bits = dim rows. *)
let apsp_w1_over (rows : words) alive targets =
  let track = Obs.enabled () in
  let wops = ref 0 in
  let worst = ref 0 in
  let inf = ref false in
  let tv = ref targets in
  while (not !inf) && !tv <> 0 do
    let s = Bitset.lowest_bit_index !tv in
    tv := !tv land (!tv - 1);
    let visited = ref (1 lsl s) in
    let front = ref !visited in
    let level = ref 0 in
    let ecc = ref 0 in
    let growing = ref true in
    while !growing && !visited land targets <> targets do
      if track then wops := !wops + Bitset.popcount !front;
      let nx = ref 0 in
      let fw = ref !front in
      while !fw <> 0 do
        nx := !nx lor wget rows (Bitset.lowest_bit_index !fw);
        fw := !fw land (!fw - 1)
      done;
      let fresh = !nx land lnot !visited land alive in
      if fresh = 0 then growing := false
      else begin
        incr level;
        visited := !visited lor fresh;
        front := fresh;
        if fresh land targets <> 0 then ecc := !level
      end
    done;
    if !visited land targets <> targets then inf := true
    else worst := max !worst !ecc
  done;
  if track then Obs.add c_bfs_word_ops !wops;
  if !inf then -1 else !worst

(* bounds: as apsp_gen — u < n and j < w keep row + j < n * w =
   dim rows. *)
let apsp_gen_over ~n ~w (rows : words) alive targets visited front next =
  let track = Obs.enabled () in
  let wops = ref 0 in
  let worst = ref 0 in
  let inf = ref false in
  let covered () =
    let ok = ref true in
    for j = 0 to w - 1 do
      if visited.(j) land targets.(j) <> targets.(j) then ok := false
    done;
    !ok
  in
  let s = ref 0 in
  while (not !inf) && !s < n do
    if targets.(!s / matrix_bits) land (1 lsl (!s mod matrix_bits)) <> 0 then begin
      Array.fill visited 0 w 0;
      Array.fill front 0 w 0;
      visited.(!s / matrix_bits) <- 1 lsl (!s mod matrix_bits);
      front.(!s / matrix_bits) <- visited.(!s / matrix_bits);
      let level = ref 0 in
      let ecc = ref 0 in
      let growing = ref true in
      while !growing && not (covered ()) do
        Array.fill next 0 w 0;
        for wi = 0 to w - 1 do
          let fw = ref front.(wi) in
          let base = wi * matrix_bits in
          if track then wops := !wops + (w * Bitset.popcount !fw);
          while !fw <> 0 do
            let u = base + Bitset.lowest_bit_index !fw in
            fw := !fw land (!fw - 1);
            let row = u * w in
            for j = 0 to w - 1 do
              Array.unsafe_set next j (Array.unsafe_get next j lor wget rows (row + j))
            done
          done
        done;
        let any = ref 0 and hit = ref 0 in
        for j = 0 to w - 1 do
          let fresh = next.(j) land lnot visited.(j) land alive.(j) in
          front.(j) <- fresh;
          visited.(j) <- visited.(j) lor fresh;
          any := !any lor fresh;
          hit := !hit lor (fresh land targets.(j))
        done;
        if !any = 0 then growing := false
        else begin
          incr level;
          if !hit <> 0 then ecc := !level
        end
      done;
      if not (covered ()) then inf := true else worst := max !worst !ecc
    end;
    incr s
  done;
  if track then Obs.add c_bfs_word_ops !wops;
  if !inf then -1 else !worst

(* bounds: the capacity check below guarantees v < c.n <= capacity
   targets for every unsafe_mem. *)
let evaluator_diameter_over e ~targets =
  let c = e.c in
  if Bitset.capacity targets < c.n then
    invalid_arg "Surviving.evaluator_diameter_over: target set capacity too small";
  let tw = Array.make c.w 0 in
  let count = ref 0 in
  for v = 0 to c.n - 1 do
    if Bitset.unsafe_mem targets v then begin
      if e.alive.(c.vx_word.(v)) land c.vx_bit.(v) = 0 then
        invalid_arg "Surviving.evaluator_diameter_over: target vertex is faulty";
      incr count;
      tw.(c.vx_word.(v)) <- tw.(c.vx_word.(v)) lor c.vx_bit.(v)
    end
  done;
  Obs.incr c_diameter_evals;
  let d =
    if !count <= 1 then 0
    else if c.w = 1 then apsp_w1_over e.rows e.alive.(0) tw.(0)
    else apsp_gen_over ~n:c.n ~w:c.w e.rows e.alive tw e.visited e.front e.next
  in
  if d < 0 then Metrics.Infinite else Metrics.Finite d

(* Route-level path extraction for the serving layer: BFS over the
   live adjacency matrix with parent tracking. Per-query cost is one
   ordinary BFS — the word-parallel sweeps above answer diameter
   questions, this answers "how do I get there from here" for one
   pair, which is what a route server does all day. *)
let c_route_plans = Obs.counter "engine.route_plans"

let evaluator_route e ~src ~dst =
  let c = e.c in
  if src < 0 || src >= c.n || dst < 0 || dst >= c.n then
    invalid_arg "Surviving.evaluator_route: vertex out of range";
  if Bitset.mem e.faulty src || Bitset.mem e.faulty dst then
    invalid_arg "Surviving.evaluator_route: faulty endpoint";
  Obs.incr c_route_plans;
  if src = dst then Some [ src ]
  else begin
    let parent = Array.make c.n (-1) in
    parent.(src) <- src;
    let q = Queue.create () in
    Queue.add src q;
    let found = ref false in
    while (not !found) && not (Queue.is_empty q) do
      let u = Queue.pop q in
      let row = u * c.w in
      let wi = ref 0 in
      while (not !found) && !wi < c.w do
        let word = e.rows.{row + !wi} land e.alive.(!wi) in
        let base = !wi * matrix_bits in
        let fw = ref word in
        while (not !found) && !fw <> 0 do
          let v = base + Bitset.lowest_bit_index !fw in
          fw := !fw land (!fw - 1);
          if v < c.n && parent.(v) < 0 then begin
            parent.(v) <- u;
            if v = dst then found := true else Queue.add v q
          end
        done;
        incr wi
      done
    done;
    if not !found then None
    else begin
      let rec walk v acc = if v = src then v :: acc else walk parent.(v) (v :: acc) in
      Some (walk dst [])
    end
  end

let diameter_exceeds e ~bound =
  (* diameter > bound; the surviving diameter is at least Finite 0, so
     a negative bound is always exceeded. *)
  Obs.incr c_exceeds_calls;
  let exceeded =
    bound < 0
    || apsp e.c e.rows e.alive e.visited e.front e.next ~alive_count:e.nalive ~bound < 0
  in
  if exceeded then Obs.incr c_exceeds_early;
  exceeded

(* ------------------------------------------------------------------ *)
(* Bit-sliced fault-set evaluator.                                    *)
(*                                                                    *)
(* The incremental evaluator above packs VERTICES into word bits and  *)
(* answers one fault set per sweep. Exhaustive enumeration asks the   *)
(* opposite question — the same sweep over many fault sets — so here  *)
(* each word bit is a LANE holding one candidate fault set. A route   *)
(* carries a lane-liveness word (bit k clear iff lane k's faults hit  *)
(* the route), a vertex carries a lane-aliveness word, and one BFS    *)
(* from each source advances all lanes at once: frontier words flow   *)
(* source -> destination through the by-source route run, masked by   *)
(* the route's liveness word. A sweep costs O(n * nroutes) word ops   *)
(* for up to [lane_capacity] verdicts, against O(n * n) word ops per  *)
(* single verdict for the scalar sweep — roughly a                    *)
(* [lane_capacity / n] * (routes-per-pair) advantage, and the lanes   *)
(* amortise the per-level bookkeeping besides.                        *)
(*                                                                    *)
(* Verdict semantics match the scalar engine lane-for-lane: a lane    *)
(* with at most one alive vertex has diameter [Finite 0]; a lane      *)
(* whose surviving graph is disconnected is [Infinite]; otherwise the *)
(* exact worst eccentricity. Lanes retire from a source's BFS as      *)
(* soon as they cover every alive vertex, and from the whole sweep    *)
(* the moment one source proves disconnection (or the bound is        *)
(* exceeded), exactly like the scalar early exits.                    *)
(* ------------------------------------------------------------------ *)

let lane_capacity = matrix_bits

type sliced = {
  sc : compiled;
  route_live : words; (* by route POSITION (by-source order), lane word *)
  lane_alive : words; (* by vertex, lane word *)
  sl_front : words; (* n words *)
  sl_next : words;
  sl_visited : words;
  sl_ecc : int array; (* per lane: worst eccentricity so far *)
  mutable nlanes : int;
}

let sliced_capable c = c.w = 1

let sliced c =
  if not (sliced_capable c) then
    invalid_arg
      (Printf.sprintf
         "Surviving.sliced: graph has %d vertices; the sliced evaluator needs \
          single-word rows (n <= %d)"
         c.n matrix_bits);
  let s =
    {
      sc = c;
      route_live = words_make c.nroutes;
      lane_alive = words_make c.n;
      sl_front = words_make c.n;
      sl_next = words_make c.n;
      sl_visited = words_make c.n;
      sl_ecc = Array.make lane_capacity 0;
      nlanes = 0;
    }
  in
  (* "No faults yet" is all-ones liveness, not zero: a fresh value
     must accept [slice_add] without a [slice_reset] first. *)
  words_fill s.route_live (-1);
  words_fill s.lane_alive (-1);
  s

let slice_count s = s.nlanes

let slice_reset s =
  words_fill s.route_live (-1);
  words_fill s.lane_alive (-1);
  s.nlanes <- 0

(* bounds: the range checks admit only v < c.n = dim lane_alive and
   eid < m; via/eia hold route ids < nroutes recorded by [compile],
   and route_pos maps them into [0, nroutes) = dim route_live. *)
let slice_add s ~nodes ~edges =
  if s.nlanes >= lane_capacity then invalid_arg "Surviving.slice_add: slice full";
  let c = s.sc in
  let k = s.nlanes in
  let kill = lnot (1 lsl k) in
  List.iter
    (fun v ->
      if v < 0 || v >= c.n then invalid_arg "Surviving.slice_add: vertex out of range";
      wset s.lane_alive v (wget s.lane_alive v land kill);
      for i = c.via_start.(v) to c.via_start.(v + 1) - 1 do
        let pos = Array.unsafe_get c.route_pos (Array.unsafe_get c.via i) in
        wset s.route_live pos (wget s.route_live pos land kill)
      done)
    nodes;
  List.iter
    (fun eid ->
      if eid < 0 || eid >= Array.length c.edges then
        invalid_arg "Surviving.slice_add: edge id out of range";
      for i = c.eia_start.(eid) to c.eia_start.(eid + 1) - 1 do
        let pos = Array.unsafe_get c.route_pos (Array.unsafe_get c.eia i) in
        wset s.route_live pos (wget s.route_live pos land kill)
      done)
    edges;
  s.nlanes <- k + 1;
  k

(* One word-packed BFS per source, all lanes at once. Returns the
   sealed-lane mask: bit k set iff lane k's diameter is [Infinite] or
   provably exceeds [bound]; for every other lane [sl_ecc.(k)] holds
   the exact diameter on return. Everything here is a function of the
   slice contents and the fixed source order — never of scheduling —
   so the counters fed below stay [jobs]-independent. *)

(* bounds: src/u/v < n = dim lane_alive/front/next/visited; positions
   i lie in [bs_start.(u), bs_start.(u+1)) <= nroutes = dim route_live,
   and bs_dst.(i) < n by construction in [compile]. *)
let sliced_sweep s ~bound =
  let c = s.sc in
  let n = c.n in
  let track = Obs.enabled () in
  let wops = ref 0 in
  let lanemask = Bitset.mask s.nlanes in
  let front = s.sl_front and next = s.sl_next and visited = s.sl_visited in
  let la = s.lane_alive and rl = s.route_live in
  let bs_start = c.bs_start and bs_dst = c.bs_dst in
  let ecc = s.sl_ecc in
  Array.fill ecc 0 lane_capacity 0;
  let sealed = ref 0 in
  let retired = ref 0 in
  let seal m =
    let fresh = m land lnot !sealed in
    if fresh <> 0 then begin
      sealed := !sealed lor fresh;
      retired := !retired + Bitset.popcount fresh
    end
  in
  let src = ref 0 in
  while !sealed <> lanemask && !src < n do
    let act = wget la !src land lanemask land lnot !sealed in
    if act <> 0 then begin
      words_fill visited 0;
      wset visited !src act;
      words_fill front 0;
      wset front !src act;
      (* Lanes where [src] is the only alive vertex contribute
         eccentricity 0 and never enter [pending]. *)
      let uncov = ref 0 in
      for v = 0 to n - 1 do
        uncov := !uncov lor (wget la v land lnot (wget visited v))
      done;
      let pending = ref (act land !uncov) in
      let level = ref 0 in
      while !pending <> 0 do
        if !level >= bound then begin
          (* Every still-pending lane either advances past [bound] or
             stalls (disconnected); both verdicts are "exceeds". *)
          seal !pending;
          pending := 0
        end
        else begin
          incr level;
          words_fill next 0;
          for u = 0 to n - 1 do
            let fu = wget front u in
            if fu <> 0 then begin
              let stop = Array.unsafe_get bs_start (u + 1) - 1 in
              if track then wops := !wops + (stop - Array.unsafe_get bs_start u + 1);
              for i = Array.unsafe_get bs_start u to stop do
                let d = Array.unsafe_get bs_dst i in
                wset next d (wget next d lor (fu land wget rl i))
              done
            end
          done;
          let progress = ref 0 in
          let uncov2 = ref 0 in
          for v = 0 to n - 1 do
            let vis = wget visited v in
            let fresh = wget next v land lnot vis land !pending in
            wset visited v (vis lor fresh);
            wset front v fresh;
            progress := !progress lor fresh;
            uncov2 := !uncov2 lor (wget la v land lnot (vis lor fresh))
          done;
          let covered_now = !pending land lnot !uncov2 in
          let cw = ref covered_now in
          while !cw <> 0 do
            let k = Bitset.lowest_bit_index !cw in
            cw := !cw land (!cw - 1);
            if !level > Array.unsafe_get ecc k then Array.unsafe_set ecc k !level
          done;
          let stalled = !pending land lnot !progress in
          seal stalled;
          pending := !pending land !uncov2 land lnot stalled
        end
      done
    end;
    incr src
  done;
  if track then Obs.add c_bfs_word_ops !wops;
  Obs.incr c_slices;
  Obs.add c_slice_lanes s.nlanes;
  Obs.add c_lanes_retired !retired;
  !sealed

let slice_diameters s =
  if s.nlanes = 0 then [||]
  else begin
    Obs.add c_diameter_evals s.nlanes;
    let sealed = sliced_sweep s ~bound:max_int in
    Array.init s.nlanes (fun k ->
        if sealed land (1 lsl k) <> 0 then Metrics.Infinite
        else Metrics.Finite s.sl_ecc.(k))
  end

let slice_exceeds s ~bound =
  if s.nlanes = 0 then 0
  else begin
    Obs.add c_exceeds_calls s.nlanes;
    let sealed =
      if bound < 0 then Bitset.mask s.nlanes else sliced_sweep s ~bound
    in
    Obs.add c_exceeds_early (Bitset.popcount sealed);
    sealed
  end

let component_diameters routing ~faults =
  let dg = graph routing ~faults in
  let n = Digraph.n dg in
  (* Weak components: union arcs in both directions, reading the
     digraph's adjacency arrays directly. *)
  let undirected =
    let b = Graph.Builder.create n in
    for u = 0 to n - 1 do
      Array.iter (fun v -> Graph.Builder.add_edge b u v) (Digraph.succ dg u)
    done;
    Graph.Builder.to_graph b
  in
  let seen = Bitset.create n in
  let components = ref [] in
  for v = 0 to n - 1 do
    if alive faults v && not (Bitset.mem seen v) then begin
      let comp =
        Traversal.component_of undirected ~allowed:(alive faults) v
      in
      Bitset.union_into seen comp;
      let members = Bitset.elements comp in
      (* Directed diameter inside the component. *)
      let inside u = Bitset.mem comp u in
      let worst = ref (Metrics.Finite 0) in
      List.iter
        (fun x ->
          let dist = Digraph.bfs dg ~allowed:inside x in
          List.iter
            (fun y ->
              if y <> x then
                let d =
                  if dist.(y) < 0 then Metrics.Infinite else Metrics.Finite dist.(y)
                in
                worst := Metrics.max_distance !worst d)
            members)
        members;
      components := (members, !worst) :: !components
    end
  done;
  List.rev !components

(* ------------------------------------------------------------------ *)
(* Sampled probes at scale: bounded route-graph distance straight off
   [Routing.find], no compilation, no O(routes) state — the only
   distance primitive that works on million-node compact tables. *)

let probe_distance routing ~faults ~src ~dst ~bound ~budget =
  let n = Graph.n (Routing.graph routing) in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Surviving.probe_distance: vertex out of range";
  if Bitset.mem faults src || Bitset.mem faults dst then Metrics.Infinite
  else if src = dst then Metrics.Finite 0
  else begin
    let exception Found of int in
    let probes = ref (max 1 budget) in
    let survives x y =
      !probes > 0
      && begin
           decr probes;
           match Routing.find routing x y with
           | None -> false
           | Some p -> not (Path.hits p faults)
         end
    in
    (* Deterministic scan order (a fixed stride start hashed from the
       pair): verdicts are independent of domain scheduling. *)
    let start = (((31 * src) + dst) land max_int) mod n in
    try
      if bound >= 1 && survives src dst then raise (Found 1);
      if bound >= 2 && !probes > 0 then begin
        (* one-intermediate scan with early exit; exact when the budget
           covers the sweep *)
        let i = ref 0 in
        while !i < n && !probes > 0 do
          let w = start + !i in
          let w = if w >= n then w - n else w in
          if w <> src && w <> dst
             && (not (Bitset.mem faults w))
             && survives src w && survives w dst
          then raise (Found 2);
          incr i
        done
      end;
      if bound >= 3 && !probes > 0 then begin
        (* layered expansion for deeper bounds; each level first tries
           the direct hop to dst, then grows the next frontier *)
        let visited = Bytes.make n '\000' in
        Bytes.set visited src '\001';
        Bytes.set visited dst '\001';
        let frontier = ref [ src ] in
        let level = ref 0 in
        while !frontier <> [] && !level + 1 < bound && !probes > 0 do
          let next = ref [] in
          List.iter
            (fun x ->
              for i = 0 to n - 1 do
                let w = start + i in
                let w = if w >= n then w - n else w in
                if Bytes.get visited w = '\000'
                   && (not (Bitset.mem faults w))
                   && survives x w
                then begin
                  Bytes.set visited w '\001';
                  next := w :: !next
                end
              done)
            !frontier;
          incr level;
          (* vertices in [next] are at distance level+... from src; the
             direct-hop test below reaches dst at [!level + 1] arcs *)
          List.iter
            (fun x -> if survives x dst then raise (Found (!level + 1)))
            !next;
          frontier := !next
        done
      end;
      Metrics.Infinite
    with Found k -> Metrics.Finite k
  end
