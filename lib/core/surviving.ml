open Ftr_graph
module Obs = Ftr_obs.Obs

(* Counters obey the Obs determinism rule: each one counts work that
   is a function of the requested fault sets only, never of how Par
   scheduled them (in particular, [revert]s and evaluator creations
   are NOT counted — both depend on per-domain leftover state). *)
let c_compile_calls = Obs.counter "engine.compile.calls"
let c_compile_routes = Obs.counter "engine.compile.routes"
let c_compile_edges = Obs.counter "engine.compile.edges"
let c_apply_node = Obs.counter "engine.apply_node.calls"
let c_apply_node_routes = Obs.counter "engine.apply_node.routes_touched"
let c_apply_edge = Obs.counter "engine.apply_edge.calls"
let c_apply_edge_routes = Obs.counter "engine.apply_edge.routes_touched"
let c_diameter_evals = Obs.counter "engine.diameter.evals"
let c_bfs_word_ops = Obs.counter "engine.bfs.word_ops"
let c_exceeds_calls = Obs.counter "engine.exceeds.calls"
let c_exceeds_early = Obs.counter "engine.exceeds.early_exits"

let graph routing ~faults =
  let g = Routing.graph routing in
  let b = Digraph.Builder.create (Graph.n g) in
  Routing.iter
    (fun src dst p -> if not (Path.hits p faults) then Digraph.Builder.add_arc b src dst)
    routing;
  Digraph.Builder.to_digraph b

let alive faults v = not (Bitset.mem faults v)

let distance routing ~faults x y =
  if Bitset.mem faults x || Bitset.mem faults y then
    invalid_arg "Surviving.distance: faulty endpoint";
  let dg = graph routing ~faults in
  let dist = Digraph.bfs dg ~allowed:(alive faults) x in
  if dist.(y) < 0 then Metrics.Infinite else Metrics.Finite dist.(y)

let diameter_of_digraph dg ~faults =
  let n = Digraph.n dg in
  let worst = ref (Metrics.Finite 0) in
  for x = 0 to n - 1 do
    if alive faults x then begin
      let dist = Digraph.bfs dg ~allowed:(alive faults) x in
      for y = 0 to n - 1 do
        if y <> x && alive faults y then
          let d = if dist.(y) < 0 then Metrics.Infinite else Metrics.Finite dist.(y) in
          worst := Metrics.max_distance !worst d
      done
    end
  done;
  !worst

let diameter routing ~faults = diameter_of_digraph (graph routing ~faults) ~faults

(* ------------------------------------------------------------------ *)
(* Batch evaluation engine.                                           *)
(*                                                                    *)
(* The miserly model stores at most one route per ordered pair, so    *)
(* the surviving graph is fully described by one liveness bit per     *)
(* route. We keep the adjacency as an n x w bit matrix (w words per   *)
(* row) and run BFS a word at a time: expanding a frontier is an OR   *)
(* of the rows of its members, and the next frontier is a single      *)
(* AND-NOT against the visited mask. On the paper-scale testbeds      *)
(* (n <= 63, w = 1) a whole BFS layer is a handful of word ops.       *)
(*                                                                    *)
(* On top of the matrix sits an incremental evaluator: an inverted    *)
(* index (vertex -> routes through it) plus a per-route fault counter *)
(* make apply/revert of a single fault cost only the routes through   *)
(* that vertex, so Gray-code subset enumeration and the attack        *)
(* engine's one-node swaps never rescan the route table.              *)
(* ------------------------------------------------------------------ *)

let matrix_bits = Sys.int_size

type compiled = {
  n : int;
  nroutes : int;
  w : int; (* words per adjacency row *)
  paths : int array array; (* vertex sequence per route *)
  via_start : int array; (* length n+1: CSR index vertex -> routes through it *)
  via : int array;
  edges : (int * int) array; (* graph edges, (min, max), lex order *)
  edge_ids : (int * int, int) Hashtbl.t; (* (min, max) -> index into [edges] *)
  eia_start : int array; (* length m+1: CSR index edge -> routes traversing it *)
  eia : int array;
  arc_word : int array; (* route -> flat word index of its adjacency bit *)
  arc_bit : int array; (* route -> mask of its adjacency bit *)
  vx_word : int array; (* vertex -> word index in an alive/visited mask *)
  vx_bit : int array; (* vertex -> mask in an alive/visited mask *)
  (* scratch for the one-shot [diameter_compiled]; the evaluator keeps
     its own copies so evaluators on other domains may share the
     immutable tables above. *)
  s_rows : int array; (* n * w *)
  s_alive : int array; (* w *)
  s_visited : int array;
  s_front : int array;
  s_next : int array;
}

let compile routing =
  Obs.with_span "surviving.compile" @@ fun () ->
  let g = Routing.graph routing in
  let n = Graph.n g in
  let acc = ref [] in
  let nroutes = ref 0 in
  Routing.iter
    (fun src dst p ->
      acc := (src, dst, Path.to_array p) :: !acc;
      incr nroutes)
    routing;
  let nroutes = !nroutes in
  let routes = Array.make nroutes (0, 0, [||]) in
  List.iteri (fun i r -> routes.(nroutes - 1 - i) <- r) !acc;
  let paths = Array.map (fun (_, _, p) -> p) routes in
  (* Inverted index: vertex -> routes whose path contains it
     (endpoints included, matching [Path.hits]). *)
  let count = Array.make (n + 1) 0 in
  Array.iter (Array.iter (fun v -> count.(v) <- count.(v) + 1)) paths;
  let via_start = Array.make (n + 1) 0 in
  for v = 1 to n do
    via_start.(v) <- via_start.(v - 1) + count.(v - 1)
  done;
  let via = Array.make (max 1 via_start.(n)) 0 in
  let fill = Array.copy via_start in
  Array.iteri
    (fun r p ->
      Array.iter
        (fun v ->
          via.(fill.(v)) <- r;
          fill.(v) <- fill.(v) + 1)
        p)
    paths;
  (* Edge index: the graph's edges in (min, max) lexicographic order,
     plus a CSR inverted index edge -> routes traversing it. Routes are
     simple paths, so each traverses an edge at most once and the
     per-route hit counter stays exact when node and edge faults mix. *)
  let edges = Array.of_list (Graph.edges g) in
  let m = Array.length edges in
  let edge_ids = Hashtbl.create (max 16 (2 * m)) in
  Array.iteri (fun i e -> Hashtbl.replace edge_ids e i) edges;
  let edge_of u v = if u < v then (u, v) else (v, u) in
  (* A route step that is not a graph edge means the table is stale
     (or the graph's adjacency is inconsistent): fail with a message
     naming the route and the offending step instead of leaking the
     hashtable's [Not_found]. *)
  let edge_id_exn r j =
    let u = paths.(r).(j) and v = paths.(r).(j + 1) in
    match Hashtbl.find_opt edge_ids (edge_of u v) with
    | Some e -> e
    | None ->
        let src, dst, _ = routes.(r) in
        invalid_arg
          (Printf.sprintf
             "Surviving.compile: route %d->%d steps across (%d, %d), which is \
              not an edge of the graph (stale route table?)"
             src dst u v)
  in
  let ecount = Array.make (m + 1) 0 in
  Array.iteri
    (fun r p ->
      for j = 0 to Array.length p - 2 do
        let e = edge_id_exn r j in
        ecount.(e) <- ecount.(e) + 1
      done)
    paths;
  let eia_start = Array.make (m + 1) 0 in
  for e = 1 to m do
    eia_start.(e) <- eia_start.(e - 1) + ecount.(e - 1)
  done;
  let eia = Array.make (max 1 eia_start.(m)) 0 in
  let efill = Array.copy eia_start in
  Array.iteri
    (fun r p ->
      for j = 0 to Array.length p - 2 do
        let e = edge_id_exn r j in
        eia.(efill.(e)) <- r;
        efill.(e) <- efill.(e) + 1
      done)
    paths;
  let w = max 1 ((n + matrix_bits - 1) / matrix_bits) in
  let arc_word = Array.make (max 1 nroutes) 0 in
  let arc_bit = Array.make (max 1 nroutes) 0 in
  Array.iteri
    (fun r (src, dst, _) ->
      arc_word.(r) <- (src * w) + (dst / matrix_bits);
      arc_bit.(r) <- 1 lsl (dst mod matrix_bits))
    routes;
  let vx_word = Array.init n (fun v -> v / matrix_bits) in
  let vx_bit = Array.init n (fun v -> 1 lsl (v mod matrix_bits)) in
  Obs.incr c_compile_calls;
  Obs.add c_compile_routes nroutes;
  Obs.add c_compile_edges m;
  {
    n;
    nroutes;
    w;
    paths;
    via_start;
    via;
    edges;
    edge_ids;
    eia_start;
    eia;
    arc_word;
    arc_bit;
    vx_word;
    vx_bit;
    s_rows = Array.make (max 1 (n * w)) 0;
    s_alive = Array.make w 0;
    s_visited = Array.make w 0;
    s_front = Array.make w 0;
    s_next = Array.make w 0;
  }

let compiled_n c = c.n
let edge_count c = Array.length c.edges

let edge_pair c e =
  if e < 0 || e >= Array.length c.edges then
    invalid_arg "Surviving.edge_pair: edge id out of range";
  c.edges.(e)

let edge_id c u v =
  Hashtbl.find_opt c.edge_ids (if u < v then (u, v) else (v, u))

(* All-pairs worst eccentricity of the live bit matrix; [-1] encodes a
   disconnected pair. [bound >= 0] stops a source's BFS as soon as its
   eccentricity provably exceeds it (callers that only compare against
   a claimed bound never pay for the exact value); pass [max_int] for
   the exact diameter. *)

(* bounds: single-word matrix (w = 1); every index into [rows] is a
   bit index of a word already masked by the alive set, so it lies in
   [0, matrix_bits) = [0, Array.length rows). *)
let apsp_w1 rows alive ~bound =
  let track = Obs.enabled () in
  let wops = ref 0 in
  let worst = ref 0 in
  let exceeded = ref false in
  let av = ref alive in
  while (not !exceeded) && !av <> 0 do
    let s = Bitset.lowest_bit_index !av in
    av := !av land (!av - 1);
    let visited = ref (1 lsl s) in
    let front = ref !visited in
    let ecc = ref 0 in
    let growing = ref true in
    while !growing do
      if track then wops := !wops + Bitset.popcount !front;
      let nx = ref 0 in
      let fw = ref !front in
      while !fw <> 0 do
        nx := !nx lor Array.unsafe_get rows (Bitset.lowest_bit_index !fw);
        fw := !fw land (!fw - 1)
      done;
      let fresh = !nx land lnot !visited in
      if fresh = 0 then growing := false
      else begin
        visited := !visited lor fresh;
        front := fresh;
        incr ecc;
        if !ecc > bound then begin
          growing := false;
          exceeded := true
        end
      end
    done;
    if !visited <> alive then exceeded := true (* disconnected *)
    else worst := max !worst !ecc
  done;
  if track then Obs.add c_bfs_word_ops !wops;
  if !exceeded then -1 else !worst

(* bounds: u < n and j < w throughout, so row + j = u * w + j
   < n * w = Array.length rows, and j < w = Array.length next. *)
let apsp_gen ~n ~w rows alive visited front next ~bound =
  let track = Obs.enabled () in
  let wops = ref 0 in
  let worst = ref 0 in
  let exceeded = ref false in
  let s = ref 0 in
  while (not !exceeded) && !s < n do
    if alive.(!s / matrix_bits) land (1 lsl (!s mod matrix_bits)) <> 0 then begin
      Array.fill visited 0 w 0;
      Array.fill front 0 w 0;
      visited.(!s / matrix_bits) <- 1 lsl (!s mod matrix_bits);
      front.(!s / matrix_bits) <- visited.(!s / matrix_bits);
      let ecc = ref 0 in
      let growing = ref true in
      while !growing do
        Array.fill next 0 w 0;
        for wi = 0 to w - 1 do
          let fw = ref front.(wi) in
          let base = wi * matrix_bits in
          if track then wops := !wops + (w * Bitset.popcount !fw);
          while !fw <> 0 do
            let u = base + Bitset.lowest_bit_index !fw in
            fw := !fw land (!fw - 1);
            let row = u * w in
            for j = 0 to w - 1 do
              Array.unsafe_set next j
                (Array.unsafe_get next j lor Array.unsafe_get rows (row + j))
            done
          done
        done;
        let any = ref 0 in
        for j = 0 to w - 1 do
          let fresh = next.(j) land lnot visited.(j) in
          front.(j) <- fresh;
          visited.(j) <- visited.(j) lor fresh;
          any := !any lor fresh
        done;
        if !any = 0 then growing := false
        else begin
          incr ecc;
          if !ecc > bound then begin
            growing := false;
            exceeded := true
          end
        end
      done;
      if not (Array.for_all2 ( = ) visited alive) then exceeded := true
      else if not !exceeded then worst := max !worst !ecc
    end;
    incr s
  done;
  if track then Obs.add c_bfs_word_ops !wops;
  if !exceeded then -1 else !worst

let apsp c rows alive visited front next ~alive_count ~bound =
  if alive_count <= 1 then 0
  else if c.w = 1 then apsp_w1 rows alive.(0) ~bound
  else apsp_gen ~n:c.n ~w:c.w rows alive visited front next ~bound

(* bounds: the capacity check below guarantees v < c.n <= capacity
   faults for every unsafe_mem; p.(j) holds vertex ids < c.n by
   construction in [compile]. *)
let diameter_compiled c ~faults =
  if Bitset.capacity faults < c.n then
    invalid_arg "Surviving.diameter_compiled: fault set capacity too small";
  Array.fill c.s_rows 0 (c.n * c.w) 0;
  Array.fill c.s_alive 0 c.w 0;
  let alive_count = ref 0 in
  for v = 0 to c.n - 1 do
    if not (Bitset.unsafe_mem faults v) then begin
      incr alive_count;
      c.s_alive.(c.vx_word.(v)) <- c.s_alive.(c.vx_word.(v)) lor c.vx_bit.(v)
    end
  done;
  for r = 0 to c.nroutes - 1 do
    let p = c.paths.(r) in
    let len = Array.length p in
    let rec clean j = j >= len || ((not (Bitset.unsafe_mem faults p.(j))) && clean (j + 1)) in
    if clean 0 then
      c.s_rows.(c.arc_word.(r)) <- c.s_rows.(c.arc_word.(r)) lor c.arc_bit.(r)
  done;
  Obs.incr c_diameter_evals;
  let d =
    apsp c c.s_rows c.s_alive c.s_visited c.s_front c.s_next ~alive_count:!alive_count
      ~bound:max_int
  in
  if d < 0 then Metrics.Infinite else Metrics.Finite d

(* ------------------------------------------------------------------ *)
(* Incremental evaluator.                                             *)
(* ------------------------------------------------------------------ *)

type evaluator = {
  c : compiled;
  hits : int array; (* per route: how many of its vertices are faulty *)
  rows : int array; (* live adjacency matrix, kept in sync with hits *)
  alive : int array;
  visited : int array;
  front : int array;
  next : int array;
  faulty : Bitset.t;
  edge_faulty : Bitset.t; (* by edge id over [c.edges] *)
  mutable nalive : int;
  mutable nedges_down : int;
}

let evaluator c =
  let rows = Array.make (max 1 (c.n * c.w)) 0 in
  for r = 0 to c.nroutes - 1 do
    rows.(c.arc_word.(r)) <- rows.(c.arc_word.(r)) lor c.arc_bit.(r)
  done;
  let alive = Array.make c.w 0 in
  for v = 0 to c.n - 1 do
    alive.(c.vx_word.(v)) <- alive.(c.vx_word.(v)) lor c.vx_bit.(v)
  done;
  {
    c;
    hits = Array.make (max 1 c.nroutes) 0;
    rows;
    alive;
    visited = Array.make c.w 0;
    front = Array.make c.w 0;
    next = Array.make c.w 0;
    faulty = Bitset.create c.n;
    edge_faulty = Bitset.create (max 1 (Array.length c.edges));
    nalive = c.n;
    nedges_down = 0;
  }

let evaluator_n e = e.c.n
let is_faulty e v = Bitset.mem e.faulty v
let faults e = Bitset.elements e.faulty
let fault_count e = e.c.n - e.nalive
let is_edge_faulty e eid = Bitset.mem e.edge_faulty eid
let edge_faults e = Bitset.elements e.edge_faulty
let edge_fault_count e = e.nedges_down

(* bounds: the explicit range check admits only 0 <= v < c.n
   (= capacity of [faulty]); via/arc_word/arc_bit are indexed by route
   ids r < nroutes recorded by [compile]. *)
let apply_fault e v =
  if v < 0 || v >= e.c.n then invalid_arg "Surviving.apply_fault: vertex out of range";
  if Bitset.unsafe_mem e.faulty v then
    invalid_arg "Surviving.apply_fault: vertex already faulty";
  Bitset.unsafe_add e.faulty v;
  e.nalive <- e.nalive - 1;
  let c = e.c in
  e.alive.(c.vx_word.(v)) <- e.alive.(c.vx_word.(v)) land lnot c.vx_bit.(v);
  let hits = e.hits and rows = e.rows in
  let stop = c.via_start.(v + 1) - 1 in
  if Obs.enabled () then begin
    Obs.incr c_apply_node;
    Obs.add c_apply_node_routes (stop - c.via_start.(v) + 1)
  end;
  for i = c.via_start.(v) to stop do
    let r = Array.unsafe_get c.via i in
    let h = Array.unsafe_get hits r in
    if h = 0 then begin
      let wi = Array.unsafe_get c.arc_word r in
      Array.unsafe_set rows wi
        (Array.unsafe_get rows wi land lnot (Array.unsafe_get c.arc_bit r))
    end;
    Array.unsafe_set hits r (h + 1)
  done

(* bounds: mirror image of apply_fault — same range check, same
   compile-recorded route ids. *)
let revert_fault e v =
  if v < 0 || v >= e.c.n then invalid_arg "Surviving.revert_fault: vertex out of range";
  if not (Bitset.unsafe_mem e.faulty v) then
    invalid_arg "Surviving.revert_fault: vertex not faulty";
  Bitset.unsafe_remove e.faulty v;
  e.nalive <- e.nalive + 1;
  let c = e.c in
  e.alive.(c.vx_word.(v)) <- e.alive.(c.vx_word.(v)) lor c.vx_bit.(v);
  let hits = e.hits and rows = e.rows in
  let stop = c.via_start.(v + 1) - 1 in
  for i = c.via_start.(v) to stop do
    let r = Array.unsafe_get c.via i in
    let h = Array.unsafe_get hits r - 1 in
    Array.unsafe_set hits r h;
    if h = 0 then begin
      let wi = Array.unsafe_get c.arc_word r in
      Array.unsafe_set rows wi (Array.unsafe_get rows wi lor Array.unsafe_get c.arc_bit r)
    end
  done

(* Edge faults reuse the same per-route hit counters as node faults: a
   route is live iff no vertex on it is faulty and no edge of it is
   down, i.e. iff its counter is zero. The alive mask is untouched —
   the endpoints of a downed link stay alive. *)

(* bounds: the explicit range check admits only
   0 <= eid < Array.length c.edges (= capacity of [edge_faulty]); eia
   holds route ids r < nroutes recorded by [compile]. *)
let apply_edge_fault e eid =
  let c = e.c in
  if eid < 0 || eid >= Array.length c.edges then
    invalid_arg "Surviving.apply_edge_fault: edge id out of range";
  if Bitset.unsafe_mem e.edge_faulty eid then
    invalid_arg "Surviving.apply_edge_fault: edge already faulty";
  Bitset.unsafe_add e.edge_faulty eid;
  e.nedges_down <- e.nedges_down + 1;
  let hits = e.hits and rows = e.rows in
  let stop = c.eia_start.(eid + 1) - 1 in
  if Obs.enabled () then begin
    Obs.incr c_apply_edge;
    Obs.add c_apply_edge_routes (stop - c.eia_start.(eid) + 1)
  end;
  for i = c.eia_start.(eid) to stop do
    let r = Array.unsafe_get c.eia i in
    let h = Array.unsafe_get hits r in
    if h = 0 then begin
      let wi = Array.unsafe_get c.arc_word r in
      Array.unsafe_set rows wi
        (Array.unsafe_get rows wi land lnot (Array.unsafe_get c.arc_bit r))
    end;
    Array.unsafe_set hits r (h + 1)
  done

(* bounds: mirror image of apply_edge_fault — same range check, same
   compile-recorded route ids. *)
let revert_edge_fault e eid =
  let c = e.c in
  if eid < 0 || eid >= Array.length c.edges then
    invalid_arg "Surviving.revert_edge_fault: edge id out of range";
  if not (Bitset.unsafe_mem e.edge_faulty eid) then
    invalid_arg "Surviving.revert_edge_fault: edge not faulty";
  Bitset.unsafe_remove e.edge_faulty eid;
  e.nedges_down <- e.nedges_down - 1;
  let hits = e.hits and rows = e.rows in
  let stop = c.eia_start.(eid + 1) - 1 in
  for i = c.eia_start.(eid) to stop do
    let r = Array.unsafe_get c.eia i in
    let h = Array.unsafe_get hits r - 1 in
    Array.unsafe_set hits r h;
    if h = 0 then begin
      let wi = Array.unsafe_get c.arc_word r in
      Array.unsafe_set rows wi (Array.unsafe_get rows wi lor Array.unsafe_get c.arc_bit r)
    end
  done

let reset e =
  List.iter (revert_fault e) (Bitset.elements e.faulty);
  List.iter (revert_edge_fault e) (Bitset.elements e.edge_faulty)

let set_faults e vs =
  reset e;
  List.iter (apply_fault e) vs

let set_mixed_faults e ~nodes ~edges =
  reset e;
  List.iter (apply_fault e) nodes;
  List.iter (apply_edge_fault e) edges

let evaluator_diameter e =
  Obs.incr c_diameter_evals;
  let d =
    apsp e.c e.rows e.alive e.visited e.front e.next ~alive_count:e.nalive ~bound:max_int
  in
  if d < 0 then Metrics.Infinite else Metrics.Finite d

(* Diameter over a subset of the alive vertices: BFS sources and the
   recorded eccentricities range over [targets] only, while any alive
   vertex may still relay. This is the comparison the paper's
   edge->endpoint reduction actually makes: a downed link's endpoints
   stay alive (and may forward), but the projected surviving set
   excludes them. *)

(* bounds: as apsp_w1 — bit indices of alive-masked words stay below
   matrix_bits = Array.length rows. *)
let apsp_w1_over rows alive targets =
  let track = Obs.enabled () in
  let wops = ref 0 in
  let worst = ref 0 in
  let inf = ref false in
  let tv = ref targets in
  while (not !inf) && !tv <> 0 do
    let s = Bitset.lowest_bit_index !tv in
    tv := !tv land (!tv - 1);
    let visited = ref (1 lsl s) in
    let front = ref !visited in
    let level = ref 0 in
    let ecc = ref 0 in
    let growing = ref true in
    while !growing && !visited land targets <> targets do
      if track then wops := !wops + Bitset.popcount !front;
      let nx = ref 0 in
      let fw = ref !front in
      while !fw <> 0 do
        nx := !nx lor Array.unsafe_get rows (Bitset.lowest_bit_index !fw);
        fw := !fw land (!fw - 1)
      done;
      let fresh = !nx land lnot !visited land alive in
      if fresh = 0 then growing := false
      else begin
        incr level;
        visited := !visited lor fresh;
        front := fresh;
        if fresh land targets <> 0 then ecc := !level
      end
    done;
    if !visited land targets <> targets then inf := true
    else worst := max !worst !ecc
  done;
  if track then Obs.add c_bfs_word_ops !wops;
  if !inf then -1 else !worst

(* bounds: as apsp_gen — u < n and j < w keep row + j < n * w =
   Array.length rows. *)
let apsp_gen_over ~n ~w rows alive targets visited front next =
  let track = Obs.enabled () in
  let wops = ref 0 in
  let worst = ref 0 in
  let inf = ref false in
  let covered () =
    let ok = ref true in
    for j = 0 to w - 1 do
      if visited.(j) land targets.(j) <> targets.(j) then ok := false
    done;
    !ok
  in
  let s = ref 0 in
  while (not !inf) && !s < n do
    if targets.(!s / matrix_bits) land (1 lsl (!s mod matrix_bits)) <> 0 then begin
      Array.fill visited 0 w 0;
      Array.fill front 0 w 0;
      visited.(!s / matrix_bits) <- 1 lsl (!s mod matrix_bits);
      front.(!s / matrix_bits) <- visited.(!s / matrix_bits);
      let level = ref 0 in
      let ecc = ref 0 in
      let growing = ref true in
      while !growing && not (covered ()) do
        Array.fill next 0 w 0;
        for wi = 0 to w - 1 do
          let fw = ref front.(wi) in
          let base = wi * matrix_bits in
          if track then wops := !wops + (w * Bitset.popcount !fw);
          while !fw <> 0 do
            let u = base + Bitset.lowest_bit_index !fw in
            fw := !fw land (!fw - 1);
            let row = u * w in
            for j = 0 to w - 1 do
              Array.unsafe_set next j
                (Array.unsafe_get next j lor Array.unsafe_get rows (row + j))
            done
          done
        done;
        let any = ref 0 and hit = ref 0 in
        for j = 0 to w - 1 do
          let fresh = next.(j) land lnot visited.(j) land alive.(j) in
          front.(j) <- fresh;
          visited.(j) <- visited.(j) lor fresh;
          any := !any lor fresh;
          hit := !hit lor (fresh land targets.(j))
        done;
        if !any = 0 then growing := false
        else begin
          incr level;
          if !hit <> 0 then ecc := !level
        end
      done;
      if not (covered ()) then inf := true else worst := max !worst !ecc
    end;
    incr s
  done;
  if track then Obs.add c_bfs_word_ops !wops;
  if !inf then -1 else !worst

(* bounds: the capacity check below guarantees v < c.n <= capacity
   targets for every unsafe_mem. *)
let evaluator_diameter_over e ~targets =
  let c = e.c in
  if Bitset.capacity targets < c.n then
    invalid_arg "Surviving.evaluator_diameter_over: target set capacity too small";
  let tw = Array.make c.w 0 in
  let count = ref 0 in
  for v = 0 to c.n - 1 do
    if Bitset.unsafe_mem targets v then begin
      if e.alive.(c.vx_word.(v)) land c.vx_bit.(v) = 0 then
        invalid_arg "Surviving.evaluator_diameter_over: target vertex is faulty";
      incr count;
      tw.(c.vx_word.(v)) <- tw.(c.vx_word.(v)) lor c.vx_bit.(v)
    end
  done;
  Obs.incr c_diameter_evals;
  let d =
    if !count <= 1 then 0
    else if c.w = 1 then apsp_w1_over e.rows e.alive.(0) tw.(0)
    else apsp_gen_over ~n:c.n ~w:c.w e.rows e.alive tw e.visited e.front e.next
  in
  if d < 0 then Metrics.Infinite else Metrics.Finite d

(* Route-level path extraction for the serving layer: BFS over the
   live adjacency matrix with parent tracking. Per-query cost is one
   ordinary BFS — the word-parallel sweeps above answer diameter
   questions, this answers "how do I get there from here" for one
   pair, which is what a route server does all day. *)
let c_route_plans = Obs.counter "engine.route_plans"

let evaluator_route e ~src ~dst =
  let c = e.c in
  if src < 0 || src >= c.n || dst < 0 || dst >= c.n then
    invalid_arg "Surviving.evaluator_route: vertex out of range";
  if Bitset.mem e.faulty src || Bitset.mem e.faulty dst then
    invalid_arg "Surviving.evaluator_route: faulty endpoint";
  Obs.incr c_route_plans;
  if src = dst then Some [ src ]
  else begin
    let parent = Array.make c.n (-1) in
    parent.(src) <- src;
    let q = Queue.create () in
    Queue.add src q;
    let found = ref false in
    while (not !found) && not (Queue.is_empty q) do
      let u = Queue.pop q in
      let row = u * c.w in
      let wi = ref 0 in
      while (not !found) && !wi < c.w do
        let word = e.rows.(row + !wi) land e.alive.(!wi) in
        let base = !wi * matrix_bits in
        let fw = ref word in
        while (not !found) && !fw <> 0 do
          let v = base + Bitset.lowest_bit_index !fw in
          fw := !fw land (!fw - 1);
          if v < c.n && parent.(v) < 0 then begin
            parent.(v) <- u;
            if v = dst then found := true else Queue.add v q
          end
        done;
        incr wi
      done
    done;
    if not !found then None
    else begin
      let rec walk v acc = if v = src then v :: acc else walk parent.(v) (v :: acc) in
      Some (walk dst [])
    end
  end

let diameter_exceeds e ~bound =
  (* diameter > bound; the surviving diameter is at least Finite 0, so
     a negative bound is always exceeded. *)
  Obs.incr c_exceeds_calls;
  let exceeded =
    bound < 0
    || apsp e.c e.rows e.alive e.visited e.front e.next ~alive_count:e.nalive ~bound < 0
  in
  if exceeded then Obs.incr c_exceeds_early;
  exceeded

let component_diameters routing ~faults =
  let dg = graph routing ~faults in
  let n = Digraph.n dg in
  (* Weak components: union arcs in both directions, reading the
     digraph's adjacency arrays directly. *)
  let undirected =
    let b = Graph.Builder.create n in
    for u = 0 to n - 1 do
      Array.iter (fun v -> Graph.Builder.add_edge b u v) (Digraph.succ dg u)
    done;
    Graph.Builder.to_graph b
  in
  let seen = Bitset.create n in
  let components = ref [] in
  for v = 0 to n - 1 do
    if alive faults v && not (Bitset.mem seen v) then begin
      let comp =
        Traversal.component_of undirected ~allowed:(alive faults) v
      in
      Bitset.union_into seen comp;
      let members = Bitset.elements comp in
      (* Directed diameter inside the component. *)
      let inside u = Bitset.mem comp u in
      let worst = ref (Metrics.Finite 0) in
      List.iter
        (fun x ->
          let dist = Digraph.bfs dg ~allowed:inside x in
          List.iter
            (fun y ->
              if y <> x then
                let d =
                  if dist.(y) < 0 then Metrics.Infinite else Metrics.Finite dist.(y)
                in
                worst := Metrics.max_distance !worst d)
            members)
        members;
      components := (members, !worst) :: !components
    end
  done;
  List.rev !components
