(** The tri-circular construction (Section 4, Theorem 13 and
    Remark 14).

    The neighborhood set is split into three rings. Every vertex of a
    ring's fringe routes within its ring (to the next [t+1] sets for
    the full variant, to the circular window for the small variant)
    and to {e every} set of the next ring, cyclically. Full variant
    ([K >= 6t+9]): [(4, t)]-tolerant. Small variant ([K >= 3(t+1)] or
    [3(t+2)] as for the circular base): [(5, t)]-tolerant. *)

open Ftr_graph

type variant = Full | Small

val required_k : t:int -> variant:variant -> int

val make : ?m:int list -> Graph.t -> t:int -> variant:variant -> Construction.t
(** [m] defaults to the greedy neighborhood set; only the first
    [3 * floor(|m| / 3)] members are used (rings must be equal).
    Raises [Invalid_argument] on an undersized or invalid [m]. *)
