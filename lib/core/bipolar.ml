open Ftr_graph

type setup = {
  r1 : int;
  r2 : int;
  m1 : int list;
  m2 : int list;
  gamma1 : Bitset.t;  (* union of Gamma(m) over m in M1, r1 included *)
  gamma2 : Bitset.t;
}

let prepare ?roots g =
  let r1, r2 =
    match roots with
    | Some (r1, r2) ->
        if not (Two_trees.verify g r1 r2) then
          invalid_arg "Bipolar: supplied roots fail the two-trees property";
        (r1, r2)
    | None -> (
        match Two_trees.find g with
        | Some pair -> pair
        | None -> invalid_arg "Bipolar: graph lacks the two-trees property")
  in
  let m1 = Array.to_list (Graph.neighbors g r1) in
  let m2 = Array.to_list (Graph.neighbors g r2) in
  let union_of members =
    let s = Bitset.create (Graph.n g) in
    List.iter (fun m -> Array.iter (Bitset.add s) (Graph.neighbors g m)) members;
    s
  in
  { r1; r2; m1; m2; gamma1 = union_of m1; gamma2 = union_of m2 }

let pools g s =
  let nbhd v = Array.to_list (Graph.neighbors g v) in
  [ s.m1; s.m2; s.m1 @ s.m2; s.r1 :: s.r2 :: (s.m1 @ s.m2) ]
  @ List.map nbhd s.m1 @ List.map nbhd s.m2

let fringe_trees routing g members ~t =
  (* Components (2)B-POL 3/4: from every member of M_side to the
     neighborhood of every member of the same side. *)
  List.iter
    (fun src ->
      List.iter
        (fun m' ->
          let targets = Array.to_list (Graph.neighbors g m') in
          Tree_routing.add_to routing (Tree_routing.make g ~src ~targets ~k:(t + 1)))
        members)
    members

let make_unidirectional ?roots g ~t =
  let s = prepare ?roots g in
  let n = Graph.n g in
  let in_m1 = Bitset.of_list n s.m1 and in_m2 = Bitset.of_list n s.m2 in
  let routing = Routing.create g Routing.Unidirectional in
  let tree x targets =
    Tree_routing.add_to routing (Tree_routing.make g ~src:x ~targets ~k:(t + 1))
  in
  (* B-POL 1 and B-POL 2: every node outside M_side routes to it. *)
  Graph.iter_vertices (fun x -> if not (Bitset.mem in_m1 x) then tree x s.m1) g;
  Graph.iter_vertices (fun x -> if not (Bitset.mem in_m2 x) then tree x s.m2) g;
  (* B-POL 3 and B-POL 4. *)
  fringe_trees routing g s.m1 ~t;
  fringe_trees routing g s.m2 ~t;
  (* B-POL 5: complete missing reverse directions along the same path. *)
  Routing.complete_reverses routing;
  (* B-POL 6: direct edge routes. *)
  Routing.add_edge_routes routing;
  {
    Construction.name = Printf.sprintf "bipolar/uni(r1=%d,r2=%d)" s.r1 s.r2;
    routing;
    concentrator = s.m1 @ s.m2;
    structure = Construction.Two_poles { r1 = s.r1; r2 = s.r2 };
    pools = pools g s;
    claims = [ Construction.claim ~bound:4 ~faults:t "Theorem 20" ];
  }

let make_bidirectional ?roots g ~t =
  let s = prepare ?roots g in
  let n = Graph.n g in
  let in_m1 = Bitset.of_list n s.m1 and in_m2 = Bitset.of_list n s.m2 in
  let routing = Routing.create g Routing.Bidirectional in
  let tree x targets =
    Tree_routing.add_to routing (Tree_routing.make g ~src:x ~targets ~k:(t + 1))
  in
  (* 2B-POL 1: x outside M and Gamma_1 routes to M1. *)
  Graph.iter_vertices
    (fun x ->
      if
        (not (Bitset.mem in_m1 x))
        && (not (Bitset.mem in_m2 x))
        && not (Bitset.mem s.gamma1 x)
      then tree x s.m1)
    g;
  (* 2B-POL 2: x outside M2 and Gamma_2 routes to M2 (this includes
     all of M1, which realises Property 2B-POL 3). *)
  Graph.iter_vertices
    (fun x ->
      if (not (Bitset.mem in_m2 x)) && not (Bitset.mem s.gamma2 x) then tree x s.m2)
    g;
  (* 2B-POL 3 and 2B-POL 4. *)
  fringe_trees routing g s.m1 ~t;
  fringe_trees routing g s.m2 ~t;
  (* 2B-POL 5: direct edge routes. *)
  Routing.add_edge_routes routing;
  {
    Construction.name = Printf.sprintf "bipolar/bi(r1=%d,r2=%d)" s.r1 s.r2;
    routing;
    concentrator = s.m1 @ s.m2;
    structure = Construction.Two_poles { r1 = s.r1; r2 = s.r2 };
    pools = pools g s;
    claims = [ Construction.claim ~bound:5 ~faults:t "Theorem 23" ];
  }
