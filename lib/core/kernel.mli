(** The basic kernel construction of Dolev, Halpern, Simons and Strong
    (Section 3).

    Given a minimal separating set [M] of a [(t+1)]-connected graph,
    route every outside vertex to [M] by a tree routing and give every
    adjacent pair the direct edge. Theorem 3: the result is
    [(max(2t,4), t)]-tolerant; Theorem 4 (this paper): it is also
    [(4, floor(t/2))]-tolerant. *)

open Ftr_graph

val make : ?m:int list -> Graph.t -> t:int -> Construction.t
(** [m] defaults to a minimum vertex cut. Raises [Invalid_argument] if
    the graph is complete (no separating set exists) or [m] is not a
    separating set of size at least [t+1]; {!Tree_routing.Insufficient}
    propagates if the graph is not [(t+1)]-connected. *)
