open Ftr_graph

let default_separator g =
  match Separator.minimum g with
  | Some (_ :: _ as m) -> m
  | Some [] -> invalid_arg "Kernel.make: graph is disconnected"
  | None -> invalid_arg "Kernel.make: complete graph has no separating set"

let pools g ~m =
  let neighborhoods = List.map (fun v -> Array.to_list (Graph.neighbors g v)) m in
  let fringe = List.sort_uniq compare (List.concat neighborhoods) in
  (m :: neighborhoods) @ [ m @ fringe ]

let make ?m g ~t =
  let m = match m with Some m -> m | None -> default_separator g in
  if List.length m < t + 1 then
    invalid_arg "Kernel.make: separating set smaller than t+1";
  if not (Separator.is_separator g m) then
    invalid_arg "Kernel.make: M is not a separating set";
  let routing = Routing.create g Routing.Bidirectional in
  let in_m = Bitset.of_list (Graph.n g) m in
  (* Component KERNEL 1: a tree routing from each outside node to M. *)
  Graph.iter_vertices
    (fun x ->
      if not (Bitset.mem in_m x) then
        Tree_routing.add_to routing (Tree_routing.make g ~src:x ~targets:m ~k:(t + 1)))
    g;
  (* Component KERNEL 2: direct edge routes. *)
  Routing.add_edge_routes routing;
  {
    Construction.name = "kernel";
    routing;
    concentrator = m;
    structure = Construction.Separator m;
    pools = pools g ~m;
    claims =
      [
        Construction.claim ~bound:(max (2 * t) 4) ~faults:t "Theorem 3 (Dolev et al.)";
        Construction.claim ~bound:4 ~faults:(t / 2) "Theorem 4";
      ];
  }
