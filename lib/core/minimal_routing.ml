open Ftr_graph

(* BFS parents with deterministic tie-breaking: neighbors are scanned
   in sorted order, so the parent of each vertex is the smallest-index
   vertex on the previous BFS level. *)
let shortest_paths_from g src =
  let dist, parent = Traversal.bfs_parents g src in
  (dist, parent)

let path_from_parents parent ~src ~dst =
  let rec walk v acc = if v = src then v :: acc else walk parent.(v) (v :: acc) in
  Path.of_list (walk dst [])

let build ~name ~kind g =
  let routing = Routing.create g kind in
  let n = Graph.n g in
  for src = 0 to n - 1 do
    let dist, parent = shortest_paths_from g src in
    for dst = 0 to n - 1 do
      if dst <> src && dist.(dst) >= 0 then begin
        let forward_only =
          match kind with
          | Routing.Unidirectional -> true
          | Routing.Bidirectional -> src < dst
        in
        if forward_only then Routing.add routing (path_from_parents parent ~src ~dst)
      end
    done
  done;
  {
    Construction.name;
    routing;
    concentrator = [];
    structure = Construction.Unstructured;
    pools = [];
    claims = [];
  }

let make g = build ~name:"minimal (shortest paths)" ~kind:Routing.Bidirectional g

let make_unidirectional g =
  build ~name:"minimal/uni (shortest paths)" ~kind:Routing.Unidirectional g
