open Ftr_graph

type report = { property : string; holds : bool; counterexample : string option }

let ok property = { property; holds = true; counterexample = None }

let bad property fmt =
  Printf.ksprintf
    (fun s -> { property; holds = false; counterexample = Some s })
    fmt

let all_hold = List.for_all (fun r -> r.holds)

let pp_report ppf r =
  match r.counterexample with
  | None -> Fmt.pf ppf "%s: %s" r.property (if r.holds then "holds" else "fails")
  | Some c -> Fmt.pf ppf "%s: fails (%s)" r.property c

(* Shared context: the surviving graph and per-source BFS distances
   over it. *)
type ctx = {
  n : int;
  faults : Bitset.t;
  dg : Digraph.t;
  dist_cache : (int, int array) Hashtbl.t;
}

let make_ctx routing ~faults =
  {
    n = Graph.n (Routing.graph routing);
    faults;
    dg = Surviving.graph routing ~faults;
    dist_cache = Hashtbl.create 64;
  }

let alive ctx v = not (Bitset.mem ctx.faults v)

let dist_from ctx src =
  match Hashtbl.find_opt ctx.dist_cache src with
  | Some d -> d
  | None ->
      let d = Digraph.bfs ctx.dg ~allowed:(alive ctx) src in
      Hashtbl.add ctx.dist_cache src d;
      d

let dist ctx x y =
  let d = (dist_from ctx x).(y) in
  if d < 0 then max_int else d

let alive_vertices ctx = List.filter (alive ctx) (List.init ctx.n Fun.id)
let alive_members ctx members = List.filter (alive ctx) members

(* ------------------------------------------------------------------ *)
(* Kernel: Lemma 1 both ways                                          *)
(* ------------------------------------------------------------------ *)

let kernel_reports ctx m =
  let in_m = Bitset.of_list ctx.n m in
  let live_m = alive_members ctx m in
  let missing name what has =
    List.find_opt
      (fun x -> (not (Bitset.mem in_m x)) && not (List.exists (has x) live_m))
      (alive_vertices ctx)
    |> function
    | None -> ok name
    | Some x -> bad name "node %d has no surviving %s" x what
  in
  [
    missing "KERNEL (Lemma 1, out)" "edge into M" (fun x y -> Digraph.mem_arc ctx.dg x y);
    missing "KERNEL (Lemma 1, in)" "edge from M" (fun x y -> Digraph.mem_arc ctx.dg y x);
  ]

(* ------------------------------------------------------------------ *)
(* Circular: CIRC 1, CIRC 2 (large K) / Property CIRC (small K)       *)
(* ------------------------------------------------------------------ *)

let circ1 ctx members =
  let live_m = alive_members ctx members in
  let outside =
    List.filter (fun x -> not (List.mem x members)) (alive_vertices ctx)
  in
  match
    List.find_opt
      (fun x -> not (List.exists (fun y -> dist ctx x y <= 2) live_m))
      outside
  with
  | None -> ok "CIRC 1"
  | Some x -> bad "CIRC 1" "node %d is > 2 from every surviving member" x

let circ2 ctx members =
  let live_m = alive_members ctx members in
  let offenders =
    List.concat_map
      (fun x ->
        List.filter_map
          (fun y -> if x <> y && dist ctx x y > 2 then Some (x, y) else None)
          live_m)
      live_m
  in
  match offenders with
  | [] -> ok "CIRC 2"
  | (x, y) :: _ -> bad "CIRC 2" "members %d and %d are > 2 apart" x y

let common_member ctx members ~r1 ~r2 name =
  let live_m = alive_members ctx members in
  let vertices = alive_vertices ctx in
  let pair_fails x y =
    not
      (List.exists (fun z -> dist ctx x z <= r1 && dist ctx z y <= r2) live_m
      || List.exists (fun z -> dist ctx x z <= r2 && dist ctx z y <= r1) live_m)
  in
  let offender =
    List.find_map
      (fun x ->
        List.find_map
          (fun y -> if x <> y && pair_fails x y then Some (x, y) else None)
          vertices)
      vertices
  in
  match offender with
  | None -> ok name
  | Some (x, y) ->
      bad name "no surviving member within (%d,%d) of both %d and %d" r1 r2 x y

let circular_reports ctx members ~t ~window =
  (* CIRC 1 needs each fringe node's own member plus its window of
     onward members to exceed the fault budget (Lemma 7's argument),
     which holds for the paper's full window when K >= 2t+1. Narrower
     windows only support the weaker Property CIRC of Lemma 9. *)
  if List.length members >= (2 * t) + 1 && window >= t then
    [ circ1 ctx members; circ2 ctx members ]
  else [ common_member ctx members ~r1:3 ~r2:3 "CIRC" ]

(* ------------------------------------------------------------------ *)
(* Tri-circular: T-CIRC                                               *)
(* ------------------------------------------------------------------ *)

let tri_reports ctx members ~t ~within_window =
  (* Full variant routes to t+1 sets within the ring; the small variant
     uses the circular half-window and only supports the (2,3) radius
     argument of Remark 14. *)
  if within_window >= t + 1 then [ common_member ctx members ~r1:2 ~r2:2 "T-CIRC" ]
  else [ common_member ctx members ~r1:2 ~r2:3 "T-CIRC (small)" ]

(* ------------------------------------------------------------------ *)
(* Bipolar: B-POL 1-4 / 2B-POL 1-3                                    *)
(* ------------------------------------------------------------------ *)

let exists_at_one ctx x live ~incoming =
  List.exists
    (fun y -> if incoming then Digraph.mem_arc ctx.dg y x else Digraph.mem_arc ctx.dg x y)
    live

let bpol_side ctx name ~members ~skip ~incoming =
  let live = alive_members ctx members in
  match
    List.find_opt
      (fun x -> (not (List.mem x skip)) && not (exists_at_one ctx x live ~incoming))
      (alive_vertices ctx)
  with
  | None -> ok name
  | Some x ->
      bad name "node %d has no surviving %s at distance 1" x
        (if incoming then "in-neighbor" else "out-neighbor")

let within_two ctx name members =
  let live = alive_members ctx members in
  let offenders =
    List.concat_map
      (fun x ->
        List.filter_map
          (fun y -> if x <> y && dist ctx x y > 2 then Some (x, y) else None)
          live)
      live
  in
  match offenders with
  | [] -> ok name
  | (x, y) :: _ -> bad name "members %d and %d are > 2 apart" x y

let bipolar_uni_reports ctx g ~r1 ~r2 =
  let m1 = Array.to_list (Graph.neighbors g r1) in
  let m2 = Array.to_list (Graph.neighbors g r2) in
  [
    bpol_side ctx "B-POL 1" ~members:m1 ~skip:m1 ~incoming:false;
    bpol_side ctx "B-POL 2" ~members:m2 ~skip:m2 ~incoming:false;
    bpol_side ctx "B-POL 3" ~members:(m1 @ m2) ~skip:(m1 @ m2) ~incoming:true;
    within_two ctx "B-POL 4 (M1)" m1;
    within_two ctx "B-POL 4 (M2)" m2;
  ]

let bipolar_bi_reports ctx g ~r1 ~r2 =
  let m1 = Array.to_list (Graph.neighbors g r1) in
  let m2 = Array.to_list (Graph.neighbors g r2) in
  let live_m2 = alive_members ctx m2 in
  let prop3 =
    match
      List.find_opt
        (fun x -> not (exists_at_one ctx x live_m2 ~incoming:false))
        (alive_members ctx m1)
    with
    | None -> ok "2B-POL 3"
    | Some x -> bad "2B-POL 3" "M1 member %d has no surviving M2 neighbor" x
  in
  [
    bpol_side ctx "2B-POL 1" ~members:(m1 @ m2) ~skip:(m1 @ m2) ~incoming:false;
    within_two ctx "2B-POL 2 (M1)" m1;
    within_two ctx "2B-POL 2 (M2)" m2;
    prop3;
  ]

(* ------------------------------------------------------------------ *)
(* Dispatch                                                           *)
(* ------------------------------------------------------------------ *)

let check (c : Construction.t) ~faults =
  let ctx = make_ctx c.Construction.routing ~faults in
  let g = Routing.graph c.Construction.routing in
  let t =
    List.fold_left
      (fun acc (claim : Construction.claim) -> max acc claim.max_faults)
      0 c.Construction.claims
  in
  match c.Construction.structure with
  | Construction.Separator m -> kernel_reports ctx m
  | Construction.Neighborhood { members; window } ->
      circular_reports ctx members ~t ~window
  | Construction.Tri_rings { members; ring = _; within_window } ->
      tri_reports ctx members ~t ~within_window
  | Construction.Two_poles { r1; r2 } -> (
      match Routing.kind c.Construction.routing with
      | Routing.Unidirectional -> bipolar_uni_reports ctx g ~r1 ~r2
      | Routing.Bidirectional -> bipolar_bi_reports ctx g ~r1 ~r2)
  | Construction.Unstructured -> []
