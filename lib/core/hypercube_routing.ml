open Ftr_graph

let ecube_path ~d ~src ~dst =
  let rec go cur bit acc =
    if bit = d then List.rev acc
    else
      let mask = 1 lsl bit in
      if cur land mask <> dst land mask then go (cur lxor mask) (bit + 1) (cur lxor mask :: acc)
      else go cur (bit + 1) acc
  in
  Path.of_list (src :: go src 0 [])

let build ~name ~kind d =
  let g = Families.hypercube d in
  let routing = Routing.create g kind in
  let n = Graph.n g in
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      if src <> dst then begin
        let forward_only =
          match kind with
          | Routing.Unidirectional -> true
          | Routing.Bidirectional -> src < dst
        in
        if forward_only then Routing.add routing (ecube_path ~d ~src ~dst)
      end
    done
  done;
  {
    Construction.name;
    routing;
    concentrator = [];
    structure = Construction.Unstructured;
    pools = [];
    claims = [];
  }

let ecube d = build ~name:(Printf.sprintf "ecube(Q%d)" d) ~kind:Routing.Unidirectional d

let ecube_bidirectional d =
  build ~name:(Printf.sprintf "ecube-bi(Q%d)" d) ~kind:Routing.Bidirectional d

let graph_of (c : Construction.t) = Routing.graph c.Construction.routing
