(** Route-table persistence.

    The whole point of fixed routings is that the table is computed
    once and reused (Section 1), so a real deployment stores it. The
    format is line-oriented text:

    {v
    ftr-routing 1 <n> <uni|bi>
    <src> <dst> <v0>,<v1>,...,<vk>
    ...
    v}

    For bidirectional tables only one orientation per pair is stored;
    the loader restores the symmetric closure.

    Compact routings whose scheme has a one-token spec (labels,
    trees — see [Compact.spec]) serialise as a single version-2
    header instead of O(n^2) rows:

    {v
    ftr-routing 2 <n> <uni|bi> compact <spec>
    v}

    Packed compact routings have no spec and round-trip through the
    version-1 row format (loading yields an equivalent hashtable
    routing; re-compact with [Routing.compact_copy] if needed). *)

open Ftr_graph

val kind_of_tag : string -> Routing.kind option
(** Parse a header kind tag: ["uni"] or ["bi"]. Exposed so header-only
    certifiers ({!Ftr_analysis.Certify}) agree with the loader on what
    counts as a known kind. *)

val save : Buffer.t -> Routing.t -> unit

val to_string : Routing.t -> string

val load : Graph.t -> string -> (Routing.t, string) result
(** Re-validates every line against the given graph: unknown vertices,
    non-edges, duplicate pairs and conflicting reverses are reported
    as errors, not silently accepted. *)
