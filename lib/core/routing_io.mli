(** Route-table persistence.

    The whole point of fixed routings is that the table is computed
    once and reused (Section 1), so a real deployment stores it. The
    format is line-oriented text:

    {v
    ftr-routing 1 <n> <uni|bi>
    <src> <dst> <v0>,<v1>,...,<vk>
    ...
    v}

    For bidirectional tables only one orientation per pair is stored;
    the loader restores the symmetric closure. *)

open Ftr_graph

val save : Buffer.t -> Routing.t -> unit

val to_string : Routing.t -> string

val load : Graph.t -> string -> (Routing.t, string) result
(** Re-validates every line against the given graph: unknown vertices,
    non-edges, duplicate pairs and conflicting reverses are reported
    as errors, not silently accepted. *)
