(** Memory-budget guard for the large-table paths.

    The point of compact tables is to fit 10{^5}–10{^6}-node routings
    in memory; a guard that measures instead of estimating keeps that
    claim honest. Measurement is [Gc.live_words] after a forced full
    major collection — heap words actually retained, independent of
    allocation rate and of how much the OS has mapped. *)

exception Exceeded of { stage : string; live_mb : float; limit_mb : int }
(** Registered with a printer, so an uncaught breach reads
    ["Budget.Exceeded: 812.4 MB live after build exceeds --budget-mb
    512"]. *)

val live_bytes : unit -> int
(** Live heap bytes after [Gc.full_major ()]. Costs a full major
    collection: call at stage boundaries, not in loops. *)

val live_mb : unit -> float

val check : ?limit_mb:int -> stage:string -> unit -> unit
(** [check ~limit_mb ~stage ()] raises {!Exceeded} when the live heap
    exceeds the limit; no-op when [limit_mb] is [None] (unbounded). *)
