open Ftr_graph

exception Insufficient of { src : int; wanted : int; got : int }

let normalize g src p =
  let tgt = Path.target p in
  if Graph.mem_edge g src tgt then Path.edge src tgt else p

let make g ~src ~targets ~k =
  let paths = Disjoint_paths.fan_to_set g ~src ~targets ~k () in
  let got = List.length paths in
  if got < k then raise (Insufficient { src; wanted = k; got });
  List.map (normalize g src) paths

let add_to routing paths = List.iter (Routing.add routing) paths

let verify g ~src ~targets ~k paths =
  let target_set = Bitset.of_list (Graph.n g) targets in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if List.length paths <> k then err "expected %d paths, got %d" k (List.length paths)
  else
    let seen_targets = Hashtbl.create k in
    let seen_interior = Hashtbl.create 16 in
    let rec check = function
      | [] -> Ok ()
      | p :: rest ->
          let tgt = Path.target p in
          if Path.source p <> src then err "path does not start at %d" src
          else if not (Bitset.mem target_set tgt) then err "path ends at non-target %d" tgt
          else if Hashtbl.mem seen_targets tgt then err "target %d reused" tgt
          else if not (Path.is_valid_in g p) then err "path leaves the graph"
          else if Graph.mem_edge g src tgt && Path.length p > 1 then
            err "direct edge to %d exists but a longer path was used" tgt
          else begin
            Hashtbl.add seen_targets tgt ();
            let clash = ref None in
            List.iter
              (fun v ->
                if Bitset.mem target_set v then clash := Some (`Target v)
                else if Hashtbl.mem seen_interior v then clash := Some (`Shared v)
                else Hashtbl.add seen_interior v ())
              (Path.interior p);
            match !clash with
            | Some (`Target v) -> err "interior vertex %d lies in the target set" v
            | Some (`Shared v) -> err "interior vertex %d shared between paths" v
            | None -> check rest
          end
    in
    check paths
