(** Compact route tables: answer [find] from vertex labels or flat
    arrays instead of a per-pair hashtable.

    Three shapes, all behind the same interface (and behind
    {!Routing.t} via [Routing.of_compact]):

    - {b label schemes} for the structured families — hypercube e-cube
      bit fixing, de Bruijn shift-in with loop erasure, cube-connected
      cycles walk — O(1) state, routes computed on demand from the two
      vertex labels;
    - a {b tree interval scheme} — parent array plus Euler-tour
      preorder intervals; the next hop toward [v] is found by binary
      search over the child intervals partitioning the current cell
      (the partition-map idiom), O(n) words total;
    - a {b packed} scheme — any explicit table re-encoded into four
      flat int arrays (entries grouped by source, destinations sorted,
      vertex sequences concatenated), preserving the route set
      bit-for-bit while dropping per-entry boxing.

    All schemes are immutable once built. *)

open Ftr_graph

type t

val n : t -> int
(** Vertex count of the underlying graph. *)

val route_count : t -> int
(** Number of routed ordered pairs ([n * (n-1)] for the label schemes,
    which route every pair). *)

val find : t -> int -> int -> Path.t option
(** The route for an ordered pair; [None] for self pairs, out-of-range
    vertices, unrouted pairs (packed) or cross-component pairs
    (tree). The returned path is built on demand — callers that only
    need existence should use {!mem}. *)

val mem : t -> int -> int -> bool

val iter : (int -> int -> Path.t -> unit) -> t -> unit
(** Visits routes in ascending [(src, dst)] order. For label schemes
    this enumerates all [n * (n-1)] pairs — meant for small-n
    agreement testing, not for million-node tables. *)

val bytes : t -> int
(** Heap footprint of the scheme state in bytes (excludes the graph,
    and for label schemes is O(1) by construction). *)

val scheme_name : t -> string
(** ["packed"], ["hypercube"], ["hypercube-bi"], ["debruijn"],
    ["ccc"] or ["tree"]. *)

(** {1 Constructors} *)

val pack : n:int -> ((int -> int -> Path.t -> unit) -> unit) -> t
(** [pack ~n iter] re-encodes the routes produced by [iter] (any
    order; duplicates raise [Invalid_argument]) into the packed flat
    form. *)

val hypercube : ?bidirectional:bool -> int -> t
(** E-cube routing on the [d]-cube, the label twin of
    [Hypercube_routing.ecube] ([ecube_bidirectional] with
    [~bidirectional:true]): identical paths, no table. *)

val de_bruijn : int -> t
(** Shift-in routing on the binary de Bruijn graph of dimension [d]:
    overlap the longest suffix of [src] with a prefix of [dst], shift
    in the remaining bits, loop-erase. Routes have length at most
    [d]. *)

val ccc : int -> t
(** Cycle-walk routing on the cube-connected cycles of dimension [d]:
    forward around the small cycle crossing each differing dimension,
    then the shorter way around to the destination position. Routes
    have length at most [2d + d/2]. *)

val tree_of_parents : parent:int array -> t
(** Interval routing over the rooted forest given by [parent]
    ([parent.(r) = -1] at roots). Pairs in different trees are
    unrouted. Raises [Invalid_argument] on cycles or out-of-range
    entries. *)

val bfs_tree : Graph.t -> root:int -> t
(** [tree_of_parents] over the BFS spanning forest of [g]: one tree
    grown from [root], then one per remaining component (in ascending
    vertex order). Pairs within a component are always routed. *)

(** {1 Serial form} *)

val spec : t -> string option
(** A one-token description from which the scheme can be rebuilt:
    ["hypercube:10"], ["hypercube:10:bi"], ["debruijn:20"],
    ["ccc:13"], ["tree:p0,p1,..."]. [None] for packed schemes, which
    serialise as explicit rows. *)

val of_spec : n:int -> string -> (t, string) result
(** Rebuild a scheme from {!spec} output, checking it matches a graph
    on [n] vertices. *)
