(** The bipolar constructions (Section 5, Theorems 20 and 23).

    Both need the two-trees property: roots [r1, r2] whose depth-2
    neighborhoods form disjoint trees. The concentrator is
    [M = Gamma(r1) + Gamma(r2)]. The unidirectional variant is
    [(4, t)]-tolerant; the bidirectional one [(5, t)]-tolerant. *)

open Ftr_graph

val make_unidirectional : ?roots:int * int -> Graph.t -> t:int -> Construction.t
(** Components B-POL 1-6 of the paper. [roots] defaults to
    {!Ftr_graph.Two_trees.find}; raises [Invalid_argument] when the
    graph lacks the two-trees property (or the supplied roots fail
    {!Ftr_graph.Two_trees.verify}). *)

val make_bidirectional : ?roots:int * int -> Graph.t -> t:int -> Construction.t
(** Components 2B-POL 1-5. Same root handling. *)
