(** Tree routings (Section 3, Lemma 2).

    A tree routing from [x] to a separating set [M] connects [x] to
    exactly [k] (= [t+1]) distinct nodes of [M] by paths that are
    vertex-disjoint except at [x], avoid [M] in their interiors, and
    use the direct edge whenever [x] is adjacent to the chosen target.
    Lemma 1: killing all [k] routes simultaneously takes at least [k]
    faults, so with at most [t] faults [x] keeps a surviving edge into
    [M]. *)

open Ftr_graph

exception Insufficient of { src : int; wanted : int; got : int }

val make : Graph.t -> src:int -> targets:int list -> k:int -> Path.t list
(** Raises {!Insufficient} when fewer than [k] disjoint paths exist
    (i.e. [targets] does not [k]-separate [src] in a [k]-connected
    graph), [Invalid_argument] if [src] is a target. *)

val add_to : Routing.t -> Path.t list -> unit
(** Install every path of a tree routing into a routing table. *)

val verify : Graph.t -> src:int -> targets:int list -> k:int -> Path.t list -> (unit, string) result
(** Checks all the defining properties; used by tests. *)
