(* A small persistent Domain pool.

   The evaluation engine issues many short parallel sections (one per
   verdict chunk), so spawning domains per call would dominate the
   work. Workers are spawned once, on first use, and parked on a
   condition variable between jobs. A job is a bag of [ntasks]
   integer-indexed tasks pulled from a shared atomic counter; the
   caller's domain participates too, so [jobs = 1] never touches the
   pool and runs strictly sequentially.

   Determinism note: the pool only schedules; results land in an array
   slot per task index, so callers see results in task order no matter
   how tasks were interleaved across domains. *)

module Obs = Ftr_obs.Obs

(* [par.sections]/[par.tasks] count requested work (one per [run] call
   and its ntasks), so they are identical for every [jobs] value. How
   the work was scheduled — pool size, which sections actually went
   parallel, per-domain pull balance — is schedule-dependent by
   nature, so it is reported as gauges, which the determinism
   comparison excludes. *)
let c_sections = Obs.counter "par.sections"
let c_tasks = Obs.counter "par.tasks"
let g_pool_size = Obs.gauge "par.pool_size"
let g_parallel_sections = Obs.gauge "par.parallel_sections"
let g_last_active = Obs.gauge "par.last_active_domains"
let g_last_max_pulls = Obs.gauge "par.last_max_tasks_per_domain"
let g_last_min_pulls = Obs.gauge "par.last_min_tasks_per_domain"

type job = {
  body : unit -> unit; (* run by each participating domain: pulls tasks until empty *)
  participants : int; (* pool workers allowed to join (the caller joins too) *)
  ntasks : int;
  completed : int Atomic.t;
}

let mutex = Mutex.create ()
let wake_workers = Condition.create ()
let job_done = Condition.create ()
let current : job option ref = ref None
let generation = ref 0
let shutting_down = ref false
let pool : unit Domain.t list ref = ref []
let pool_size = ref 0

(* True inside a pool worker (and, on the caller's domain, inside a
   parallel section): re-entrant [run] calls degrade to sequential
   instead of deadlocking on the single shared job slot. *)
let busy = Domain.DLS.new_key (fun () -> false)

let worker_loop wid =
  Domain.DLS.set busy true;
  let seen = ref 0 in
  let live = ref true in
  while !live do
    Mutex.lock mutex;
    while (not !shutting_down) && !generation = !seen do
      Condition.wait wake_workers mutex
    done;
    if !shutting_down then begin
      live := false;
      Mutex.unlock mutex
    end
    else begin
      seen := !generation;
      let job = !current in
      Mutex.unlock mutex;
      match job with
      | Some job when wid < job.participants ->
          job.body ();
          Mutex.lock mutex;
          Condition.broadcast job_done;
          Mutex.unlock mutex
      | _ -> ()
    end
  done

let shutdown () =
  Mutex.lock mutex;
  shutting_down := true;
  Condition.broadcast wake_workers;
  Mutex.unlock mutex;
  List.iter Domain.join !pool;
  pool := [];
  pool_size := 0

let () = at_exit (fun () -> if !pool_size > 0 then shutdown ())

let ensure_workers k =
  while !pool_size < k do
    let wid = !pool_size in
    pool := Domain.spawn (fun () -> worker_loop wid) :: !pool;
    incr pool_size
  done

let recommended_jobs () = Domain.recommended_domain_count ()

let run ~jobs ~ntasks ~init ~task =
  if ntasks < 0 then invalid_arg "Par.run: negative ntasks";
  if ntasks > 0 then begin
    Obs.incr c_sections;
    Obs.add c_tasks ntasks
  end;
  let results = Array.make ntasks None in
  if jobs <= 1 || ntasks <= 1 || Domain.DLS.get busy then begin
    if ntasks > 0 then begin
      let state = init () in
      for i = 0 to ntasks - 1 do
        results.(i) <- Some (task state i)
      done
    end
  end
  else begin
    let jobs = min jobs ntasks in
    let error = Atomic.make None in
    let next = Atomic.make 0 in
    let completed = Atomic.make 0 in
    let track = Obs.enabled () in
    let joined = Atomic.make 0 in
    let pulls = if track then Array.init jobs (fun _ -> Atomic.make 0) else [||] in
    let body () =
      let slot =
        if track then Atomic.fetch_and_add joined 1 else -1
      in
      (* One [init] state per participating domain, built on its first
         pulled task so idle workers pay nothing. *)
      let state = ref None in
      let rec pull () =
        let i = Atomic.fetch_and_add next 1 in
        if i < ntasks then begin
          if slot >= 0 && slot < Array.length pulls then Atomic.incr pulls.(slot);
          (match Atomic.get error with
          | Some _ -> () (* fail fast; the caller re-raises *)
          | None -> (
              try
                let s =
                  match !state with
                  | Some s -> s
                  | None ->
                      let s = init () in
                      state := Some s;
                      s
                in
                results.(i) <- Some (task s i)
              with e -> ignore (Atomic.compare_and_set error None (Some e))));
          Atomic.incr completed;
          pull ()
        end
      in
      pull ()
    in
    let job = { body; participants = jobs - 1; ntasks; completed } in
    Mutex.lock mutex;
    ensure_workers (jobs - 1);
    current := Some job;
    incr generation;
    Condition.broadcast wake_workers;
    Mutex.unlock mutex;
    (* The caller's own domain participates; mark it busy so the tasks
       themselves can't recursively schedule on the pool. *)
    Domain.DLS.set busy true;
    body ();
    Domain.DLS.set busy false;
    Mutex.lock mutex;
    while Atomic.get completed < ntasks do
      Condition.wait job_done mutex
    done;
    current := None;
    Mutex.unlock mutex;
    if track then begin
      let active = ref 0 and mx = ref 0 and mn = ref max_int in
      Array.iter
        (fun p ->
          let v = Atomic.get p in
          if v > 0 then begin
            incr active;
            if v > !mx then mx := v;
            if v < !mn then mn := v
          end)
        pulls;
      Obs.add_gauge g_parallel_sections 1.0;
      Obs.set_gauge g_pool_size (float_of_int !pool_size);
      Obs.set_gauge g_last_active (float_of_int !active);
      Obs.set_gauge g_last_max_pulls (float_of_int !mx);
      Obs.set_gauge g_last_min_pulls (float_of_int (if !active = 0 then 0 else !mn))
    end;
    match Atomic.get error with Some e -> raise e | None -> ()
  end;
  Array.map
    (function
      | Some r -> r
      | None -> failwith "Par.run: task raised on another domain")
    results

let map ~jobs f items =
  run ~jobs ~ntasks:(Array.length items)
    ~init:(fun () -> ())
    ~task:(fun () i -> f items.(i))

(* Block-granularity map over a range. Submitting one task per item
   makes the pool a net loss on short items (the PR 4 gauges showed
   wake/sync overhead dwarfing sub-millisecond tasks), so [chunk] cuts
   [0, count) into a few coarse contiguous blocks and lets the shared
   counter balance them. The block count is a function of [count]
   alone, NEVER of [jobs]: [run] feeds [ntasks] into the [par.tasks]
   counter, which the determinism comparison requires to be identical
   for every [jobs] value (a sequential run just sweeps the same
   blocks in order). Mean block size is reported on a gauge — a
   scheduling quantity, deliberately not a counter. *)
let g_chunk_mean = Obs.gauge "par.chunk_mean_task_size"
let chunk_max_blocks = 32

let chunk ~jobs ~count ~init ~task =
  if count < 0 then invalid_arg "Par.chunk: negative count";
  if count = 0 then [||]
  else begin
    let nblocks = min count chunk_max_blocks in
    Obs.set_gauge g_chunk_mean (float_of_int count /. float_of_int nblocks);
    let bounds = Array.init (nblocks + 1) (fun i -> i * count / nblocks) in
    run ~jobs ~ntasks:nblocks ~init
      ~task:(fun st b -> task st ~lo:bounds.(b) ~hi:bounds.(b + 1))
  end
