(** Network modification (Section 6): make the kernel concentrator a
    clique.

    Adding at most [t(t+1)/2] links between concentrator members turns
    the kernel routing into a [(3, t)]-tolerant routing {e of the
    modified network}. *)

open Ftr_graph

type result = {
  augmented : Graph.t;  (** the graph with the clique edges added *)
  construction : Construction.t;  (** kernel-style routing on it *)
  added : (int * int) list;  (** the new links *)
}

val clique_concentrator : ?m:int list -> Graph.t -> t:int -> result
(** [m] defaults to a minimum vertex cut of the original graph; it
    remains a separating set after augmentation. *)

val ring_concentrator : ?m:int list -> Graph.t -> t:int -> result
(** Open problem (2) probe: add only a cycle on the concentrator —
    [O(t)] new links instead of the clique's [O(t^2)] — and build the
    kernel routing on the result. The construction makes {e no}
    tolerance claim (the paper leaves the question open); experiment
    E19 measures what the ring actually achieves. *)
