open Ftr_graph

type kind = Unidirectional | Bidirectional

type backend =
  | Table of (int * int, Path.t) Hashtbl.t
  | Compacted of Compact.t

type t = { g : Graph.t; kind : kind; backend : backend }

exception Conflict of { src : int; dst : int; existing : Path.t; proposed : Path.t }

let create g kind = { g; kind; backend = Table (Hashtbl.create 256) }

let of_compact g kind c =
  if Compact.n c <> Graph.n g then
    invalid_arg
      (Printf.sprintf "Routing.of_compact: scheme is for n=%d, graph has n=%d"
         (Compact.n c) (Graph.n g));
  { g; kind; backend = Compacted c }

let graph t = t.g
let kind t = t.kind

let compact t = match t.backend with Compacted c -> Some c | Table _ -> None

let backend_name t =
  match t.backend with
  | Table _ -> "table"
  | Compacted c -> "compact:" ^ Compact.scheme_name c

let table_exn op t =
  match t.backend with
  | Table tbl -> tbl
  | Compacted _ -> invalid_arg (op ^ ": compact routings are immutable")

let install t p =
  let tbl = table_exn "Routing.install" t in
  let src = Path.source p and dst = Path.target p in
  match Hashtbl.find_opt tbl (src, dst) with
  | Some existing ->
      if not (Path.equal existing p) then
        raise (Conflict { src; dst; existing; proposed = p })
  | None -> Hashtbl.replace tbl (src, dst) p

let add t p =
  if Path.length p < 1 then invalid_arg "Routing.add: trivial path";
  if not (Path.is_valid_in t.g p) then invalid_arg "Routing.add: path not in graph";
  install t p;
  match t.kind with
  | Unidirectional -> ()
  | Bidirectional -> install t (Path.rev p)

let add_edge_routes t =
  Graph.iter_edges
    (fun u v ->
      install t (Path.edge u v);
      install t (Path.edge v u))
    t.g

let complete_reverses t =
  let tbl = table_exn "Routing.complete_reverses" t in
  (match t.kind with
  | Unidirectional -> ()
  | Bidirectional ->
      invalid_arg "Routing.complete_reverses: bidirectional tables are already symmetric");
  let missing =
    Hashtbl.fold
      (fun (src, dst) p acc ->
        if Hashtbl.mem tbl (dst, src) then acc else Path.rev p :: acc)
      tbl []
  in
  List.iter (install t) missing

let find t src dst =
  match t.backend with
  | Table tbl -> Hashtbl.find_opt tbl (src, dst)
  | Compacted c -> Compact.find c src dst

let mem t src dst =
  match t.backend with
  | Table tbl -> Hashtbl.mem tbl (src, dst)
  | Compacted c -> Compact.mem c src dst

let iter f t =
  match t.backend with
  | Table tbl -> Hashtbl.iter (fun (src, dst) p -> f src dst p) tbl
  | Compacted c -> Compact.iter f c

let route_count t =
  match t.backend with
  | Table tbl -> Hashtbl.length tbl
  | Compacted c -> Compact.route_count c

let compact_copy t =
  match t.backend with
  | Compacted _ -> t
  | Table _ ->
      of_compact t.g t.kind (Compact.pack ~n:(Graph.n t.g) (fun f -> iter f t))

let max_route_length t =
  let acc = ref 0 in
  iter (fun _ _ p -> if Path.length p > !acc then acc := Path.length p) t;
  !acc

let total_route_edges t =
  let acc = ref 0 in
  iter (fun _ _ p -> acc := !acc + Path.length p) t;
  !acc

let stretch t =
  (* One BFS per distinct source appearing in the table. *)
  let dists = Hashtbl.create 64 in
  let dist_from src =
    match Hashtbl.find_opt dists src with
    | Some d -> d
    | None ->
        let d = Traversal.bfs t.g src in
        Hashtbl.add dists src d;
        d
  in
  let acc = ref 0.0 in
  iter
    (fun src dst p ->
      let shortest = (dist_from src).(dst) in
      if shortest <= 0 then
        (* A routed pair whose destination BFS distance is the -1
           unreachable sentinel (or 0, a self pair) means the table
           disagrees with its graph — e.g. a compact scheme attached to
           the wrong graph. Surfacing it beats silently dropping the
           pair from the statistic. *)
        invalid_arg
          (Printf.sprintf
             "Routing.stretch: route (%d,%d) but destination is %s — table \
              inconsistent with graph"
             src dst
             (if shortest = 0 then "the source itself" else "unreachable"))
      else
        acc := Float.max !acc (float_of_int (Path.length p) /. float_of_int shortest))
    t;
  !acc

let validate t =
  let problem = ref None in
  let fail fmt = Printf.ksprintf (fun s -> if !problem = None then problem := Some s) fmt in
  iter
    (fun src dst p ->
      if Path.source p <> src || Path.target p <> dst then
        fail "route (%d,%d) has endpoints (%d,%d)" src dst (Path.source p) (Path.target p);
      if src = dst then fail "route (%d,%d) is a self-route" src dst;
      if not (Path.is_valid_in t.g p) then fail "route (%d,%d) leaves the graph" src dst;
      match t.kind with
      | Unidirectional -> ()
      | Bidirectional -> (
          match find t dst src with
          | Some q when Path.equal q (Path.rev p) -> ()
          | Some _ -> fail "bidirectional route (%d,%d) has an asymmetric reverse" src dst
          | None -> fail "bidirectional route (%d,%d) lacks its reverse" src dst))
    t;
  match !problem with None -> Ok () | Some msg -> Error msg
