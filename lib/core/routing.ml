open Ftr_graph

type kind = Unidirectional | Bidirectional

type t = {
  g : Graph.t;
  kind : kind;
  table : (int * int, Path.t) Hashtbl.t;
}

exception Conflict of { src : int; dst : int; existing : Path.t; proposed : Path.t }

let create g kind = { g; kind; table = Hashtbl.create 256 }
let graph t = t.g
let kind t = t.kind

let install t p =
  let src = Path.source p and dst = Path.target p in
  match Hashtbl.find_opt t.table (src, dst) with
  | Some existing ->
      if not (Path.equal existing p) then
        raise (Conflict { src; dst; existing; proposed = p })
  | None -> Hashtbl.replace t.table (src, dst) p

let add t p =
  if Path.length p < 1 then invalid_arg "Routing.add: trivial path";
  if not (Path.is_valid_in t.g p) then invalid_arg "Routing.add: path not in graph";
  install t p;
  match t.kind with
  | Unidirectional -> ()
  | Bidirectional -> install t (Path.rev p)

let add_edge_routes t =
  Graph.iter_edges
    (fun u v ->
      install t (Path.edge u v);
      install t (Path.edge v u))
    t.g

let complete_reverses t =
  (match t.kind with
  | Unidirectional -> ()
  | Bidirectional ->
      invalid_arg "Routing.complete_reverses: bidirectional tables are already symmetric");
  let missing =
    Hashtbl.fold
      (fun (src, dst) p acc ->
        if Hashtbl.mem t.table (dst, src) then acc else Path.rev p :: acc)
      t.table []
  in
  List.iter (install t) missing

let find t src dst = Hashtbl.find_opt t.table (src, dst)
let mem t src dst = Hashtbl.mem t.table (src, dst)
let iter f t = Hashtbl.iter (fun (src, dst) p -> f src dst p) t.table
let route_count t = Hashtbl.length t.table

let max_route_length t =
  Hashtbl.fold (fun _ p acc -> max acc (Path.length p)) t.table 0

let total_route_edges t =
  Hashtbl.fold (fun _ p acc -> acc + Path.length p) t.table 0

let stretch t =
  (* One BFS per distinct source appearing in the table. *)
  let dists = Hashtbl.create 64 in
  let dist_from src =
    match Hashtbl.find_opt dists src with
    | Some d -> d
    | None ->
        let d = Traversal.bfs t.g src in
        Hashtbl.add dists src d;
        d
  in
  Hashtbl.fold
    (fun (src, dst) p acc ->
      let shortest = (dist_from src).(dst) in
      if shortest <= 0 then acc
      else Float.max acc (float_of_int (Path.length p) /. float_of_int shortest))
    t.table 0.0

let validate t =
  let problem = ref None in
  let fail fmt = Printf.ksprintf (fun s -> if !problem = None then problem := Some s) fmt in
  iter
    (fun src dst p ->
      if Path.source p <> src || Path.target p <> dst then
        fail "route (%d,%d) has endpoints (%d,%d)" src dst (Path.source p) (Path.target p);
      if src = dst then fail "route (%d,%d) is a self-route" src dst;
      if not (Path.is_valid_in t.g p) then fail "route (%d,%d) leaves the graph" src dst;
      match t.kind with
      | Unidirectional -> ()
      | Bidirectional -> (
          match find t dst src with
          | Some q when Path.equal q (Path.rev p) -> ()
          | Some _ -> fail "bidirectional route (%d,%d) has an asymmetric reverse" src dst
          | None -> fail "bidirectional route (%d,%d) lacks its reverse" src dst))
    t;
  match !problem with None -> Ok () | Some msg -> Error msg
