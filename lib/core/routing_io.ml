open Ftr_graph

let kind_tag = function
  | Routing.Unidirectional -> "uni"
  | Routing.Bidirectional -> "bi"

let kind_of_tag = function
  | "uni" -> Some Routing.Unidirectional
  | "bi" -> Some Routing.Bidirectional
  | _ -> None

let save buf routing =
  let n = Graph.n (Routing.graph routing) in
  match Option.bind (Routing.compact routing) Compact.spec with
  | Some spec ->
      (* Label and tree schemes reconstruct from their spec: one header
         line instead of O(n^2) rows. *)
      Buffer.add_string buf
        (Printf.sprintf "ftr-routing 2 %d %s compact %s\n" n
           (kind_tag (Routing.kind routing))
           spec)
  | None ->
      Buffer.add_string buf
        (Printf.sprintf "ftr-routing 1 %d %s\n" n (kind_tag (Routing.kind routing)));
      let emit src dst p =
        Buffer.add_string buf
          (Printf.sprintf "%d %d %s\n" src dst
             (String.concat "," (List.map string_of_int (Path.to_list p))))
      in
      (* Stable output order; one orientation per pair for bidirectional
         tables. *)
      let rows = ref [] in
      Routing.iter
        (fun src dst p ->
          let keep =
            match Routing.kind routing with
            | Routing.Unidirectional -> true
            | Routing.Bidirectional -> src < dst
          in
          if keep then rows := (src, dst, p) :: !rows)
        routing;
      List.iter
        (fun (src, dst, p) -> emit src dst p)
        (List.sort
           (fun (s1, d1, _) (s2, d2, _) ->
             if s1 <> s2 then Int.compare s1 s2 else Int.compare d1 d2)
           !rows)

let to_string routing =
  let buf = Buffer.create 4096 in
  save buf routing;
  Buffer.contents buf

let load g text =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  match String.split_on_char '\n' (String.trim text) with
  | [] | [ "" ] -> Error "empty routing file"
  | header :: lines -> (
      match String.split_on_char ' ' header with
      | [ "ftr-routing"; "2"; n_str; kind_str; "compact"; spec ] -> (
          match (int_of_string_opt n_str, kind_of_tag kind_str) with
          | Some n, Some kind when n = Graph.n g -> (
              if List.exists (fun l -> String.trim l <> "") lines then
                err "compact routing file must be a single header line"
              else
                match Compact.of_spec ~n spec with
                | Ok c -> Ok (Routing.of_compact g kind c)
                | Error e -> err "bad compact spec: %s" e)
          | Some n, Some _ when n <> Graph.n g ->
              err "vertex count mismatch: file has %d, graph has %d" n (Graph.n g)
          | _ -> err "malformed header: %s" header)
      | [ "ftr-routing"; "1"; n_str; kind_str ] -> (
          match (int_of_string_opt n_str, kind_of_tag kind_str) with
          | Some n, Some kind when n = Graph.n g -> (
              let routing = Routing.create g kind in
              let parse_line idx line =
                match String.split_on_char ' ' line with
                | [ src_s; dst_s; path_s ] -> (
                    (* Total parse: succeeds iff every comma-separated
                       part is an integer. *)
                    let vertices =
                      let parts = String.split_on_char ',' path_s in
                      let vs = List.filter_map int_of_string_opt parts in
                      if List.length vs = List.length parts then Some vs
                      else None
                    in
                    match
                      (int_of_string_opt src_s, int_of_string_opt dst_s, vertices)
                    with
                    | Some src, Some dst, Some vs -> (
                        match Path.of_list vs with
                        | exception Invalid_argument m -> err "line %d: %s" idx m
                        | p ->
                            if Path.source p <> src || Path.target p <> dst then
                              err "line %d: endpoints disagree with path" idx
                            else (
                              try
                                Routing.add routing p;
                                Ok ()
                              with
                              | Invalid_argument m -> err "line %d: %s" idx m
                              | Routing.Conflict _ ->
                                  err "line %d: conflicting route for (%d,%d)" idx src
                                    dst))
                    | _ -> err "line %d: malformed integers" idx)
                | _ -> err "line %d: expected 'src dst v0,v1,...'" idx
              in
              let rec go idx = function
                | [] -> Ok routing
                | "" :: rest -> go (idx + 1) rest
                | line :: rest -> (
                    match parse_line idx line with
                    | Ok () -> go (idx + 1) rest
                    | Error e -> Error e)
              in
              go 2 lines)
          | Some n, Some _ when n <> Graph.n g ->
              err "vertex count mismatch: file has %d, graph has %d" n (Graph.n g)
          | _ -> err "malformed header: %s" header)
      | _ -> err "not an ftr-routing file")
