open Ftr_graph

type t = {
  g : Graph.t;
  nodes : Bitset.t;
  edges : (int * int, unit) Hashtbl.t; (* normalised (min, max) *)
  degraded : (int * int, float) Hashtbl.t; (* normalised (min, max) -> factor >= 1 *)
}

let create g =
  {
    g;
    nodes = Bitset.create (Graph.n g);
    edges = Hashtbl.create 16;
    degraded = Hashtbl.create 16;
  }

let fail_node t v =
  if v < 0 || v >= Graph.n t.g then invalid_arg "Fault_model.fail_node: bad vertex";
  Bitset.add t.nodes v

let fail_edge t u v =
  if not (Graph.mem_edge t.g u v) then invalid_arg "Fault_model.fail_edge: not an edge";
  Hashtbl.replace t.edges (min u v, max u v) ()

let recover_node t v =
  if v < 0 || v >= Graph.n t.g then invalid_arg "Fault_model.recover_node: bad vertex";
  Bitset.remove t.nodes v

let recover_edge t u v = Hashtbl.remove t.edges (min u v, max u v)

let node_faults t = t.nodes
let node_fault_count t = Bitset.cardinal t.nodes
let edge_fault_count t = Hashtbl.length t.edges

(* Normalised (min, max) endpoints, ordered lexicographically. *)
let edge_compare (u1, v1) (u2, v2) =
  let c = Int.compare u1 u2 in
  if c <> 0 then c else Int.compare v1 v2

let edge_faults t =
  List.sort edge_compare (Hashtbl.fold (fun e () acc -> e :: acc) t.edges [])

let fault_count t = node_fault_count t + edge_fault_count t

let edge_failed t u v = Hashtbl.mem t.edges (min u v, max u v)

let degrade_edge t u v ~factor =
  if not (Graph.mem_edge t.g u v) then invalid_arg "Fault_model.degrade_edge: not an edge";
  if not (Float.is_finite factor) || factor < 1.0 then
    invalid_arg "Fault_model.degrade_edge: factor must be finite and >= 1";
  if factor = 1.0 then Hashtbl.remove t.degraded (min u v, max u v)
  else Hashtbl.replace t.degraded (min u v, max u v) factor

let restore_edge t u v = Hashtbl.remove t.degraded (min u v, max u v)

let edge_degradation t u v =
  match Hashtbl.find_opt t.degraded (min u v, max u v) with
  | Some f -> f
  | None -> 1.0

let degraded_edges t =
  (* The third component is a float factor; Float.compare keeps the
     order total even if a NaN ever slipped past validation. *)
  List.sort
    (fun (u1, v1, f1) (u2, v2, f2) ->
      let c = edge_compare (u1, v1) (u2, v2) in
      if c <> 0 then c else Float.compare f1 f2)
    (Hashtbl.fold (fun (u, v) f acc -> (u, v, f) :: acc) t.degraded [])

let degraded_edge_count t = Hashtbl.length t.degraded

let path_delay_factor t p =
  let a = Path.to_array p in
  if Array.length a < 2 then 1.0
  else begin
    let sum = ref 0.0 in
    for i = 0 to Array.length a - 2 do
      sum := !sum +. edge_degradation t a.(i) a.(i + 1)
    done;
    !sum /. float_of_int (Array.length a - 1)
  end

let digest t =
  let nodes = Bitset.elements t.nodes in
  let edges = edge_faults t in
  let slow = degraded_edges t in
  Printf.sprintf "nodes{%s} links{%s} slow{%s}"
    (String.concat "," (List.map string_of_int nodes))
    (String.concat "," (List.map (fun (u, v) -> Printf.sprintf "%d-%d" u v) edges))
    (String.concat ","
       (List.map (fun (u, v, f) -> Printf.sprintf "%d-%d*%.17g" u v f) slow))

let affects t p =
  Path.hits p t.nodes
  ||
  let a = Path.to_array p in
  let rec scan i =
    i + 1 < Array.length a && (edge_failed t a.(i) a.(i + 1) || scan (i + 1))
  in
  scan 0

let endpoint_projection t =
  let s = Bitset.copy t.nodes in
  Hashtbl.iter (fun (u, _) () -> Bitset.add s u) t.edges;
  s
[@@lint.ordered
  "Bitset.add is commutative and idempotent: the projected set is \
   independent of the table's iteration order"]

let surviving routing t =
  let b = Digraph.Builder.create (Graph.n t.g) in
  Routing.iter
    (fun src dst p -> if not (affects t p) then Digraph.Builder.add_arc b src dst)
    routing;
  Digraph.Builder.to_digraph b

let diameter routing t =
  Surviving.diameter_of_digraph (surviving routing t) ~faults:t.nodes
