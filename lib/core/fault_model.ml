open Ftr_graph

type t = {
  g : Graph.t;
  nodes : Bitset.t;
  edges : (int * int, unit) Hashtbl.t; (* normalised (min, max) *)
}

let create g = { g; nodes = Bitset.create (Graph.n g); edges = Hashtbl.create 16 }

let fail_node t v =
  if v < 0 || v >= Graph.n t.g then invalid_arg "Fault_model.fail_node: bad vertex";
  Bitset.add t.nodes v

let fail_edge t u v =
  if not (Graph.mem_edge t.g u v) then invalid_arg "Fault_model.fail_edge: not an edge";
  Hashtbl.replace t.edges (min u v, max u v) ()

let recover_node t v =
  if v < 0 || v >= Graph.n t.g then invalid_arg "Fault_model.recover_node: bad vertex";
  Bitset.remove t.nodes v

let recover_edge t u v = Hashtbl.remove t.edges (min u v, max u v)

let node_faults t = t.nodes
let node_fault_count t = Bitset.cardinal t.nodes
let edge_fault_count t = Hashtbl.length t.edges

let edge_faults t =
  List.sort compare (Hashtbl.fold (fun e () acc -> e :: acc) t.edges [])

let fault_count t = node_fault_count t + edge_fault_count t

let edge_failed t u v = Hashtbl.mem t.edges (min u v, max u v)

let digest t =
  let nodes = Bitset.elements t.nodes in
  let edges = edge_faults t in
  Printf.sprintf "nodes{%s} links{%s}"
    (String.concat "," (List.map string_of_int nodes))
    (String.concat "," (List.map (fun (u, v) -> Printf.sprintf "%d-%d" u v) edges))

let affects t p =
  Path.hits p t.nodes
  ||
  let a = Path.to_array p in
  let rec scan i =
    i + 1 < Array.length a && (edge_failed t a.(i) a.(i + 1) || scan (i + 1))
  in
  scan 0

let endpoint_projection t =
  let s = Bitset.copy t.nodes in
  Hashtbl.iter (fun (u, _) () -> Bitset.add s u) t.edges;
  s

let surviving routing t =
  let b = Digraph.Builder.create (Graph.n t.g) in
  Routing.iter
    (fun src dst p -> if not (affects t p) then Digraph.Builder.add_arc b src dst)
    routing;
  Digraph.Builder.to_digraph b

let diameter routing t =
  Surviving.diameter_of_digraph (surviving routing t) ~faults:t.nodes
