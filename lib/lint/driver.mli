(** File discovery and report assembly for ftr-lint. *)

val lint_file :
  ?config:Rules.config ->
  string ->
  Diagnostic.t list * Diagnostic.suppressed list
(** Lint one [.ml] file. A file that fails to parse yields a single
    ["P0"] diagnostic rather than an exception. *)

val collect_files : string list -> string list
(** The [.ml] files under the given files/directories (recursive,
    skipping [_build] and hidden directories), sorted. *)

val lint_paths : ?config:Rules.config -> string list -> Diagnostic.report
(** Lint every [.ml] file under the given paths and assemble the
    sorted [ftr-lint/1] report. *)
