(** File discovery, typedtree loading, caching, and report assembly
    for ftr-lint v2. *)

val lint_file :
  ?config:Rules.config ->
  ?cmt_root:string ->
  string ->
  Diagnostic.t list * Diagnostic.suppressed list
(** Lint one [.ml] file. A file that fails to parse yields a single
    ["P0"] diagnostic, a file that fails to typecheck a ["T0"],
    rather than an exception. [cmt_root] defaults to
    {!Typed_load.default_cmt_root}. *)

val collect_files : string list -> string list
(** The [.ml] files under the given files/directories (recursive,
    skipping [_build] and hidden directories), sorted, with leading
    ["./"] stripped so paths match [.cmt] source names. *)

val lint_paths :
  ?config:Rules.config ->
  ?cache_file:string ->
  ?cmt_root:string ->
  string list ->
  Diagnostic.report
(** Lint every [.ml] file under the given paths and assemble the
    sorted [ftr-lint/2] report. With [cache_file], per-file results
    are replayed for unchanged sources and the updated cache is
    written back atomically; cold and warm runs produce identical
    reports. *)
