(* Diagnostics for the ftr-lint static-analysis pass.

   A diagnostic pins a rule violation to a source span and carries a
   *fingerprint*: a short content hash of (rule, file basename,
   trimmed text of the flagged line, same-line occurrence index).
   Line and column numbers drift every time code is inserted above a
   finding; the fingerprint does not, so suppression baselines and
   cached results survive ordinary edits elsewhere in the file.

   Rendering is deterministic: diagnostics sort by (file, line, col,
   rule) so the human listing and the ftr-lint/2 JSON are stable
   across runs and [--jobs] values, like every other machine-readable
   artifact in the repo. *)

type t = {
  rule : string;  (* "L1".."L8"; "L0" usage, "P0" parse, "T0" typing *)
  file : string;
  line : int;  (* 1-based *)
  col : int;  (* 0-based, matching compiler locations *)
  end_line : int;
  end_col : int;
  fingerprint : string;  (* 12 hex chars, line-drift stable *)
  message : string;
}

type suppressed = { diag : t; justification : string }

type report = {
  files_scanned : int;
  files_cached : int;
      (* served from the lint cache; informational only — never
         serialized, so cold and warm runs emit identical JSON *)
  diagnostics : t list;  (* unsuppressed: these fail the build *)
  suppressions : suppressed list;  (* allowed by [@lint.allow "Lx: why"] *)
}

let compare_diag a b =
  let c = compare (a.file, a.line, a.col) (b.file, b.line, b.col) in
  if c <> 0 then c else compare a.rule b.rule

let sort ds = List.sort compare_diag ds

(* The preimage deliberately excludes the directory (reports must
   survive a file moving between trees with the same basename, as
   fixture copies in tests do) and the line *number* (the whole
   point). [index] disambiguates repeated identical lines. *)
let fingerprint ~rule ~file ~line_text ~index =
  let preimage =
    String.concat "\x00"
      [ rule; Filename.basename file; String.trim line_text; string_of_int index ]
  in
  String.sub (Digest.to_hex (Digest.string preimage)) 0 12

let of_location ~rule ~message ?(fingerprint = "") (loc : Location.t) =
  {
    rule;
    file = loc.loc_start.pos_fname;
    line = loc.loc_start.pos_lnum;
    col = loc.loc_start.pos_cnum - loc.loc_start.pos_bol;
    end_line = loc.loc_end.pos_lnum;
    end_col = loc.loc_end.pos_cnum - loc.loc_end.pos_bol;
    fingerprint;
    message;
  }

let pp_human ppf d =
  Format.fprintf ppf "%s:%d:%d: [%s] %s" d.file d.line d.col d.rule d.message

(* Hand-rolled JSON, like Obs and Attack.Corpus: the lint must not
   pull in runtime dependencies the library itself does not have. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let diag_fields d =
  Printf.sprintf
    "\"rule\": \"%s\", \"file\": \"%s\", \"line\": %d, \"col\": %d, \
     \"end_line\": %d, \"end_col\": %d, \"fingerprint\": \"%s\", \
     \"message\": \"%s\""
    (json_escape d.rule) (json_escape d.file) d.line d.col d.end_line d.end_col
    (json_escape d.fingerprint) (json_escape d.message)

let to_json report =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"format\": \"ftr-lint/2\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"files_scanned\": %d,\n" report.files_scanned);
  let emit_list name render items =
    Buffer.add_string buf (Printf.sprintf "  \"%s\": [" name);
    List.iteri
      (fun i x ->
        Buffer.add_string buf (if i = 0 then "\n" else ",\n");
        Buffer.add_string buf ("    " ^ render x))
      items;
    if items <> [] then Buffer.add_string buf "\n  ";
    Buffer.add_string buf "]"
  in
  emit_list "diagnostics" (fun d -> "{" ^ diag_fields d ^ "}")
    (sort report.diagnostics);
  Buffer.add_string buf ",\n";
  emit_list "suppressed"
    (fun s ->
      Printf.sprintf "{%s, \"justification\": \"%s\"}" (diag_fields s.diag)
        (json_escape s.justification))
    (List.sort (fun a b -> compare_diag a.diag b.diag) report.suppressions);
  Buffer.add_string buf "\n}\n";
  Buffer.contents buf
