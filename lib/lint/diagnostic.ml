(* Diagnostics for the ftr-lint static-analysis pass.

   A diagnostic pins a rule violation to a source span. Rendering is
   deterministic: diagnostics sort by (file, line, col, rule) so the
   human listing and the ftr-lint/1 JSON are stable across runs and
   [--jobs] values, like every other machine-readable artifact in the
   repo. *)

type t = {
  rule : string;  (* "L1".."L5", or "L0" for lint-usage errors *)
  file : string;
  line : int;  (* 1-based *)
  col : int;  (* 0-based, matching compiler locations *)
  end_line : int;
  end_col : int;
  message : string;
}

type suppressed = { diag : t; justification : string }

type report = {
  files_scanned : int;
  diagnostics : t list;  (* unsuppressed: these fail the build *)
  suppressions : suppressed list;  (* allowed by [@lint.allow "Lx: why"] *)
}

let compare_diag a b =
  let c = compare (a.file, a.line, a.col) (b.file, b.line, b.col) in
  if c <> 0 then c else compare a.rule b.rule

let sort ds = List.sort compare_diag ds

let of_location ~rule ~message (loc : Location.t) =
  {
    rule;
    file = loc.loc_start.pos_fname;
    line = loc.loc_start.pos_lnum;
    col = loc.loc_start.pos_cnum - loc.loc_start.pos_bol;
    end_line = loc.loc_end.pos_lnum;
    end_col = loc.loc_end.pos_cnum - loc.loc_end.pos_bol;
    message;
  }

let pp_human ppf d =
  Format.fprintf ppf "%s:%d:%d: [%s] %s" d.file d.line d.col d.rule d.message

(* Hand-rolled JSON, like Obs and Attack.Corpus: the lint must not
   pull in runtime dependencies the library itself does not have. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let diag_fields d =
  Printf.sprintf
    "\"rule\": \"%s\", \"file\": \"%s\", \"line\": %d, \"col\": %d, \
     \"end_line\": %d, \"end_col\": %d, \"message\": \"%s\""
    (json_escape d.rule) (json_escape d.file) d.line d.col d.end_line d.end_col
    (json_escape d.message)

let to_json report =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"format\": \"ftr-lint/1\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"files_scanned\": %d,\n" report.files_scanned);
  let emit_list name render items =
    Buffer.add_string buf (Printf.sprintf "  \"%s\": [" name);
    List.iteri
      (fun i x ->
        Buffer.add_string buf (if i = 0 then "\n" else ",\n");
        Buffer.add_string buf ("    " ^ render x))
      items;
    if items <> [] then Buffer.add_string buf "\n  ";
    Buffer.add_string buf "]"
  in
  emit_list "diagnostics" (fun d -> "{" ^ diag_fields d ^ "}")
    (sort report.diagnostics);
  Buffer.add_string buf ",\n";
  emit_list "suppressed"
    (fun s ->
      Printf.sprintf "{%s, \"justification\": \"%s\"}" (diag_fields s.diag)
        (json_escape s.justification))
    (List.sort (fun a b -> compare_diag a.diag b.diag) report.suppressions);
  Buffer.add_string buf "\n}\n";
  Buffer.contents buf
