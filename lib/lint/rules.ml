(* The five ftr-specific lint rules, run over a file's parsetree.

   Everything here is syntactic: the pass never type-checks, so each
   rule is written to be conservative on the patterns this repo
   actually uses (see DESIGN.md section 10 for the contract of each
   rule and its known blind spots).

   Suppression: any expression, value binding or structure item may
   carry [@lint.allow "Lx: justification"]. The rule id must be
   followed by a colon and a non-empty justification; a bare
   [@lint.allow "Lx"] is itself an error (rule L0), so every accepted
   risk is documented at the site that takes it. *)

open Parsetree

type config = {
  rules : string list;  (* enabled rule ids *)
  allow_partial : string list;
      (* L1 allowlist: path suffixes where partial ops are accepted
         wholesale (prefer per-site [@lint.allow]) *)
  unsafe_ok : string list;
      (* L4 containment: path suffixes where unsafe ops are legal,
         provided the enclosing definition carries a
         "(* bounds: ... *)" proof comment *)
  unsafe_bigarray_ok : string list;
      (* L4 containment for Bigarray unsafe accessors specifically.
         They are kept on a separate, tighter allowlist than plain
         [unsafe_ok]: an out-of-bounds Bigarray access is a wild
         off-heap read/write, not merely a heap-corrupting one, so a
         file cleared for Array.unsafe_* is not thereby cleared for
         Bigarray.*.unsafe_*. Same proof-comment requirement. *)
}

let all_rules = [ "L1"; "L2"; "L3"; "L4"; "L5" ]

let default_config =
  {
    rules = all_rules;
    allow_partial = [];
    unsafe_ok = [ "lib/graph/bitset.ml"; "lib/core/surviving.ml" ];
    unsafe_bigarray_ok = [ "lib/core/surviving.ml" ];
  }

let path_matches file suffix =
  file = suffix
  || (String.length file > String.length suffix
     && String.ends_with ~suffix file
     && file.[String.length file - String.length suffix - 1] = '/')

(* ------------------------------------------------------------------ *)
(* Shared syntactic helpers                                           *)
(* ------------------------------------------------------------------ *)

let flat_ident e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> (
      match Longident.flatten txt with
      | exception _ -> None
      | parts -> Some (String.concat "." parts))
  | _ -> None

let strip_stdlib name =
  match String.split_on_char '.' name with
  | "Stdlib" :: rest when rest <> [] -> String.concat "." rest
  | _ -> name

let last_component name =
  match List.rev (String.split_on_char '.' name) with
  | last :: _ -> last
  | [] -> name

let module_prefix name =
  match String.split_on_char '.' name with
  | [ _ ] -> None
  | m :: _ -> Some m
  | [] -> None

(* The base identifier under a chain of field projections: for
   [state.tbl] that is [state]. Used by L3 to decide whether a mutated
   value is captured. *)
let rec head_ident e =
  match e.pexp_desc with
  | Pexp_ident { txt = Longident.Lident x; _ } -> Some x
  | Pexp_field (e, _) -> head_ident e
  | Pexp_constraint (e, _) -> head_ident e
  | _ -> None

let string_const e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_string (s, _, _)) -> Some s
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Suppression attributes                                             *)
(* ------------------------------------------------------------------ *)

type allow = { rule : string; justification : string option; at : Location.t }

let allows_of_attributes (attrs : attributes) =
  List.filter_map
    (fun a ->
      if a.attr_name.txt <> "lint.allow" then None
      else
        let payload =
          match a.attr_payload with
          | PStr [ { pstr_desc = Pstr_eval (e, _); _ } ] -> string_const e
          | _ -> None
        in
        match payload with
        | None -> Some { rule = "?"; justification = None; at = a.attr_loc }
        | Some s -> (
            match String.index_opt s ':' with
            | None -> Some { rule = String.trim s; justification = None; at = a.attr_loc }
            | Some i ->
                let rule = String.trim (String.sub s 0 i) in
                let just =
                  String.trim (String.sub s (i + 1) (String.length s - i - 1))
                in
                let justification = if just = "" then None else Some just in
                Some { rule; justification; at = a.attr_loc }))
    attrs

(* ------------------------------------------------------------------ *)
(* Rule L1: partiality                                                *)
(* ------------------------------------------------------------------ *)

(* Partial operations with total *_opt (or matched) replacements; the
   crash classes PR 4's sweep found reaching users. *)
let l1_banned =
  [
    ("Option.get", "match on the option (Option.value / explicit branch)");
    ("List.hd", "match on the list or use a *_opt traversal");
    ("List.tl", "match on the list");
    ("List.nth", "List.nth_opt");
    ("Hashtbl.find", "Hashtbl.find_opt");
    ("int_of_string", "int_of_string_opt");
    ("float_of_string", "float_of_string_opt");
    ("bool_of_string", "bool_of_string_opt");
  ]

let l1_check_ident name =
  let name = strip_stdlib name in
  List.assoc_opt name l1_banned
  |> Option.map (fun subst ->
         Printf.sprintf "partial `%s` (use %s)" name subst)

let is_raise_not_found f args =
  match flat_ident f with
  | Some ("raise" | "Stdlib.raise" | "raise_notrace" | "Stdlib.raise_notrace") -> (
      match args with
      | [ (Asttypes.Nolabel, arg) ] -> (
          match arg.pexp_desc with
          | Pexp_construct ({ txt; _ }, None) -> (
              match Longident.flatten txt with
              | [ "Not_found" ] | [ "Stdlib"; "Not_found" ] -> true
              | _ -> false
              | exception _ -> false)
          | _ -> false)
      | _ -> false)
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Rule L2: polymorphic ordering at float type                        *)
(* ------------------------------------------------------------------ *)

let float_returning =
  [
    "+."; "-."; "*."; "/."; "**"; "~-."; "~+."; "float_of_int"; "float_of_string";
    "abs_float"; "sqrt"; "exp"; "log"; "log10"; "cos"; "sin"; "tan"; "atan";
    "atan2"; "ceil"; "floor"; "mod_float"; "min_float"; "max_float";
  ]

(* Syntactic evidence that an expression is a float (or a float list /
   array literal). No types: this under-approximates, which is the
   right direction for a lint that gates CI. *)
let rec is_floaty e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_apply (f, _) -> (
      match flat_ident f with
      | Some name ->
          let name = strip_stdlib name in
          List.mem name float_returning
          || (match module_prefix name with Some "Float" -> true | _ -> false)
      | None -> false)
  | Pexp_constraint (_, t) -> (
      match t.ptyp_desc with
      | Ptyp_constr ({ txt = Longident.Lident "float"; _ }, []) -> true
      | _ -> false)
  | Pexp_construct ({ txt = Longident.Lident "::"; _ }, Some arg) -> (
      match arg.pexp_desc with
      | Pexp_tuple [ hd; _ ] -> is_floaty hd
      | _ -> false)
  | Pexp_array (hd :: _) -> is_floaty hd
  | Pexp_ifthenelse (_, e1, _) -> is_floaty e1
  | Pexp_let (_, _, body) | Pexp_sequence (_, body) -> is_floaty body
  | _ -> false

let l2_poly_order = [ "compare"; "min"; "max" ]

(* The sort entry points proper: a bare polymorphic `compare` handed
   to one of these is flagged unconditionally — the float case is just
   the worst instance (NaN breaks the total order); on every type it
   is slower than the monomorphic comparator and hides the intended
   key. sort_uniq/merge stay on the float-evidence path below: they
   are pervasively (and harmlessly) used with `compare` on small int
   lists for set-like normalisation. *)
let l2_sort_fns =
  [
    "List.sort"; "List.stable_sort"; "List.fast_sort";
    "Array.sort"; "Array.stable_sort"; "Array.fast_sort";
  ]

let l2_sorters = [ "List.sort_uniq"; "List.merge" ] @ l2_sort_fns

let is_bare_compare e =
  match flat_ident e with
  | Some name -> strip_stdlib name = "compare"
  | None -> false

(* ------------------------------------------------------------------ *)
(* Rule L4: unsafe-op containment                                     *)
(* ------------------------------------------------------------------ *)

let l4_unsafe_name name =
  let name = strip_stdlib name in
  if name = "Obj.magic" then true
  else String.starts_with ~prefix:"unsafe_" (last_component name)

(* Syntactic classification of an unsafe op as a Bigarray accessor:
   some component of the module path names the Bigarray layer (the
   array-kind submodules occur both qualified [Bigarray.Array1] and
   opened/aliased [Array1]). *)
let l4_bigarray_modules = [ "Bigarray"; "Array1"; "Array2"; "Array3"; "Genarray" ]

let l4_is_bigarray name =
  match List.rev (String.split_on_char '.' (strip_stdlib name)) with
  | _ :: modpath -> List.exists (fun m -> List.mem m l4_bigarray_modules) modpath
  | [] -> false

(* ------------------------------------------------------------------ *)
(* Rule L5: observability names must be literals                      *)
(* ------------------------------------------------------------------ *)

let l5_registrars = [ "Obs.counter"; "Obs.gauge"; "Obs.span"; "Obs.with_span" ]

(* ------------------------------------------------------------------ *)
(* Rule L3: Par capture-safety                                        *)
(* ------------------------------------------------------------------ *)

(* Entry points whose closure arguments run on other domains. *)
let l3_fanouts = [ "Par.run"; "Par.map"; "Par.chunk" ]

(* Modules whose operations are domain-safe on captured state. *)
let l3_safe_modules = [ "Atomic"; "Obs"; "Domain" ]

let l3_mutators_by_module = [ "Hashtbl"; "Buffer"; "Queue"; "Stack" ]

let rec pattern_vars p acc =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> txt :: acc
  | Ppat_alias (p, { txt; _ }) -> pattern_vars p (txt :: acc)
  | Ppat_tuple ps -> List.fold_left (fun acc p -> pattern_vars p acc) acc ps
  | Ppat_construct (_, Some (_, p)) -> pattern_vars p acc
  | Ppat_variant (_, Some p) -> pattern_vars p acc
  | Ppat_record (fields, _) ->
      List.fold_left (fun acc (_, p) -> pattern_vars p acc) acc fields
  | Ppat_array ps -> List.fold_left (fun acc p -> pattern_vars p acc) acc ps
  | Ppat_or (a, b) -> pattern_vars a (pattern_vars b acc)
  | Ppat_constraint (p, _) | Ppat_lazy p | Ppat_open (_, p) | Ppat_exception p ->
      pattern_vars p acc
  | _ -> acc

module StringSet = Set.Make (String)

(* ------------------------------------------------------------------ *)
(* Traversal                                                          *)
(* ------------------------------------------------------------------ *)

type ctx = {
  config : config;
  file : string;
  lines : string array;  (* source lines, for L4 proof comments *)
  mutable allows : allow list;  (* active, justified suppressions *)
  mutable item_bounds : int * int;  (* enclosing structure item lines *)
  mutable par_owned : StringSet.t;
  mutable diags : Diagnostic.t list;
  mutable suppressed : Diagnostic.suppressed list;
}

let rule_enabled ctx rule = rule = "L0" || List.mem rule ctx.config.rules

let emit ctx rule loc message =
  if rule_enabled ctx rule then begin
    let d = Diagnostic.of_location ~rule ~message loc in
    match List.find_opt (fun (a : allow) -> a.rule = rule) ctx.allows with
    | Some a ->
        let justification = Option.value a.justification ~default:"" in
        ctx.suppressed <- { Diagnostic.diag = d; justification } :: ctx.suppressed
    | None ->
        if
          rule = "L1"
          && List.exists (path_matches ctx.file) ctx.config.allow_partial
        then ()
        else ctx.diags <- d :: ctx.diags
  end

(* Push the justified [@lint.allow] attributes for the extent of [k];
   an allow without a justification never suppresses anything — it is
   its own (L0) diagnostic instead. *)
let with_allows ctx attrs k =
  let pushed =
    List.filter_map
      (fun (a : allow) ->
        if a.rule = "?" then begin
          emit ctx "L0" a.at
            "[@lint.allow] expects a string payload \"Lx: justification\"";
          None
        end
        else if not (List.mem a.rule all_rules) then begin
          emit ctx "L0" a.at
            (Printf.sprintf "[@lint.allow]: unknown rule %S" a.rule);
          None
        end
        else
          match a.justification with
          | None ->
              emit ctx "L0" a.at
                (Printf.sprintf
                   "unjustified [@lint.allow %S]: write \"%s: why this site is \
                    safe\"" a.rule a.rule);
              None
          | Some _ -> Some a)
      (allows_of_attributes attrs)
  in
  let saved = ctx.allows in
  ctx.allows <- pushed @ ctx.allows;
  Fun.protect ~finally:(fun () -> ctx.allows <- saved) k

(* L4: does the enclosing definition (or the few lines just above it)
   carry a "(* bounds: ... *)" proof comment? *)
let span_has_bounds ctx =
  let start_line, end_line = ctx.item_bounds in
  let lo = max 1 (start_line - 4) in
  let hi = min (Array.length ctx.lines) end_line in
  let found = ref false in
  for i = lo to hi do
    let line = ctx.lines.(i - 1) in
    let rec scan from =
      match String.index_from_opt line from 'b' with
      | Some j when j + 7 <= String.length line ->
          if String.sub line j 7 = "bounds:" then found := true else scan (j + 1)
      | _ -> ()
    in
    scan 0
  done;
  !found

let l4_flag ctx name loc =
  let kind, allowlist =
    if l4_is_bigarray name then ("Bigarray unsafe", ctx.config.unsafe_bigarray_ok)
    else ("unsafe", ctx.config.unsafe_ok)
  in
  if List.exists (path_matches ctx.file) allowlist then begin
    if not (span_has_bounds ctx) then
      emit ctx "L4" loc
        (Printf.sprintf
           "%s `%s` without a `(* bounds: ... *)` proof comment on the \
            enclosing definition" kind name)
  end
  else
    emit ctx "L4" loc
      (Printf.sprintf "%s `%s` outside the containment files (%s)" kind name
         (String.concat ", " allowlist))

let positional args =
  List.filter_map
    (function Asttypes.Nolabel, a -> Some a | _ -> None)
    args

(* --- L3 closure walk ---------------------------------------------- *)

let add_pattern p bound =
  List.fold_left (fun acc v -> StringSet.add v acc) bound (pattern_vars p [])

let rec l3_walk ctx bound e =
  with_allows ctx e.pexp_attributes @@ fun () ->
  let free x = not (StringSet.mem x bound || StringSet.mem x ctx.par_owned) in
  let children bound =
    let it =
      {
        Ast_iterator.default_iterator with
        expr = (fun _ e' -> l3_walk ctx bound e');
      }
    in
    Ast_iterator.default_iterator.expr it e
  in
  match e.pexp_desc with
  | Pexp_let (rf, vbs, body) ->
      let bound' =
        List.fold_left (fun acc vb -> add_pattern vb.pvb_pat acc) bound vbs
      in
      let inner = if rf = Asttypes.Recursive then bound' else bound in
      List.iter (fun vb -> l3_walk ctx inner vb.pvb_expr) vbs;
      l3_walk ctx bound' body
  | Pexp_fun (_, default, pat, body) ->
      Option.iter (l3_walk ctx bound) default;
      l3_walk ctx (add_pattern pat bound) body
  | Pexp_function cases -> List.iter (l3_case ctx bound) cases
  | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
      l3_walk ctx bound scrut;
      List.iter (l3_case ctx bound) cases
  | Pexp_for (pat, lo, hi, _, body) ->
      l3_walk ctx bound lo;
      l3_walk ctx bound hi;
      l3_walk ctx (add_pattern pat bound) body
  | Pexp_setfield (obj, _, v) ->
      (match head_ident obj with
      | Some x when free x ->
          emit ctx "L3" e.pexp_loc
            (Printf.sprintf
               "mutable field of captured `%s` assigned inside a Par task \
                (capture immutable data, Atomic.t, or tag the binding \
                [@par.owned])" x)
      | _ -> ());
      l3_walk ctx bound obj;
      l3_walk ctx bound v
  | Pexp_apply (f, args) -> (
      let fname = Option.map strip_stdlib (flat_ident f) in
      let first_head =
        match positional args with a :: _ -> head_ident a | [] -> None
      in
      let flag_first what =
        match first_head with
        | Some x when free x ->
            emit ctx "L3" e.pexp_loc
              (Printf.sprintf
                 "%s `%s` inside a Par task (use Atomic.t, task-local state \
                  from ~init, or tag the binding [@par.owned])" what x)
        | _ -> ()
      in
      let walk_args () = List.iter (fun (_, a) -> l3_walk ctx bound a) args in
      match fname with
      | Some "!" ->
          flag_first "dereference of captured ref";
          walk_args ()
      | Some ":=" ->
          flag_first "assignment to captured ref";
          walk_args ()
      | Some ("incr" | "decr") ->
          flag_first "mutation of captured ref";
          walk_args ()
      | Some ("Array.set" | "Array.unsafe_set" | "Bytes.set"
             | "Bytes.unsafe_set" | "Array.fill" | "Array.blit") ->
          flag_first "mutation of captured array";
          walk_args ()
      | Some name
        when match module_prefix name with
             | Some m -> List.mem m l3_mutators_by_module
             | None -> false ->
          flag_first (Printf.sprintf "captured mutable state passed to `%s`" name);
          walk_args ()
      | Some name
        when match module_prefix name with
             | Some m -> List.mem m l3_safe_modules
             | None -> false ->
          (* Atomic/Obs/Domain operations are the sanctioned way to
             share state across tasks. *)
          walk_args ()
      | _ ->
          l3_walk ctx bound f;
          walk_args ())
  | _ -> children bound

and l3_case ctx bound (c : case) =
  let bound' = add_pattern c.pc_lhs bound in
  Option.iter (l3_walk ctx bound') c.pc_guard;
  l3_walk ctx bound' c.pc_rhs

let l3_closure ctx e = l3_walk ctx StringSet.empty e

(* --- per-expression rule checks ----------------------------------- *)

let l2_check ctx f args loc =
  match flat_ident f with
  | None -> ()
  | Some name -> (
      let name = strip_stdlib name in
      let pos = positional args in
      if List.mem name l2_poly_order && List.exists is_floaty pos then
        emit ctx "L2" loc
          (Printf.sprintf
             "polymorphic `%s` at float type (use Float.%s: NaN poisons \
              polymorphic ordering)" name name)
      else if List.mem name l2_sort_fns then
        match pos with
        | cmp :: rest when is_bare_compare cmp ->
            (* Syntactic float evidence gets the sharper NaN message;
               everything else gets the general spell-the-key-out one. *)
            if List.exists is_floaty rest then
              emit ctx "L2" loc
                (Printf.sprintf
                   "`%s compare` over floats (use Float.compare: NaN poisons \
                    polymorphic ordering)" name)
            else
              emit ctx "L2" loc
                (Printf.sprintf
                   "bare `compare` passed to `%s` (spell the key out — \
                    Int.compare, Float.compare, or an explicit comparator: \
                    polymorphic compare breaks on NaN and functional values \
                    and hides the intended order)" name)
        | _ -> ()
      else if List.mem name l2_sorters then
        match pos with
        | cmp :: rest when is_bare_compare cmp && List.exists is_floaty rest ->
            emit ctx "L2" loc
              (Printf.sprintf
                 "`%s compare` over floats (use Float.compare: NaN poisons \
                  polymorphic ordering)" name)
        | _ -> ())

let l5_check ctx f args =
  match flat_ident f with
  | Some name when List.mem (strip_stdlib name) l5_registrars -> (
      match positional args with
      | arg :: _ when string_const arg = None ->
          emit ctx "L5" arg.pexp_loc
            (Printf.sprintf
               "`%s` requires a literal name: dynamic names grow the registry \
                without bound and break the jobs-determinism of counter JSON"
               (strip_stdlib name))
      | _ -> ())
  | _ -> ()

let l3_dispatch ctx f args =
  match flat_ident f with
  | Some name when List.mem (strip_stdlib name) l3_fanouts ->
      List.iter
        (fun (_, a) ->
          match a.pexp_desc with
          | Pexp_fun _ | Pexp_function _ -> l3_closure ctx a
          | _ -> ())
        args
  | _ -> ()

let check_expr ctx e =
  match e.pexp_desc with
  | Pexp_ident _ -> (
      match flat_ident e with
      | Some name ->
          (match l1_check_ident name with
          | Some msg -> emit ctx "L1" e.pexp_loc msg
          | None -> ());
          if l4_unsafe_name name then l4_flag ctx name e.pexp_loc
      | None -> ())
  | Pexp_apply (f, args) ->
      if is_raise_not_found f args then
        emit ctx "L1" e.pexp_loc
          "naked `raise Not_found` (raise a diagnostic exception or return an \
           option)";
      l2_check ctx f args e.pexp_loc;
      l5_check ctx f args;
      l3_dispatch ctx f args
  | _ -> ()

(* --- whole-file entry point --------------------------------------- *)

let collect_par_owned structure =
  let owned = ref StringSet.empty in
  let tag attrs pat =
    if List.exists (fun a -> a.attr_name.txt = "par.owned") attrs then
      owned :=
        List.fold_left (fun acc v -> StringSet.add v acc) !owned
          (pattern_vars pat [])
  in
  let it =
    {
      Ast_iterator.default_iterator with
      value_binding =
        (fun it vb ->
          tag vb.pvb_attributes vb.pvb_pat;
          tag vb.pvb_pat.ppat_attributes vb.pvb_pat;
          Ast_iterator.default_iterator.value_binding it vb);
    }
  in
  it.structure it structure;
  !owned

let run ~config ~file ~source structure =
  let lines = Array.of_list (String.split_on_char '\n' source) in
  let ctx =
    {
      config;
      file;
      lines;
      allows = [];
      item_bounds = (1, Array.length lines);
      par_owned = collect_par_owned structure;
      diags = [];
      suppressed = [];
    }
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          with_allows ctx e.pexp_attributes @@ fun () ->
          check_expr ctx e;
          Ast_iterator.default_iterator.expr it e);
      structure_item =
        (fun it si ->
          let saved = ctx.item_bounds in
          ctx.item_bounds <-
            (si.pstr_loc.loc_start.pos_lnum, si.pstr_loc.loc_end.pos_lnum);
          Ast_iterator.default_iterator.structure_item it si;
          ctx.item_bounds <- saved);
      value_binding =
        (fun it vb ->
          with_allows ctx vb.pvb_attributes @@ fun () ->
          Ast_iterator.default_iterator.value_binding it vb);
    }
  in
  it.structure it structure;
  (List.rev ctx.diags, List.rev ctx.suppressed)
