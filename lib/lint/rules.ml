(* The ftr-specific lint rules, run over a file's *typedtree*.

   v2 of the pass (DESIGN.md section 15): every rule sees resolved
   paths and real types, so L1 no longer misses a locally rebound
   [List.hd], L2 detects float ordering from [Types.type_expr] instead
   of syntactic guesses, and the new dataflow layer (L6/L7) tracks
   values through let-bindings, returns and a one-level call summary.

   Rules:
   - L1 partiality; L2 float/bare-compare ordering; L4 unsafe-op
     containment; L5 literal Obs names — ported from v1, now resolved
     and (L2) type-aware.
   - L6 determinism-taint: iteration-order and environment sources
     must not reach Sjson/digest/counter sinks or Par merges.
   - L7 domain-race: type-detected mutable state captured by a Par
     task and mutated through a helper call (what the old syntactic
     L3 provably missed). L3 keeps the direct-mutation checks, now on
     resolved names and Ident stamps.
   - L8 exit-code contract for files under [bin_paths].

   Suppression: any expression or value binding may carry
   [@lint.allow "Lx: justification"]. A provably ordered fold carries
   [@lint.ordered "proof"] instead, which records a justified L6
   suppression and cuts the taint. A missing justification is itself
   an error (rule L0). *)

open Typedtree

type config = {
  rules : string list;  (* enabled rule ids *)
  allow_partial : string list;
      (* L1 allowlist: path suffixes where partial ops are accepted
         wholesale (prefer per-site [@lint.allow]) *)
  unsafe_ok : string list;
      (* L4 containment: path suffixes where unsafe ops are legal,
         provided the enclosing definition carries a
         "(* bounds: ... *)" proof comment *)
  unsafe_bigarray_ok : string list;
      (* L4 containment for Bigarray unsafe accessors specifically:
         a separate, tighter allowlist than [unsafe_ok] (out-of-bounds
         Bigarray access is a wild off-heap read/write). *)
  bin_paths : string list;
      (* L8: directories whose files are executable entry points and
         owe the documented exit-code contract (0/1/2/3). *)
}

let all_rules = [ "L1"; "L2"; "L3"; "L4"; "L5"; "L6"; "L7"; "L8" ]

(* Bumped whenever a rule's semantics change: cached per-file results
   are keyed on it, so a rules change invalidates every cache. *)
let rules_version = "2.0.0"

let default_config =
  {
    rules = all_rules;
    allow_partial = [];
    unsafe_ok = [ "lib/graph/bitset.ml"; "lib/core/surviving.ml" ];
    unsafe_bigarray_ok = [ "lib/core/surviving.ml" ];
    bin_paths = [ "bin" ];
  }

let path_matches file suffix =
  file = suffix
  || (String.length file > String.length suffix
     && String.ends_with ~suffix file
     && file.[String.length file - String.length suffix - 1] = '/')

let path_under dir file =
  file = dir
  || String.starts_with ~prefix:(dir ^ "/") file
  || path_matches file dir

let config_fingerprint c =
  let fields =
    ("rules" :: c.rules)
    @ ("allow_partial" :: c.allow_partial)
    @ ("unsafe_ok" :: c.unsafe_ok)
    @ ("unsafe_bigarray_ok" :: c.unsafe_bigarray_ok)
    @ ("bin_paths" :: c.bin_paths)
  in
  String.sub (Digest.to_hex (Digest.string (String.concat "\x00" fields))) 0 12

(* ------------------------------------------------------------------ *)
(* Resolved-name helpers                                              *)
(* ------------------------------------------------------------------ *)

(* "Ftr_core__Par" -> ["Ftr_core"; "Par"]: dune's wrapped-library
   mangling must not hide a module from name matching. *)
let split_dunder s =
  let n = String.length s in
  let rec go start i acc =
    if i + 1 >= n then List.rev (String.sub s start (n - start) :: acc)
    else if s.[i] = '_' && s.[i + 1] = '_' then
      go (i + 2) (i + 2) (String.sub s start (i - start) :: acc)
    else go start (i + 1) acc
  in
  if n = 0 then [] else go 0 0 []

let components name =
  let parts =
    List.concat_map split_dunder (String.split_on_char '.' name)
    |> List.filter (fun s -> s <> "")
  in
  match parts with "Stdlib" :: rest when rest <> [] -> rest | parts -> parts

(* Canonical spelling of a resolved path: components joined by ".",
   [Stdlib] and library-wrapper prefixes stripped. *)
let norm name = String.concat "." (components name)

(* The last module.value pair: matches repo modules however the
   library wrapper qualifies them ("Ftr_core.Par.run", fixture-local
   "Par.run" -> "Par.run"). *)
let last2 name =
  match List.rev (components name) with
  | f :: m :: _ -> m ^ "." ^ f
  | [ x ] -> x
  | [] -> name

let last_component name =
  match List.rev (components name) with x :: _ -> x | [] -> name

let path_of e =
  match e.exp_desc with Texp_ident (p, _, _) -> Some p | _ -> None

let resolved_name e = Option.map (fun p -> norm (Path.name p)) (path_of e)

(* The base identifier under a chain of field projections: for
   [state.tbl] that is [state]. *)
let rec head_id e =
  match e.exp_desc with
  | Texp_ident (Path.Pident id, _, _) -> Some id
  | Texp_field (e, _, _) -> head_id e
  | _ -> None

let uname = Ident.unique_name

module SSet = Set.Make (String)

let positional args =
  List.filter_map
    (function Asttypes.Nolabel, Some a -> Some a | _ -> None)
    args

let arg_exprs args = List.filter_map (fun (_, a) -> a) args

let tcase_parts (type k) (c : k Typedtree.case) =
  (Typedtree.pat_bound_idents c.c_lhs, c.c_guard, c.c_rhs)

(* ------------------------------------------------------------------ *)
(* Suppression attributes                                             *)
(* ------------------------------------------------------------------ *)

type allow = { rule : string; justification : string option; at : Location.t }

let string_payload (a : Parsetree.attribute) =
  match a.attr_payload with
  | PStr [ { pstr_desc = Pstr_eval (e, _); _ } ] -> (
      match e.pexp_desc with
      | Pexp_constant (Pconst_string (s, _, _)) -> Some s
      | _ -> None)
  | _ -> None

let allows_of_attributes (attrs : Parsetree.attributes) =
  List.filter_map
    (fun (a : Parsetree.attribute) ->
      if a.attr_name.txt <> "lint.allow" then None
      else
        match string_payload a with
        | None -> Some { rule = "?"; justification = None; at = a.attr_loc }
        | Some s -> (
            match String.index_opt s ':' with
            | None ->
                Some { rule = String.trim s; justification = None; at = a.attr_loc }
            | Some i ->
                let rule = String.trim (String.sub s 0 i) in
                let just =
                  String.trim (String.sub s (i + 1) (String.length s - i - 1))
                in
                let justification = if just = "" then None else Some just in
                Some { rule; justification; at = a.attr_loc }))
    attrs

(* [@lint.ordered "proof"]: the L6 escape hatch for provably
   key-sorted (or commutative) folds. Returns (proof, attr loc). *)
let ordered_of (attrs : Parsetree.attributes) =
  List.find_map
    (fun (a : Parsetree.attribute) ->
      if a.attr_name.txt <> "lint.ordered" then None
      else Some (string_payload a, a.attr_loc))
    attrs

(* ------------------------------------------------------------------ *)
(* Rule tables                                                        *)
(* ------------------------------------------------------------------ *)

let l1_banned =
  [
    ("Option.get", "match on the option (Option.value / explicit branch)");
    ("List.hd", "match on the list or use a *_opt traversal");
    ("List.tl", "match on the list");
    ("List.nth", "List.nth_opt");
    ("Hashtbl.find", "Hashtbl.find_opt");
    ("int_of_string", "int_of_string_opt");
    ("float_of_string", "float_of_string_opt");
    ("bool_of_string", "bool_of_string_opt");
  ]

let l2_poly_order = [ "compare"; "min"; "max" ]

let l2_sort_fns =
  [
    "List.sort"; "List.stable_sort"; "List.fast_sort";
    "Array.sort"; "Array.stable_sort"; "Array.fast_sort";
  ]

let l2_sorters = [ "List.sort_uniq"; "List.merge" ] @ l2_sort_fns

let l4_bigarray_modules = [ "Bigarray"; "Array1"; "Array2"; "Array3"; "Genarray" ]

let l5_registrars = [ "Obs.counter"; "Obs.gauge"; "Obs.span"; "Obs.with_span" ]

let l3_fanouts = [ "Par.run"; "Par.map"; "Par.chunk" ]
let l3_safe_modules = [ "Atomic"; "Obs"; "Domain" ]
let l3_mutators_by_module = [ "Hashtbl"; "Buffer"; "Queue"; "Stack" ]

(* --- L6 taint lattice ---------------------------------------------- *)

(* [`Order] taints (table iteration order) additionally trip the
   escape rule — an unsorted fold result leaving a function is already
   a latent bug. [`Env] taints (time, randomness, domain id, GC
   statistics) are legal in gauges/spans/logs and only fire when they
   reach a deterministic-artifact sink or a Par merge. *)
type taint_cls = Order | Env

type taint = taint_cls * string * Location.t

let l6_sources =
  [
    ("Hashtbl.fold", (Order, "Hashtbl.fold iteration order"));
    ("Hashtbl.iter", (Order, "Hashtbl.iter iteration order"));
    ("Sys.time", (Env, "wall-clock time (`Sys.time`)"));
    ("Unix.gettimeofday", (Env, "wall-clock time (`Unix.gettimeofday`)"));
    ("Unix.time", (Env, "wall-clock time (`Unix.time`)"));
    ("Domain.self", (Env, "the current domain id (`Domain.self`)"));
    ("Gc.stat", (Env, "GC statistics (`Gc.stat`)"));
    ("Gc.quick_stat", (Env, "GC statistics (`Gc.quick_stat`)"));
    ("Gc.minor_words", (Env, "GC statistics (`Gc.minor_words`)"));
    ("Gc.allocated_bytes", (Env, "GC statistics (`Gc.allocated_bytes`)"));
    ("Gc.counters", (Env, "GC statistics (`Gc.counters`)"));
  ]

let source_of name =
  match List.assoc_opt name l6_sources with
  | Some s -> Some s
  | None ->
      if
        String.starts_with ~prefix:"Random." name
        && not (String.starts_with ~prefix:"Random.State." name)
      then Some (Env, "`Random.*` outside a threaded Random.State")
      else None

(* Order-erasing operations: their results are canonical regardless of
   input order. *)
let l6_sanitizers =
  [
    "List.sort"; "List.sort_uniq"; "List.stable_sort"; "List.fast_sort";
    "List.length"; "Hashtbl.length"; "Hashtbl.stats";
  ]

(* In-place sorts: calling one *cleans* the container argument. *)
let l6_inplace_sorts = [ "Array.sort"; "Array.stable_sort"; "Array.fast_sort" ]

let is_digest name = String.starts_with ~prefix:"Digest." (norm name)

(* Mutator naming convention: calls whose last component is a mutator
   verb taint (or race on) their first argument. This is what lets the
   pass see [Bitset.add acc u] or [Digraph.Builder.add_arc b u v]
   inside a Hashtbl.iter without knowing those modules. *)
let verb_mutator name =
  let last = last_component name in
  name = ":="
  || List.exists
       (fun p -> String.starts_with ~prefix:p last)
       [
         "add"; "set"; "replace"; "remove"; "push"; "pop"; "clear"; "fill";
         "blit"; "reset"; "incr"; "decr"; "update"; "grow";
       ]

let in_module modules name =
  List.exists (fun m -> List.mem m (components name)) modules

(* ------------------------------------------------------------------ *)
(* One-level call summaries                                           *)
(* ------------------------------------------------------------------ *)

type summary = {
  s_params : string list list;  (* unique names, one list per position *)
  s_returns : (taint_cls * string) option;  (* result tainted regardless *)
  s_from_params : bool;  (* tainted args taint the result *)
  s_mutates : int list;  (* parameter positions the body mutates *)
  s_source_alias : (taint_cls * string) option;  (* eta-alias of a source *)
}

(* ------------------------------------------------------------------ *)
(* Traversal context                                                  *)
(* ------------------------------------------------------------------ *)

type ctx = {
  config : config;
  file : string;
  lines : string array;  (* source lines: L4 proof comments, fingerprints *)
  resolve : Env.t -> Env.t;  (* cmt env reconstruction, or identity *)
  l8_active : bool;
  mutable quiet : bool;  (* summary pass: analyse, emit nothing *)
  mutable allows : allow list;  (* active, justified suppressions *)
  mutable item_bounds : int * int;  (* enclosing structure item lines *)
  mutable stderr_locs : Location.t list;  (* stderr prints, this item *)
  mutable par_owned : SSet.t;
  summaries : (string, summary) Hashtbl.t;
  bodies : (string, expression) Hashtbl.t;  (* helper-as-task lookup *)
  fp_seen : (string, int) Hashtbl.t;  (* fingerprint occurrence index *)
  mutable diags : Diagnostic.t list;
  mutable suppressed : Diagnostic.suppressed list;
}

let rule_enabled ctx rule = rule = "L0" || List.mem rule ctx.config.rules

let line_text ctx line =
  if line >= 1 && line <= Array.length ctx.lines then ctx.lines.(line - 1)
  else ""

let fp_of ctx rule (loc : Location.t) =
  let text = line_text ctx loc.loc_start.pos_lnum in
  let key = rule ^ "\x00" ^ String.trim text in
  let index = Option.value ~default:0 (Hashtbl.find_opt ctx.fp_seen key) in
  Hashtbl.replace ctx.fp_seen key (index + 1);
  Diagnostic.fingerprint ~rule ~file:ctx.file ~line_text:text ~index

let emit ctx rule loc message =
  if rule_enabled ctx rule && not ctx.quiet then begin
    let fingerprint = fp_of ctx rule loc in
    let d = Diagnostic.of_location ~rule ~message ~fingerprint loc in
    match List.find_opt (fun (a : allow) -> a.rule = rule) ctx.allows with
    | Some a ->
        let justification = Option.value a.justification ~default:"" in
        ctx.suppressed <-
          { Diagnostic.diag = d; justification } :: ctx.suppressed
    | None ->
        if
          rule = "L1"
          && List.exists (path_matches ctx.file) ctx.config.allow_partial
        then ()
        else ctx.diags <- d :: ctx.diags
  end

let record_suppressed ctx rule loc message justification =
  if rule_enabled ctx rule && not ctx.quiet then begin
    let fingerprint = fp_of ctx rule loc in
    let d = Diagnostic.of_location ~rule ~message ~fingerprint loc in
    ctx.suppressed <- { Diagnostic.diag = d; justification } :: ctx.suppressed
  end

(* Push the justified [@lint.allow] attributes for the extent of [k].
   [report] is true only in the main (pass-1) traversal: the dataflow
   passes re-walk the same attributes and must not duplicate the L0
   hygiene errors. *)
let with_allows ?(report = true) ctx attrs k =
  let pushed =
    List.filter_map
      (fun (a : allow) ->
        if a.rule = "?" then begin
          if report then
            emit ctx "L0" a.at
              "[@lint.allow] expects a string payload \"Lx: justification\"";
          None
        end
        else if not (List.mem a.rule all_rules) then begin
          if report then
            emit ctx "L0" a.at
              (Printf.sprintf "[@lint.allow]: unknown rule %S" a.rule);
          None
        end
        else
          match a.justification with
          | None ->
              if report then
                emit ctx "L0" a.at
                  (Printf.sprintf
                     "unjustified [@lint.allow %S]: write \"%s: why this site \
                      is safe\"" a.rule a.rule);
              None
          | Some _ -> Some a)
      (allows_of_attributes attrs)
  in
  let saved = ctx.allows in
  ctx.allows <- pushed @ ctx.allows;
  Fun.protect ~finally:(fun () -> ctx.allows <- saved) k

(* ------------------------------------------------------------------ *)
(* Type queries                                                       *)
(* ------------------------------------------------------------------ *)

let expand ctx env ty =
  let env = ctx.resolve env in
  (env, try Ctype.expand_head env ty with _ -> ty)

let is_float_ty ctx env ty =
  let _, ty = expand ctx env ty in
  match Types.get_desc ty with
  | Types.Tconstr (p, [], _) -> Path.same p Predef.path_float
  | _ -> false

let is_unit_ty ctx e =
  let _, ty = expand ctx e.exp_env e.exp_type in
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> Path.same p Predef.path_unit
  | _ -> false

(* Is this expression's type the serve layer's JSON dialect? Detected
   from the type path, not the constructor spelling. *)
let is_sjson_ty ctx e =
  let _, ty = expand ctx e.exp_env e.exp_type in
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> (
      match List.rev (components (Path.name p)) with
      | "t" :: m :: _ -> m = "Sjson"
      | _ -> false)
  | _ -> false

(* Type-aware mutability (the heart of L7): what makes a value racy to
   share across domains, detected from [Types.type_expr]. [Atomic.t]
   is the sanctioned exception. *)
let rec type_mutability ctx env ty depth =
  if depth <= 0 then None
  else
    let env, ty = expand ctx env ty in
    match Types.get_desc ty with
    | Types.Ttuple tys ->
        List.find_map (fun t -> type_mutability ctx env t (depth - 1)) tys
    | Types.Tconstr (p, _, _) -> (
        let n = norm (Path.name p) in
        let l2c = last2 n in
        if n = "ref" then Some "ref"
        else if n = "bytes" then Some "Bytes.t"
        else if n = "array" then Some "array"
        else if l2c = "Atomic.t" then None
        else if l2c = "Hashtbl.t" then Some "Hashtbl.t"
        else if l2c = "Buffer.t" then Some "Buffer.t"
        else if l2c = "Queue.t" then Some "Queue.t"
        else if l2c = "Stack.t" then Some "Stack.t"
        else if
          List.mem "Bigarray" (components n)
          || List.mem l2c [ "Array1.t"; "Array2.t"; "Array3.t"; "Genarray.t" ]
        then Some "Bigarray"
        else
          match Env.find_type p env with
          | decl -> (
              match decl.Types.type_kind with
              | Types.Type_record (lds, _)
                when List.exists
                       (fun ld -> ld.Types.ld_mutable = Asttypes.Mutable)
                       lds ->
                  Some (Printf.sprintf "record with mutable fields (%s)" l2c)
              | _ -> None)
          | exception _ -> None)
    | _ -> None

(* ------------------------------------------------------------------ *)
(* L4: unsafe-op containment (ported; names now resolved)             *)
(* ------------------------------------------------------------------ *)

let l4_unsafe_name name =
  let name = norm name in
  name = "Obj.magic" || String.starts_with ~prefix:"unsafe_" (last_component name)

let l4_is_bigarray name =
  match List.rev (components name) with
  | _ :: modpath -> List.exists (fun m -> List.mem m l4_bigarray_modules) modpath
  | [] -> false

let span_has_bounds ctx =
  let start_line, end_line = ctx.item_bounds in
  let lo = max 1 (start_line - 4) in
  let hi = min (Array.length ctx.lines) end_line in
  let found = ref false in
  for i = lo to hi do
    let line = ctx.lines.(i - 1) in
    let rec scan from =
      match String.index_from_opt line from 'b' with
      | Some j when j + 7 <= String.length line ->
          if String.sub line j 7 = "bounds:" then found := true else scan (j + 1)
      | _ -> ()
    in
    scan 0
  done;
  !found

let l4_flag ctx name loc =
  let name = norm name in
  let kind, allowlist =
    if l4_is_bigarray name then ("Bigarray unsafe", ctx.config.unsafe_bigarray_ok)
    else ("unsafe", ctx.config.unsafe_ok)
  in
  if List.exists (path_matches ctx.file) allowlist then begin
    if not (span_has_bounds ctx) then
      emit ctx "L4" loc
        (Printf.sprintf
           "%s `%s` without a `(* bounds: ... *)` proof comment on the \
            enclosing definition" kind name)
  end
  else
    emit ctx "L4" loc
      (Printf.sprintf "%s `%s` outside the containment files (%s)" kind name
         (String.concat ", " allowlist))

(* ------------------------------------------------------------------ *)
(* L8: exit-code contract                                             *)
(* ------------------------------------------------------------------ *)

let is_stderr_print f args =
  match resolved_name f with
  | None -> false
  | Some n ->
      List.mem n
        [
          "prerr_string"; "prerr_endline"; "prerr_newline"; "prerr_char";
          "prerr_bytes"; "prerr_int"; "prerr_float";
        ]
      || last2 n = "Printf.eprintf"
      || last2 n = "Format.eprintf"
      || (last2 n = "Printf.fprintf" || last2 n = "Format.fprintf"
          || n = "output_string" || n = "output_char")
         && (match positional args with
            | ch :: _ -> (
                match resolved_name ch with
                | Some "stderr" -> true
                | Some m -> last2 m = "Format.err_formatter"
                | None -> false)
            | [] -> false)

let stderr_locs_of_item si =
  let locs = ref [] in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.exp_desc with
          | Texp_apply (f, args) when is_stderr_print f args ->
              locs := e.exp_loc :: !locs
          | _ -> ());
          Tast_iterator.default_iterator.expr it e);
    }
  in
  it.structure_item it si;
  !locs

(* The leaf codes an [exit] argument can evaluate to. [`Delegated]
   marks the sanctioned indirections (Exit_code.to_int, Cmdliner's
   eval family), which own the contract themselves. *)
let rec exit_leaves e =
  match e.exp_desc with
  | Texp_constant (Asttypes.Const_int n) -> [ `Code n ]
  | Texp_ifthenelse (_, a, Some b) -> exit_leaves a @ exit_leaves b
  | Texp_ifthenelse (_, a, None) -> exit_leaves a
  | Texp_match (_, cases, _) ->
      List.concat_map (fun c -> exit_leaves c.c_rhs) cases
  | Texp_let (_, _, body) | Texp_sequence (_, body) | Texp_open (_, body) ->
      exit_leaves body
  | Texp_apply (f, _) -> (
      match resolved_name f with
      | Some n
        when last2 n = "Exit_code.to_int" || last2 n = "Cmd.eval'"
             || last2 n = "Cmd.eval" ->
          [ `Delegated ]
      | _ -> [ `Opaque ])
  | _ -> [ `Opaque ]

let l8_check ctx e args =
  match positional args with
  | [ arg ] ->
      let stderr_before =
        List.exists
          (fun (l : Location.t) ->
            l.loc_start.pos_cnum <= e.exp_loc.loc_start.pos_cnum)
          ctx.stderr_locs
      in
      List.iter
        (function
          | `Code n when n < 0 || n > 3 ->
              emit ctx "L8" e.exp_loc
                (Printf.sprintf
                   "undocumented exit code %d (contract: 0 ok, 1 breach, 2 \
                    usage, 3 infra)" n)
          | `Code n when n >= 2 && not stderr_before ->
              emit ctx "L8" e.exp_loc
                (Printf.sprintf
                   "exit %d without a stderr diagnostic earlier in this \
                    handler — usage/infra exits must explain themselves on \
                    stderr first" n)
          | `Code _ | `Delegated -> ()
          | `Opaque ->
              emit ctx "L8" e.exp_loc
                "exit with an unanalyzable code: use a literal 0/1/2/3 or \
                 route it through Exit_code.to_int")
        (exit_leaves arg)
  | _ ->
      emit ctx "L8" e.exp_loc
        "exit applied without a literal code expression (partial application \
         hides the exit-code contract)"

(* ------------------------------------------------------------------ *)
(* L3/L7: Par capture-safety on the typedtree                         *)
(* ------------------------------------------------------------------ *)

let add_ids ids set = List.fold_left (fun s id -> SSet.add (uname id) s) set ids

let rec closure_walk ctx bound e =
  with_allows ~report:false ctx e.exp_attributes @@ fun () ->
  let free id =
    not (SSet.mem (uname id) bound || SSet.mem (uname id) ctx.par_owned)
  in
  let children bound =
    let it =
      {
        Tast_iterator.default_iterator with
        expr = (fun _ e' -> closure_walk ctx bound e');
      }
    in
    Tast_iterator.default_iterator.expr it e
  in
  match e.exp_desc with
  | Texp_let (rf, vbs, body) ->
      let bound' =
        List.fold_left
          (fun acc vb -> add_ids (pat_bound_idents vb.vb_pat) acc)
          bound vbs
      in
      let inner = if rf = Asttypes.Recursive then bound' else bound in
      List.iter (fun vb -> closure_walk ctx inner vb.vb_expr) vbs;
      closure_walk ctx bound' body
  | Texp_function { cases; _ } -> List.iter (closure_case ctx bound) cases
  | Texp_match (scrut, cases, _) ->
      closure_walk ctx bound scrut;
      List.iter (closure_case ctx bound) cases
  | Texp_try (body, cases) ->
      closure_walk ctx bound body;
      List.iter (closure_case ctx bound) cases
  | Texp_for (id, _, lo, hi, _, body) ->
      closure_walk ctx bound lo;
      closure_walk ctx bound hi;
      closure_walk ctx (SSet.add (uname id) bound) body
  | Texp_setfield (obj, _, _, v) ->
      (match head_id obj with
      | Some id when free id ->
          emit ctx "L3" e.exp_loc
            (Printf.sprintf
               "mutable field of captured `%s` assigned inside a Par task \
                (capture immutable data, Atomic.t, or tag the binding \
                [@par.owned])" (Ident.name id))
      | _ -> ());
      closure_walk ctx bound obj;
      closure_walk ctx bound v
  | Texp_apply ({ exp_desc = Texp_apply (inner_f, inner_args); _ }, args) ->
      (* `x |> mutate tbl` reaches the typedtree as `(mutate tbl) x`:
         flatten so the callee checks below see the real function. *)
      closure_walk ctx bound
        { e with exp_desc = Texp_apply (inner_f, inner_args @ args) }
  | Texp_apply (f, args) -> (
      let fname = resolved_name f in
      let first_head =
        match positional args with a :: _ -> head_id a | [] -> None
      in
      let flag_first what =
        match first_head with
        | Some id when free id ->
            emit ctx "L3" e.exp_loc
              (Printf.sprintf
                 "%s `%s` inside a Par task (use Atomic.t, task-local state \
                  from ~init, or tag the binding [@par.owned])" what
                 (Ident.name id))
        | _ -> ()
      in
      let walk_args () = List.iter (closure_walk ctx bound) (arg_exprs args) in
      match fname with
      | Some "!" ->
          flag_first "dereference of captured ref";
          walk_args ()
      | Some ":=" ->
          flag_first "assignment to captured ref";
          walk_args ()
      | Some ("incr" | "decr") ->
          flag_first "mutation of captured ref";
          walk_args ()
      | Some
          (( "Array.set" | "Array.unsafe_set" | "Bytes.set" | "Bytes.unsafe_set"
           | "Array.fill" | "Array.blit" ) as n) ->
          ignore n;
          flag_first "mutation of captured array";
          walk_args ()
      | Some name
        when List.exists
               (fun m -> List.mem m (components name))
               l3_mutators_by_module
             && verb_mutator name ->
          flag_first (Printf.sprintf "captured mutable state passed to `%s`" name);
          walk_args ()
      | Some name when in_module l3_safe_modules name ->
          (* Atomic/Obs/Domain operations are the sanctioned way to
             share state across tasks. *)
          walk_args ()
      | _ ->
          (* L7: a captured mutable value handed to a same-file helper
             that mutates that parameter — the interprocedural case
             the old syntactic L3 could not see. *)
          (match f.exp_desc with
          | Texp_ident (Path.Pident fid, _, _) -> (
              match Hashtbl.find_opt ctx.summaries (uname fid) with
              | Some s when s.s_mutates <> [] ->
                  List.iteri
                    (fun j a ->
                      if List.mem j s.s_mutates then
                        match head_id a with
                        | Some id when free id -> (
                            match
                              type_mutability ctx a.exp_env a.exp_type 3
                            with
                            | Some what ->
                                emit ctx "L7" e.exp_loc
                                  (Printf.sprintf
                                     "captured %s `%s` is mutated by `%s` \
                                      inside a Par task (parameter %d) — use \
                                      Atomic.t, task-local state from ~init, \
                                      or tag the binding [@par.owned]" what
                                     (Ident.name id) (Ident.name fid) j)
                            | None -> ())
                        | _ -> ())
                    (positional args)
              | _ -> ())
          | _ -> closure_walk ctx bound f);
          walk_args ())
  | _ -> children bound

and closure_case : type k. ctx -> SSet.t -> k case -> unit =
 fun ctx bound c ->
  let ids, guard, rhs = tcase_parts c in
  let bound' = add_ids ids bound in
  Option.iter (closure_walk ctx bound') guard;
  closure_walk ctx bound' rhs

(* Closure arguments of a Par fanout: literal functions, or same-file
   helpers passed by name (their stored bodies are walked with their
   own parameters bound). *)
let capture_check ctx args =
  if rule_enabled ctx "L3" || rule_enabled ctx "L7" then
    List.iter
      (fun a ->
        match a.exp_desc with
        | Texp_function _ -> closure_walk ctx SSet.empty a
        | Texp_ident (Path.Pident id, _, _) -> (
            match Hashtbl.find_opt ctx.bodies (uname id) with
            | Some body -> closure_walk ctx SSet.empty body
            | None -> ())
        | _ -> ())
      (arg_exprs args)

(* ------------------------------------------------------------------ *)
(* L6: determinism taint                                              *)
(* ------------------------------------------------------------------ *)

(* The taint evaluator returns the taint of the expression's value (if
   any) while emitting sink diagnostics along the way.

   - [tainted] maps Ident unique names to their taint; stamps are
     unique per file, so shadowing needs no scope discipline.
   - [iter] is set while walking the callback of a Hashtbl.iter/fold:
     effects on idents bound *outside* the callback become
     order-tainted, and sink calls fire immediately.
   - [locals] tracks idents bound since entering that callback. *)

let or_taint a b = match a with Some _ -> a | None -> b ()

let sink_message (cls, desc, _) sink =
  ignore cls;
  Printf.sprintf
    "value depending on %s flows into %s — deterministic artifacts must not \
     depend on it; canonicalise first (sort, threaded Random.State) or \
     suppress with [@lint.allow \"L6: why\"]" desc sink

let rec teval ctx ~iter ~locals tainted e : taint option =
  with_allows ~report:false ctx e.exp_attributes @@ fun () ->
  match ordered_of e.exp_attributes with
  | Some (Some proof, _) when String.trim proof <> "" -> (
      match teval_desc ctx ~iter ~locals tainted e with
      | Some (_, desc, loc) ->
          record_suppressed ctx "L6" loc
            (Printf.sprintf "value depends on %s; accepted as ordered" desc)
            (String.trim proof);
          None
      | None -> None)
  | _ -> teval_desc ctx ~iter ~locals tainted e

and teval_desc ctx ~iter ~locals tainted e =
  let te x = teval ctx ~iter ~locals tainted x in
  let discard x = ignore (te x) in
  let first_taint es = List.fold_left (fun t x -> or_taint t (fun () -> te x)) None es in
  match e.exp_desc with
  | Texp_ident (Path.Pident id, _, _) -> Hashtbl.find_opt tainted (uname id)
  | Texp_ident _ | Texp_constant _ -> None
  | Texp_let (_, vbs, body) ->
      let locals =
        List.fold_left
          (fun locals vb ->
            let t = teval_vb ctx ~iter ~locals tainted vb in
            let ids = pat_bound_idents vb.vb_pat in
            (match t with
            | Some ti ->
                List.iter (fun id -> Hashtbl.replace tainted (uname id) ti) ids
            | None -> ());
            add_ids ids locals)
          locals vbs
      in
      teval ctx ~iter ~locals tainted body
  | Texp_function { cases; _ } ->
      (* A closure's taint is its body's: a thunk wrapping an unsorted
         fold stays tainted through [locked (fun () -> ...)]. *)
      List.fold_left
        (fun t c ->
          let ids, guard, rhs = tcase_parts c in
          let locals = add_ids ids locals in
          Option.iter (fun g -> ignore (teval ctx ~iter ~locals tainted g)) guard;
          or_taint t (fun () -> teval ctx ~iter ~locals tainted rhs))
        None cases
  | Texp_apply (f, args) -> teval_apply ctx ~iter ~locals tainted e f args
  | Texp_match (scrut, cases, _) ->
      let ts = te scrut in
      List.fold_left
        (fun t c ->
          let ids, guard, rhs = tcase_parts c in
          (match ts with
          | Some ti ->
              List.iter (fun id -> Hashtbl.replace tainted (uname id) ti) ids
          | None -> ());
          let locals = add_ids ids locals in
          Option.iter (fun g -> ignore (teval ctx ~iter ~locals tainted g)) guard;
          or_taint t (fun () -> teval ctx ~iter ~locals tainted rhs))
        None cases
  | Texp_try (body, cases) ->
      let tb = te body in
      List.fold_left
        (fun t c ->
          let ids, guard, rhs = tcase_parts c in
          let locals = add_ids ids locals in
          Option.iter (fun g -> ignore (teval ctx ~iter ~locals tainted g)) guard;
          or_taint t (fun () -> teval ctx ~iter ~locals tainted rhs))
        tb cases
  | Texp_ifthenelse (c, a, b) ->
      discard c;
      let ta = te a in
      or_taint ta (fun () -> Option.fold ~none:None ~some:te b)
  | Texp_sequence (a, b) ->
      discard a;
      te b
  | Texp_tuple es | Texp_array es -> first_taint es
  | Texp_construct (_, _, es) -> (
      match first_taint es with
      | Some t when is_sjson_ty ctx e ->
          emit ctx "L6" e.exp_loc (sink_message t "an `Sjson` value");
          None
      | t -> t)
  | Texp_variant (_, eo) -> Option.fold ~none:None ~some:te eo
  | Texp_record { fields; extended_expression; _ } ->
      let t =
        Array.fold_left
          (fun t (_, def) ->
            match def with
            | Overridden (_, e') -> or_taint t (fun () -> te e')
            | _ -> t)
          None fields
      in
      or_taint t (fun () -> Option.fold ~none:None ~some:te extended_expression)
  | Texp_field (b, _, _) -> te b
  | Texp_setfield (obj, _, _, v) ->
      let tv = te v in
      (match head_id obj with
      | Some id -> (
          let u = uname id in
          match (tv, iter) with
          | Some ti, _ -> Hashtbl.replace tainted u ti
          | None, Some ti when not (SSet.mem u locals) ->
              Hashtbl.replace tainted u ti
          | _ -> ())
      | None -> ());
      discard obj;
      None
  | Texp_while (c, b) ->
      discard c;
      discard b;
      None
  | Texp_for (id, _, lo, hi, _, body) ->
      discard lo;
      discard hi;
      ignore (teval ctx ~iter ~locals:(SSet.add (uname id) locals) tainted body);
      None
  | Texp_open (_, b) -> te b
  | _ ->
      (* Anything unhandled: walk the children so sinks inside are
         still seen; the value itself is treated as clean. *)
      let it =
        {
          Tast_iterator.default_iterator with
          expr = (fun _ e' -> ignore (teval ctx ~iter ~locals tainted e'));
        }
      in
      Tast_iterator.default_iterator.expr it e;
      None

and teval_vb ctx ~iter ~locals tainted vb =
  with_allows ~report:false ctx vb.vb_attributes @@ fun () ->
  match ordered_of vb.vb_attributes with
  | Some (Some proof, _) when String.trim proof <> "" -> (
      match teval ctx ~iter ~locals tainted vb.vb_expr with
      | Some (_, desc, loc) ->
          record_suppressed ctx "L6" loc
            (Printf.sprintf "value depends on %s; accepted as ordered" desc)
            (String.trim proof);
          None
      | None -> None)
  | _ -> teval ctx ~iter ~locals tainted vb.vb_expr

and teval_apply ctx ~iter ~locals tainted e f args =
  match f.exp_desc with
  (* The typechecker turns `x |> g a` into `(g a) x`: flatten curried
     application heads so the callee is always the real function. *)
  | Texp_apply (inner_f, inner_args) ->
      teval_apply ctx ~iter ~locals tainted e inner_f (inner_args @ args)
  | _ -> teval_apply_flat ctx ~iter ~locals tainted e f args

and teval_apply_flat ctx ~iter ~locals tainted e f args =
  let te x = teval ctx ~iter ~locals tainted x in
  let pos = positional args in
  let fname = resolved_name f in
  match fname with
  (* Re-associate the pipe operators so `tbl |> Hashtbl.fold f` and
     `Digest.string @@ spell x` see through them. *)
  | Some "|>" -> (
      match pos with
      | [ x; ({ exp_desc = Texp_ident _; _ } as fn) ] when List.length args = 2 ->
          teval_apply ctx ~iter ~locals tainted e fn [ (Asttypes.Nolabel, Some x) ]
      | [ x; { exp_desc = Texp_apply (fn, inner); _ } ] when List.length args = 2
        ->
          (* `fold ... |> List.sort cmp`: the RHS is a partial
             application — append the piped value to its arguments. *)
          teval_apply ctx ~iter ~locals tainted e fn
            (inner @ [ (Asttypes.Nolabel, Some x) ])
      | _ -> List.fold_left (fun t x -> or_taint t (fun () -> te x)) None pos)
  | Some "@@" -> (
      match pos with
      | [ ({ exp_desc = Texp_ident _; _ } as fn); x ] when List.length args = 2 ->
          teval_apply ctx ~iter ~locals tainted e fn [ (Asttypes.Nolabel, Some x) ]
      | [ { exp_desc = Texp_apply (fn, inner); _ }; x ] when List.length args = 2
        ->
          teval_apply ctx ~iter ~locals tainted e fn
            (inner @ [ (Asttypes.Nolabel, Some x) ])
      | _ -> List.fold_left (fun t x -> or_taint t (fun () -> te x)) None pos)
  | Some n when source_of n <> None -> (
      let cls, desc =
        match source_of n with Some cd -> cd | None -> assert false
      in
      let hashtbl_iteration = n = "Hashtbl.iter" || n = "Hashtbl.fold" in
      let iter' =
        if hashtbl_iteration then Some (cls, desc, e.exp_loc) else iter
      in
      List.iter
        (fun a ->
          match a.exp_desc with
          | Texp_function _ when hashtbl_iteration ->
              (* The callback runs once per binding in table order:
                 fresh [locals], outer mutations become tainted. *)
              ignore (teval ctx ~iter:iter' ~locals:SSet.empty tainted a)
          | _ -> ignore (te a))
        (arg_exprs args);
      match n with
      | "Hashtbl.iter" -> None
      | _ -> Some (cls, desc, e.exp_loc))
  | Some n when List.mem n l6_inplace_sorts ->
      List.iter (fun a -> ignore (te a)) pos;
      (* In-place sort canonicalises the container. *)
      (match List.rev pos with
      | a :: _ ->
          Option.iter (fun id -> Hashtbl.remove tainted (uname id)) (head_id a)
      | [] -> ());
      None
  | Some n when List.mem n l6_sanitizers ->
      List.iter (fun a -> ignore (te a)) pos;
      None
  | Some n when in_module [ "Sjson" ] n || is_digest n ->
      let t =
        List.fold_left (fun t a -> or_taint t (fun () -> te a)) None
          (arg_exprs args)
      in
      (match t with
      | Some t -> emit ctx "L6" e.exp_loc (sink_message t ("`" ^ n ^ "`"))
      | None -> ());
      None
  | Some n when List.mem (last2 n) l3_fanouts ->
      capture_check ctx args;
      let t =
        List.fold_left (fun t a -> or_taint t (fun () -> te a)) None
          (arg_exprs args)
      in
      (match t with
      | Some (_, desc, _) ->
          emit ctx "L6" e.exp_loc
            (Printf.sprintf
               "Par task input or result depends on %s — the ordered merge \
                makes it part of the deterministic output; canonicalise \
                before the fanout or annotate [@lint.ordered]" desc)
      | None -> ());
      None
  | Some n when in_module l3_safe_modules n ->
      (if last2 n = "Obs.add" then
         match pos with
         | [ _; k ] -> (
             match te k with
             | Some (_, desc, _) ->
                 emit ctx "L6" e.exp_loc
                   (Printf.sprintf
                      "counter incremented by a value depending on %s — \
                       counters must be byte-identical across --jobs; use a \
                       gauge or canonicalise" desc)
             | None -> ())
         | _ -> ());
      List.iter (fun a -> ignore (te a)) (arg_exprs args);
      None
  | _ -> (
      (match f.exp_desc with Texp_ident _ -> () | _ -> ignore (te f));
      let argts = List.map (fun a -> (a, te a)) (arg_exprs args) in
      let first_tainted =
        List.find_map (fun (_, t) -> Option.map Fun.id t) argts
      in
      (* Mutator-verb heuristic: taint the mutated container when fed
         a tainted value, or when mutated at all from inside an
         iteration callback. *)
      (match fname with
      | Some n when verb_mutator n -> (
          match pos with
          | a0 :: _ -> (
              match head_id a0 with
              | Some id -> (
                  let u = uname id in
                  match (first_tainted, iter) with
                  | Some ti, _ -> Hashtbl.replace tainted u ti
                  | None, Some ti when not (SSet.mem u locals) ->
                      Hashtbl.replace tainted u ti
                  | _ -> ())
              | None -> ())
          | [] -> ())
      | _ -> ());
      let summ =
        match f.exp_desc with
        | Texp_ident (Path.Pident id, _, _) ->
            Hashtbl.find_opt ctx.summaries (uname id)
        | _ -> None
      in
      match summ with
      | Some s -> (
          match s.s_source_alias with
          | Some (cls, desc) -> Some (cls, desc, e.exp_loc)
          | None -> (
              match s.s_returns with
              | Some (cls, desc) -> Some (cls, desc, e.exp_loc)
              | None -> if s.s_from_params then first_tainted else None))
      | None ->
          (* Unknown callee: conservatively propagate any tainted
             argument into the result. *)
          first_tainted)

(* ------------------------------------------------------------------ *)
(* Summaries (pass 0)                                                 *)
(* ------------------------------------------------------------------ *)

(* Peel the curried parameters off a function body. Stops at the first
   multi-case or guarded level (a [function] match is analysed as the
   remaining body). *)
let rec peel_params e acc =
  match e.exp_desc with
  | Texp_function { cases = [ c ]; _ } -> (
      let ids, guard, rhs = tcase_parts c in
      match guard with
      | None -> peel_params rhs (List.map uname ids :: acc)
      | Some _ -> (List.rev acc, e))
  | _ -> (List.rev acc, e)

let param_position params id =
  let u = uname id in
  let rec go j = function
    | [] -> None
    | p :: rest -> if List.mem u p then Some j else go (j + 1) rest
  in
  go 0 params

let collect_mutates params body =
  let muts = ref [] in
  let note id =
    match param_position params id with
    | Some j -> if not (List.mem j !muts) then muts := j :: !muts
    | None -> ()
  in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.exp_desc with
          | Texp_setfield (obj, _, _, _) -> Option.iter note (head_id obj)
          | Texp_apply (f, args) -> (
              match resolved_name f with
              | Some n
                when n = ":=" || n = "incr" || n = "decr"
                     || List.mem n
                          [
                            "Array.set"; "Array.unsafe_set"; "Array.fill";
                            "Array.blit"; "Bytes.set"; "Bytes.unsafe_set";
                            "Bytes.fill"; "Bytes.blit";
                          ]
                     || (List.exists
                           (fun m -> List.mem m (components n))
                           l3_mutators_by_module
                        && verb_mutator n) -> (
                  match positional args with
                  | a :: _ -> Option.iter note (head_id a)
                  | [] -> ())
              | _ -> ())
          | _ -> ());
          Tast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it body;
  List.sort Int.compare !muts

let summarize ctx vb =
  match vb.vb_pat.pat_desc with
  | Tpat_var (id, _) ->
      let params, body = peel_params vb.vb_expr [] in
      let s_source_alias =
        match body.exp_desc with
        | Texp_ident (p, _, _) -> source_of (norm (Path.name p))
        | _ -> None
      in
      let run_taint preload =
        let tainted = Hashtbl.create 8 in
        List.iter (fun (u, t) -> Hashtbl.replace tainted u t) preload;
        teval ctx ~iter:None ~locals:SSet.empty tainted body
      in
      (* A justified [@lint.ordered] on the binding vouches for the
         whole body: the summary must be clean too, or every caller
         would re-report the taint the annotation discharged. *)
      let vouched =
        match ordered_of vb.vb_attributes with
        | Some (Some _, _) -> true
        | _ -> false
      in
      let s_returns =
        if vouched then None
        else Option.map (fun (c, d, _) -> (c, d)) (run_taint [])
      in
      let s_source_alias = if vouched then None else s_source_alias in
      let s_from_params =
        params <> []
        && (match s_returns with Some _ -> false | None -> true)
        &&
        let preload =
          List.concat_map
            (fun us ->
              List.map (fun u -> (u, (Env, "function parameter", vb.vb_loc))) us)
            params
        in
        Option.is_some (run_taint preload)
      in
      let s_mutates = collect_mutates params vb.vb_expr in
      Some
        ( uname id,
          { s_params = params; s_returns; s_from_params; s_mutates; s_source_alias },
          vb.vb_expr )
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Pass 1: per-expression rule checks                                 *)
(* ------------------------------------------------------------------ *)

let l1_check ctx e =
  match resolved_name e with
  | None -> ()
  | Some name -> (
      (match List.assoc_opt name l1_banned with
      | Some subst ->
          emit ctx "L1" e.exp_loc
            (Printf.sprintf "partial `%s` (use %s)" name subst)
      | None -> ());
      if l4_unsafe_name name then l4_flag ctx name e.exp_loc)

let is_raise_not_found f args =
  match resolved_name f with
  | Some ("raise" | "raise_notrace") -> (
      match positional args with
      | [ { exp_desc = Texp_construct (_, cd, []); _ } ] ->
          cd.Types.cstr_name = "Not_found"
      | _ -> false)
  | _ -> false

let comparator_at_float ctx cmp =
  let _, ty = expand ctx cmp.exp_env cmp.exp_type in
  match Types.get_desc ty with
  | Types.Tarrow (_, t1, _, _) -> is_float_ty ctx cmp.exp_env t1
  | _ -> false

let is_bare_compare cmp =
  match resolved_name cmp with Some "compare" -> true | _ -> false

let l2_check ctx f args loc =
  match resolved_name f with
  | None -> ()
  | Some name ->
      let pos = positional args in
      if
        List.mem name l2_poly_order
        && List.exists (fun a -> is_float_ty ctx a.exp_env a.exp_type) pos
      then
        emit ctx "L2" loc
          (Printf.sprintf
             "polymorphic `%s` at float type (use Float.%s: NaN poisons \
              polymorphic ordering)" name name)
      else if List.mem name l2_sort_fns then (
        match pos with
        | cmp :: _ when is_bare_compare cmp ->
            if comparator_at_float ctx cmp then
              emit ctx "L2" loc
                (Printf.sprintf
                   "`%s compare` over floats (use Float.compare: NaN poisons \
                    polymorphic ordering)" name)
            else
              emit ctx "L2" loc
                (Printf.sprintf
                   "bare `compare` passed to `%s` (spell the key out — \
                    Int.compare, Float.compare, or an explicit comparator: \
                    polymorphic compare breaks on NaN and functional values \
                    and hides the intended order)" name)
        | _ -> ())
      else if List.mem name l2_sorters then
        match pos with
        | cmp :: _ when is_bare_compare cmp && comparator_at_float ctx cmp ->
            emit ctx "L2" loc
              (Printf.sprintf
                 "`%s compare` over floats (use Float.compare: NaN poisons \
                  polymorphic ordering)" name)
        | _ -> ()

let l5_check ctx f args =
  match resolved_name f with
  | Some name when List.mem (last2 name) l5_registrars -> (
      match positional args with
      | arg :: _
        when (match arg.exp_desc with
             | Texp_constant (Asttypes.Const_string _) -> false
             | _ -> true) ->
          emit ctx "L5" arg.exp_loc
            (Printf.sprintf
               "`%s` requires a literal name: dynamic names grow the registry \
                without bound and break the jobs-determinism of counter JSON"
               (last2 name))
      | _ -> ())
  | _ -> ()

let check_expr ctx e =
  (match ordered_of e.exp_attributes with
  | Some (payload, at)
    when payload = None || String.trim (Option.value ~default:"" payload) = ""
    ->
      emit ctx "L0" at
        "bare [@lint.ordered]: write [@lint.ordered \"why this order is \
         canonical\"]"
  | _ -> ());
  match e.exp_desc with
  | Texp_ident _ -> l1_check ctx e
  | Texp_apply (f, args) ->
      if is_raise_not_found f args then
        emit ctx "L1" e.exp_loc
          "naked `raise Not_found` (raise a diagnostic exception or return an \
           option)";
      l2_check ctx f args e.exp_loc;
      l5_check ctx f args;
      if ctx.l8_active && resolved_name f = Some "exit" then l8_check ctx e args
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Whole-file entry point                                             *)
(* ------------------------------------------------------------------ *)

let collect_par_owned structure =
  let owned = ref SSet.empty in
  let tag (attrs : Parsetree.attributes) pat =
    if
      List.exists
        (fun (a : Parsetree.attribute) -> a.attr_name.txt = "par.owned")
        attrs
    then owned := add_ids (pat_bound_idents pat) !owned
  in
  let it =
    {
      Tast_iterator.default_iterator with
      value_binding =
        (fun it vb ->
          tag vb.vb_attributes vb.vb_pat;
          tag vb.vb_pat.pat_attributes vb.vb_pat;
          Tast_iterator.default_iterator.value_binding it vb);
    }
  in
  it.structure it structure;
  !owned

(* Passes 0 and 2 recurse into nested module structures the same way,
   collecting value bindings and module-level expressions. *)
let rec fold_struct_items f str =
  List.iter
    (fun si ->
      match si.str_desc with
      | Tstr_value (_, vbs) -> List.iter (fun vb -> f (`Vb vb)) vbs
      | Tstr_eval (e, attrs) -> f (`Eval (e, attrs))
      | Tstr_module mb -> fold_modexpr f mb.mb_expr
      | Tstr_recmodule mbs -> List.iter (fun mb -> fold_modexpr f mb.mb_expr) mbs
      | Tstr_include incl -> fold_modexpr f incl.incl_mod
      | _ -> ())
    str.str_items

and fold_modexpr f me =
  match me.mod_desc with
  | Tmod_structure s -> fold_struct_items f s
  | Tmod_constraint (me, _, _, _) -> fold_modexpr f me
  | Tmod_functor (_, me) -> fold_modexpr f me
  | _ -> ()

let analyze_vb ctx vb =
  with_allows ~report:false ctx vb.vb_attributes @@ fun () ->
  let _, body = peel_params vb.vb_expr [] in
  let tainted = Hashtbl.create 8 in
  match teval_vb ctx ~iter:None ~locals:SSet.empty tainted
          { vb with vb_expr = body }
  with
  | Some (Order, desc, loc) when not (is_unit_ty ctx body) ->
      let bname =
        match vb.vb_pat.pat_desc with
        | Tpat_var (id, _) -> "`" ^ Ident.name id ^ "`"
        | _ -> "this binding"
      in
      emit ctx "L6" loc
        (Printf.sprintf
           "value built in %s escapes %s — callers see table order; sort it \
            (List.sort with an explicit comparator) or annotate the \
            computation [@lint.ordered \"why the order is canonical\"]" desc
           bname)
  | _ -> ()

let run ~config ~file ~source ~resolve structure =
  let lines = Array.of_list (String.split_on_char '\n' source) in
  let ctx =
    {
      config;
      file;
      lines;
      resolve;
      l8_active =
        List.mem "L8" config.rules
        && List.exists (fun d -> path_under d file) config.bin_paths;
      quiet = false;
      allows = [];
      item_bounds = (1, Array.length lines);
      stderr_locs = [];
      par_owned = collect_par_owned structure;
      summaries = Hashtbl.create 32;
      bodies = Hashtbl.create 32;
      fp_seen = Hashtbl.create 32;
      diags = [];
      suppressed = [];
    }
  in
  (* Pass 0 (quiet): one-level call summaries. Each summary is
     computed against an empty summary table, so call-site knowledge
     is exactly one level deep. *)
  ctx.quiet <- true;
  let collected = ref [] in
  fold_struct_items
    (function
      | `Vb vb -> (
          match summarize ctx vb with
          | Some entry -> collected := entry :: !collected
          | None -> ())
      | `Eval _ -> ())
    structure;
  List.iter
    (fun (u, s, body) ->
      Hashtbl.replace ctx.summaries u s;
      Hashtbl.replace ctx.bodies u body)
    !collected;
  ctx.quiet <- false;
  (* Pass 1: attribute hygiene and the per-expression rules
     (L1/L2/L4/L5/L8). *)
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun it e ->
          with_allows ctx e.exp_attributes @@ fun () ->
          check_expr ctx e;
          Tast_iterator.default_iterator.expr it e);
      structure_item =
        (fun it si ->
          let saved_bounds = ctx.item_bounds in
          let saved_stderr = ctx.stderr_locs in
          ctx.item_bounds <-
            (si.str_loc.loc_start.pos_lnum, si.str_loc.loc_end.pos_lnum);
          if ctx.l8_active then ctx.stderr_locs <- stderr_locs_of_item si;
          Tast_iterator.default_iterator.structure_item it si;
          ctx.item_bounds <- saved_bounds;
          ctx.stderr_locs <- saved_stderr);
      value_binding =
        (fun it vb ->
          with_allows ctx vb.vb_attributes @@ fun () ->
          Tast_iterator.default_iterator.value_binding it vb);
    }
  in
  it.structure it structure;
  (* Pass 2: dataflow — L6 taint with escape/sink/merge checks, and
     the L3/L7 capture analysis at each Par fanout. *)
  if
    List.exists (fun r -> List.mem r config.rules) [ "L3"; "L6"; "L7" ]
  then
    fold_struct_items
      (function
        | `Vb vb -> analyze_vb ctx vb
        | `Eval (e, attrs) ->
            with_allows ~report:false ctx attrs (fun () ->
                ignore
                  (teval ctx ~iter:None ~locals:SSet.empty (Hashtbl.create 8) e)))
      structure;
  (List.rev ctx.diags, List.rev ctx.suppressed)
