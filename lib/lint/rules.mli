(** The ftr-specific static-analysis rules, v2: run over a file's
    {e typedtree} (DESIGN.md section 15), so every rule sees resolved
    paths and real types.

    - L1 partiality: [Option.get], [List.hd]/[tl]/[nth],
      [Hashtbl.find], [Failure]-raising [*_of_string], naked
      [raise Not_found] — on resolved paths, so local shadowing
      cannot hide them.
    - L2 float ordering: polymorphic [compare]/[min]/[max] applied at
      float type (detected from [Types.type_expr]), and bare
      [compare] handed to the sort entry points.
    - L3 Par capture-safety: closures passed to
      [Par.run]/[Par.map]/[Par.chunk] must not directly dereference
      or mutate captured mutable state; [Atomic]/[Obs]/[Domain]
      operations and [[@par.owned]] bindings are exempt.
    - L4 unsafe containment: [*.unsafe_*] and [Obj.magic] only in the
      [unsafe_ok] files under a ["(* bounds: ... *)"] proof comment;
      Bigarray unsafe accessors answer to the tighter
      [unsafe_bigarray_ok] list.
    - L5 obs-name constancy: [Obs.counter]/[gauge]/[span]/[with_span]
      require literal name arguments.
    - L6 determinism taint: iteration-order sources
      ([Hashtbl.iter]/[fold]) and environment sources ([Random.*]
      without a threaded [State.t], wall-clock, [Domain.self],
      [Gc.stat]) are tracked through let-bindings, returns and a
      one-level call summary until they reach a sink ([Sjson] values
      or functions, [Digest.*], counter increments, an ordered [Par]
      merge); order taints additionally must not escape a top-level
      binding. [[@lint.ordered "proof"]] cuts the taint and records a
      justified suppression.
    - L7 domain-race: type-detected mutable state ([ref], [Hashtbl.t],
      [Bytes.t], arrays, [Buffer]/[Queue]/[Stack], Bigarray, records
      with mutable fields — from [Types.type_expr], not names)
      captured by a Par task and mutated through a same-file helper
      call, which the old syntactic L3 could not see.
    - L8 exit-code contract: [exit] in [bin_paths] files must use a
      documented code (0 ok / 1 breach / 2 usage / 3 infra) or
      delegate to [Exit_code.to_int]/[Cmd.eval']; codes 2 and 3 must
      be preceded by a stderr diagnostic in the same handler.

    Suppression: [[@lint.allow "Lx: justification"]] on an expression
    or value binding. A missing justification is itself an error
    (rule L0). *)

type config = {
  rules : string list;  (** enabled rule ids, e.g. [["L1"; "L6"]] *)
  allow_partial : string list;
      (** L1 allowlist: path suffixes where partial ops are accepted *)
  unsafe_ok : string list;
      (** L4 containment: path suffixes where unsafe ops are legal
          under a bounds comment *)
  unsafe_bigarray_ok : string list;
      (** L4 containment for Bigarray unsafe accessors — a separate,
          tighter list than [unsafe_ok] *)
  bin_paths : string list;
      (** L8: directories whose files owe the exit-code contract *)
}

val all_rules : string list
(** ["L1"] .. ["L8"]. *)

val rules_version : string
(** Bumped whenever rule semantics change; part of the cache key, so
    a rules change invalidates every cached per-file result. *)

val default_config : config
(** All rules on; empty L1 allowlist; unsafe ops contained to
    [lib/graph/bitset.ml] and [lib/core/surviving.ml], Bigarray
    unsafe accessors to [lib/core/surviving.ml]; [bin_paths] =
    [["bin"]]. *)

val config_fingerprint : config -> string
(** Short stable hash of every config field; part of the cache key. *)

val run :
  config:config ->
  file:string ->
  source:string ->
  resolve:(Env.t -> Env.t) ->
  Typedtree.structure ->
  Diagnostic.t list * Diagnostic.suppressed list
(** Run every enabled rule over one typed file. [source] is the raw
    text (L4 proof comments, fingerprints); [resolve] reconstructs
    usable environments from summarised ones when the tree came from
    a [.cmt] (see {!Typed_load}). Returns the failing diagnostics and
    the suppressed ones, in traversal order. *)
