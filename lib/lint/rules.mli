(** The five ftr-specific static-analysis rules (DESIGN.md section 10):

    - L1 partiality: [Option.get], [List.hd]/[tl]/[nth],
      [Hashtbl.find], [Failure]-raising [*_of_string], naked
      [raise Not_found].
    - L2 float ordering: polymorphic [compare]/[min]/[max]/sorts with
      syntactic float evidence (NaN poisons polymorphic ordering).
    - L3 Par capture-safety: closures passed to
      [Par.run]/[Par.map]/[Par.chunk] must not dereference or mutate
      captured [ref]s, mutable fields, arrays, [Hashtbl.t] or
      [Buffer.t]; [Atomic]/[Obs] operations and bindings tagged
      [[@par.owned]] are exempt.
    - L4 unsafe containment: [*.unsafe_*] and [Obj.magic] only in the
      [unsafe_ok] files and only under a ["(* bounds: ... *)"] proof
      comment; Bigarray unsafe accessors (wild off-heap access when
      out of bounds) are held to the tighter [unsafe_bigarray_ok]
      list under the same comment requirement.
    - L5 obs-name constancy: [Obs.counter]/[gauge]/[span]/[with_span]
      require literal name arguments.

    Suppression: [[@lint.allow "Lx: justification"]] on an expression
    or value binding. A missing justification is itself an error
    (rule L0). *)

type config = {
  rules : string list;  (** enabled rule ids, e.g. [["L1"; "L4"]] *)
  allow_partial : string list;
      (** L1 allowlist: path suffixes where partial ops are accepted *)
  unsafe_ok : string list;
      (** L4 containment: path suffixes where unsafe ops are legal
          under a bounds comment *)
  unsafe_bigarray_ok : string list;
      (** L4 containment for Bigarray unsafe accessors — a separate,
          tighter list than [unsafe_ok]; a file cleared for
          [Array.unsafe_*] is not thereby cleared for
          [Bigarray.*.unsafe_*] *)
}

val all_rules : string list

val default_config : config
(** All rules on; empty L1 allowlist; unsafe ops contained to
    [lib/graph/bitset.ml] and [lib/core/surviving.ml], Bigarray
    unsafe accessors to [lib/core/surviving.ml] only. *)

val run :
  config:config ->
  file:string ->
  source:string ->
  Parsetree.structure ->
  Diagnostic.t list * Diagnostic.suppressed list
(** Run every enabled rule over one parsed file. [source] is the raw
    text (needed for L4's proof-comment check). Returns the failing
    diagnostics and the suppressed ones, in traversal order. *)
