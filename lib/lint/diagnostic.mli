(** Diagnostics and the [ftr-lint/1] report format.

    A diagnostic pins a rule violation to a source span; a report
    bundles the unsuppressed diagnostics (which fail the build) with
    the [@lint.allow]-suppressed ones and their justifications.
    Rendering is deterministic: diagnostics sort by
    (file, line, col, rule). *)

type t = {
  rule : string;  (** "L1".."L5"; "L0" for lint-usage errors, "P0" for parse errors *)
  file : string;
  line : int;  (** 1-based *)
  col : int;  (** 0-based, matching compiler locations *)
  end_line : int;
  end_col : int;
  message : string;
}

type suppressed = { diag : t; justification : string }

type report = {
  files_scanned : int;
  diagnostics : t list;
  suppressions : suppressed list;
}

val of_location : rule:string -> message:string -> Location.t -> t

val sort : t list -> t list

val pp_human : Format.formatter -> t -> unit
(** [file:line:col: [rule] message] — one line, editor-clickable. *)

val to_json : report -> string
(** The [ftr-lint/1] JSON document (see DESIGN.md section 10). *)
