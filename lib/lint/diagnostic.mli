(** Diagnostics and the [ftr-lint/2] report format.

    A diagnostic pins a rule violation to a source span; a report
    bundles the unsuppressed diagnostics (which fail the build) with
    the [@lint.allow]-suppressed ones and their justifications.
    Each finding carries a line-drift-stable fingerprint (hash of
    rule, file basename, flagged-line text, occurrence index), so
    baselines and caches survive edits elsewhere in the file.
    Rendering is deterministic: diagnostics sort by
    (file, line, col, rule). *)

type t = {
  rule : string;
      (** "L1".."L8"; "L0" for lint-usage errors, "P0" for parse
          errors, "T0" for typing errors *)
  file : string;
  line : int;  (** 1-based *)
  col : int;  (** 0-based, matching compiler locations *)
  end_line : int;
  end_col : int;
  fingerprint : string;  (** 12 hex chars; see {!fingerprint} *)
  message : string;
}

type suppressed = { diag : t; justification : string }

type report = {
  files_scanned : int;
  files_cached : int;
      (** how many files were served from the lint cache —
          informational, never serialized into the JSON, so cold and
          warm runs emit byte-identical reports *)
  diagnostics : t list;
  suppressions : suppressed list;
}

val fingerprint :
  rule:string -> file:string -> line_text:string -> index:int -> string
(** First 12 hex chars of the MD5 of
    [rule / basename file / trimmed line_text / occurrence index].
    Stable under line insertion/deletion elsewhere in the file and
    under directory moves. *)

val of_location :
  rule:string -> message:string -> ?fingerprint:string -> Location.t -> t

val sort : t list -> t list

val pp_human : Format.formatter -> t -> unit
(** [file:line:col: [rule] message] — one line, editor-clickable. *)

val to_json : report -> string
(** The [ftr-lint/2] JSON document (see DESIGN.md section 15). *)
