(* Per-file lint result cache.

   Keyed on (source digest, rules version, config fingerprint): a file
   whose bytes have not changed gets its previous diagnostics replayed
   without reading a typedtree, so warm CI runs pay only a digest per
   file. The rules version and config fingerprint live in the header —
   any rules or config change throws the whole cache away, which is
   the correct granularity (rule semantics are global).

   Format, one record per line, written sorted by path:

     ftr-lint-cache/2 <rules_version> <config_fingerprint>
     F <source_digest_hex> <path>
     D <rule> <line> <col> <end_line> <end_col> <fingerprint> <msg>
     S <rule> <line> <col> <end_line> <end_col> <fingerprint> <just> <msg>

   D/S lines belong to the preceding F line. Message and
   justification fields are escaped so they cannot contain spaces or
   newlines; every other field is space-free by construction. A
   malformed or version-mismatched file is treated as an empty cache,
   never an error: the cache is an accelerator, not a correctness
   dependency. *)

type entry = {
  digest : string; (* hex MD5 of the source bytes *)
  diags : Diagnostic.t list;
  suppressed : Diagnostic.suppressed list;
}

type t = (string, entry) Hashtbl.t (* path -> entry *)

let create () : t = Hashtbl.create 64

(* \xHH for space, backslash and control bytes: round-trips any
   message through the space-separated line format. *)
let encode s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      if c = ' ' || c = '\\' || Char.code c < 0x20 then
        Buffer.add_string buf (Printf.sprintf "\\x%02x" (Char.code c))
      else Buffer.add_char buf c)
    s;
  Buffer.contents buf

let decode s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    let escaped =
      if s.[!i] = '\\' && !i + 3 < n && s.[!i + 1] = 'x' then
        int_of_string_opt ("0x" ^ String.sub s (!i + 2) 2)
      else None
    in
    match escaped with
    | Some code ->
        Buffer.add_char buf (Char.chr code);
        i := !i + 4
    | None ->
        Buffer.add_char buf s.[!i];
        incr i
  done;
  Buffer.contents buf

let header ~config_fp =
  Printf.sprintf "ftr-lint-cache/2 %s %s" Rules.rules_version config_fp

(* [Exit] on malformed integers lands in the load loop's handler,
   which drops the whole cache. *)
let int_field s = match int_of_string_opt s with Some i -> i | None -> raise Exit

let diag_of_fields ~file rule line col eline ecol fp msg =
  {
    Diagnostic.rule;
    file;
    line = int_field line;
    col = int_field col;
    end_line = int_field eline;
    end_col = int_field ecol;
    fingerprint = (if fp = "-" then "" else fp);
    message = decode msg;
  }

let load ~config_fp path : t =
  let cache = create () in
  (match open_in path with
  | exception Sys_error _ -> ()
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match input_line ic with
          | exception End_of_file -> ()
          | first when first <> header ~config_fp -> ()
          | _ -> (
              let current = ref None in
              let flush () =
                match !current with
                | None -> ()
                | Some (p, digest, diags, supp) ->
                    Hashtbl.replace cache p
                      {
                        digest;
                        diags = List.rev diags;
                        suppressed = List.rev supp;
                      }
              in
              try
                while true do
                  let line = input_line ic in
                  match String.split_on_char ' ' line with
                  | [ "F"; digest; p ] ->
                      flush ();
                      current := Some (decode p, digest, [], [])
                  | [ "D"; rule; l; c; el; ec; fp; msg ] -> (
                      match !current with
                      | None -> raise Exit
                      | Some (p, digest, diags, supp) ->
                          let d =
                            diag_of_fields ~file:p rule l c el ec fp msg
                          in
                          current := Some (p, digest, d :: diags, supp))
                  | [ "S"; rule; l; c; el; ec; fp; just; msg ] -> (
                      match !current with
                      | None -> raise Exit
                      | Some (p, digest, diags, supp) ->
                          let d =
                            diag_of_fields ~file:p rule l c el ec fp msg
                          in
                          let s =
                            { Diagnostic.diag = d; justification = decode just }
                          in
                          current := Some (p, digest, diags, s :: supp))
                  | _ -> raise Exit
                done
              with
              | End_of_file -> flush ()
              | Exit | Failure _ ->
                  (* Malformed record: drop everything — a partial
                     cache could silently hide findings. *)
                  Hashtbl.reset cache)));
  cache

let find (cache : t) ~file ~digest =
  match Hashtbl.find_opt cache file with
  | Some e when e.digest = digest -> Some (e.diags, e.suppressed)
  | _ -> None

let store (cache : t) ~file ~digest diags suppressed =
  Hashtbl.replace cache file { digest; diags; suppressed }

let diag_fields (d : Diagnostic.t) =
  Printf.sprintf "%s %d %d %d %d %s %s" d.rule d.line d.col d.end_line
    d.end_col
    (if d.fingerprint = "" then "-" else d.fingerprint)
    (encode d.message)

let save (cache : t) ~config_fp path =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (header ~config_fp);
      output_char oc '\n';
      let entries =
        Hashtbl.fold (fun p e acc -> (p, e) :: acc) cache []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
        (* [@lint.ordered "sorted by path before writing"] *)
      in
      List.iter
        (fun (p, e) ->
          Printf.fprintf oc "F %s %s\n" e.digest (encode p);
          List.iter
            (fun d -> Printf.fprintf oc "D %s\n" (diag_fields d))
            e.diags;
          List.iter
            (fun (s : Diagnostic.suppressed) ->
              Printf.fprintf oc "S %s %d %d %d %d %s %s %s\n" s.diag.rule
                s.diag.line s.diag.col s.diag.end_line s.diag.end_col
                (if s.diag.fingerprint = "" then "-" else s.diag.fingerprint)
                (encode s.justification)
                (encode s.diag.message))
            e.suppressed)
        entries);
  Sys.rename tmp path
