(** Per-file lint result cache, keyed on source digest + rules
    version + config fingerprint. A version or config change discards
    the whole cache; a malformed file loads as empty (the cache is an
    accelerator, never a correctness dependency). Cold and warm runs
    produce identical reports by construction: a hit replays the
    exact diagnostics the cold run stored. *)

type t

val create : unit -> t

val load : config_fp:string -> string -> t
(** Read a cache file; empty on missing, malformed, or
    version/config mismatch. *)

val find :
  t -> file:string -> digest:string ->
  (Diagnostic.t list * Diagnostic.suppressed list) option
(** Hit only when the stored source digest matches. *)

val store :
  t -> file:string -> digest:string ->
  Diagnostic.t list -> Diagnostic.suppressed list -> unit

val save : t -> config_fp:string -> string -> unit
(** Write atomically (tmp + rename), entries sorted by path. *)
