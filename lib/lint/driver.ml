(* File discovery, parsing, and report assembly for ftr-lint. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_source ~file source =
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf file;
  match Parse.implementation lexbuf with
  | ast -> Ok ast
  | exception exn ->
      let message =
        match Location.error_of_exn exn with
        | Some (`Ok report) -> Format.asprintf "%a" Location.print_report report
        | _ -> Printexc.to_string exn
      in
      Error message

let lint_file ?(config = Rules.default_config) file =
  let source = read_file file in
  match parse_source ~file source with
  | Error message ->
      ( [
          {
            Diagnostic.rule = "P0";
            file;
            line = 1;
            col = 0;
            end_line = 1;
            end_col = 0;
            message = "parse error: " ^ String.trim message;
          };
        ],
        [] )
  | Ok structure -> Rules.run ~config ~file ~source structure

(* Recursively collect the .ml files under each path (a path may also
   name a single file). Hidden directories and _build are skipped; the
   result is sorted so reports are deterministic. *)
let collect_files paths =
  let files = ref [] in
  let rec visit path =
    if Sys.is_directory path then
      Array.iter
        (fun entry ->
          if
            entry <> ""
            && entry.[0] <> '.'
            && entry <> "_build"
            && entry <> "node_modules"
          then visit (Filename.concat path entry))
        (Sys.readdir path)
    else if Filename.check_suffix path ".ml" then files := path :: !files
  in
  List.iter visit paths;
  List.sort String.compare !files

let lint_paths ?(config = Rules.default_config) paths =
  let files = collect_files paths in
  let diagnostics, suppressions =
    List.fold_left
      (fun (ds, ss) file ->
        let d, s = lint_file ~config file in
        (ds @ d, ss @ s))
      ([], []) files
  in
  {
    Diagnostic.files_scanned = List.length files;
    diagnostics = Diagnostic.sort diagnostics;
    suppressions;
  }
