(* File discovery, typedtree loading, caching, and report assembly
   for ftr-lint v2.

   Per file: digest the source, consult the cache (a hit skips even
   the .cmt read), otherwise load a typedtree (Typed_load) and run the
   rules over it. Parse/typing failures become P0/T0 diagnostics — a
   file the lint cannot analyse fails the gate rather than silently
   passing it. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let error_diag ~rule ~file message =
  {
    Diagnostic.rule;
    file;
    line = 1;
    col = 0;
    end_line = 1;
    end_col = 0;
    fingerprint = "";
    message;
  }

let lint_source ~config ~cmt_root ~file ~source =
  match Typed_load.load ~cmt_root ~file ~source with
  | Error (Typed_load.Parse msg) ->
      ([ error_diag ~rule:"P0" ~file ("parse error: " ^ msg) ], [])
  | Error (Typed_load.Typing msg) ->
      ([ error_diag ~rule:"T0" ~file ("typing error: " ^ msg) ], [])
  | Ok loaded ->
      Rules.run ~config ~file ~source ~resolve:loaded.Typed_load.resolve
        loaded.Typed_load.structure

let lint_file ?(config = Rules.default_config) ?cmt_root file =
  let cmt_root =
    match cmt_root with Some _ as r -> r | None -> Typed_load.default_cmt_root ()
  in
  let source = read_file file in
  lint_source ~config ~cmt_root ~file ~source

let normalize_path p =
  if String.length p > 2 && String.sub p 0 2 = "./" then
    String.sub p 2 (String.length p - 2)
  else p

(* Recursively collect the .ml files under each path (a path may also
   name a single file). Hidden directories and _build are skipped; the
   result is sorted so reports are deterministic. *)
let collect_files paths =
  let files = ref [] in
  let rec visit path =
    if Sys.is_directory path then
      Array.iter
        (fun entry ->
          if
            entry <> ""
            && entry.[0] <> '.'
            && entry <> "_build"
            && entry <> "node_modules"
          then visit (Filename.concat path entry))
        (Sys.readdir path)
    else if Filename.check_suffix path ".ml" then
      files := normalize_path path :: !files
  in
  List.iter visit paths;
  List.sort String.compare !files

let lint_paths ?(config = Rules.default_config) ?cache_file ?cmt_root paths =
  let cmt_root =
    match cmt_root with Some _ as r -> r | None -> Typed_load.default_cmt_root ()
  in
  let config_fp = Rules.config_fingerprint config in
  let cache =
    match cache_file with
    | None -> Cache.create ()
    | Some path -> Cache.load ~config_fp path
  in
  let files = collect_files paths in
  let cached = ref 0 in
  let diagnostics, suppressions =
    List.fold_left
      (fun (ds, ss) file ->
        let source = read_file file in
        let digest = Digest.to_hex (Digest.string source) in
        let d, s =
          match Cache.find cache ~file ~digest with
          | Some hit ->
              incr cached;
              hit
          | None ->
              let d, s = lint_source ~config ~cmt_root ~file ~source in
              Cache.store cache ~file ~digest d s;
              (d, s)
        in
        (ds @ d, ss @ s))
      ([], []) files
  in
  (match cache_file with
  | Some path -> Cache.save cache ~config_fp path
  | None -> ());
  {
    Diagnostic.files_scanned = List.length files;
    files_cached = !cached;
    diagnostics = Diagnostic.sort diagnostics;
    suppressions;
  }
