(* Typedtree acquisition for ftr-lint.

   The v2 lint runs on *typedtrees*, not parsetrees, so every rule
   sees resolved paths ([Stdlib.List.hd], not whatever `List.hd`
   happens to spell under local shadowing) and real types. Two ways to
   get a tree:

   - [.cmt] files: dune compiles everything with [-bin-annot], so the
     build tree already holds a typedtree for every compiled unit.
     They are indexed by module basename and verified against
     [cmt_sourcefile] and [cmt_source_digest], so a stale tree is
     detected, never silently linted.
   - in-process typechecking: files outside the build graph (the lint
     test fixtures) are parsed and typed against a stdlib-only
     environment. Such files must be self-contained — fixtures stub
     the repo modules (Par, Obs, Sjson) they exercise.

   Environments stored in .cmt files are summarised; rules that need
   [Env.t] lookups (L2's float test, L7's mutable-record test) go
   through [resolve], which is [Envaux.env_of_only_summary] for cmt
   trees and the identity for freshly typed ones. *)

type loaded = {
  structure : Typedtree.structure;
  resolve : Env.t -> Env.t;
  from_cmt : bool;
}

type error =
  | Parse of string
  | Typing of string

(* ------------------------------------------------------------------ *)
(* Compiler initialisation                                            *)
(* ------------------------------------------------------------------ *)

let initialised_for : string option option ref = ref None

let cmi_dirs root =
  let dirs = ref [] in
  let rec visit d =
    match Sys.readdir d with
    | entries ->
        Array.iter
          (fun e ->
            let p = Filename.concat d e in
            if e <> ".git" && (try Sys.is_directory p with Sys_error _ -> false)
            then visit p
            else if Filename.check_suffix e ".cmi" && not (List.mem d !dirs)
            then dirs := d :: !dirs)
          entries
    | exception Sys_error _ -> ()
  in
  visit root;
  (* Deterministic load path: lookups must not depend on readdir order. *)
  List.sort String.compare !dirs

let ensure_init cmt_root =
  if !initialised_for <> Some cmt_root then begin
    initialised_for := Some cmt_root;
    (* The lint reports its own diagnostics; compiler warnings about
       fixture code (unused values, unknown attributes) are noise. *)
    ignore (Warnings.parse_options false "-a");
    Warnings.parse_alert_option "-all";
    Clflags.include_dirs :=
      (match cmt_root with None -> [] | Some root -> cmi_dirs root);
    Compmisc.init_path ();
    Envaux.reset_cache ()
  end

(* ------------------------------------------------------------------ *)
(* cmt index                                                          *)
(* ------------------------------------------------------------------ *)

(* Map a module's lowercased basename ("fault_model") to the .cmt
   candidates that could hold its tree ("ftr_core__Fault_model.cmt").
   Candidates are only read on lookup, and the winner is confirmed by
   [cmt_sourcefile], so same-named modules in different libraries
   (lib/analysis/experiments.ml vs bin/experiments.ml) cannot be
   confused. *)
let cmt_index : (string, string list) Hashtbl.t = Hashtbl.create 64
let cmt_index_root : string option ref = ref None
let cmt_cache : (string, Cmt_format.cmt_infos option) Hashtbl.t = Hashtbl.create 64

let module_key cmt_basename =
  let stem = Filename.remove_extension cmt_basename in
  let n = String.length stem in
  (* Strip the dune prefix mangling ("ftr_core__Fault_model" ->
     "Fault_model"): everything up to the LAST "__". A single '_' is
     an ordinary module-name character and must survive. *)
  let cut = ref 0 in
  for i = 0 to n - 2 do
    if stem.[i] = '_' && stem.[i + 1] = '_' then cut := i + 2
  done;
  let stem = if !cut < n then String.sub stem !cut (n - !cut) else stem in
  String.lowercase_ascii stem

let build_index root =
  if !cmt_index_root <> Some root then begin
    cmt_index_root := Some root;
    Hashtbl.reset cmt_index;
    Hashtbl.reset cmt_cache;
    let rec visit d =
      match Sys.readdir d with
      | entries ->
          Array.iter
            (fun e ->
              let p = Filename.concat d e in
              if e <> ".git" && (try Sys.is_directory p with Sys_error _ -> false)
              then visit p
              else if Filename.check_suffix e ".cmt" then begin
                let key = module_key e in
                let prev = Option.value ~default:[] (Hashtbl.find_opt cmt_index key) in
                Hashtbl.replace cmt_index key (p :: prev)
              end)
            entries
      | exception Sys_error _ -> ()
    in
    visit root;
    (* Candidate order must be deterministic too. *)
    Hashtbl.iter
      (fun _ _ -> ())
      cmt_index;
    Hashtbl.filter_map_inplace
      (fun _ paths -> Some (List.sort String.compare paths))
      cmt_index
  end

let read_cmt path =
  match Hashtbl.find_opt cmt_cache path with
  | Some r -> r
  | None ->
      let r = try Some (Cmt_format.read_cmt path) with _ -> None in
      Hashtbl.add cmt_cache path r;
      r

let normalize_path p =
  if String.length p > 2 && String.sub p 0 2 = "./" then
    String.sub p 2 (String.length p - 2)
  else p

(* [cmt_sourcefile] is the path the compiler was given, relative to
   the build-context root; the lint is run from the same root (or from
   inside it, under the dune @lint alias), so an exact match after
   "./"-stripping is the common case and a component-suffix match
   covers the rest. *)
let source_matches ~file ~cmt_source =
  let file = normalize_path file and cmt_source = normalize_path cmt_source in
  file = cmt_source
  || Filename.basename file = Filename.basename cmt_source
     && (String.ends_with ~suffix:("/" ^ file) cmt_source
        || String.ends_with ~suffix:("/" ^ cmt_source) file)

type cmt_lookup =
  | Found of Cmt_format.cmt_infos
  | Stale of string (* cmt path whose source digest no longer matches *)
  | Absent

let find_cmt ~root ~file ~source =
  build_index root;
  let key = String.lowercase_ascii (Filename.remove_extension (Filename.basename file)) in
  let candidates = Option.value ~default:[] (Hashtbl.find_opt cmt_index key) in
  let stale = ref None in
  let found =
    List.find_map
      (fun path ->
        match read_cmt path with
        | None -> None
        | Some infos -> (
            match infos.Cmt_format.cmt_sourcefile with
            | Some src when source_matches ~file ~cmt_source:src -> (
                match infos.Cmt_format.cmt_annots with
                | Cmt_format.Implementation _ ->
                    if infos.Cmt_format.cmt_source_digest = Some (Digest.string source)
                    then Some infos
                    else begin
                      stale := Some path;
                      None
                    end
                | _ -> None)
            | _ -> None))
      candidates
  in
  match (found, !stale) with
  | Some infos, _ -> Found infos
  | None, Some path -> Stale path
  | None, None -> Absent

(* ------------------------------------------------------------------ *)
(* In-process typechecking                                            *)
(* ------------------------------------------------------------------ *)

let error_message exn =
  match Location.error_of_exn exn with
  | Some (`Ok report) ->
      String.trim (Format.asprintf "%a" Location.print_report report)
  | _ -> Printexc.to_string exn

let typecheck ~file ~source =
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf file;
  match Parse.implementation lexbuf with
  | exception exn -> Error (Parse (error_message exn))
  | ast -> (
      let env = Compmisc.initial_env () in
      match Typemod.type_structure env ast with
      | structure, _, _, _, _ -> Ok { structure; resolve = Fun.id; from_cmt = false }
      | exception exn -> Error (Typing (error_message exn)))

(* ------------------------------------------------------------------ *)
(* Entry points                                                       *)
(* ------------------------------------------------------------------ *)

let default_cmt_root () =
  if Sys.file_exists "_build/default" && Sys.is_directory "_build/default" then
    Some "_build/default"
  else if Sys.file_exists "_build" then Some "_build"
  else None

let resolve_summary env = try Envaux.env_of_only_summary env with _ -> env

let load ~cmt_root ~file ~source =
  ensure_init cmt_root;
  let from_cmt =
    match cmt_root with
    | None -> Absent
    | Some root -> find_cmt ~root ~file ~source
  in
  match from_cmt with
  | Found infos -> (
      match infos.Cmt_format.cmt_annots with
      | Cmt_format.Implementation structure ->
          Ok { structure; resolve = resolve_summary; from_cmt = true }
      | _ -> typecheck ~file ~source)
  | Stale path ->
      (* A stale tree must never be linted: line numbers and even the
         semantics could belong to an older revision. Fall back to
         typechecking (fails for files with repo-module dependencies,
         which is the right failure: rebuild first). *)
      (match typecheck ~file ~source with
      | Ok _ as ok -> ok
      | Error (Typing msg) ->
          Error
            (Typing
               (Printf.sprintf
                  "stale typedtree %s (run `dune build` to refresh it); \
                   standalone typecheck also failed: %s"
                  path msg))
      | Error _ as e -> e)
  | Absent -> typecheck ~file ~source
