(** Typedtree acquisition: prefer the [.cmt] files dune already wrote
    (verified against the source digest, so stale trees are refused),
    fall back to in-process typechecking for files outside the build
    graph (lint test fixtures, which must be self-contained). *)

type loaded = {
  structure : Typedtree.structure;
  resolve : Env.t -> Env.t;
      (** reconstructs usable environments from the summarised ones
          stored in [.cmt] files; the identity for freshly typed
          trees *)
  from_cmt : bool;
}

type error =
  | Parse of string
  | Typing of string

val default_cmt_root : unit -> string option
(** ["_build/default"] when it exists (the usual dune layout), else
    ["_build"], else [None]. *)

val load :
  cmt_root:string option -> file:string -> source:string ->
  (loaded, error) result
(** Find [file]'s typedtree under [cmt_root] (matched by
    [cmt_sourcefile] and confirmed by [cmt_source_digest]); when no
    current tree exists, parse and typecheck [source] against a
    stdlib-only environment. *)
