(** Documented process exit codes shared by [ftr serve --slo] and
    [ftr soak], so CI can distinguish "the routing broke its promise"
    from "you invoked the tool wrong" from "the environment is
    broken".

    - [Clean] (0): every check passed.
    - [Breach] (1): an SLO or correctness promise was violated — a
      dropped in-budget query, a latency percentile over threshold, a
      dead-letter within budget, a journal replay divergence.
    - [Usage] (2): the invocation itself is invalid (bad flag values,
      negative durations). Matches the cmdliner convention of
      reserving small codes for caller error.
    - [Infra] (3): the inputs or environment are broken — unreadable
      or unparseable corpus, construction build failure, socket setup
      failure. Distinct from [Breach] so a corrupted artifact doesn't
      masquerade as a routing regression. *)

type t = Clean | Breach | Usage | Infra

val to_int : t -> int

val describe : t -> string
(** Short human label, e.g. ["slo-breach"]. *)

val worst : t -> t -> t
(** Combine two outcomes, keeping the more severe diagnosis.
    Severity order: [Infra] > [Usage] > [Breach] > [Clean] (an infra
    failure means breach verdicts are unreliable, so it wins). *)
