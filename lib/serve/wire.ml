type fault_action =
  | Fail_node of int
  | Recover_node of int
  | Fail_link of int * int
  | Recover_link of int * int
  | Degrade_link of int * int * float
  | Restore_link of int * int

type request =
  | Route of { src : int; dst : int }
  | Diameter
  | Fault of fault_action
  | Health
  | Ready
  | Stats
  | Drain

let fault_of_json json =
  let action = Option.bind (Sjson.member "action" json) Sjson.to_str in
  let node = Option.bind (Sjson.member "node" json) Sjson.to_int in
  let link = Option.bind (Sjson.member "link" json) Sjson.int_pair in
  let factor = Option.bind (Sjson.member "factor" json) Sjson.to_float in
  match (action, node, link) with
  | Some "fail", Some v, None -> Ok (Fail_node v)
  | Some "recover", Some v, None -> Ok (Recover_node v)
  | Some "fail", None, Some (u, v) -> Ok (Fail_link (u, v))
  | Some "recover", None, Some (u, v) -> Ok (Recover_link (u, v))
  | Some "degrade", None, Some (u, v) -> (
      match factor with
      | Some f when Float.is_finite f && f >= 1.0 -> Ok (Degrade_link (u, v, f))
      | Some _ -> Error "fault: \"factor\" must be finite and >= 1"
      | None -> Error "fault: degrade needs a \"factor\"")
  | Some "restore", None, Some (u, v) -> Ok (Restore_link (u, v))
  | (Some "degrade" | Some "restore"), Some _, _ ->
      Error "fault: degrade/restore act on a \"link\", not a \"node\""
  | (Some "degrade" | Some "restore"), None, None ->
      Error "fault: missing \"link\""
  | (Some "fail" | Some "recover"), Some _, Some _ ->
      Error "fault: give either \"node\" or \"link\", not both"
  | (Some "fail" | Some "recover"), None, None ->
      Error "fault: missing \"node\" or \"link\""
  | Some other, _, _ -> Error (Printf.sprintf "fault: unknown action %S" other)
  | None, _, _ -> Error "fault: missing \"action\""

let request_of_line line =
  match Sjson.parse line with
  | Error msg -> Error ("bad json: " ^ msg)
  | Ok json -> (
      match Option.bind (Sjson.member "op" json) Sjson.to_str with
      | None -> Error "missing \"op\""
      | Some "route" -> (
          let src = Option.bind (Sjson.member "src" json) Sjson.to_int in
          let dst = Option.bind (Sjson.member "dst" json) Sjson.to_int in
          match (src, dst) with
          | Some src, Some dst -> Ok (Route { src; dst })
          | _ -> Error "route: missing \"src\" or \"dst\"")
      | Some "diameter" -> Ok Diameter
      | Some "fault" -> (
          match fault_of_json json with
          | Ok a -> Ok (Fault a)
          | Error _ as e -> e)
      | Some "health" -> Ok Health
      | Some "ready" -> Ok Ready
      | Some "stats" -> Ok Stats
      | Some "drain" -> Ok Drain
      | Some other -> Error (Printf.sprintf "unknown op %S" other))

let request_to_line req =
  let open Sjson in
  let json =
    match req with
    | Route { src; dst } ->
        Obj [ ("op", Str "route"); ("src", Int src); ("dst", Int dst) ]
    | Diameter -> Obj [ ("op", Str "diameter") ]
    | Fault a ->
        let fields =
          match a with
          | Fail_node v -> [ ("action", Str "fail"); ("node", Int v) ]
          | Recover_node v -> [ ("action", Str "recover"); ("node", Int v) ]
          | Fail_link (u, v) ->
              [ ("action", Str "fail"); ("link", Arr [ Int u; Int v ]) ]
          | Recover_link (u, v) ->
              [ ("action", Str "recover"); ("link", Arr [ Int u; Int v ]) ]
          | Degrade_link (u, v, f) ->
              [
                ("action", Str "degrade");
                ("link", Arr [ Int u; Int v ]);
                ("factor", Float f);
              ]
          | Restore_link (u, v) ->
              [ ("action", Str "restore"); ("link", Arr [ Int u; Int v ]) ]
        in
        Obj (("op", Str "fault") :: fields)
    | Health -> Obj [ ("op", Str "health") ]
    | Ready -> Obj [ ("op", Str "ready") ]
    | Stats -> Obj [ ("op", Str "stats") ]
    | Drain -> Obj [ ("op", Str "drain") ]
  in
  to_string json

let error_line msg =
  Sjson.(to_string (Obj [ ("ok", Bool false); ("error", Str msg) ]))
