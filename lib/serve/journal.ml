let header = "ftr-journal/1"

type t = { path : string; oc : out_channel }

let line_of_event = function
  | Wire.Fail_node v -> Printf.sprintf "fail-node %d" v
  | Wire.Recover_node v -> Printf.sprintf "recover-node %d" v
  | Wire.Fail_link (u, v) -> Printf.sprintf "fail-link %d %d" u v
  | Wire.Recover_link (u, v) -> Printf.sprintf "recover-link %d %d" u v
  | Wire.Degrade_link (u, v, f) ->
      (* %.17g: every finite double round-trips exactly, so replay
         reconstructs the identical degradation factor. *)
      Printf.sprintf "degrade-link %d %d %.17g" u v f
  | Wire.Restore_link (u, v) -> Printf.sprintf "restore-link %d %d" u v

let event_of_line line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "fail-node"; v ] ->
      Option.map (fun v -> Wire.Fail_node v) (int_of_string_opt v)
  | [ "recover-node"; v ] ->
      Option.map (fun v -> Wire.Recover_node v) (int_of_string_opt v)
  | [ "fail-link"; u; v ] -> (
      match (int_of_string_opt u, int_of_string_opt v) with
      | Some u, Some v -> Some (Wire.Fail_link (u, v))
      | _ -> None)
  | [ "recover-link"; u; v ] -> (
      match (int_of_string_opt u, int_of_string_opt v) with
      | Some u, Some v -> Some (Wire.Recover_link (u, v))
      | _ -> None)
  | [ "degrade-link"; u; v; f ] -> (
      match (int_of_string_opt u, int_of_string_opt v, float_of_string_opt f) with
      | Some u, Some v, Some f when Float.is_finite f && f >= 1.0 ->
          Some (Wire.Degrade_link (u, v, f))
      | _ -> None)
  | [ "restore-link"; u; v ] -> (
      match (int_of_string_opt u, int_of_string_opt v) with
      | Some u, Some v -> Some (Wire.Restore_link (u, v))
      | _ -> None)
  | _ -> None

let create path =
  match
    let size = try (Unix.stat path).Unix.st_size with Unix.Unix_error _ -> 0 in
    if size > 0 then begin
      (* Existing journal: verify the header before appending to it. *)
      let ic = open_in path in
      let first = try input_line ic with End_of_file -> "" in
      close_in ic;
      if first <> header then
        Error
          (Printf.sprintf "%s: not a fault journal (expected %S, got %S)" path
             header first)
      else
        Ok
          (open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path)
    end
    else begin
      let oc = open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path in
      output_string oc (header ^ "\n");
      flush oc;
      Ok oc
    end
  with
  | Ok oc -> Ok { path; oc }
  | Error _ as e -> e
  | exception Sys_error msg -> Error msg

let append t event =
  output_string t.oc (line_of_event event);
  output_char t.oc '\n';
  flush t.oc;
  (* fsync: the delta must survive a crash of the whole host process
     before the engine acts on it, or replay would under-shoot. *)
  try Unix.fsync (Unix.descr_of_out_channel t.oc) with Unix.Unix_error _ -> ()

let path t = t.path
let close t = try close_out t.oc with Sys_error _ -> ()

let load path =
  if not (Sys.file_exists path) then Ok []
  else
    match
      let ic = open_in path in
      let first = try Some (input_line ic) with End_of_file -> None in
      match first with
      | None ->
          close_in ic;
          Ok []
      | Some h when h <> header ->
          close_in ic;
          Error (Printf.sprintf "%s: bad journal header %S" path h)
      | Some _ ->
          let rec loop lineno acc =
            match input_line ic with
            | exception End_of_file ->
                close_in ic;
                Ok (List.rev acc)
            | "" -> loop (lineno + 1) acc
            | line -> (
                match event_of_line line with
                | Some e -> loop (lineno + 1) (e :: acc)
                | None ->
                    close_in ic;
                    Error
                      (Printf.sprintf "%s:%d: bad journal line %S" path lineno
                         line))
          in
          loop 2 []
    with
    | r -> r
    | exception Sys_error msg -> Error msg
