open Ftr_graph
open Ftr_core
open Ftr_obs

type t = {
  routing : Routing.t;
  graph : Graph.t;
  compiled : Surviving.compiled;
  ev : Surviving.evaluator;
  fm : Fault_model.t;
}

let c_deltas = Obs.counter "serve.engine.deltas_applied"
let c_noops = Obs.counter "serve.engine.deltas_noop"
let c_detours = Obs.counter "serve.engine.detours"
let c_replayed = Obs.counter "serve.journal.replayed"

let create routing =
  let graph = Routing.graph routing in
  let compiled = Surviving.compile routing in
  {
    routing;
    graph;
    compiled;
    ev = Surviving.evaluator compiled;
    fm = Fault_model.create graph;
  }

let routing t = t.routing
let n t = Graph.n t.graph

let check_node t v =
  if v < 0 || v >= Graph.n t.graph then
    Error (Printf.sprintf "node %d out of range [0,%d)" v (Graph.n t.graph))
  else Ok ()

let check_link t u v =
  if u < 0 || u >= Graph.n t.graph || v < 0 || v >= Graph.n t.graph then
    Error (Printf.sprintf "link %d-%d out of range" u v)
  else
    match Surviving.edge_id t.compiled u v with
    | Some id -> Ok id
    | None -> Error (Printf.sprintf "no link %d-%d in the graph" u v)

let validate t = function
  | Wire.Fail_node v | Wire.Recover_node v -> check_node t v
  | Wire.Fail_link (u, v) | Wire.Recover_link (u, v) | Wire.Restore_link (u, v) ->
      Result.map (fun _ -> ()) (check_link t u v)
  | Wire.Degrade_link (u, v, f) ->
      if not (Float.is_finite f) || f < 1.0 then
        Error (Printf.sprintf "degrade %d-%d: factor must be finite and >= 1" u v)
      else Result.map (fun _ -> ()) (check_link t u v)

let apply t action =
  match action with
  | Wire.Fail_node v -> (
      match check_node t v with
      | Error _ as e -> e
      | Ok () ->
          if Surviving.is_faulty t.ev v then begin
            Obs.incr c_noops;
            Ok false
          end
          else begin
            Surviving.apply_fault t.ev v;
            Fault_model.fail_node t.fm v;
            Obs.incr c_deltas;
            Ok true
          end)
  | Wire.Recover_node v -> (
      match check_node t v with
      | Error _ as e -> e
      | Ok () ->
          if not (Surviving.is_faulty t.ev v) then begin
            Obs.incr c_noops;
            Ok false
          end
          else begin
            Surviving.revert_fault t.ev v;
            Fault_model.recover_node t.fm v;
            Obs.incr c_deltas;
            Ok true
          end)
  | Wire.Fail_link (u, v) -> (
      match check_link t u v with
      | Error msg -> Error msg
      | Ok id ->
          if Surviving.is_edge_faulty t.ev id then begin
            Obs.incr c_noops;
            Ok false
          end
          else begin
            Surviving.apply_edge_fault t.ev id;
            Fault_model.fail_edge t.fm u v;
            Obs.incr c_deltas;
            Ok true
          end)
  | Wire.Recover_link (u, v) -> (
      match check_link t u v with
      | Error msg -> Error msg
      | Ok id ->
          if not (Surviving.is_edge_faulty t.ev id) then begin
            Obs.incr c_noops;
            Ok false
          end
          else begin
            Surviving.revert_edge_fault t.ev id;
            Fault_model.recover_edge t.fm u v;
            Obs.incr c_deltas;
            Ok true
          end)
  (* Gray failures touch only the fault model's latency bookkeeping:
     the evaluator's bit matrix never changes, so routing verdicts
     are identical before and after by construction. *)
  | Wire.Degrade_link (u, v, f) -> (
      match validate t action with
      | Error msg -> Error msg
      | Ok () ->
          if Fault_model.edge_degradation t.fm u v = f then begin
            Obs.incr c_noops;
            Ok false
          end
          else begin
            Fault_model.degrade_edge t.fm u v ~factor:f;
            Obs.incr c_deltas;
            Ok true
          end)
  | Wire.Restore_link (u, v) -> (
      match check_link t u v with
      | Error msg -> Error msg
      | Ok _ ->
          if Fault_model.edge_degradation t.fm u v = 1.0 then begin
            Obs.incr c_noops;
            Ok false
          end
          else begin
            Fault_model.restore_edge t.fm u v;
            Obs.incr c_deltas;
            Ok true
          end)

let replay t events =
  List.fold_left
    (fun acc e ->
      match acc with
      | Error _ as err -> err
      | Ok applied -> (
          match apply t e with
          | Ok true ->
              Obs.incr c_replayed;
              Ok (applied + 1)
          | Ok false -> Ok applied
          | Error _ as err -> err))
    (Ok 0) events

let digest t = Fault_model.digest t.fm
let node_faults t = Surviving.faults t.ev
let link_faults t = Fault_model.edge_faults t.fm
let degraded_links t = Fault_model.degraded_edges t.fm

type reply =
  | Routed of { waypoints : int list; routes : int; hops : int; degraded : bool }
  | Detour of { path : int list; hops : int }
  | Unreachable

(* Graph edges traversed by a route sequence: the arcs of the
   surviving route graph are exactly the defined routes, so [find]
   succeeds for every consecutive pair; a miss would mean the compiled
   table and the routing disagree, and contributes zero rather than
   crashing the daemon. *)
let hops_of t waypoints =
  let rec go acc = function
    | a :: (b :: _ as rest) ->
        let step =
          match Routing.find t.routing a b with
          | Some p -> Path.length p
          | None -> 0
        in
        go (acc + step) rest
    | _ -> acc
  in
  go 0 waypoints

(* Best-effort source route on the underlying graph minus faults —
   the degraded mode: the fixed routing no longer connects the pair,
   but the network itself still might. *)
let detour t ~src ~dst =
  let n = Graph.n t.graph in
  let parent = Array.make n (-1) in
  parent.(src) <- src;
  let q = Queue.create () in
  Queue.add src q;
  let found = ref false in
  while (not !found) && not (Queue.is_empty q) do
    let u = Queue.pop q in
    Array.iter
      (fun v ->
        if
          (not !found)
          && parent.(v) < 0
          && (not (Surviving.is_faulty t.ev v))
          && not (Fault_model.edge_failed t.fm u v)
        then begin
          parent.(v) <- u;
          if v = dst then found := true else Queue.add v q
        end)
      (Graph.neighbors t.graph u)
  done;
  if not !found then None
  else begin
    let rec walk v acc = if v = src then v :: acc else walk parent.(v) (v :: acc) in
    Some (walk dst [])
  end

let route ?bound t ~src ~dst =
  let n = Graph.n t.graph in
  if src < 0 || src >= n then Error (Printf.sprintf "src %d out of range" src)
  else if dst < 0 || dst >= n then
    Error (Printf.sprintf "dst %d out of range" dst)
  else if Surviving.is_faulty t.ev src then
    Error (Printf.sprintf "src %d is down" src)
  else if Surviving.is_faulty t.ev dst then
    Error (Printf.sprintf "dst %d is down" dst)
  else
    match Surviving.evaluator_route t.ev ~src ~dst with
    | Some waypoints ->
        let routes = List.length waypoints - 1 in
        let degraded =
          match bound with Some b -> routes > b | None -> false
        in
        Ok (Routed { waypoints; routes; hops = hops_of t waypoints; degraded })
    | None -> (
        match detour t ~src ~dst with
        | Some path ->
            Obs.incr c_detours;
            Ok (Detour { path; hops = List.length path - 1 })
        | None -> Ok Unreachable)

let diameter t = Surviving.evaluator_diameter t.ev
