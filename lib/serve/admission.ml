open Ftr_obs

type config = { max_queue : int; deadline : float }
type 'a item = { payload : 'a; enqueued_at : float }
type 'a t = { cfg : config; q : 'a item Queue.t }

let c_admitted = Obs.counter "serve.admission.admitted"
let c_shed_queue = Obs.counter "serve.admission.shed_queue"
let c_shed_deadline = Obs.counter "serve.admission.shed_deadline"

let create cfg =
  if cfg.max_queue <= 0 then invalid_arg "Admission.create: max_queue <= 0";
  { cfg; q = Queue.create () }

let config t = t.cfg
let length t = Queue.length t.q

let offer t ~now payload =
  if Queue.length t.q >= t.cfg.max_queue then begin
    Obs.incr c_shed_queue;
    false
  end
  else begin
    Obs.incr c_admitted;
    Queue.add { payload; enqueued_at = now } t.q;
    true
  end

let take t ~now =
  match Queue.take_opt t.q with
  | None -> None
  | Some { payload; enqueued_at } ->
      if t.cfg.deadline > 0.0 && now -. enqueued_at > t.cfg.deadline then begin
        Obs.incr c_shed_deadline;
        Some (`Expired payload)
      end
      else Some (`Serve payload)
