(** The serve daemon: request handling, admission, journaling, and
    the Unix-domain-socket event loop.

    The request core ({!create} / {!submit} / {!pump}) is pure of
    socket concerns, so the SLO soak harness ({!module:Soak}) drives
    the very same admission, journaling and degraded-mode paths
    in-process with a virtual clock; only {!run} touches file
    descriptors. *)

type config = {
  max_queue : int;  (** admission queue budget (see {!Admission}) *)
  deadline : float;  (** per-request wait deadline, seconds; [<= 0.] none *)
  bound : int option;
      (** proven [(d, f)] diameter bound; surviving routes beyond it
          are answered but flagged ["degraded": true] *)
}

type t

val create :
  ?clock:(unit -> float) -> ?journal:Journal.t -> config -> Engine.t -> t
(** [clock] feeds the admission queue only (the daemon passes wall
    time; the soak passes a virtual clock so its counters are
    schedule-independent). Service latencies are always measured on
    the real clock. *)

val engine : t -> Engine.t

val set_engine : t -> Engine.t -> unit
(** Swap in a replacement engine (the soak's kill/restart check
    rebuilds one from the journal and carries on). *)

val bound : t -> int option

val set_bound : t -> int option -> unit
(** Change the proven bound in force. The daemon sets it once from
    the construction's claims; the soak moves it per churn wave to
    the tightest claim covering that wave's fault count
    ({!Ftr_core.Construction.bound_for}). *)

val draining : t -> bool

val request_drain : t -> unit
(** Same effect as a [drain] request or SIGTERM. *)

val queries : t -> int
val degraded : t -> int
val shed : t -> int
val unreachable : t -> int

val handle : t -> Wire.request -> Sjson.t
(** Execute one request immediately, bypassing admission. Route and
    diameter replies carry a ["service_ms"] field measured on the
    real clock; fault deltas are journaled (write-ahead) before they
    are applied. *)

val submit : t -> Wire.request -> (string -> unit) -> unit
(** Admission-controlled entry: probes ([health]/[ready]) and
    [drain] are answered immediately (a load-shedding daemon must
    still answer its liveness checks); everything else passes through
    the admission queue and may be shed, with an explicit
    [{"ok":false,...,"shed":true}] response rather than silence.
    New work is refused (["draining"]) once a drain has started.
    The callback receives each response line (no trailing
    newline). *)

val pump : t -> unit
(** Serve everything currently admitted, expiring requests that
    out-waited their deadline. The daemon calls this after every
    select round; the soak calls it after every synthetic arrival. *)

val stats_json : t -> Sjson.t
(** The [stats] reply: query/degraded/shed counts, fault digest, and
    p50/p99/p999 service latency over the recent-request window. *)

val run : t -> socket:string -> (unit, string) result
(** Bind the socket and serve until drained: accept clients, parse
    newline-delimited requests, admit, serve, respond. SIGTERM and
    SIGINT (and the [drain] op) trigger drain-then-exit: stop
    accepting, answer everything already queued, flush, close, unlink
    the socket. [Error] only for environment failures (bind/listen);
    per-client I/O errors just drop that client. *)
