open Ftr_graph
open Ftr_core
open Ftr_sim
open Ftr_obs

type config = {
  queries : int;
  burst : int;
  max_queue : int;
  deadline_ticks : float;
  gray_factor : float;
  radius : int;
  zipf_s : float;
  slo_p99_ms : float;
  min_delivery : float;
  seed : int;
  jobs : int option;
  certify : bool;
  journal_dir : string;
}

type phase = {
  name : string;
  requests : int;
  delivered : int;
  degraded : int;
  unreachable : int;
  shed : int;
  digest : string;  (** engine fault digest at the end of the phase *)
}

type outcome = {
  phases : phase list;
  total_requests : int;
  delivered : int;
  shed : int;
  delivery_rate : float;
  virtual_ticks : int;
  journal_digest_ok : bool;
  digest_converged : bool;
  certified : (int * int) option;
  slo_breached : bool;
  p50_ms : float option;
  p99_ms : float option;
  violations : string list;
  infra : string option;
  exit : Exit_code.t;
}

let c_phases = Obs.counter "serve.chaos.phases"
let c_requests = Obs.counter "serve.chaos.requests"
let c_violations = Obs.counter "serve.chaos.violations"

let max_recorded_violations = 8

(* Wall-clock latencies stay out of the artifact (they are not a
   function of the requested work); they feed the stdout summary and
   the SLO gate only. *)
type tally = {
  mutable lats : float list;
  mutable violations : string list;  (* newest first *)
  mutable violation_count : int;
}

let violate tally msg =
  Obs.incr c_violations;
  tally.violation_count <- tally.violation_count + 1;
  if tally.violation_count <= max_recorded_violations then
    tally.violations <- msg :: tally.violations

let recorded_violations tally =
  let extra = tally.violation_count - max_recorded_violations in
  let shown = List.rev tally.violations in
  if extra > 0 then shown @ [ Printf.sprintf "(+%d more)" extra ] else shown

let bool_field name json =
  Option.value ~default:false (Option.bind (Sjson.member name json) Sjson.to_bool)

let float_field name json = Option.bind (Sjson.member name json) Sjson.to_float
let str_field name json = Option.bind (Sjson.member name json) Sjson.to_str

(* One response, classified. [`Shed] covers both admission sheds
   (queue full, deadline expired) and the draining refusal. *)
let classify line =
  match Sjson.parse line with
  | Error msg -> `Broken (Printf.sprintf "unparseable response: %s" msg)
  | Ok json ->
      if bool_field "shed" json then `Shed
      else if bool_field "ok" json then
        if bool_field "degraded" json then `Degraded else `Delivered
      else if str_field "error" json = Some "unreachable" then `Unreachable
      else
        `Broken
          (Printf.sprintf "error: %s"
             (Option.value ~default:"?" (str_field "error" json)))

type phase_tally = {
  mutable p_requests : int;
  mutable p_delivered : int;
  mutable p_degraded : int;
  mutable p_unreachable : int;
  mutable p_shed : int;
}

let new_phase_tally () =
  { p_requests = 0; p_delivered = 0; p_degraded = 0; p_unreachable = 0; p_shed = 0 }

let account tally pt ~context line =
  pt.p_requests <- pt.p_requests + 1;
  Obs.incr c_requests;
  (match Option.bind (Sjson.parse line |> Result.to_option) (float_field "service_ms")
   with
  | Some ms -> tally.lats <- ms :: tally.lats
  | None -> ());
  match classify line with
  | `Delivered -> pt.p_delivered <- pt.p_delivered + 1
  | `Degraded ->
      pt.p_delivered <- pt.p_delivered + 1;
      pt.p_degraded <- pt.p_degraded + 1
  | `Unreachable -> pt.p_unreachable <- pt.p_unreachable + 1
  | `Shed -> pt.p_shed <- pt.p_shed + 1
  | `Broken msg -> violate tally (Printf.sprintf "%s: %s" context msg)

(* Submit one request and pump immediately: the steady-state drive.
   The virtual clock ticks once per submission. *)
let roundtrip srv vclock req =
  vclock := !vclock +. 1.0;
  let resp = ref None in
  Server.submit srv req (fun s -> resp := Some s);
  Server.pump srv;
  !resp

let run_pairs srv vclock tally pt ~context pairs =
  List.iter
    (fun (src, dst) ->
      match roundtrip srv vclock (Wire.Route { src; dst }) with
      | None -> violate tally (context ^ ": request vanished without a response")
      | Some line -> account tally pt ~context line)
    pairs

let apply_actions srv vclock tally ~context actions =
  List.iter
    (fun action ->
      match roundtrip srv vclock (Wire.Fault action) with
      | None -> violate tally (context ^ ": fault delta vanished")
      | Some line -> (
          match Sjson.parse line with
          | Error msg -> violate tally (Printf.sprintf "%s: %s" context msg)
          | Ok json ->
              if not (bool_field "ok" json) then
                violate tally
                  (Printf.sprintf "%s: fault delta rejected: %s" context
                     (Option.value ~default:"?" (str_field "error" json)))))
    actions

let finish_phase srv name pt =
  Obs.incr c_phases;
  {
    name;
    requests = pt.p_requests;
    delivered = pt.p_delivered;
    degraded = pt.p_degraded;
    unreachable = pt.p_unreachable;
    shed = pt.p_shed;
    digest = Engine.digest (Server.engine srv);
  }

let infra_outcome msg =
  {
    phases = [];
    total_requests = 0;
    delivered = 0;
    shed = 0;
    delivery_rate = 0.0;
    virtual_ticks = 0;
    journal_digest_ok = true;
    digest_converged = true;
    certified = None;
    slo_breached = false;
    p50_ms = None;
    p99_ms = None;
    violations = [];
    infra = Some msg;
    exit = Exit_code.Infra;
  }

let sanitize label =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
      | _ -> '-')
    label

let run ?(label = "chaos") (c : Construction.t) cfg =
  let routing = c.Construction.routing in
  let g = Routing.graph routing in
  let n = Graph.n g in
  if n < 3 then infra_outcome "chaos: need a graph with at least 3 nodes"
  else begin
    let journal_path =
      Filename.concat cfg.journal_dir (sanitize label ^ ".journal")
    in
    (try Sys.remove journal_path with Sys_error _ -> ());
    match Journal.create journal_path with
    | Error msg -> infra_outcome ("journal: " ^ msg)
    | Ok journal ->
        let engine = Engine.create routing in
        let tally = { lats = []; violations = []; violation_count = 0 } in
        let b0 = Construction.bound_for c ~f:0 in
        let certified =
          match (cfg.certify, b0) with
          | false, _ | true, None -> None
          | true, Some b ->
              (* Re-prove the fault-free claim the degraded flag is
                 judged against; ~jobs makes the chaos run double as a
                 determinism check — the artifact must not move. *)
              let cert = Tolerance.certify ?jobs:cfg.jobs routing ~f:1 ~bound:b in
              if cert.Tolerance.holds then Some (b, 1)
              else begin
                violate tally
                  (Printf.sprintf "certify refuted the (%d,1) claim" b);
                None
              end
        in
        let vclock = ref 0.0 in
        let srv =
          Server.create
            ~clock:(fun () -> !vclock)
            ~journal
            {
              max_queue = cfg.max_queue;
              deadline = cfg.deadline_ticks;
              bound = b0;
            }
            engine
        in
        let rng = Random.State.make [| cfg.seed |] in
        let all_nodes = List.init n Fun.id in
        let initial_digest = Engine.digest engine in
        (* Phase 1 — baseline: heavy-tailed (Zipf) pair popularity on
           the healthy network. Everything must be delivered. *)
        let pt = new_phase_tally () in
        run_pairs srv vclock tally pt ~context:(label ^ " baseline")
          (Workload.zipf_pairs ~rng ~alive:all_nodes ~s:cfg.zipf_s
             ~count:cfg.queries);
        if pt.p_delivered <> pt.p_requests then
          violate tally
            (Printf.sprintf "baseline: only %d/%d delivered" pt.p_delivered
               pt.p_requests);
        let baseline = finish_phase srv "baseline" pt in
        (* Phase 2 — gray wave: every link of a random BFS ball
           degrades (delays, never drops). The full baseline contract
           must still hold: same delivery, no new unreachables. *)
        let gray_center = Random.State.int rng n in
        let gray_links = Faults.region_links g ~center:gray_center ~radius:cfg.radius in
        apply_actions srv vclock tally ~context:(label ^ " gray inject")
          (List.map
             (fun (u, v) -> Wire.Degrade_link (u, v, cfg.gray_factor))
             gray_links);
        let pt = new_phase_tally () in
        run_pairs srv vclock tally pt ~context:(label ^ " gray")
          (Workload.zipf_pairs ~rng ~alive:all_nodes ~s:cfg.zipf_s
             ~count:cfg.queries);
        if pt.p_delivered <> pt.p_requests then
          violate tally
            (Printf.sprintf
               "gray wave: only %d/%d delivered (gray failures must slow, never cut)"
               pt.p_delivered pt.p_requests);
        let gray = finish_phase srv "gray" pt in
        apply_actions srv vclock tally ~context:(label ^ " gray restore")
          (List.map (fun (u, v) -> Wire.Restore_link (u, v)) gray_links);
        if Engine.digest (Server.engine srv) <> initial_digest then
          violate tally "gray restore: digest did not return to baseline";
        (* Phase 3 — correlated regional outage: all links of another
           BFS ball fail wholesale. Queries must still be answered
           (shedding is a breach); unreachable is legitimate while the
           blast area is cut off, bounded by the delivery-rate gate. *)
        let reg_center = Random.State.int rng n in
        let reg_links = Faults.region_links g ~center:reg_center ~radius:cfg.radius in
        apply_actions srv vclock tally ~context:(label ^ " regional inject")
          (List.map (fun (u, v) -> Wire.Fail_link (u, v)) reg_links);
        let pt = new_phase_tally () in
        run_pairs srv vclock tally pt ~context:(label ^ " regional")
          (Workload.zipf_pairs ~rng ~alive:all_nodes ~s:cfg.zipf_s
             ~count:cfg.queries);
        if pt.p_shed > 0 then
          violate tally
            (Printf.sprintf "regional wave: %d queries shed under plain load"
               pt.p_shed);
        if
          pt.p_requests > 0
          && float_of_int pt.p_delivered /. float_of_int pt.p_requests
             < cfg.min_delivery
        then
          violate tally
            (Printf.sprintf "regional wave: delivery %d/%d below the %g floor"
               pt.p_delivered pt.p_requests cfg.min_delivery);
        let regional = finish_phase srv "regional" pt in
        (* Kill/restart at the deepest fault state: a fresh engine
           replaying the on-disk journal must land byte-identical. *)
        let journal_digest_ok = ref true in
        let deepest = Engine.digest (Server.engine srv) in
        (match Journal.load journal_path with
        | Error msg ->
            journal_digest_ok := false;
            violate tally ("journal reload: " ^ msg)
        | Ok events -> (
            let fresh = Engine.create routing in
            match Engine.replay fresh events with
            | Error msg ->
                journal_digest_ok := false;
                violate tally ("journal replay: " ^ msg)
            | Ok _ ->
                if Engine.digest fresh <> deepest then begin
                  journal_digest_ok := false;
                  violate tally "journal replay diverged from the live digest"
                end
                else Server.set_engine srv fresh));
        apply_actions srv vclock tally ~context:(label ^ " regional recovery")
          (List.map (fun (u, v) -> Wire.Recover_link (u, v)) reg_links);
        (* Phase 4 — flash crowd: a burst of hub-bound queries arrives
           faster than the pump drains. Admission must shed the excess
           (queue budget + queued-too-long deadlines) and serve the
           rest; on the healthy network every served query must be
           delivered. *)
        let hub = Random.State.int rng n in
        let crowd =
          Workload.zipf_pairs ~rng
            ~alive:(List.filter (fun v -> v <> hub) all_nodes)
            ~s:0.0 ~count:cfg.burst
        in
        let pt = new_phase_tally () in
        let responses = ref [] in
        List.iter
          (fun (src, _) ->
            vclock := !vclock +. 1.0;
            Server.submit srv
              (Wire.Route { src; dst = hub })
              (fun s -> responses := s :: !responses))
          crowd;
        Server.pump srv;
        List.iter
          (fun line -> account tally pt ~context:(label ^ " crowd") line)
          (List.rev !responses);
        if pt.p_requests <> cfg.burst then
          violate tally
            (Printf.sprintf "crowd: %d/%d responses arrived" pt.p_requests
               cfg.burst);
        if cfg.burst > cfg.max_queue && pt.p_shed = 0 then
          violate tally "crowd: burst exceeded the queue budget but nothing shed";
        if pt.p_delivered + pt.p_shed <> pt.p_requests then
          violate tally
            (Printf.sprintf
               "crowd: %d requests neither delivered nor shed on a healthy network"
               (pt.p_requests - pt.p_delivered - pt.p_shed));
        let crowd_phase = finish_phase srv "crowd" pt in
        (* Phase 5 — convergence: all faults recovered above, so the
           digest must be back to its initial bytes. *)
        let digest_converged = Engine.digest (Server.engine srv) = initial_digest in
        if not digest_converged then
          violate tally "final digest did not converge to the initial state";
        Journal.close journal;
        let phases = [ baseline; gray; regional; crowd_phase ] in
        let total_requests =
          List.fold_left (fun a (p : phase) -> a + p.requests) 0 phases
        in
        let delivered =
          List.fold_left (fun a (p : phase) -> a + p.delivered) 0 phases
        in
        let shed = List.fold_left (fun a (p : phase) -> a + p.shed) 0 phases in
        let delivery_rate =
          if total_requests = 0 then 1.0
          else float_of_int delivered /. float_of_int total_requests
        in
        let p q = Stats.percentile_of tally.lats ~p:q in
        let p50_ms = p 50.0 and p99_ms = p 99.0 in
        let slo_breached =
          match p99_ms with Some v -> v > cfg.slo_p99_ms | None -> false
        in
        if slo_breached then
          violate tally
            (Printf.sprintf "p99 %.3fms over the %.3fms SLO"
               (Option.value ~default:0.0 p99_ms)
               cfg.slo_p99_ms);
        let violations = recorded_violations tally in
        let exit =
          if violations <> [] || not !journal_digest_ok || not digest_converged
          then Exit_code.Breach
          else Exit_code.Clean
        in
        {
          phases;
          total_requests;
          delivered;
          shed;
          delivery_rate;
          virtual_ticks = int_of_float !vclock;
          journal_digest_ok = !journal_digest_ok;
          digest_converged;
          certified;
          slo_breached;
          p50_ms;
          p99_ms;
          violations;
          infra = None;
          exit;
        }
  end

let phase_json p =
  let open Sjson in
  Obj
    [
      ("name", Str p.name);
      ("requests", Int p.requests);
      ("delivered", Int p.delivered);
      ("degraded", Int p.degraded);
      ("unreachable", Int p.unreachable);
      ("shed", Int p.shed);
      ("digest", Str p.digest);
    ]

(* The artifact is deterministic by construction: every field is a
   function of (construction, config) alone. Wall-clock percentiles
   are deliberately absent — the SLO verdict boolean is carried, the
   raw milliseconds go to stdout. *)
let to_json (cfg : config) o =
  let open Sjson in
  Obj
    [
      ("version", Str "ftr-chaos/1");
      ( "config",
        Obj
          [
            ("queries", Int cfg.queries);
            ("burst", Int cfg.burst);
            ("max_queue", Int cfg.max_queue);
            ("deadline_ticks", Float cfg.deadline_ticks);
            ("gray_factor", Float cfg.gray_factor);
            ("radius", Int cfg.radius);
            ("zipf_s", Float cfg.zipf_s);
            ("min_delivery", Float cfg.min_delivery);
            ("seed", Int cfg.seed);
            ("certify", Bool cfg.certify);
          ] );
      ("phases", Arr (List.map phase_json o.phases));
      ("total_requests", Int o.total_requests);
      ("delivered", Int o.delivered);
      ("shed", Int o.shed);
      ("delivery_rate", Float o.delivery_rate);
      ("virtual_ticks", Int o.virtual_ticks);
      ("journal_digest_ok", Bool o.journal_digest_ok);
      ("digest_converged", Bool o.digest_converged);
      ( "certified",
        match o.certified with
        | Some (b, k) -> Obj [ ("bound", Int b); ("faults", Int k) ]
        | None -> Null );
      ("slo_breached", Bool o.slo_breached);
      ("violations", Arr (List.map (fun v -> Str v) o.violations));
      ("infra", match o.infra with Some m -> Str m | None -> Null);
      ("exit", Str (Exit_code.describe o.exit));
      ("exit_code", Int (Exit_code.to_int o.exit));
    ]
