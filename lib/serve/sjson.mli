(** The serve layer's JSON dialect: values, a single-line printer and
    a total parser.

    The wire protocol (see {!module:Wire}) is newline-delimited JSON,
    so the printer never emits a newline and the parser reads exactly
    one value per line. Hand-rolled like the corpus and routing
    persistence so the daemon stays dependency-free; unlike the corpus
    subset this one carries booleans and floats (latencies, SLO
    thresholds). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** One line, no newline. Object keys keep their given order (the
    serve responses are byte-stable for a given request sequence).
    Non-finite floats serialise as [null] — JSON has no spelling for
    them and a NaN must never poison a metrics consumer. *)

val parse : string -> (t, string) result
(** Parse one JSON value (surrounding whitespace allowed; trailing
    garbage is an error). Never raises. *)

(** {1 Accessors} — total, [None] on shape mismatch. *)

val member : string -> t -> t option
(** Field of an object; [None] on missing field or non-object. *)

val to_int : t -> int option

val to_float : t -> float option
(** Accepts [Int] too (JSON does not distinguish). *)

val to_str : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option

val int_pair : t -> (int * int) option
(** A two-element integer array, e.g. a link's endpoints. *)
