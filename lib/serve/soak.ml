open Ftr_core
open Ftr_sim
open Ftr_obs

type config = {
  queries : int;
  slo_p99_ms : float;
  seed : int;
  jobs : int option;
  certify : bool;
  journal_dir : string;
  gray_factor : float option;
}

type report = {
  label : string;
  waves : int;
  in_budget_waves : int;
  queries : int;
  degraded : int;
  shed : int;
  dropped_in_budget : int;
  p50_ms : float option;
  p99_ms : float option;
  p999_ms : float option;
  journal_digest_ok : bool;
  certified : (int * int) option;
  violations : string list;
  infra : string option;
}

type outcome = {
  reports : report list;
  total_queries : int;
  p50_ms : float option;
  p99_ms : float option;
  p999_ms : float option;
  slo_breached : bool;
  dropped_in_budget : int;
  exit : Exit_code.t;
}

let c_waves = Obs.counter "serve.soak.waves"
let c_queries = Obs.counter "serve.soak.queries"
let c_violations = Obs.counter "serve.soak.violations"

(* Violations are reported verbatim up to a cap, then summarised — a
   badly broken run should not produce a megabyte of repeats. *)
let max_recorded_violations = 8

type tally = {
  mutable t_queries : int;
  mutable t_degraded : int;
  mutable t_shed : int;
  mutable t_dropped : int;
  mutable t_lats : float list;
  mutable t_violations : string list;  (* newest first *)
  mutable t_violation_count : int;
}

let new_tally () =
  {
    t_queries = 0;
    t_degraded = 0;
    t_shed = 0;
    t_dropped = 0;
    t_lats = [];
    t_violations = [];
    t_violation_count = 0;
  }

let violate tally msg =
  Obs.incr c_violations;
  tally.t_violation_count <- tally.t_violation_count + 1;
  if tally.t_violation_count <= max_recorded_violations then
    tally.t_violations <- msg :: tally.t_violations

let recorded_violations tally =
  let extra = tally.t_violation_count - max_recorded_violations in
  let shown = List.rev tally.t_violations in
  if extra > 0 then shown @ [ Printf.sprintf "(+%d more)" extra ] else shown

let bool_field name json =
  Option.value ~default:false (Option.bind (Sjson.member name json) Sjson.to_bool)

let int_field name json = Option.bind (Sjson.member name json) Sjson.to_int
let float_field name json = Option.bind (Sjson.member name json) Sjson.to_float
let str_field name json = Option.bind (Sjson.member name json) Sjson.to_str

(* Drive one request through admission and return its parsed
   response. The virtual clock ticks once per request. *)
let roundtrip srv vclock req =
  vclock := !vclock +. 1.0;
  let resp = ref None in
  Server.submit srv req (fun s -> resp := Some s);
  Server.pump srv;
  match !resp with
  | None -> Error "request vanished without a response"
  | Some line -> (
      match Sjson.parse line with
      | Ok json -> Ok json
      | Error msg -> Error (Printf.sprintf "unparseable response %S: %s" line msg))

let apply_wave srv vclock tally ~context actions =
  List.iter
    (fun action ->
      match roundtrip srv vclock (Wire.Fault action) with
      | Error msg -> violate tally (Printf.sprintf "%s: %s" context msg)
      | Ok json ->
          if not (bool_field "ok" json) then
            violate tally
              (Printf.sprintf "%s: fault delta rejected: %s" context
                 (Option.value ~default:"?" (str_field "error" json))))
    actions

let run_queries srv vclock tally rng ~context ~alive ~count ~in_budget ~bound =
  let pairs = Workload.query_pairs ~rng ~alive ~count in
  List.iter
    (fun (src, dst) ->
      Obs.incr c_queries;
      tally.t_queries <- tally.t_queries + 1;
      let where = Printf.sprintf "%s %d->%d" context src dst in
      match roundtrip srv vclock (Wire.Route { src; dst }) with
      | Error msg -> violate tally (Printf.sprintf "%s: %s" where msg)
      | Ok json -> (
          (match float_field "service_ms" json with
          | Some ms -> tally.t_lats <- ms :: tally.t_lats
          | None -> ());
          if bool_field "degraded" json then
            tally.t_degraded <- tally.t_degraded + 1;
          if bool_field "shed" json then begin
            tally.t_shed <- tally.t_shed + 1;
            if in_budget then begin
              tally.t_dropped <- tally.t_dropped + 1;
              violate tally (Printf.sprintf "%s: in-budget query shed" where)
            end
          end
          else if not (bool_field "ok" json) then begin
            if in_budget then begin
              tally.t_dropped <- tally.t_dropped + 1;
              violate tally
                (Printf.sprintf "%s: in-budget query failed: %s" where
                   (Option.value ~default:"?" (str_field "error" json)))
            end
          end
          else if in_budget then
            match (bound, int_field "routes" json) with
            | Some b, Some routes when routes <= b && not (bool_field "degraded" json)
              ->
                ()
            | Some b, Some routes ->
                tally.t_dropped <- tally.t_dropped + 1;
                violate tally
                  (Printf.sprintf "%s: %d routes exceeds proven bound %d" where
                     routes b)
            | _, None ->
                tally.t_dropped <- tally.t_dropped + 1;
                violate tally
                  (Printf.sprintf "%s: in-budget reply without a route count"
                     where)
            | None, _ -> ()))
    pairs

let sanitize label =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
      | _ -> '-')
    label

(* The strongest node-only in-budget witness of the group: certify at
   its fault count, against the bound in force there. *)
let certify_target c entries =
  List.fold_left
    (fun acc (e : Attack.Corpus.entry) ->
      if e.edges <> [] then acc
      else
        let k = List.length e.faults in
        match Construction.bound_for c ~f:k with
        | None -> acc
        | Some b -> (
            match acc with
            | Some (_, k') when k' >= k -> acc
            | _ -> Some (b, k)))
    None entries

let infra_report label msg =
  {
    label;
    waves = 0;
    in_budget_waves = 0;
    queries = 0;
    degraded = 0;
    shed = 0;
    dropped_in_budget = 0;
    p50_ms = None;
    p99_ms = None;
    p999_ms = None;
    journal_digest_ok = true;
    certified = None;
    violations = [];
    infra = Some msg;
  }

let run_group ~build cfg ((graph, strategy, seed), entries) =
  let label = Printf.sprintf "%s/%s seed=%d" graph strategy seed in
  match build ~graph ~strategy ~seed with
  | Error msg -> infra_report label (Printf.sprintf "build failed: %s" msg)
  | Ok (c : Construction.t) -> (
      let engine = Engine.create c.Construction.routing in
      let n = Engine.n engine in
      match
        List.find_opt (fun (e : Attack.Corpus.entry) -> e.n <> n) entries
      with
      | Some e ->
          infra_report label
            (Printf.sprintf "stale corpus entry: n=%d but the construction has %d"
               e.n n)
      | None -> (
          let journal_path =
            Filename.concat cfg.journal_dir (sanitize label ^ ".journal")
          in
          (try Sys.remove journal_path with Sys_error _ -> ());
          match Journal.create journal_path with
          | Error msg -> infra_report label ("journal: " ^ msg)
          | Ok journal ->
              let tally = new_tally () in
              let certified =
                match (cfg.certify, certify_target c entries) with
                | false, _ | true, None -> None
                | true, Some (b, k) ->
                    let cert =
                      Tolerance.certify ?jobs:cfg.jobs c.Construction.routing
                        ~f:k ~bound:b
                    in
                    if cert.Tolerance.holds then Some (b, k)
                    else begin
                      violate tally
                        (Printf.sprintf
                           "certify refuted the (%d,%d) claim (counterexample %s)"
                           b k
                           (match cert.Tolerance.counterexample with
                           | Some s ->
                               String.concat ","
                                 (List.map string_of_int s)
                           | None -> "?"));
                      None
                    end
              in
              let vclock = ref 0.0 in
              let b0 = Construction.bound_for c ~f:0 in
              let srv =
                Server.create
                  ~clock:(fun () -> !vclock)
                  ~journal
                  {
                    max_queue = Int.max 16 cfg.queries;
                    deadline = 0.0;
                    bound = b0;
                  }
                  engine
              in
              let rng = Random.State.make [| cfg.seed |] in
              let all_nodes = List.init n Fun.id in
              run_queries srv vclock tally rng ~context:(label ^ " baseline")
                ~alive:all_nodes ~count:cfg.queries
                ~in_budget:(Option.is_some b0) ~bound:b0;
              (* Gray-failure wave: degrade a couple of fixed links
                 (latency only — no route is cut), demand the full
                 fault-free in-budget contract still holds, restore,
                 and demand the digest returns to its pre-gray
                 bytes. *)
              (match cfg.gray_factor with
              | None -> ()
              | Some factor ->
                  let targets =
                    List.filteri
                      (fun i _ -> i < 2)
                      (Ftr_graph.Graph.edges
                         (Routing.graph c.Construction.routing))
                  in
                  let before_gray = Engine.digest (Server.engine srv) in
                  apply_wave srv vclock tally ~context:(label ^ " gray wave")
                    (List.map
                       (fun (u, v) -> Wire.Degrade_link (u, v, factor))
                       targets);
                  run_queries srv vclock tally rng
                    ~context:(label ^ " gray wave") ~alive:all_nodes
                    ~count:cfg.queries ~in_budget:(Option.is_some b0) ~bound:b0;
                  apply_wave srv vclock tally
                    ~context:(label ^ " gray restore")
                    (List.map (fun (u, v) -> Wire.Restore_link (u, v)) targets);
                  let after_gray = Engine.digest (Server.engine srv) in
                  if after_gray <> before_gray then
                    violate tally
                      (Printf.sprintf
                         "%s gray restore: digest did not converge: %S <> %S"
                         label after_gray before_gray));
              let waves = List.length entries in
              let journal_digest_ok = ref true in
              let in_budget_waves = ref 0 in
              List.iteri
                (fun i (e : Attack.Corpus.entry) ->
                  Obs.incr c_waves;
                  let k = List.length e.faults + List.length e.edges in
                  let b = Construction.bound_for c ~f:k in
                  let in_budget = Option.is_some b in
                  if in_budget then incr in_budget_waves;
                  let context = Printf.sprintf "%s wave %d" label i in
                  let downs =
                    List.map (fun v -> Wire.Fail_node v) e.faults
                    @ List.map (fun (u, v) -> Wire.Fail_link (u, v)) e.edges
                  in
                  Server.set_bound srv b;
                  apply_wave srv vclock tally ~context downs;
                  let alive =
                    List.filter (fun v -> not (List.mem v e.faults)) all_nodes
                  in
                  run_queries srv vclock tally rng ~context ~alive
                    ~count:cfg.queries ~in_budget ~bound:b;
                  (* Kill/restart at the deepest fault state of the
                     last wave: rebuild from the on-disk journal and
                     demand a byte-identical fault digest. *)
                  if i = waves - 1 then begin
                    let before = Engine.digest (Server.engine srv) in
                    match Journal.load journal_path with
                    | Error msg ->
                        journal_digest_ok := false;
                        violate tally (Printf.sprintf "%s: reload: %s" context msg)
                    | Ok events -> (
                        let fresh = Engine.create c.Construction.routing in
                        match Engine.replay fresh events with
                        | Error msg ->
                            journal_digest_ok := false;
                            violate tally
                              (Printf.sprintf "%s: replay: %s" context msg)
                        | Ok _ ->
                            let after = Engine.digest fresh in
                            if after <> before then begin
                              journal_digest_ok := false;
                              violate tally
                                (Printf.sprintf
                                   "%s: journal replay diverged: %S <> %S"
                                   context after before)
                            end
                            else Server.set_engine srv fresh)
                  end;
                  let ups =
                    List.map (fun v -> Wire.Recover_node v) e.faults
                    @ List.map (fun (u, v) -> Wire.Recover_link (u, v)) e.edges
                  in
                  apply_wave srv vclock tally ~context:(context ^ " recovery") ups;
                  Server.set_bound srv b0;
                  run_queries srv vclock tally rng
                    ~context:(context ^ " recovered") ~alive:all_nodes
                    ~count:cfg.queries ~in_budget:(Option.is_some b0) ~bound:b0)
                entries;
              (* All waves recovered, so the fault state must be empty
                 again. *)
              (if
                 Engine.node_faults (Server.engine srv) <> []
                 || Engine.link_faults (Server.engine srv) <> []
               then
                 violate tally
                   (label ^ ": fault state not empty after full recovery"));
              Journal.close journal;
              let p q = Stats.percentile_of tally.t_lats ~p:q in
              {
                label;
                waves;
                in_budget_waves = !in_budget_waves;
                queries = tally.t_queries;
                degraded = tally.t_degraded;
                shed = tally.t_shed;
                dropped_in_budget = tally.t_dropped;
                p50_ms = p 50.0;
                p99_ms = p 99.0;
                p999_ms = p 99.9;
                journal_digest_ok = !journal_digest_ok;
                certified;
                violations = recorded_violations tally;
                infra = None;
              }))

let run ~build ~entries cfg =
  let keys =
    List.sort_uniq compare
      (List.map
         (fun (e : Attack.Corpus.entry) -> (e.graph, e.strategy, e.seed))
         entries)
  in
  let groups =
    List.map
      (fun key ->
        ( key,
          List.filter
            (fun (e : Attack.Corpus.entry) ->
              (e.graph, e.strategy, e.seed) = key)
            entries ))
      keys
  in
  let reports = List.map (run_group ~build cfg) groups in
  let total_queries = List.fold_left (fun a r -> a + r.queries) 0 reports in
  let dropped_in_budget =
    List.fold_left (fun a (r : report) -> a + r.dropped_in_budget) 0 reports
  in
  let worst_p pick =
    List.fold_left
      (fun acc r ->
        match (acc, pick r) with
        | None, v -> v
        | v, None -> v
        | Some a, Some b -> Some (Float.max a b))
      None reports
  in
  let p50_ms = worst_p (fun r -> r.p50_ms) in
  let p99_ms = worst_p (fun r -> r.p99_ms) in
  let p999_ms = worst_p (fun r -> r.p999_ms) in
  let slo_breached =
    match p99_ms with Some p -> p > cfg.slo_p99_ms | None -> false
  in
  let any_infra = List.exists (fun r -> r.infra <> None) reports in
  let any_violation =
    List.exists
      (fun r -> r.violations <> [] || not r.journal_digest_ok)
      reports
  in
  let exit =
    if any_infra then Exit_code.Infra
    else if slo_breached || dropped_in_budget > 0 || any_violation then
      Exit_code.Breach
    else Exit_code.Clean
  in
  {
    reports;
    total_queries;
    p50_ms;
    p99_ms;
    p999_ms;
    slo_breached;
    dropped_in_budget;
    exit;
  }

let opt_float = function Some f -> Sjson.Float f | None -> Sjson.Null

let report_json r =
  let open Sjson in
  Obj
    [
      ("label", Str r.label);
      ("waves", Int r.waves);
      ("in_budget_waves", Int r.in_budget_waves);
      ("queries", Int r.queries);
      ("degraded", Int r.degraded);
      ("shed", Int r.shed);
      ("dropped_in_budget", Int r.dropped_in_budget);
      ("p50_ms", opt_float r.p50_ms);
      ("p99_ms", opt_float r.p99_ms);
      ("p999_ms", opt_float r.p999_ms);
      ("journal_digest_ok", Bool r.journal_digest_ok);
      ( "certified",
        match r.certified with
        | Some (b, k) -> Obj [ ("bound", Int b); ("faults", Int k) ]
        | None -> Null );
      ("violations", Arr (List.map (fun v -> Str v) r.violations));
      ("infra", match r.infra with Some m -> Str m | None -> Null);
    ]

let to_json (cfg : config) outcome =
  let open Sjson in
  Obj
    [
      ("version", Str "ftr-slo/1");
      ( "config",
        Obj
          [
            ("queries", Int cfg.queries);
            ("slo_p99_ms", Float cfg.slo_p99_ms);
            ("seed", Int cfg.seed);
            ("certify", Bool cfg.certify);
            ( "gray_factor",
              match cfg.gray_factor with Some f -> Float f | None -> Null );
          ] );
      ("constructions", Arr (List.map report_json outcome.reports));
      ("total_queries", Int outcome.total_queries);
      ("p50_ms", opt_float outcome.p50_ms);
      ("p99_ms", opt_float outcome.p99_ms);
      ("p999_ms", opt_float outcome.p999_ms);
      ("slo_breached", Bool outcome.slo_breached);
      ("dropped_in_budget", Int outcome.dropped_in_budget);
      ("exit", Str (Exit_code.describe outcome.exit));
      ("exit_code", Int (Exit_code.to_int outcome.exit));
    ]
