(** The gray-failure / heavy-traffic chaos harness: a scenario-scripted
    soak against the live serve stack.

    One run drives a fixed five-beat scenario through
    {!Server.submit}/{!Server.pump} (the same request core the socket
    daemon runs), with admission time on a virtual clock that ticks
    once per submission:

    + {b baseline} — Zipf-popular route queries on the healthy
      network; everything must be delivered;
    + {b gray wave} — every link of a random BFS ball degrades
      ([Degrade_link], latency-only); the baseline contract must hold
      unchanged (gray failures slow, never cut), and restoring the
      wave must return the fault digest to its exact baseline bytes;
    + {b correlated regional outage} — every link of another BFS ball
      fails wholesale; queries must still all be answered (a shed
      here is a breach) and delivery must stay above the
      [min_delivery] floor; at the deepest fault state the engine is
      rebuilt from the on-disk journal and must land byte-identical;
    + {b flash crowd} — [burst] hub-bound queries submitted faster
      than the pump drains; admission must shed the excess (queue
      budget and queued-too-long deadlines) and deliver every query
      it serves;
    + {b convergence} — all faults recovered; the digest must be back
      to its initial bytes.

    The [ftr-chaos/1] artifact ({!to_json}) is deterministic by
    construction — every field is a function of (construction,
    config) alone, so it must come out byte-identical across [--jobs]
    settings. Wall-clock latencies feed only the stdout summary and
    the SLO verdict boolean. *)

open Ftr_core

type config = {
  queries : int;  (** route queries per query phase *)
  burst : int;  (** flash-crowd size; exceed [max_queue] to force sheds *)
  max_queue : int;  (** admission queue budget *)
  deadline_ticks : float;
      (** admission deadline in virtual ticks; [<= 0.] disables *)
  gray_factor : float;  (** latency factor for the gray wave; [>= 1.] *)
  radius : int;  (** BFS-ball radius for gray and regional waves *)
  zipf_s : float;  (** Zipf exponent for pair popularity; [0.] = uniform *)
  slo_p99_ms : float;  (** wall-clock p99 gate *)
  min_delivery : float;
      (** delivery-rate floor for the regional phase, in [0, 1] *)
  seed : int;  (** scenario RNG seed *)
  jobs : int option;  (** parallelism for the certify pre-pass *)
  certify : bool;  (** re-prove the (bound, 1) claim first *)
  journal_dir : string;  (** existing directory for the fault journal *)
}

type phase = {
  name : string;
  requests : int;
  delivered : int;  (** answered ok, degraded included *)
  degraded : int;
  unreachable : int;
  shed : int;
  digest : string;  (** engine fault digest at the end of the phase *)
}

type outcome = {
  phases : phase list;
  total_requests : int;
  delivered : int;
  shed : int;
  delivery_rate : float;
  virtual_ticks : int;  (** total virtual-clock ticks consumed *)
  journal_digest_ok : bool;
  digest_converged : bool;
  certified : (int * int) option;  (** re-proven [(bound, f)] *)
  slo_breached : bool;
  p50_ms : float option;  (** wall-clock; stdout only, never the artifact *)
  p99_ms : float option;
  violations : string list;
  infra : string option;
  exit : Exit_code.t;
}

val run : ?label:string -> Construction.t -> config -> outcome
(** Run the scenario. [label] names the journal file inside
    [journal_dir] (default ["chaos"]). Exits {!Exit_code.Breach} on
    any broken gate (delivery, shed discipline, digest convergence,
    SLO), {!Exit_code.Infra} when the run could not start. *)

val to_json : config -> outcome -> Sjson.t
(** The [ftr-chaos/1] artifact. Deterministic: byte-identical across
    [--jobs] for a fixed construction, config and seed. *)
