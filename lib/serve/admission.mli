(** Admission control for the serve loop: a bounded FIFO with
    per-request deadlines and explicit load shedding.

    Two rules, applied in order:
    - {b queue budget}: an arriving request is shed outright when the
      queue already holds [max_queue] requests (back-pressure beats
      unbounded latency);
    - {b deadline}: a request that waited longer than [deadline]
      seconds before being served is expired at dequeue time rather
      than served late (a stale surviving-route answer may already be
      invalidated by churn).

    Time is passed in by the caller ([~now]) rather than read from a
    clock, so the daemon drives it with wall time while the soak
    harness drives a virtual clock — keeping soak counters a pure
    function of the requested work, per the observability layer's
    determinism rule. *)

type config = {
  max_queue : int;  (** shed arrivals beyond this depth; [> 0] *)
  deadline : float;
      (** seconds a request may wait before expiring; [<= 0.] means
          no deadline *)
}

type 'a t

val create : config -> 'a t
(** Raises [Invalid_argument] if [max_queue <= 0]. *)

val config : 'a t -> config
val length : 'a t -> int

val offer : 'a t -> now:float -> 'a -> bool
(** Enqueue unless the queue is at budget; [false] means shed (the
    ["serve.admission.shed_queue"] counter ticks). *)

val take : 'a t -> now:float -> [ `Serve of 'a | `Expired of 'a ] option
(** Dequeue the oldest request: [`Serve] if it is still within its
    deadline, [`Expired] if it waited too long (the
    ["serve.admission.shed_deadline"] counter ticks) — expired
    requests are surfaced, not silently dropped, so the caller can
    answer the client with an explicit shed response. [None] when
    empty.

    Shed ordering: every queued request carries the same [deadline]
    offset from its enqueue time, so FIFO order {e is}
    oldest-deadline-first order — when a pump tick drains several
    expired requests in one loop, they are expired strictly oldest
    first, and no younger request can expire while an older one is
    served. (A regression test pins this; if per-request deadlines
    are ever introduced, this queue must become a priority queue
    keyed on expiry.) *)
