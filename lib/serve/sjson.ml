type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ---------------------------------------------------------------- *)
(* Printing                                                          *)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let float_repr f =
  (* Shortest round-trip decimal; %.17g guarantees the round trip and
     the shorter forms are tried first. *)
  let s = Printf.sprintf "%.12g" f in
  if float_of_string_opt s = Some f then s else Printf.sprintf "%.17g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_finite f then Buffer.add_string buf (float_repr f)
      else Buffer.add_string buf "null"
  | Str s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
  | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          write buf v)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\":";
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 128 in
  write buf v;
  Buffer.contents buf

(* ---------------------------------------------------------------- *)
(* Parsing                                                           *)

exception Bad of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected '%s'" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some '"' -> Buffer.add_char buf '"'; advance ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance ()
          | Some '/' -> Buffer.add_char buf '/'; advance ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance ()
          | Some 't' -> Buffer.add_char buf '\t'; advance ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "truncated \\u escape";
              (* Exactly four hex digits, checked character by
                 character: int_of_string_opt "0x…" also accepts OCaml
                 numeric-literal syntax (underscores, a second "0x"),
                 so "\u00_a" or "\ux20a" would parse as a shorter
                 number and silently decode the wrong codepoint. *)
              let hex_val c =
                match c with
                | '0' .. '9' -> Char.code c - Char.code '0'
                | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
                | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
                | _ -> fail "bad \\u escape"
              in
              let code = ref 0 in
              for i = !pos to !pos + 3 do
                code := (!code * 16) + hex_val s.[i]
              done;
              (* Only BMP codepoints below 0x80 round-trip as one
                 byte; others degrade to '?' — the wire protocol is
                 ASCII in practice. *)
              Buffer.add_char buf (if !code < 0x80 then Char.chr !code else '?');
              pos := !pos + 4
          | _ -> fail "bad escape");
          loop ()
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    let is_float =
      String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok
    in
    if is_float then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let value = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((key, value) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((key, value) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec items acc =
            let value = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (value :: acc)
            | Some ']' ->
                advance ();
                List.rev (value :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          Arr (items [])
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

(* ---------------------------------------------------------------- *)
(* Accessors                                                         *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function Int i -> Some i | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function Arr items -> Some items | _ -> None

let int_pair = function
  | Arr [ Int a; Int b ] -> Some (a, b)
  | _ -> None
