(** Crash-safe write-ahead fault journal.

    Every accepted fault delta is appended (and fsynced) {e before}
    it is applied to the engine, so a daemon killed at any point can
    replay the journal on restart and land in byte-identical fault
    state ({!Ftr_core.Fault_model.digest} equality is the check the
    soak harness runs after a kill/restart).

    Format: a plain text file, one event per line, headed by a
    version line so a foreign file is rejected rather than
    misinterpreted:

    {v
    ftr-journal/1
    fail-node 3
    fail-link 2 5
    recover-node 3
    recover-link 2 5
    degrade-link 0 4 2.5
    restore-link 0 4
    v}

    Gray-failure factors print as [%.17g], so every finite double
    survives the write/replay round trip bit-exactly (the digest
    convergence check depends on it).

    Append-only; recovery events are recorded, not compacted away —
    replay is cheap (each event is an O(degree)-ish incremental
    delta) and the full history is itself useful forensics. *)

type t

val header : string
(** ["ftr-journal/1"]. *)

val create : string -> (t, string) result
(** Open [path] for appending, writing the header if the file is new
    or empty. Fails (with a readable message) if the file exists but
    does not start with the header. *)

val append : t -> Wire.fault_action -> unit
(** Write one event line, flush, and fsync. Call this {e before}
    applying the delta to the engine. *)

val path : t -> string
val close : t -> unit

val load : string -> (Wire.fault_action list, string) result
(** Read a journal back for replay, in append order. A missing file
    is [Ok []] (a daemon that never saw a fault); a present file with
    a bad header or a malformed line is an error naming the line. *)
