open Ftr_sim
open Ftr_obs

type config = { max_queue : int; deadline : float; bound : int option }

(* Latencies kept for the stats op: a fixed window of the most recent
   requests, so a long-lived daemon's percentiles track current
   behaviour and memory stays bounded. *)
let latency_window = 65536

type t = {
  cfg : config;
  mutable bound : int option;
  clock : unit -> float;
  mutable engine : Engine.t;
  journal : Journal.t option;
  adm : (Wire.request * (string -> unit)) Admission.t;
  mutable draining : bool;
  mutable queries : int;
  mutable degraded : int;
  mutable unreachable : int;
  mutable shed : int;
  mutable deltas : int;
  started_at : float;
  lat : float array;
  mutable lat_len : int;
  mutable lat_pos : int;
}

let c_queries = Obs.counter "serve.queries"
let c_degraded = Obs.counter "serve.degraded"
let c_unreachable = Obs.counter "serve.unreachable"
let c_shed = Obs.counter "serve.shed"
let c_deltas = Obs.counter "serve.deltas"

let create ?clock ?journal cfg engine =
  let clock = match clock with Some c -> c | None -> Unix.gettimeofday in
  {
    cfg;
    bound = cfg.bound;
    clock;
    engine;
    journal;
    adm = Admission.create { max_queue = cfg.max_queue; deadline = cfg.deadline };
    draining = false;
    queries = 0;
    degraded = 0;
    unreachable = 0;
    shed = 0;
    deltas = 0;
    started_at = Unix.gettimeofday ();
    lat = Array.make latency_window 0.0;
    lat_len = 0;
    lat_pos = 0;
  }

let engine t = t.engine
let set_engine t e = t.engine <- e
let bound t = t.bound
let set_bound t b = t.bound <- b
let draining t = t.draining
let request_drain t = t.draining <- true
let queries t = t.queries
let degraded t = t.degraded
let shed t = t.shed
let unreachable t = t.unreachable

let push_latency t ms =
  t.lat.(t.lat_pos) <- ms;
  t.lat_pos <- (t.lat_pos + 1) mod latency_window;
  if t.lat_len < latency_window then t.lat_len <- t.lat_len + 1

let latencies_ms t = Array.to_list (Array.sub t.lat 0 t.lat_len)

open Sjson

let ok_fields fields = Obj (("ok", Bool true) :: fields)
let err_fields msg fields = Obj (("ok", Bool false) :: ("error", Str msg) :: fields)

let int_list l = Arr (List.map (fun i -> Int i) l)

let percentile_fields lats =
  let p q =
    match Stats.percentile_of lats ~p:q with Some v -> Float v | None -> Null
  in
  [ ("p50_ms", p 50.0); ("p99_ms", p 99.0); ("p999_ms", p 99.9) ]

let stats_json t =
  ok_fields
    ([
       ("queries", Int t.queries);
       ("degraded", Int t.degraded);
       ("unreachable", Int t.unreachable);
       ("shed", Int t.shed);
       ("deltas", Int t.deltas);
       ("queue", Int (Admission.length t.adm));
       ("digest", Str (Engine.digest t.engine));
     ]
    @ percentile_fields (latencies_ms t))

let handle t (req : Wire.request) : Sjson.t =
  match req with
  | Wire.Health ->
      ok_fields
        [
          ("uptime_ms", Float ((Unix.gettimeofday () -. t.started_at) *. 1000.0));
          ("draining", Bool t.draining);
          ("queue", Int (Admission.length t.adm));
          ("shed", Int t.shed);
          ("node_faults", int_list (Engine.node_faults t.engine));
          ( "link_faults",
            Arr
              (List.map
                 (fun (u, v) -> Arr [ Int u; Int v ])
                 (Engine.link_faults t.engine)) );
          ( "degraded_links",
            Arr
              (List.map
                 (fun (u, v, f) -> Arr [ Int u; Int v; Float f ])
                 (Engine.degraded_links t.engine)) );
        ]
  | Wire.Ready -> ok_fields [ ("ready", Bool (not t.draining)) ]
  | Wire.Stats -> stats_json t
  | Wire.Drain ->
      t.draining <- true;
      ok_fields [ ("draining", Bool true) ]
  | Wire.Diameter ->
      let t0 = Unix.gettimeofday () in
      let d = Engine.diameter t.engine in
      let ms = Float.max 0.0 (Unix.gettimeofday () -. t0) *. 1000.0 in
      Obs.record_span "serve.diameter" (ms /. 1000.0);
      let dj =
        match d with
        | Ftr_graph.Metrics.Finite d -> Int d
        | Ftr_graph.Metrics.Infinite -> Str "inf"
      in
      ok_fields [ ("diameter", dj); ("service_ms", Float ms) ]
  | Wire.Route { src; dst } -> (
      let t0 = Unix.gettimeofday () in
      let result = Engine.route ?bound:t.bound t.engine ~src ~dst in
      let ms = Float.max 0.0 (Unix.gettimeofday () -. t0) *. 1000.0 in
      Obs.record_span "serve.route" (ms /. 1000.0);
      push_latency t ms;
      t.queries <- t.queries + 1;
      Obs.incr c_queries;
      match result with
      | Error msg -> err_fields msg [ ("service_ms", Float ms) ]
      | Ok (Engine.Routed { waypoints; routes; hops; degraded }) ->
          if degraded then begin
            t.degraded <- t.degraded + 1;
            Obs.incr c_degraded
          end;
          ok_fields
            [
              ("degraded", Bool degraded);
              ("mode", Str "routed");
              ("routes", Int routes);
              ("hops", Int hops);
              ("path", int_list waypoints);
              ("service_ms", Float ms);
            ]
      | Ok (Engine.Detour { path; hops }) ->
          t.degraded <- t.degraded + 1;
          Obs.incr c_degraded;
          ok_fields
            [
              ("degraded", Bool true);
              ("mode", Str "detour");
              ("hops", Int hops);
              ("path", int_list path);
              ("service_ms", Float ms);
            ]
      | Ok Engine.Unreachable ->
          t.unreachable <- t.unreachable + 1;
          Obs.incr c_unreachable;
          err_fields "unreachable" [ ("service_ms", Float ms) ])
  | Wire.Fault action -> (
      match Engine.validate t.engine action with
      | Error msg -> err_fields msg []
      | Ok () -> (
          (* Write-ahead: the delta reaches stable storage before the
             engine acts on it, so a crash between the two replays to
             a state at least as faulted as the engine ever saw. *)
          (match t.journal with
          | Some j -> Journal.append j action
          | None -> ());
          match Engine.apply t.engine action with
          | Error msg -> err_fields msg []
          | Ok changed ->
              t.deltas <- t.deltas + 1;
              Obs.incr c_deltas;
              ok_fields
                [
                  ("applied", Bool changed);
                  ("digest", Str (Engine.digest t.engine));
                ]))
[@@lint.allow
  "L6: wire responses are live telemetry (uptime_ms, service_ms), not \
   replayable artifacts; the deterministic surface is the engine digest, \
   which is time-free"]

let shed_line reason =
  Sjson.to_string
    (Obj [ ("ok", Bool false); ("error", Str reason); ("shed", Bool true) ])

let submit t req respond =
  match req with
  | Wire.Health | Wire.Ready | Wire.Drain ->
      respond (Sjson.to_string (handle t req))
  | Wire.Route _ | Wire.Diameter | Wire.Fault _ | Wire.Stats ->
      if t.draining then respond (shed_line "draining")
      else if Admission.offer t.adm ~now:(t.clock ()) (req, respond) then ()
      else begin
        t.shed <- t.shed + 1;
        Obs.incr c_shed;
        respond (shed_line "queue full")
      end
[@@lint.allow
  "L6: serialises [handle] responses, which carry live timing telemetry by \
   design (see the allowance on [handle])"]

let pump t =
  let rec go () =
    match Admission.take t.adm ~now:(t.clock ()) with
    | None -> ()
    | Some (`Serve (req, respond)) ->
        respond (Sjson.to_string (handle t req));
        go ()
    | Some (`Expired (_, respond)) ->
        t.shed <- t.shed + 1;
        Obs.incr c_shed;
        respond (shed_line "deadline expired");
        go ()
  in
  go ()
[@@lint.allow
  "L6: serialises [handle] responses, which carry live timing telemetry by \
   design (see the allowance on [handle])"]

(* ---------------------------------------------------------------- *)
(* The socket event loop                                             *)

type client = { fd : Unix.file_descr; buf : Buffer.t; mutable alive : bool }

let write_all c line =
  if c.alive then begin
    let bytes = Bytes.of_string (line ^ "\n") in
    let len = Bytes.length bytes in
    let pos = ref 0 in
    try
      while !pos < len do
        pos := !pos + Unix.write c.fd bytes !pos (len - !pos)
      done
    with Unix.Unix_error _ -> c.alive <- false
  end

(* Split off complete lines, keeping a trailing partial line in the
   buffer. *)
let take_lines buf =
  let s = Buffer.contents buf in
  match String.rindex_opt s '\n' with
  | None -> []
  | Some last ->
      Buffer.clear buf;
      Buffer.add_string buf (String.sub s (last + 1) (String.length s - last - 1));
      String.split_on_char '\n' (String.sub s 0 last)

let feed t client lines =
  List.iter
    (fun line ->
      if String.trim line <> "" then
        match Wire.request_of_line line with
        | Error msg -> write_all client (Wire.error_line msg)
        | Ok req -> submit t req (fun s -> write_all client s))
    lines

let run t ~socket =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let on_term _ = t.draining <- true in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle on_term);
  Sys.set_signal Sys.sigint (Sys.Signal_handle on_term);
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  match
    let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind lfd (Unix.ADDR_UNIX socket);
    Unix.listen lfd 64;
    lfd
  with
  | exception Unix.Unix_error (e, fn, _) ->
      Error (Printf.sprintf "%s: %s (%s)" socket (Unix.error_message e) fn)
  | lfd ->
      let clients = ref [] in
      let close_client c =
        c.alive <- false;
        try Unix.close c.fd with Unix.Unix_error _ -> ()
      in
      let readbuf = Bytes.create 65536 in
      let stop = ref false in
      while not !stop do
        if t.draining then begin
          (* Drain: stop accepting, answer everything queued, flush,
             then leave — connected clients are closed, not waited
             out. *)
          pump t;
          List.iter close_client !clients;
          clients := [];
          stop := true
        end
        else begin
          let fds = lfd :: List.map (fun c -> c.fd) !clients in
          match Unix.select fds [] [] 0.2 with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | ready, _, _ ->
              if List.mem lfd ready then begin
                match Unix.accept lfd with
                | exception Unix.Unix_error _ -> ()
                | fd, _ ->
                    clients :=
                      { fd; buf = Buffer.create 256; alive = true } :: !clients
              end;
              List.iter
                (fun c ->
                  if List.mem c.fd ready then begin
                    match Unix.read c.fd readbuf 0 (Bytes.length readbuf) with
                    | exception Unix.Unix_error _ -> close_client c
                    | 0 -> close_client c
                    | n ->
                        Buffer.add_subbytes c.buf readbuf 0 n;
                        feed t c (take_lines c.buf)
                  end)
                !clients;
              clients := List.filter (fun c -> c.alive) !clients;
              pump t
        end
      done;
      (try Unix.close lfd with Unix.Unix_error _ -> ());
      (try Unix.unlink socket with Unix.Unix_error _ -> ());
      (match t.journal with Some j -> Journal.close j | None -> ());
      Ok ()
