(** The serve daemon's warm routing engine.

    Wraps one compiled surviving-route table
    ({!Ftr_core.Surviving.compiled}), one incremental evaluator and
    one {!Ftr_core.Fault_model.t} kept in lock-step. The table is
    compiled once at startup; every subsequent fault delta is an
    incremental [apply_fault]/[revert_fault]/[apply_edge_fault]
    update — the daemon never recompiles under churn — and every
    route query is one BFS over the live bit matrix. *)

open Ftr_core

type t

val create : Routing.t -> t
(** Compile the routing once and start fault-free. *)

val routing : t -> Routing.t
val n : t -> int

val validate : t -> Wire.fault_action -> (unit, string) result
(** Would this delta be accepted? [Ok] for in-range nodes and
    existing links (including no-op repeats); [Error] otherwise.
    Callers journal between {!validate} and {!apply} so only
    appliable events are written ahead. *)

val apply : t -> Wire.fault_action -> (bool, string) result
(** Apply one delta. [Ok true] when the state changed, [Ok false]
    for an idempotent no-op (failing a node that is already down —
    live churn and journal replay may both be redundant), [Error]
    when {!validate} would have rejected it. *)

val replay : t -> Wire.fault_action list -> (int, string) result
(** Apply a journal in order; the count of state-changing events, or
    the first rejection. *)

val digest : t -> string
(** {!Ftr_core.Fault_model.digest} of the current fault state. *)

val node_faults : t -> int list
val link_faults : t -> (int * int) list

val degraded_links : t -> (int * int * float) list
(** Gray-failed links as normalised sorted [(min, max, factor)]
    triples. Degradation never changes a routing verdict — it is
    latency bookkeeping carried for the health/stats ops and the
    digest. *)

type reply =
  | Routed of {
      waypoints : int list;
      routes : int;  (** fixed routes traversed = [length waypoints - 1] *)
      hops : int;  (** underlying graph edges traversed *)
      degraded : bool;
          (** route survives but exceeds the proven diameter bound *)
    }
  | Detour of { path : int list; hops : int }
      (** The surviving route graph disconnects the pair but the
          underlying graph does not: a best-effort source route over
          live links, always reported degraded. *)
  | Unreachable
      (** The pair is disconnected even in the underlying graph minus
          faults — no routing could serve it. *)

val route : ?bound:int -> t -> src:int -> dst:int -> (reply, string) result
(** Answer one surviving-route query under the current fault state.
    [bound] is the proven [(d, f)] diameter bound in force; a
    surviving route longer than it is flagged [degraded] rather than
    dropped. [Error] when an endpoint is out of range or currently
    faulty. *)

val diameter : t -> Ftr_graph.Metrics.distance
(** Surviving diameter under the current fault state. *)
