type t = Clean | Breach | Usage | Infra

let to_int = function Clean -> 0 | Breach -> 1 | Usage -> 2 | Infra -> 3

let describe = function
  | Clean -> "ok"
  | Breach -> "slo-breach"
  | Usage -> "usage-error"
  | Infra -> "infra-error"

let rank = function Clean -> 0 | Breach -> 1 | Usage -> 2 | Infra -> 3
let worst a b = if rank a >= rank b then a else b
