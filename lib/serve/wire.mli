(** The serve daemon's wire protocol: newline-delimited JSON over a
    Unix domain socket.

    Each request is one JSON object on one line with an ["op"] field;
    each response is one JSON object on one line with an ["ok"]
    boolean. Requests:

    - [{"op":"route","src":S,"dst":D}] — a surviving route query.
    - [{"op":"diameter"}] — surviving diameter of the current state.
    - [{"op":"fault","action":A,"node":V}] or
      [{"op":"fault","action":A,"link":[U,V]}] with [A] one of
      ["fail"] / ["recover"] — live churn, applied as an incremental
      delta (never a recompile) and journaled before it takes effect.
    - [{"op":"fault","action":"degrade","link":[U,V],"factor":F}] /
      [{"op":"fault","action":"restore","link":[U,V]}] — gray
      failure: the link stays routable but costs [F >= 1] times the
      healthy latency; journaled like crisp faults, invisible to
      routing verdicts.
    - [{"op":"health"}] — liveness probe; always answered, never shed.
    - [{"op":"ready"}] — readiness probe; [ready:false] while
      draining.
    - [{"op":"stats"}] — counters and latency percentiles.
    - [{"op":"drain"}] — ask the daemon to stop accepting work,
      finish what is queued, and exit (same path as SIGTERM). *)

type fault_action =
  | Fail_node of int
  | Recover_node of int
  | Fail_link of int * int
  | Recover_link of int * int
  | Degrade_link of int * int * float
      (** gray failure: factor must be finite and >= 1 on the wire *)
  | Restore_link of int * int

type request =
  | Route of { src : int; dst : int }
  | Diameter
  | Fault of fault_action
  | Health
  | Ready
  | Stats
  | Drain

val request_of_line : string -> (request, string) result
(** Parse one wire line. Never raises; the error string is safe to
    echo back to the client. *)

val request_to_line : request -> string
(** Canonical encoding of a request, without the trailing newline
    (the client appends it). [request_of_line (request_to_line r)]
    is [Ok r]. *)

val error_line : string -> string
(** A canonical [{"ok":false,"error":...}] response line (no trailing
    newline) for requests that never reach the engine — parse
    failures, shed load. *)
