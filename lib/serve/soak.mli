(** The SLO-gated serve soak: replay the witness corpus as live churn
    through the real serve stack and fail loudly on any broken
    promise.

    For every corpus construction this harness compiles the routing
    once, then walks the witness entries as churn waves — fail the
    witness's nodes and links (journaled, incremental), query random
    alive pairs through admission control, recover, query again —
    while checking the daemon's three promises:

    - {b no dropped in-budget queries}: when the wave's fault count
      is within a proven [(d, f)] claim, every query must be answered
      (never shed) with a surviving route of at most [d] routes,
      not degraded, not unreachable;
    - {b crash safety}: at the deepest fault state the engine is
      rebuilt from the on-disk journal and must land on a
      byte-identical {!Ftr_core.Fault_model.digest};
    - {b latency SLO}: p99 service latency over all queries stays
      under the threshold.

    Optionally ({!config.certify}) the in-budget claims are first
    re-certified exhaustively ({!Ftr_core.Tolerance.certify}) so
    "proven" means proven by this very run, not by provenance — and
    [~jobs] makes the run a determinism check too, since every
    counter must come out byte-identical regardless of parallelism.

    Admission time is a virtual clock (one tick per request), so the
    soak's counters are a pure function of corpus + seed + flags. *)

open Ftr_core

type config = {
  queries : int;  (** route queries per phase (per wave: during + after) *)
  slo_p99_ms : float;  (** p99 service-latency threshold *)
  seed : int;  (** workload RNG seed *)
  jobs : int option;  (** parallelism for the certify pre-pass *)
  certify : bool;  (** re-prove in-budget claims before serving *)
  journal_dir : string;  (** existing directory for fault journals *)
  gray_factor : float option;
      (** when set, insert a gray-failure wave after the baseline:
          two fixed links degrade to this latency factor (finite,
          [>= 1]), the full fault-free in-budget contract must still
          hold (gray failures slow, never cut), then the links are
          restored and the fault digest must return byte-identical *)
}

type report = {
  label : string;  (** e.g. ["torus:5x5/kernel seed=48879"] *)
  waves : int;
  in_budget_waves : int;
  queries : int;
  degraded : int;
  shed : int;
  dropped_in_budget : int;
      (** in-budget queries shed, unreachable, or over-bound *)
  p50_ms : float option;
  p99_ms : float option;
  p999_ms : float option;
  journal_digest_ok : bool;
  certified : (int * int) option;  (** re-proven [(bound, f)] *)
  violations : string list;  (** human-readable breach descriptions *)
  infra : string option;  (** set when the group could not run at all *)
}

type outcome = {
  reports : report list;
  total_queries : int;
  p50_ms : float option;  (** worst per-construction p50 *)
  p99_ms : float option;  (** worst per-construction p99; the SLO gate *)
  p999_ms : float option;
  slo_breached : bool;
  dropped_in_budget : int;
  exit : Exit_code.t;
}

val run :
  build:
    (graph:string ->
    strategy:string ->
    seed:int ->
    (Construction.t, string) result) ->
  entries:Attack.Corpus.entry list ->
  config ->
  outcome
(** Groups [entries] by (graph, strategy, seed) — sorted by label for
    a deterministic report order — and soaks each group. [build] maps
    a corpus entry's spec back to a construction (the CLI's builder);
    a build failure or a stale entry ([n] mismatch) makes that group
    [infra] and the whole run exit {!Exit_code.Infra}. *)

val to_json : config -> outcome -> Sjson.t
(** The [slo.json] artifact: config echo, per-construction reports,
    aggregate percentiles and the exit verdict. *)
