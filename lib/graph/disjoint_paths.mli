(** Menger machinery: internally vertex-disjoint paths via node-split
    max-flow.

    Each undirected graph vertex [v] becomes two flow nodes [v_in] and
    [v_out] joined by a unit-capacity arc, so a unit of flow through a
    path uses each interior vertex at most once. This module underlies
    both connectivity computation and the tree routings of the paper's
    Lemma 2. *)

val st_paths : Graph.t -> src:int -> dst:int -> ?k:int -> unit -> Path.t list
(** [st_paths g ~src ~dst ()] is a maximum-size family of internally
    vertex-disjoint simple paths from [src] to [dst] ([src <> dst]).
    With [~k], at most [k] paths are returned (computation stops
    early). If [src] and [dst] are adjacent, one of the returned paths
    is the direct edge. *)

val st_connectivity : Graph.t -> src:int -> dst:int -> ?limit:int -> unit -> int
(** Size of a maximum family of internally vertex-disjoint [src]-[dst]
    paths, capped at [limit] if given. For adjacent vertices this
    counts the direct edge as one path. *)

val st_min_separator : Graph.t -> src:int -> dst:int -> int list
(** A minimum vertex set separating the two {e non-adjacent} vertices
    (Menger: its size equals [st_connectivity]). Raises
    [Invalid_argument] if the vertices are adjacent or equal. *)

val fan_to_set : Graph.t -> src:int -> targets:int list -> ?k:int -> unit -> Path.t list
(** [fan_to_set g ~src ~targets ()] is a maximum-size family of paths
    from [src] to {e distinct} vertices of [targets], vertex-disjoint
    except at [src], whose interior vertices avoid [targets] entirely.
    With [~k], at most [k] paths. [src] must not be a target. This is
    the flow form of the paper's tree routing (Lemma 2) {e before} the
    direct-edge normalisation. *)
