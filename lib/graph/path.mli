(** Simple paths in a graph, the raw material of routes.

    A path is a non-empty sequence of pairwise-distinct vertices in
    which consecutive vertices are adjacent in the underlying graph. A
    single-vertex path is permitted by the type but routes (see
    {!module:Ftr_core.Route}) always connect two distinct endpoints. *)

type t

val of_list : int list -> t
(** Raises [Invalid_argument] on the empty list or on repeated
    vertices. Adjacency is not checked here; see {!is_valid_in}. *)

val of_array : int array -> t

val to_list : t -> int list

val to_array : t -> int array
(** A fresh array. *)

val source : t -> int

val target : t -> int

val length : t -> int
(** Number of edges, i.e. [number of vertices - 1]. *)

val vertex_count : t -> int

val nth : t -> int -> int
(** [nth p i] is the [i]-th vertex, [0]-based from the source. *)

val mem : t -> int -> bool

val interior : t -> int list
(** Vertices other than source and target, in order. *)

val rev : t -> t

val concat : t -> t -> t
(** [concat p q] requires [target p = source q] and the concatenation
    to remain simple; raises [Invalid_argument] otherwise. *)

val is_valid_in : Graph.t -> t -> bool
(** True when every consecutive pair is an edge of the graph (the
    simplicity invariant already holds by construction). *)

val hits : t -> Bitset.t -> bool
(** [hits p s] is true when some vertex of [p] belongs to [s]. In the
    paper's terms: the route is {e affected} by the fault set [s]. *)

val edge : int -> int -> t
(** The two-vertex path [u; v]. *)

val equal : t -> t -> bool

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
