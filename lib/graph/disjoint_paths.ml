(* Node-splitting: graph vertex [v] becomes flow nodes [2v] (in-copy)
   and [2v+1] (out-copy). A unit arc 2v -> 2v+1 enforces that a vertex
   carries at most one path. *)

let in_node v = 2 * v
let out_node v = (2 * v) + 1

let build_st_network g ~src ~dst ~edge_cap =
  let n = Graph.n g in
  let net = Maxflow.create (2 * n) in
  for v = 0 to n - 1 do
    let cap = if v = src || v = dst then n else 1 in
    Maxflow.add_edge net ~src:(in_node v) ~dst:(out_node v) ~cap
  done;
  Graph.iter_edges
    (fun u v ->
      Maxflow.add_edge net ~src:(out_node u) ~dst:(in_node v) ~cap:edge_cap;
      Maxflow.add_edge net ~src:(out_node v) ~dst:(in_node u) ~cap:edge_cap)
    g;
  net

(* Walk unit flows out of [start], peeling one path per call. [flows]
   maps each edge index to its remaining unconsumed flow. *)
let peel_path net flows ~start ~stop ~vertex_of =
  let rec walk node acc =
    if node = stop then List.rev acc
    else
      let next =
        List.find_opt (fun (i, _, _) -> flows.(i) > 0) (Maxflow.out_edges net node)
      in
      match next with
      | None -> invalid_arg "Disjoint_paths: broken flow decomposition"
      | Some (i, dst, _) ->
          flows.(i) <- flows.(i) - 1;
          let acc = match vertex_of dst with Some v -> v :: acc | None -> acc in
          walk dst acc
  in
  walk start []

let st_paths g ~src ~dst ?k () =
  if src = dst then invalid_arg "Disjoint_paths.st_paths: src = dst";
  let n = Graph.n g in
  let net = build_st_network g ~src ~dst ~edge_cap:1 in
  let limit = match k with Some k -> k | None -> max_int in
  let value = Maxflow.max_flow net ~src:(out_node src) ~dst:(in_node dst) ~limit () in
  let edge_count = n + (2 * Graph.m g) in
  let flows = Array.init edge_count (Maxflow.flow_on net) in
  (* A flow node [2v] or [2v+1] maps back to vertex [v]; we record a
     vertex when traversing its in->out arc, plus the endpoints. *)
  let vertex_of node = if node land 1 = 1 then Some (node / 2) else None in
  List.init value (fun _ ->
      let vs = peel_path net flows ~start:(out_node src) ~stop:(in_node dst) ~vertex_of in
      Path.of_list ((src :: vs) @ [ dst ]))

let st_connectivity g ~src ~dst ?limit () =
  if src = dst then invalid_arg "Disjoint_paths.st_connectivity: src = dst";
  let net = build_st_network g ~src ~dst ~edge_cap:1 in
  let limit = Option.value limit ~default:max_int in
  Maxflow.max_flow net ~src:(out_node src) ~dst:(in_node dst) ~limit ()

let st_min_separator g ~src ~dst =
  if src = dst then invalid_arg "Disjoint_paths.st_min_separator: src = dst";
  if Graph.mem_edge g src dst then
    invalid_arg "Disjoint_paths.st_min_separator: adjacent vertices";
  let n = Graph.n g in
  (* Fat edge arcs force the minimum cut onto the unit in->out arcs,
     i.e. onto vertices. *)
  let net = build_st_network g ~src ~dst ~edge_cap:n in
  let _ = Maxflow.max_flow net ~src:(out_node src) ~dst:(in_node dst) () in
  let side = Maxflow.min_cut_side net ~src:(out_node src) in
  let cut = ref [] in
  for v = n - 1 downto 0 do
    if Bitset.mem side (in_node v) && not (Bitset.mem side (out_node v)) then
      cut := v :: !cut
  done;
  !cut

let fan_to_set g ~src ~targets ?k () =
  let n = Graph.n g in
  let targets = List.sort_uniq compare targets in
  if List.mem src targets then
    invalid_arg "Disjoint_paths.fan_to_set: src is a target";
  let is_target = Bitset.of_list n targets in
  let sink = 2 * n in
  let net = Maxflow.create ((2 * n) + 1) in
  (* Interior vertices get unit capacity; targets absorb flow into the
     sink and have no outgoing arcs, so path interiors avoid them. *)
  for v = 0 to n - 1 do
    if v <> src then
      if Bitset.mem is_target v then
        Maxflow.add_edge net ~src:(in_node v) ~dst:sink ~cap:1
      else Maxflow.add_edge net ~src:(in_node v) ~dst:(out_node v) ~cap:1
  done;
  Graph.iter_edges
    (fun u v ->
      let arc a b =
        (* No arcs into the source, none out of targets. *)
        if a <> src && b <> src && not (Bitset.mem is_target a) then
          Maxflow.add_edge net ~src:(out_node a) ~dst:(in_node b) ~cap:1
      in
      if u = src then Maxflow.add_edge net ~src:(out_node src) ~dst:(in_node v) ~cap:1
      else if v = src then Maxflow.add_edge net ~src:(out_node src) ~dst:(in_node u) ~cap:1
      else begin
        arc u v;
        arc v u
      end)
    g;
  let limit = match k with Some k -> k | None -> max_int in
  let value = Maxflow.max_flow net ~src:(out_node src) ~dst:sink ~limit () in
  (* Edge count is whatever was added; recover flows lazily by index. *)
  let edge_count =
    let c = ref 0 in
    for v = 0 to 2 * n do
      List.iter (fun _ -> incr c) (Maxflow.out_edges net v)
    done;
    !c
  in
  let flows = Array.init edge_count (Maxflow.flow_on net) in
  let vertex_of node =
    if node = sink then None
    else if node land 1 = 1 then Some (node / 2)
    else if Bitset.mem is_target (node / 2) then Some (node / 2)
    else None
  in
  List.init value (fun _ ->
      let vs = peel_path net flows ~start:(out_node src) ~stop:sink ~vertex_of in
      Path.of_list (src :: vs))
