(** Directed graphs on vertices [0 .. n-1].

    Surviving route graphs [R(G, rho)/F] are directed in general (a
    unidirectional routing may define a route from [x] to [y] and not
    the converse), so distance computations on them live here. *)

type t

val of_edges : n:int -> (int * int) list -> t
(** Duplicate arcs are collapsed; self-loops dropped. *)

(** Incremental construction. *)
module Builder : sig
  type digraph := t
  type t

  val create : int -> t
  val add_arc : t -> int -> int -> unit
  val to_digraph : t -> digraph
end

val n : t -> int

val arc_count : t -> int

val succ : t -> int -> int array
(** Out-neighbors, sorted; shared array, do not mutate. *)

val mem_arc : t -> int -> int -> bool

val is_symmetric : t -> bool
(** True when every arc has its reverse (the bidirectional-routing
    case, where the surviving graph is effectively undirected). *)

val bfs : t -> ?allowed:(int -> bool) -> int -> int array
(** [bfs t src] is the array of directed distances from [src]; [-1]
    marks unreachable vertices. [allowed] restricts the traversal
    (source included only if allowed). *)
