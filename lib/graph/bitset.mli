(** Dense bitsets over the integer range [0, capacity).

    Used throughout the library to represent fault sets, separator
    membership and "allowed vertex" predicates without allocation in the
    inner loops of BFS and surviving-graph construction. *)

type t

val create : int -> t
(** [create capacity] is an empty set able to hold elements in
    [0, capacity). *)

val capacity : t -> int
(** Maximal number of distinct elements (the [capacity] given at
    creation). *)

val mem : t -> int -> bool

val add : t -> int -> unit

val remove : t -> int -> unit

val unsafe_mem : t -> int -> bool
(** [mem] without the range check; an index outside [0, capacity) is
    undefined behaviour. For validated inner loops only. *)

val unsafe_add : t -> int -> unit
(** [add] without the range check; same contract as {!unsafe_mem}. *)

val unsafe_remove : t -> int -> unit
(** [remove] without the range check; same contract as {!unsafe_mem}. *)

val popcount : int -> int
(** Number of set bits of an arbitrary (possibly negative) native int,
    branch-free. *)

val lowest_bit_index : int -> int
(** Index of the least significant set bit; the argument must be
    non-zero. *)

val mask : int -> int
(** [mask k] is the word with the low [k] bits set ([-1] when
    [k = Sys.int_size]). Raises [Invalid_argument] outside
    [0, Sys.int_size]. *)

val clear : t -> unit
(** Remove every element. *)

val cardinal : t -> int

val is_empty : t -> bool

val copy : t -> t

val equal : t -> t -> bool
(** Set equality; capacities must match. *)

val subset : t -> t -> bool
(** [subset a b] is true when every element of [a] is in [b]. *)

val disjoint : t -> t -> bool

val union_into : t -> t -> unit
(** [union_into dst src] adds every element of [src] to [dst]. *)

val inter_into : t -> t -> unit
(** [inter_into dst src] removes from [dst] everything absent from
    [src]. *)

val diff_into : t -> t -> unit
(** [diff_into dst src] removes every element of [src] from [dst]. *)

val iter : (int -> unit) -> t -> unit
(** Iterate elements in increasing order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over elements in increasing order. *)

val elements : t -> int list
(** Elements in increasing order. *)

val of_list : int -> int list -> t
(** [of_list capacity xs] builds a set from [xs]; raises
    [Invalid_argument] on out-of-range elements. *)

val choose : t -> int option
(** Smallest element, if any. *)

val pp : Format.formatter -> t -> unit
