(** Maximum flow on directed networks with integer capacities (Dinic's
    algorithm).

    The library only ever needs small integral capacities (vertex
    connectivity, disjoint paths) but the implementation is a general
    blocking-flow Dinic. *)

type t

val create : int -> t
(** [create n] is an empty network on nodes [0 .. n-1]. *)

val add_edge : t -> src:int -> dst:int -> cap:int -> unit
(** Adds a directed edge; a residual reverse edge of capacity [0] is
    added automatically. Parallel edges are allowed. *)

val max_flow : t -> src:int -> dst:int -> ?limit:int -> unit -> int
(** Computes a maximum (or [limit]-capped) flow from [src] to [dst],
    mutating the network's residual capacities, and returns its value.
    Subsequent calls continue from the current residual state. *)

val flow_on : t -> int -> int
(** [flow_on t i] is the flow currently carried by the [i]-th added
    edge (edges are numbered in insertion order, starting at 0). *)

val min_cut_side : t -> src:int -> Bitset.t
(** After a max-flow computation, the set of nodes reachable from [src]
    in the residual network (the source side of a minimum cut). *)

val out_edges : t -> int -> (int * int * int) list
(** [out_edges t v] lists [(edge_index, dst, current_flow)] for the
    forward edges added out of [v]. *)
