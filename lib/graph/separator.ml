let to_set g m = Bitset.of_list (Graph.n g) m

let is_separator g m =
  let s = to_set g m in
  let n = Graph.n g in
  let remaining = n - Bitset.cardinal s in
  remaining >= 2 && not (Traversal.is_connected_excluding g s)

let separates g m x y =
  let s = to_set g m in
  if Bitset.mem s x || Bitset.mem s y then
    invalid_arg "Separator.separates: endpoint inside the separator";
  let allowed v = not (Bitset.mem s v) in
  Traversal.distance g ~allowed x y = None

let minimum = Connectivity.min_vertex_cut

let side_of g m x =
  let s = to_set g m in
  if Bitset.mem s x then invalid_arg "Separator.side_of: vertex inside separator";
  Traversal.component_of g ~allowed:(fun v -> not (Bitset.mem s v)) x
