let is_neighborhood_set g members =
  let distinct = List.length (List.sort_uniq compare members) = List.length members in
  distinct
  &&
  let rec pairs = function
    | [] -> true
    | x :: rest ->
        List.for_all
          (fun y ->
            match Traversal.distance g x y with
            | Some d -> d >= 3
            | None -> true)
          rest
        && pairs rest
  in
  pairs members

let greedy ?order g =
  let n = Graph.n g in
  let order = match order with Some o -> o | None -> List.init n Fun.id in
  let discarded = Bitset.create n in
  let members = ref [] in
  List.iter
    (fun v ->
      if not (Bitset.mem discarded v) then begin
        members := v :: !members;
        (* Remove the radius-2 ball around v from the candidate pool. *)
        Bitset.add discarded v;
        Array.iter
          (fun u ->
            Bitset.add discarded u;
            Array.iter (Bitset.add discarded) (Graph.neighbors g u))
          (Graph.neighbors g v)
      end)
    order;
  List.rev !members

let greedy_bound g =
  let n = Graph.n g in
  if n = 0 then 0
  else
    let d = Graph.max_degree g in
    (n + (d * d)) / ((d * d) + 1)

let shuffle rng a =
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done

let best_of ~rng ~tries g =
  let n = Graph.n g in
  let best = ref (greedy g) in
  for _ = 1 to tries do
    let order = Array.init n Fun.id in
    shuffle rng order;
    let candidate = greedy ~order:(Array.to_list order) g in
    if List.length candidate > List.length !best then best := candidate
  done;
  !best

let circular_threshold = 0.79
let tri_circular_threshold = 0.46
