type t = int array

let check_simple a =
  let seen = Hashtbl.create (Array.length a) in
  Array.iter
    (fun v ->
      if Hashtbl.mem seen v then
        invalid_arg (Printf.sprintf "Path: repeated vertex %d" v);
      Hashtbl.add seen v ())
    a

let of_array a =
  if Array.length a = 0 then invalid_arg "Path: empty";
  check_simple a;
  Array.copy a

let of_list l = of_array (Array.of_list l)
let to_list = Array.to_list
let to_array = Array.copy
let source p = p.(0)
let target p = p.(Array.length p - 1)
let length p = Array.length p - 1
let vertex_count = Array.length
let nth p i = p.(i)
let mem p v = Array.exists (fun x -> x = v) p

let interior p =
  let l = Array.length p in
  Array.to_list (Array.sub p 1 (max 0 (l - 2)))

let rev p =
  let l = Array.length p in
  Array.init l (fun i -> p.(l - 1 - i))

let concat p q =
  if target p <> source q then invalid_arg "Path.concat: endpoints differ";
  of_array (Array.append p (Array.sub q 1 (Array.length q - 1)))

let is_valid_in g p =
  let ok = ref true in
  for i = 0 to Array.length p - 2 do
    if not (Graph.mem_edge g p.(i) p.(i + 1)) then ok := false
  done;
  !ok

let hits p s = Array.exists (Bitset.mem s) p
let edge u v = of_array [| u; v |]
let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = compare a b
let pp ppf p = Fmt.pf ppf "%a" Fmt.(list ~sep:(any "->") int) (to_list p)
