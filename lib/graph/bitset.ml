type t = { words : int array; capacity : int }

let word_bits = Sys.int_size

let create capacity =
  if capacity < 0 then invalid_arg "Bitset.create: negative capacity";
  { words = Array.make ((capacity + word_bits - 1) / word_bits) 0; capacity }

let capacity t = t.capacity

let check t i =
  if i < 0 || i >= t.capacity then
    invalid_arg (Printf.sprintf "Bitset: element %d out of [0,%d)" i t.capacity)

let mem t i =
  check t i;
  t.words.(i / word_bits) land (1 lsl (i mod word_bits)) <> 0

let add t i =
  check t i;
  let w = i / word_bits in
  t.words.(w) <- t.words.(w) lor (1 lsl (i mod word_bits))

let remove t i =
  check t i;
  let w = i / word_bits in
  t.words.(w) <- t.words.(w) land lnot (1 lsl (i mod word_bits))

let clear t = Array.fill t.words 0 (Array.length t.words) 0

let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + 1) (x land (x - 1)) in
  go 0 x

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let copy t = { t with words = Array.copy t.words }

let same_capacity a b =
  if a.capacity <> b.capacity then invalid_arg "Bitset: capacity mismatch"

let equal a b =
  same_capacity a b;
  a.words = b.words

let subset a b =
  same_capacity a b;
  let ok = ref true in
  Array.iteri (fun i w -> if w land lnot b.words.(i) <> 0 then ok := false) a.words;
  !ok

let disjoint a b =
  same_capacity a b;
  let ok = ref true in
  Array.iteri (fun i w -> if w land b.words.(i) <> 0 then ok := false) a.words;
  !ok

let union_into dst src =
  same_capacity dst src;
  Array.iteri (fun i w -> dst.words.(i) <- dst.words.(i) lor w) src.words

let inter_into dst src =
  same_capacity dst src;
  Array.iteri (fun i w -> dst.words.(i) <- dst.words.(i) land w) src.words

let diff_into dst src =
  same_capacity dst src;
  Array.iteri (fun i w -> dst.words.(i) <- dst.words.(i) land lnot w) src.words

let iter f t =
  for w = 0 to Array.length t.words - 1 do
    let word = t.words.(w) in
    if word <> 0 then
      for b = 0 to word_bits - 1 do
        if word land (1 lsl b) <> 0 then f ((w * word_bits) + b)
      done
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let elements t = List.rev (fold (fun i acc -> i :: acc) t [])

let of_list capacity xs =
  let t = create capacity in
  List.iter (add t) xs;
  t

exception Found of int

let choose t =
  try
    iter (fun i -> raise (Found i)) t;
    None
  with Found i -> Some i

let pp ppf t =
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ",") int) (elements t)
