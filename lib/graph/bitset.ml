type t = { words : int array; capacity : int }

(* 32 elements per word (16 on 32-bit hosts): indexing compiles to a
   shift and a mask instead of division by the awkward constant 63,
   and every word fits the unboxed int with room to spare, so the
   SWAR popcount below needs no overflow care. *)
let log_word_bits = if Sys.int_size >= 33 then 5 else 4
let word_bits = 1 lsl log_word_bits
let index_mask = word_bits - 1

let create capacity =
  if capacity < 0 then invalid_arg "Bitset.create: negative capacity";
  { words = Array.make ((capacity + word_bits - 1) lsr log_word_bits) 0; capacity }

let capacity t = t.capacity

let check t i =
  if i < 0 || i >= t.capacity then
    invalid_arg (Printf.sprintf "Bitset: element %d out of [0,%d)" i t.capacity)

(* Unchecked variants for inner loops that have already validated the
   range (the surviving-diameter evaluator); out-of-range indices are
   undefined behaviour. *)

(* bounds: caller guarantees 0 <= i < capacity, so i lsr log_word_bits
   < (capacity + word_bits - 1) lsr log_word_bits = Array.length words. *)
let unsafe_mem t i =
  Array.unsafe_get t.words (i lsr log_word_bits) land (1 lsl (i land index_mask)) <> 0

(* bounds: caller guarantees 0 <= i < capacity (see unsafe_mem). *)
let unsafe_add t i =
  let w = i lsr log_word_bits in
  Array.unsafe_set t.words w (Array.unsafe_get t.words w lor (1 lsl (i land index_mask)))

(* bounds: caller guarantees 0 <= i < capacity (see unsafe_mem). *)
let unsafe_remove t i =
  let w = i lsr log_word_bits in
  Array.unsafe_set t.words w
    (Array.unsafe_get t.words w land lnot (1 lsl (i land index_mask)))

(* bounds: check validates 0 <= i < capacity before the unchecked read. *)
let mem t i =
  check t i;
  unsafe_mem t i

(* bounds: check validates 0 <= i < capacity before the unchecked write. *)
let add t i =
  check t i;
  unsafe_add t i

(* bounds: check validates 0 <= i < capacity before the unchecked write. *)
let remove t i =
  check t i;
  unsafe_remove t i

let clear t = Array.fill t.words 0 (Array.length t.words) 0

(* Branch-free SWAR popcount over the full native int width.  The wide
   masks must be assembled at runtime: the 63-bit literal
   0x5555555555555555 does not fit OCaml's int. *)
let repeat16 pat =
  let rec go acc k = if k >= Sys.int_size then acc else go ((acc lsl 16) lor pat) (k + 16) in
  go 0 0

let m1 = repeat16 0x5555
let m2 = repeat16 0x3333
let m4 = repeat16 0x0f0f

let popcount x =
  let x = x - ((x lsr 1) land m1) in
  let x = (x land m2) + ((x lsr 2) land m2) in
  let x = (x + (x lsr 4)) land m4 in
  let x = x + (x lsr 8) in
  let x = x + (x lsr 16) in
  let x = if Sys.int_size > 32 then x + (x lsr 32) else x in
  x land 0x7f

(* Index of the lowest set bit; [x] must be non-zero. *)
let lowest_bit_index x =
  let b = x land -x in
  popcount (b - 1)

(* The word with the low [k] bits set. [k = Sys.int_size] needs its own
   branch: [1 lsl Sys.int_size] is undefined, and the all-ones word is
   [-1] in two's complement. Used by the bit-sliced evaluator to mask
   its active lanes. *)
let mask k =
  if k < 0 || k > Sys.int_size then
    invalid_arg "Bitset.mask: width outside [0, Sys.int_size]";
  if k = Sys.int_size then -1 else (1 lsl k) - 1

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let copy t = { t with words = Array.copy t.words }

let same_capacity a b =
  if a.capacity <> b.capacity then invalid_arg "Bitset: capacity mismatch"

let equal a b =
  same_capacity a b;
  a.words = b.words

let subset a b =
  same_capacity a b;
  let ok = ref true in
  Array.iteri (fun i w -> if w land lnot b.words.(i) <> 0 then ok := false) a.words;
  !ok

let disjoint a b =
  same_capacity a b;
  let ok = ref true in
  Array.iteri (fun i w -> if w land b.words.(i) <> 0 then ok := false) a.words;
  !ok

let union_into dst src =
  same_capacity dst src;
  Array.iteri (fun i w -> dst.words.(i) <- dst.words.(i) lor w) src.words

let inter_into dst src =
  same_capacity dst src;
  Array.iteri (fun i w -> dst.words.(i) <- dst.words.(i) land w) src.words

let diff_into dst src =
  same_capacity dst src;
  Array.iteri (fun i w -> dst.words.(i) <- dst.words.(i) land lnot w) src.words

(* Word-skipping iteration: peel the lowest set bit until the word is
   exhausted, so sparse sets cost O(population), not O(capacity).
   bounds: the for-loop bound keeps w < Array.length words. *)
let iter f t =
  for w = 0 to Array.length t.words - 1 do
    let word = ref (Array.unsafe_get t.words w) in
    let base = w lsl log_word_bits in
    while !word <> 0 do
      f (base + lowest_bit_index !word);
      word := !word land (!word - 1)
    done
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let elements t = List.rev (fold (fun i acc -> i :: acc) t [])

let of_list capacity xs =
  let t = create capacity in
  List.iter (add t) xs;
  t

exception Found of int

let choose t =
  try
    iter (fun i -> raise (Found i)) t;
    None
  with Found i -> Some i

let pp ppf t =
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ",") int) (elements t)
