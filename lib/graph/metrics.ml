type distance = Finite of int | Infinite

let pp_distance ppf = function
  | Finite d -> Fmt.int ppf d
  | Infinite -> Fmt.string ppf "inf"

let distance_le a b =
  match (a, b) with
  | Finite x, Finite y -> x <= y
  | Finite _, Infinite -> true
  | Infinite, Infinite -> true
  | Infinite, Finite _ -> false

let max_distance a b = if distance_le a b then b else a

let eccentricity g v =
  let dist = Traversal.bfs g v in
  let worst = ref 0 in
  let unreachable = ref false in
  Array.iter
    (fun d -> if d < 0 then unreachable := true else worst := max !worst d)
    dist;
  if !unreachable then Infinite else Finite !worst

let diameter g =
  if Graph.n g <= 1 then Finite 0
  else
    Graph.fold_vertices
      (fun v acc -> max_distance acc (eccentricity g v))
      g (Finite 0)

let radius g =
  if Graph.n g <= 1 then Finite 0
  else
    Graph.fold_vertices
      (fun v acc -> if distance_le (eccentricity g v) acc then eccentricity g v else acc)
      g Infinite

(* Girth by the classic all-roots BFS: for every root, every non-tree
   edge (u, w) closes a cycle of length dist(u) + dist(w) + 1 through the
   root's BFS tree. A single root can overestimate the shortest cycle,
   but the minimum over all roots is exact. *)
let girth g =
  let best = ref max_int in
  Graph.iter_vertices
    (fun root ->
      let dist, parent = Traversal.bfs_parents g root in
      Graph.iter_edges
        (fun u w ->
          if dist.(u) >= 0 && dist.(w) >= 0 && parent.(u) <> w && parent.(w) <> u
          then best := min !best (dist.(u) + dist.(w) + 1))
        g)
    g;
  if !best = max_int then None else Some !best

let average_degree g =
  if Graph.n g = 0 then 0.0
  else 2.0 *. float_of_int (Graph.m g) /. float_of_int (Graph.n g)

let degree_histogram g =
  let tbl = Hashtbl.create 16 in
  Graph.iter_vertices
    (fun v ->
      let d = Graph.degree g v in
      Hashtbl.replace tbl d (1 + Option.value ~default:0 (Hashtbl.find_opt tbl d)))
    g;
  List.sort
    (fun (d1, c1) (d2, c2) ->
      let c = Int.compare d1 d2 in
      if c <> 0 then c else Int.compare c1 c2)
    (Hashtbl.fold (fun d c acc -> (d, c) :: acc) tbl [])
