type t = { n : int; succ : int array array; arcs : int }

let check_vertex n v =
  if v < 0 || v >= n then
    invalid_arg (Printf.sprintf "Digraph: vertex %d out of [0,%d)" v n)

let of_edges ~n edges =
  let lists = Array.make n [] in
  List.iter
    (fun (u, v) ->
      check_vertex n u;
      check_vertex n v;
      if u <> v then lists.(u) <- v :: lists.(u))
    edges;
  let succ = Array.map (fun l -> Array.of_list (List.sort_uniq compare l)) lists in
  let arcs = Array.fold_left (fun acc a -> acc + Array.length a) 0 succ in
  { n; succ; arcs }

module Builder = struct
  type t = { n : int; mutable acc : (int * int) list }

  let create n = { n; acc = [] }

  let add_arc t u v =
    check_vertex t.n u;
    check_vertex t.n v;
    if u <> v then t.acc <- (u, v) :: t.acc

  let to_digraph t = of_edges ~n:t.n t.acc
end

let n t = t.n
let arc_count t = t.arcs

let succ t v =
  check_vertex t.n v;
  t.succ.(v)

let mem_arc t u v =
  let a = succ t u in
  let rec search lo hi =
    if lo >= hi then false
    else
      let mid = (lo + hi) / 2 in
      if a.(mid) = v then true
      else if a.(mid) < v then search (mid + 1) hi
      else search lo mid
  in
  check_vertex t.n v;
  search 0 (Array.length a)

let is_symmetric t =
  let ok = ref true in
  for u = 0 to t.n - 1 do
    Array.iter (fun v -> if not (mem_arc t v u) then ok := false) t.succ.(u)
  done;
  !ok

let bfs t ?(allowed = fun _ -> true) src =
  check_vertex t.n src;
  let dist = Array.make t.n (-1) in
  if allowed src then begin
    let q = Queue.create () in
    dist.(src) <- 0;
    Queue.push src q;
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      Array.iter
        (fun v ->
          if dist.(v) < 0 && allowed v then begin
            dist.(v) <- dist.(u) + 1;
            Queue.push v q
          end)
        t.succ.(u)
    done
  end;
  dist
