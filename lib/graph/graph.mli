(** Immutable undirected graphs on vertices [0 .. n-1].

    This is the underlying-network model of the paper: a finite,
    simple, undirected graph [G = (V, E)]. Adjacency lists are stored as
    sorted arrays, so membership tests are logarithmic and neighbor
    iteration is cache-friendly. *)

type t

(** {1 Construction} *)

val of_edges : n:int -> (int * int) list -> t
(** [of_edges ~n edges] builds the graph with vertex set [0 .. n-1] and
    the given edge list. Self-loops are dropped and duplicate edges (in
    either orientation) are collapsed. Raises [Invalid_argument] if an
    endpoint is out of range. *)

val empty : int -> t
(** [empty n] has [n] vertices and no edges. *)

val of_adj_lists : int -> int list array -> t
(** [of_adj_lists n lists] adopts the adjacency lists directly (each
    list is sorted and deduplicated; [n] is taken from the array
    length). Unlike {!of_edges}, symmetry is trusted, not checked: if
    [u] lists [v] but not vice versa, [mem_edge] disagrees with
    {!edges} and downstream consumers (notably [Surviving.compile])
    reject the graph. Prefer {!of_edges} or {!Builder} unless you are
    deliberately constructing such an inconsistency (tests do). *)

val of_sorted_adj : int array array -> t
(** [of_sorted_adj adj] adopts already-sorted adjacency rows without
    copying — the allocation-light constructor for the large structured
    families (a 2{^20}-vertex de Bruijn graph builds without an
    intermediate edge list). Every row must be strictly increasing,
    in-range, and self-loop free ([Invalid_argument] otherwise); like
    {!of_adj_lists}, symmetry is trusted. The rows are shared: do not
    mutate them after construction. *)

(** Incremental construction. *)
module Builder : sig
  type graph := t
  type t

  val create : int -> t
  val add_edge : t -> int -> int -> unit
  (** Idempotent; self-loops are ignored. *)

  val to_graph : t -> graph
end

(** {1 Accessors} *)

val n : t -> int
(** Number of vertices. *)

val m : t -> int
(** Number of edges. *)

val neighbors : t -> int -> int array
(** Sorted array of neighbors. The returned array is shared: do not
    mutate it. *)

val degree : t -> int -> int

val mem_edge : t -> int -> int -> bool

val iter_edges : (int -> int -> unit) -> t -> unit
(** Each undirected edge [(u, v)] with [u < v] is visited once. *)

val fold_edges : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a

val edges : t -> (int * int) list
(** All edges as [(u, v)] with [u < v], lexicographically sorted. *)

val iter_vertices : (int -> unit) -> t -> unit

val fold_vertices : (int -> 'a -> 'a) -> t -> 'a -> 'a

val max_degree : t -> int

val min_degree : t -> int
(** Minimum degree; [0] for the empty graph on zero vertices. *)

(** {1 Compressed sparse rows}

    A flat two-array adjacency view: neighbors of [v] occupy
    [targets.(offsets.(v)) .. targets.(offsets.(v+1) - 1)], sorted.
    This is what the traversal and compile paths iterate at scale — no
    per-vertex array headers, no pointer chasing, one contiguous
    [targets] array for the whole graph. *)
module Csr : sig
  type t

  val n : t -> int
  (** Number of vertices. *)

  val arcs : t -> int
  (** Number of directed arcs, i.e. [2 * m] for a symmetric graph. *)

  val degree : t -> int -> int

  val offsets : t -> int array
  (** Length [n + 1]. Shared internal array — do not mutate. *)

  val targets : t -> int array
  (** Length [arcs] (at least 1). Shared internal array — do not
      mutate. *)

  val iter_neighbors : t -> int -> (int -> unit) -> unit

  val fold_neighbors : t -> int -> ('a -> int -> 'a) -> 'a -> 'a

  val mem_edge : t -> int -> int -> bool
  (** Binary search within the row of the first vertex; no bounds
      checks beyond array accesses, callers pass in-range vertices. *)

  val bfs : t -> int -> int array
  (** Distance array from the source; [-1] marks unreachable. *)

  val bfs_tree : t -> int -> int array * int array
  (** [(dist, parent)] from the source; [-1] marks unreachable /
      rootless. *)

  val bfs_into : t -> dist:int array -> queue:int array -> int -> unit
  (** Scratch-reusing BFS: fills [dist] (length [n], overwritten with
      [-1] first) using [queue] (length at least [n]) — the inner loop
      for repeated single-source sweeps without per-call allocation. *)

  val bytes : t -> int
  (** Approximate heap footprint of the view in bytes. *)
end

val csr : t -> Csr.t
(** The CSR view of the graph, built on first use and cached (the
    graph is immutable, so the view never goes stale; concurrent first
    calls may redundantly compute equal views, which is benign). *)

(** {1 Derived graphs} *)

val remove_vertices : t -> Bitset.t -> t
(** [remove_vertices g s] keeps the vertex numbering but deletes every
    vertex in [s] together with its incident edges (deleted vertices
    become isolated). *)

val add_edges : t -> (int * int) list -> t
(** Functional edge addition (used by the Section 6 network
    augmentation). *)

val induced : t -> int list -> t * int array
(** [induced g vs] is the subgraph induced by [vs] with vertices
    renumbered [0 .. length vs - 1], plus the map from new index to
    original vertex. *)

val complement : t -> t

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
