let buffer_add_vertices buf ~label ~attrs n =
  for v = 0 to n - 1 do
    let extra = attrs v in
    Buffer.add_string buf
      (Printf.sprintf "  %d [label=\"%s\"%s];\n" v (label v) extra)
  done

let of_graph ?(name = "G") ?(label = string_of_int) ?(highlight = []) g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "graph %s {\n" name);
  Buffer.add_string buf "  node [shape=circle fontsize=10];\n";
  let hi = Bitset.of_list (Graph.n g) highlight in
  buffer_add_vertices buf ~label
    ~attrs:(fun v ->
      if Bitset.mem hi v then " style=filled fillcolor=gold" else "")
    (Graph.n g);
  Graph.iter_edges (fun u v -> Buffer.add_string buf (Printf.sprintf "  %d -- %d;\n" u v)) g;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let of_digraph ?(name = "G") ?(label = string_of_int) dg =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  Buffer.add_string buf "  node [shape=circle fontsize=10];\n";
  buffer_add_vertices buf ~label ~attrs:(fun _ -> "") (Digraph.n dg);
  for u = 0 to Digraph.n dg - 1 do
    Array.iter
      (fun v -> Buffer.add_string buf (Printf.sprintf "  %d -> %d;\n" u v))
      (Digraph.succ dg u)
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let palette =
  [| "gold"; "skyblue"; "palegreen"; "salmon"; "plum"; "khaki"; "orange";
     "turquoise"; "pink"; "lightgray" |]

let with_colored_groups ?(name = "G") ?(label = string_of_int) ~groups g =
  let n = Graph.n g in
  let color = Array.make n None in
  let legend = Buffer.create 128 in
  List.iteri
    (fun i (gname, vs) ->
      let c = palette.(i mod Array.length palette) in
      Buffer.add_string legend (Printf.sprintf "  // %s: %s\n" c gname);
      List.iter (fun v -> if v >= 0 && v < n then color.(v) <- Some c) vs)
    groups;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "graph %s {\n" name);
  Buffer.add_buffer buf legend;
  Buffer.add_string buf "  node [shape=circle fontsize=10];\n";
  buffer_add_vertices buf ~label
    ~attrs:(fun v ->
      match color.(v) with
      | Some c -> Printf.sprintf " style=filled fillcolor=%s" c
      | None -> "")
    n;
  Graph.iter_edges (fun u v -> Buffer.add_string buf (Printf.sprintf "  %d -- %d;\n" u v)) g;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
