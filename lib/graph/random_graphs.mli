(** Random graph models (Section 5 works in [G(n,p)]).

    All generators take an explicit PRNG state, so every experiment is
    reproducible from its seed. *)

val gnp : rng:Random.State.t -> int -> float -> Graph.t
(** Erdos-Renyi [G(n,p)]: each of the [n(n-1)/2] potential edges is
    present independently with probability [p]. *)

val gnm : rng:Random.State.t -> int -> int -> Graph.t
(** Uniform graph with exactly [m] distinct edges
    ([m <= n(n-1)/2]). *)

val regular : rng:Random.State.t -> int -> int -> Graph.t
(** Random [d]-regular graph by the pairing model, retried until
    simple. Requires [n * d] even, [d < n]. May be slow for large [d];
    intended for the small degrees the paper cares about. *)

val connected_gnp :
  rng:Random.State.t -> ?max_tries:int -> int -> float -> Graph.t option
(** First connected [G(n,p)] sample among [max_tries] (default 100). *)

val sample_k_connected :
  rng:Random.State.t -> ?max_tries:int -> int -> float -> k:int -> Graph.t option
(** First sample with vertex connectivity at least [k]. *)
