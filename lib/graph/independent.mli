(** Neighborhood sets (Section 4 of the paper).

    A neighborhood set is an independent set [M] whose members have
    pairwise-disjoint neighbor sets — equivalently, a set of vertices
    at pairwise distance at least 3. The greedy algorithm of Lemma 15
    guarantees [|M| >= ceil(n / (d^2 + 1))] for maximal degree [d]. *)

val is_neighborhood_set : Graph.t -> int list -> bool
(** Pairwise distance at least 3 (members distinct). *)

val greedy : ?order:int list -> Graph.t -> int list
(** The greedy construction of Lemma 15: scan candidates in [order]
    (default [0 .. n-1]), add a vertex, discard its radius-2 ball.
    The result is a maximal neighborhood set. *)

val greedy_bound : Graph.t -> int
(** The Lemma 15 lower bound [ceil(n / (d^2 + 1))] (with [d] the
    maximal degree), which {!greedy} always meets. *)

val best_of : rng:Random.State.t -> tries:int -> Graph.t -> int list
(** Randomized-restart greedy: the largest set found over [tries]
    random candidate orders (plus the default order). *)

val circular_threshold : float
(** [0.79]: Corollary 17 guarantees a circular routing whenever the
    maximal degree is below [0.79 * n^(1/3)]. *)

val tri_circular_threshold : float
(** [0.46]: same for the tri-circular routing. *)
