(** Separating sets (Section 3 of the paper).

    A separating set [M] is a vertex set whose removal splits [G] into
    at least two non-empty parts. The kernel construction needs a
    minimal one (size [t + 1] in a [(t+1)]-connected graph). *)

val is_separator : Graph.t -> int list -> bool
(** Does removing the set disconnect the remaining (non-empty)
    graph? *)

val separates : Graph.t -> int list -> int -> int -> bool
(** [separates g m x y]: are [x] and [y] (both outside [m]) in
    different components of [G - m]? *)

val minimum : Graph.t -> int list option
(** A minimum separating set ([None] for complete graphs). In a
    [(t+1)]-connected non-complete graph the result has exactly [t+1]
    vertices. *)

val side_of : Graph.t -> int list -> int -> Bitset.t
(** [side_of g m x] is the component of [x] in [G - m]; [x] must lie
    outside [m]. *)
