(** Breadth-first and depth-first traversal of undirected graphs. *)

val bfs : Graph.t -> ?allowed:(int -> bool) -> int -> int array
(** [bfs g src] is the array of distances from [src] in [g]; [-1] marks
    unreachable vertices. [allowed] restricts the traversal to a vertex
    subset (if [allowed src] is false, every distance is [-1]). *)

val bfs_parents : Graph.t -> ?allowed:(int -> bool) -> int -> int array * int array
(** [(dist, parent)] where [parent.(v)] is the BFS-tree predecessor of
    [v] ([-1] for the source and unreachable vertices). *)

val shortest_path : Graph.t -> ?allowed:(int -> bool) -> int -> int -> Path.t option
(** A shortest path between two vertices, if one exists within the
    allowed subset. *)

val distance : Graph.t -> ?allowed:(int -> bool) -> int -> int -> int option

val component_of : Graph.t -> ?allowed:(int -> bool) -> int -> Bitset.t
(** Vertices reachable from the given source (itself included when
    allowed). *)

val components : Graph.t -> int list list
(** Connected components, each sorted, ordered by smallest member. *)

val is_connected : Graph.t -> bool
(** True for graphs with at most one vertex, and for connected
    graphs. *)

val is_connected_excluding : Graph.t -> Bitset.t -> bool
(** [is_connected_excluding g s]: is [G - s] connected? True when
    [G - s] has at most one vertex. *)

val dfs_order : Graph.t -> int -> int list
(** Preorder of the DFS from the given root (its component only). *)
