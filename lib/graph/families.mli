(** Deterministic graph families.

    Includes the interconnection networks the paper names as carriers
    of its properties — the hypercube and its bounded-degree
    realisations (cube-connected cycles, wrapped butterfly; cf. Ullman
    1984) — plus standard small families used in tests and
    experiments. *)

val path_graph : int -> Graph.t
(** [n >= 1] vertices in a line. *)

val cycle : int -> Graph.t
(** [n >= 3]. Connectivity 2. *)

val complete : int -> Graph.t

val complete_bipartite : int -> int -> Graph.t

val star : int -> Graph.t
(** [star n]: one hub (vertex 0) and [n - 1] leaves. *)

val wheel : int -> Graph.t
(** [wheel n], [n >= 4]: hub 0 plus a cycle on the rest. *)

val grid : int -> int -> Graph.t
(** [grid rows cols]; vertex [(r, c)] is [r * cols + c].
    Connectivity 2 (for both dims >= 2). *)

val torus : int -> int -> Graph.t
(** Wrap-around grid; both dimensions must be [>= 3]. Connectivity 4. *)

val torus3 : int -> int -> int -> Graph.t
(** 3-dimensional torus, all dimensions [>= 3]. Connectivity 6. *)

val hypercube : int -> Graph.t
(** [hypercube d]: [2^d] vertices, connectivity [d]. Accepts
    [1 <= d <= 20] (a million-vertex cube builds directly into sorted
    adjacency rows). *)

val ccc : int -> Graph.t
(** Cube-connected cycles of dimension [d >= 3]: [d * 2^d] vertices,
    vertex [(i, x)] is [x * d + i]. Connectivity 3. *)

val butterfly : int -> Graph.t
(** Wrapped butterfly of dimension [d >= 3]: [d * 2^d] vertices,
    vertex [(level i, row x)] is [x * d + i]; straight and cross edges
    to level [i+1 mod d]. Connectivity 4. *)

val de_bruijn : int -> Graph.t
(** Undirected binary de Bruijn graph on [2^d] vertices: [x] is
    adjacent to [2x mod n] and [2x + 1 mod n]. Accepts
    [2 <= d <= 24] — the bounded-degree family used for the
    million-node compact-routing runs. *)

val shuffle_exchange : int -> Graph.t
(** Shuffle-exchange graph on [2^d] vertices, [d >= 2] (the "d-way
    shuffle" family the paper mentions): exchange edges
    [x -- x lxor 1] and shuffle edges [x -- rotate-left_d(x)]
    (self-loops at the all-zero/all-one words are dropped, leaving
    those two vertices with degree 1). *)

val petersen : unit -> Graph.t
(** The Petersen graph: 10 vertices, 3-regular, girth 5. *)

val circulant : int -> int list -> Graph.t
(** [circulant n offsets] connects [v] to [v +- o mod n] for each
    offset. *)
