type t = { n : int; adj : int array array; m : int }

let check_vertex n v =
  if v < 0 || v >= n then
    invalid_arg (Printf.sprintf "Graph: vertex %d out of [0,%d)" v n)

let of_adj_lists n lists =
  let adj =
    Array.map
      (fun l ->
        let a = Array.of_list (List.sort_uniq compare l) in
        a)
      lists
  in
  ignore n;
  let m = Array.fold_left (fun acc a -> acc + Array.length a) 0 adj / 2 in
  { n = Array.length adj; adj; m }

let of_edges ~n edges =
  let lists = Array.make n [] in
  List.iter
    (fun (u, v) ->
      check_vertex n u;
      check_vertex n v;
      if u <> v then begin
        lists.(u) <- v :: lists.(u);
        lists.(v) <- u :: lists.(v)
      end)
    edges;
  of_adj_lists n lists

let empty n = { n; adj = Array.make n [||]; m = 0 }

module Builder = struct
  type t = { n : int; mutable acc : (int * int) list }

  let create n = { n; acc = [] }

  let add_edge t u v =
    check_vertex t.n u;
    check_vertex t.n v;
    if u <> v then t.acc <- (u, v) :: t.acc

  let to_graph t = of_edges ~n:t.n t.acc
end

let n t = t.n
let m t = t.m

let neighbors t v =
  check_vertex t.n v;
  t.adj.(v)

let degree t v = Array.length (neighbors t v)

let mem_edge t u v =
  check_vertex t.n u;
  check_vertex t.n v;
  let a = t.adj.(u) in
  let rec search lo hi =
    if lo >= hi then false
    else
      let mid = (lo + hi) / 2 in
      if a.(mid) = v then true
      else if a.(mid) < v then search (mid + 1) hi
      else search lo mid
  in
  search 0 (Array.length a)

let iter_edges f t =
  for u = 0 to t.n - 1 do
    Array.iter (fun v -> if u < v then f u v) t.adj.(u)
  done

let fold_edges f t init =
  let acc = ref init in
  iter_edges (fun u v -> acc := f u v !acc) t;
  !acc

let edges t = List.rev (fold_edges (fun u v acc -> (u, v) :: acc) t [])

let iter_vertices f t =
  for v = 0 to t.n - 1 do
    f v
  done

let fold_vertices f t init =
  let acc = ref init in
  iter_vertices (fun v -> acc := f v !acc) t;
  !acc

let max_degree t = fold_vertices (fun v acc -> max acc (degree t v)) t 0

let min_degree t =
  if t.n = 0 then 0
  else fold_vertices (fun v acc -> min acc (degree t v)) t max_int

let remove_vertices t s =
  let adj =
    Array.mapi
      (fun u nbrs ->
        if Bitset.mem s u then [||]
        else Array.of_list (List.filter (fun v -> not (Bitset.mem s v)) (Array.to_list nbrs)))
      t.adj
  in
  let m = Array.fold_left (fun acc a -> acc + Array.length a) 0 adj / 2 in
  { n = t.n; adj; m }

let add_edges t extra = of_edges ~n:t.n (extra @ edges t)

let induced t vs =
  let vs = List.sort_uniq compare vs in
  List.iter (check_vertex t.n) vs;
  let map = Array.of_list vs in
  let inv = Array.make t.n (-1) in
  Array.iteri (fun i v -> inv.(v) <- i) map;
  let edges =
    fold_edges
      (fun u v acc ->
        if inv.(u) >= 0 && inv.(v) >= 0 then (inv.(u), inv.(v)) :: acc else acc)
      t []
  in
  (of_edges ~n:(Array.length map) edges, map)

let complement t =
  let b = Builder.create t.n in
  for u = 0 to t.n - 1 do
    for v = u + 1 to t.n - 1 do
      if not (mem_edge t u v) then Builder.add_edge b u v
    done
  done;
  Builder.to_graph b

let equal a b = a.n = b.n && a.adj = b.adj

let pp ppf t =
  Fmt.pf ppf "@[<v>graph n=%d m=%d@,%a@]" t.n t.m
    Fmt.(list ~sep:sp (pair ~sep:(any "-") int int))
    (edges t)
