type csr = { off : int array; targets : int array }

type t = {
  n : int;
  adj : int array array;
  m : int;
  mutable csr_cache : csr option;
}

let check_vertex n v =
  if v < 0 || v >= n then
    invalid_arg (Printf.sprintf "Graph: vertex %d out of [0,%d)" v n)

let make n adj m = { n; adj; m; csr_cache = None }

let of_adj_lists n lists =
  let adj =
    Array.map
      (fun l ->
        let a = Array.of_list (List.sort_uniq compare l) in
        a)
      lists
  in
  ignore n;
  let m = Array.fold_left (fun acc a -> acc + Array.length a) 0 adj / 2 in
  make (Array.length adj) adj m

let of_sorted_adj adj =
  let n = Array.length adj in
  Array.iteri
    (fun u row ->
      let deg = Array.length row in
      for i = 0 to deg - 1 do
        let v = row.(i) in
        check_vertex n v;
        if v = u then
          invalid_arg (Printf.sprintf "Graph.of_sorted_adj: self-loop at %d" u);
        if i > 0 && row.(i - 1) >= v then
          invalid_arg
            (Printf.sprintf "Graph.of_sorted_adj: row %d not strictly sorted" u)
      done)
    adj;
  let m = Array.fold_left (fun acc a -> acc + Array.length a) 0 adj / 2 in
  make n adj m

let of_edges ~n edges =
  let lists = Array.make n [] in
  List.iter
    (fun (u, v) ->
      check_vertex n u;
      check_vertex n v;
      if u <> v then begin
        lists.(u) <- v :: lists.(u);
        lists.(v) <- u :: lists.(v)
      end)
    edges;
  of_adj_lists n lists

let empty n = make n (Array.make n [||]) 0

module Builder = struct
  type t = { n : int; mutable acc : (int * int) list }

  let create n = { n; acc = [] }

  let add_edge t u v =
    check_vertex t.n u;
    check_vertex t.n v;
    if u <> v then t.acc <- (u, v) :: t.acc

  let to_graph t = of_edges ~n:t.n t.acc
end

let n t = t.n
let m t = t.m

let neighbors t v =
  check_vertex t.n v;
  t.adj.(v)

let degree t v = Array.length (neighbors t v)

let mem_edge t u v =
  check_vertex t.n u;
  check_vertex t.n v;
  let a = t.adj.(u) in
  let rec search lo hi =
    if lo >= hi then false
    else
      let mid = (lo + hi) / 2 in
      if a.(mid) = v then true
      else if a.(mid) < v then search (mid + 1) hi
      else search lo mid
  in
  search 0 (Array.length a)

module Csr = struct
  type t = csr

  let of_adj adj =
    let n = Array.length adj in
    let off = Array.make (n + 1) 0 in
    for v = 0 to n - 1 do
      off.(v + 1) <- off.(v) + Array.length adj.(v)
    done;
    let targets = Array.make (max 1 off.(n)) 0 in
    for v = 0 to n - 1 do
      Array.blit adj.(v) 0 targets off.(v) (Array.length adj.(v))
    done;
    { off; targets }

  let n t = Array.length t.off - 1
  let arcs t = t.off.(n t)
  let degree t v = t.off.(v + 1) - t.off.(v)
  let offsets t = t.off
  let targets t = t.targets

  let iter_neighbors t v f =
    for i = t.off.(v) to t.off.(v + 1) - 1 do
      f t.targets.(i)
    done

  let fold_neighbors t v f init =
    let acc = ref init in
    iter_neighbors t v (fun w -> acc := f !acc w);
    !acc

  let mem_edge t u v =
    let lo = ref t.off.(u) and hi = ref t.off.(u + 1) in
    let found = ref false in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      let w = t.targets.(mid) in
      if w = v then begin
        found := true;
        lo := !hi
      end
      else if w < v then lo := mid + 1
      else hi := mid
    done;
    !found

  let bytes t =
    (Array.length t.off + Array.length t.targets + 4) * (Sys.word_size / 8)

  let bfs_into t ~dist ~queue src =
    Array.fill dist 0 (Array.length dist) (-1);
    dist.(src) <- 0;
    queue.(0) <- src;
    let head = ref 0 and tail = ref 1 in
    while !head < !tail do
      let u = queue.(!head) in
      incr head;
      let du = dist.(u) in
      for i = t.off.(u) to t.off.(u + 1) - 1 do
        let v = t.targets.(i) in
        if dist.(v) < 0 then begin
          dist.(v) <- du + 1;
          queue.(!tail) <- v;
          incr tail
        end
      done
    done

  let bfs t src =
    let n = n t in
    let dist = Array.make n (-1) in
    let queue = Array.make (max 1 n) 0 in
    bfs_into t ~dist ~queue src;
    dist

  let bfs_tree t src =
    let n = n t in
    let dist = Array.make n (-1) in
    let parent = Array.make n (-1) in
    let queue = Array.make (max 1 n) 0 in
    dist.(src) <- 0;
    queue.(0) <- src;
    let head = ref 0 and tail = ref 1 in
    while !head < !tail do
      let u = queue.(!head) in
      incr head;
      let du = dist.(u) in
      for i = t.off.(u) to t.off.(u + 1) - 1 do
        let v = t.targets.(i) in
        if dist.(v) < 0 then begin
          dist.(v) <- du + 1;
          parent.(v) <- u;
          queue.(!tail) <- v;
          incr tail
        end
      done
    done;
    (dist, parent)
end

let csr t =
  match t.csr_cache with
  | Some c -> c
  | None ->
      (* Benign race under domains: the view is immutable and derived
         solely from [adj], so concurrent initializers compute equal
         values and the last single-word store wins. *)
      let c = Csr.of_adj t.adj in
      t.csr_cache <- Some c;
      c

let iter_edges f t =
  for u = 0 to t.n - 1 do
    Array.iter (fun v -> if u < v then f u v) t.adj.(u)
  done

let fold_edges f t init =
  let acc = ref init in
  iter_edges (fun u v -> acc := f u v !acc) t;
  !acc

let edges t = List.rev (fold_edges (fun u v acc -> (u, v) :: acc) t [])

let iter_vertices f t =
  for v = 0 to t.n - 1 do
    f v
  done

let fold_vertices f t init =
  let acc = ref init in
  iter_vertices (fun v -> acc := f v !acc) t;
  !acc

let max_degree t = fold_vertices (fun v acc -> max acc (degree t v)) t 0

let min_degree t =
  if t.n = 0 then 0
  else fold_vertices (fun v acc -> min acc (degree t v)) t max_int

let remove_vertices t s =
  let adj =
    Array.mapi
      (fun u nbrs ->
        if Bitset.mem s u then [||]
        else Array.of_list (List.filter (fun v -> not (Bitset.mem s v)) (Array.to_list nbrs)))
      t.adj
  in
  let m = Array.fold_left (fun acc a -> acc + Array.length a) 0 adj / 2 in
  make t.n adj m

let add_edges t extra = of_edges ~n:t.n (extra @ edges t)

let induced t vs =
  let vs = List.sort_uniq compare vs in
  List.iter (check_vertex t.n) vs;
  let map = Array.of_list vs in
  let inv = Array.make t.n (-1) in
  Array.iteri (fun i v -> inv.(v) <- i) map;
  let edges =
    fold_edges
      (fun u v acc ->
        if inv.(u) >= 0 && inv.(v) >= 0 then (inv.(u), inv.(v)) :: acc else acc)
      t []
  in
  (of_edges ~n:(Array.length map) edges, map)

let complement t =
  let b = Builder.create t.n in
  for u = 0 to t.n - 1 do
    for v = u + 1 to t.n - 1 do
      if not (mem_edge t u v) then Builder.add_edge b u v
    done
  done;
  Builder.to_graph b

let equal a b = a.n = b.n && a.adj = b.adj

let pp ppf t =
  Fmt.pf ppf "@[<v>graph n=%d m=%d@,%a@]" t.n t.m
    Fmt.(list ~sep:sp (pair ~sep:(any "-") int int))
    (edges t)
