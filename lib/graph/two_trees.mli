(** The two-trees property (Section 5 of the paper).

    Two roots [r1, r2] have the two-trees property when the sets
    [M1 = Gamma(r1)], [M2 = Gamma(r2)], [Gamma(x) - {r1}] for every
    [x] in [M1] and [Gamma(x) - {r2}] for every [x] in [M2] are {e all}
    pairwise disjoint — their depth-2 neighborhoods form two disjoint
    trees.

    Fidelity note (see DESIGN.md): the paper's prose asks for roots at
    distance at least 4 that lie on no 3- or 4-cycle; the formal
    set-disjointness additionally excludes a common fringe neighbor,
    which forces distance at least 5. [verify] implements the formal
    definition; [holds_weak] the prose one (used in the Lemma 24
    probability sweep, whose "bad events" use [dist < 4]). *)

val root_ok : Graph.t -> int -> bool
(** No 3- or 4-cycle passes through the vertex: its neighbors are
    pairwise non-adjacent and share no common neighbor besides the
    vertex itself. *)

val verify : Graph.t -> int -> int -> bool
(** Formal two-trees check for a candidate root pair (the pairwise
    disjointness of all the depth-2 sets). *)

val holds_weak : Graph.t -> int -> int -> bool
(** [root_ok] for both vertices and [dist >= 4] (the paper's prose
    version). *)

val find : Graph.t -> (int * int) option
(** First root pair (lexicographic) satisfying {!verify}, if any. *)

val find_weak : Graph.t -> (int * int) option
