let root_ok g r =
  let nbrs = Graph.neighbors g r in
  let k = Array.length nbrs in
  let ok = ref true in
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      let x = nbrs.(i) and y = nbrs.(j) in
      if Graph.mem_edge g x y then ok := false (* 3-cycle through r *)
      else
        (* A common neighbor z <> r closes a 4-cycle r-x-z-y-r. *)
        Array.iter
          (fun z -> if z <> r && Graph.mem_edge g y z then ok := false)
          (Graph.neighbors g x)
    done
  done;
  !ok

(* The depth-2 family of a root: Gamma(r) and, for each x in Gamma(r),
   Gamma(x) - {r}. *)
let depth2_sets g r =
  let m = Array.to_list (Graph.neighbors g r) in
  m
  :: List.map
       (fun x -> List.filter (fun v -> v <> r) (Array.to_list (Graph.neighbors g x)))
       m

let verify g r1 r2 =
  r1 <> r2
  && (not (Graph.mem_edge g r1 r2))
  &&
  let sets = depth2_sets g r1 @ depth2_sets g r2 in
  let n = Graph.n g in
  let seen = Bitset.create n in
  let disjoint = ref true in
  List.iter
    (fun set ->
      List.iter
        (fun v ->
          if Bitset.mem seen v then disjoint := false else Bitset.add seen v)
        set)
    sets;
  (* The roots themselves must not appear in any fringe set either:
     r2 in Gamma(x) for x in M1 would mean dist(r1, r2) = 2. *)
  !disjoint && (not (Bitset.mem seen r1)) && not (Bitset.mem seen r2)

let holds_weak g r1 r2 =
  r1 <> r2
  && root_ok g r1
  && root_ok g r2
  && match Traversal.distance g r1 r2 with Some d -> d >= 4 | None -> true

let generic_find check g =
  let n = Graph.n g in
  let candidates = List.filter (root_ok g) (List.init n Fun.id) in
  let rec scan = function
    | [] -> None
    | r1 :: rest -> (
        match List.find_opt (fun r2 -> check g r1 r2) rest with
        | Some r2 -> Some (r1, r2)
        | None -> scan rest)
  in
  scan candidates

let find g = generic_find verify g
let find_weak g = generic_find holds_weak g
