type t = {
  n : int;
  mutable eto : int array;
  mutable ecap : int array;
  mutable eorig : int array;
  mutable count : int; (* arcs stored; forward/reverse pairs, so even *)
  adj : int list array; (* arc indices leaving each node *)
}

let create n =
  {
    n;
    eto = Array.make 16 0;
    ecap = Array.make 16 0;
    eorig = Array.make 16 0;
    count = 0;
    adj = Array.make n [];
  }

let check_node t v =
  if v < 0 || v >= t.n then
    invalid_arg (Printf.sprintf "Maxflow: node %d out of [0,%d)" v t.n)

let grow t =
  let cap = Array.length t.eto in
  if t.count + 2 > cap then begin
    let cap' = 2 * cap in
    let extend a = Array.append a (Array.make cap' 0) in
    t.eto <- extend t.eto;
    t.ecap <- extend t.ecap;
    t.eorig <- extend t.eorig
  end

let add_arc t src dst cap =
  grow t;
  let i = t.count in
  t.eto.(i) <- dst;
  t.ecap.(i) <- cap;
  t.eorig.(i) <- cap;
  t.adj.(src) <- i :: t.adj.(src);
  t.count <- t.count + 1

let add_edge t ~src ~dst ~cap =
  check_node t src;
  check_node t dst;
  if cap < 0 then invalid_arg "Maxflow.add_edge: negative capacity";
  add_arc t src dst cap;
  add_arc t dst src 0

let bfs_levels t src dst =
  let level = Array.make t.n (-1) in
  let q = Queue.create () in
  level.(src) <- 0;
  Queue.push src q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun a ->
        let v = t.eto.(a) in
        if t.ecap.(a) > 0 && level.(v) < 0 then begin
          level.(v) <- level.(u) + 1;
          Queue.push v q
        end)
      t.adj.(u)
  done;
  if level.(dst) < 0 then None else Some level

let max_flow t ~src ~dst ?(limit = max_int) () =
  check_node t src;
  check_node t dst;
  if src = dst then invalid_arg "Maxflow.max_flow: src = dst";
  let total = ref 0 in
  let continue_phases = ref true in
  while !continue_phases && !total < limit do
    match bfs_levels t src dst with
    | None -> continue_phases := false
    | Some level ->
        let it = Array.map (fun l -> ref l) t.adj in
        let rec dfs u pushed =
          if u = dst then pushed
          else begin
            let sent = ref 0 in
            let rec advance () =
              match !(it.(u)) with
              | [] -> ()
              | a :: rest ->
                  let v = t.eto.(a) in
                  if t.ecap.(a) > 0 && level.(v) = level.(u) + 1 then begin
                    let d = dfs v (min pushed t.ecap.(a)) in
                    if d > 0 then begin
                      t.ecap.(a) <- t.ecap.(a) - d;
                      t.ecap.(a lxor 1) <- t.ecap.(a lxor 1) + d;
                      sent := d
                    end
                    else begin
                      it.(u) := rest;
                      advance ()
                    end
                  end
                  else begin
                    it.(u) := rest;
                    advance ()
                  end
            in
            advance ();
            !sent
          end
        in
        let rec push () =
          if !total < limit then begin
            let d = dfs src (limit - !total) in
            if d > 0 then begin
              total := !total + d;
              push ()
            end
          end
        in
        push ()
  done;
  !total

let flow_on t i =
  let a = 2 * i in
  if a < 0 || a >= t.count then invalid_arg "Maxflow.flow_on: bad edge index";
  t.eorig.(a) - t.ecap.(a)

let min_cut_side t ~src =
  check_node t src;
  let side = Bitset.create t.n in
  let q = Queue.create () in
  Bitset.add side src;
  Queue.push src q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun a ->
        let v = t.eto.(a) in
        if t.ecap.(a) > 0 && not (Bitset.mem side v) then begin
          Bitset.add side v;
          Queue.push v q
        end)
      t.adj.(u)
  done;
  side

let out_edges t v =
  check_node t v;
  List.filter_map
    (fun a ->
      if a land 1 = 0 then Some (a / 2, t.eto.(a), t.eorig.(a) - t.ecap.(a))
      else None)
    t.adj.(v)
