let require cond msg = if not cond then invalid_arg msg

let path_graph n =
  require (n >= 1) "Families.path_graph: n >= 1";
  Graph.of_edges ~n (List.init (n - 1) (fun i -> (i, i + 1)))

let cycle n =
  require (n >= 3) "Families.cycle: n >= 3";
  Graph.of_edges ~n (List.init n (fun i -> (i, (i + 1) mod n)))

let complete n =
  let b = Graph.Builder.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      Graph.Builder.add_edge b u v
    done
  done;
  Graph.Builder.to_graph b

let complete_bipartite a b =
  require (a >= 1 && b >= 1) "Families.complete_bipartite: sides >= 1";
  let bl = Graph.Builder.create (a + b) in
  for u = 0 to a - 1 do
    for v = a to a + b - 1 do
      Graph.Builder.add_edge bl u v
    done
  done;
  Graph.Builder.to_graph bl

let star n =
  require (n >= 1) "Families.star: n >= 1";
  Graph.of_edges ~n (List.init (n - 1) (fun i -> (0, i + 1)))

let wheel n =
  require (n >= 4) "Families.wheel: n >= 4";
  let rim = n - 1 in
  let edges =
    List.init rim (fun i -> (1 + i, 1 + ((i + 1) mod rim)))
    @ List.init rim (fun i -> (0, 1 + i))
  in
  Graph.of_edges ~n edges

let grid rows cols =
  require (rows >= 1 && cols >= 1) "Families.grid: dims >= 1";
  let id r c = (r * cols) + c in
  let b = Graph.Builder.create (rows * cols) in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then Graph.Builder.add_edge b (id r c) (id r (c + 1));
      if r + 1 < rows then Graph.Builder.add_edge b (id r c) (id (r + 1) c)
    done
  done;
  Graph.Builder.to_graph b

let torus rows cols =
  require (rows >= 3 && cols >= 3) "Families.torus: dims >= 3";
  let id r c = (r * cols) + c in
  let b = Graph.Builder.create (rows * cols) in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      Graph.Builder.add_edge b (id r c) (id r ((c + 1) mod cols));
      Graph.Builder.add_edge b (id r c) (id ((r + 1) mod rows) c)
    done
  done;
  Graph.Builder.to_graph b

let torus3 da db dc =
  require (da >= 3 && db >= 3 && dc >= 3) "Families.torus3: dims >= 3";
  let id a bb c = (((a * db) + bb) * dc) + c in
  let b = Graph.Builder.create (da * db * dc) in
  for a = 0 to da - 1 do
    for bb = 0 to db - 1 do
      for c = 0 to dc - 1 do
        Graph.Builder.add_edge b (id a bb c) (id ((a + 1) mod da) bb c);
        Graph.Builder.add_edge b (id a bb c) (id a ((bb + 1) mod db) c);
        Graph.Builder.add_edge b (id a bb c) (id a bb ((c + 1) mod dc))
      done
    done
  done;
  Graph.Builder.to_graph b

(* Direct adjacency-row constructor: sorts, dedupes and drops self-loops
   from a small candidate array, exactly what [of_edges] would produce
   but without materialising an edge list — the large structured
   families build at 10^6 vertices without an O(m) tuple intermediate. *)
let row_of_candidates x cands =
  Array.sort Int.compare cands;
  let k = Array.length cands in
  let count = ref 0 in
  for i = 0 to k - 1 do
    if cands.(i) <> x && (i = 0 || cands.(i) <> cands.(i - 1)) then incr count
  done;
  let row = Array.make !count 0 in
  let j = ref 0 in
  for i = 0 to k - 1 do
    if cands.(i) <> x && (i = 0 || cands.(i) <> cands.(i - 1)) then begin
      row.(!j) <- cands.(i);
      incr j
    end
  done;
  row

let hypercube d =
  require (d >= 1) "Families.hypercube: d >= 1";
  require (d <= 20) "Families.hypercube: d too large";
  let n = 1 lsl d in
  Graph.of_sorted_adj
    (Array.init n (fun x ->
         row_of_candidates x (Array.init d (fun i -> x lxor (1 lsl i)))))

let ccc d =
  require (d >= 3) "Families.ccc: d >= 3";
  require (d < 20) "Families.ccc: d too large";
  let rows = 1 lsl d in
  (* vertex (i, x) is x * d + i: cycle edges to (i +- 1 mod d, x) and the
     hypercube edge to (i, x lxor 2^i) *)
  Graph.of_sorted_adj
    (Array.init (d * rows) (fun id ->
         let i = id mod d and x = id / d in
         row_of_candidates id
           [|
             (x * d) + ((i + 1) mod d);
             (x * d) + ((i + d - 1) mod d);
             ((x lxor (1 lsl i)) * d) + i;
           |]))

let butterfly d =
  require (d >= 3) "Families.butterfly: d >= 3";
  require (d < 20) "Families.butterfly: d too large";
  let rows = 1 lsl d in
  let id i x = (x * d) + i in
  let b = Graph.Builder.create (d * rows) in
  for x = 0 to rows - 1 do
    for i = 0 to d - 1 do
      let i' = (i + 1) mod d in
      (* straight edge and cross edge into the next level *)
      Graph.Builder.add_edge b (id i x) (id i' x);
      Graph.Builder.add_edge b (id i x) (id i' (x lxor (1 lsl i')))
    done
  done;
  Graph.Builder.to_graph b

let de_bruijn d =
  require (d >= 2) "Families.de_bruijn: d >= 2";
  require (d <= 24) "Families.de_bruijn: d too large";
  let n = 1 lsl d in
  let half = n lsr 1 in
  (* successors 2x + b mod n plus predecessors y with 2y + b = x mod n,
     i.e. y in { x >> 1, (x >> 1) + n/2 } *)
  Graph.of_sorted_adj
    (Array.init n (fun x ->
         row_of_candidates x
           [|
             (2 * x) land (n - 1);
             ((2 * x) + 1) land (n - 1);
             x lsr 1;
             (x lsr 1) + half;
           |]))

let shuffle_exchange d =
  require (d >= 2) "Families.shuffle_exchange: d >= 2";
  require (d < 20) "Families.shuffle_exchange: d too large";
  let n = 1 lsl d in
  let rotate_left x = ((x lsl 1) land (n - 1)) lor (x lsr (d - 1)) in
  let b = Graph.Builder.create n in
  for x = 0 to n - 1 do
    Graph.Builder.add_edge b x (x lxor 1);
    Graph.Builder.add_edge b x (rotate_left x)
  done;
  Graph.Builder.to_graph b

let petersen () =
  (* Outer 5-cycle 0..4, inner pentagram 5..9, spokes i -- i+5. *)
  let edges =
    List.init 5 (fun i -> (i, (i + 1) mod 5))
    @ List.init 5 (fun i -> (5 + i, 5 + ((i + 2) mod 5)))
    @ List.init 5 (fun i -> (i, i + 5))
  in
  Graph.of_edges ~n:10 edges

let circulant n offsets =
  require (n >= 1) "Families.circulant: n >= 1";
  let b = Graph.Builder.create n in
  List.iter
    (fun o ->
      let o = ((o mod n) + n) mod n in
      if o <> 0 then
        for v = 0 to n - 1 do
          Graph.Builder.add_edge b v ((v + o) mod n)
        done)
    offsets;
  Graph.Builder.to_graph b
