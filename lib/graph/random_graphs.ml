let gnp ~rng n p =
  if p < 0.0 || p > 1.0 then invalid_arg "Random_graphs.gnp: p outside [0,1]";
  let b = Graph.Builder.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Random.State.float rng 1.0 < p then Graph.Builder.add_edge b u v
    done
  done;
  Graph.Builder.to_graph b

let gnm ~rng n m =
  let total = n * (n - 1) / 2 in
  if m < 0 || m > total then invalid_arg "Random_graphs.gnm: bad edge count";
  let chosen = Hashtbl.create (2 * m) in
  let edges = ref [] in
  while Hashtbl.length chosen < m do
    let u = Random.State.int rng n and v = Random.State.int rng n in
    let e = (min u v, max u v) in
    if u <> v && not (Hashtbl.mem chosen e) then begin
      Hashtbl.add chosen e ();
      edges := e :: !edges
    end
  done;
  Graph.of_edges ~n !edges

(* Pairing (configuration) model: d stubs per vertex, random perfect
   matching on stubs, retry on self-loops or multi-edges. *)
let regular ~rng n d =
  if d < 0 || d >= n then invalid_arg "Random_graphs.regular: need 0 <= d < n";
  if n * d mod 2 = 1 then invalid_arg "Random_graphs.regular: n * d must be even";
  let stubs = Array.init (n * d) (fun i -> i / d) in
  let attempt () =
    for i = Array.length stubs - 1 downto 1 do
      let j = Random.State.int rng (i + 1) in
      let t = stubs.(i) in
      stubs.(i) <- stubs.(j);
      stubs.(j) <- t
    done;
    let seen = Hashtbl.create (n * d) in
    let rec pair i acc =
      if i >= Array.length stubs then Some acc
      else
        let u = stubs.(i) and v = stubs.(i + 1) in
        let e = (min u v, max u v) in
        if u = v || Hashtbl.mem seen e then None
        else begin
          Hashtbl.add seen e ();
          pair (i + 2) (e :: acc)
        end
    in
    pair 0 []
  in
  let rec retry k =
    if k = 0 then failwith "Random_graphs.regular: too many retries"
    else match attempt () with Some edges -> edges | None -> retry (k - 1)
  in
  Graph.of_edges ~n (retry 10_000)

let first_sample ~max_tries sample accept =
  let rec go k =
    if k = 0 then None
    else
      let g = sample () in
      if accept g then Some g else go (k - 1)
  in
  go max_tries

let connected_gnp ~rng ?(max_tries = 100) n p =
  first_sample ~max_tries (fun () -> gnp ~rng n p) Traversal.is_connected

let sample_k_connected ~rng ?(max_tries = 100) n p ~k =
  first_sample ~max_tries (fun () -> gnp ~rng n p) (fun g -> Connectivity.is_k_connected g k)
