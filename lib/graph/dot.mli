(** Graphviz DOT export, used to regenerate the paper's Figures 1-3
    (the routing-structure diagrams). *)

val of_graph :
  ?name:string ->
  ?label:(int -> string) ->
  ?highlight:int list ->
  Graph.t ->
  string
(** Undirected DOT rendering. [highlight] vertices are filled. *)

val of_digraph : ?name:string -> ?label:(int -> string) -> Digraph.t -> string

val with_colored_groups :
  ?name:string ->
  ?label:(int -> string) ->
  groups:(string * int list) list ->
  Graph.t ->
  string
(** Like {!of_graph} but each named group of vertices gets its own
    color (cycling through a fixed palette); used to show concentrator
    structure (the sets [M], [Gamma_i], the bipolar roots...). *)
