let bfs_parents g ?(allowed = fun _ -> true) src =
  let n = Graph.n g in
  let dist = Array.make n (-1) in
  let parent = Array.make n (-1) in
  if allowed src then begin
    let csr = Graph.csr g in
    let off = Graph.Csr.offsets csr and tgt = Graph.Csr.targets csr in
    let queue = Array.make (max 1 n) 0 in
    dist.(src) <- 0;
    queue.(0) <- src;
    let head = ref 0 and tail = ref 1 in
    while !head < !tail do
      let u = queue.(!head) in
      incr head;
      let du = dist.(u) in
      for i = off.(u) to off.(u + 1) - 1 do
        let v = tgt.(i) in
        if dist.(v) < 0 && allowed v then begin
          dist.(v) <- du + 1;
          parent.(v) <- u;
          queue.(!tail) <- v;
          incr tail
        end
      done
    done
  end;
  (dist, parent)

let bfs g ?allowed src = fst (bfs_parents g ?allowed src)

let shortest_path g ?allowed src dst =
  let dist, parent = bfs_parents g ?allowed src in
  if dist.(dst) < 0 then None
  else begin
    let rec walk v acc = if v = src then v :: acc else walk parent.(v) (v :: acc) in
    Some (Path.of_list (walk dst []))
  end

let distance g ?allowed src dst =
  let dist = bfs g ?allowed src in
  if dist.(dst) < 0 then None else Some dist.(dst)

let component_of g ?allowed src =
  let dist = bfs g ?allowed src in
  let s = Bitset.create (Graph.n g) in
  Array.iteri (fun v d -> if d >= 0 then Bitset.add s v) dist;
  s

let components g =
  let n = Graph.n g in
  let seen = Bitset.create n in
  let comps = ref [] in
  for v = 0 to n - 1 do
    if not (Bitset.mem seen v) then begin
      let c = component_of g v in
      Bitset.union_into seen c;
      comps := Bitset.elements c :: !comps
    end
  done;
  List.rev !comps

let is_connected g =
  Graph.n g <= 1 || Array.for_all (fun d -> d >= 0) (bfs g 0)

let is_connected_excluding g s =
  let n = Graph.n g in
  let allowed v = not (Bitset.mem s v) in
  let rec first v = if v >= n then None else if allowed v then Some v else first (v + 1) in
  match first 0 with
  | None -> true
  | Some src ->
      let dist = bfs g ~allowed src in
      let ok = ref true in
      for v = 0 to n - 1 do
        if allowed v && dist.(v) < 0 then ok := false
      done;
      !ok

let dfs_order g root =
  let n = Graph.n g in
  let seen = Bitset.create n in
  let order = ref [] in
  let rec go v =
    if not (Bitset.mem seen v) then begin
      Bitset.add seen v;
      order := v :: !order;
      Array.iter go (Graph.neighbors g v)
    end
  in
  go root;
  List.rev !order
