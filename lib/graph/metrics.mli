(** Global graph metrics: diameter, radius, girth, degree statistics. *)

type distance = Finite of int | Infinite

val pp_distance : Format.formatter -> distance -> unit

val distance_le : distance -> distance -> bool
(** Order with [Infinite] as top. *)

val max_distance : distance -> distance -> distance

val eccentricity : Graph.t -> int -> distance
(** Greatest distance from the vertex to any other vertex; [Infinite]
    if some vertex is unreachable. For a 1-vertex graph this is
    [Finite 0]. *)

val diameter : Graph.t -> distance
(** [Finite 0] for graphs with at most one vertex. *)

val radius : Graph.t -> distance

val girth : Graph.t -> int option
(** Length of a shortest cycle, [None] for forests. *)

val average_degree : Graph.t -> float

val degree_histogram : Graph.t -> (int * int) list
(** [(degree, count)] pairs, sorted by degree. *)
