let is_complete g =
  let n = Graph.n g in
  Graph.m g = n * (n - 1) / 2

(* Candidate pairs per Even: (s, t) for every t non-adjacent to s, and
   (u, t) for every neighbor u of s and t non-adjacent to u. [s] is
   chosen with minimum degree so the initial upper bound is tight. *)
let candidate_pairs g =
  let n = Graph.n g in
  let s =
    Graph.fold_vertices
      (fun v best -> if Graph.degree g v < Graph.degree g best then v else best)
      g 0
  in
  let pairs_from u =
    let nbrs = Graph.neighbors g u in
    let adjacent = Bitset.create n in
    Array.iter (Bitset.add adjacent) nbrs;
    Bitset.add adjacent u;
    List.filter_map
      (fun t -> if Bitset.mem adjacent t then None else Some (u, t))
      (List.init n Fun.id)
  in
  List.concat_map pairs_from (s :: Array.to_list (Graph.neighbors g s))

let vertex_connectivity g =
  let n = Graph.n g in
  if n <= 1 then max 0 (n - 1)
  else if not (Traversal.is_connected g) then 0
  else if is_complete g then n - 1
  else begin
    let best = ref (Graph.min_degree g) in
    List.iter
      (fun (u, t) ->
        if !best > 0 then
          let k = Disjoint_paths.st_connectivity g ~src:u ~dst:t ~limit:!best () in
          if k < !best then best := k)
      (candidate_pairs g);
    !best
  end

let is_k_connected g k =
  let n = Graph.n g in
  if k <= 0 then true
  else if n < k + 1 then false
  else if Graph.min_degree g < k then false
  else if not (Traversal.is_connected g) then false
  else if is_complete g then true
  else
    List.for_all
      (fun (u, t) -> Disjoint_paths.st_connectivity g ~src:u ~dst:t ~limit:k () >= k)
      (candidate_pairs g)

let edge_connectivity g =
  let n = Graph.n g in
  if n <= 1 then 0
  else if not (Traversal.is_connected g) then 0
  else begin
    (* lambda = min over t <> s of the s-t edge-disjoint path count;
       each undirected edge becomes a pair of antiparallel unit arcs. *)
    let flow_net () =
      let net = Maxflow.create n in
      Graph.iter_edges
        (fun u v ->
          Maxflow.add_edge net ~src:u ~dst:v ~cap:1;
          Maxflow.add_edge net ~src:v ~dst:u ~cap:1)
        g;
      net
    in
    let best = ref (Graph.min_degree g) in
    for t = 1 to n - 1 do
      if !best > 0 then begin
        let net = flow_net () in
        let f = Maxflow.max_flow net ~src:0 ~dst:t ~limit:!best () in
        if f < !best then best := f
      end
    done;
    !best
  end

(* Tarjan lowpoint DFS shared by articulation points and bridges. *)
let lowpoint_scan g ~on_articulation ~on_bridge =
  let n = Graph.n g in
  let disc = Array.make n (-1) in
  let low = Array.make n 0 in
  let time = ref 0 in
  let rec dfs parent v =
    disc.(v) <- !time;
    low.(v) <- !time;
    incr time;
    let children = ref 0 in
    let v_cuts = ref false in
    Array.iter
      (fun w ->
        if disc.(w) < 0 then begin
          incr children;
          dfs v w;
          low.(v) <- min low.(v) low.(w);
          if low.(w) > disc.(v) then on_bridge (min v w) (max v w);
          if parent >= 0 && low.(w) >= disc.(v) then v_cuts := true
        end
        else if w <> parent then low.(v) <- min low.(v) disc.(w))
      (Graph.neighbors g v);
    if (parent < 0 && !children >= 2) || (parent >= 0 && !v_cuts) then
      on_articulation v
  in
  for v = 0 to n - 1 do
    if disc.(v) < 0 then dfs (-1) v
  done

let articulation_points g =
  let acc = ref [] in
  lowpoint_scan g ~on_articulation:(fun v -> acc := v :: !acc) ~on_bridge:(fun _ _ -> ());
  List.sort_uniq compare !acc

let bridges g =
  let acc = ref [] in
  lowpoint_scan g ~on_articulation:(fun _ -> ()) ~on_bridge:(fun u v -> acc := (u, v) :: !acc);
  List.sort_uniq compare !acc

let min_vertex_cut g =
  let n = Graph.n g in
  if n <= 1 then None
  else if not (Traversal.is_connected g) then Some []
  else if is_complete g then None
  else begin
    let best = ref (Graph.min_degree g) in
    let best_pair = ref None in
    List.iter
      (fun (u, t) ->
        let k = Disjoint_paths.st_connectivity g ~src:u ~dst:t ~limit:(!best + 1) () in
        if k <= !best then begin
          best := k;
          best_pair := Some (u, t)
        end)
      (candidate_pairs g);
    match !best_pair with
    | Some (u, t) -> Some (Disjoint_paths.st_min_separator g ~src:u ~dst:t)
    | None ->
        (* Every candidate flow exceeded the minimum degree, impossible
           for a non-complete connected graph. *)
        assert false
  end
