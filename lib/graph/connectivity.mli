(** Vertex connectivity.

    The paper's standing assumption is a network of node-connectivity
    [t + 1]; every construction takes [t] from here. The computation is
    the classical reduction to max-flow over a small set of vertex
    pairs (Even): for a minimum cut [C], either a fixed vertex [s] lies
    outside [C] (then some pair [(s, t)] with [t] non-adjacent realises
    [|C|]) or [s] is in [C] and one of its neighbors does. *)

val vertex_connectivity : Graph.t -> int
(** [kappa(G)]. Conventions: [0] for disconnected graphs and for
    graphs with fewer than two vertices is [max 0 (n-1)]; [n - 1] for
    complete graphs. *)

val is_k_connected : Graph.t -> int -> bool
(** [is_k_connected g k] iff [kappa(g) >= k]; cheaper than computing
    the exact connectivity because every flow is capped at [k]. *)

val min_vertex_cut : Graph.t -> int list option
(** A minimum vertex separator: [None] for complete graphs (none
    exists), [Some []] for disconnected graphs, otherwise [Some c] with
    [List.length c = vertex_connectivity g]. *)

val edge_connectivity : Graph.t -> int
(** [lambda(G)]: minimum number of edges whose removal disconnects the
    graph. [0] for disconnected graphs and graphs with fewer than two
    vertices. Always [kappa <= lambda <= min degree] (Whitney). *)

val articulation_points : Graph.t -> int list
(** Vertices whose removal increases the number of components
    (Tarjan's lowpoint algorithm), sorted. A connected graph is
    2-connected iff this is empty and [n >= 3]. *)

val bridges : Graph.t -> (int * int) list
(** Edges whose removal disconnects their component, as [(u, v)] with
    [u < v], sorted. *)
