(** Zero-dependency observability: named monotonic counters, gauges
    and timing spans, with a deterministic JSON sink.

    The whole layer is process-global and cheap enough to leave
    compiled into the hot paths: every recording call starts with one
    atomic load of the enabled flag and is a no-op when disabled.
    Enabling costs a sharded atomic add per counter event, so the
    engine can run fully instrumented without serialising its domains
    on a single cache line.

    {b The determinism rule.} Counters are reserved for quantities
    that are a function of the work requested, never of how the
    scheduler interleaved it: the same command with the same seed must
    produce byte-identical {!counters_json} output for every [--jobs]
    value. Quantities that legitimately depend on scheduling (pool
    utilisation, per-domain task spreads, wall-clock) go into gauges
    and spans, which the determinism comparison excludes. *)

type counter
(** A named monotonic integer counter. Counters are registered once
    (at module initialisation time in the instrumented libraries) and
    persist for the life of the process; {!reset} zeroes their values
    but never unregisters them, so the set of emitted names is stable
    across runs. *)

type gauge
(** A named float cell for scheduling-dependent measurements
    (last-write or accumulate semantics; excluded from the
    deterministic counter output). *)

(** {1 Global switches} *)

val set_enabled : bool -> unit
(** Turn recording on or off (default: off). Safe to call from any
    domain; recording calls in flight on other domains may straddle
    the transition. *)

val enabled : unit -> bool

val set_trace : bool -> unit
(** When tracing is on (and recording is enabled), every completed
    {!with_span} also prints one human-readable line to [stderr]. *)

(** {1 Counters} *)

val counter : string -> counter
(** [counter name] registers (or retrieves) the counter called
    [name]. Idempotent and thread-safe; intended for top-level
    [let c = Obs.counter "engine.foo"] bindings. *)

val add : counter -> int -> unit
(** Add to a counter. No-op when disabled. Safe from any domain: each
    domain lands on its own shard, and shard totals commute. *)

val incr : counter -> unit

val value : counter -> int
(** Sum of all shards. Exact once the recording domains are
    quiescent. *)

(** {1 Gauges} *)

val gauge : string -> gauge
val set_gauge : gauge -> float -> unit
val add_gauge : gauge -> float -> unit
val max_gauge : gauge -> float -> unit

(** {1 Spans} *)

val with_span : string -> (unit -> 'a) -> 'a
(** [with_span name f] times [f ()] and accumulates the duration under
    [name] — count and total are aggregated, not stored per event.
    When disabled this is exactly [f ()]. Exceptions propagate; the
    span still records. The wall clock is not monotonic: if a clock
    step makes the measured duration negative it is clamped to zero
    (see {!record_span}), so span totals never decrease. *)

val record_span : string -> float -> unit
(** [record_span name seconds] folds one already-measured duration
    into [name]'s span aggregate — for callers that time work
    themselves (the serve daemon records per-request latencies this
    way). No-op when disabled. Negative durations (the non-monotonic
    wall clock stepped mid-measurement) are clamped to zero and each
    clamp is tallied on the ["obs.spans_clamped"] gauge — a gauge,
    not a counter, because clock steps are environment events and
    must stay out of the deterministic counter output. *)

(** {1 Reading and serialising} *)

val reset : unit -> unit
(** Zero every counter and gauge and drop all span aggregates.
    Registrations survive, so a later run emits the same counter
    names. *)

val counters : unit -> (string * int) list
(** All registered counters with their values, sorted by name. *)

val gauges : unit -> (string * float) list

val spans : unit -> (string * int * float) list
(** [(name, count, total_seconds)], sorted by name. *)

val counters_json : unit -> string
(** The deterministic subset only: one JSON object mapping counter
    name to value, keys sorted. This is the string the jobs-
    independence tests compare byte-for-byte. *)

val to_json : unit -> string
(** The full metrics document:
    {v
    { "schema": "ftr-metrics/1",
      "counters": { "attack.evals": 1234, ... },
      "gauges": { "par.pool_size": 7.0, ... },
      "spans": { "tolerance.certify": { "count": 2, "total_ms": 41.7 }, ... } }
    v}
    Counters are deterministic across [--jobs]; gauges and spans are
    not and must be excluded from any determinism comparison. *)

val write_file : string -> unit
(** Write {!to_json} to a file (truncating). *)
