(* Process-global observability registry.

   Counters are sharded over a small fixed array of atomics indexed by
   the recording domain's id, so concurrent domains do not serialise
   on one cache line; the read side sums the shards. Integer addition
   commutes, so shard totals — and therefore the emitted counter
   values — do not depend on which domain recorded which event. That
   is what keeps counter output identical for every [--jobs] value
   provided the instrumented quantities themselves are
   schedule-independent (the library's documented contract).

   Spans and gauges are allowed to be schedule-dependent, so they take
   the simple route: a mutex-protected hashtable of aggregates. Span
   recording happens once per completed span, never inside a hot
   loop, so the mutex is uncontended in practice. *)

let shard_count = 8 (* power of two; domains hash by id *)

type counter = int Atomic.t array
type gauge = float Atomic.t

let enabled_flag = Atomic.make false
let trace_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag
let set_trace b = Atomic.set trace_flag b

let registry_mutex = Mutex.create ()

let locked f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

let counters_tbl : (string, counter) Hashtbl.t = Hashtbl.create 64
let gauges_tbl : (string, gauge) Hashtbl.t = Hashtbl.create 16

type span_cell = { mutable s_count : int; mutable s_total : float }

let spans_tbl : (string, span_cell) Hashtbl.t = Hashtbl.create 16

let counter name =
  locked (fun () ->
      match Hashtbl.find_opt counters_tbl name with
      | Some c -> c
      | None ->
          let c = Array.init shard_count (fun _ -> Atomic.make 0) in
          Hashtbl.add counters_tbl name c;
          c)

let shard () = (Domain.self () :> int) land (shard_count - 1)
let add c k = if Atomic.get enabled_flag then ignore (Atomic.fetch_and_add c.(shard ()) k)
let incr c = add c 1
let value c = Array.fold_left (fun acc cell -> acc + Atomic.get cell) 0 c

let gauge name =
  locked (fun () ->
      match Hashtbl.find_opt gauges_tbl name with
      | Some g -> g
      | None ->
          let g = Atomic.make 0.0 in
          Hashtbl.add gauges_tbl name g;
          g)

let set_gauge g v = if Atomic.get enabled_flag then Atomic.set g v

let rec cas_update g f =
  let cur = Atomic.get g in
  if not (Atomic.compare_and_set g cur (f cur)) then cas_update g f

let add_gauge g v = if Atomic.get enabled_flag then cas_update g (fun cur -> cur +. v)
let max_gauge g v = if Atomic.get enabled_flag then cas_update g (fun cur -> Float.max cur v)

(* Span clock: [Unix.gettimeofday] is the only sub-second clock in the
   distribution without extra dependencies, and it is NOT monotonic —
   an NTP step mid-span can make [now () -. t0] negative. Durations
   are therefore clamped at zero on entry to [record_span], and every
   clamp is tallied on the "obs.spans_clamped" gauge (a gauge, not a
   counter: clock steps are environment events, not a function of the
   requested work, so the determinism rule keeps them out of the
   counter output). Spans feed human-facing timings only, never the
   deterministic counter output, so wall-clock granularity is
   acceptable once negative durations cannot corrupt the totals. *)
let now = Unix.gettimeofday
let g_spans_clamped = gauge "obs.spans_clamped"

let record_span name dt =
  if Atomic.get enabled_flag then begin
    let dt =
      if dt < 0.0 then begin
        add_gauge g_spans_clamped 1.0;
        0.0
      end
      else dt
    in
    locked (fun () ->
        let cell =
          match Hashtbl.find_opt spans_tbl name with
          | Some c -> c
          | None ->
              let c = { s_count = 0; s_total = 0.0 } in
              Hashtbl.add spans_tbl name c;
              c
        in
        cell.s_count <- cell.s_count + 1;
        cell.s_total <- cell.s_total +. dt)
  end

let with_span name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let t0 = now () in
    Fun.protect f ~finally:(fun () ->
        let dt = now () -. t0 in
        record_span name dt;
        if Atomic.get trace_flag then
          Printf.eprintf "[obs] %-36s %9.3f ms\n%!" name (Float.max 0.0 dt *. 1000.0))
  end

let reset () =
  locked (fun () ->
      Hashtbl.iter
        (fun _ c -> Array.iter (fun cell -> Atomic.set cell 0) c)
        counters_tbl;
      Hashtbl.iter (fun _ g -> Atomic.set g 0.0) gauges_tbl;
      Hashtbl.reset spans_tbl)

let sorted_by_name l = List.sort (fun (a, _) (b, _) -> compare a b) l

let counters () =
  sorted_by_name
    (locked (fun () -> Hashtbl.fold (fun k c acc -> (k, value c) :: acc) counters_tbl []))

let gauges () =
  sorted_by_name
    (locked (fun () ->
         Hashtbl.fold (fun k g acc -> (k, Atomic.get g) :: acc) gauges_tbl []))

let spans () =
  locked (fun () ->
      Hashtbl.fold (fun k c acc -> (k, c.s_count, c.s_total) :: acc) spans_tbl [])
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

(* Counter/gauge/span names are code-controlled ASCII identifiers, but
   escape defensively so the sink always emits valid JSON. *)
let json_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let counters_json () =
  let b = Buffer.create 512 in
  Buffer.add_char b '{';
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b (json_string name);
      Buffer.add_string b ": ";
      Buffer.add_string b (string_of_int v))
    (counters ());
  Buffer.add_char b '}';
  Buffer.contents b

let to_json () =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n  \"schema\": \"ftr-metrics/1\",\n  \"counters\": {";
  List.iteri
    (fun i (name, v) ->
      Buffer.add_string b (if i > 0 then ",\n    " else "\n    ");
      Buffer.add_string b (json_string name);
      Buffer.add_string b ": ";
      Buffer.add_string b (string_of_int v))
    (counters ());
  Buffer.add_string b "\n  },\n  \"gauges\": {";
  List.iteri
    (fun i (name, v) ->
      Buffer.add_string b (if i > 0 then ",\n    " else "\n    ");
      Buffer.add_string b (json_string name);
      Buffer.add_string b (Printf.sprintf ": %.6f" v))
    (gauges ());
  Buffer.add_string b "\n  },\n  \"spans\": {";
  List.iteri
    (fun i (name, count, total) ->
      Buffer.add_string b (if i > 0 then ",\n    " else "\n    ");
      Buffer.add_string b (json_string name);
      Buffer.add_string b
        (Printf.sprintf ": { \"count\": %d, \"total_ms\": %.3f }" count (total *. 1000.0)))
    (spans ());
  Buffer.add_string b "\n  }\n}\n";
  Buffer.contents b

let write_file path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_json ()))
