(* The paper's edge-fault reduction, exercised.

   "We handle the case of faulty edges by assuming that one of the
   endpoints of the faulty edge is a faulty node, an assumption that
   can only weaken our results."

   This example fails edges (not nodes) of a torus, compares the
   surviving diameter against the endpoint-projected node-fault model,
   and shows the route table surviving a save/load roundtrip - the
   "compute the table once" deployment story of Section 1.

   Run with:  dune exec examples/edge_faults.exe *)

open Ftr_graph
open Ftr_core

let () =
  let g = Families.torus 5 5 in
  let t = 3 in
  let c = Kernel.make g ~t in
  let claim = List.hd c.Construction.claims in
  Printf.printf "torus 5x5, kernel routing, claim (%d, %d) under node faults\n"
    claim.Construction.diameter_bound claim.Construction.max_faults;

  (* Fail three edges around the concentrator. *)
  let m = c.Construction.concentrator in
  Printf.printf "concentrator M = {%s}\n"
    (String.concat "," (List.map string_of_int m));
  let fm = Fault_model.create g in
  let chosen =
    match m with
    | a :: b :: _ ->
        let ea = (Graph.neighbors g a).(0) in
        let eb = (Graph.neighbors g b).(0) in
        [ (a, ea); (b, eb); (12, (Graph.neighbors g 12).(0)) ]
    | _ -> []
  in
  List.iter (fun (u, v) -> Fault_model.fail_edge fm u v) chosen;
  Printf.printf "failed edges: %s\n"
    (String.concat " "
       (List.map (fun (u, v) -> Printf.sprintf "%d-%d" u v) chosen));

  let edge_diam = Fault_model.diameter c.Construction.routing fm in
  Format.printf "surviving diameter under edge faults:      %a@." Metrics.pp_distance
    edge_diam;

  (* The paper's reduction: project each failed edge onto an endpoint. *)
  let projected = Fault_model.endpoint_projection fm in
  let node_diam = Surviving.diameter c.Construction.routing ~faults:projected in
  Format.printf "under the endpoint projection (node model): %a@." Metrics.pp_distance
    node_diam;

  (* The reduction is per-pair: every route an edge fault kills is also
     killed by the projected endpoint, so for nodes alive in BOTH
     models the edge-fault distance never exceeds the node-fault one.
     (The edge-fault diameter can still be larger, because the
     projected endpoints stay alive and count as pairs.) *)
  let dg_edge = Fault_model.surviving c.Construction.routing fm in
  let dg_node = Surviving.graph c.Construction.routing ~faults:projected in
  let alive v = not (Bitset.mem projected v) in
  let verified = ref 0 and violated = ref 0 in
  Graph.iter_vertices
    (fun x ->
      if alive x then begin
        let de = Digraph.bfs dg_edge x in
        let dn = Digraph.bfs dg_node ~allowed:alive x in
        Graph.iter_vertices
          (fun y ->
            if y <> x && alive y && dn.(y) >= 0 then begin
              incr verified;
              if de.(y) < 0 || de.(y) > dn.(y) then incr violated
            end)
          g
      end)
    g;
  Printf.printf
    "per-pair check: %d pairs alive in both models, %d where the edge-fault distance \
     exceeded the node-fault one (the theorems cover the node model).\n"
    !verified !violated;

  (* Persistence: the table is computed once and stored. *)
  let text = Routing_io.to_string c.Construction.routing in
  Printf.printf "\nroute table serialises to %d bytes (%d routes)\n"
    (String.length text)
    (Routing.route_count c.Construction.routing);
  match Routing_io.load g text with
  | Ok reloaded ->
      Format.printf "reloaded: %d routes, diameter under the same edge faults %a@."
        (Routing.route_count reloaded) Metrics.pp_distance
        (Fault_model.diameter reloaded fm)
  | Error e -> Printf.printf "reload failed: %s\n" e
