(* A message-level story: a 49-node torus fabric carries steady
   traffic to a storage hotspot while three switches die mid-run. The
   paper's cost model says transmission time is dominated by per-route
   endpoint processing (encryption, error correction), so what matters
   is how many routes each message traverses - which the theorems
   bound by a constant.

   Run with:  dune exec examples/datacenter_sim.exe *)

open Ftr_graph
open Ftr_core
open Ftr_sim

let () =
  let g = Families.torus 7 7 in
  let t = 3 in
  let c = Kernel.make g ~t in
  let claim = List.hd c.Construction.claims in
  Printf.printf "fabric: torus 7x7 (49 switches), kernel routing, claim (%d, %d)\n"
    claim.Construction.diameter_bound claim.Construction.max_faults;

  let rng = Random.State.make [| 2026 |] in
  let net = Network.create c.Construction.routing in
  let sim = Sim.create () in

  (* Three switches die at t=100, 150, 200. *)
  Faults.schedule_on sim net
    [
      { Faults.at = 100.0; action = `Crash 24 };
      { Faults.at = 150.0; action = `Crash 10 };
      { Faults.at = 200.0; action = `Crash 38 };
    ];

  (* Hotspot workload: 30% of traffic goes to the storage node 0. *)
  let entries =
    Workload.hotspot ~rng ~n:49 ~hub:0 ~fraction:0.3 ~count:600 ~horizon:400.0
  in
  let messages = Protocol.deliver_all sim net Protocol.default_config entries in

  let delivered = List.filter (fun m -> m.Message.status = Message.Delivered) messages in
  let lost = List.length messages - List.length delivered in
  Printf.printf "delivered %d/%d (%d had a dead endpoint)\n" (List.length delivered)
    (List.length messages) lost;

  (match Stats.of_ints (List.map (fun m -> m.Message.routes_traversed) delivered) with
  | Some s -> Format.printf "routes traversed per message: %a@." Stats.pp_summary s
  | None -> ());
  (match Stats.summarize (List.filter_map Message.latency delivered) with
  | Some s -> Format.printf "latency:                      %a@." Stats.pp_summary s
  | None -> ());
  let retried = List.length (List.filter (fun m -> m.Message.retries > 0) delivered) in
  Printf.printf "messages that hit a dead route and re-planned: %d\n" retried;

  (* After the dust settles: the surviving route graph and the
     broadcast-based route-table rebuild of Section 1. *)
  let diam = Network.surviving_diameter net in
  Format.printf "surviving route graph diameter: %a (theorem bound %d)@."
    Metrics.pp_distance diam claim.Construction.diameter_bound;
  let bound = match diam with Metrics.Finite d -> d | Metrics.Infinite -> 49 in
  let b = Protocol.broadcast net ~origin:0 ~counter_bound:bound in
  Printf.printf
    "route-counter broadcast from node 0: reached %d survivors in %d rounds\n"
    b.Protocol.reached b.Protocol.rounds;

  (* The same protocol as real timed messages instead of synchronous
     rounds (copies race along routes of different lengths). *)
  let sim2 = Sim.create () in
  let ba = Protocol.broadcast_async sim2 net Protocol.default_config ~origin:0
             ~counter_bound:(bound + 1) in
  Printf.printf
    "asynchronous rebuild: %d survivors reached with %d message copies in %.0f time \
     units\n"
    ba.Protocol.a_reached ba.Protocol.a_copies ba.Protocol.a_finished_at
