(* Quickstart: build a fault-tolerant routing for a small torus, break
   it, and watch the surviving route graph stay small.

   Run with:  dune exec examples/quickstart.exe *)

open Ftr_graph
open Ftr_core

let () =
  (* 1. A network: the 5x5 torus, a classic interconnect topology. *)
  let g = Families.torus 5 5 in
  let kappa = Connectivity.vertex_connectivity g in
  let t = kappa - 1 in
  Printf.printf "network: torus 5x5, %d nodes, connectivity %d -> tolerate %d faults\n"
    (Graph.n g) kappa t;

  (* 2. A routing: let the library pick the best construction the
     graph's structure admits. *)
  let choice = Builder.auto g in
  let c = choice.Builder.construction in
  Printf.printf "construction: %s (%s)\n"
    (Builder.strategy_name choice.Builder.strategy)
    c.Construction.name;
  let claim = Construction.strongest_claim c in
  Printf.printf "claim: surviving diameter <= %d for up to %d faults [%s]\n"
    claim.Construction.diameter_bound claim.Construction.max_faults
    claim.Construction.source;

  (* 3. Fixed routes between pairs: *)
  (match Routing.find c.Construction.routing 0 12 with
  | Some p -> Format.printf "route 0 -> 12: %a@." Path.pp p
  | None -> print_endline "no direct route 0 -> 12 (pairs route via the concentrator)");

  (* 4. Break things: fail t nodes and measure the surviving graph. *)
  let faults = Bitset.of_list (Graph.n g) [ 6; 13; 19 ] in
  Format.printf "after killing {6,13,19}: surviving diameter = %a (claimed <= %d)@."
    Metrics.pp_distance
    (Surviving.diameter c.Construction.routing ~faults)
    claim.Construction.diameter_bound;

  (* 5. Or let the checker hunt for the worst fault set of size t. *)
  let rng = Random.State.make [| 1 |] in
  let v = Tolerance.evaluate ~rng c ~f:t in
  Format.printf "worst over %d fault sets%s: %a -> %s@." v.Tolerance.sets_checked
    (if v.Tolerance.definitive then " (exhaustive)" else "")
    Metrics.pp_distance v.Tolerance.worst
    (if Tolerance.respects v ~bound:claim.Construction.diameter_bound then
       "claim holds"
     else "claim VIOLATED")
