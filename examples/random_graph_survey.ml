(* Section 5 in action, in two parts.

   Part 1 (Lemma 24 / Theorem 25): at the paper's density regime
   (average degree ~ n^eps, eps < 1/4) almost every G(n,p) sample has
   the two-trees property. No connectivity is needed for that claim,
   and indeed at this density the samples are usually disconnected -
   the asymptotic theorem regimes only overlap for much larger n.

   Part 2 (Theorem 20/23): to actually attack a bipolar routing with
   faults we need a connected sparse graph, so we sample a random
   3-regular graph (connectivity 3 with high probability, few short
   cycles, diameter ~ log n): it almost always has two-trees roots.

   Run with:  dune exec examples/random_graph_survey.exe *)

open Ftr_graph
open Ftr_core

let part1_two_trees_frequency rng =
  print_endline "-- Part 1: the two-trees property in G(n,p), p = n^eps / n --";
  List.iter
    (fun (n, eps) ->
      let p = (float_of_int n ** eps) /. float_of_int n in
      let trials = 30 in
      let weak = ref 0 and formal = ref 0 and connected = ref 0 in
      for _ = 1 to trials do
        let g = Random_graphs.gnp ~rng n p in
        if Two_trees.find_weak g <> None then incr weak;
        if Two_trees.find g <> None then incr formal;
        if Traversal.is_connected g then incr connected
      done;
      Printf.printf
        "  n=%4d eps=%.2f: prose %2d/%d, formal %2d/%d (connected samples: %d)\n" n
        eps !weak trials !formal trials !connected)
    [ (100, 0.15); (200, 0.15); (400, 0.15); (200, 0.24) ]

let part2_bipolar_attack rng =
  print_endline "-- Part 2: bipolar routings on a sparse random regular graph --";
  let rec sample tries =
    if tries = 0 then None
    else
      let g = Random_graphs.regular ~rng 150 3 in
      if Connectivity.is_k_connected g 3 && Two_trees.find g <> None then Some g
      else sample (tries - 1)
  in
  match sample 50 with
  | None -> print_endline "  no suitable sample in 50 tries (unlucky seed)"
  | Some g ->
      let t = 2 in
      let r1, r2 = Option.get (Two_trees.find g) in
      Printf.printf "  random 3-regular, n=150: two-trees roots %d, %d (distance %s)\n" r1
        r2
        (match Traversal.distance g r1 r2 with
        | Some d -> string_of_int d
        | None -> "inf");
      List.iter
        (fun (c : Construction.t) ->
          let claim = List.hd c.Construction.claims in
          let v = Tolerance.evaluate ~rng c ~f:t in
          Format.printf
            "  %-24s %6d routes, worst surviving diameter %a over %d fault sets \
             (claim <= %d, %s)@."
            c.Construction.name
            (Routing.route_count c.Construction.routing)
            Metrics.pp_distance v.Tolerance.worst v.Tolerance.sets_checked
            claim.Construction.diameter_bound claim.Construction.source)
        [
          Bipolar.make_unidirectional ~roots:(r1, r2) g ~t;
          Bipolar.make_bidirectional ~roots:(r1, r2) g ~t;
        ]

let () =
  let rng = Random.State.make [| 99 |] in
  part1_two_trees_frequency rng;
  part2_bipolar_attack rng
