(* Survey the interconnection networks the paper names (Section 4:
   hypercube, its bounded-degree realisations such as cube-connected
   cycles and the wrapped butterfly; cf. Ullman 1984): which of the
   paper's constructions applies to each, and what the fault-injected
   surviving diameter actually is.

   Run with:  dune exec examples/interconnect_survey.exe *)

open Ftr_graph
open Ftr_core
module A = Ftr_analysis

let survey_row rng (name, g) =
  let kappa = Connectivity.vertex_connectivity g in
  let t = kappa - 1 in
  let choice = Builder.auto ~rng g in
  let c = choice.Builder.construction in
  let claim = Construction.strongest_claim c in
  let v = Tolerance.evaluate ~rng ~exhaustive_budget:5_000 ~samples:150 c ~f:t in
  [
    name;
    string_of_int (Graph.n g);
    string_of_int kappa;
    Builder.strategy_name choice.Builder.strategy;
    string_of_int claim.Construction.diameter_bound;
    Format.asprintf "%a" Metrics.pp_distance v.Tolerance.worst;
    string_of_int v.Tolerance.sets_checked;
  ]

let () =
  let rng = Random.State.make [| 7 |] in
  let beds =
    [
      ("hypercube(3)", Families.hypercube 3);
      ("hypercube(4)", Families.hypercube 4);
      ("ccc(3)", Families.ccc 3);
      ("ccc(4)", Families.ccc 4);
      ("ccc(5)", Families.ccc 5);
      ("butterfly(3)", Families.butterfly 3);
      ("de_bruijn(5)", Families.de_bruijn 5);
      ("torus(6x6)", Families.torus 6 6);
      ("petersen", Families.petersen ());
    ]
  in
  let table =
    A.Table.make ~title:"Fault-tolerant routings across interconnection networks"
      ~headers:[ "network"; "n"; "kappa"; "construction"; "claimed d"; "worst seen"; "sets" ]
      (List.map (survey_row rng) beds)
  in
  print_string (A.Table.render table);
  print_endline
    "Reading: 'claimed d' is the theorem bound for the best construction the\n\
     graph's structure admits; 'worst seen' is the largest surviving diameter\n\
     found by fault injection with up to kappa-1 faults."
