open Ftr_sim

let test_clock_starts_at_zero () =
  let sim = Sim.create () in
  Alcotest.(check (float 0.0)) "t=0" 0.0 (Sim.now sim)

let test_schedule_and_run () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.schedule sim ~delay:2.0 (fun () -> log := ("b", Sim.now sim) :: !log);
  Sim.schedule sim ~delay:1.0 (fun () -> log := ("a", Sim.now sim) :: !log);
  Sim.run sim;
  Alcotest.(check (list (pair string (float 0.0))))
    "ordered with times" [ ("a", 1.0); ("b", 2.0) ] (List.rev !log);
  Alcotest.(check int) "executed" 2 (Sim.events_executed sim)

let test_events_schedule_events () =
  let sim = Sim.create () in
  let fired = ref 0.0 in
  Sim.schedule sim ~delay:1.0 (fun () ->
      Sim.schedule sim ~delay:1.5 (fun () -> fired := Sim.now sim));
  Sim.run sim;
  Alcotest.(check (float 1e-9)) "relative delay" 2.5 !fired

let test_until () =
  let sim = Sim.create () in
  let count = ref 0 in
  List.iter (fun d -> Sim.schedule sim ~delay:d (fun () -> incr count)) [ 1.0; 2.0; 3.0 ];
  Sim.run ~until:2.0 sim;
  Alcotest.(check int) "only two" 2 !count;
  Sim.run sim;
  Alcotest.(check int) "rest later" 3 !count

let test_step () =
  let sim = Sim.create () in
  Sim.schedule sim ~delay:1.0 ignore;
  Alcotest.(check bool) "one step" true (Sim.step sim);
  Alcotest.(check bool) "drained" false (Sim.step sim)

let test_at_absolute () =
  let sim = Sim.create () in
  let seen = ref 0.0 in
  Sim.at sim ~time:5.0 (fun () -> seen := Sim.now sim);
  Sim.run sim;
  Alcotest.(check (float 0.0)) "absolute" 5.0 !seen

let test_fifo_at_identical_timestamps () =
  (* Events scheduled for the same instant must fire in schedule
     order, including events scheduled from within a tied event. *)
  let sim = Sim.create () in
  let log = ref [] in
  let mark tag () = log := tag :: !log in
  for i = 1 to 50 do
    Sim.schedule sim ~delay:1.0 (mark i)
  done;
  Sim.schedule sim ~delay:0.5 (fun () ->
      (* same timestamp as the batch above, scheduled later *)
      Sim.schedule sim ~delay:0.5 (mark 51));
  Sim.run sim;
  Alcotest.(check (list int)) "schedule order preserved at equal times"
    (List.init 51 (fun i -> i + 1))
    (List.rev !log)

let test_negative_delay_rejected () =
  let sim = Sim.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Sim.schedule: negative delay")
    (fun () -> Sim.schedule sim ~delay:(-1.0) ignore)

let test_past_time_rejected () =
  let sim = Sim.create () in
  Sim.schedule sim ~delay:10.0 ignore;
  Sim.run sim;
  Alcotest.check_raises "past" (Invalid_argument "Sim.at: time in the past") (fun () ->
      Sim.at sim ~time:5.0 ignore)

let () =
  Alcotest.run "sim"
    [
      ( "sim",
        [
          Alcotest.test_case "clock at zero" `Quick test_clock_starts_at_zero;
          Alcotest.test_case "schedule & run" `Quick test_schedule_and_run;
          Alcotest.test_case "nested events" `Quick test_events_schedule_events;
          Alcotest.test_case "until" `Quick test_until;
          Alcotest.test_case "step" `Quick test_step;
          Alcotest.test_case "absolute time" `Quick test_at_absolute;
          Alcotest.test_case "FIFO at identical timestamps" `Quick
            test_fifo_at_identical_timestamps;
          Alcotest.test_case "negative delay" `Quick test_negative_delay_rejected;
          Alcotest.test_case "past time" `Quick test_past_time_rejected;
        ] );
    ]
