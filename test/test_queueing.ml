open Ftr_graph
open Ftr_core
open Ftr_sim

let test_single_job () =
  let sim = Sim.create () in
  let q = Queueing.create ~n:4 ~service_time:10.0 in
  let done_at = ref nan in
  Queueing.enqueue q sim ~node:2 (fun () -> done_at := Sim.now sim);
  Sim.run sim;
  Alcotest.(check (float 1e-9)) "service time" 10.0 !done_at;
  Alcotest.(check int) "served" 1 (Queueing.served q);
  Alcotest.(check (float 1e-9)) "no wait" 0.0 (Queueing.total_wait q)

let test_fifo_queueing () =
  let sim = Sim.create () in
  let q = Queueing.create ~n:2 ~service_time:10.0 in
  let finishes = ref [] in
  (* three simultaneous jobs on node 0: finish at 10, 20, 30 *)
  for i = 1 to 3 do
    Queueing.enqueue q sim ~node:0 (fun () -> finishes := (i, Sim.now sim) :: !finishes)
  done;
  Sim.run sim;
  Alcotest.(check (list (pair int (float 1e-9))))
    "staggered" [ (1, 10.0); (2, 20.0); (3, 30.0) ] (List.rev !finishes);
  (* second waited 10, third waited 20 *)
  Alcotest.(check (float 1e-9)) "total wait" 30.0 (Queueing.total_wait q)

let test_parallel_nodes_independent () =
  let sim = Sim.create () in
  let q = Queueing.create ~n:2 ~service_time:10.0 in
  let times = ref [] in
  Queueing.enqueue q sim ~node:0 (fun () -> times := Sim.now sim :: !times);
  Queueing.enqueue q sim ~node:1 (fun () -> times := Sim.now sim :: !times);
  Sim.run sim;
  Alcotest.(check (list (float 1e-9))) "both at 10" [ 10.0; 10.0 ] !times

let test_server_drains () =
  let sim = Sim.create () in
  let q = Queueing.create ~n:1 ~service_time:5.0 in
  Queueing.enqueue q sim ~node:0 ignore;
  Sim.run sim;
  (* a job arriving after the server idles starts immediately *)
  Sim.schedule sim ~delay:20.0 (fun () -> Queueing.enqueue q sim ~node:0 ignore);
  Sim.run sim;
  Alcotest.(check (float 1e-9)) "no second wait" 0.0 (Queueing.total_wait q);
  Alcotest.(check (option (pair int int))) "busiest" (Some (0, 2)) (Queueing.busiest q)

let test_busiest_empty_network () =
  (* n = 0 used to index served.(0) and raise Invalid_argument. *)
  let q = Queueing.create ~n:0 ~service_time:1.0 in
  Alcotest.(check (option (pair int int))) "no servers" None (Queueing.busiest q);
  Alcotest.(check int) "served" 0 (Queueing.served q)

let test_send_queued_hotspot_slower () =
  (* Two workloads on the same fabric: spread vs all-to-one. The
     hotspot one must have strictly larger total latency. *)
  let g = Families.torus 5 5 in
  let c = Kernel.make g ~t:3 in
  let run entries =
    let net = Network.create c.Construction.routing in
    let sim = Sim.create () in
    let servers = Queueing.create ~n:25 ~service_time:10.0 in
    let msgs =
      Protocol.deliver_all_queued sim net servers Protocol.default_config entries
    in
    List.fold_left
      (fun acc m -> acc +. Option.value ~default:0.0 (Message.latency m))
      0.0 msgs
  in
  let spread = List.init 20 (fun i -> (0.0, (i + 1) mod 25, (i + 5) mod 25)) in
  let hotspot = List.init 20 (fun i -> (0.0, (i + 1) mod 24 + 1, 0)) in
  Alcotest.(check bool) "hotspot slower" true (run hotspot > run spread)

let test_send_queued_matches_fixed_when_idle () =
  (* A single message sees no queueing: same delivery time as the
     fixed-overhead model. *)
  let g = Families.cycle 6 in
  let r = Routing.create g Routing.Bidirectional in
  Routing.add_edge_routes r;
  let run queued =
    let net = Network.create r in
    let sim = Sim.create () in
    let msg =
      if queued then
        let servers = Queueing.create ~n:6 ~service_time:10.0 in
        Protocol.send_queued sim net servers Protocol.default_config ~id:0 ~src:0 ~dst:2 ()
      else Protocol.send sim net Protocol.default_config ~id:0 ~src:0 ~dst:2 ()
    in
    Sim.run sim;
    Option.get (Message.latency msg)
  in
  Alcotest.(check (float 1e-9)) "same latency" (run false) (run true)

let test_send_queued_reroutes_around_fault () =
  (* Queueing and fault re-planning compose: kill a node mid-fabric
     and check queued delivery still routes around it. *)
  let g = Families.cycle 6 in
  let r = Routing.create g Routing.Bidirectional in
  Routing.add r (Path.of_list [ 0; 1; 2 ]);
  Routing.add_edge_routes r;
  let net = Network.create r in
  Network.crash net 1;
  let sim = Sim.create () in
  let servers = Queueing.create ~n:6 ~service_time:10.0 in
  let msg =
    Protocol.send_queued sim net servers Protocol.default_config ~id:0 ~src:0 ~dst:2 ()
  in
  Sim.run sim;
  Alcotest.(check bool) "delivered" true (msg.Message.status = Message.Delivered);
  Alcotest.(check int) "detour: 4 routes" 4 msg.Message.routes_traversed;
  Alcotest.(check int) "one retry" 1 msg.Message.retries

let test_negative_service_rejected () =
  Alcotest.check_raises "negative"
    (Invalid_argument "Queueing.create: negative service time") (fun () ->
      ignore (Queueing.create ~n:1 ~service_time:(-1.0)))

let () =
  Alcotest.run "queueing"
    [
      ( "queueing",
        [
          Alcotest.test_case "single job" `Quick test_single_job;
          Alcotest.test_case "FIFO" `Quick test_fifo_queueing;
          Alcotest.test_case "parallel nodes" `Quick test_parallel_nodes_independent;
          Alcotest.test_case "drains" `Quick test_server_drains;
          Alcotest.test_case "busiest on empty network" `Quick test_busiest_empty_network;
          Alcotest.test_case "hotspot slower" `Quick test_send_queued_hotspot_slower;
          Alcotest.test_case "idle matches fixed" `Quick test_send_queued_matches_fixed_when_idle;
          Alcotest.test_case "queued reroute" `Quick test_send_queued_reroutes_around_fault;
          Alcotest.test_case "validation" `Quick test_negative_service_rejected;
        ] );
    ]
