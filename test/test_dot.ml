open Ftr_graph

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_of_graph () =
  let g = Families.cycle 3 in
  let dot = Dot.of_graph g in
  Alcotest.(check bool) "graph keyword" true (contains dot "graph G {");
  Alcotest.(check bool) "edge 0--1" true (contains dot "0 -- 1;");
  Alcotest.(check bool) "edge 0--2" true (contains dot "0 -- 2;");
  Alcotest.(check bool) "closes" true (contains dot "}")

let test_highlight () =
  let dot = Dot.of_graph ~highlight:[ 1 ] (Families.cycle 3) in
  Alcotest.(check bool) "vertex 1 filled" true
    (contains dot "1 [label=\"1\" style=filled fillcolor=gold];")

let test_labels () =
  let dot = Dot.of_graph ~label:(fun v -> Printf.sprintf "v%d" v) (Families.cycle 3) in
  Alcotest.(check bool) "custom label" true (contains dot "[label=\"v2\"]")

let test_of_digraph () =
  let d = Digraph.of_edges ~n:2 [ (0, 1) ] in
  let dot = Dot.of_digraph d in
  Alcotest.(check bool) "digraph keyword" true (contains dot "digraph G {");
  Alcotest.(check bool) "arrow" true (contains dot "0 -> 1;")

let test_groups () =
  let dot =
    Dot.with_colored_groups ~groups:[ ("M", [ 0 ]); ("Gamma", [ 1; 2 ]) ]
      (Families.cycle 4)
  in
  Alcotest.(check bool) "legend" true (contains dot "// gold: M");
  Alcotest.(check bool) "group color" true (contains dot "fillcolor=gold");
  Alcotest.(check bool) "second color" true (contains dot "fillcolor=skyblue");
  Alcotest.(check bool) "ungrouped plain" true (contains dot "3 [label=\"3\"];")

let () =
  Alcotest.run "dot"
    [
      ( "dot",
        [
          Alcotest.test_case "of_graph" `Quick test_of_graph;
          Alcotest.test_case "highlight" `Quick test_highlight;
          Alcotest.test_case "labels" `Quick test_labels;
          Alcotest.test_case "of_digraph" `Quick test_of_digraph;
          Alcotest.test_case "colored groups" `Quick test_groups;
        ] );
    ]
