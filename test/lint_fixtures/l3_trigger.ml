(* L3 fixture: Par closures mutating / dereferencing captured refs.
   The Par stub makes the file self-contained for the typechecker; the
   rules match the resolved `Par.map`/`Par.run` paths either way. *)
module Par = struct
  let map f xs = List.map f xs
  let run f = f ()
end

let total = ref 0
let sum xs = Par.map (fun x -> total := x) xs
let read () = Par.run (fun () -> !total)
