(* L3 fixture: Par closures mutating / dereferencing captured refs. *)
let total = ref 0
let sum xs = Par.map (fun x -> total := x) xs
let read () = Par.run (fun () -> !total)
