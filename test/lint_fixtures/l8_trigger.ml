(* L8 fixture: an exit code outside the documented 0/1/2/3 contract,
   and a usage exit with no stderr diagnostic before it. *)
let fail () = exit 9

let usage () = exit 2
