(* L4 fixture: a Bigarray unsafe accessor. Its containment list is
   [unsafe_bigarray_ok], not [unsafe_ok] — a file cleared for plain
   unsafe ops is not thereby cleared for wild off-heap access.
   bounds: caller guarantees 0 <= i < Bigarray.Array1.dim a. *)
let get a i = Bigarray.Array1.unsafe_get a i
