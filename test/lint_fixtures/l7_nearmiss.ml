(* L7 near-miss: helpers that only read the capture, Atomic state
   (mutable by design, safe across domains), and [@par.owned]
   captures routed through a mutating helper. *)
module Par = struct
  let run f = f ()
end

let peek r = !r
let bump r = incr r
let tick a = Atomic.incr a

let reads () =
  let hits = ref 0 in
  Par.run (fun () -> peek hits)

let atomic () =
  let hits = Atomic.make 0 in
  Par.run (fun () -> tick hits);
  Atomic.get hits

let[@par.owned] owned = ref 0
let tagged () = Par.run (fun () -> bump owned)
