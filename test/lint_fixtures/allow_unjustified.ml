(* Suppression fixture: a bare [@lint.allow "L1"] with no justification
   is itself an error (L0) and suppresses nothing. *)
let first xs = (List.hd xs [@lint.allow "L1"])
