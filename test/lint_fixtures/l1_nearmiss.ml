(* L1 near-miss: total counterparts of everything l1_trigger.ml does. *)
let first xs = match xs with [] -> None | x :: _ -> Some x
let rest xs = match xs with [] -> [] | _ :: tl -> tl
let lookup tbl k = Hashtbl.find_opt tbl k
let force o = Option.value o ~default:0
let parse s = int_of_string_opt s

exception Missing of string

let boom () = raise (Missing "key")
