(* L8 near-miss: every exit uses a documented code (0 ok / 1 breach /
   2 usage / 3 infra) and the error codes print to stderr first. *)
let ok () = exit 0

let breach () = exit 1

let usage () =
  prerr_endline "usage: frob FILE";
  exit 2

let infra msg =
  Printf.eprintf "frob: %s\n" msg;
  exit 3
