(* L1 fixture: every line below is a partial operation the lint must flag. *)
let first xs = List.hd xs
let rest xs = List.tl xs
let lookup tbl k = Hashtbl.find tbl k
let force o = Option.get o
let parse s = int_of_string s
let boom () = raise Not_found
