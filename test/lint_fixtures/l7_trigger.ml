(* L7 fixture: the captured ref is mutated through a same-file helper,
   so no mutation is syntactically visible inside the task — the
   interprocedural case the old syntactic L3 provably missed. *)
module Par = struct
  let run f = f ()
end

let bump r = incr r

let count () =
  let hits = ref 0 in
  Par.run (fun () -> bump hits);
  !hits
