(* L5 fixture: dynamic observability names. *)
module Obs = struct
  let counter (_ : string) = ()
  let gauge (_ : string) = ()
end

let c name = Obs.counter name
let g () = Obs.gauge ("queue." ^ "depth")
