(* L5 fixture: dynamic observability names. *)
let c name = Obs.counter name
let g () = Obs.gauge ("queue." ^ "depth")
