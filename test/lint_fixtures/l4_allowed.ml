(* L4 fixture: legal when this file is in [unsafe_ok] because the
   definition carries a proof comment.
   bounds: caller guarantees 0 <= i < Array.length a. *)
let get a i = Array.unsafe_get a i
