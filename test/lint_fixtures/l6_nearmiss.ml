(* L6 near-miss: the l6_trigger.ml computations with the taint
   properly discharged — an explicit sort before the digest, a sort
   before the keys escape, and a commutative fold vouched for by a
   justified [@@lint.ordered]. *)
let digest_of tbl =
  let parts = Hashtbl.fold (fun k v acc -> (k ^ "=" ^ v) :: acc) tbl [] in
  let parts = List.sort String.compare parts in
  Digest.string (String.concat ";" parts)

let keys tbl =
  Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort Int.compare

let cardinality tbl = Hashtbl.fold (fun _ _ acc -> acc + 1) tbl 0
[@@lint.ordered "integer addition is commutative and associative"]
