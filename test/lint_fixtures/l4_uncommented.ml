(* L4 fixture: even inside an [unsafe_ok] file, an unsafe op with no
   proof comment on its definition must be flagged. *)

let get a i = Array.unsafe_get a i
