(* L2 near-miss: Float.* ordering over floats, polymorphic ordering
   over ints only. *)
let worst a = Float.max a 1.0
let sign x = Float.compare x 0.0
let order () = List.sort Float.compare [ 2.0; 1.0 ]
let ints a = max a 1
let int_order () = List.sort compare [ 2; 1 ]
