(* L2 near-miss: Float.* ordering over floats, monomorphic ordering
   over ints, and the sorters outside the bare-compare list
   (sort_uniq/merge normalise int keys all over the codebase and stay
   on the float-evidence path). *)
let worst a = Float.max a 1.0
let sign x = Float.compare x 0.0
let order () = List.sort Float.compare [ 2.0; 1.0 ]
let ints a = max a 1
let int_order () = List.sort Int.compare [ 2; 1 ]
let dedup l = List.sort_uniq compare (l : int list)
let explicit () = List.sort (fun a b -> Int.compare b a) [ 2; 1 ]
