(* L4 near-miss: only checked operations. *)
let get a i = Array.get a i
let magic x = x
