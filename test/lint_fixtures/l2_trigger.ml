(* L2 fixture: polymorphic ordering with syntactic float evidence. *)
let worst a = max a 1.0
let sign x = compare x 0.0
let order () = List.sort compare [ 2.0; 1.0 ]
