(* L2 fixture: polymorphic ordering with syntactic float evidence,
   plus bare `compare` handed to a sort function (flagged regardless
   of element type). *)
let worst a = max a 1.0
let sign x = compare x 0.0
let order () = List.sort compare [ 2.0; 1.0 ]
let int_order () = List.sort compare [ 2; 1 ]
let in_place a = Array.sort compare (a : int array)
