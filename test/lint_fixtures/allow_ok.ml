(* Suppression fixture: a justified [@lint.allow] silences the
   diagnostic but records it in the report's suppressed list. *)
let first xs = (List.hd xs [@lint.allow "L1: fixture exercises a justified suppression"])
