(* L3 near-miss: Atomic.t, task-local refs, and [@par.owned]-tagged
   captures are all sanctioned; mutation outside a Par task is not the
   rule's business. *)
module Par = struct
  let map f xs = List.map f xs
end

let total = Atomic.make 0
let sum xs = Par.map (fun x -> Atomic.set total x) xs

let local xs =
  Par.map
    (fun x ->
      let acc = ref x in
      incr acc;
      !acc)
    xs

let[@par.owned] owned = ref 0
let tagged xs = Par.map (fun x -> owned := x) xs
let bump r = incr r
