(* L4 fixture: an unsafe op outside the containment files.  The bounds
   comment below must NOT rescue it — containment comes first.
   bounds: irrelevant here, this file is not in unsafe_ok. *)
let get a i = Array.unsafe_get a i
