(* L6 fixture: determinism taint. [digest_of] is the canonical leak —
   an unordered Hashtbl.fold feeding a digest; [keys] leaks table
   order to its callers. l6_nearmiss.ml is the same code key-sorted. *)
let digest_of tbl =
  let parts = Hashtbl.fold (fun k v acc -> (k ^ "=" ^ v) :: acc) tbl [] in
  Digest.string (String.concat ";" parts)

let keys tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl []
