(* L3 fixture: Par.chunk tasks run on other domains too. *)
let total = ref 0

let sum () =
  Par.chunk ~jobs:4 ~count:8
    ~init:(fun () -> ())
    ~task:(fun () ~lo:_ ~hi:_ -> incr total)
