(* L3 fixture: Par.chunk tasks run on other domains too. *)
module Par = struct
  let chunk ~jobs:_ ~count:_ ~init ~task = task (init ()) ~lo:0 ~hi:0
end

let total = ref 0

let sum () =
  Par.chunk ~jobs:4 ~count:8
    ~init:(fun () -> ())
    ~task:(fun () ~lo:_ ~hi:_ -> incr total)
