(* L5 near-miss: literal names only. *)
module Obs = struct
  let counter (_ : string) = ()
  let gauge (_ : string) = ()
  let with_span (_ : string) f = f ()
end

let c () = Obs.counter "protocol.delivered"
let g () = Obs.gauge "queue.depth"
let s () = Obs.with_span "certify" (fun () -> ())
