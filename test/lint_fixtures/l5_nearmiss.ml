(* L5 near-miss: literal names only. *)
let c () = Obs.counter "protocol.delivered"
let g () = Obs.gauge "queue.depth"
let s () = Obs.with_span "certify" (fun () -> ())
