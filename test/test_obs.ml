(* The observability registry itself, plus the contract the whole
   instrumentation layer is built on: counter output is a function of
   the requested work, not of the schedule, so the emitted JSON is
   byte-identical for every jobs value. *)

open Ftr_graph
open Ftr_core
module Obs = Ftr_obs.Obs

(* Every test owns the process-global registry state for its
   duration. *)
let scoped f =
  Obs.reset ();
  Obs.set_enabled true;
  Fun.protect f ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.reset ())

let test_counter_basics () =
  scoped @@ fun () ->
  let c = Obs.counter "test.basic" in
  Alcotest.(check int) "starts at zero" 0 (Obs.value c);
  Obs.incr c;
  Obs.add c 41;
  Alcotest.(check int) "accumulates" 42 (Obs.value c);
  Alcotest.(check bool) "same name, same counter" true (Obs.counter "test.basic" == c);
  Obs.reset ();
  Alcotest.(check int) "reset zeroes" 0 (Obs.value c)

let test_disabled_is_noop () =
  Obs.reset ();
  Obs.set_enabled false;
  let c = Obs.counter "test.disabled" in
  Obs.add c 7;
  Alcotest.(check int) "no recording while disabled" 0 (Obs.value c);
  let r = Obs.with_span "test.disabled_span" (fun () -> 3) in
  Alcotest.(check int) "span still runs the body" 3 r;
  Alcotest.(check bool) "no span recorded" true
    (not (List.exists (fun (n, _, _) -> n = "test.disabled_span") (Obs.spans ())))

let test_gauges () =
  scoped @@ fun () ->
  let g = Obs.gauge "test.gauge" in
  Obs.set_gauge g 2.5;
  Obs.add_gauge g 0.5;
  Obs.max_gauge g 1.0;
  Alcotest.(check (float 1e-9)) "set/add/max" 3.0
    (List.assoc "test.gauge" (Obs.gauges ()))

let test_spans () =
  scoped @@ fun () ->
  let r = Obs.with_span "test.span" (fun () -> 1 + 1) in
  ignore (Obs.with_span "test.span" (fun () -> ()));
  Alcotest.(check int) "body result" 2 r;
  match List.find_opt (fun (n, _, _) -> n = "test.span") (Obs.spans ()) with
  | None -> Alcotest.fail "span not recorded"
  | Some (_, count, total) ->
      Alcotest.(check int) "two completions" 2 count;
      Alcotest.(check bool) "non-negative total" true (total >= 0.0)

(* The wall clock is not monotonic: a negative measured duration
   (clock stepped mid-span) must clamp to zero — span totals never
   decrease — and each clamp is tallied on the "obs.spans_clamped"
   gauge, never a counter (clock steps are environment events, so the
   determinism rule keeps them out of the counter output). *)
let test_span_clamp () =
  scoped @@ fun () ->
  Obs.record_span "test.clamp" (-5.0);
  Obs.record_span "test.clamp" 2.0;
  (match List.find_opt (fun (n, _, _) -> n = "test.clamp") (Obs.spans ()) with
  | None -> Alcotest.fail "span not recorded"
  | Some (_, count, total) ->
      Alcotest.(check int) "clamped span still counts" 2 count;
      Alcotest.(check (float 1e-9)) "negative duration adds zero" 2.0 total);
  Alcotest.(check (float 1e-9)) "clamp tallied on the gauge" 1.0
    (Option.value ~default:0.0
       (List.assoc_opt "obs.spans_clamped" (Obs.gauges ())));
  let json = Obs.counters_json () in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec at i = i + nl <= hl && (String.sub hay i nl = needle || at (i + 1)) in
    at 0
  in
  Alcotest.(check bool) "clamp tally stays out of the counters" false
    (contains "spans_clamped" json)

let test_counters_json_shape () =
  scoped @@ fun () ->
  let c = Obs.counter "test.json" in
  Obs.add c 5;
  let json = Obs.counters_json () in
  Alcotest.(check bool) "object" true
    (String.length json >= 2 && json.[0] = '{' && json.[String.length json - 1] = '}');
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec at i = i + nl <= hl && (String.sub hay i nl = needle || at (i + 1)) in
    at 0
  in
  Alcotest.(check bool) "holds the entry" true (contains "\"test.json\": 5" json)

(* The acceptance criterion of the layer: engine and attack counters
   emitted at jobs=1 and jobs=4 are byte-identical. Schedule-dependent
   quantities (pool balance, parallel-section count) live in gauges,
   which this comparison deliberately excludes. *)
let counters_after f =
  Obs.reset ();
  Obs.set_enabled true;
  f ();
  let json = Obs.counters_json () in
  Obs.set_enabled false;
  Obs.reset ();
  json

let test_certify_jobs_deterministic () =
  let c = Kernel.make (Families.torus 5 5) ~t:3 in
  let routing = c.Construction.routing in
  let run jobs () = ignore (Tolerance.certify ~jobs routing ~f:2 ~bound:6) in
  let j1 = counters_after (run 1) and j4 = counters_after (run 4) in
  Alcotest.(check string) "certify counters jobs=1 vs jobs=4" j1 j4

let test_attack_jobs_deterministic () =
  let c = Kernel.make (Families.torus 5 5) ~t:3 in
  let routing = c.Construction.routing in
  let config = { Attack.default_config with Attack.budget = 400; restarts = 4 } in
  let run jobs () =
    let rng = Random.State.make [| 42 |] in
    ignore (Attack.search ~config ~jobs ~rng ~pools:c.Construction.pools routing ~f:3)
  in
  let j1 = counters_after (run 1) and j4 = counters_after (run 4) in
  Alcotest.(check string) "attack counters jobs=1 vs jobs=4" j1 j4

let test_engine_counters_move () =
  scoped @@ fun () ->
  let c = Kernel.make (Families.torus 5 5) ~t:3 in
  ignore (Tolerance.exhaustive ~jobs:1 c.Construction.routing ~f:1);
  let counters = Obs.counters () in
  let value name = Option.value (List.assoc_opt name counters) ~default:0 in
  Alcotest.(check bool) "compile counted" true (value "engine.compile.calls" >= 1);
  Alcotest.(check bool) "diameter evals counted" true (value "engine.diameter.evals" > 0);
  Alcotest.(check bool) "bfs word ops counted" true (value "engine.bfs.word_ops" > 0);
  Alcotest.(check bool) "sets checked counted" true
    (value "tolerance.sets_checked" = 26 (* 25 singletons + the empty set *))

let () =
  Alcotest.run "obs"
    [
      ( "registry",
        [
          Alcotest.test_case "counter basics" `Quick test_counter_basics;
          Alcotest.test_case "disabled is a no-op" `Quick test_disabled_is_noop;
          Alcotest.test_case "gauges" `Quick test_gauges;
          Alcotest.test_case "spans" `Quick test_spans;
          Alcotest.test_case "negative spans clamp" `Quick test_span_clamp;
          Alcotest.test_case "counters json" `Quick test_counters_json_shape;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "certify jobs=1 = jobs=4" `Quick
            test_certify_jobs_deterministic;
          Alcotest.test_case "attack jobs=1 = jobs=4" `Quick
            test_attack_jobs_deterministic;
          Alcotest.test_case "engine counters move" `Quick test_engine_counters_move;
        ] );
    ]
