(* Compact route tables: packed/label/tree schemes must agree with the
   hashtable backend bit for bit, and the large-n sampled checkers must
   agree with the exact ones where both run. *)

open Ftr_graph
open Ftr_core

let triples r =
  let acc = ref [] in
  Routing.iter (fun s d p -> acc := (s, d, Path.to_list p) :: !acc) r;
  List.sort compare !acc

let check_agreement name a b =
  Alcotest.(check int)
    (name ^ ": route_count")
    (Routing.route_count a) (Routing.route_count b);
  Alcotest.(check bool) (name ^ ": same route set") true (triples a = triples b);
  let n = Graph.n (Routing.graph a) in
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      let pa = Routing.find a src dst and pb = Routing.find b src dst in
      if not (Option.equal Path.equal pa pb) then
        Alcotest.failf "%s: find (%d,%d) disagrees" name src dst;
      if Routing.mem a src dst <> Routing.mem b src dst then
        Alcotest.failf "%s: mem (%d,%d) disagrees" name src dst
    done
  done;
  Alcotest.(check int)
    (name ^ ": max_route_length")
    (Routing.max_route_length a) (Routing.max_route_length b);
  Alcotest.(check int)
    (name ^ ": total_route_edges")
    (Routing.total_route_edges a) (Routing.total_route_edges b);
  Alcotest.(check (float 1e-9)) (name ^ ": stretch") (Routing.stretch a)
    (Routing.stretch b);
  Alcotest.(check bool)
    (name ^ ": validate")
    (Routing.validate a = Ok ())
    (Routing.validate b = Ok ())

(* Every existing construction, re-encoded as a packed compact table,
   must be indistinguishable through the Routing API. *)
let constructions () =
  [
    ("kernel-torus55", Kernel.make (Families.torus 5 5) ~t:3);
    ("kernel-cycle8", Kernel.make (Families.cycle 8) ~t:1);
    ("circular-cycle12", Circular.make (Families.cycle 12) ~t:1);
    ( "tri-circular-cycle27",
      Tri_circular.make (Families.cycle 27) ~t:1 ~variant:Tri_circular.Small );
    ("bipolar-cycle12", Bipolar.make_unidirectional (Families.cycle 12) ~t:1);
    ("bipolar-bi-cycle12", Bipolar.make_bidirectional (Families.cycle 12) ~t:1);
    ("minimal-petersen", Minimal_routing.make (Families.petersen ()));
    ("ecube-q3", Hypercube_routing.ecube 3);
    ("ecube-bi-q3", Hypercube_routing.ecube_bidirectional 3);
  ]

let test_packed_agreement () =
  List.iter
    (fun (name, c) ->
      let r = c.Construction.routing in
      let p = Routing.compact_copy r in
      Alcotest.(check string)
        (name ^ ": backend") "compact:packed" (Routing.backend_name p);
      check_agreement name r p)
    (constructions ())

let test_compact_is_immutable () =
  let c = Hypercube_routing.ecube 3 in
  let p = Routing.compact_copy c.Construction.routing in
  Alcotest.check_raises "add raises"
    (Invalid_argument "Routing.install: compact routings are immutable")
    (fun () -> Routing.add p (Path.edge 0 1))

(* Label schemes: the hypercube scheme must be the exact twin of
   Hypercube_routing.ecube / ecube_bidirectional. *)
let test_hypercube_label_twin () =
  List.iter
    (fun d ->
      let g = Families.hypercube d in
      let uni =
        Routing.of_compact g Routing.Unidirectional (Compact.hypercube d)
      in
      check_agreement
        (Printf.sprintf "hypercube:%d" d)
        (Hypercube_routing.ecube d).Construction.routing uni;
      let bi =
        Routing.of_compact g Routing.Bidirectional
          (Compact.hypercube ~bidirectional:true d)
      in
      check_agreement
        (Printf.sprintf "hypercube:%d:bi" d)
        (Hypercube_routing.ecube_bidirectional d).Construction.routing bi)
    [ 1; 2; 3; 4 ]

let test_de_bruijn_scheme () =
  List.iter
    (fun d ->
      let g = Families.de_bruijn d in
      let n = Graph.n g in
      let r = Routing.of_compact g Routing.Unidirectional (Compact.de_bruijn d) in
      Alcotest.(check int)
        (Printf.sprintf "debruijn:%d all pairs" d)
        (n * (n - 1))
        (Routing.route_count r);
      Alcotest.(check (result unit string))
        (Printf.sprintf "debruijn:%d valid" d)
        (Ok ()) (Routing.validate r);
      Alcotest.(check bool)
        (Printf.sprintf "debruijn:%d length <= d" d)
        true
        (Routing.max_route_length r <= d))
    [ 2; 3; 4; 5 ]

let test_ccc_scheme () =
  List.iter
    (fun d ->
      let g = Families.ccc d in
      let n = Graph.n g in
      let r = Routing.of_compact g Routing.Unidirectional (Compact.ccc d) in
      Alcotest.(check int)
        (Printf.sprintf "ccc:%d all pairs" d)
        (n * (n - 1))
        (Routing.route_count r);
      Alcotest.(check (result unit string))
        (Printf.sprintf "ccc:%d valid" d)
        (Ok ()) (Routing.validate r);
      Alcotest.(check bool)
        (Printf.sprintf "ccc:%d length <= 2d + d/2" d)
        true
        (Routing.max_route_length r <= (2 * d) + (d / 2)))
    [ 3; 4 ]

let test_tree_scheme () =
  let g = Families.torus 4 4 in
  let c = Compact.bfs_tree g ~root:0 in
  let r = Routing.of_compact g Routing.Bidirectional c in
  let n = Graph.n g in
  Alcotest.(check int) "tree routes all pairs" (n * (n - 1)) (Routing.route_count r);
  Alcotest.(check (result unit string)) "tree valid" (Ok ()) (Routing.validate r);
  (* every route runs along parent-child edges of the BFS forest *)
  let _, parent = Graph.Csr.bfs_tree (Graph.csr g) 0 in
  Routing.iter
    (fun _ _ p ->
      let vs = Path.to_array p in
      for i = 0 to Array.length vs - 2 do
        let u = vs.(i) and v = vs.(i + 1) in
        if parent.(u) <> v && parent.(v) <> u then
          Alcotest.failf "non-tree edge %d-%d on a tree route" u v
      done)
    r

let test_tree_disconnected () =
  (* two disjoint triangles: cross-component pairs are unrouted *)
  let g =
    Graph.of_edges ~n:6 [ (0, 1); (1, 2); (2, 0); (3, 4); (4, 5); (5, 3) ]
  in
  let c = Compact.bfs_tree g ~root:0 in
  let r = Routing.of_compact g Routing.Bidirectional c in
  Alcotest.(check int) "per-component pairs" 12 (Routing.route_count r);
  Alcotest.(check bool) "cross pair unrouted" true (Routing.find r 0 3 = None);
  Alcotest.(check (result unit string)) "valid" (Ok ()) (Routing.validate r)

let test_spec_round_trip () =
  let cases =
    [
      Compact.hypercube 4;
      Compact.hypercube ~bidirectional:true 3;
      Compact.de_bruijn 5;
      Compact.ccc 3;
      Compact.bfs_tree (Families.torus 4 4) ~root:0;
    ]
  in
  List.iter
    (fun c ->
      match Compact.spec c with
      | None -> Alcotest.fail "label scheme must have a spec"
      | Some s -> (
          match Compact.of_spec ~n:(Compact.n c) s with
          | Error e -> Alcotest.failf "of_spec %S: %s" s e
          | Ok c' ->
              Alcotest.(check string) "same scheme" (Compact.scheme_name c)
                (Compact.scheme_name c');
              Alcotest.(check int) "same count" (Compact.route_count c)
                (Compact.route_count c')))
    cases;
  Alcotest.(check bool) "packed has no spec" true
    (Compact.spec
       (Compact.pack ~n:2 (fun f -> f 0 1 (Path.edge 0 1)))
    = None);
  match Compact.of_spec ~n:16 "hypercube:3" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong-n spec must be rejected"

(* The stretch fix: a routed pair whose destination is unreachable in
   the attached graph must raise, not silently vanish. *)
let test_stretch_surfaces_inconsistency () =
  let c = Compact.hypercube 3 in
  let wrong = Routing.of_compact (Graph.empty 8) Routing.Unidirectional c in
  (match Routing.stretch wrong with
  | exception Invalid_argument _ -> ()
  | x -> Alcotest.failf "stretch on inconsistent table returned %f" x);
  Alcotest.(check bool) "validate also rejects" true
    (Result.is_error (Routing.validate wrong))

(* QCheck pin: on random 2-connected graphs, the packed re-encoding of
   the auto-built construction is indistinguishable from the table. *)
let graph_print g =
  Format.asprintf "n=%d edges=%a" (Graph.n g)
    Fmt.(list ~sep:sp (pair ~sep:(any "-") int int))
    (Graph.edges g)

let chorded_cycle_gen ~nmin ~nmax =
  QCheck.Gen.(
    let* n = int_range nmin nmax in
    let* extra = int_range 0 n in
    let* seed = int_range 0 1_000_000 in
    let rng = Random.State.make [| seed |] in
    let chords =
      List.init extra (fun _ -> (Random.State.int rng n, Random.State.int rng n))
    in
    let cycle = List.init n (fun i -> (i, (i + 1) mod n)) in
    return (Graph.of_edges ~n (cycle @ chords)))

let prop_packed_agreement =
  QCheck.Test.make ~name:"packed re-encoding agrees on random graphs" ~count:40
    (QCheck.make ~print:graph_print (chorded_cycle_gen ~nmin:6 ~nmax:14))
    (fun g ->
      let r = (Minimal_routing.make g).Construction.routing in
      let p = Routing.compact_copy r in
      triples r = triples p
      && Routing.route_count r = Routing.route_count p
      && Routing.validate p = Ok ())

let prop_tree_scheme_valid =
  QCheck.Test.make ~name:"tree interval scheme is valid on random graphs"
    ~count:40
    (QCheck.make ~print:graph_print (chorded_cycle_gen ~nmin:6 ~nmax:14))
    (fun g ->
      let c = Compact.bfs_tree g ~root:0 in
      let r = Routing.of_compact g Routing.Bidirectional c in
      Routing.validate r = Ok ()
      && Routing.route_count r = Graph.n g * (Graph.n g - 1))

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "compact"
    [
      ( "agreement",
        [
          Alcotest.test_case "packed vs table on all constructions" `Quick
            test_packed_agreement;
          Alcotest.test_case "compact is immutable" `Quick
            test_compact_is_immutable;
          Alcotest.test_case "hypercube label twin" `Quick
            test_hypercube_label_twin;
        ] );
      ( "schemes",
        [
          Alcotest.test_case "de Bruijn shift-in" `Quick test_de_bruijn_scheme;
          Alcotest.test_case "ccc cycle walk" `Quick test_ccc_scheme;
          Alcotest.test_case "tree intervals" `Quick test_tree_scheme;
          Alcotest.test_case "tree forest" `Quick test_tree_disconnected;
          Alcotest.test_case "spec round trip" `Quick test_spec_round_trip;
          Alcotest.test_case "stretch surfaces inconsistency" `Quick
            test_stretch_surfaces_inconsistency;
        ] );
      ( "properties",
        qcheck [ prop_packed_agreement; prop_tree_scheme_valid ] );
    ]
