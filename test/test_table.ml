open Ftr_analysis

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let sample () =
  Table.make ~title:"T" ~headers:[ "a"; "b" ]
    ~notes:[ "a note" ]
    [ [ "1"; "hello" ]; [ "22"; "x" ] ]

let test_make_validates_width () =
  Alcotest.(check bool) "bad row rejected" true
    (match Table.make ~title:"T" ~headers:[ "a"; "b" ] [ [ "1" ] ] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_render () =
  let s = Table.render (sample ()) in
  Alcotest.(check bool) "title" true (contains s "== T ==");
  Alcotest.(check bool) "header" true (contains s "| a  | b     |");
  Alcotest.(check bool) "row" true (contains s "| 22 | x     |");
  Alcotest.(check bool) "note" true (contains s "note: a note")

let test_csv () =
  let s = Table.to_csv (sample ()) in
  Alcotest.(check bool) "header line" true (contains s "a,b\n");
  Alcotest.(check bool) "row" true (contains s "22,x")

let test_csv_escaping () =
  let t = Table.make ~title:"T" ~headers:[ "a" ] [ [ "with,comma" ]; [ "with\"quote" ] ] in
  let s = Table.to_csv t in
  Alcotest.(check bool) "comma quoted" true (contains s "\"with,comma\"");
  Alcotest.(check bool) "quote doubled" true (contains s "\"with\"\"quote\"")

let test_markdown () =
  let s = Table.to_markdown (sample ()) in
  Alcotest.(check bool) "heading" true (contains s "### T");
  Alcotest.(check bool) "separator" true (contains s "|---|---|");
  Alcotest.(check bool) "note italics" true (contains s "*a note*")

let test_report_violations () =
  let ok_table = Table.make ~title:"ok" ~headers:[ "x"; "verdict" ] [ [ "1"; "ok" ] ] in
  let bad_table =
    Table.make ~title:"bad" ~headers:[ "x"; "verdict" ] [ [ "2"; "VIOLATION" ] ]
  in
  let v = Report.violations [ ("A", ok_table); ("B", bad_table) ] in
  Alcotest.(check int) "one experiment flagged" 1 (List.length v);
  Alcotest.(check string) "right id" "B" (fst (List.hd v))

let test_report_markdown_rollup () =
  let ok_table = Table.make ~title:"ok" ~headers:[ "verdict" ] [ [ "ok" ] ] in
  let md = Report.markdown ~header:"# H" [ ("A", ok_table) ] in
  Alcotest.(check bool) "rollup" true (contains md "every checked claim held")

let test_sweep_cartesian () =
  Alcotest.(check (list (pair int string))) "product"
    [ (1, "a"); (1, "b"); (2, "a"); (2, "b") ]
    (Sweep.cartesian [ 1; 2 ] [ "a"; "b" ]);
  Alcotest.(check (list (pair int int))) "empty" [] (Sweep.cartesian [] [ 1 ])

let test_sweep_frequency () =
  Alcotest.(check (float 1e-9)) "half" 0.5 (Sweep.frequency ~trials:10 (fun i -> i mod 2 = 0));
  Alcotest.(check (float 1e-9)) "none" 0.0 (Sweep.frequency ~trials:5 (fun _ -> false))

let test_sweep_cells () =
  Alcotest.(check string) "float" "3.14" (Sweep.float_cell 3.14159);
  Alcotest.(check string) "ratio" "3/7" (Sweep.ratio_cell 3 7)

let () =
  Alcotest.run "table"
    [
      ( "table",
        [
          Alcotest.test_case "width validation" `Quick test_make_validates_width;
          Alcotest.test_case "render" `Quick test_render;
          Alcotest.test_case "csv" `Quick test_csv;
          Alcotest.test_case "csv escaping" `Quick test_csv_escaping;
          Alcotest.test_case "markdown" `Quick test_markdown;
          Alcotest.test_case "violations" `Quick test_report_violations;
          Alcotest.test_case "markdown rollup" `Quick test_report_markdown_rollup;
          Alcotest.test_case "sweep cartesian" `Quick test_sweep_cartesian;
          Alcotest.test_case "sweep frequency" `Quick test_sweep_frequency;
          Alcotest.test_case "sweep cells" `Quick test_sweep_cells;
        ] );
    ]
