open Ftr_graph

let test_is_neighborhood_set () =
  let g = Families.cycle 9 in
  Alcotest.(check bool) "0,3,6 ok" true (Independent.is_neighborhood_set g [ 0; 3; 6 ]);
  Alcotest.(check bool) "adjacent pair" false (Independent.is_neighborhood_set g [ 0; 1 ]);
  Alcotest.(check bool) "distance 2" false (Independent.is_neighborhood_set g [ 0; 2 ]);
  Alcotest.(check bool) "duplicate member" false (Independent.is_neighborhood_set g [ 0; 0 ]);
  Alcotest.(check bool) "empty" true (Independent.is_neighborhood_set g []);
  Alcotest.(check bool) "singleton" true (Independent.is_neighborhood_set g [ 4 ])

let test_greedy_is_valid () =
  List.iter
    (fun (name, g) ->
      let m = Independent.greedy g in
      Alcotest.(check bool) (name ^ " valid") true (Independent.is_neighborhood_set g m);
      Alcotest.(check bool)
        (name ^ " meets Lemma 15 bound")
        true
        (List.length m >= Independent.greedy_bound g))
    [
      ("cycle 30", Families.cycle 30);
      ("torus 6x6", Families.torus 6 6);
      ("hypercube 5", Families.hypercube 5);
      ("ccc 4", Families.ccc 4);
      ("petersen", Families.petersen ());
      ("grid 7x5", Families.grid 7 5);
    ]

let test_greedy_cycle_exact () =
  (* On a cycle the greedy picks every third vertex. *)
  let m = Independent.greedy (Families.cycle 12) in
  Alcotest.(check (list int)) "every third" [ 0; 3; 6; 9 ] m

let test_greedy_maximal () =
  (* No leftover vertex can be added: greedy output is maximal. *)
  let g = Families.torus 6 6 in
  let m = Independent.greedy g in
  Graph.iter_vertices
    (fun v ->
      if not (List.mem v m) then
        Alcotest.(check bool)
          (Printf.sprintf "%d cannot extend" v)
          false
          (Independent.is_neighborhood_set g (v :: m)))
    g

let test_greedy_custom_order () =
  let g = Families.cycle 6 in
  let m = Independent.greedy ~order:[ 1; 4; 0; 2; 3; 5 ] g in
  Alcotest.(check (list int)) "respects order" [ 1; 4 ] m

let test_greedy_bound_values () =
  Alcotest.(check int) "cycle 30: 30/5" 6 (Independent.greedy_bound (Families.cycle 30));
  Alcotest.(check int) "empty" 0 (Independent.greedy_bound (Graph.empty 0));
  (* isolated vertices: d=0, bound = n *)
  Alcotest.(check int) "isolated" 4 (Independent.greedy_bound (Graph.empty 4))

let test_best_of_improves_or_equals () =
  let g = Families.torus 7 7 in
  let rng = Random.State.make [| 3 |] in
  let base = List.length (Independent.greedy g) in
  let best = Independent.best_of ~rng ~tries:20 g in
  Alcotest.(check bool) "valid" true (Independent.is_neighborhood_set g best);
  Alcotest.(check bool) "no worse" true (List.length best >= base)

let test_thresholds () =
  Alcotest.(check (float 1e-9)) "circular" 0.79 Independent.circular_threshold;
  Alcotest.(check (float 1e-9)) "tri" 0.46 Independent.tri_circular_threshold

let () =
  Alcotest.run "independent"
    [
      ( "neighborhood sets",
        [
          Alcotest.test_case "is_neighborhood_set" `Quick test_is_neighborhood_set;
          Alcotest.test_case "greedy valid + bound" `Quick test_greedy_is_valid;
          Alcotest.test_case "greedy on cycle" `Quick test_greedy_cycle_exact;
          Alcotest.test_case "greedy maximal" `Quick test_greedy_maximal;
          Alcotest.test_case "custom order" `Quick test_greedy_custom_order;
          Alcotest.test_case "bound values" `Quick test_greedy_bound_values;
          Alcotest.test_case "best_of" `Quick test_best_of_improves_or_equals;
          Alcotest.test_case "Corollary 17 thresholds" `Quick test_thresholds;
        ] );
    ]
