open Ftr_graph
open Ftr_analysis

let ok spec = match Graph_spec.parse spec with Ok g -> g | Error e -> Alcotest.fail e

let err spec =
  match Graph_spec.parse spec with
  | Ok _ -> Alcotest.fail ("expected error for " ^ spec)
  | Error e -> e

let test_families () =
  Alcotest.(check int) "cycle" 12 (Graph.n (ok "cycle:12"));
  Alcotest.(check int) "petersen" 10 (Graph.n (ok "petersen"));
  Alcotest.(check int) "hypercube" 16 (Graph.n (ok "hypercube:4"));
  Alcotest.(check int) "ccc" 24 (Graph.n (ok "ccc:3"));
  Alcotest.(check int) "shuffle" 16 (Graph.n (ok "shuffle:4"));
  Alcotest.(check int) "grid" 12 (Graph.n (ok "grid:3x4"));
  Alcotest.(check int) "torus3" 27 (Graph.n (ok "torus3:3x3x3"));
  Alcotest.(check int) "bipartite" 7 (Graph.n (ok "bipartite:3:4"));
  Alcotest.(check int) "star" 6 (Graph.n (ok "star:6"));
  Alcotest.(check int) "wheel" 6 (Graph.n (ok "wheel:6"))

let test_circulant () =
  let g = ok "circulant:10:1,2" in
  Alcotest.(check int) "4-regular" 4 (Graph.max_degree g)

let test_random_seeded () =
  let a = ok "gnp:30:0.2:5" and b = ok "gnp:30:0.2:5" in
  Alcotest.(check bool) "deterministic" true (Graph.equal a b);
  let r = ok "regular:20:3:1" in
  Alcotest.(check int) "regular" 3 (Graph.max_degree r);
  Alcotest.(check int) "gnm edges" 40 (Graph.m (ok "gnm:20:40:1"))

let test_errors () =
  Alcotest.(check bool) "unknown" true
    (String.length (err "frobnicate:3") > 0);
  Alcotest.(check bool) "bad int" true (String.length (err "cycle:xyz") > 0);
  Alcotest.(check bool) "bad dims" true (String.length (err "grid:3") > 0);
  Alcotest.(check bool) "bad prob" true (String.length (err "gnp:10:oops") > 0);
  (* family validation errors surface as parse errors, not exceptions *)
  Alcotest.(check bool) "cycle too small" true (String.length (err "cycle:2") > 0)

let test_conv_printer () =
  let _, printer = Graph_spec.conv in
  let s = Format.asprintf "%a" printer (ok "cycle:5") in
  Alcotest.(check string) "printer" "<graph n=5 m=5>" s

let () =
  Alcotest.run "graph_spec"
    [
      ( "graph_spec",
        [
          Alcotest.test_case "families" `Quick test_families;
          Alcotest.test_case "circulant" `Quick test_circulant;
          Alcotest.test_case "random seeded" `Quick test_random_seeded;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "conv printer" `Quick test_conv_printer;
        ] );
    ]
