open Ftr_graph
open Ftr_core

let test_make_to_separator () =
  let g = Families.torus 5 5 in
  let m = Array.to_list (Graph.neighbors g 12) in
  let paths = Tree_routing.make g ~src:0 ~targets:m ~k:4 in
  Alcotest.(check int) "k paths" 4 (List.length paths);
  Alcotest.(check bool) "verify" true
    (Tree_routing.verify g ~src:0 ~targets:m ~k:4 paths = Ok ())

let test_direct_edge_normalisation () =
  let g = Families.torus 5 5 in
  (* src 11 is adjacent to 12's neighbor 11? Gamma(12) = {7,11,13,17};
     choose src 6, adjacent to 7 and 11. *)
  let m = Array.to_list (Graph.neighbors g 12) in
  let paths = Tree_routing.make g ~src:6 ~targets:m ~k:4 in
  List.iter
    (fun p ->
      if Graph.mem_edge g 6 (Path.target p) then
        Alcotest.(check int)
          (Printf.sprintf "direct to %d" (Path.target p))
          1 (Path.length p))
    paths;
  Alcotest.(check bool) "verify" true
    (Tree_routing.verify g ~src:6 ~targets:m ~k:4 paths = Ok ())

let test_insufficient () =
  let g = Families.cycle 8 in
  match Tree_routing.make g ~src:0 ~targets:[ 3; 4; 5 ] ~k:3 with
  | exception Tree_routing.Insufficient { src = 0; wanted = 3; got = 2 } -> ()
  | exception e -> Alcotest.fail ("wrong exn: " ^ Printexc.to_string e)
  | _ -> Alcotest.fail "cycle has only two disjoint fans"

let test_source_in_targets () =
  let g = Families.cycle 8 in
  Alcotest.check_raises "src is target"
    (Invalid_argument "Disjoint_paths.fan_to_set: src is a target") (fun () ->
      ignore (Tree_routing.make g ~src:3 ~targets:[ 3; 5 ] ~k:1))

let test_add_to_routing () =
  let g = Families.cycle 8 in
  let r = Routing.create g Routing.Bidirectional in
  let paths = Tree_routing.make g ~src:0 ~targets:[ 3; 5 ] ~k:2 in
  Tree_routing.add_to r paths;
  Alcotest.(check int) "both directions" 4 (Routing.route_count r)

let test_verify_rejects_shared_interior () =
  let g = Families.cycle 8 in
  let bad = [ Path.of_list [ 0; 1; 2; 3 ]; Path.of_list [ 0; 1 ] ] in
  (* second path's target 1 is the first path's interior: the interior
     vertex 1 lies outside the target set, so sharing is the issue. *)
  match Tree_routing.verify g ~src:0 ~targets:[ 3; 1 ] ~k:2 bad with
  | Ok () -> Alcotest.fail "should reject"
  | Error _ -> ()

let test_verify_rejects_long_path_when_adjacent () =
  let g = Families.cycle 8 in
  let bad = [ Path.of_list [ 0; 7; 6; 5; 4; 3; 2; 1 ] ] in
  match Tree_routing.verify g ~src:0 ~targets:[ 1 ] ~k:1 bad with
  | Ok () -> Alcotest.fail "adjacent target must use the edge"
  | Error msg ->
      Alcotest.(check bool) "mentions direct edge" true
        (String.length msg > 0)

let test_lemma1_survival () =
  (* Lemma 1: with at most t faults and k = t+1 fans, some target stays
     reachable. Exhaustively check all fault sets of size t. *)
  let g = Families.torus 5 5 in
  let t = 3 in
  let m = Array.to_list (Graph.neighbors g 12) in
  let paths = Tree_routing.make g ~src:0 ~targets:m ~k:(t + 1) in
  let vertices = List.init 25 Fun.id in
  Seq.iter
    (fun faults_list ->
      if not (List.mem 0 faults_list) then begin
        let faults = Bitset.of_list 25 faults_list in
        let survivors =
          List.filter (fun p -> not (Path.hits p faults)) paths
        in
        Alcotest.(check bool) "some fan survives" true (survivors <> [])
      end)
    (Tolerance.subsets_up_to vertices t |> Seq.filter (fun l -> List.length l = t));
  ()

let () =
  Alcotest.run "tree_routing"
    [
      ( "tree_routing",
        [
          Alcotest.test_case "make to separator" `Quick test_make_to_separator;
          Alcotest.test_case "direct edge normalisation" `Quick test_direct_edge_normalisation;
          Alcotest.test_case "insufficient" `Quick test_insufficient;
          Alcotest.test_case "source in targets" `Quick test_source_in_targets;
          Alcotest.test_case "add_to" `Quick test_add_to_routing;
          Alcotest.test_case "verify: shared interior" `Quick test_verify_rejects_shared_interior;
          Alcotest.test_case "verify: adjacent uses edge" `Quick test_verify_rejects_long_path_when_adjacent;
          Alcotest.test_case "Lemma 1 survival" `Slow test_lemma1_survival;
        ] );
    ]
