open Ftr_graph
open Ftr_core

let test_structure () =
  let g = Families.torus 5 5 in
  let c = Kernel.make g ~t:3 in
  Alcotest.(check string) "name" "kernel" c.Construction.name;
  Alcotest.(check int) "concentrator size" 4 (List.length c.Construction.concentrator);
  Alcotest.(check bool) "M separates" true
    (Separator.is_separator g c.Construction.concentrator);
  Alcotest.(check bool) "routing valid" true (Routing.validate c.Construction.routing = Ok ());
  Alcotest.(check int) "two claims" 2 (List.length c.Construction.claims)

let test_claims () =
  let c = Kernel.make (Families.torus 5 5) ~t:3 in
  let t3 = List.nth c.Construction.claims 0 in
  Alcotest.(check int) "Theorem 3 bound" 6 t3.Construction.diameter_bound;
  Alcotest.(check int) "Theorem 3 faults" 3 t3.Construction.max_faults;
  let t4 = List.nth c.Construction.claims 1 in
  Alcotest.(check int) "Theorem 4 bound" 4 t4.Construction.diameter_bound;
  Alcotest.(check int) "Theorem 4 faults" 1 t4.Construction.max_faults

let test_bound_floor_at_4 () =
  (* For t = 1 the Dolev et al. bound is max(2t, 4) = 4. *)
  let c = Kernel.make (Families.cycle 8) ~t:1 in
  Alcotest.(check int) "floor 4" 4
    (List.hd c.Construction.claims).Construction.diameter_bound

let test_every_outside_node_routes_to_m () =
  let g = Families.hypercube 3 in
  let c = Kernel.make g ~t:2 in
  let m = c.Construction.concentrator in
  Graph.iter_vertices
    (fun x ->
      if not (List.mem x m) then begin
        let covered =
          List.filter (fun y -> Routing.mem c.Construction.routing x y) m
        in
        Alcotest.(check bool)
          (Printf.sprintf "%d reaches >= t+1 of M" x)
          true
          (List.length covered >= 3)
      end)
    g

let test_exhaustive_theorem3 () =
  (* Full verification on a small graph: every fault set of size <= t. *)
  let g = Families.hypercube 3 in
  let c = Kernel.make g ~t:2 in
  let v = Tolerance.exhaustive c.Construction.routing ~f:2 in
  Alcotest.(check bool) "within 2t" true (Tolerance.respects v ~bound:4);
  Alcotest.(check bool) "definitive" true v.Tolerance.definitive

let test_exhaustive_theorem4 () =
  let g = Families.hypercube 3 in
  let c = Kernel.make g ~t:2 in
  let v = Tolerance.exhaustive c.Construction.routing ~f:1 in
  Alcotest.(check bool) "within 4" true (Tolerance.respects v ~bound:4)

let test_explicit_separator () =
  let g = Families.cycle 10 in
  let c = Kernel.make ~m:[ 0; 5 ] g ~t:1 in
  Alcotest.(check (list int)) "uses given M" [ 0; 5 ] c.Construction.concentrator

let test_rejects_complete () =
  Alcotest.check_raises "complete"
    (Invalid_argument "Kernel.make: complete graph has no separating set") (fun () ->
      ignore (Kernel.make (Families.complete 5) ~t:3))

let test_rejects_bad_m () =
  let g = Families.cycle 10 in
  Alcotest.check_raises "not a separator"
    (Invalid_argument "Kernel.make: M is not a separating set") (fun () ->
      ignore (Kernel.make ~m:[ 0; 1 ] g ~t:1));
  Alcotest.check_raises "too small"
    (Invalid_argument "Kernel.make: separating set smaller than t+1") (fun () ->
      ignore (Kernel.make ~m:[ 0 ] g ~t:1))

let test_pools_nonempty () =
  let c = Kernel.make (Families.cycle 10) ~t:1 in
  Alcotest.(check bool) "has pools" true (List.length c.Construction.pools >= 2);
  Alcotest.(check bool) "first pool is M" true
    (List.hd c.Construction.pools = c.Construction.concentrator)

let () =
  Alcotest.run "kernel"
    [
      ( "kernel",
        [
          Alcotest.test_case "structure" `Quick test_structure;
          Alcotest.test_case "claims" `Quick test_claims;
          Alcotest.test_case "bound floor" `Quick test_bound_floor_at_4;
          Alcotest.test_case "coverage of M" `Quick test_every_outside_node_routes_to_m;
          Alcotest.test_case "Theorem 3 exhaustive" `Slow test_exhaustive_theorem3;
          Alcotest.test_case "Theorem 4 exhaustive" `Quick test_exhaustive_theorem4;
          Alcotest.test_case "explicit separator" `Quick test_explicit_separator;
          Alcotest.test_case "rejects complete" `Quick test_rejects_complete;
          Alcotest.test_case "rejects bad M" `Quick test_rejects_bad_m;
          Alcotest.test_case "pools" `Quick test_pools_nonempty;
        ] );
    ]
