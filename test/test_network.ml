open Ftr_graph
open Ftr_core
open Ftr_sim

let distance = Alcotest.testable Metrics.pp_distance ( = )

let edge_net () =
  let g = Families.cycle 6 in
  let r = Routing.create g Routing.Bidirectional in
  Routing.add_edge_routes r;
  Network.create r

let test_crash_recover () =
  let net = edge_net () in
  Alcotest.(check bool) "initially healthy" false (Network.is_faulty net 2);
  Network.crash net 2;
  Alcotest.(check bool) "faulty" true (Network.is_faulty net 2);
  Alcotest.(check int) "count" 1 (Network.fault_count net);
  Network.recover net 2;
  Alcotest.(check bool) "recovered" false (Network.is_faulty net 2);
  Alcotest.(check int) "count 0" 0 (Network.fault_count net)

let test_surviving_cache_invalidation () =
  let net = edge_net () in
  let before = Digraph.arc_count (Network.surviving net) in
  Network.crash net 0;
  let after = Digraph.arc_count (Network.surviving net) in
  Alcotest.(check int) "before" 12 before;
  Alcotest.(check int) "after: 4 arcs dead" 8 after;
  Network.recover net 0;
  Alcotest.(check int) "restored" 12 (Digraph.arc_count (Network.surviving net))

let test_surviving_diameter () =
  let net = edge_net () in
  Alcotest.(check distance) "healthy" (Metrics.Finite 3) (Network.surviving_diameter net);
  Network.crash net 1;
  Alcotest.(check distance) "after crash" (Metrics.Finite 4)
    (Network.surviving_diameter net)

let test_route_plan_direct () =
  let net = edge_net () in
  Alcotest.(check (option (list int))) "adjacent" (Some [ 0; 1 ])
    (Network.route_plan net ~src:0 ~dst:1);
  Alcotest.(check (option (list int))) "self" (Some [ 3 ])
    (Network.route_plan net ~src:3 ~dst:3)

let test_route_plan_multihop () =
  let net = edge_net () in
  match Network.route_plan net ~src:0 ~dst:3 with
  | Some plan -> Alcotest.(check int) "three routes" 4 (List.length plan)
  | None -> Alcotest.fail "expected plan"

let test_route_plan_avoids_faults () =
  let net = edge_net () in
  Network.crash net 1;
  (match Network.route_plan net ~src:0 ~dst:2 with
  | Some plan ->
      Alcotest.(check (list int)) "goes the long way" [ 0; 5; 4; 3; 2 ] plan
  | None -> Alcotest.fail "expected plan");
  Alcotest.(check bool) "faulty endpoint" true
    (Network.route_plan net ~src:0 ~dst:1 = None)

let test_route_survives () =
  let g = Families.cycle 6 in
  let r = Routing.create g Routing.Bidirectional in
  Routing.add r (Path.of_list [ 0; 1; 2 ]);
  let net = Network.create r in
  Alcotest.(check bool) "alive" true (Network.route_survives net ~src:0 ~dst:2);
  Network.crash net 1;
  Alcotest.(check bool) "dead via interior" false (Network.route_survives net ~src:0 ~dst:2);
  Alcotest.(check bool) "undefined pair" false (Network.route_survives net ~src:0 ~dst:3)

let test_link_fail_restore () =
  let net = edge_net () in
  Alcotest.(check bool) "initially up" false (Network.is_link_faulty net 0 1);
  Network.fail_link net 1 0;
  Alcotest.(check bool) "down, as failed" true (Network.is_link_faulty net 1 0);
  Alcotest.(check bool) "down, other order" true (Network.is_link_faulty net 0 1);
  Alcotest.(check int) "link count" 1 (Network.link_fault_count net);
  Alcotest.(check (list (pair int int))) "normalised listing" [ (0, 1) ]
    (Network.link_faults net);
  Alcotest.(check int) "nodes unaffected" 0
    (Bitset.cardinal (Network.faults net));
  Network.restore_link net 0 1;
  Alcotest.(check bool) "restored" false (Network.is_link_faulty net 1 0);
  Alcotest.(check int) "link count 0" 0 (Network.link_fault_count net)

let test_link_fault_cache_invalidation () =
  let net = edge_net () in
  Alcotest.(check int) "healthy arcs" 12 (Digraph.arc_count (Network.surviving net));
  Network.fail_link net 2 3;
  (* only the two arcs over the downed link die; endpoints stay *)
  Alcotest.(check int) "two arcs dead" 10 (Digraph.arc_count (Network.surviving net));
  Alcotest.(check distance) "cycle minus one edge" (Metrics.Finite 5)
    (Network.surviving_diameter net);
  Network.restore_link net 3 2;
  Alcotest.(check int) "arcs back" 12 (Digraph.arc_count (Network.surviving net));
  Alcotest.(check distance) "diameter back" (Metrics.Finite 3)
    (Network.surviving_diameter net)

let test_route_plan_under_link_faults () =
  let net = edge_net () in
  Network.fail_link net 0 1;
  (match Network.route_plan net ~src:0 ~dst:1 with
  | Some plan ->
      Alcotest.(check (list int)) "both endpoints alive, long way round"
        [ 0; 5; 4; 3; 2; 1 ] plan
  | None -> Alcotest.fail "expected plan");
  Alcotest.(check bool) "direct route is dead" false
    (Network.route_survives net ~src:0 ~dst:1)

let () =
  Alcotest.run "network"
    [
      ( "network",
        [
          Alcotest.test_case "crash/recover" `Quick test_crash_recover;
          Alcotest.test_case "cache invalidation" `Quick test_surviving_cache_invalidation;
          Alcotest.test_case "surviving diameter" `Quick test_surviving_diameter;
          Alcotest.test_case "plan: direct & self" `Quick test_route_plan_direct;
          Alcotest.test_case "plan: multihop" `Quick test_route_plan_multihop;
          Alcotest.test_case "plan avoids faults" `Quick test_route_plan_avoids_faults;
          Alcotest.test_case "route_survives" `Quick test_route_survives;
          Alcotest.test_case "link fail/restore" `Quick test_link_fail_restore;
          Alcotest.test_case "link fault cache invalidation" `Quick
            test_link_fault_cache_invalidation;
          Alcotest.test_case "plan under link faults" `Quick
            test_route_plan_under_link_faults;
        ] );
    ]
