open Ftr_graph

let p = Path.of_list

let test_construction () =
  let path = p [ 0; 1; 2 ] in
  Alcotest.(check int) "source" 0 (Path.source path);
  Alcotest.(check int) "target" 2 (Path.target path);
  Alcotest.(check int) "length" 2 (Path.length path);
  Alcotest.(check int) "vertex_count" 3 (Path.vertex_count path)

let test_rejects_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Path: empty") (fun () ->
      ignore (p []))

let test_rejects_repeat () =
  Alcotest.check_raises "repeat" (Invalid_argument "Path: repeated vertex 1") (fun () ->
      ignore (p [ 0; 1; 2; 1 ]))

let test_singleton () =
  let path = p [ 7 ] in
  Alcotest.(check int) "source=target" (Path.source path) (Path.target path);
  Alcotest.(check int) "length 0" 0 (Path.length path);
  Alcotest.(check (list int)) "no interior" [] (Path.interior path)

let test_interior () =
  Alcotest.(check (list int)) "interior" [ 1; 2 ] (Path.interior (p [ 0; 1; 2; 3 ]));
  Alcotest.(check (list int)) "edge has none" [] (Path.interior (p [ 0; 1 ]))

let test_rev () =
  let path = p [ 0; 1; 2 ] in
  Alcotest.(check (list int)) "reversed" [ 2; 1; 0 ] (Path.to_list (Path.rev path));
  Alcotest.(check bool) "involution" true (Path.equal path (Path.rev (Path.rev path)))

let test_concat () =
  let a = p [ 0; 1 ] and b = p [ 1; 2; 3 ] in
  Alcotest.(check (list int)) "concat" [ 0; 1; 2; 3 ] (Path.to_list (Path.concat a b))

let test_concat_mismatch () =
  Alcotest.check_raises "mismatch" (Invalid_argument "Path.concat: endpoints differ")
    (fun () -> ignore (Path.concat (p [ 0; 1 ]) (p [ 2; 3 ])))

let test_concat_not_simple () =
  Alcotest.check_raises "not simple" (Invalid_argument "Path: repeated vertex 0")
    (fun () -> ignore (Path.concat (p [ 0; 1 ]) (p [ 1; 0 ])))

let test_is_valid_in () =
  let g = Families.cycle 5 in
  Alcotest.(check bool) "valid" true (Path.is_valid_in g (p [ 0; 1; 2 ]));
  Alcotest.(check bool) "chord invalid" false (Path.is_valid_in g (p [ 0; 2 ]))

let test_hits () =
  let path = p [ 0; 1; 2 ] in
  Alcotest.(check bool) "hit interior" true (Path.hits path (Bitset.of_list 5 [ 1 ]));
  Alcotest.(check bool) "hit endpoint" true (Path.hits path (Bitset.of_list 5 [ 0 ]));
  Alcotest.(check bool) "miss" false (Path.hits path (Bitset.of_list 5 [ 3; 4 ]))

let test_to_array_fresh () =
  let path = p [ 0; 1 ] in
  let a = Path.to_array path in
  a.(0) <- 99;
  Alcotest.(check int) "immutable" 0 (Path.source path)

let test_mem_nth () =
  let path = p [ 3; 1; 4 ] in
  Alcotest.(check bool) "mem" true (Path.mem path 1);
  Alcotest.(check bool) "not mem" false (Path.mem path 2);
  Alcotest.(check int) "nth" 4 (Path.nth path 2)

let () =
  Alcotest.run "path"
    [
      ( "path",
        [
          Alcotest.test_case "construction" `Quick test_construction;
          Alcotest.test_case "rejects empty" `Quick test_rejects_empty;
          Alcotest.test_case "rejects repeats" `Quick test_rejects_repeat;
          Alcotest.test_case "singleton" `Quick test_singleton;
          Alcotest.test_case "interior" `Quick test_interior;
          Alcotest.test_case "rev" `Quick test_rev;
          Alcotest.test_case "concat" `Quick test_concat;
          Alcotest.test_case "concat mismatch" `Quick test_concat_mismatch;
          Alcotest.test_case "concat not simple" `Quick test_concat_not_simple;
          Alcotest.test_case "is_valid_in" `Quick test_is_valid_in;
          Alcotest.test_case "hits" `Quick test_hits;
          Alcotest.test_case "to_array fresh" `Quick test_to_array_fresh;
          Alcotest.test_case "mem/nth" `Quick test_mem_nth;
        ] );
    ]
