open Ftr_graph

let test_empty () =
  let s = Bitset.create 100 in
  Alcotest.(check bool) "is_empty" true (Bitset.is_empty s);
  Alcotest.(check int) "cardinal" 0 (Bitset.cardinal s);
  Alcotest.(check int) "capacity" 100 (Bitset.capacity s);
  Alcotest.(check (option int)) "choose" None (Bitset.choose s)

let test_add_remove () =
  let s = Bitset.create 100 in
  Bitset.add s 5;
  Bitset.add s 63;
  Bitset.add s 64;
  Bitset.add s 99;
  Alcotest.(check bool) "mem 5" true (Bitset.mem s 5);
  Alcotest.(check bool) "mem 63" true (Bitset.mem s 63);
  Alcotest.(check bool) "mem 64" true (Bitset.mem s 64);
  Alcotest.(check bool) "mem 6" false (Bitset.mem s 6);
  Alcotest.(check int) "cardinal" 4 (Bitset.cardinal s);
  Bitset.remove s 63;
  Alcotest.(check bool) "removed" false (Bitset.mem s 63);
  Alcotest.(check int) "cardinal after remove" 3 (Bitset.cardinal s);
  Bitset.remove s 63;
  Alcotest.(check int) "idempotent remove" 3 (Bitset.cardinal s)

let test_add_idempotent () =
  let s = Bitset.create 10 in
  Bitset.add s 3;
  Bitset.add s 3;
  Alcotest.(check int) "cardinal" 1 (Bitset.cardinal s)

let test_out_of_range () =
  let s = Bitset.create 10 in
  Alcotest.check_raises "add -1" (Invalid_argument "Bitset: element -1 out of [0,10)")
    (fun () -> Bitset.add s (-1));
  Alcotest.check_raises "mem 10" (Invalid_argument "Bitset: element 10 out of [0,10)")
    (fun () -> ignore (Bitset.mem s 10))

let test_elements_sorted () =
  let s = Bitset.of_list 200 [ 150; 3; 77; 3; 0 ] in
  Alcotest.(check (list int)) "sorted unique" [ 0; 3; 77; 150 ] (Bitset.elements s)

let test_iter_order () =
  let s = Bitset.of_list 128 [ 127; 0; 64; 63 ] in
  let acc = ref [] in
  Bitset.iter (fun i -> acc := i :: !acc) s;
  Alcotest.(check (list int)) "increasing" [ 0; 63; 64; 127 ] (List.rev !acc)

let test_set_ops () =
  let a = Bitset.of_list 64 [ 1; 2; 3 ] in
  let b = Bitset.of_list 64 [ 3; 4 ] in
  let u = Bitset.copy a in
  Bitset.union_into u b;
  Alcotest.(check (list int)) "union" [ 1; 2; 3; 4 ] (Bitset.elements u);
  let i = Bitset.copy a in
  Bitset.inter_into i b;
  Alcotest.(check (list int)) "inter" [ 3 ] (Bitset.elements i);
  let d = Bitset.copy a in
  Bitset.diff_into d b;
  Alcotest.(check (list int)) "diff" [ 1; 2 ] (Bitset.elements d)

let test_subset_disjoint () =
  let a = Bitset.of_list 32 [ 1; 2 ] in
  let b = Bitset.of_list 32 [ 1; 2; 9 ] in
  let c = Bitset.of_list 32 [ 5 ] in
  Alcotest.(check bool) "a subset b" true (Bitset.subset a b);
  Alcotest.(check bool) "b not subset a" false (Bitset.subset b a);
  Alcotest.(check bool) "a disjoint c" true (Bitset.disjoint a c);
  Alcotest.(check bool) "a not disjoint b" false (Bitset.disjoint a b)

let test_equal_copy () =
  let a = Bitset.of_list 32 [ 7; 8 ] in
  let b = Bitset.copy a in
  Alcotest.(check bool) "copies equal" true (Bitset.equal a b);
  Bitset.add b 9;
  Alcotest.(check bool) "copy independent" false (Bitset.equal a b)

let test_clear () =
  let s = Bitset.of_list 32 [ 1; 5; 31 ] in
  Bitset.clear s;
  Alcotest.(check bool) "empty after clear" true (Bitset.is_empty s)

let test_capacity_mismatch () =
  let a = Bitset.create 10 and b = Bitset.create 11 in
  Alcotest.check_raises "equal mismatch" (Invalid_argument "Bitset: capacity mismatch")
    (fun () -> ignore (Bitset.equal a b))

(* The unsafe_* variants carry "(* bounds: ... *)" proof comments in
   place of range checks (lint rule L4); this property pins them to the
   checked operations on every in-range index. *)
let test_unsafe_agrees =
  QCheck.Test.make ~name:"unsafe_* agree with checked counterparts" ~count:500
    QCheck.(pair (int_range 1 300) (small_list (pair (int_range 0 10_000) bool)))
    (fun (capacity, ops) ->
      let checked = Bitset.create capacity in
      let unchecked = Bitset.create capacity in
      List.iter
        (fun (i, adding) ->
          let i = i mod capacity in
          if adding then begin
            Bitset.add checked i;
            Bitset.unsafe_add unchecked i
          end
          else begin
            Bitset.remove checked i;
            Bitset.unsafe_remove unchecked i
          end)
        ops;
      Bitset.equal checked unchecked
      && List.for_all
           (fun (i, _) ->
             let i = i mod capacity in
             Bitset.mem checked i = Bitset.unsafe_mem unchecked i)
           ops)

let () =
  Alcotest.run "bitset"
    [
      ( "bitset",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "add/remove" `Quick test_add_remove;
          Alcotest.test_case "add idempotent" `Quick test_add_idempotent;
          Alcotest.test_case "out of range" `Quick test_out_of_range;
          Alcotest.test_case "elements sorted" `Quick test_elements_sorted;
          Alcotest.test_case "iter order" `Quick test_iter_order;
          Alcotest.test_case "set operations" `Quick test_set_ops;
          Alcotest.test_case "subset/disjoint" `Quick test_subset_disjoint;
          Alcotest.test_case "equal/copy" `Quick test_equal_copy;
          Alcotest.test_case "clear" `Quick test_clear;
          Alcotest.test_case "capacity mismatch" `Quick test_capacity_mismatch;
        ] );
      ("unsafe", [ QCheck_alcotest.to_alcotest test_unsafe_agrees ]);
    ]
